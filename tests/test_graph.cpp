// Tests for the graph IR: attributes, ops, shape inference, surgery, cost
// accounting, serialization and the model zoo.

#include <gtest/gtest.h>

#include <set>

#include "graph/cost.hpp"
#include "graph/graph.hpp"
#include "graph/serialize.hpp"
#include "graph/zoo.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

AttrMap conv_attrs(std::int64_t oc, std::int64_t k, std::int64_t s, std::int64_t p,
                   std::int64_t groups = 1, std::int64_t bias = 1) {
  AttrMap a;
  a.set_int("out_channels", oc);
  a.set_int("kernel", k);
  a.set_int("stride", s);
  a.set_int("pad", p);
  a.set_int("groups", groups);
  a.set_int("bias", bias);
  return a;
}

TEST(AttrMap, TypedAccess) {
  AttrMap a;
  a.set_int("k", 3);
  a.set_float("alpha", 0.1);
  a.set_str("act", "relu");
  a.set_ints("axes", {1, 2});
  EXPECT_EQ(a.get_int("k"), 3);
  EXPECT_DOUBLE_EQ(a.get_float("alpha"), 0.1);
  EXPECT_EQ(a.get_str("act"), "relu");
  EXPECT_EQ(a.get_ints("axes").size(), 2u);
}

TEST(AttrMap, MissingKeyThrows) {
  AttrMap a;
  EXPECT_THROW((void)a.get_int("absent"), NotFound);
  EXPECT_EQ(a.get_int_or("absent", 7), 7);
}

TEST(AttrMap, WrongTypeThrows) {
  AttrMap a;
  a.set_int("k", 3);
  EXPECT_THROW((void)a.get_str("k"), InvalidArgument);
}

TEST(Op, NameRoundTrip) {
  for (auto kind : {OpKind::kConv2d, OpKind::kDense, OpKind::kMish, OpKind::kConcat,
                    OpKind::kGlobalAvgPool, OpKind::kUpsample, OpKind::kSoftmax}) {
    EXPECT_EQ(parse_op(op_name(kind)), kind);
  }
  EXPECT_THROW((void)parse_op("Gemm"), InvalidArgument);
}

TEST(Op, Predicates) {
  EXPECT_TRUE(op_is_activation(OpKind::kHSwish));
  EXPECT_FALSE(op_is_activation(OpKind::kConv2d));
  EXPECT_TRUE(op_has_weights(OpKind::kBatchNorm));
  EXPECT_FALSE(op_has_weights(OpKind::kAdd));
}

TEST(Graph, ConvShapeInference) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 3, 224, 224});
  const NodeId c = g.add(OpKind::kConv2d, "conv", {in}, conv_attrs(64, 7, 2, 3));
  EXPECT_EQ(g.node(c).out_shape, Shape({1, 64, 112, 112}));
}

class ConvShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(ConvShapeSweep, MatchesFormula) {
  const auto [k, s, p] = GetParam();
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 8, 32, 32});
  const NodeId c = g.add(OpKind::kConv2d, "conv", {in}, conv_attrs(16, k, s, p));
  const std::int64_t expected = (32 + 2 * p - k) / s + 1;
  EXPECT_EQ(g.node(c).out_shape.h(), expected);
  EXPECT_EQ(g.node(c).out_shape.w(), expected);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ConvShapeSweep,
                         ::testing::Values(std::tuple{1, 1, 0}, std::tuple{3, 1, 1},
                                           std::tuple{3, 2, 1}, std::tuple{5, 1, 2},
                                           std::tuple{5, 2, 2}, std::tuple{7, 2, 3},
                                           std::tuple{3, 2, 0}, std::tuple{11, 4, 2}));

TEST(Graph, ConvGroupsMustDivide) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 6, 8, 8});
  EXPECT_THROW(g.add(OpKind::kConv2d, "c", {in}, conv_attrs(8, 3, 1, 1, 4)), GraphError);
}

TEST(Graph, NonPositiveOutputExtentRejected) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 3, 4, 4});
  EXPECT_THROW(g.add(OpKind::kConv2d, "c", {in}, conv_attrs(8, 7, 1, 0)), GraphError);
}

TEST(Graph, DenseRequiresRank2) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 3, 8, 8});
  AttrMap a;
  a.set_int("units", 10);
  EXPECT_THROW(g.add(OpKind::kDense, "fc", {in}, a), GraphError);
  const NodeId flat = g.add(OpKind::kFlatten, "flat", {in});
  const NodeId fc = g.add(OpKind::kDense, "fc2", {flat}, a);
  EXPECT_EQ(g.node(fc).out_shape, Shape({1, 10}));
}

TEST(Graph, AddBroadcastChannelwise) {
  Graph g("t");
  const NodeId a = g.add_input("a", Shape{1, 8, 4, 4});
  const NodeId gap = g.add(OpKind::kGlobalAvgPool, "gap", {a});
  const NodeId m = g.add(OpKind::kMul, "scale", {a, gap});
  EXPECT_EQ(g.node(m).out_shape, Shape({1, 8, 4, 4}));
}

TEST(Graph, AddShapeMismatchRejected) {
  Graph g("t");
  const NodeId a = g.add_input("a", Shape{1, 8, 4, 4});
  const NodeId b = g.add_input("b", Shape{1, 4, 4, 4});
  EXPECT_THROW(g.add(OpKind::kAdd, "add", {a, b}), GraphError);
}

TEST(Graph, ConcatSumsAxis) {
  Graph g("t");
  const NodeId a = g.add_input("a", Shape{1, 8, 4, 4});
  const NodeId b = g.add_input("b", Shape{1, 24, 4, 4});
  AttrMap attrs;
  attrs.set_int("axis", 1);
  const NodeId c = g.add(OpKind::kConcat, "cat", {a, b}, attrs);
  EXPECT_EQ(g.node(c).out_shape.c(), 32);
}

TEST(Graph, ConcatMismatchedSpatialRejected) {
  Graph g("t");
  const NodeId a = g.add_input("a", Shape{1, 8, 4, 4});
  const NodeId b = g.add_input("b", Shape{1, 8, 8, 8});
  AttrMap attrs;
  attrs.set_int("axis", 1);
  EXPECT_THROW(g.add(OpKind::kConcat, "cat", {a, b}, attrs), GraphError);
}

TEST(Graph, UpsampleAndFlattenShapes) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{2, 8, 13, 13});
  AttrMap up;
  up.set_int("scale", 2);
  const NodeId u = g.add(OpKind::kUpsample, "up", {in}, up);
  EXPECT_EQ(g.node(u).out_shape, Shape({2, 8, 26, 26}));
  const NodeId f = g.add(OpKind::kFlatten, "flat", {u});
  EXPECT_EQ(g.node(f).out_shape, Shape({2, 8 * 26 * 26}));
}

TEST(Graph, GlobalAvgPoolShape) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{4, 100, 7, 7});
  const NodeId p = g.add(OpKind::kGlobalAvgPool, "gap", {in});
  EXPECT_EQ(g.node(p).out_shape, Shape({4, 100, 1, 1}));
}

TEST(Graph, TopoOrderRespectsIds) {
  Graph g = zoo::micro_cnn("m", 1, 1, 16, 4);
  const auto order = g.topo_order();
  for (NodeId id : order) {
    for (NodeId in : g.node(id).inputs) EXPECT_LT(in, id);
  }
}

TEST(Graph, OutputsAndInputs) {
  Graph g = zoo::micro_mlp("m", 1, 10, {8}, 3);
  EXPECT_EQ(g.inputs().size(), 1u);
  EXPECT_EQ(g.outputs().size(), 1u);
  EXPECT_EQ(g.node(g.outputs().front()).kind, OpKind::kSoftmax);
}

TEST(Graph, BypassRewiresConsumers) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 4, 8, 8});
  const NodeId r = g.add(OpKind::kRelu, "relu", {in});
  const NodeId p = g.add(OpKind::kGlobalAvgPool, "gap", {r});
  g.bypass(r);
  EXPECT_TRUE(g.node(r).dead);
  EXPECT_EQ(g.node(p).inputs.front(), in);
  g.validate();
  EXPECT_EQ(g.size(), 2u);
}

TEST(Graph, BypassInputRejected) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 4, 8, 8});
  EXPECT_THROW(g.bypass(in), GraphError);
}

TEST(Graph, ConsumingDeadNodeRejected) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 4, 8, 8});
  const NodeId r = g.add(OpKind::kRelu, "relu", {in});
  g.add(OpKind::kSigmoid, "sig", {r});
  g.bypass(r);
  EXPECT_THROW(g.add(OpKind::kTanh, "tanh", {r}), GraphError);
}

TEST(Graph, FindByName) {
  Graph g = zoo::motor_net();
  EXPECT_NO_THROW((void)g.find("logits"));
  EXPECT_THROW((void)g.find("nonexistent"), NotFound);
}

TEST(Graph, MaterializeWeightsShapes) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 3, 8, 8});
  const NodeId c = g.add(OpKind::kConv2d, "conv", {in}, conv_attrs(16, 3, 1, 1));
  AttrMap bn;
  bn.set_float("epsilon", 1e-5);
  const NodeId b = g.add(OpKind::kBatchNorm, "bn", {c}, bn);
  Rng rng(1);
  g.materialize_weights(rng);
  EXPECT_TRUE(g.weights_materialized());
  EXPECT_EQ(g.node(c).weights[0].shape(), Shape({16, 3, 3, 3}));
  EXPECT_EQ(g.node(c).weights[1].shape(), Shape({16}));
  EXPECT_EQ(g.node(b).weights.size(), 4u);
}

TEST(Graph, ParamCountMatchesMaterializedWeights) {
  Graph g = zoo::micro_cnn("m", 1, 3, 32, 10);
  Rng rng(2);
  g.materialize_weights(rng);
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    std::int64_t actual = 0;
    for (const auto& w : n.weights) actual += w.numel();
    EXPECT_EQ(actual, g.param_count(id)) << n.name;
  }
}

TEST(Cost, ConvMacFormula) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 8, 16, 16});
  const NodeId c = g.add(OpKind::kConv2d, "conv", {in}, conv_attrs(32, 3, 1, 1, 1, 0));
  const auto cost = node_cost(g, c);
  // 16*16*32 outputs * 8 in-channels * 9 taps
  EXPECT_EQ(cost.macs, 16 * 16 * 32 * 8 * 9);
  EXPECT_EQ(cost.ops, 2 * cost.macs);
}

TEST(Cost, DepthwiseConvUsesGroupChannels) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 8, 16, 16});
  const NodeId c = g.add(OpKind::kConv2d, "dw", {in}, conv_attrs(8, 3, 1, 1, 8, 0));
  EXPECT_EQ(node_cost(g, c).macs, 16 * 16 * 8 * 1 * 9);
}

TEST(Cost, BatchScalesLinearly) {
  const auto c1 = graph_cost(zoo::mobilenet_v3_large(1));
  const auto c4 = graph_cost(zoo::mobilenet_v3_large(4));
  EXPECT_EQ(c4.macs, 4 * c1.macs);
  EXPECT_EQ(c4.params, c1.params);  // params don't scale with batch
}

TEST(Zoo, ResNet50CanonicalNumbers) {
  const auto cost = graph_cost(zoo::resnet50());
  EXPECT_NEAR(static_cast<double>(cost.params), 25.6e6, 0.5e6);
  EXPECT_NEAR(static_cast<double>(cost.macs), 4.1e9, 0.2e9);
}

TEST(Zoo, MobileNetV3CanonicalNumbers) {
  const auto cost = graph_cost(zoo::mobilenet_v3_large());
  EXPECT_NEAR(static_cast<double>(cost.params), 5.4e6, 0.4e6);
  EXPECT_NEAR(static_cast<double>(cost.macs), 219e6, 25e6);
}

TEST(Zoo, YoloV4CanonicalNumbers) {
  const auto cost = graph_cost(zoo::yolov4());
  EXPECT_NEAR(static_cast<double>(cost.params), 64e6, 4e6);
  EXPECT_NEAR(static_cast<double>(cost.macs), 30e9, 3e9);
}

TEST(Zoo, YoloV4HasThreeHeads) {
  Graph g = zoo::yolov4();
  const auto outs = g.outputs();
  EXPECT_EQ(outs.size(), 3u);
  std::set<std::int64_t> strides;
  for (NodeId id : outs) {
    EXPECT_EQ(g.node(id).out_shape.c(), 3 * 85);
    strides.insert(416 / g.node(id).out_shape.h());
  }
  EXPECT_EQ(strides, std::set<std::int64_t>({8, 16, 32}));
}

TEST(Zoo, AllUseCaseNetsValidate) {
  for (Graph g : {zoo::gesture_net(), zoo::face_net(), zoo::object_det_net(), zoo::speech_net(),
                  zoo::motor_net(), zoo::arc_net(), zoo::pedestrian_net()}) {
    EXPECT_NO_THROW(g.validate());
    EXPECT_GT(graph_cost(g).macs, 0);
  }
}

TEST(Zoo, UseCaseNetsAreSmall) {
  // The use-case nets target embedded deployment: all under 5M params.
  for (Graph g : {zoo::gesture_net(), zoo::face_net(), zoo::object_det_net(), zoo::speech_net(),
                  zoo::motor_net(), zoo::arc_net(), zoo::pedestrian_net()}) {
    EXPECT_LT(g.total_params(), 5'000'000) << g.name();
  }
}

TEST(Serialize, RoundTripPreservesStructureAndCost) {
  Graph g = zoo::mobilenet_v3_large();
  const std::string text = to_text(g);
  Graph back = from_text(text);
  EXPECT_EQ(back.size(), g.size());
  const auto c0 = graph_cost(g);
  const auto c1 = graph_cost(back);
  EXPECT_EQ(c0.macs, c1.macs);
  EXPECT_EQ(c0.params, c1.params);
}

TEST(Serialize, RoundTripAfterSurgery) {
  Graph g = zoo::micro_cnn("m", 1, 3, 16, 4);
  // Kill one activation, then round trip: dead nodes must be compacted.
  for (NodeId id : g.topo_order()) {
    if (g.node(id).kind == OpKind::kRelu) {
      g.bypass(id);
      break;
    }
  }
  Graph back = from_text(to_text(g));
  EXPECT_EQ(back.size(), g.size());
  EXPECT_EQ(back.total_nodes(), back.size());  // compacted
}

TEST(Serialize, RejectsGarbage) {
  EXPECT_THROW((void)from_text("not a graph"), GraphError);
  EXPECT_THROW((void)from_text("graph g\nnode Bogus \"x\" in= attrs{}"), Error);
}

TEST(Graph, CloneIsDeep) {
  Graph g = zoo::micro_mlp("m", 1, 4, {8}, 2);
  Rng rng(3);
  g.materialize_weights(rng);
  Graph copy = g.clone();
  copy.node(copy.find("fc0")).weights[0].fill(0.0f);
  EXPECT_NE(g.node(g.find("fc0")).weights[0].abs_sum(), 0.0);
}

}  // namespace
}  // namespace vedliot
// appended: EfficientNet-Lite0 canonical numbers
namespace vedliot {
namespace {

TEST(Zoo, EfficientNetLite0CanonicalNumbers) {
  const auto cost = graph_cost(zoo::efficientnet_lite0());
  EXPECT_NEAR(static_cast<double>(cost.params), 4.7e6, 0.5e6);
  EXPECT_NEAR(static_cast<double>(cost.macs), 400e6, 50e6);
}

TEST(Zoo, EfficientNetLite0HasNoSqueezeExcite) {
  // The "lite" fixes: no SE blocks (no Mul nodes), ReLU6 only.
  Graph g = zoo::efficientnet_lite0();
  for (NodeId id : g.topo_order()) {
    EXPECT_NE(g.node(id).kind, OpKind::kMul);
    EXPECT_NE(g.node(id).kind, OpKind::kHSwish);
    EXPECT_NE(g.node(id).kind, OpKind::kSigmoid);
  }
}

}  // namespace
}  // namespace vedliot
