#pragma once
/// \file serialize.hpp
/// \brief Text serialization of the graph IR (the project's interchange
/// format, playing the role ONNX plays in the paper's toolchain).
///
/// The format is line-oriented and human-diffable; weights are not
/// serialized (models are exchanged analytically, weights are materialized
/// deterministically from a seed).

#include <string>

#include "graph/graph.hpp"

namespace vedliot {

/// Serialize a graph to the textual exchange format.
std::string to_text(const Graph& g);

/// Parse a graph from the textual exchange format; throws GraphError on
/// malformed input. Dead nodes are not round-tripped (they are compacted
/// away), so parse(to_text(g)) has only live nodes.
Graph from_text(const std::string& text);

}  // namespace vedliot
