#pragma once
/// \file ota_soak.hpp
/// \brief Deterministic fleet-rollout soak: resumable transfers over a lossy
/// fabric, staged canary waves, halt-and-rollback containment.
///
/// One run_ota_soak() call builds a SMARC device swarm on a star fabric,
/// schedules a seeded lossy-fabric campaign (partitions, crashes, packet
/// duplication/reordering at the configured fault rate) and drives one
/// fleet-wide OTA rollout (serve/rollout.hpp) of a sealed v2 package from
/// version 1 to version 2 — or, in the bad-package scenario, a package that
/// commits on-device but diverges from the release manifest and must be
/// halted at the canary wave and rolled back everywhere.
///
/// Invariants machine-checked on every run:
///
///   1. convergence — the rollout reaches a terminal state and every live
///      device ends on a *verified* version: its serve fingerprint equals
///      the baseline CRC (v1) or the target CRC (v2), never anything else;
///   2. no torn install — a device only stages after receiving every
///      distinct chunk, only commits after staging, and no probe ever
///      catches a device serving an unverifiable image (torn_serves == 0);
///      version-skew honesty rides along: zero cache CRC mismatches;
///   3. bounded rollback traffic — rollback events in any time interval
///      respect the token bucket (count <= burst + rate * span), and the
///      bad-package scenario finishes its fleet rollback within the pacing
///      budget (queue length minus burst, paid at the refill rate);
///   4. monotone progress — the committed-device curve never decreases
///      within a run (a halt stops progress; it never un-counts commits
///      until the paced rollbacks drain, which the curve does not sample);
///   5. observability — every ServeEvent mirrors 1:1, in order, into the
///      tracer ("vedliot.serve" instants) and per-kind counters match.
///
/// Everything derives from the seed: two runs of the same config serialize
/// to bitwise-identical to_json() strings (the bench driver verifies this).

#include <cstdint>
#include <string>
#include <vector>

#include "serve/rollout.hpp"

namespace vedliot::serve {

struct OtaSoakConfig {
  std::uint64_t seed = 0x5EEDu;
  double duration_s = 4.0;       ///< simulated budget (convergence is earlier)
  double fault_rate = 0.0;       ///< transient damage prob + campaign scale
  int n_devices = 12;
  std::size_t chunk_bytes = 1024;
  bool bad_package = false;      ///< target diverges from the release manifest
  /// Lossy campaign window (events + heals). Deliberately tight: the
  /// rollout converges within tens of milliseconds, and the campaign must
  /// land inside the transfer window to actually sever live transfers.
  double campaign_s = 0.04;
};

struct OtaSoakResult {
  OtaSoakConfig config;
  RolloutReport report;
  std::vector<std::string> violations;  ///< empty = all five invariants hold
  std::string sim_describe;             ///< seed/fault identity of the run

  bool converged = false;        ///< invariant 1 held
  bool no_torn_install = false;  ///< invariant 2 held
  double rollback_span_s = 0;    ///< halt -> last rollback (bad package)

  bool ok() const { return violations.empty(); }

  /// Deterministic JSON-lines record ("record":"soak-ota"); bitwise
  /// identical across runs of the same config.
  std::string to_json() const;
};

/// Run one seeded fleet-rollout soak at the configured fault rate.
OtaSoakResult run_ota_soak(const OtaSoakConfig& config);

}  // namespace vedliot::serve
