// FIG4 — YoloV4 performance evaluation of DL accelerators (paper Fig. 4).
//
// For each platform of the paper's evaluation set and batch sizes 1/4/8,
// prints achieved GOPS and power — the two series Fig. 4 plots. Precision
// per platform follows the paper ("INT8, FP16 or FP32 depending on the
// supported quantization of the hardware").

#include <iostream>

#include "bench_common.hpp"
#include "graph/zoo.hpp"
#include "hw/perf_model.hpp"
#include "util/table.hpp"

using namespace vedliot;

void print_artifact() {
  bench::banner("FIG4", "YoloV4 (416x416) performance and power per platform, B1/B4/B8");

  Table t({"platform", "dtype", "batch", "GOPS", "power W", "GOPS/W", "ms/inf", "bound"});
  for (const auto& dev : hw::yolo_eval_platforms()) {
    for (int batch : {1, 4, 8}) {
      Graph g = zoo::yolov4(batch);
      const auto e = hw::estimate(dev, g, dev.best_dtype);
      std::string batch_label = "B";
      batch_label += std::to_string(batch);
      t.add_row({dev.name, std::string(dtype_name(dev.best_dtype)),
                 batch_label, fmt_fixed(e.achieved_gops, 0),
                 fmt_fixed(e.power_w, 1), fmt_fixed(e.efficiency_gops_w, 1),
                 fmt_fixed(1e3 * e.latency_s / batch, 1),
                 e.bound == hw::Bound::kCompute ? "compute" : "memory"});
    }
  }
  t.print(std::cout);
  bench::note("expected shape: GPUs/eGPUs gain strongly from batching; CPUs and FPGA");
  bench::note("overlays stay flat; MyriadX draws the least power; FPGAs lead GOPS/W at B1.");
}

static void BM_EstimateYolo(benchmark::State& state) {
  Graph g = zoo::yolov4(static_cast<std::int64_t>(state.range(0)));
  const auto& dev = hw::find_device("XavierNX");
  for (auto _ : state) {
    auto e = hw::estimate(dev, g, DType::kINT8);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_EstimateYolo)->Arg(1)->Arg(8);

static void BM_BuildYoloGraph(benchmark::State& state) {
  for (auto _ : state) {
    Graph g = zoo::yolov4();
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BuildYoloGraph);

VEDLIOT_BENCH_MAIN()
