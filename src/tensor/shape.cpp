#include "tensor/shape.hpp"

#include <sstream>

#include "util/error.hpp"

namespace vedliot {

namespace {
void validate(std::span<const std::int64_t> dims) {
  for (auto d : dims) {
    if (d <= 0) throw InvalidArgument("Shape extents must be positive, got " + std::to_string(d));
  }
}
}  // namespace

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(dims_); }

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) { validate(dims_); }

std::int64_t Shape::dim(std::size_t i) const {
  VEDLIOT_CHECK(i < dims_.size(), "Shape dim index out of range");
  return dims_[i];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::int64_t Shape::dim4(std::size_t i) const {
  VEDLIOT_CHECK(dims_.size() == 4, "NCHW accessor requires rank-4 shape, got " + to_string());
  return dims_[i];
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace vedliot
