// T-PAEB — Pedestrian Automatic Emergency Braking offload study (Sec. V-A:
// distribute detection between on-car systems and edge stations "at
// varying speeds and reliability of mobile networks", minimizing on-car
// energy).
//
// Sweeps network bandwidth/RTT and vehicle speed, reporting where the
// offload manager sends frames to the edge and the on-car energy saved.

#include <iostream>

#include "bench_common.hpp"
#include "apps/network.hpp"
#include "apps/paeb.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::apps;

namespace {

OffloadManager make_manager() {
  PaebConfig cfg;
  cfg.oncar_device = hw::find_device("JetsonTX2");
  cfg.edge_device = hw::find_device("GTX1660");
  cfg.require_attestation = true;

  const Graph g = zoo::yolov4();
  PaebWorkload w;
  const auto c = graph_cost(g);
  w.ops = static_cast<double>(c.ops);
  w.traffic_bytes = graph_traffic_bytes(g, DType::kFP16, DType::kFP16);
  w.weight_bytes = weight_bytes(g, DType::kFP16);
  w.dtype = DType::kFP16;
  w.frame_bytes = 20e3;
  return OffloadManager(cfg, w);
}

}  // namespace

void print_artifact() {
  bench::banner("T-PAEB", "on-car vs edge offload across network quality and speed");

  OffloadManager manager = make_manager();
  std::printf("baseline: local inference %.1f ms, %.2f J per frame (on-car)\n\n",
              manager.local_latency_s() * 1e3, manager.local_energy_j());

  Table t({"coverage", "speed km/h", "budget ms", "choice", "latency ms", "on-car mJ",
           "saving"});
  for (Coverage cov : {Coverage::kGood5G, Coverage::kUrban4G, Coverage::kSuburban4G,
                       Coverage::kRural3G, Coverage::kDeadZone}) {
    for (double speed : {30.0, 50.0, 70.0}) {
      PaebScenario scenario;
      scenario.vehicle_speed_kmh = speed;
      const auto d = manager.decide(scenario, nominal_state(cov), /*edge_attested=*/true);
      const double saving = 1.0 - d.oncar_energy_j / manager.local_energy_j();
      t.add_row({std::string(coverage_name(cov)), fmt_fixed(speed, 0),
                 fmt_fixed(scenario.decision_budget_s() * 1e3, 0),
                 d.offloaded ? "edge" : "on-car", fmt_fixed(d.latency_s * 1e3, 1),
                 fmt_fixed(d.oncar_energy_j * 1e3, 1),
                 d.offloaded ? fmt_percent(saving) : "-"});
    }
  }
  t.print(std::cout);

  // Crossover sweep: the bandwidth at which offloading starts to win.
  std::printf("\ncrossover sweep at 50 km/h (attested edge):\n\n");
  Table c({"uplink Mbit/s", "choice", "on-car mJ"});
  PaebScenario scenario;
  for (double mbps : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0}) {
    LinkState link{mbps, 50.0, 0.005};
    const auto d = manager.decide(scenario, link, true);
    c.add_row({fmt_fixed(mbps, 2), d.offloaded ? "edge" : "on-car",
               fmt_fixed(d.oncar_energy_j * 1e3, 1)});
  }
  c.print(std::cout);
  bench::note("shape: offload wins above a bandwidth threshold; the window narrows as");
  bench::note("vehicle speed rises; dead zones always fall back to on-car inference.");

  // Security gate: the same good network without attestation.
  const auto gated = manager.decide(scenario, nominal_state(Coverage::kGood5G), false);
  std::printf("\nunattested edge on 5G: %s (%s)\n", gated.offloaded ? "edge" : "on-car",
              gated.reason.c_str());
}

static void BM_OffloadDecision(benchmark::State& state) {
  OffloadManager manager = make_manager();
  PaebScenario scenario;
  const LinkState link = nominal_state(Coverage::kUrban4G);
  for (auto _ : state) {
    auto d = manager.decide(scenario, link, true);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_OffloadDecision);

static void BM_NetworkStep(benchmark::State& state) {
  MobileNetwork net(Coverage::kUrban4G, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.step(0.1));
  }
}
BENCHMARK(BM_NetworkStep);

VEDLIOT_BENCH_MAIN()
