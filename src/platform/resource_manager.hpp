#pragma once
/// \file resource_manager.hpp
/// \brief System-level resource management (Sec. II-A): place DL workloads
/// on the chassis' heterogeneous modules, and reassign seamlessly when a
/// module is exchanged or fails ("easy exchange of computing resources and
/// seamless switching between heterogeneous components").

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "hw/perf_model.hpp"
#include "platform/baseboard.hpp"

namespace vedliot::platform {

/// A recurring inference workload to be placed on some module.
struct Workload {
  std::string name;
  double ops = 0;             ///< per inference
  double traffic_bytes = 0;   ///< per inference
  double weight_bytes = 0;
  DType dtype = DType::kINT8;
  double rate_hz = 1.0;       ///< required inference rate
  double latency_budget_s = 0.1;

  /// Derive the static numbers from a graph at a precision.
  static Workload from_graph(const std::string& name, const Graph& g, DType dt, double rate_hz,
                             double latency_budget_s);
};

struct Placement {
  std::string workload;
  std::string slot;
  std::string module;
  double latency_s = 0;
  double avg_power_w = 0;     ///< duty-cycled average power contribution
  double utilization = 0;     ///< fraction of the module's time consumed
};

/// Greedy energy-minimizing scheduler over an (already populated) chassis.
class ResourceManager {
 public:
  explicit ResourceManager(const Chassis& chassis);

  /// Place all workloads; throws PlatformError when some workload cannot be
  /// placed within latency and utilization constraints.
  std::vector<Placement> place(const std::vector<Workload>& workloads);

  /// Re-place after losing a slot (module exchange/failure): workloads that
  /// were on \p failed_slot move elsewhere, other placements are kept.
  std::vector<Placement> migrate(const std::vector<Placement>& current,
                                 const std::vector<Workload>& workloads,
                                 const std::string& failed_slot);

  /// Total duty-cycled power of a placement set (modules idle when unused).
  static double total_average_power_w(const std::vector<Placement>& placements);

  /// Effective-capacity adjustment (thermal throttle / shared tenancy):
  /// scale the slot's achievable GOPS by \p scale in (0, 1]. Scale 1.0
  /// restores full capacity. Throws NotFound for unknown slots.
  void set_capacity_scale(const std::string& slot, double scale);

  /// Current effective-capacity multiplier of a slot (1.0 = healthy).
  double capacity_scale(const std::string& slot) const;

  /// Remaining utilization headroom of a slot in [0, 1].
  double utilization_headroom(const std::string& slot) const;

  /// Slots this manager can still place onto (surviving candidate set).
  std::vector<std::string> slots() const;

 private:
  struct Candidate {
    std::string slot;
    MicroserverModule module;
    double busy = 0;   ///< accumulated utilization
    double scale = 1;  ///< effective-capacity multiplier (thermal throttle)
  };
  std::optional<Placement> try_place(const Workload& w, Candidate& c) const;
  const Candidate& candidate(const std::string& slot) const;

  std::vector<Candidate> candidates_;
};

}  // namespace vedliot::platform
