#pragma once
/// \file resilience.hpp
/// \brief Resilient distributed inference runtime (Sec. II-A "seamless
/// switching between heterogeneous components" + Sec. IV-B run-time fault
/// detection).
///
/// Drives a pipeline-parallel plan through a fault-injecting
/// PlatformSimulator timeline: heartbeat-based health detection with a
/// miss threshold, retry with exponential backoff + jitter for transient
/// fabric faults, automatic stage failover that replans onto surviving
/// slots (reusing plan_distributed_inference, with
/// ResourceManager::migrate as the capacity admission check), and
/// graceful degradation to a cheaper precision or fewer stages when the
/// surviving capacity cannot meet the latency budget. Every step is
/// recorded in a structured event log: fault injected -> detected after N
/// heartbeats -> recovery action -> recovered latency/throughput.

#include <deque>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/trace.hpp"
#include "platform/distributed.hpp"
#include "platform/faults.hpp"
#include "platform/health.hpp"
#include "safety/robustness.hpp"
#include "util/rng.hpp"

namespace vedliot::platform {

enum class ResilienceEventKind {
  kFaultInjected,     ///< the simulator applied a platform fault
  kHeartbeatMiss,     ///< a pipeline slot failed to answer a heartbeat
  kFaultDetected,     ///< miss threshold reached / verdict / partition hit
  kTransientFault,    ///< one transfer attempt failed transiently
  kRetry,             ///< backing off before re-attempting a transfer
  kTransferTimeout,   ///< retry budget exhausted; frame dropped
  kFailover,          ///< stage(s) moved off a failed slot
  kDegradedPrecision, ///< replanned at a cheaper DType
  kDegradedStages,    ///< replanned with fewer pipeline stages
  kRecovered,         ///< new plan live; value = recovered throughput (fps)
  kUnrecoverable,     ///< no surviving slot can host the pipeline
};

std::string_view resilience_event_name(ResilienceEventKind kind);

struct ResilienceEvent {
  double time_s = 0;
  ResilienceEventKind kind = ResilienceEventKind::kFaultInjected;
  std::string subject;  ///< slot, link or stage the event is about
  std::string detail;   ///< human-readable context
  double value = 0;     ///< kind-specific (misses, backoff s, fps, ...)
};

/// One line per event: "[ 0.030s] fault-detected      slot come1  ...".
std::string format_event(const ResilienceEvent& e);

struct ResilienceConfig {
  double heartbeat_period_s = 10e-3;  ///< health-probe cadence
  int heartbeat_miss_threshold = 3;   ///< consecutive misses -> dead

  int max_transfer_attempts = 5;      ///< per stage boundary per frame;
                                      ///< clamped to kTransferAttemptCap
  double backoff_base_s = 1e-3;       ///< exponential backoff base
  double backoff_cap_s = 32e-3;       ///< backoff ceiling

  double latency_budget_s = 1.0;      ///< one-frame budget gating degradation
  /// Cheaper precisions to fall back through (tried in order) when the
  /// surviving capacity misses the latency budget at the current DType.
  std::vector<DType> precision_ladder;

  double redeploy_gbps = 1.0;         ///< management-net speed for shipping
                                      ///< stage weights to a new slot
  double restart_latency_s = 50e-3;   ///< per moved stage (load + warmup)

  std::uint64_t seed = 0x5EEDu;       ///< backoff jitter determinism

  /// Optional span sink: every structured event is mirrored as an instant
  /// span (category "vedliot.platform.resilience"), replans emit planner
  /// spans, and the whole run is wrapped in a "resilience.run" span. The
  /// report's own event vector is unchanged, so determinism under a fixed
  /// seed is unaffected. Must outlive the controller when set.
  obs::Tracer* trace = nullptr;
};

struct ResilienceReport {
  std::vector<ResilienceEvent> events;

  DistributedPlan healthy_plan;  ///< the plan before any fault
  DistributedPlan final_plan;    ///< the plan live at the end of the run
  DType final_dtype = DType::kINT8;
  std::size_t final_stages = 0;
  bool pipeline_alive = true;    ///< false after kUnrecoverable

  std::vector<double> detection_latencies_s;  ///< inject -> detect
  std::vector<double> recovery_times_s;       ///< detect -> plan live again

  std::size_t frames_completed = 0;
  std::size_t frames_dropped = 0;
  std::size_t transfer_retries = 0;
  std::size_t failovers = 0;
  std::size_t degradations = 0;

  double mean_detection_latency_s() const;
  double mean_recovery_time_s() const;
  /// final vs healthy steady-state throughput (1.0 = fully recovered).
  double degraded_throughput_ratio() const;

  /// Machine-readable summary (one JSON object, events included) for log
  /// pipelines; round-trips through obs::json_parse.
  std::string to_json() const;
};

/// Orchestrates one distributed pipeline over a PlatformSimulator.
class ResilienceController {
 public:
  /// Hard cap on ResilienceConfig::max_transfer_attempts: the per-frame
  /// retry loop stays bounded even when a caller passes a huge budget, so
  /// a long soak against a permanently-failing link cannot wedge the run.
  static constexpr int kTransferAttemptCap = 64;

  ResilienceController(const Graph& g, PlatformSimulator& sim,
                       std::vector<std::string> slots, std::size_t num_stages,
                       DType dtype, ResilienceConfig config);

  /// External fault-detection source (Sec. IV-B): a checked-faulty verdict
  /// from the robustness service marks the deployed model on \p slot as
  /// corrupted at \p time_s of the coming run — the slot is quarantined and
  /// its stages fail over immediately, without waiting for heartbeats
  /// (the module still answers them; its *outputs* are wrong).
  void report_verdict(const std::string& slot, safety::CheckResult verdict, double time_s);

  /// Drive the pipeline for \p duration_s of simulated time: apply the
  /// simulator's fault schedule, detect, retry, fail over, degrade, and
  /// account per-frame progress. One-shot per controller.
  ResilienceReport run(double duration_s);

  /// The structured event log recorded so far (valid during and after
  /// run(); grows as the run progresses).
  std::span<const ResilienceEvent> events() const { return report_.events; }

 private:
  struct PendingVerdict {
    double time_s = 0;
    std::string slot;
  };

  void log(double t, ResilienceEventKind kind, const std::string& subject,
           const std::string& detail, double value = 0);
  void note_injected(double t, const std::vector<FaultEvent>& applied);
  void heartbeat_tick(double t);
  void verdict_tick(double t);
  bool capacity_admits(const std::vector<std::string>& avail, DType dt) const;
  void recover(double t, const std::string& reason);
  void process_frames(double t);
  bool process_one_frame(double t);

  const Graph& graph_;
  PlatformSimulator& sim_;
  std::vector<std::string> slots_;       ///< slots the pipeline may use
  std::size_t preferred_stages_;
  DType preferred_dtype_;
  ResilienceConfig cfg_;
  Rng rng_;

  DistributedPlan plan_;
  DType dtype_;
  std::size_t stages_;
  bool plan_valid_ = false;

  HealthMonitor health_;                       ///< heartbeat miss detection
  std::map<std::string, double> undetected_;   ///< subject -> inject time
  std::set<std::string> quarantined_;          ///< corrupt-model slots
  std::deque<PendingVerdict> verdicts_;        ///< sorted by arrival time
  bool need_replan_ = false;
  std::string replan_reason_;

  double stall_until_ = 0;   ///< pipeline paused while redeploying
  double frame_credit_ = 0;  ///< fractional frames owed to the pipeline
  double detect_mark_ = -1;  ///< detection time backing the next recovery

  ResilienceReport report_;
  bool ran_ = false;
};

}  // namespace vedliot::platform
