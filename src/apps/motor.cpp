#include "apps/motor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/fft.hpp"

namespace vedliot::apps {

std::string_view motor_condition_name(MotorCondition c) {
  switch (c) {
    case MotorCondition::kHealthy: return "healthy";
    case MotorCondition::kImbalance: return "imbalance";
    case MotorCondition::kBearingFault: return "bearing-fault";
    case MotorCondition::kOverheat: return "overheat";
  }
  throw InvalidArgument("unknown MotorCondition");
}

VibrationGenerator::VibrationGenerator(Config config, std::uint64_t seed)
    : cfg_(config), rng_(seed) {}

void VibrationGenerator::add_tone(std::vector<float>& spectrum, double freq_hz, double amplitude) {
  const double nyquist = cfg_.sample_rate_hz / 2.0;
  const double bin_f = freq_hz / nyquist * static_cast<double>(kSpectrumBins);
  const auto center = static_cast<std::int64_t>(bin_f);
  // Spread over 3 bins (window leakage).
  for (std::int64_t d = -1; d <= 1; ++d) {
    const std::int64_t b = center + d;
    if (b < 0 || b >= static_cast<std::int64_t>(kSpectrumBins)) continue;
    const double w = d == 0 ? 1.0 : 0.35;
    spectrum[static_cast<std::size_t>(b)] +=
        static_cast<float>(amplitude * w * (1.0 + rng_.normal(0.0, 0.08)));
  }
}

MotorFeatures VibrationGenerator::sample(MotorCondition condition) {
  MotorFeatures f(kMotorFeatureDim, 0.0f);
  std::vector<float> spectrum(kSpectrumBins, 0.0f);

  for (auto& v : spectrum) v = static_cast<float>(std::abs(rng_.normal(0.0, cfg_.noise_floor)));

  const double f_rot = cfg_.rpm / 60.0;        // rotation frequency
  const double f_line = 50.0;                  // mains
  // Every motor shows the rotation line and mains harmonics.
  add_tone(spectrum, f_rot, 0.15);
  add_tone(spectrum, 2 * f_line, 0.1);

  double temp_stator = 55.0 + rng_.normal(0.0, 2.0);
  double temp_bearing = 45.0 + rng_.normal(0.0, 2.0);
  double rms_boost = 0.0;

  switch (condition) {
    case MotorCondition::kHealthy:
      break;
    case MotorCondition::kImbalance:
      // Dominant 1x RPM component plus 2x harmonic.
      add_tone(spectrum, f_rot, 0.9 * cfg_.severity);
      add_tone(spectrum, 2 * f_rot, 0.3 * cfg_.severity);
      rms_boost = 0.2 * cfg_.severity;
      break;
    case MotorCondition::kBearingFault: {
      // Characteristic bearing tones (BPFO/BPFI-like) in the kHz region
      // with raised broadband noise.
      add_tone(spectrum, 37.0 * f_rot / 10.0 * 60.0, 0.5 * cfg_.severity);
      add_tone(spectrum, 1600.0, 0.45 * cfg_.severity);
      add_tone(spectrum, 2400.0, 0.35 * cfg_.severity);
      for (std::size_t b = kSpectrumBins / 2; b < kSpectrumBins; ++b) {
        spectrum[b] += static_cast<float>(std::abs(rng_.normal(0.0, 0.05 * cfg_.severity)));
      }
      temp_bearing += 12.0 * cfg_.severity;
      rms_boost = 0.1 * cfg_.severity;
      break;
    }
    case MotorCondition::kOverheat:
      temp_stator += 35.0 * cfg_.severity;
      temp_bearing += 15.0 * cfg_.severity;
      // Slight electromagnetic signature shift.
      add_tone(spectrum, 2 * f_line, 0.2 * cfg_.severity);
      break;
  }

  std::copy(spectrum.begin(), spectrum.end(), f.begin());

  // Aggregate features.
  double rms = 0.0, peak = 0.0;
  for (float v : spectrum) {
    rms += static_cast<double>(v) * v;
    peak = std::max(peak, static_cast<double>(v));
  }
  rms = std::sqrt(rms / kSpectrumBins) + rms_boost;
  const double crest = peak / std::max(rms, 1e-9);

  f[kSpectrumBins + 0] = static_cast<float>(temp_stator);
  f[kSpectrumBins + 1] = static_cast<float>(temp_bearing);
  f[kSpectrumBins + 2] = static_cast<float>(rms);
  f[kSpectrumBins + 3] = static_cast<float>(crest);
  f[kSpectrumBins + 4] = static_cast<float>(12.5 + rng_.normal(0.0, 0.3));  // line current (A)
  f[kSpectrumBins + 5] = static_cast<float>(cfg_.rpm + rng_.normal(0.0, 5.0));
  f[kSpectrumBins + 6] = static_cast<float>(0.82 + rng_.normal(0.0, 0.01)); // power factor
  f[kSpectrumBins + 7] = static_cast<float>(rng_.normal(0.0, 1.0));         // aux noise channel
  return f;
}

/// Tone list + context describing one condition's physical signature.
struct VibrationGenerator::Signature {
  std::vector<std::pair<double, double>> tones;  ///< (frequency Hz, amplitude)
  double broadband = 0.0;                        ///< white-noise amplitude (bearing wear)
  double temp_stator = 55.0;
  double temp_bearing = 45.0;
  double rms_boost = 0.0;
};

VibrationGenerator::Signature VibrationGenerator::signature_for(MotorCondition condition) {
  const double f_rot = cfg_.rpm / 60.0;
  const double f_line = 50.0;
  Signature s;
  s.tones = {{f_rot, 0.15}, {2 * f_line, 0.1}};
  s.temp_stator = 55.0 + rng_.normal(0.0, 2.0);
  s.temp_bearing = 45.0 + rng_.normal(0.0, 2.0);
  switch (condition) {
    case MotorCondition::kHealthy:
      break;
    case MotorCondition::kImbalance:
      s.tones.emplace_back(f_rot, 0.9 * cfg_.severity);
      s.tones.emplace_back(2 * f_rot, 0.3 * cfg_.severity);
      s.rms_boost = 0.2 * cfg_.severity;
      break;
    case MotorCondition::kBearingFault:
      s.tones.emplace_back(37.0 * f_rot / 10.0 * 60.0, 0.5 * cfg_.severity);
      s.tones.emplace_back(1600.0, 0.45 * cfg_.severity);
      s.tones.emplace_back(2400.0, 0.35 * cfg_.severity);
      s.broadband = 0.08 * cfg_.severity;
      s.temp_bearing += 12.0 * cfg_.severity;
      s.rms_boost = 0.1 * cfg_.severity;
      break;
    case MotorCondition::kOverheat:
      s.temp_stator += 35.0 * cfg_.severity;
      s.temp_bearing += 15.0 * cfg_.severity;
      s.tones.emplace_back(2 * f_line, 0.2 * cfg_.severity);
      break;
  }
  return s;
}

VibrationGenerator::Observation VibrationGenerator::sample_observation(MotorCondition condition) {
  const Signature sig = signature_for(condition);
  Observation obs;
  const std::size_t n = 2 * kSpectrumBins;
  obs.waveform.resize(n);
  std::vector<double> phases;
  for (std::size_t t = 0; t < sig.tones.size(); ++t) {
    phases.push_back(rng_.uniform(0.0, 2.0 * 3.14159265358979));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / cfg_.sample_rate_hz;
    double x = rng_.normal(0.0, cfg_.noise_floor);
    for (std::size_t k = 0; k < sig.tones.size(); ++k) {
      x += sig.tones[k].second * std::sin(2.0 * 3.14159265358979 * sig.tones[k].first * t + phases[k]);
    }
    if (sig.broadband > 0) x += rng_.normal(0.0, sig.broadband);
    obs.waveform[i] = static_cast<float>(x);
  }
  obs.temp_stator_c = sig.temp_stator;
  obs.temp_bearing_c = sig.temp_bearing;
  obs.line_current_a = 12.5 + rng_.normal(0.0, 0.3);
  obs.rpm = cfg_.rpm + rng_.normal(0.0, 5.0);
  obs.power_factor = 0.82 + rng_.normal(0.0, 0.01);
  return obs;
}

MotorFeatures features_from_observation(const VibrationGenerator::Observation& obs,
                                        double sample_rate_hz) {
  (void)sample_rate_hz;  // the feature layout is bin-indexed, not Hz-indexed
  VEDLIOT_CHECK(obs.waveform.size() >= 2 * kSpectrumBins,
                "waveform too short for the FFT front-end");
  MotorFeatures f(kMotorFeatureDim, 0.0f);
  const auto spectrum = dsp::magnitude_spectrum(obs.waveform, 2 * kSpectrumBins);
  for (std::size_t i = 0; i < kSpectrumBins; ++i) f[i] = static_cast<float>(spectrum[i]);

  double rms = 0.0, peak = 0.0;
  for (double v : spectrum) {
    rms += v * v;
    peak = std::max(peak, v);
  }
  rms = std::sqrt(rms / static_cast<double>(kSpectrumBins));
  const double crest = peak / std::max(rms, 1e-9);

  f[kSpectrumBins + 0] = static_cast<float>(obs.temp_stator_c);
  f[kSpectrumBins + 1] = static_cast<float>(obs.temp_bearing_c);
  f[kSpectrumBins + 2] = static_cast<float>(rms);
  f[kSpectrumBins + 3] = static_cast<float>(crest);
  f[kSpectrumBins + 4] = static_cast<float>(obs.line_current_a);
  f[kSpectrumBins + 5] = static_cast<float>(obs.rpm);
  f[kSpectrumBins + 6] = static_cast<float>(obs.power_factor);
  f[kSpectrumBins + 7] = 0.0f;
  return f;
}

void MotorClassifier::fit(const std::vector<std::pair<MotorFeatures, MotorCondition>>& samples) {
  VEDLIOT_CHECK(!samples.empty(), "cannot fit on empty data");
  // Standardize features so temperatures and spectrum bins are comparable.
  mean_.assign(kMotorFeatureDim, 0.0);
  scale_.assign(kMotorFeatureDim, 0.0);
  for (const auto& [x, y] : samples) {
    VEDLIOT_CHECK(x.size() == kMotorFeatureDim, "bad feature dimension");
    for (std::size_t i = 0; i < kMotorFeatureDim; ++i) mean_[i] += x[i];
  }
  for (auto& m : mean_) m /= static_cast<double>(samples.size());
  for (const auto& [x, y] : samples) {
    for (std::size_t i = 0; i < kMotorFeatureDim; ++i) {
      scale_[i] += (x[i] - mean_[i]) * (x[i] - mean_[i]);
    }
  }
  for (auto& s : scale_) s = std::max(std::sqrt(s / static_cast<double>(samples.size())), 1e-6);

  std::array<std::size_t, kMotorConditionCount> counts{};
  for (auto& c : centroids_) c.assign(kMotorFeatureDim, 0.0);
  for (const auto& [x, y] : samples) {
    auto& c = centroids_[static_cast<std::size_t>(y)];
    for (std::size_t i = 0; i < kMotorFeatureDim; ++i) c[i] += (x[i] - mean_[i]) / scale_[i];
    ++counts[static_cast<std::size_t>(y)];
  }
  for (std::size_t k = 0; k < kMotorConditionCount; ++k) {
    VEDLIOT_CHECK(counts[k] > 0, "fit requires samples of every condition");
    for (auto& v : centroids_[k]) v /= static_cast<double>(counts[k]);
  }
  fitted_ = true;
}

MotorCondition MotorClassifier::classify(const MotorFeatures& features) const {
  VEDLIOT_CHECK(fitted_, "classifier not fitted");
  VEDLIOT_CHECK(features.size() == kMotorFeatureDim, "bad feature dimension");
  double best = 0.0;
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < kMotorConditionCount; ++k) {
    double dist = 0.0;
    for (std::size_t i = 0; i < kMotorFeatureDim; ++i) {
      const double z = (features[i] - mean_[i]) / scale_[i] - centroids_[k][i];
      dist += z * z;
    }
    if (k == 0 || dist < best) {
      best = dist;
      best_k = k;
    }
  }
  return static_cast<MotorCondition>(best_k);
}

double MotorBoxEnergy::average_power_w(double interval_s) const {
  VEDLIOT_CHECK(interval_s > 0, "interval must be positive");
  const double active_s = sense_s + compute_s;
  VEDLIOT_CHECK(interval_s >= active_s, "interval shorter than the active burst");
  const double energy_per_cycle = sense_w * sense_s + compute_w * compute_s +
                                  sleep_w * (interval_s - active_s);
  return energy_per_cycle / interval_s;
}

double MotorBoxEnergy::battery_life_days(double interval_s, double battery_wh) const {
  const double p = average_power_w(interval_s);
  return battery_wh / p / 24.0;
}

}  // namespace vedliot::apps
