#include "sim/bus.hpp"

#include <cstring>

namespace vedliot::sim {

Bus::Bus(std::uint32_t ram_base, std::uint32_t ram_size) : ram_base_(ram_base), ram_(ram_size, 0) {
  VEDLIOT_CHECK(ram_size > 0, "RAM size must be positive");
}

bool Bus::in_ram(std::uint32_t addr, std::uint32_t len) const {
  return addr >= ram_base_ && addr + len <= ram_base_ + ram_.size() && addr + len > addr;
}

Peripheral* Bus::find_peripheral(std::uint32_t addr) {
  for (auto& p : peripherals_) {
    if (addr >= p->base() && addr < p->base() + p->size()) return p.get();
  }
  return nullptr;
}

void Bus::attach(std::shared_ptr<Peripheral> p) {
  VEDLIOT_CHECK(p != nullptr, "null peripheral");
  const std::uint32_t lo = p->base();
  const std::uint32_t hi = p->base() + p->size();
  if (in_ram(lo, 1) || in_ram(hi - 1, 1)) throw SimError("peripheral overlaps RAM: " + p->name());
  for (const auto& other : peripherals_) {
    const std::uint32_t olo = other->base();
    const std::uint32_t ohi = other->base() + other->size();
    if (lo < ohi && olo < hi) {
      throw SimError("peripheral overlap: " + p->name() + " vs " + other->name());
    }
  }
  peripherals_.push_back(std::move(p));
}

std::uint8_t Bus::read8(std::uint32_t addr) {
  if (in_ram(addr, 1)) return ram_[addr - ram_base_];
  if (Peripheral* p = find_peripheral(addr)) {
    const std::uint32_t word = p->read32((addr - p->base()) & ~3u);
    return static_cast<std::uint8_t>(word >> (8 * (addr & 3u)));
  }
  throw SimError("bus fault: byte read at 0x" + std::to_string(addr));
}

std::uint16_t Bus::read16(std::uint32_t addr) {
  return static_cast<std::uint16_t>(read8(addr) | (read8(addr + 1) << 8));
}

std::uint32_t Bus::read32(std::uint32_t addr) {
  if (in_ram(addr, 4)) {
    std::uint32_t v;
    std::memcpy(&v, ram_.data() + (addr - ram_base_), 4);
    return v;
  }
  if (Peripheral* p = find_peripheral(addr)) return p->read32(addr - p->base());
  throw SimError("bus fault: word read at 0x" + std::to_string(addr));
}

void Bus::write8(std::uint32_t addr, std::uint8_t v) {
  if (write_hook_) write_hook_(addr, v, 1);
  if (in_ram(addr, 1)) {
    ram_[addr - ram_base_] = v;
    return;
  }
  if (Peripheral* p = find_peripheral(addr)) {
    p->write32(addr - p->base(), v);
    return;
  }
  throw SimError("bus fault: byte write at 0x" + std::to_string(addr));
}

void Bus::write16(std::uint32_t addr, std::uint16_t v) {
  write8(addr, static_cast<std::uint8_t>(v));
  write8(addr + 1, static_cast<std::uint8_t>(v >> 8));
}

void Bus::write32(std::uint32_t addr, std::uint32_t v) {
  if (write_hook_) write_hook_(addr, v, 4);
  if (in_ram(addr, 4)) {
    std::memcpy(ram_.data() + (addr - ram_base_), &v, 4);
    return;
  }
  if (Peripheral* p = find_peripheral(addr)) {
    p->write32(addr - p->base(), v);
    return;
  }
  throw SimError("bus fault: word write at 0x" + std::to_string(addr));
}

void Bus::load(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  VEDLIOT_CHECK(in_ram(addr, static_cast<std::uint32_t>(bytes.size())), "program does not fit in RAM");
  std::memcpy(ram_.data() + (addr - ram_base_), bytes.data(), bytes.size());
}

void Bus::load_words(std::uint32_t addr, std::span<const std::uint32_t> words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    write32(addr + static_cast<std::uint32_t>(4 * i), words[i]);
  }
}

void Uart::write32(std::uint32_t offset, std::uint32_t value) {
  if (offset == 0) out_.push_back(static_cast<char>(value & 0xFF));
}

std::uint32_t Timer::read32(std::uint32_t offset) {
  if (offset == 0) return static_cast<std::uint32_t>(mtime());
  if (offset == 4) return static_cast<std::uint32_t>(mtime() >> 32);
  if (offset == 8) return static_cast<std::uint32_t>(mtimecmp_);
  if (offset == 12) return static_cast<std::uint32_t>(mtimecmp_ >> 32);
  return 0;
}

void Timer::write32(std::uint32_t offset, std::uint32_t value) {
  if (offset == 8) {
    mtimecmp_ = (mtimecmp_ & 0xFFFFFFFF00000000ull) | value;
  } else if (offset == 12) {
    mtimecmp_ = (mtimecmp_ & 0xFFFFFFFFull) | (static_cast<std::uint64_t>(value) << 32);
  }
}

}  // namespace vedliot::sim
