file(REMOVE_RECURSE
  "CMakeFiles/vedliot_sim.dir/assembler.cpp.o"
  "CMakeFiles/vedliot_sim.dir/assembler.cpp.o.d"
  "CMakeFiles/vedliot_sim.dir/bus.cpp.o"
  "CMakeFiles/vedliot_sim.dir/bus.cpp.o.d"
  "CMakeFiles/vedliot_sim.dir/cfu.cpp.o"
  "CMakeFiles/vedliot_sim.dir/cfu.cpp.o.d"
  "CMakeFiles/vedliot_sim.dir/cpu.cpp.o"
  "CMakeFiles/vedliot_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/vedliot_sim.dir/machine.cpp.o"
  "CMakeFiles/vedliot_sim.dir/machine.cpp.o.d"
  "CMakeFiles/vedliot_sim.dir/testbench.cpp.o"
  "CMakeFiles/vedliot_sim.dir/testbench.cpp.o.d"
  "libvedliot_sim.a"
  "libvedliot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
