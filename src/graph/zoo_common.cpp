#include "graph/zoo_common.hpp"

#include "util/error.hpp"

namespace vedliot::zoo::detail {

std::string Builder::next_name(const std::string& stem) {
  return stem + "_" + std::to_string(counter_++);
}

NodeId Builder::conv_bn_act(NodeId in, std::int64_t oc, std::int64_t kernel, std::int64_t stride,
                            std::int64_t pad, OpKind act, std::int64_t groups, bool with_bn) {
  AttrMap a;
  a.set_int("out_channels", oc);
  a.set_int("kernel", kernel);
  a.set_int("stride", stride);
  a.set_int("pad", pad);
  a.set_int("groups", groups);
  a.set_int("bias", with_bn ? 0 : 1);  // bn folds the bias
  NodeId id = g_.add(OpKind::kConv2d, next_name("conv"), {in}, std::move(a));
  if (with_bn) {
    AttrMap bn;
    bn.set_float("epsilon", 1e-5);
    id = g_.add(OpKind::kBatchNorm, next_name("bn"), {id}, std::move(bn));
  }
  if (act != OpKind::kIdentity) {
    VEDLIOT_ASSERT(op_is_activation(act));
    id = this->act(id, act);
  }
  return id;
}

NodeId Builder::dw(NodeId in, std::int64_t kernel, std::int64_t stride, OpKind act) {
  const auto c = g_.node(in).out_shape.c();
  return conv_bn_act(in, c, kernel, stride, kernel / 2, act, /*groups=*/c);
}

NodeId Builder::se_block(NodeId in, std::int64_t channels, std::int64_t squeezed) {
  const NodeId gap = g_.add(OpKind::kGlobalAvgPool, next_name("se_gap"), {in});
  AttrMap r;
  r.set_int("out_channels", squeezed);
  r.set_int("kernel", 1);
  r.set_int("stride", 1);
  r.set_int("pad", 0);
  r.set_int("groups", 1);
  r.set_int("bias", 1);
  NodeId fc1 = g_.add(OpKind::kConv2d, next_name("se_fc1"), {gap}, std::move(r));
  fc1 = g_.add(OpKind::kRelu, next_name("se_relu"), {fc1});
  AttrMap e;
  e.set_int("out_channels", channels);
  e.set_int("kernel", 1);
  e.set_int("stride", 1);
  e.set_int("pad", 0);
  e.set_int("groups", 1);
  e.set_int("bias", 1);
  NodeId fc2 = g_.add(OpKind::kConv2d, next_name("se_fc2"), {fc1}, std::move(e));
  fc2 = g_.add(OpKind::kHSigmoid, next_name("se_hsig"), {fc2});
  return g_.add(OpKind::kMul, next_name("se_scale"), {in, fc2});
}

NodeId Builder::add(NodeId a, NodeId b) {
  return g_.add(OpKind::kAdd, next_name("add"), {a, b});
}

NodeId Builder::act(NodeId in, OpKind kind) {
  AttrMap a;
  if (kind == OpKind::kLeakyRelu) a.set_float("alpha", 0.1);
  return g_.add(kind, next_name("act"), {in}, std::move(a));
}

NodeId Builder::maxpool(NodeId in, std::int64_t kernel, std::int64_t stride, std::int64_t pad) {
  AttrMap a;
  a.set_int("kernel", kernel);
  a.set_int("stride", stride);
  a.set_int("pad", pad);
  return g_.add(OpKind::kMaxPool, next_name("maxpool"), {in}, std::move(a));
}

}  // namespace vedliot::zoo::detail
