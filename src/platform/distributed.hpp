#pragma once
/// \file distributed.hpp
/// \brief Distributed DL inference across microservers (the abstract's
/// "collaboratively solving complex Deep Learning applications across
/// distributed systems").
///
/// Splits a model into contiguous layer stages, assigns each stage to an
/// installed module, and accounts both compute (per-module roofline) and
/// the activation tensors crossing the fabric between stages. Reports both
/// the end-to-end latency of one inference and the pipelined throughput
/// (stages overlap across consecutive frames).

#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/baseboard.hpp"
#include "platform/fabric.hpp"

namespace vedliot::platform {

/// One pipeline stage: a contiguous range of the topological order.
struct Stage {
  std::size_t first = 0;          ///< index into topo order (inclusive)
  std::size_t last = 0;           ///< inclusive
  std::string slot;               ///< where it runs
  std::string module;
  double compute_s = 0;           ///< stage compute time per inference
  double ops = 0;
  double weight_bytes = 0;        ///< stage parameter footprint (redeploy cost)
  double boundary_bytes = 0;      ///< activation bytes shipped to the next stage
  double transfer_s = 0;          ///< fabric time to the next stage
};

struct DistributedPlan {
  std::vector<Stage> stages;
  double latency_s = 0;           ///< one frame end to end (compute + transfers)
  double pipeline_interval_s = 0; ///< steady-state seconds/frame (max stage time)
  double throughput_fps = 0;      ///< 1 / pipeline_interval
  double single_device_latency_s = 0;  ///< best single installed module, for comparison
  double speedup_vs_single() const {
    return pipeline_interval_s > 0 ? single_device_latency_s / pipeline_interval_s : 0.0;
  }
};

/// Planner knobs beyond the topology itself.
struct PlanOptions {
  /// Effective-capacity multipliers per slot (thermal throttling, shared
  /// tenancy): a slot's achievable GOPS is scaled by its entry; absent
  /// slots run at full capacity.
  std::map<std::string, double> slot_gops_scale;

  /// Optional observability sinks: when set, each planning call emits one
  /// `plan_distributed_inference` span (with per-stage child spans) and
  /// bumps `vedliot.platform.plans`. Must outlive the call.
  obs::Tracer* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Partition \p g into \p num_stages contiguous stages balanced by ops,
/// assign them round-robin to the given slots of \p chassis, and evaluate
/// latency/throughput over \p fabric at the given precision.
///
/// Cut points are chosen by a sweep that balances per-stage compute while
/// preferring thin boundary tensors (the classic pipeline-parallel split).
/// Throws PlatformError when slots are empty, stages outnumber slots*2, or
/// the fabric has no route between consecutive stage slots (partition).
DistributedPlan plan_distributed_inference(const Graph& g, const Chassis& chassis,
                                           const Fabric& fabric,
                                           const std::vector<std::string>& slots,
                                           std::size_t num_stages, DType dtype,
                                           const PlanOptions& options);

DistributedPlan plan_distributed_inference(const Graph& g, const Chassis& chassis,
                                           const Fabric& fabric,
                                           const std::vector<std::string>& slots,
                                           std::size_t num_stages, DType dtype);

/// Convenience: evaluate the best single-module latency on the chassis.
double best_single_module_latency(const Graph& g, const Chassis& chassis, DType dtype);

}  // namespace vedliot::platform
