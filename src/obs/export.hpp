#pragma once
/// \file export.hpp
/// \brief Exporters for vedliot::obs traces and metrics.
///
/// Three sinks, matching the three consumers of the telemetry layer:
///  - human-readable tables (util/table) for examples and interactive runs,
///  - JSON-lines records for mechanical BENCH_*.json trajectory ingestion,
///  - Chrome trace_event JSON (load in chrome://tracing or Perfetto).

#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vedliot::obs {

// -- human tables -----------------------------------------------------------

/// One row per metric: name, type, count, value/mean, p50/p95/p99.
std::string metrics_table(const MetricsRegistry& registry);

/// One row per span (start order): depth-indented name, category, duration.
std::string spans_table(std::span<const Span> spans);

// -- JSON lines -------------------------------------------------------------

/// One JSON object per line, one line per metric:
///   {"record":"metric","name":...,"type":"counter","value":...}
///   {"record":"metric","name":...,"type":"histogram","count":...,"mean":...,
///    "p50":...,"p95":...,"p99":...}
std::string metrics_jsonl(const MetricsRegistry& registry);

/// One JSON object per line, one line per span (start order):
///   {"record":"span","name":...,"cat":...,"ts_us":...,"dur_us":...,
///    "depth":...,"parent":...}  (+ one member per attribute)
std::string spans_jsonl(std::span<const Span> spans);

// -- Chrome trace_event -----------------------------------------------------

/// Full Chrome trace JSON document: {"traceEvents":[...]} with one complete
/// ("ph":"X") event per span; attributes become the event's "args".
std::string chrome_trace_json(std::span<const Span> spans, int pid = 1, int tid = 1);

/// Write chrome_trace_json to \p path; throws Error on I/O failure.
void write_chrome_trace(const std::string& path, std::span<const Span> spans, int pid = 1,
                        int tid = 1);

}  // namespace vedliot::obs
