#pragma once
/// \file trustzone.hpp
/// \brief ARM TrustZone dual-world model with OP-TEE-style trusted
/// applications and a measured secure-boot chain (Sec. IV-C).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "security/crypto.hpp"
#include "util/error.hpp"

namespace vedliot::security {

class TrustZoneError : public Error {
 public:
  explicit TrustZoneError(const std::string& message) : Error(message) {}
};

/// One stage of the boot chain (BL1 -> BL2 -> secure OS -> normal OS ...).
/// The expected hash of each image is authenticated with the root-of-trust
/// key, preventing an attacker from substituting the trusted software.
struct BootImage {
  std::string name;
  std::vector<std::uint8_t> image;
  Digest signed_hash{};  ///< HMAC(root_key, sha256(image) || name)
};

/// Sign a boot image with the platform root-of-trust key.
Digest sign_boot_image(const Key& root, const std::string& name,
                       std::span<const std::uint8_t> image);

/// A trusted application living in the secure world.
using TrustedApp = std::function<std::int32_t(const std::vector<std::int32_t>&)>;

/// TrustZone SoC: a normal world and a secure world separated by the
/// secure monitor. TAs are callable only through SMC, only after a verified
/// secure boot, and every call accounts the (expensive) world switch.
class TrustZoneSoC {
 public:
  explicit TrustZoneSoC(Key root_of_trust, double smc_roundtrip_ns = 4000);

  /// Verify the boot chain; on success the secure world comes up. Throws
  /// TrustZoneError with the offending stage name on failure.
  void secure_boot(const std::vector<BootImage>& chain);

  bool booted_secure() const { return booted_; }

  /// Install a TA (only allowed in the secure world post-boot).
  void install_ta(const std::string& name, TrustedApp app);

  /// Normal-world entry point: SMC into the secure world.
  std::int32_t smc(const std::string& ta, const std::vector<std::int32_t>& args);

  std::uint64_t world_switches() const { return switches_; }
  double simulated_ns() const { return simulated_ns_; }

  /// Device root measurement after boot: hash over all verified stage
  /// hashes, used for remote attestation of the whole software stack.
  const Digest& boot_measurement() const;

 private:
  Key root_;
  double smc_ns_;
  bool booted_ = false;
  Digest boot_measurement_{};
  std::map<std::string, TrustedApp> tas_;
  std::uint64_t switches_ = 0;
  double simulated_ns_ = 0;
};

}  // namespace vedliot::security
