#include "sim/assembler.hpp"

namespace vedliot::sim {

namespace {
std::uint32_t rtype(std::uint32_t funct7, std::uint32_t rs2, std::uint32_t rs1,
                    std::uint32_t funct3, std::uint32_t rd, std::uint32_t opcode) {
  return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode;
}

std::uint32_t itype(std::int32_t imm, std::uint32_t rs1, std::uint32_t funct3, std::uint32_t rd,
                    std::uint32_t opcode) {
  VEDLIOT_CHECK(imm >= -2048 && imm <= 2047, "I-type immediate out of range");
  return (static_cast<std::uint32_t>(imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) |
         (rd << 7) | opcode;
}

std::uint32_t stype(std::int32_t imm, std::uint32_t rs2, std::uint32_t rs1,
                    std::uint32_t funct3) {
  VEDLIOT_CHECK(imm >= -2048 && imm <= 2047, "S-type immediate out of range");
  const std::uint32_t u = static_cast<std::uint32_t>(imm & 0xFFF);
  return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((u & 0x1F) << 7) | 0x23;
}
}  // namespace

int Assembler::new_label() {
  labels_.push_back(-1);
  return static_cast<int>(labels_.size() - 1);
}

void Assembler::bind(int label) {
  labels_[static_cast<std::size_t>(label)] = static_cast<std::int64_t>(4 * code_.size());
}

void Assembler::lui(Reg rd, std::uint32_t imm20) { emit((imm20 << 12) | (rd << 7) | 0x37); }
void Assembler::auipc(Reg rd, std::uint32_t imm20) { emit((imm20 << 12) | (rd << 7) | 0x17); }

void Assembler::jal(Reg rd, int label) {
  fixups_.push_back({code_.size(), label, Fixup::Kind::kJal});
  emit((rd << 7) | 0x6F);
}

void Assembler::jalr(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 0, rd, 0x67)); }

void Assembler::branch(std::uint32_t funct3, Reg rs1, Reg rs2, int label) {
  fixups_.push_back({code_.size(), label, Fixup::Kind::kBranch});
  emit((rs2 << 20) | (rs1 << 15) | (funct3 << 12) | 0x63);
}

void Assembler::beq(Reg rs1, Reg rs2, int label) { branch(0, rs1, rs2, label); }
void Assembler::bne(Reg rs1, Reg rs2, int label) { branch(1, rs1, rs2, label); }
void Assembler::blt(Reg rs1, Reg rs2, int label) { branch(4, rs1, rs2, label); }
void Assembler::bge(Reg rs1, Reg rs2, int label) { branch(5, rs1, rs2, label); }
void Assembler::bltu(Reg rs1, Reg rs2, int label) { branch(6, rs1, rs2, label); }
void Assembler::bgeu(Reg rs1, Reg rs2, int label) { branch(7, rs1, rs2, label); }

void Assembler::lb(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 0, rd, 0x03)); }
void Assembler::lh(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 1, rd, 0x03)); }
void Assembler::lhu(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 5, rd, 0x03)); }
void Assembler::lw(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 2, rd, 0x03)); }
void Assembler::lbu(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 4, rd, 0x03)); }
void Assembler::sb(Reg rs2, Reg rs1, std::int32_t imm) { emit(stype(imm, rs2, rs1, 0)); }
void Assembler::sh(Reg rs2, Reg rs1, std::int32_t imm) { emit(stype(imm, rs2, rs1, 1)); }
void Assembler::sw(Reg rs2, Reg rs1, std::int32_t imm) { emit(stype(imm, rs2, rs1, 2)); }

void Assembler::addi(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 0, rd, 0x13)); }
void Assembler::slti(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 2, rd, 0x13)); }
void Assembler::xori(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 4, rd, 0x13)); }
void Assembler::ori(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 6, rd, 0x13)); }
void Assembler::andi(Reg rd, Reg rs1, std::int32_t imm) { emit(itype(imm, rs1, 7, rd, 0x13)); }
void Assembler::slli(Reg rd, Reg rs1, std::uint32_t shamt) { emit(rtype(0, shamt, rs1, 1, rd, 0x13)); }
void Assembler::srli(Reg rd, Reg rs1, std::uint32_t shamt) { emit(rtype(0, shamt, rs1, 5, rd, 0x13)); }
void Assembler::srai(Reg rd, Reg rs1, std::uint32_t shamt) { emit(rtype(0x20, shamt, rs1, 5, rd, 0x13)); }

void Assembler::add(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0, rs2, rs1, 0, rd, 0x33)); }
void Assembler::sub(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0x20, rs2, rs1, 0, rd, 0x33)); }
void Assembler::sll(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0, rs2, rs1, 1, rd, 0x33)); }
void Assembler::slt(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0, rs2, rs1, 2, rd, 0x33)); }
void Assembler::sltu(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0, rs2, rs1, 3, rd, 0x33)); }
void Assembler::xor_(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0, rs2, rs1, 4, rd, 0x33)); }
void Assembler::srl(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0, rs2, rs1, 5, rd, 0x33)); }
void Assembler::sra(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0x20, rs2, rs1, 5, rd, 0x33)); }
void Assembler::or_(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0, rs2, rs1, 6, rd, 0x33)); }
void Assembler::and_(Reg rd, Reg rs1, Reg rs2) { emit(rtype(0, rs2, rs1, 7, rd, 0x33)); }

void Assembler::ecall() { emit(0x00000073); }
void Assembler::ebreak() { emit(0x00100073); }
void Assembler::mret() { emit(0x30200073); }
void Assembler::csrrw(Reg rd, std::uint32_t csr, Reg rs1) {
  emit((csr << 20) | (rs1 << 15) | (1u << 12) | (rd << 7) | 0x73);
}
void Assembler::csrrs(Reg rd, std::uint32_t csr, Reg rs1) {
  emit((csr << 20) | (rs1 << 15) | (2u << 12) | (rd << 7) | 0x73);
}

void Assembler::mul(Reg rd, Reg rs1, Reg rs2) { emit(rtype(1, rs2, rs1, 0, rd, 0x33)); }
void Assembler::div(Reg rd, Reg rs1, Reg rs2) { emit(rtype(1, rs2, rs1, 4, rd, 0x33)); }
void Assembler::rem(Reg rd, Reg rs1, Reg rs2) { emit(rtype(1, rs2, rs1, 6, rd, 0x33)); }

void Assembler::cfu(std::uint32_t funct3, std::uint32_t funct7, Reg rd, Reg rs1, Reg rs2) {
  emit(rtype(funct7, rs2, rs1, funct3, rd, 0x0B));
}

void Assembler::li(Reg rd, std::int32_t value) {
  if (value >= -2048 && value <= 2047) {
    addi(rd, static_cast<Reg>(0), value);
    return;
  }
  // lui + addi with sign-correction for the low 12 bits.
  std::uint32_t hi = static_cast<std::uint32_t>(value) >> 12;
  const std::int32_t lo = static_cast<std::int32_t>(static_cast<std::uint32_t>(value) & 0xFFF);
  std::int32_t lo_signed = lo;
  if (lo >= 2048) {
    lo_signed = lo - 4096;
    hi = (hi + 1) & 0xFFFFF;
  }
  lui(rd, hi);
  if (lo_signed != 0) addi(rd, rd, lo_signed);
}

std::vector<std::uint32_t> Assembler::finish() {
  for (const auto& f : fixups_) {
    const std::int64_t target = labels_[static_cast<std::size_t>(f.label)];
    VEDLIOT_CHECK(target >= 0, "unbound label in assembler");
    const std::int64_t off = target - static_cast<std::int64_t>(4 * f.index);
    std::uint32_t& word = code_[f.index];
    if (f.kind == Fixup::Kind::kBranch) {
      VEDLIOT_CHECK(off >= -4096 && off <= 4094, "branch target out of range");
      const std::uint32_t u = static_cast<std::uint32_t>(off);
      word |= ((u >> 12) & 1u) << 31;
      word |= ((u >> 5) & 0x3Fu) << 25;
      word |= ((u >> 1) & 0xFu) << 8;
      word |= ((u >> 11) & 1u) << 7;
    } else {
      VEDLIOT_CHECK(off >= -(1 << 20) && off < (1 << 20), "jal target out of range");
      const std::uint32_t u = static_cast<std::uint32_t>(off);
      word |= ((u >> 20) & 1u) << 31;
      word |= ((u >> 1) & 0x3FFu) << 21;
      word |= ((u >> 11) & 1u) << 20;
      word |= ((u >> 12) & 0xFFu) << 12;
    }
  }
  return code_;
}

}  // namespace vedliot::sim
