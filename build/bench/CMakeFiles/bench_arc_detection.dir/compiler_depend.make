# Empty compiler generated dependencies file for bench_arc_detection.
# This may be replaced when dependencies are built.
