# Empty dependencies file for smart_mirror.
# This may be replaced when dependencies are built.
