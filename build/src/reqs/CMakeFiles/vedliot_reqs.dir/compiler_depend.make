# Empty compiler generated dependencies file for vedliot_reqs.
# This may be replaced when dependencies are built.
