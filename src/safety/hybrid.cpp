#include "safety/hybrid.hpp"

namespace vedliot::safety {

std::string_view system_state_name(SystemState s) {
  switch (s) {
    case SystemState::kNormal: return "normal";
    case SystemState::kDegraded: return "degraded";
    case SystemState::kSafeStop: return "safe-stop";
  }
  throw InvalidArgument("unknown SystemState");
}

void SafetyKernel::register_task(PayloadTask task) {
  VEDLIOT_CHECK(task.deadline_s >= task.period_s, "deadline must be >= period");
  const std::string name = task.name;
  if (tasks_.count(name)) throw InvalidArgument("task already registered: " + name);
  tasks_[name] = TaskState{std::move(task), 0.0, false, 0, 0};
}

void SafetyKernel::heartbeat(const std::string& task, double now_s) {
  auto it = tasks_.find(task);
  if (it == tasks_.end()) throw NotFound("unknown task: " + task);
  TaskState& t = it->second;
  // A timely heartbeat clears the consecutive-miss counter.
  if (!t.seen || now_s - t.last_beat_s <= t.task.deadline_s) t.consecutive_misses = 0;
  t.last_beat_s = now_s;
  t.seen = true;
}

SystemState SafetyKernel::tick(double now_s) {
  if (state_ == SystemState::kSafeStop) return state_;  // latched

  bool any_degrade = false, any_stop = false;
  for (auto& [name, t] : tasks_) {
    const double reference = t.seen ? t.last_beat_s : 0.0;
    if (now_s - reference > t.task.deadline_s) {
      ++t.consecutive_misses;
      ++t.total_misses;
      // Count the miss from a fresh reference so one long gap isn't counted
      // once per kernel tick.
      t.last_beat_s = now_s;
      t.seen = true;
    }
    if (t.consecutive_misses >= t.task.misses_to_stop) any_stop = true;
    else if (t.consecutive_misses >= t.task.misses_to_degrade) any_degrade = true;
  }

  if (any_stop) {
    state_ = SystemState::kSafeStop;
    if (stop_cb_) stop_cb_();
  } else if (any_degrade && state_ == SystemState::kNormal) {
    state_ = SystemState::kDegraded;
    if (degraded_cb_) degraded_cb_();
  }
  return state_;
}

void SafetyKernel::try_recover(double now_s) {
  if (state_ != SystemState::kDegraded) return;
  for (const auto& [name, t] : tasks_) {
    if (t.consecutive_misses > 0) return;
    if (!t.seen || now_s - t.last_beat_s > t.task.deadline_s) return;
  }
  state_ = SystemState::kNormal;
}

std::size_t SafetyKernel::missed_deadlines(const std::string& task) const {
  auto it = tasks_.find(task);
  if (it == tasks_.end()) throw NotFound("unknown task: " + task);
  return it->second.total_misses;
}

}  // namespace vedliot::safety
