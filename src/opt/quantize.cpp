#include "opt/quantize.hpp"

#include "runtime/executor.hpp"
#include "util/error.hpp"

namespace vedliot::opt {

QuantizeWeightsPass::QuantizeWeightsPass(DType dtype, bool per_channel)
    : dtype_(dtype), per_channel_(per_channel) {
  VEDLIOT_CHECK(dtype_is_integer(dtype), "QuantizeWeightsPass requires an integer dtype");
}

PassResult QuantizeWeightsPass::run(Graph& g) {
  PassResult r;
  r.pass_name = name();
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if ((n.kind != OpKind::kConv2d && n.kind != OpKind::kDense) || n.weights.empty()) continue;
    Tensor& w = n.weights[0];
    if (per_channel_ && w.shape().rank() == 4) {
      fake_quantize_per_channel(w, dtype_);
    } else {
      fake_quantize(w, dtype_);
    }
    n.weight_dtype = dtype_;
    ++r.nodes_changed;
  }
  r.detail = std::to_string(r.nodes_changed) + " layers quantized to " +
             std::string(dtype_name(dtype_));
  return r;
}

PassResult Fp16CastPass::run(Graph& g) {
  PassResult r;
  r.pass_name = name();
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if (n.weights.empty()) continue;
    for (Tensor& w : n.weights) cast_fp16_inplace(w);
    n.weight_dtype = DType::kFP16;
    ++r.nodes_changed;
  }
  r.detail = std::to_string(r.nodes_changed) + " layers cast to fp16";
  return r;
}

ActivationRanges calibrate_activations(Graph& g, const std::vector<Tensor>& samples,
                                       Calibration cal, double percentile) {
  VEDLIOT_CHECK(!samples.empty(), "calibration requires at least one sample");
  const auto ins = g.inputs();
  VEDLIOT_CHECK(ins.size() == 1, "calibration supports single-input graphs");

  // Accumulate all observed values per node across samples, then choose
  // ranges once (memory-heavy but simple; calibration sets are small).
  std::map<NodeId, std::vector<float>> observed;
  Executor exec(g);
  for (const auto& s : samples) {
    exec.run({{g.node(ins.front()).name, s}});
    for (NodeId id : g.topo_order()) {
      const Tensor& t = exec.activation(g.node(id).name);
      auto& dst = observed[id];
      dst.insert(dst.end(), t.data().begin(), t.data().end());
    }
  }

  ActivationRanges ranges;
  for (auto& [id, values] : observed) {
    Node& n = g.node(id);
    const auto qp = choose_symmetric(values, DType::kINT8, cal, percentile);
    n.attrs.set_float("act_scale", qp.scale);
    ranges[n.name] = qp;
  }
  return ranges;
}

}  // namespace vedliot::opt
