#include "security/pmp.hpp"

#include <vector>

#include "util/error.hpp"

namespace vedliot::security {

PmpUnit::PmpUnit(std::size_t entries) : entries_(entries) {
  VEDLIOT_CHECK(entries <= 64, "PMP supports at most 64 entries");
}

void PmpUnit::configure(std::size_t index, const PmpEntry& entry) {
  VEDLIOT_CHECK(index < entries_.size(), "PMP entry index out of range");
  if (entries_[index].locked) {
    throw InvalidArgument("PMP entry " + std::to_string(index) + " is locked");
  }
  // A locked TOR entry also locks the preceding address register (spec).
  entries_[index] = entry;
}

const PmpEntry& PmpUnit::entry(std::size_t index) const {
  VEDLIOT_CHECK(index < entries_.size(), "PMP entry index out of range");
  return entries_[index];
}

void PmpUnit::reset() {
  for (auto& e : entries_) e = PmpEntry{};
}

bool PmpUnit::entry_matches(std::size_t i, std::uint32_t word_addr) const {
  const PmpEntry& e = entries_[i];
  switch (e.mode) {
    case AddressMatch::kOff:
      return false;
    case AddressMatch::kTor: {
      const std::uint32_t lo = i == 0 ? 0 : entries_[i - 1].addr;
      return word_addr >= lo && word_addr < e.addr;
    }
    case AddressMatch::kNapot: {
      // pmpaddr = base_words | (size_words/2 - 1): the trailing-ones run t
      // encodes size_words = 2^(t+1); the base has the low t+1 bits clear.
      std::uint32_t t = 0;
      std::uint32_t a = e.addr;
      while (a & 1u) {
        a >>= 1;
        ++t;
      }
      const std::uint32_t size_words = 1u << (t + 1);
      const std::uint32_t base_words = e.addr & ~(size_words - 1u);
      return word_addr >= base_words && word_addr < base_words + size_words;
    }
  }
  return false;
}

std::optional<std::size_t> PmpUnit::match(std::uint32_t byte_addr) const {
  const std::uint32_t word = byte_addr >> 2;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entry_matches(i, word)) return i;
  }
  return std::nullopt;
}

bool PmpUnit::check(std::uint32_t byte_addr, Access access, Privilege priv) const {
  const auto m = match(byte_addr);
  if (!m) {
    // No matching entry: M-mode succeeds, U-mode fails (when PMP present).
    return priv == Privilege::kMachine;
  }
  const PmpEntry& e = entries_[*m];
  if (priv == Privilege::kMachine && !e.locked) return true;
  switch (access) {
    case Access::kRead: return e.r;
    case Access::kWrite: return e.w;
    case Access::kExecute: return e.x;
  }
  return false;
}

std::uint32_t napot_encode(std::uint32_t base, std::uint32_t size) {
  VEDLIOT_CHECK(size >= 8 && (size & (size - 1)) == 0, "NAPOT size must be a power of two >= 8");
  VEDLIOT_CHECK(base % size == 0, "NAPOT base must be size-aligned");
  const std::uint32_t word_base = base >> 2;
  const std::uint32_t word_size = size >> 2;
  return word_base | ((word_size >> 1) - 1);
}

}  // namespace vedliot::security
