#pragma once
/// \file wasm_verifier.hpp
/// \brief Static bytecode verifier + abstract interpreter for the WASM-like
/// VM (security/wasm.hpp) — the admission gate in front of multi-tenant
/// enclave execution.
///
/// Today the VM discovers stack underflow, wild jumps, out-of-bounds memory
/// and runaway loops only by trapping at runtime, mid-tenant-invoke. This
/// pass proves those properties *before* the module runs, the same way the
/// PR 4 IR verifier made graphs verified-before-execute, and reuses its
/// Finding/Report machinery with stable dotted `wasm.*` check ids:
///
///  1. **Structural validation** — decodable opcodes, in-bounds
///     jump/call/host-call targets, local indices vs the function's declared
///     locals, data segment vs linear memory, entry points inside the code.
///  2. **Abstract interpretation** — a worklist fixpoint over per-program-
///     point abstract states (exact stack depth + a signed-interval value
///     domain, interval.hpp, joined at merge points with widening) proving
///     stack discipline and classifying every kLoad/kStore as provably-safe,
///     provably-trapping (wasm.mem.oob) or unprovable (wasm.mem.unproven),
///     and every kDivS/kRemS divisor as nonzero / zero / possibly-zero.
///  3. **Static cost bounds** — a call-graph + back-edge analysis producing
///     a worst-case fuel bound per function (longest path through the
///     acyclic CFG, call sites charged the callee's bound), or an explicit
///     wasm.cost.unbounded finding (loop or recursion) that forces runtime
///     fuel metering and marks the tenant infeasible for static admission
///     estimates in the serve layer.
///
/// Severity policy: anything the VM would trap on deterministically (or
/// that makes behaviour undefined relative to the declared signature) is an
/// error; anything the verifier merely cannot *prove* safe is a warning so
/// the module stays runnable behind runtime checks. "Accepted" for the
/// soundness contract — a module that can never trap (fuel exhaustion
/// excepted) — means ok() && memory_proven && arithmetic_proven.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/finding.hpp"
#include "analysis/interval.hpp"
#include "security/admission.hpp"
#include "security/wasm.hpp"

namespace vedliot::analysis {

/// Host import signature the module will be run against (the verifier
/// checks kHostCall targets and arities against this table; an empty table
/// means "no imports registered", under which any kHostCall is an error —
/// exactly what the VM would trap on).
struct WasmHostSig {
  std::string name;
  std::uint32_t nargs = 0;
};

struct WasmVerifyOptions {
  /// Joins at one program point before bounds are widened to the i32
  /// extremes (termination knob; higher = more precision on diamonds).
  std::size_t widen_after = 4;
  /// Worklist-step safety valve per function; exceeding it abandons the
  /// function with wasm.verify.budget and conservative (unproven) flags.
  std::size_t max_steps = 100000;
};

struct WasmFunctionSummary {
  std::uint32_t index = 0;
  std::string name;
  std::size_t reachable_instrs = 0;
  std::size_t max_stack_depth = 0;   ///< max abstract operand-stack depth
  std::size_t mem_accesses = 0;      ///< reachable kLoad/kStore sites
  std::size_t mem_proven = 0;        ///< of which proven in-bounds
  bool has_loop = false;             ///< CFG back-edge
  bool recursive = false;            ///< on a call-graph cycle
  /// Worst-case instructions retired by one invoke (covers callees);
  /// nullopt when a loop or recursion makes the cost unbounded.
  std::optional<std::uint64_t> fuel_bound;
};

struct WasmVerifyResult {
  Report report;
  std::vector<WasmFunctionSummary> functions;

  bool memory_proven = true;      ///< no wasm.mem.unproven / wasm.mem.oob
  bool arithmetic_proven = true;  ///< no wasm.div.* / wasm.rem.* finding
  bool cost_bounded = true;       ///< every function has a fuel bound
  /// No call-graph cycle: call depth is bounded by the function count, so
  /// the VM's depth limit cannot fire (for any realistic module size).
  /// Recursion would make "call stack exhausted" reachable, which the
  /// acceptance contract below must exclude.
  bool recursion_free = true;
  std::uint64_t module_fuel_bound = 0;  ///< max over functions when bounded

  /// No error-severity finding: structurally well-formed + stack-sound.
  bool ok() const { return report.ok(); }

  /// The soundness contract: an accepted module cannot trap on WasmVm
  /// (fuel exhaustion excepted), for any arguments and any host behaviour.
  bool accepted() const {
    return ok() && memory_proven && arithmetic_proven && recursion_free;
  }
};

/// Run all three verification layers over \p module.
WasmVerifyResult verify_module(const security::WModule& module,
                               std::span<const WasmHostSig> hosts = {},
                               const WasmVerifyOptions& options = {});

/// Bind a verification result to the module it was computed for: the
/// admission ticket the security layer (Enclave, attest_and_admit) checks.
security::ModuleAdmission make_admission(const security::WModule& module,
                                         const WasmVerifyResult& result);

}  // namespace vedliot::analysis
