#include "sim/machine.hpp"

namespace vedliot::sim {

Machine::Machine()
    : bus_(kRamBase, kRamSize),
      cpu_(bus_),
      uart_(std::make_shared<Uart>(kUartBase)),
      timer_(std::make_shared<Timer>(kTimerBase)) {
  bus_.attach(uart_);
  bus_.attach(timer_);
  timer_->bind_clock([this] { return cpu_.cycles(); });
  cpu_.attach_timer_irq([this] { return timer_->interrupt_pending(); });
  cpu_.set_pc(kRamBase);
}

security::PmpUnit& Machine::enable_pmp(std::size_t entries) {
  pmp_ = std::make_unique<security::PmpUnit>(entries);
  cpu_.attach_pmp(pmp_.get());
  return *pmp_;
}

void Machine::load_program(std::span<const std::uint32_t> words) {
  bus_.load_words(kRamBase, words);
  cpu_.set_pc(kRamBase);
}

void Machine::load_program(Assembler& assembler) {
  const auto words = assembler.finish();
  load_program(words);
}

HaltReason Machine::run(std::uint64_t max_instructions) {
  const HaltReason r = cpu_.run(max_instructions);
  timer_->tick(cpu_.cycles());
  return r;
}

}  // namespace vedliot::sim
