file(REMOVE_RECURSE
  "CMakeFiles/bench_autotune.dir/bench_autotune.cpp.o"
  "CMakeFiles/bench_autotune.dir/bench_autotune.cpp.o.d"
  "bench_autotune"
  "bench_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
