file(REMOVE_RECURSE
  "CMakeFiles/bench_paeb_offload.dir/bench_paeb_offload.cpp.o"
  "CMakeFiles/bench_paeb_offload.dir/bench_paeb_offload.cpp.o.d"
  "bench_paeb_offload"
  "bench_paeb_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paeb_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
