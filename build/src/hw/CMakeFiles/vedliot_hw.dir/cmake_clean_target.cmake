file(REMOVE_RECURSE
  "libvedliot_hw.a"
)
