// T-ROBUST — output robustness service fault-injection campaign
// (Sec. IV-B: detect "errors on the output data ... when these errors
// derive from systematic faults affecting the execution of DL models on
// devices or edge nodes ... triggered or injected during run-time").
//
// Injects three fault classes (SEU bit flips, zeroed channels, scaled
// layers) at varying intensities into a deployed model and reports the
// service's detection rate and the detection delay as a function of the
// check period.

#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "graph/zoo.hpp"
#include "platform/faults.hpp"
#include "platform/resilience.hpp"
#include "runtime/session.hpp"
#include "safety/robustness.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::safety;

namespace {

Graph fresh_model(std::uint64_t seed) {
  Graph g = zoo::micro_mlp("deployed", 1, 16, {24, 16}, 4);
  Rng rng(seed);
  g.materialize_weights(rng);
  return g;
}

/// Returns the fraction of faulty deployments detected within 32 samples.
double detection_rate(int campaign_runs, std::uint64_t seed,
                      const std::function<void(Graph&, Rng&)>& inject, double tolerance) {
  int detected = 0;
  for (int run = 0; run < campaign_runs; ++run) {
    Graph g = fresh_model(seed);
    RobustnessService service(g, {1, tolerance});
    Rng frng(seed + 100 + static_cast<std::uint64_t>(run));
    inject(g, frng);
    const auto faulty = runtime::make_session(g, {});
    Rng data(seed + 500 + static_cast<std::uint64_t>(run));
    for (int i = 0; i < 32; ++i) {
      Tensor x(Shape{1, 16}, data.normal_vector(16));
      if (service.submit(x, faulty->run_single(x)) == CheckResult::kCheckedFaulty) {
        ++detected;
        break;
      }
    }
  }
  return static_cast<double>(detected) / campaign_runs;
}

// ---------------------------------------------------------------------------
// Platform-level resilience (faults.hpp + resilience.hpp): detection
// latency, recovery time and degraded-mode throughput vs the healthy plan
// for the main fault classes of the simulator.
// ---------------------------------------------------------------------------

namespace pf = vedliot::platform;

pf::FaultEvent platform_fault(double t, pf::FaultKind kind, const std::string& slot,
                              double magnitude = 1.0) {
  pf::FaultEvent e;
  e.time_s = t;
  e.kind = kind;
  e.magnitude = magnitude;
  switch (kind) {
    case pf::FaultKind::kLinkDrop:
    case pf::FaultKind::kLinkRestore:
    case pf::FaultKind::kLinkDegrade:
      e.a = "switch0";
      e.b = slot;
      break;
    default:
      e.slot = slot;
      break;
  }
  return e;
}

pf::ResilienceReport run_resilience_scenario(const std::vector<pf::FaultEvent>& faults,
                                             double transient_prob) {
  pf::Chassis chassis(pf::recs_box());
  const std::vector<std::string> slots{"come0", "come1", "come2"};
  pf::Fabric fabric = pf::star_fabric(slots, 10.0, {1.0, 10.0});
  for (const auto& s : slots) chassis.install(s, pf::find_module("COMe-XavierAGX"));

  pf::PlatformSimulator::Config pc;
  pc.transient_transfer_prob = transient_prob;
  pc.seed = 2022;
  pf::PlatformSimulator sim(chassis, fabric, pc);
  for (const auto& f : faults) sim.schedule(f);

  Graph g = zoo::resnet50();
  pf::ResilienceConfig cfg;
  cfg.heartbeat_period_s = 10e-3;
  cfg.heartbeat_miss_threshold = 3;
  cfg.precision_ladder = {DType::kINT8, DType::kFP16};
  cfg.seed = 7;
  pf::ResilienceController controller(g, sim, slots, 3, DType::kINT8, cfg);
  return controller.run(1.0);
}

void print_resilience_artifact() {
  bench::banner("T-RESIL", "resilient distributed pipeline under platform faults");

  struct Scenario {
    std::string name;
    std::vector<pf::FaultEvent> faults;
    double transient_prob;
  };
  const std::vector<Scenario> scenarios{
      {"module crash", {platform_fault(0.205, pf::FaultKind::kModuleCrash, "come1")}, 0.0},
      {"thermal throttle 40%",
       {platform_fault(0.205, pf::FaultKind::kThermalThrottle, "come1", 0.4)},
       0.0},
      {"link degrade 10%",
       {platform_fault(0.205, pf::FaultKind::kLinkDegrade, "come1", 0.1)},
       0.0},
      {"crash + lossy fabric (2%)",
       {platform_fault(0.205, pf::FaultKind::kModuleCrash, "come1")},
       0.02},
      {"crash then restart",
       {platform_fault(0.205, pf::FaultKind::kModuleCrash, "come1"),
        platform_fault(0.605, pf::FaultKind::kModuleRestart, "come1")},
       0.0},
  };

  Table t({"scenario", "detect", "recover", "throughput vs healthy", "frames ok/drop"});
  for (const auto& sc : scenarios) {
    const pf::ResilienceReport r = run_resilience_scenario(sc.faults, sc.transient_prob);
    t.add_row({sc.name,
               fmt_fixed(r.mean_detection_latency_s() * 1e3, 1) + " ms",
               fmt_fixed(r.mean_recovery_time_s() * 1e3, 1) + " ms",
               fmt_percent(r.degraded_throughput_ratio()),
               std::to_string(r.frames_completed) + "/" + std::to_string(r.frames_dropped)});
  }
  t.print(std::cout);
  bench::note("ResNet-50, 3 stages on 3x COMe-XavierAGX, 10G star fabric, 10 ms heartbeat,");
  bench::note("miss threshold 3. detect = fault injection -> declared; recover = declared ->");
  bench::note("replanned pipeline live again (includes weight redeploy over 1 Gbps mgmt net).");
  bench::note("crash-then-restart ends above the degraded plans: capacity returns mid-run.");
}

}  // namespace

void print_artifact() {
  bench::banner("T-ROBUST", "robustness service: fault-injection campaign");

  constexpr int kRuns = 40;
  constexpr double kTol = 1e-4;

  Table t({"fault class", "intensity", "detected within 32 samples"});
  for (std::size_t bits : {1u, 4u, 16u}) {
    const double rate = detection_rate(
        kRuns, 7,
        [bits](Graph& g, Rng& rng) {
          FaultInjector injector(rng);
          injector.flip_weight_bits(g, bits);
        },
        kTol);
    t.add_row({"SEU bit flips", std::to_string(bits) + " bits", fmt_percent(rate)});
  }
  {
    const double rate = detection_rate(
        kRuns, 11,
        [](Graph& g, Rng& rng) {
          FaultInjector injector(rng);
          injector.zero_random_channel(g);
        },
        kTol);
    t.add_row({"zeroed channel", "1 channel", fmt_percent(rate)});
  }
  for (float factor : {1.05f, 1.5f, 4.0f}) {
    const double rate = detection_rate(
        kRuns, 13,
        [factor](Graph& g, Rng& rng) {
          FaultInjector injector(rng);
          injector.scale_random_layer(g, factor);
        },
        kTol);
    t.add_row({"scaled layer (attack)", fmt_ratio(factor, 2), fmt_percent(rate)});
  }
  // Control: no fault -> no false alarms.
  {
    const double rate = detection_rate(kRuns, 17, [](Graph&, Rng&) {}, kTol);
    t.add_row({"control (no fault)", "-", fmt_percent(rate)});
  }
  t.print(std::cout);

  // Detection delay vs check period: the service samples every n-th pair.
  std::printf("\ndetection delay vs check period (16-bit SEU, 40 campaigns):\n\n");
  Table d({"check period", "mean samples to detection", "verification overhead"});
  for (std::size_t period : {1u, 4u, 16u}) {
    double total_delay = 0;
    int detected = 0;
    for (int run = 0; run < kRuns; ++run) {
      Graph g = fresh_model(23);
      RobustnessService service(g, {period, kTol});
      Rng frng(900 + static_cast<std::uint64_t>(run));
      FaultInjector injector(frng);
      injector.flip_weight_bits(g, 16);
      const auto faulty = runtime::make_session(g, {});
      Rng data(1300 + static_cast<std::uint64_t>(run));
      for (int i = 0; i < 128; ++i) {
        Tensor x(Shape{1, 16}, data.normal_vector(16));
        if (service.submit(x, faulty->run_single(x)) == CheckResult::kCheckedFaulty) {
          total_delay += i + 1;
          ++detected;
          break;
        }
      }
    }
    d.add_row({"every " + std::to_string(period),
               detected ? fmt_fixed(total_delay / detected, 1) : "n/a",
               fmt_percent(1.0 / static_cast<double>(period))});
  }
  d.print(std::cout);
  bench::note("shape: detection approaches 100% for structural faults and strong attacks;");
  bench::note("single-bit SEUs in unused weights can stay dormant (they change no output).");
  bench::note("longer check periods cut verification cost linearly at linear delay cost.");

  print_resilience_artifact();
}

static void BM_RobustnessCheck(benchmark::State& state) {
  Graph g = fresh_model(3);
  RobustnessService service(g, {1, 1e-4});
  const auto session = runtime::make_session(g, {});
  Rng data(4);
  Tensor x(Shape{1, 16}, data.normal_vector(16));
  const Tensor y = session->run_single(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.submit(x, y));
  }
}
BENCHMARK(BM_RobustnessCheck);

static void BM_ResilienceCrashRecovery(benchmark::State& state) {
  // Full 1 s simulated campaign: crash + detection + failover + replan.
  for (auto _ : state) {
    const auto r = run_resilience_scenario(
        {platform_fault(0.205, vedliot::platform::FaultKind::kModuleCrash, "come1")}, 0.0);
    benchmark::DoNotOptimize(r.frames_completed);
  }
}
BENCHMARK(BM_ResilienceCrashRecovery);

VEDLIOT_BENCH_MAIN()
