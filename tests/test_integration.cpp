// Cross-module integration tests: the scenarios the paper's architecture
// diagram (Fig. 1) implies — optimize a model, deploy it, monitor it,
// attest the node, and run firmware on the simulated SoC, all in one story.

#include <gtest/gtest.h>

#include <memory>

#include "exec_single.hpp"
#include "analysis/wasm_verifier.hpp"
#include "core/designflow.hpp"
#include "graph/cost.hpp"
#include "graph/serialize.hpp"
#include "graph/zoo.hpp"
#include "hw/accel.hpp"
#include "kenning/flow.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "runtime/executor.hpp"
#include "safety/monitors.hpp"
#include "safety/robustness.hpp"
#include "security/attestation.hpp"
#include "security/enclave.hpp"
#include "security/kvstore.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

TEST(Integration, OptimizeDeployMonitorPipeline) {
  // 1. Build + materialize the gesture model.
  Graph g = zoo::micro_cnn("gesture-mini", 1, 1, 16, 5);
  Rng rng(1);
  g.materialize_weights(rng);

  // 2. The robustness service takes its golden copy BEFORE optimization.
  safety::RobustnessService service(g, {1, 0.05});

  // 3. Optimize via the Kenning flow and deploy to host + simulated target.
  kenning::Flow flow(kenning::ModelWrapper("gesture-mini", g.clone()));
  flow.optimize(std::make_unique<opt::FuseBatchNormPass>())
      .optimize(std::make_unique<opt::FuseActivationPass>())
      .optimize(std::make_unique<opt::QuantizeWeightsPass>(DType::kINT8));
  flow.deploy_to(std::make_unique<kenning::HostRuntime>());

  std::vector<kenning::Sample> dataset;
  for (int i = 0; i < 8; ++i) {
    Rng data_rng(static_cast<std::uint64_t>(100 + i));
    kenning::Sample s;
    s.input = Tensor(Shape{1, 1, 16, 16}, data_rng.normal_vector(256));
    s.label = 0;
    dataset.push_back(std::move(s));
  }
  const auto reports = flow.run(dataset);
  ASSERT_EQ(reports.size(), 1u);

  // 4. The optimized deployment still passes the robustness service: fused
  // BN + INT8 weights stay within the service tolerance on softmax outputs.
  Executor optimized(flow.model().graph());
  std::size_t faults = 0;
  for (const auto& s : dataset) {
    if (service.submit(s.input, testutil::exec_single(optimized, flow.model().graph(), s.input)) ==
        safety::CheckResult::kCheckedFaulty) {
      ++faults;
    }
  }
  EXPECT_EQ(faults, 0u);
}

TEST(Integration, SerializeShipAndReEstimate) {
  // Export the model, "ship" it to another node, re-import and verify the
  // hardware estimate is identical — the toolchain interchange guarantee.
  Graph g = zoo::mobilenet_v3_large();
  const std::string wire = to_text(g);
  Graph shipped = from_text(wire);
  const auto& dev = hw::find_device("XavierNX");
  const auto a = hw::estimate(dev, g, DType::kINT8);
  const auto b = hw::estimate(dev, shipped, DType::kINT8);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(Integration, AttestedEnclaveRunsSecureInference) {
  // A KV workload inside the enclave, attested end-to-end: static bytecode
  // verification produces the admission ticket the enclave demands, a device
  // quote covers the enclave measurement, the authority verifies it, and
  // attest_and_admit combines both before the results are trusted.
  security::Key root{};
  root[7] = 0xAB;
  security::AttestationAuthority authority(root);

  const auto module = security::build_kv_module(64);
  const auto verdict = analysis::verify_module(module);
  ASSERT_TRUE(verdict.ok()) << verdict.report.to_table();
  const auto admission = analysis::make_admission(module, verdict);

  security::Enclave enclave(security::EnclaveConfig{}, module, root, admission);
  security::DeviceAgent device("edge-node-3", authority.provision("edge-node-3"));

  const auto quote = device.quote(enclave.measurement(), 424242);
  ASSERT_TRUE(authority.verify(quote, 424242));
  ASSERT_TRUE(security::attest_and_admit(authority, quote, 424242, admission));

  EXPECT_EQ(enclave.ecall("kv_put", {7, 1000}), 1);
  EXPECT_EQ(enclave.ecall("kv_get", {7}), 1000);
  EXPECT_GT(enclave.ledger().ecalls, 0u);
}

TEST(Integration, DesignFlowOutputMatchesAccelerators) {
  // The design flow's selected estimate must agree with directly asking the
  // off-the-shelf accelerator wrapper for the same device.
  Graph g = zoo::speech_net();
  core::DesignSpec spec;
  spec.application = "kws";
  spec.latency_budget_s = 0.02;
  spec.power_budget_w = 15.0;
  spec.rate_hz = 20.0;
  const auto report = core::run_design_flow(g, spec);

  hw::OffTheShelfAccelerator acc(hw::find_device(report.selected_device));
  const auto direct = acc.estimate_graph(g, report.estimate.dtype);
  EXPECT_DOUBLE_EQ(direct.latency_s, report.estimate.latency_s);
}

TEST(Integration, SimulatedFirmwareComputesSameDotProductAsExecutor) {
  // The Renode-analogue promise: the "same software" path. Compute a dot
  // product three ways — executor Dense, native loop, simulated RV32IM with
  // the MAC CFU — and require identical integer results.
  const std::vector<std::int32_t> x{3, -1, 4, 1, -5, 9, 2, -6};
  const std::vector<std::int32_t> w{2, 7, 1, -8, 2, 8, -1, 8};

  // (a) executor: 1x8 dense with bias 0
  Graph g("dot");
  const NodeId in = g.add_input("x", Shape{1, 8});
  AttrMap attrs;
  attrs.set_int("units", 1);
  attrs.set_int("bias", 0);
  const NodeId fc = g.add(OpKind::kDense, "fc", {in}, attrs);
  std::vector<float> wf(w.begin(), w.end());
  g.node(fc).weights = {Tensor(Shape{1, 8}, wf)};
  std::vector<float> xf(x.begin(), x.end());
  Executor exec(g);
  const auto y = exec.run({{"x", Tensor(Shape{1, 8}, xf)}});
  const auto exec_result = static_cast<std::int32_t>(y.begin()->second.at(0));

  // (b) native
  std::int32_t native = 0;
  for (std::size_t i = 0; i < x.size(); ++i) native += x[i] * w[i];

  // (c) simulated SoC with CFU
  sim::Machine m;
  m.attach_cfu(std::make_shared<sim::MacCfu>());
  sim::Assembler a(sim::kRamBase);
  const std::uint32_t data = sim::kRamBase + 0x2000;
  a.li(sim::t0, static_cast<std::int32_t>(data));
  for (std::size_t i = 0; i < x.size(); ++i) {
    a.li(sim::t1, x[i]);
    a.sw(sim::t1, sim::t0, static_cast<std::int32_t>(4 * i));
    a.li(sim::t1, w[i]);
    a.sw(sim::t1, sim::t0, static_cast<std::int32_t>(32 + 4 * i));
  }
  a.cfu(1, 0, sim::a0, sim::x0, sim::x0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    a.lw(sim::a1, sim::t0, static_cast<std::int32_t>(4 * i));
    a.lw(sim::a2, sim::t0, static_cast<std::int32_t>(32 + 4 * i));
    a.cfu(0, 0, sim::a0, sim::a1, sim::a2);
  }
  a.cfu(2, 0, sim::a0, sim::x0, sim::x0);
  a.ecall();
  m.load_program(a);
  ASSERT_EQ(m.run(), sim::HaltReason::kEcall);
  const auto sim_result = static_cast<std::int32_t>(m.cpu().reg(sim::a0));

  EXPECT_EQ(native, exec_result);
  EXPECT_EQ(native, sim_result);
}

TEST(Integration, ImageMonitorGatesExecutorInput) {
  // Input monitoring in front of the model: the noisy frame is dropped
  // before inference, the clean frame passes through.
  Graph g = zoo::micro_cnn("m", 1, 1, 24, 4);
  Rng rng(3);
  g.materialize_weights(rng);
  Executor exec(g);
  safety::ImageMonitor monitor;

  Rng data_rng(4);
  Tensor clean(Shape{1, 1, 24, 24});
  for (float& v : clean.data()) v = static_cast<float>(0.5 + data_rng.normal(0.0, 0.02));
  Tensor noisy(Shape{1, 1, 24, 24});
  for (float& v : noisy.data()) v = static_cast<float>(0.5 + data_rng.normal(0.0, 0.6));

  std::size_t inferences = 0;
  for (const Tensor* frame : {&clean, &noisy}) {
    const auto verdict = monitor.check(*frame);
    if (safety::correction_for(verdict) != safety::CorrectionAction::kDrop) {
      (void)testutil::exec_single(exec, g, *frame);
      ++inferences;
    }
  }
  EXPECT_EQ(inferences, 1u);
}

TEST(Integration, CoDesignFeedbackLoopRaisesUtilizationAtEqualLatency) {
  // Full co-design loop (Sec. II-B class 4): search, apply the channel-
  // rounding feedback to the model, search again. The rounded model tiles
  // the PE array (near-)perfectly, so the extra channels come at little
  // latency cost — the hardware's cycles now do useful work (wider layers)
  // instead of idling on ragged tiles.
  // A deliberately misaligned net (17-channel width): the kind of model the
  // co-design loop sends feedback about.
  Graph g = zoo::micro_cnn("odd-width", 1, 3, 32, 10, 17);
  hw::FabricBudget budget;
  budget.max_macs = 512;
  const auto before = hw::codesign_search(g, budget);
  ASSERT_FALSE(before.empty());
  Graph rounded = hw::apply_channel_rounding(g, 16);
  const auto after = hw::codesign_search(rounded, budget);
  ASSERT_FALSE(after.empty());

  auto best_point = [](const std::vector<hw::DesignPoint>& pts) {
    const hw::DesignPoint* best = &pts.front();
    for (const auto& p : pts) {
      if (p.latency_s < best->latency_s) best = &p;
    }
    return *best;
  };
  const auto b = best_point(before);
  const auto a = best_point(after);
  // On the hardware geometry the first search chose, the rounded model
  // must tile strictly better — that is the feedback's purpose.
  EXPECT_GT(hw::array_tiling_efficiency(rounded, b.pe_rows, b.pe_cols),
            hw::array_tiling_efficiency(g, b.pe_rows, b.pe_cols));
  // And the re-run search must not pay more latency than the MAC growth
  // the wider channels added.
  const double mac_growth = static_cast<double>(graph_cost(rounded).macs) /
                            static_cast<double>(graph_cost(g).macs);
  EXPECT_LE(a.latency_s, b.latency_s * mac_growth * 1.05);
}

}  // namespace
}  // namespace vedliot
// appended: model packaging + attestation + distributed-planning integration
#include "graph/package.hpp"
#include "platform/distributed.hpp"

namespace vedliot {
namespace {

TEST(Integration, ModelVersionAttestation) {
  // Field update story: the authority seals a model to a device; the device
  // later attests WHICH model it runs by quoting the package measurement.
  security::Key root{};
  root[9] = 0x3C;
  security::AttestationAuthority authority(root);
  const auto device_key = authority.provision("cabinet-7");

  Graph model = zoo::arc_net();
  Rng rng(4);
  model.materialize_weights(rng);
  const SealedModel bundle = seal_model(model, device_key, /*version=*/5);

  // Device side: unseal, then quote the model measurement.
  Graph deployed = unseal_model(bundle, device_key);
  security::DeviceAgent agent("cabinet-7", device_key);
  const auto quote = agent.quote(bundle.model_measurement, 777);

  // Verifier: the quote must verify AND match the expected model version.
  EXPECT_TRUE(authority.verify(quote, 777));
  EXPECT_TRUE(security::digest_equal(quote.measurement,
                                     security::sha256(pack_model(deployed))));

  // A stale model (different weights) would fail the version check.
  Graph stale = zoo::arc_net();
  Rng rng2(5);
  stale.materialize_weights(rng2);
  EXPECT_FALSE(security::digest_equal(quote.measurement,
                                      security::sha256(pack_model(stale))));
}

TEST(Integration, PackagedModelPlansIdentically) {
  // Shipping a model as a package must not change any platform decision.
  Graph g = zoo::pedestrian_net();
  Graph shipped = unpack_model(pack_model(g));

  platform::Chassis chassis(platform::recs_box());
  chassis.install("come0", platform::find_module("COMe-XavierAGX"));
  chassis.install("come1", platform::find_module("COMe-XavierAGX"));
  platform::Fabric fabric =
      platform::star_fabric({"come0", "come1"}, 10.0, {1.0, 10.0});
  const std::vector<std::string> slots{"come0", "come1"};

  const auto a = platform::plan_distributed_inference(g, chassis, fabric, slots, 2, DType::kINT8);
  const auto b =
      platform::plan_distributed_inference(shipped, chassis, fabric, slots, 2, DType::kINT8);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.pipeline_interval_s, b.pipeline_interval_s);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].first, b.stages[i].first);
    EXPECT_EQ(a.stages[i].last, b.stages[i].last);
  }
}

}  // namespace
}  // namespace vedliot
