#include "serve/cache.hpp"

#include "util/error.hpp"

namespace vedliot::serve {

ResponseCache::ResponseCache(std::size_t capacity) : capacity_(capacity) {
  VEDLIOT_CHECK(capacity_ >= 1, "response cache capacity must be >= 1");
}

std::optional<Response> ResponseCache::get(const std::string& key) {
  if (key.empty()) return std::nullopt;
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.response;
}

void ResponseCache::put(const std::string& key, const Response& response) {
  if (key.empty()) return;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.response = response;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{response, lru_.begin()});
}

}  // namespace vedliot::serve
