#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the benchmark harnesses: every bench prints
/// the paper artifact (the figure/table rows) first, then runs any
/// google-benchmark microbenchmarks registered by the file.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace vedliot::bench {

/// Print a banner identifying which paper artifact the output reproduces.
inline void banner(const std::string& artifact_id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact_id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("note: %s\n", text.c_str()); }

/// RAII wall-clock timer for one artifact section: on destruction emits a
/// single JSON-lines record so bench output can be scraped into dashboards
/// alongside the obs exporters' records:
///
///   {"record":"bench-section","bench":"bench_runtime","section":"resnet50","seconds":1.23}
class Section {
 public:
  Section(std::string bench, std::string section)
      : bench_(std::move(bench)),
        section_(std::move(section)),
        start_(std::chrono::steady_clock::now()) {}
  Section(const Section&) = delete;
  Section& operator=(const Section&) = delete;
  ~Section() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double seconds =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
        1e9;
    std::printf("{\"record\":\"bench-section\",\"bench\":\"%s\",\"section\":\"%s\","
                "\"seconds\":%s}\n",
                obs::json_escape(bench_).c_str(), obs::json_escape(section_).c_str(),
                obs::json_number(seconds).c_str());
  }

 private:
  std::string bench_;
  std::string section_;
  std::chrono::steady_clock::time_point start_;
};

/// Basename of argv[0], used to label the artifact's bench-section record.
inline std::string bench_name(const char* argv0) {
  std::string name(argv0 ? argv0 : "bench");
  const auto slash = name.find_last_of('/');
  return slash == std::string::npos ? name : name.substr(slash + 1);
}

}  // namespace vedliot::bench

/// Each bench defines `void print_artifact();` and uses this main. The
/// artifact pass is wall-clock timed and reported as one bench-section
/// JSON-lines record.
#define VEDLIOT_BENCH_MAIN()                        \
  int main(int argc, char** argv) {                 \
    {                                               \
      ::vedliot::bench::Section timed_artifact(     \
          ::vedliot::bench::bench_name(argv[0]), "artifact"); \
      print_artifact();                             \
    }                                               \
    ::benchmark::Initialize(&argc, argv);           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();          \
    ::benchmark::Shutdown();                        \
    return 0;                                       \
  }
