#include "security/admission.hpp"

namespace vedliot::security {

double tenant_cost_s(const ModuleAdmission& admission, double vm_ns_per_instr) {
  if (!admission.cost_bounded) return std::numeric_limits<double>::infinity();
  return static_cast<double>(admission.fuel_bound) * vm_ns_per_instr * 1e-9;
}

bool attest_and_admit(const AttestationAuthority& authority, const Quote& quote,
                      std::uint64_t expected_nonce, const ModuleAdmission& admission) {
  if (!admission.verified) return false;
  if (!digest_equal(quote.measurement, admission.module_digest)) return false;
  return authority.verify(quote, expected_nonce);
}

}  // namespace vedliot::security
