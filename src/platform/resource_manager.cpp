#include "platform/resource_manager.hpp"

#include <algorithm>

#include "graph/cost.hpp"

namespace vedliot::platform {

Workload Workload::from_graph(const std::string& name, const Graph& g, DType dt, double rate_hz,
                              double latency_budget_s) {
  Workload w;
  w.name = name;
  const GraphCost c = graph_cost(g);
  w.ops = static_cast<double>(c.ops);
  w.traffic_bytes = graph_traffic_bytes(g, dt, dt);
  w.weight_bytes = vedliot::weight_bytes(g, dt);
  w.dtype = dt;
  w.rate_hz = rate_hz;
  w.latency_budget_s = latency_budget_s;
  return w;
}

ResourceManager::ResourceManager(const Chassis& chassis) {
  for (const auto& [slot, module] : chassis.installed()) {
    candidates_.push_back({slot, module, 0.0});
  }
}

const ResourceManager::Candidate& ResourceManager::candidate(const std::string& slot) const {
  for (const auto& c : candidates_) {
    if (c.slot == slot) return c;
  }
  throw NotFound("no candidate slot " + slot);
}

void ResourceManager::set_capacity_scale(const std::string& slot, double scale) {
  VEDLIOT_CHECK(scale > 0.0 && scale <= 1.0, "capacity scale must be in (0, 1]");
  for (auto& c : candidates_) {
    if (c.slot == slot) {
      c.scale = scale;
      return;
    }
  }
  throw NotFound("no candidate slot " + slot);
}

double ResourceManager::capacity_scale(const std::string& slot) const {
  return candidate(slot).scale;
}

double ResourceManager::utilization_headroom(const std::string& slot) const {
  const Candidate& c = candidate(slot);
  return std::max(0.0, 1.0 - c.busy);
}

std::vector<std::string> ResourceManager::slots() const {
  std::vector<std::string> out;
  for (const auto& c : candidates_) out.push_back(c.slot);
  return out;
}

std::optional<Placement> ResourceManager::try_place(const Workload& w, Candidate& c) const {
  hw::DeviceSpec dev = c.module.device_spec();
  if (!dev.supports(w.dtype)) return std::nullopt;
  dev.peak_gops *= c.scale;
  const hw::PerfEstimate e =
      hw::estimate_workload(dev, w.ops, w.traffic_bytes, w.weight_bytes, 1, w.dtype);
  if (e.latency_s > w.latency_budget_s) return std::nullopt;
  const double util = e.latency_s * w.rate_hz;
  if (c.busy + util > 1.0) return std::nullopt;

  Placement p;
  p.workload = w.name;
  p.slot = c.slot;
  p.module = c.module.name;
  p.latency_s = e.latency_s;
  p.utilization = util;
  // Duty-cycled power: active power while inferring, idle otherwise —
  // attribute only the active increment to this workload.
  p.avg_power_w = (e.power_w - dev.idle_w) * util;
  return p;
}

std::vector<Placement> ResourceManager::place(const std::vector<Workload>& workloads) {
  // Heaviest (ops*rate) first so big workloads get the scarce fast modules.
  std::vector<Workload> order = workloads;
  std::sort(order.begin(), order.end(), [](const Workload& a, const Workload& b) {
    return a.ops * a.rate_hz > b.ops * b.rate_hz;
  });

  std::vector<Placement> out;
  for (const auto& w : order) {
    Candidate* best = nullptr;
    Placement best_p;
    for (auto& c : candidates_) {
      auto p = try_place(w, c);
      if (!p) continue;
      if (!best || p->avg_power_w < best_p.avg_power_w) {
        best = &c;
        best_p = *p;
      }
    }
    if (!best) {
      throw PlatformError("workload " + w.name +
                          " cannot be placed (latency/utilization/precision constraints)");
    }
    best->busy += best_p.utilization;
    out.push_back(best_p);
  }
  return out;
}

std::vector<Placement> ResourceManager::migrate(const std::vector<Placement>& current,
                                                const std::vector<Workload>& workloads,
                                                const std::string& failed_slot) {
  // Drop the failed slot from the candidate set and rebuild its load state
  // from the surviving placements.
  candidates_.erase(std::remove_if(candidates_.begin(), candidates_.end(),
                                   [&](const Candidate& c) { return c.slot == failed_slot; }),
                    candidates_.end());
  for (auto& c : candidates_) c.busy = 0.0;

  std::vector<Placement> kept;
  std::vector<Workload> displaced;
  for (const auto& p : current) {
    if (p.slot == failed_slot) {
      auto it = std::find_if(workloads.begin(), workloads.end(),
                             [&](const Workload& w) { return w.name == p.workload; });
      VEDLIOT_CHECK(it != workloads.end(), "placement references unknown workload " + p.workload);
      displaced.push_back(*it);
    } else {
      kept.push_back(p);
      for (auto& c : candidates_) {
        if (c.slot == p.slot) c.busy += p.utilization;
      }
    }
  }
  auto moved = place(displaced);
  kept.insert(kept.end(), moved.begin(), moved.end());
  return kept;
}

double ResourceManager::total_average_power_w(const std::vector<Placement>& placements) {
  double total = 0;
  for (const auto& p : placements) total += p.avg_power_w;
  return total;
}

}  // namespace vedliot::platform
