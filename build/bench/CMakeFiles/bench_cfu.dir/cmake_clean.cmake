file(REMOVE_RECURSE
  "CMakeFiles/bench_cfu.dir/bench_cfu.cpp.o"
  "CMakeFiles/bench_cfu.dir/bench_cfu.cpp.o.d"
  "bench_cfu"
  "bench_cfu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
