#include "hw/roofline.hpp"

#include "runtime/microkernel.hpp"

namespace vedliot::hw {

HostRoofline measure_host_roofline(util::SimdLevel requested, double min_seconds) {
  HostRoofline r;
  r.level = util::resolve_simd_level(requested);
  r.f32_gflops = runtime_kernels::peak_probe_f32(r.level, min_seconds);
  r.s8_gops = runtime_kernels::peak_probe_s8(r.level, min_seconds);
  return r;
}

double fraction_of_roofline(double achieved, double roof) {
  if (roof <= 0) return 0;
  return achieved > 0 ? achieved / roof : 0;
}

}  // namespace vedliot::hw
