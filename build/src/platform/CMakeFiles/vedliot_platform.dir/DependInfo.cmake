
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/baseboard.cpp" "src/platform/CMakeFiles/vedliot_platform.dir/baseboard.cpp.o" "gcc" "src/platform/CMakeFiles/vedliot_platform.dir/baseboard.cpp.o.d"
  "/root/repo/src/platform/distributed.cpp" "src/platform/CMakeFiles/vedliot_platform.dir/distributed.cpp.o" "gcc" "src/platform/CMakeFiles/vedliot_platform.dir/distributed.cpp.o.d"
  "/root/repo/src/platform/fabric.cpp" "src/platform/CMakeFiles/vedliot_platform.dir/fabric.cpp.o" "gcc" "src/platform/CMakeFiles/vedliot_platform.dir/fabric.cpp.o.d"
  "/root/repo/src/platform/microserver.cpp" "src/platform/CMakeFiles/vedliot_platform.dir/microserver.cpp.o" "gcc" "src/platform/CMakeFiles/vedliot_platform.dir/microserver.cpp.o.d"
  "/root/repo/src/platform/resource_manager.cpp" "src/platform/CMakeFiles/vedliot_platform.dir/resource_manager.cpp.o" "gcc" "src/platform/CMakeFiles/vedliot_platform.dir/resource_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/vedliot_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/vedliot_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vedliot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vedliot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/vedliot_security.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vedliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
