#pragma once
/// \file cpu.hpp
/// \brief Host CPU SIMD capability detection and dispatch-level resolution.
///
/// The execution engine carries one portable scalar kernel set plus
/// architecture-specific microkernels (AVX2/FMA on x86-64, NEON on
/// aarch64). Which set actually runs is decided *at runtime* from CPUID
/// feature bits — the VEDLIoT premise is one binary serving heterogeneous
/// devices, so the compiled artifact must never assume the build host's
/// ISA. Resolution order:
///
///   1. `VEDLIOT_FORCE_PORTABLE=1` (env) pins the portable scalar path —
///      the kill switch for field debugging and the reference half of
///      every SIMD-vs-scalar regression test.
///   2. `VEDLIOT_SIMD=portable|avx2|neon|auto` (env) requests a specific
///      level; an unavailable request falls back to portable, never up.
///   3. An explicit ExecConfig::simd request, same fallback rule.
///   4. kAuto picks the best level the CPU supports.

#include <string_view>

namespace vedliot::util {

/// Kernel dispatch level. kAuto is a *request* (resolve to the best
/// supported level); the other values are concrete kernel sets.
enum class SimdLevel {
  kAuto,      ///< request: pick the best available at runtime
  kPortable,  ///< scalar C++ kernels, available everywhere
  kAvx2,      ///< x86-64 AVX2+FMA microkernels
  kNeon,      ///< aarch64 NEON microkernels
};

std::string_view simd_level_name(SimdLevel level);

/// CPUID-derived feature bits of the host (detected once, cached).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool neon = false;
};
const CpuFeatures& cpu_features();

/// True when the host can execute kernels at \p level (kAuto/kPortable
/// are always supported).
bool simd_supported(SimdLevel level);

/// Resolve a requested level to a concrete one: apply the env overrides,
/// then availability (unsupported requests degrade to portable). Never
/// returns kAuto.
SimdLevel resolve_simd_level(SimdLevel requested);

}  // namespace vedliot::util
