#include "runtime/memory_planner.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "analysis/dataflow.hpp"
#include "util/error.hpp"

namespace vedliot {

MemoryPlan plan_memory_with_order(const Graph& g, std::span<const NodeId> order, DType act_dtype,
                                  std::int64_t alignment) {
  VEDLIOT_CHECK(alignment > 0, "alignment must be positive");
  // Order validation (coverage, duplicates, topological soundness) and
  // lifetimes both come from the shared dataflow analysis: a buffer is born
  // at its producer step and dies after its last consumer step (graph
  // outputs live to the end).
  const auto df = analysis::Dataflow::compute_with_order(g, order, act_dtype);

  MemoryPlan plan;
  auto align_up = [&](std::int64_t v) { return (v + alignment - 1) / alignment * alignment; };

  // Greedy best-fit: place buffers in order of decreasing size at the lowest
  // offset where they don't collide with any already-placed, lifetime-
  // overlapping buffer.
  std::vector<BufferPlan> todo;
  for (const analysis::LiveInterval& iv : df.intervals()) {
    BufferPlan b;
    b.node = iv.node;
    b.size = align_up(iv.bytes);
    b.first_use = iv.def_step;
    b.last_use = iv.last_use;
    plan.naive_bytes += b.size;
    todo.push_back(b);
  }
  std::stable_sort(todo.begin(), todo.end(),
                   [](const BufferPlan& a, const BufferPlan& b) { return a.size > b.size; });

  auto lifetimes_overlap = [](const BufferPlan& a, const BufferPlan& b) {
    return a.first_use <= b.last_use && b.first_use <= a.last_use;
  };

  for (auto& b : todo) {
    std::vector<std::pair<std::int64_t, std::int64_t>> busy;
    for (const auto& placed : plan.buffers) {
      if (lifetimes_overlap(placed, b)) busy.emplace_back(placed.offset, placed.offset + placed.size);
    }
    std::sort(busy.begin(), busy.end());
    std::int64_t cursor = 0;
    for (const auto& [lo, hi] : busy) {
      if (cursor + b.size <= lo) break;  // fits in the gap before this interval
      cursor = std::max(cursor, hi);
    }
    b.offset = cursor;
    plan.arena_bytes = std::max(plan.arena_bytes, b.offset + b.size);
    plan.buffers.push_back(b);
  }

  std::sort(plan.buffers.begin(), plan.buffers.end(),
            [](const BufferPlan& a, const BufferPlan& b) { return a.first_use < b.first_use; });
  return plan;
}

MemoryPlan plan_memory(const Graph& g, DType act_dtype, std::int64_t alignment) {
  const auto order = g.topo_order();
  return plan_memory_with_order(g, order, act_dtype, alignment);
}

std::vector<NodeId> memory_aware_order(const Graph& g, DType act_dtype) {
  const double elem_bytes = dtype_bytes(act_dtype);
  const auto live = g.topo_order();
  const auto outputs = g.outputs();

  // Kahn's algorithm with a greedy score: prefer nodes that free more
  // bytes (inputs whose last remaining consumer they are) than they
  // allocate (their own output).
  std::map<NodeId, std::size_t> pending_inputs;
  std::map<NodeId, std::size_t> remaining_consumers;
  for (NodeId id : live) {
    pending_inputs[id] = g.node(id).inputs.size();
    remaining_consumers[id] = g.consumers(id).size();
    // graph outputs stay alive forever -> never "freed"
    if (std::find(outputs.begin(), outputs.end(), id) != outputs.end()) {
      ++remaining_consumers[id];
    }
  }

  auto bytes_of = [&](NodeId id) {
    return static_cast<double>(g.node(id).out_shape.numel()) * elem_bytes;
  };

  std::set<NodeId> ready;
  for (NodeId id : live) {
    if (pending_inputs[id] == 0) ready.insert(id);
  }

  std::vector<NodeId> order;
  order.reserve(live.size());
  while (!ready.empty()) {
    NodeId best = *ready.begin();
    double best_score = -1e300;
    for (NodeId candidate : ready) {
      double freed = 0;
      // Count each distinct input once, freed only if we are its last consumer.
      std::set<NodeId> seen;
      for (NodeId in : g.node(candidate).inputs) {
        if (!seen.insert(in).second) continue;
        if (remaining_consumers[in] == 1) freed += bytes_of(in);
      }
      const double score = freed - bytes_of(candidate);
      if (score > best_score || (score == best_score && candidate < best)) {
        best_score = score;
        best = candidate;
      }
    }
    ready.erase(best);
    order.push_back(best);

    std::set<NodeId> seen;
    for (NodeId in : g.node(best).inputs) {
      if (!seen.insert(in).second) continue;
      --remaining_consumers[in];
    }
    for (NodeId consumer : g.consumers(best)) {
      if (--pending_inputs[consumer] == 0) ready.insert(consumer);
    }
  }
  VEDLIOT_CHECK(order.size() == live.size(), "graph has a cycle (impossible by construction)");
  return order;
}

bool plan_is_valid(const MemoryPlan& plan) {
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    const auto& a = plan.buffers[i];
    if (a.offset < 0 || a.size <= 0) return false;
    if (a.offset + a.size > plan.arena_bytes) return false;
    for (std::size_t j = i + 1; j < plan.buffers.size(); ++j) {
      const auto& b = plan.buffers[j];
      const bool life_overlap = a.first_use <= b.last_use && b.first_use <= a.last_use;
      const bool addr_overlap = a.offset < b.offset + b.size && b.offset < a.offset + a.size;
      if (life_overlap && addr_overlap) return false;
    }
  }
  return true;
}

}  // namespace vedliot
