#!/usr/bin/env bash
# Tier-1 verification: full build + complete test suite from a clean tree,
# then an AddressSanitizer+UBSan build of the resilience-critical tests.
#
# Usage: scripts/tier1.sh [-jN]

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

echo "== tier-1: build + full ctest =="
cmake -B build -S . > /dev/null
cmake --build build "${JOBS}" > /dev/null
ctest --test-dir build --output-on-failure "${JOBS}"

echo
echo "== tier-1: ASan+UBSan on the resilience/platform/observability tests =="
cmake -B build-asan -S . -DVEDLIOT_SANITIZE=ON > /dev/null
cmake --build build-asan "${JOBS}" --target test_resilience test_platform test_distributed test_util test_obs > /dev/null
ctest --test-dir build-asan --output-on-failure "${JOBS}" \
  -R 'test_resilience|test_platform|test_distributed|test_util|test_obs'

echo
echo "tier-1 OK"
