#pragma once
/// \file interval.hpp
/// \brief Signed-interval abstract domain over i32 values.
///
/// The value domain of the WASM bytecode verifier (wasm_verifier.hpp): each
/// abstract value is a closed interval [lo, hi] of possible i32 values,
/// tracked in 64-bit so transfer functions can detect i32 wrap-around and
/// widen to top instead of producing an unsound tighter range. The VM's
/// arithmetic wraps (it computes in uint32), so every transfer function
/// returns the exact interval only when no operand combination can leave
/// the i32 range; otherwise it returns top. That keeps the domain sound:
/// the concrete result of any operation is always contained in the abstract
/// result, which is what the memory-bounds and division proofs rely on.

#include <cstdint>

namespace vedliot::analysis {

struct Interval {
  // Bounds are carried as int64 but always lie within [kMin, kMax].
  static constexpr std::int64_t kMin = INT32_MIN;
  static constexpr std::int64_t kMax = INT32_MAX;

  std::int64_t lo = kMin;
  std::int64_t hi = kMax;

  static Interval top() { return {kMin, kMax}; }
  static Interval constant(std::int32_t v) { return {v, v}; }
  /// Clamp-constructed range; swaps nothing — callers must pass lo <= hi.
  static Interval range(std::int64_t lo, std::int64_t hi);

  bool is_top() const { return lo == kMin && hi == kMax; }
  bool is_constant() const { return lo == hi; }
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  /// True when every value of *this is inside [l, h].
  bool within(std::int64_t l, std::int64_t h) const { return l <= lo && hi <= h; }

  bool operator==(const Interval&) const = default;
};

/// Least upper bound (interval hull).
Interval interval_join(Interval a, Interval b);

/// Widening: any bound that moved since \p older jumps straight to the i32
/// extreme, so fixpoint iteration terminates in O(2) widenings per slot.
Interval interval_widen(Interval older, Interval newer);

// Transfer functions mirroring the WasmVm operational semantics (wrapping
// i32 arithmetic; see wasm.cpp). Each returns a sound over-approximation.
Interval interval_add(Interval a, Interval b);
Interval interval_sub(Interval a, Interval b);
Interval interval_mul(Interval a, Interval b);
/// Quotient interval; callers must have excluded divisor 0 and the
/// INT32_MIN / -1 overflow corner before asking for the result.
Interval interval_div_s(Interval a, Interval b);
/// Remainder interval; callers must have excluded divisor 0.
Interval interval_rem_s(Interval a, Interval b);
Interval interval_and(Interval a, Interval b);
Interval interval_or(Interval a, Interval b);
Interval interval_xor(Interval a, Interval b);
Interval interval_shl(Interval a, Interval b);
Interval interval_shr_s(Interval a, Interval b);
/// Comparison results are always {0, 1}.
Interval interval_bool();

}  // namespace vedliot::analysis
