file(REMOVE_RECURSE
  "libvedliot_apps.a"
)
