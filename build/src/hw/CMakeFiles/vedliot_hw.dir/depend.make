# Empty dependencies file for vedliot_hw.
# This may be replaced when dependencies are built.
