// Tests for model packaging: binary round trip with weights, sealed
// (encrypted + authenticated) deployment bundles, and the memory-aware
// execution order.

#include <gtest/gtest.h>

#include "graph/cost.hpp"
#include "graph/package.hpp"
#include "graph/zoo.hpp"
#include "runtime/executor.hpp"
#include "runtime/memory_planner.hpp"
#include "security/attestation.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

Graph materialized(Graph g, std::uint64_t seed = 5) {
  Rng rng(seed);
  g.materialize_weights(rng);
  return g;
}

TEST(Package, RoundTripPreservesStructureAndWeights) {
  Graph g = materialized(zoo::micro_cnn("m", 1, 1, 16, 4));
  const auto blob = pack_model(g);
  Graph back = unpack_model(blob);
  EXPECT_EQ(back.size(), g.size());
  EXPECT_TRUE(back.weights_materialized());
  // identical outputs on identical inputs: the strongest round-trip check
  Rng rng(9);
  Tensor x(Shape{1, 1, 16, 16}, rng.normal_vector(256));
  const Tensor a = Executor(g).run_single(x);
  const Tensor b = Executor(back).run_single(x);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(Package, AnalyticModelRoundTrips) {
  Graph g = zoo::mobilenet_v3_large();  // no weights
  Graph back = unpack_model(pack_model(g));
  EXPECT_EQ(graph_cost(back).macs, graph_cost(g).macs);
  EXPECT_FALSE(back.weights_materialized());
}

TEST(Package, WeightDtypeTagSurvives) {
  Graph g = materialized(zoo::micro_mlp("m", 1, 8, {8}, 3));
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if (n.kind == OpKind::kDense) n.weight_dtype = DType::kINT8;
  }
  Graph back = unpack_model(pack_model(g));
  for (NodeId id : back.topo_order()) {
    const Node& n = back.node(id);
    if (n.kind == OpKind::kDense) {
      EXPECT_EQ(n.weight_dtype, DType::kINT8);
    }
  }
}

TEST(Package, RejectsGarbage) {
  std::vector<std::uint8_t> junk{1, 2, 3, 4, 5};
  EXPECT_THROW((void)unpack_model(junk), GraphError);
  Graph g = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2));
  auto blob = pack_model(g);
  blob.resize(blob.size() / 2);  // truncate
  EXPECT_THROW((void)unpack_model(blob), GraphError);
  auto trailing = pack_model(g);
  trailing.push_back(0);
  EXPECT_THROW((void)unpack_model(trailing), GraphError);
}

TEST(Package, SealedDeploymentRoundTrip) {
  security::Key root{};
  root[1] = 0x77;
  security::AttestationAuthority authority(root);
  const security::Key device_key = authority.provision("edge-3");

  Graph g = materialized(zoo::micro_mlp("kws", 1, 16, {12}, 4));
  const SealedModel sealed = seal_model(g, device_key, 1);
  EXPECT_NE(sealed.ciphertext, pack_model(g));  // actually encrypted

  Graph back = unseal_model(sealed, device_key);
  Rng rng(3);
  Tensor x(Shape{1, 16}, rng.normal_vector(16));
  EXPECT_FLOAT_EQ(max_abs_diff(Executor(g).run_single(x), Executor(back).run_single(x)), 0.0f);
}

TEST(Package, SealedModelBoundToDevice) {
  security::Key root{};
  security::AttestationAuthority authority(root);
  Graph g = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2));
  const SealedModel sealed = seal_model(g, authority.provision("edge-a"), 1);
  EXPECT_THROW((void)unseal_model(sealed, authority.provision("edge-b")), Error);
}

TEST(Package, SealedModelTamperDetected) {
  security::Key root{};
  security::AttestationAuthority authority(root);
  const auto key = authority.provision("edge-a");
  Graph g = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2));
  SealedModel sealed = seal_model(g, key, 1);
  sealed.ciphertext[10] ^= 0x40;  // flip one weight bit in transit
  EXPECT_THROW((void)unseal_model(sealed, key), Error);
}

TEST(Package, MeasurementIdentifiesModelVersion) {
  security::Key root{};
  security::AttestationAuthority authority(root);
  const auto key = authority.provision("edge-a");
  Graph g1 = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2), 1);
  Graph g2 = materialized(zoo::micro_mlp("m", 1, 4, {4}, 2), 2);  // different weights
  const auto s1 = seal_model(g1, key, 1);
  const auto s2 = seal_model(g2, key, 2);
  EXPECT_FALSE(security::digest_equal(s1.model_measurement, s2.model_measurement));
}

// ---------------------------------------------------------------------------
// Memory-aware execution order
// ---------------------------------------------------------------------------

TEST(MemoryOrder, IsValidTopologicalOrder) {
  Graph g = zoo::yolov4();
  const auto order = memory_aware_order(g, DType::kINT8);
  EXPECT_EQ(order.size(), g.size());
  std::map<NodeId, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id : order) {
    for (NodeId in : g.node(id).inputs) EXPECT_LT(pos.at(in), pos.at(id));
  }
}

TEST(MemoryOrder, PlanWithCustomOrderIsValid) {
  Graph g = zoo::mobilenet_v3_large();
  const auto order = memory_aware_order(g, DType::kFP32);
  const auto plan = plan_memory_with_order(g, order, DType::kFP32);
  EXPECT_TRUE(plan_is_valid(plan));
}

TEST(MemoryOrder, HelpsOnWideFanout) {
  // A graph with two parallel wide branches: naive id-order keeps both
  // branches' tensors alive simultaneously; the memory-aware order finishes
  // one branch before starting the other.
  Graph g("wide");
  const NodeId in = g.add_input("x", Shape{1, 8, 32, 32});
  auto branch = [&](const std::string& name) {
    NodeId cur = in;
    for (int i = 0; i < 3; ++i) {
      cur = g.add(OpKind::kRelu, name + std::to_string(i), {cur});
    }
    return g.add(OpKind::kGlobalAvgPool, name + "_gap", {cur});
  };
  // Interleave the branch construction so id-order alternates branches.
  NodeId a0 = g.add(OpKind::kRelu, "a0", {in});
  NodeId b0 = g.add(OpKind::kRelu, "b0", {in});
  NodeId a1 = g.add(OpKind::kRelu, "a1", {a0});
  NodeId b1 = g.add(OpKind::kRelu, "b1", {b0});
  NodeId a2 = g.add(OpKind::kGlobalAvgPool, "a2", {a1});
  NodeId b2 = g.add(OpKind::kGlobalAvgPool, "b2", {b1});
  g.add(OpKind::kAdd, "merge", {a2, b2});
  (void)branch;

  const auto id_plan = plan_memory(g, DType::kFP32);
  const auto smart = memory_aware_order(g, DType::kFP32);
  const auto smart_plan = plan_memory_with_order(g, smart, DType::kFP32);
  EXPECT_TRUE(plan_is_valid(smart_plan));
  EXPECT_LE(smart_plan.arena_bytes, id_plan.arena_bytes);
}

TEST(MemoryOrder, NeverWorseOnZooModels) {
  for (Graph g : {zoo::resnet50(), zoo::mobilenet_v3_large(), zoo::gesture_net()}) {
    const auto base = plan_memory(g, DType::kINT8);
    const auto smart = plan_memory_with_order(g, memory_aware_order(g, DType::kINT8), DType::kINT8);
    EXPECT_TRUE(plan_is_valid(smart));
    // allow tiny regressions from the greedy heuristic, never > 10%
    EXPECT_LE(static_cast<double>(smart.arena_bytes),
              static_cast<double>(base.arena_bytes) * 1.10)
        << g.name();
  }
}

TEST(MemoryOrder, RejectsBadOrders) {
  Graph g = zoo::micro_mlp("m", 1, 4, {4}, 2);
  auto order = g.topo_order();
  std::swap(order.front(), order.back());  // breaks topology
  EXPECT_THROW((void)plan_memory_with_order(g, order, DType::kFP32), Error);
  order = g.topo_order();
  order.pop_back();  // misses a node
  EXPECT_THROW((void)plan_memory_with_order(g, order, DType::kFP32), Error);
}

}  // namespace
}  // namespace vedliot
