file(REMOVE_RECURSE
  "CMakeFiles/vedliot_opt.dir/compress.cpp.o"
  "CMakeFiles/vedliot_opt.dir/compress.cpp.o.d"
  "CMakeFiles/vedliot_opt.dir/fusion.cpp.o"
  "CMakeFiles/vedliot_opt.dir/fusion.cpp.o.d"
  "CMakeFiles/vedliot_opt.dir/huffman.cpp.o"
  "CMakeFiles/vedliot_opt.dir/huffman.cpp.o.d"
  "CMakeFiles/vedliot_opt.dir/pass.cpp.o"
  "CMakeFiles/vedliot_opt.dir/pass.cpp.o.d"
  "CMakeFiles/vedliot_opt.dir/prune.cpp.o"
  "CMakeFiles/vedliot_opt.dir/prune.cpp.o.d"
  "CMakeFiles/vedliot_opt.dir/quantize.cpp.o"
  "CMakeFiles/vedliot_opt.dir/quantize.cpp.o.d"
  "libvedliot_opt.a"
  "libvedliot_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
