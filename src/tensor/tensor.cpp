#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vedliot {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      storage_(static_cast<std::size_t>(shape_.numel()), 0.0f),
      data_(storage_) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), storage_(std::move(data)), data_(storage_) {
  VEDLIOT_CHECK(static_cast<std::int64_t>(storage_.size()) == shape_.numel(),
                "Tensor data size does not match shape " + shape_.to_string());
}

Tensor Tensor::view(Shape shape, std::span<float> data) {
  Tensor t;
  VEDLIOT_CHECK(static_cast<std::int64_t>(data.size()) == shape.numel(),
                "Tensor view size does not match shape " + shape.to_string());
  t.shape_ = std::move(shape);
  t.data_ = data;
  return t;
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_), storage_(other.storage_) {
  data_ = other.is_view() ? other.data_ : std::span<float>(storage_);
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  storage_ = other.storage_;
  data_ = other.is_view() ? other.data_ : std::span<float>(storage_);
  return *this;
}

Tensor Tensor::clone() const {
  return Tensor(shape_, std::vector<float>(data_.begin(), data_.end()));
}

float& Tensor::at(std::size_t i) {
  VEDLIOT_CHECK(i < data_.size(), "Tensor index out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  VEDLIOT_CHECK(i < data_.size(), "Tensor index out of range");
  return data_[i];
}

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
  const auto& s = shape_;
  VEDLIOT_CHECK(n >= 0 && n < s.n() && c >= 0 && c < s.c() && h >= 0 && h < s.h() && w >= 0 && w < s.w(),
                "Tensor 4-D index out of range for " + s.to_string());
  const std::size_t idx =
      static_cast<std::size_t>(((n * s.c() + c) * s.h() + h) * s.w() + w);
  return data_[idx];
}

float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

float Tensor::min() const {
  if (data_.empty()) return 0.0f;
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) return 0.0f;
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::abs_sum() const {
  double s = 0.0;
  for (float v : data_) s += std::abs(v);
  return s;
}

double Tensor::sparsity() const {
  if (data_.empty()) return 0.0;
  std::size_t zeros = 0;
  for (float v : data_) {
    if (v == 0.0f) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  VEDLIOT_CHECK(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  float m = 0.0f;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) m = std::max(m, std::abs(da[i] - db[i]));
  return m;
}

double rmse(const Tensor& a, const Tensor& b) {
  VEDLIOT_CHECK(a.shape() == b.shape(), "rmse shape mismatch");
  if (a.numel() == 0) return 0.0;
  double s = 0.0;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double d = static_cast<double>(da[i]) - static_cast<double>(db[i]);
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(da.size()));
}

}  // namespace vedliot
