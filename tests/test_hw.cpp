// Tests for the hardware models: device catalogs, roofline performance
// model, the four accelerator classes and the co-design search.

#include <gtest/gtest.h>

#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "hw/accel.hpp"
#include "hw/device.hpp"
#include "hw/perf_model.hpp"
#include "util/stats.hpp"

namespace vedliot::hw {
namespace {

TEST(Catalog, SurveyHasBroadPowerRange) {
  const auto& devices = survey_catalog();
  EXPECT_GE(devices.size(), 25u);
  double min_w = 1e9, max_w = 0;
  for (const auto& d : devices) {
    min_w = std::min(min_w, d.tdp_w);
    max_w = std::max(max_w, d.tdp_w);
  }
  // Fig. 3: from milliwatt-class endpoints to 400 W cloud parts.
  EXPECT_LT(min_w, 0.05);
  EXPECT_GE(max_w, 400.0);
}

TEST(Catalog, Fig3EfficiencyClustersAroundOneTopsPerWatt) {
  // The paper: "most architectures cluster around ... 1 TOPS/W".
  std::vector<double> eff;
  for (const auto& d : survey_catalog()) eff.push_back(d.peak_tops_per_watt());
  const double gm = stats::geomean(eff);
  EXPECT_GT(gm, 0.2);
  EXPECT_LT(gm, 3.0);
  // The bulk of the distribution sits within an order of magnitude of
  // 1 TOPS/W (plain CPUs legitimately fall well below the cluster).
  EXPECT_GT(stats::median(eff), 0.1);
  EXPECT_LT(stats::median(eff), 3.0);
  const double lo = stats::percentile(eff, 25);
  const double hi = stats::percentile(eff, 75);
  EXPECT_LT(hi / lo, 100.0);
}

TEST(Catalog, YoloPlatformsMatchFig4List) {
  const auto& v = yolo_eval_platforms();
  EXPECT_GE(v.size(), 10u);
  for (const char* name : {"Epyc3451", "D1577", "GTX1660", "XavierAGX-MAXN", "XavierNX",
                           "JetsonTX2", "ZynqZU15", "ZynqZU3", "MyriadX"}) {
    EXPECT_NO_THROW((void)find_device(name)) << name;
  }
}

TEST(Catalog, UnknownDeviceThrows) {
  EXPECT_THROW((void)find_device("TPU-v9"), NotFound);
}

TEST(Catalog, AllDevicesInternallyConsistent) {
  for (const auto& d : survey_catalog()) {
    EXPECT_GT(d.peak_gops, 0) << d.name;
    EXPECT_GT(d.mem_bandwidth_gbs, 0) << d.name;
    EXPECT_GT(d.tdp_w, d.idle_w) << d.name;
    EXPECT_TRUE(d.supports(d.best_dtype)) << d.name;
    EXPECT_GT(d.util_b1, 0) << d.name;
    EXPECT_LE(d.util_b1, d.util_sat) << d.name;
    EXPECT_LE(d.util_sat, 1.0) << d.name;
  }
}

TEST(Device, PeakScalesWithDtype) {
  const auto& gpu = find_device("GTX1660");  // int8 peak 20 TOPS
  EXPECT_DOUBLE_EQ(gpu.peak_gops_at(DType::kINT8), 20000);
  EXPECT_DOUBLE_EQ(gpu.peak_gops_at(DType::kFP16), 10000);
  EXPECT_DOUBLE_EQ(gpu.peak_gops_at(DType::kFP32), 5000);
}

TEST(Device, UnsupportedDtypeThrows) {
  const auto& fpga = find_device("ZynqZU15");
  EXPECT_THROW((void)fpga.peak_gops_at(DType::kFP32), Unsupported);
}

TEST(Device, UtilizationMonotoneInBatch) {
  for (const auto& d : yolo_eval_platforms()) {
    double prev = 0;
    for (int b = 1; b <= 16; b *= 2) {
      const double u = d.utilization(b);
      EXPECT_GE(u, prev) << d.name;
      EXPECT_LE(u, d.util_sat + 1e-12) << d.name;
      prev = u;
    }
  }
  EXPECT_THROW((void)find_device("GTX1660").utilization(0), Error);
}

TEST(PerfModel, LatencyPositiveAndBoundsConsistent) {
  Graph g = zoo::yolov4();
  for (const auto& d : yolo_eval_platforms()) {
    const auto e = estimate(d, g, d.best_dtype);
    EXPECT_GT(e.latency_s, 0) << d.name;
    EXPECT_GE(e.latency_s, e.compute_time_s - 1e-12) << d.name;
    EXPECT_GE(e.latency_s, e.memory_time_s - 1e-12) << d.name;
    EXPECT_GE(e.power_w, d.idle_w) << d.name;
    EXPECT_LE(e.power_w, d.tdp_w + 1e-9) << d.name;
    EXPECT_GT(e.efficiency_gops_w, 0) << d.name;
  }
}

TEST(PerfModel, AchievedNeverExceedsPeak) {
  Graph g = zoo::resnet50(8);
  for (const auto& d : yolo_eval_platforms()) {
    const auto e = estimate(d, g, d.best_dtype);
    EXPECT_LE(e.achieved_gops, d.peak_gops_at(d.best_dtype) + 1e-9) << d.name;
  }
}

TEST(PerfModel, BatchingHelpsGpusMoreThanCpus) {
  // The central Fig. 4 shape: B8/B1 throughput gain is large on GPUs and
  // nearly 1 on CPUs/FPGAs.
  auto gain = [](const char* dev) {
    const auto& d = find_device(dev);
    const auto e1 = estimate(d, zoo::yolov4(1), d.best_dtype);
    const auto e8 = estimate(d, zoo::yolov4(8), d.best_dtype);
    return e8.fps / e1.fps;
  };
  EXPECT_GT(gain("GTX1660"), 2.0);
  EXPECT_GT(gain("XavierAGX-MAXN"), 2.0);
  EXPECT_LT(gain("Epyc3451"), 1.5);
  EXPECT_LT(gain("ZynqZU15"), 1.4);
}

TEST(PerfModel, MemoryBoundDeviceDetected) {
  // MobileNetV3 is ops-light but weight-heavy relative to ZU3's 4.3 GB/s:
  // weight streaming dominates -> memory bound.
  const auto e = estimate(find_device("ZynqZU3"), zoo::mobilenet_v3_large(1), DType::kINT8);
  EXPECT_EQ(e.bound, Bound::kMemory);
}

TEST(PerfModel, ComputeHeavyModelComputeBoundOnFpga) {
  // ResNet50 is compute-heavy (8.2 Gops vs ~26 MB of operands): on the
  // larger FPGA it must hit the compute roof.
  const auto e = estimate(find_device("ZynqZU15"), zoo::resnet50(1), DType::kINT8);
  EXPECT_EQ(e.bound, Bound::kCompute);
}

TEST(PerfModel, OnChipBufferReducesLatency) {
  // Same device, but with the activation buffer removed, must be slower
  // (every intermediate spills to DRAM).
  DeviceSpec cramped = find_device("ZynqZU3");
  cramped.onchip_mib = 0.001;
  const auto with_buffer = estimate(find_device("ZynqZU3"), zoo::yolov4(1), DType::kINT8);
  const auto without = estimate(cramped, zoo::yolov4(1), DType::kINT8);
  EXPECT_GT(without.latency_s, with_buffer.latency_s);
}

TEST(PerfModel, EnergyPerInferenceDropsWithBatchOnGpu) {
  const auto& d = find_device("GTX1660");
  const auto e1 = estimate(d, zoo::yolov4(1), DType::kINT8);
  const auto e8 = estimate(d, zoo::yolov4(8), DType::kINT8);
  EXPECT_LT(e8.energy_per_inference_j, e1.energy_per_inference_j);
}

TEST(PerfModel, Int8FasterThanFp32OnSameDevice) {
  const auto& d = find_device("GTX1660");
  Graph g = zoo::resnet50();
  const auto e8 = estimate(d, g, DType::kINT8);
  const auto e32 = estimate(d, g, DType::kFP32);
  EXPECT_LT(e8.latency_s, e32.latency_s);
}

TEST(PerfModel, WorkloadValidation) {
  const auto& d = find_device("MyriadX");
  EXPECT_THROW((void)estimate_workload(d, 0, 1e6, 1e6, 1, DType::kINT8), Error);
}

// ---------------------------------------------------------------------------
// Accelerator classes (Sec. II-B)
// ---------------------------------------------------------------------------

TEST(Accel, KindNames) {
  EXPECT_EQ(accelerator_kind_name(AcceleratorKind::kOffTheShelf), "off-the-shelf");
  EXPECT_EQ(accelerator_kind_name(AcceleratorKind::kCoDesign), "co-design");
}

TEST(Accel, OffTheShelfMatchesPerfModel) {
  OffTheShelfAccelerator acc(find_device("MyriadX"));
  Graph g = zoo::mobilenet_v3_large();
  const auto a = acc.estimate_graph(g, DType::kINT8);
  const auto b = estimate(find_device("MyriadX"), g, DType::kINT8);
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
}

TEST(Accel, StaticConfigBoostsMatchedModelOnly) {
  StaticConfigAccelerator acc(find_device("ZynqZU15"), "resnet50");
  Graph matched = zoo::resnet50();
  Graph other = zoo::yolov4();
  const auto base = estimate(find_device("ZynqZU15"), matched, DType::kINT8);
  const auto boosted = acc.estimate_graph(matched, DType::kINT8);
  EXPECT_LT(boosted.latency_s, base.latency_s);

  const auto base_other = estimate(find_device("ZynqZU15"), other, DType::kINT8);
  const auto penalized = acc.estimate_graph(other, DType::kINT8);
  EXPECT_GT(penalized.latency_s, base_other.latency_s);
}

ReconfigurableAccelerator make_reconfig() {
  return ReconfigurableAccelerator(
      find_device("ZynqZU15"),
      {{"high-perf", 1.0, 1.0, 12.0}, {"low-power", 0.4, 0.28, 8.0}, {"balanced", 0.7, 0.6, 10.0}});
}

TEST(Accel, ReconfigurationCostsBitstreamTime) {
  auto acc = make_reconfig();
  EXPECT_DOUBLE_EQ(acc.reconfigure("high-perf"), 0.0);  // already active
  const double t = acc.reconfigure("low-power");
  // 8 MiB at 0.4 GB/s ~ 21 ms
  EXPECT_NEAR(t, 8.0 * 1024 * 1024 / 0.4e9, 1e-6);
  EXPECT_EQ(acc.active().name, "low-power");
  EXPECT_THROW((void)acc.reconfigure("bogus"), NotFound);
}

TEST(Accel, ProfilesTradePerformanceForPower) {
  auto acc = make_reconfig();
  Graph g = zoo::resnet50();
  acc.reconfigure("high-perf");
  const auto hp = acc.estimate_graph(g, DType::kINT8);
  acc.reconfigure("low-power");
  const auto lp = acc.estimate_graph(g, DType::kINT8);
  EXPECT_GT(lp.latency_s, hp.latency_s);
  EXPECT_LT(lp.power_w, hp.power_w);
}

TEST(Accel, BestProfileMeetsLatencyWithLeastEnergy) {
  auto acc = make_reconfig();
  Graph g = zoo::resnet50();
  // generous budget -> the most energy-efficient (low-power) profile wins
  const auto relaxed = acc.best_profile_for(g, DType::kINT8, 1.0);
  EXPECT_EQ(relaxed, "low-power");
  // tight budget -> must pick a faster profile
  acc.reconfigure("high-perf");
  const double fast_latency = acc.estimate_graph(g, DType::kINT8).latency_s;
  const auto tight = acc.best_profile_for(g, DType::kINT8, fast_latency * 1.05);
  EXPECT_EQ(tight, "high-perf");
  EXPECT_THROW((void)acc.best_profile_for(g, DType::kINT8, fast_latency * 0.5), Unsupported);
}

// ---------------------------------------------------------------------------
// Co-design (Sec. II-B class 4)
// ---------------------------------------------------------------------------

TEST(CoDesign, TilingEfficiencyPerfectWhenChannelsDivide) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 16, 8, 8});
  AttrMap a;
  a.set_int("out_channels", 32);
  a.set_int("kernel", 3);
  a.set_int("stride", 1);
  a.set_int("pad", 1);
  a.set_int("groups", 1);
  a.set_int("bias", 0);
  g.add(OpKind::kConv2d, "c", {in}, a);
  EXPECT_DOUBLE_EQ(array_tiling_efficiency(g, 16, 16), 1.0);
  EXPECT_DOUBLE_EQ(array_tiling_efficiency(g, 32, 16), 1.0);
}

TEST(CoDesign, TilingEfficiencyDropsOnMisalignedChannels) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 17, 8, 8});
  AttrMap a;
  a.set_int("out_channels", 33);
  a.set_int("kernel", 1);
  a.set_int("stride", 1);
  a.set_int("pad", 0);
  a.set_int("groups", 1);
  a.set_int("bias", 0);
  g.add(OpKind::kConv2d, "c", {in}, a);
  const double eff = array_tiling_efficiency(g, 16, 16);
  // 33/48 * 17/32
  EXPECT_NEAR(eff, 33.0 / 48.0 * 17.0 / 32.0, 1e-9);
}

TEST(CoDesign, SearchRespectsFabricBudget) {
  Graph g = zoo::mobilenet_v3_large();
  FabricBudget budget;
  budget.max_macs = 1024;
  const auto points = codesign_search(g, budget);
  EXPECT_FALSE(points.empty());
  for (const auto& p : points) {
    EXPECT_LE(p.pe_rows * p.pe_cols, budget.max_macs);
    EXPECT_LE(p.sram_mib, budget.max_sram_mib);
    EXPECT_GT(p.latency_s, 0);
  }
  // sorted by energy ascending
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].energy_j, points[i].energy_j);
  }
}

TEST(CoDesign, ChannelRoundingImprovesTiling) {
  // The "feedback to the models" loop: rounding channels to the PE array
  // multiple must raise tiling efficiency.
  Graph g = zoo::mobilenet_v3_large();
  Graph rounded = apply_channel_rounding(g, 16);
  const double before = array_tiling_efficiency(g, 16, 16);
  const double after = array_tiling_efficiency(rounded, 16, 16);
  EXPECT_GT(after, before);
  // Depthwise layers (1 input channel per group) keep the average below a
  // perfect 1.0, but the dense/pointwise bulk must now tile cleanly.
  EXPECT_GT(after, 0.85);
}

TEST(CoDesign, ChannelRoundingPreservesHeads) {
  Graph g = zoo::micro_cnn("m", 1, 3, 32, 10);
  Graph rounded = apply_channel_rounding(g, 16);
  const auto outs = rounded.outputs();
  // the softmax head still produces 10 classes
  EXPECT_EQ(rounded.node(outs.front()).out_shape.dim(1), 10);
  rounded.validate();
}

TEST(CoDesign, DepthwiseLayersLimitColUtilization) {
  // Depthwise convs have 1 input channel per group: a wide pe_cols array
  // must show poor efficiency on MobileNet, pushing the search to narrow
  // arrays — the co-design insight the paper alludes to.
  Graph g = zoo::mobilenet_v3_large();
  const double wide = array_tiling_efficiency(g, 8, 64);
  const double narrow = array_tiling_efficiency(g, 64, 8);
  EXPECT_GT(narrow, wide);
}

}  // namespace
}  // namespace vedliot::hw
