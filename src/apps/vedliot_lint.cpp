/// \file vedliot_lint.cpp
/// \brief `vedliot-lint` — static analysis CLI over graph IR files.
///
/// Loads a model (binary package or text graph, sniffed by magic), runs the
/// named check groups and prints findings as a human table or JSON lines.
/// Exit code 0 = no error-severity findings, 1 = errors found, 2 = usage or
/// load failure. `--selftest` seeds one corrupt graph per defect class and
/// verifies the expected check_id fires, so CI can prove the verifier works
/// without shipping corrupt fixture files.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "analysis/wasm_verifier.hpp"
#include "graph/package.hpp"
#include "graph/serialize.hpp"
#include "graph/zoo.hpp"
#include "opt/quantize.hpp"
#include "runtime/memory_planner.hpp"
#include "security/kvstore.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace vedliot;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --model <path>      load a model package (VMDL) or text graph file\n"
      << "  --zoo <name>        build a zoo model instead of loading a file\n"
      << "                      (resnet50, mobilenet_v3, yolov4, efficientnet_lite0, ...)\n"
      << "  --checks <groups>   comma list: ir,weights,quant,fusion,memory,all (default all)\n"
      << "  --format <fmt>      table (default) or jsonl\n"
      << "  --materialize       materialize weights before linting\n"
      << "  --save <path>       write the loaded/built model as a package and exit\n"
      << "  --selftest          seed corrupt graphs, assert expected check ids\n"
      << "  --wasm              verify a WASM tenant module instead of a graph\n"
      << "  --wmod <name>       builtin module: kv, kvbench, add, spin\n"
      << "                      (--wasm --selftest seeds one defect module per\n"
      << "                       wasm.* check class and asserts each id fires)\n"
      << "exit: 0 clean, 1 error findings, 2 usage/load failure\n";
  return 2;
}

Graph build_zoo(const std::string& name) {
  if (name == "resnet50") return zoo::resnet50();
  if (name == "mobilenet_v3") return zoo::mobilenet_v3_large();
  if (name == "yolov4") return zoo::yolov4();
  if (name == "efficientnet_lite0") return zoo::efficientnet_lite0();
  if (name == "gesture_net") return zoo::gesture_net();
  if (name == "face_net") return zoo::face_net();
  if (name == "object_det_net") return zoo::object_det_net();
  if (name == "speech_net") return zoo::speech_net();
  if (name == "motor_net") return zoo::motor_net();
  if (name == "arc_net") return zoo::arc_net();
  if (name == "pedestrian_net") return zoo::pedestrian_net();
  throw NotFound("unknown zoo model: " + name);
}

Graph load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw NotFound("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  // Sniff: binary packages start with the VMDL magic, text graphs with "graph ".
  constexpr std::uint32_t kMagic = 0x4C444D56;
  if (bytes.size() >= 4) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), 4);
    if (magic == kMagic) return unpack_model(bytes);
  }
  return from_text(std::string(bytes.begin(), bytes.end()));
}

/// Cross-check the arena plan against the liveness intervals: every pair of
/// lifetime-overlapping buffers must be disjoint in address space. This is
/// the one memory check that needs the runtime planner, so it lives in the
/// CLI (which links everything) rather than in vedliot_analysis.
void cross_check_memory(const Graph& g, analysis::Report& rep) {
  const MemoryPlan plan = plan_memory(g, DType::kFP32);
  if (!plan_is_valid(plan)) {
    rep.add(analysis::Severity::kError, "memory.plan.invalid",
            "greedy arena plan has overlapping live buffers");
  } else {
    rep.add(analysis::Severity::kNote, "memory.plan",
            "arena " + std::to_string(plan.arena_bytes) + " bytes vs naive " +
                std::to_string(plan.naive_bytes) + " bytes");
  }
}

struct SelftestCase {
  const char* name;
  const char* expected_check;
  Graph (*make)();
};

Graph corrupt_arity() {
  Graph g = zoo::micro_mlp("selftest-arity", 1, 8, {16}, 4);
  // A Relu with two inputs violates the unary contract.
  Node& relu = g.node(g.find("relu0"));
  relu.inputs.push_back(relu.inputs.front());
  g.touch();
  return g;
}

Graph corrupt_dead_input() {
  Graph g = zoo::micro_mlp("selftest-dead", 1, 8, {16}, 4);
  g.node(g.find("fc0")).dead = true;
  g.touch();
  return g;
}

Graph corrupt_weight_shape() {
  Graph g = zoo::micro_mlp("selftest-wshape", 1, 8, {16}, 4);
  Rng rng(7);
  g.materialize_weights(rng);
  Node& fc = g.node(g.find("fc0"));
  fc.weights[0] = Tensor(Shape{3, 3});  // anything but [16, 8]
  g.touch();
  return g;
}

Graph corrupt_missing_act_scale() {
  Graph g = zoo::micro_mlp("selftest-actscale", 1, 8, {16}, 4);
  Rng rng(7);
  g.materialize_weights(rng);
  std::vector<Tensor> samples;
  Tensor s(Shape{1, 8});
  s.fill(0.5f);
  samples.push_back(std::move(s));
  opt::calibrate_activations(g, samples);
  // An INT8 graph where one node lost its scale: the int8 executor throws.
  g.node(g.find("fc0")).attrs.erase("act_scale");
  g.touch();
  return g;
}

Graph corrupt_fused_act() {
  Graph g = zoo::micro_mlp("selftest-fusedact", 1, 8, {16}, 4);
  g.node(g.find("fc0")).attrs.set_str("fused_act", "Gelu6");
  g.touch();
  return g;
}

int run_selftest() {
  const SelftestCase cases[] = {
      {"bad-arity", "ir.arity", corrupt_arity},
      {"dangling-input", "ir.input.dead", corrupt_dead_input},
      {"wrong-weight-shape", "weight.shape", corrupt_weight_shape},
      {"int8-missing-act-scale", "quant.act_scale.missing", corrupt_missing_act_scale},
      {"invalid-fused-act", "fusion.fused_act.invalid", corrupt_fused_act},
  };
  int failures = 0;
  for (const auto& c : cases) {
    const analysis::Report rep = analysis::verify_graph(c.make());
    const bool hit = rep.has(c.expected_check) && !rep.ok();
    std::cout << (hit ? "PASS" : "FAIL") << "  " << c.name << "  expects " << c.expected_check
              << "  (" << rep.summary() << ")\n";
    if (!hit) ++failures;
  }
  if (failures != 0) {
    std::cerr << failures << " selftest case(s) did not report the expected check id\n";
    return 1;
  }
  std::cout << "selftest: all defect classes detected\n";
  return 0;
}

// ---------------------------------------------------------------------------
// WASM mode: static bytecode verification of tenant modules
// ---------------------------------------------------------------------------

using security::WModule;
using security::WOp;

WModule wasm_add_module() {
  WModule m;
  m.code = {{WOp::kLocalGet, 0}, {WOp::kLocalGet, 1}, {WOp::kAdd, 0}, {WOp::kRet, 0}};
  m.functions = {{"add", 0, 2, 2, true}};
  return m;
}

WModule wasm_spin_module() {
  WModule m;
  m.code = {{WOp::kJmp, 0}};
  m.functions = {{"spin", 0, 0, 0, false}};
  return m;
}

WModule wasm_builtin(const std::string& name) {
  if (name == "kv") return security::build_kv_module(64);
  if (name == "kvbench") return security::build_kv_module(8192);
  if (name == "add") return wasm_add_module();
  if (name == "spin") return wasm_spin_module();
  throw NotFound("unknown builtin wasm module: " + name + " (kv, kvbench, add, spin)");
}

struct WasmSelftestCase {
  const char* name;
  const char* expected_check;
  WModule (*make)();
};

int run_wasm_selftest() {
  // One seeded defect module per wasm.* check class. Warning-class defects
  // (unproven memory, possible division traps, unbounded cost) leave the
  // module runnable, so the assertion is on the check id, not on ok().
  const WasmSelftestCase cases[] = {
      {"bad-opcode", "wasm.struct.opcode",
       [] {
         WModule m;
         m.code = {{static_cast<WOp>(200), 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"wild-jump", "wasm.struct.jump.target",
       [] {
         WModule m;
         m.code = {{WOp::kJmp, 99}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"call-out-of-range", "wasm.struct.call.target",
       [] {
         WModule m;
         m.code = {{WOp::kCall, 9}, {WOp::kHalt, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"unregistered-host", "wasm.struct.host.target",
       [] {
         WModule m;
         m.code = {{WOp::kHostCall, 0}, {WOp::kHalt, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"local-out-of-range", "wasm.struct.local.index",
       [] {
         WModule m;
         m.code = {{WOp::kLocalGet, 5}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 1, 1, true}};
         return m;
       }},
      {"data-overflow", "wasm.struct.data.overflow",
       [] {
         WModule m = wasm_add_module();
         m.memory_bytes = 8;
         m.data.assign(16, 0xAB);
         return m;
       }},
      {"stack-underflow", "wasm.stack.underflow",
       [] {
         WModule m;
         m.code = {{WOp::kAdd, 0}, {WOp::kHalt, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"depth-mismatch", "wasm.stack.depth.mismatch",
       [] {
         WModule m;
         m.code = {{WOp::kLocalGet, 0},
                   {WOp::kJmpIfZ, 3},
                   {WOp::kConst, 1},
                   {WOp::kRet, 0}};
         m.functions = {{"f", 0, 1, 1, true}};
         return m;
       }},
      {"missing-return-value", "wasm.stack.ret.missing",
       [] {
         WModule m;
         m.code = {{WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 0, true}};
         return m;
       }},
      {"fallthrough-off-end", "wasm.flow.fallthrough",
       [] {
         WModule m;
         m.code = {{WOp::kConst, 1}, {WOp::kDrop, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"provable-oob-store", "wasm.mem.oob",
       [] {
         WModule m;
         m.code = {{WOp::kConst, 70000}, {WOp::kConst, 1}, {WOp::kStore, 0}, {WOp::kHalt, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"unproven-load", "wasm.mem.unproven",
       [] {
         WModule m;
         m.code = {{WOp::kLocalGet, 0}, {WOp::kLoad, 0}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 1, 1, true}};
         return m;
       }},
      {"divide-by-zero", "wasm.div.zero",
       [] {
         WModule m;
         m.code = {{WOp::kConst, 1}, {WOp::kConst, 0}, {WOp::kDivS, 0}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 0, true}};
         return m;
       }},
      {"maybe-divide-by-zero", "wasm.div.maybe_zero",
       [] {
         WModule m;
         m.code = {{WOp::kConst, 10}, {WOp::kLocalGet, 0}, {WOp::kDivS, 0}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 1, 1, true}};
         return m;
       }},
      {"int-min-div-minus-one", "wasm.div.overflow",
       [] {
         WModule m;
         m.code = {{WOp::kConst, INT32_MIN}, {WOp::kConst, -1}, {WOp::kDivS, 0}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 0, true}};
         return m;
       }},
      {"infinite-loop", "wasm.cost.unbounded", wasm_spin_module},
      {"recursion", "wasm.cost.unbounded",
       [] {
         WModule m;
         m.code = {{WOp::kCall, 0}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
  };
  int failures = 0;
  for (const auto& c : cases) {
    const auto res = analysis::verify_module(c.make());
    const bool hit = res.report.has(c.expected_check);
    std::cout << (hit ? "PASS" : "FAIL") << "  " << c.name << "  expects " << c.expected_check
              << "  (" << res.report.summary() << ")\n";
    if (!hit) ++failures;
  }
  // A clean straight-line module must come out fully accepted with an exact
  // static fuel bound (4 retired instructions per invoke of add).
  const auto clean = analysis::verify_module(wasm_add_module());
  const bool clean_ok =
      clean.accepted() && clean.cost_bounded && clean.module_fuel_bound == 4;
  std::cout << (clean_ok ? "PASS" : "FAIL")
            << "  clean-module  expects accepted + fuel bound 4  (bound "
            << clean.module_fuel_bound << ")\n";
  if (!clean_ok) ++failures;
  if (failures != 0) {
    std::cerr << failures << " wasm selftest case(s) did not report the expected check id\n";
    return 1;
  }
  std::cout << "wasm selftest: all defect classes detected\n";
  return 0;
}

int run_wasm(const std::string& wmod, const std::string& format) {
  const WModule module = wasm_builtin(wmod);
  const auto res = analysis::verify_module(module);
  if (format == "jsonl") {
    std::cout << res.report.to_json_lines();
  } else {
    if (!res.report.empty()) std::cout << res.report.to_table();
    std::cout << wmod << ": " << res.report.summary() << "\n";
    std::cout << wmod << ": verified=" << (res.ok() ? "yes" : "no")
              << " accepted=" << (res.accepted() ? "yes" : "no")
              << " memory=" << (res.memory_proven ? "proven" : "unproven")
              << " arithmetic=" << (res.arithmetic_proven ? "proven" : "unproven");
    if (res.cost_bounded) {
      std::cout << " fuel_bound=" << res.module_fuel_bound;
    } else {
      std::cout << " fuel_bound=unbounded";
    }
    std::cout << "\n";
  }
  return res.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path, zoo_name, save_path, wmod;
  std::string checks = "all", format = "table";
  bool materialize = false, selftest = false, wasm = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const std::string& flag) -> std::string {
      if (arg.size() > flag.size() && arg[flag.size()] == '=') return arg.substr(flag.size() + 1);
      if (i + 1 >= argc) throw InvalidArgument(flag + " needs a value");
      return argv[++i];
    };
    try {
      if (arg.rfind("--model", 0) == 0) {
        model_path = value("--model");
      } else if (arg.rfind("--zoo", 0) == 0) {
        zoo_name = value("--zoo");
      } else if (arg.rfind("--checks", 0) == 0) {
        checks = value("--checks");
      } else if (arg.rfind("--format", 0) == 0) {
        format = value("--format");
      } else if (arg.rfind("--save", 0) == 0) {
        save_path = value("--save");
      } else if (arg.rfind("--wmod", 0) == 0) {
        wmod = value("--wmod");
      } else if (arg == "--wasm") {
        wasm = true;
      } else if (arg == "--materialize") {
        materialize = true;
      } else if (arg == "--selftest") {
        selftest = true;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const Error& e) {
      std::cerr << e.what() << "\n";
      return usage(argv[0]);
    }
  }

  if (format != "table" && format != "jsonl") {
    std::cerr << "unknown format: " << format << "\n";
    return usage(argv[0]);
  }
  if (wasm) {
    if (selftest) return run_wasm_selftest();
    if (wmod.empty()) {
      std::cerr << "--wasm needs --wmod <name> (or --selftest)\n";
      return usage(argv[0]);
    }
    try {
      return run_wasm(wmod, format);
    } catch (const Error& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }
  if (selftest) return run_selftest();
  if (model_path.empty() == zoo_name.empty()) {
    std::cerr << "exactly one of --model or --zoo is required\n";
    return usage(argv[0]);
  }

  try {
    const analysis::VerifyOptions opts = analysis::parse_check_groups(checks);
    Graph g = model_path.empty() ? build_zoo(zoo_name) : load_model(model_path);
    if (materialize) {
      Rng rng(1);
      g.materialize_weights(rng);
    }
    if (!save_path.empty()) {
      const auto bytes = pack_model(g);
      std::ofstream out(save_path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      if (!out) throw Error("cannot write " + save_path);
      std::cout << "wrote " << bytes.size() << " bytes to " << save_path << "\n";
      return 0;
    }

    analysis::Report rep = analysis::verify_graph(g, opts);
    if (opts.memory && rep.ok()) cross_check_memory(g, rep);

    if (format == "jsonl") {
      std::cout << rep.to_json_lines();
    } else {
      if (!rep.empty()) std::cout << rep.to_table();
      std::cout << g.name() << ": " << rep.summary() << "\n";
    }
    return rep.ok() ? 0 : 1;
  } catch (const GraphError& e) {
    // Loading already runs the verifier: a corrupt file lands here with the
    // findings table embedded in the message.
    std::cerr << e.what() << "\n";
    return 1;
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
