#include "platform/faults.hpp"

#include <algorithm>
#include <cstdio>

namespace vedliot::platform {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kModuleCrash: return "module-crash";
    case FaultKind::kModuleRestart: return "module-restart";
    case FaultKind::kLinkDrop: return "link-drop";
    case FaultKind::kLinkRestore: return "link-restore";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kThermalThrottle: return "thermal-throttle";
    case FaultKind::kThermalRecover: return "thermal-recover";
    case FaultKind::kMemoryFault: return "memory-fault";
    case FaultKind::kOtaCorrupt: return "ota-corrupt";
    case FaultKind::kLinkPartition: return "link-partition";
    case FaultKind::kLinkHeal: return "link-heal";
    case FaultKind::kPacketDup: return "packet-dup";
    case FaultKind::kPacketReorder: return "packet-reorder";
  }
  throw InvalidArgument("unknown fault kind");
}

std::string FaultEvent::subject() const {
  switch (kind) {
    case FaultKind::kModuleCrash:
    case FaultKind::kModuleRestart:
    case FaultKind::kThermalThrottle:
    case FaultKind::kThermalRecover:
    case FaultKind::kMemoryFault:
    case FaultKind::kLinkPartition:
    case FaultKind::kLinkHeal:
      return "slot " + slot;
    case FaultKind::kOtaCorrupt:
      return "ota channel";
    default:
      return "link " + a + "<->" + b;
  }
}

void FaultTimeline::push(FaultEvent e) {
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), e.time_s,
      [](double t, const FaultEvent& ev) { return t < ev.time_s; });
  events_.insert(pos, std::move(e));
}

FaultTimeline FaultTimeline::random_campaign(const std::vector<std::string>& slots,
                                             std::size_t n_faults, double duration_s,
                                             Rng& rng) {
  VEDLIOT_CHECK(!slots.empty(), "random campaign needs at least one slot");
  VEDLIOT_CHECK(duration_s > 0, "random campaign needs a positive duration");
  FaultTimeline t;
  for (std::size_t i = 0; i < n_faults; ++i) {
    FaultEvent inject;
    inject.time_s = rng.uniform(0.0, duration_s * 0.5);
    const std::string slot =
        slots[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1))];
    FaultEvent recover;
    recover.time_s = inject.time_s + rng.uniform(0.1, 0.4) * duration_s;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        inject.kind = FaultKind::kModuleCrash;
        recover.kind = FaultKind::kModuleRestart;
        inject.slot = recover.slot = slot;
        break;
      case 1:
        inject.kind = FaultKind::kThermalThrottle;
        inject.magnitude = rng.uniform(0.3, 0.8);
        recover.kind = FaultKind::kThermalRecover;
        inject.slot = recover.slot = slot;
        break;
      default:
        inject.kind = FaultKind::kLinkDegrade;
        inject.magnitude = rng.uniform(0.1, 0.5);
        recover.kind = FaultKind::kLinkDegrade;
        recover.magnitude = 1.0;
        inject.a = recover.a = "switch0";
        inject.b = recover.b = slot;
        break;
    }
    t.push(inject);
    t.push(recover);
  }
  return t;
}

FaultTimeline FaultTimeline::lossy_fabric_campaign(const std::vector<std::string>& slots,
                                                   std::size_t n_faults, double duration_s,
                                                   double intensity, Rng& rng) {
  VEDLIOT_CHECK(!slots.empty(), "lossy campaign needs at least one slot");
  VEDLIOT_CHECK(duration_s > 0, "lossy campaign needs a positive duration");
  VEDLIOT_CHECK(intensity > 0 && intensity < 1, "lossy intensity must be in (0, 1)");
  FaultTimeline t;
  for (std::size_t i = 0; i < n_faults; ++i) {
    FaultEvent inject;
    inject.time_s = rng.uniform(0.0, duration_s * 0.6);
    const std::string slot =
        slots[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1))];
    FaultEvent heal;
    heal.time_s = inject.time_s + rng.uniform(0.05, 0.25) * duration_s;
    switch (rng.uniform_int(0, 3)) {
      case 0:
        inject.kind = FaultKind::kLinkPartition;
        heal.kind = FaultKind::kLinkHeal;
        inject.slot = heal.slot = slot;
        break;
      case 1:
        inject.kind = FaultKind::kModuleCrash;
        heal.kind = FaultKind::kModuleRestart;
        inject.slot = heal.slot = slot;
        break;
      case 2:
        inject.kind = FaultKind::kPacketDup;
        inject.magnitude = intensity;
        heal.kind = FaultKind::kPacketDup;
        heal.magnitude = 0.0;
        inject.a = heal.a = "switch0";
        inject.b = heal.b = slot;
        break;
      default:
        inject.kind = FaultKind::kPacketReorder;
        inject.magnitude = intensity;
        heal.kind = FaultKind::kPacketReorder;
        heal.magnitude = 0.0;
        inject.a = heal.a = "switch0";
        inject.b = heal.b = slot;
        break;
    }
    t.push(inject);
    t.push(heal);
  }
  return t;
}

PlatformSimulator::PlatformSimulator(Chassis chassis, Fabric fabric)
    : PlatformSimulator(std::move(chassis), std::move(fabric), Config{}) {}

PlatformSimulator::PlatformSimulator(Chassis chassis, Fabric fabric, Config config)
    : chassis_(std::move(chassis)), fabric_(std::move(fabric)), cfg_(config), rng_(config.seed) {
  VEDLIOT_CHECK(cfg_.transient_transfer_prob >= 0.0 && cfg_.transient_transfer_prob < 1.0,
                "transient transfer probability must be in [0, 1)");
}

void PlatformSimulator::schedule(const FaultTimeline& timeline) {
  for (const auto& e : timeline.events()) schedule(e);
}

void PlatformSimulator::schedule(FaultEvent event) {
  if (event.time_s < now_) {
    throw InvalidArgument("cannot schedule a fault at t=" + std::to_string(event.time_s) +
                          " in the simulated past (now=" + std::to_string(now_) + ")");
  }
  const auto pos = std::upper_bound(
      pending_.begin() + static_cast<std::ptrdiff_t>(next_), pending_.end(), event.time_s,
      [](double t, const FaultEvent& ev) { return t < ev.time_s; });
  pending_.insert(pos, std::move(event));
}

std::vector<FaultEvent> PlatformSimulator::advance_to(double t) {
  VEDLIOT_CHECK(t >= now_, "simulated time cannot go backwards");
  std::vector<FaultEvent> taken;
  while (next_ < pending_.size() && pending_[next_].time_s <= t) {
    const FaultEvent& e = pending_[next_];
    if (apply(e)) {
      ++applied_;
      taken.push_back(e);
    } else {
      ++skipped_;
    }
    ++next_;
  }
  now_ = t;
  return taken;
}

bool PlatformSimulator::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kModuleCrash: {
      if (!chassis_.occupied(e.slot)) return false;
      crashed_.emplace(e.slot, chassis_.remove(e.slot));
      throttle_.erase(e.slot);
      return true;
    }
    case FaultKind::kModuleRestart: {
      const auto it = crashed_.find(e.slot);
      if (it == crashed_.end()) return false;
      chassis_.install(e.slot, it->second);
      crashed_.erase(it);
      return true;
    }
    case FaultKind::kLinkDrop: {
      const auto link = fabric_.link_between(e.a, e.b);
      if (!link) return false;
      dropped_.push_back(*link);
      fabric_.remove_link(e.a, e.b);
      return true;
    }
    case FaultKind::kLinkRestore: {
      const auto it = std::find_if(dropped_.begin(), dropped_.end(), [&](const Link& l) {
        return (l.a == e.a && l.b == e.b) || (l.a == e.b && l.b == e.a);
      });
      if (it == dropped_.end()) return false;
      Link restored = *it;
      restored.degradation = 1.0;
      dropped_.erase(it);
      fabric_.add_link(std::move(restored));
      return true;
    }
    case FaultKind::kLinkDegrade: {
      if (!fabric_.link_between(e.a, e.b)) return false;
      fabric_.set_link_degradation(e.a, e.b, e.magnitude);
      return true;
    }
    case FaultKind::kThermalThrottle: {
      VEDLIOT_CHECK(e.magnitude > 0.0 && e.magnitude <= 1.0,
                    "thermal throttle magnitude must be in (0, 1]");
      if (!chassis_.occupied(e.slot)) return false;
      throttle_[e.slot] = e.magnitude;
      return true;
    }
    case FaultKind::kThermalRecover: {
      return throttle_.erase(e.slot) > 0;
    }
    case FaultKind::kMemoryFault: {
      // Marker event: the driver flips the bits in the model it deploys on
      // this slot. A fault landing on a crashed module has no bits to flip.
      VEDLIOT_CHECK(e.magnitude >= 1.0, "memory fault magnitude is a bit count (>= 1)");
      return chassis_.occupied(e.slot);
    }
    case FaultKind::kOtaCorrupt: {
      return true;  // marker event: driver corrupts its next staged payload
    }
    case FaultKind::kLinkPartition: {
      if (partitioned_.count(e.slot)) return false;
      std::vector<Link> severed;
      for (const Link& l : fabric_.links()) {
        if (l.a == e.slot || l.b == e.slot) severed.push_back(l);
      }
      if (severed.empty()) return false;
      for (const Link& l : severed) fabric_.remove_link(l.a, l.b);
      partitioned_.emplace(e.slot, std::move(severed));
      return true;
    }
    case FaultKind::kLinkHeal: {
      const auto it = partitioned_.find(e.slot);
      if (it == partitioned_.end()) return false;
      for (Link l : it->second) {
        // A link the partition severed may have been re-added meanwhile
        // (e.g. a kLinkRestore racing the heal); only reinstate gaps.
        if (!fabric_.link_between(l.a, l.b)) fabric_.add_link(std::move(l));
      }
      partitioned_.erase(it);
      return true;
    }
    case FaultKind::kPacketDup: {
      VEDLIOT_CHECK(e.magnitude >= 0.0 && e.magnitude < 1.0,
                    "packet duplication probability must be in [0, 1)");
      const std::string key = link_key(e.a, e.b);
      if (e.magnitude <= 0.0) return dup_.erase(key) > 0;
      dup_[key] = e.magnitude;
      return true;
    }
    case FaultKind::kPacketReorder: {
      VEDLIOT_CHECK(e.magnitude >= 0.0 && e.magnitude < 1.0,
                    "packet reordering probability must be in [0, 1)");
      const std::string key = link_key(e.a, e.b);
      if (e.magnitude <= 0.0) return reorder_.erase(key) > 0;
      reorder_[key] = e.magnitude;
      return true;
    }
  }
  throw InvalidArgument("unknown fault kind");
}

std::string PlatformSimulator::link_key(const std::string& a, const std::string& b) {
  return a < b ? a + "|" + b : b + "|" + a;
}

double PlatformSimulator::dup_prob(const std::string& a, const std::string& b) const {
  const auto it = dup_.find(link_key(a, b));
  return it == dup_.end() ? 0.0 : it->second;
}

double PlatformSimulator::reorder_prob(const std::string& a, const std::string& b) const {
  const auto it = reorder_.find(link_key(a, b));
  return it == reorder_.end() ? 0.0 : it->second;
}

bool PlatformSimulator::alive(const std::string& slot) const {
  return chassis_.occupied(slot);
}

std::vector<std::string> PlatformSimulator::alive_of(const std::vector<std::string>& slots) const {
  std::vector<std::string> out;
  for (const auto& s : slots) {
    if (alive(s)) out.push_back(s);
  }
  return out;
}

double PlatformSimulator::gops_scale(const std::string& slot) const {
  const auto it = throttle_.find(slot);
  return it == throttle_.end() ? 1.0 : it->second;
}

std::map<std::string, double> PlatformSimulator::gops_scales() const { return throttle_; }

bool PlatformSimulator::try_transfer(const std::string& from, const std::string& to) {
  (void)fabric_.route(from, to);  // throws NotFound on partition
  return !rng_.chance(cfg_.transient_transfer_prob);
}

PlatformSimulator::ChannelDraw PlatformSimulator::draw_channel(const std::string& from,
                                                               const std::string& to) {
  const std::vector<std::string> path = fabric_.route(from, to);  // NotFound on partition
  double p_dup = 0.0, p_reorder = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    p_dup = std::max(p_dup, dup_prob(path[i], path[i + 1]));
    p_reorder = std::max(p_reorder, reorder_prob(path[i], path[i + 1]));
  }
  ChannelDraw draw;
  draw.intact = !rng_.chance(cfg_.transient_transfer_prob);
  if (p_dup > 0.0) draw.duplicated = rng_.chance(p_dup);
  if (p_reorder > 0.0) draw.reordered = rng_.chance(p_reorder);
  return draw;
}

std::optional<double> PlatformSimulator::next_fault_time() const {
  if (next_ >= pending_.size()) return std::nullopt;
  return pending_[next_].time_s;
}

std::string PlatformSimulator::describe() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "PlatformSimulator{seed=0x%llx, now=%.4fs, faults applied=%zu skipped=%zu "
                "pending=%zu, transient_prob=%g, partitioned=%zu dup_links=%zu "
                "reorder_links=%zu}",
                static_cast<unsigned long long>(cfg_.seed), now_, applied_, skipped_,
                pending_.size() - next_, cfg_.transient_transfer_prob, partitioned_.size(),
                dup_.size(), reorder_.size());
  return std::string(buf);
}

}  // namespace vedliot::platform
