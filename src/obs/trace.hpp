#pragma once
/// \file trace.hpp
/// \brief Nested timed spans with key/value attributes — the tracing half of
/// vedliot::obs.
///
/// A Tracer records spans in START order into a flat vector, with parent
/// indices and depths, so exporters can reconstruct the tree and tests can
/// compare trace *structure* independently of timestamps. Span names follow
/// the subsystem taxonomy documented in DESIGN.md ("Observability"); metric
/// and category names use the `vedliot.<subsystem>.<name>` convention.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace vedliot::obs {

/// One recorded span. start_ns/end_ns come from the tracer's Clock; an
/// instant event has end_ns == start_ns.
struct Span {
  static constexpr std::size_t kNoParent = std::numeric_limits<std::size_t>::max();

  std::string name;
  std::string category;            ///< e.g. "vedliot.runtime" or an op class
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::size_t parent = kNoParent;  ///< index into the tracer's span list
  std::size_t depth = 0;           ///< root spans have depth 0

  /// String attributes, in insertion order.
  std::vector<std::pair<std::string, std::string>> attrs;
  /// Numeric attributes, in insertion order.
  std::vector<std::pair<std::string, double>> num_attrs;

  double duration_us() const {
    return static_cast<double>(end_ns - start_ns) / 1e3;
  }
};

class Tracer;

/// RAII handle for an open span: closes it (stamping end time) on
/// destruction. Move-only; attributes may be added while the span is open.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::size_t index) : tracer_(tracer), index_(index) {}
  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { close(); }

  void attr(std::string key, std::string value);
  void attr(std::string key, double value);

  /// Close early (idempotent); the destructor is then a no-op.
  void close();

  /// Index of the span in the owning tracer's list (valid after close too).
  std::size_t index() const { return index_; }

 private:
  Tracer* tracer_ = nullptr;
  std::size_t index_ = 0;
};

/// Collects spans. Not thread-safe: one tracer per run/thread, merge via
/// the exporters if needed.
class Tracer {
 public:
  /// \param clock injectable time source; nullptr uses an internal
  /// SteadyClock. The clock must outlive the tracer.
  explicit Tracer(Clock* clock = nullptr);

  /// Open a nested span; it becomes the parent of spans opened before the
  /// returned handle closes.
  ScopedSpan span(std::string name, std::string category = "");

  /// Record a zero-duration event at the current time under the currently
  /// open span.
  Span& instant(std::string name, std::string category = "");

  /// All spans recorded so far, in START order. Open spans have end_ns == 0
  /// (and end_ns < start_ns only if the clock started at 0 — use
  /// open_spans() to detect them).
  std::span<const Span> spans() const { return spans_; }

  /// Number of spans opened but not yet closed.
  std::size_t open_spans() const { return stack_.size(); }

  /// Drop all recorded spans (open handles become dangling; close them
  /// first).
  void clear();

 private:
  friend class ScopedSpan;
  void close_span(std::size_t index);

  SteadyClock default_clock_;
  Clock* clock_;
  std::vector<Span> spans_;
  std::vector<std::size_t> stack_;  ///< indices of open spans, root first
};

}  // namespace vedliot::obs
