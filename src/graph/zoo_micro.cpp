#include "graph/zoo.hpp"
#include "graph/zoo_common.hpp"

namespace vedliot::zoo {

namespace {
using detail::Builder;

AttrMap dense_attrs(std::int64_t units) {
  AttrMap a;
  a.set_int("units", units);
  a.set_int("bias", 1);
  return a;
}
}  // namespace

Graph micro_mlp(const std::string& name, std::int64_t batch, std::int64_t in_features,
                std::vector<std::int64_t> hidden, std::int64_t classes) {
  Graph g(name);
  NodeId x = g.add_input("features", Shape{batch, in_features});
  int i = 0;
  for (std::int64_t units : hidden) {
    x = g.add(OpKind::kDense, "fc" + std::to_string(i), {x}, dense_attrs(units));
    x = g.add(OpKind::kRelu, "relu" + std::to_string(i), {x});
    ++i;
  }
  x = g.add(OpKind::kDense, "logits", {x}, dense_attrs(classes));
  g.add(OpKind::kSoftmax, "prob", {x});
  g.validate();
  return g;
}

Graph micro_cnn(const std::string& name, std::int64_t batch, std::int64_t in_channels,
                std::int64_t image, std::int64_t classes, std::int64_t width) {
  Graph g(name);
  Builder b(g);
  NodeId x = g.add_input("image", Shape{batch, in_channels, image, image});
  x = b.conv_bn_act(x, width, 3, 1, 1, OpKind::kRelu);
  x = b.maxpool(x, 2, 2, 0);
  x = b.conv_bn_act(x, 2 * width, 3, 1, 1, OpKind::kRelu);
  x = b.maxpool(x, 2, 2, 0);
  x = b.conv_bn_act(x, 4 * width, 3, 1, 1, OpKind::kRelu);
  x = g.add(OpKind::kGlobalAvgPool, "gap", {x});
  x = g.add(OpKind::kFlatten, "flatten", {x});
  x = g.add(OpKind::kDense, "logits", {x}, dense_attrs(classes));
  g.add(OpKind::kSoftmax, "prob", {x});
  g.validate();
  return g;
}

Graph gesture_net(std::int64_t batch) {
  // Depthwise-separable CNN over 96x96 grayscale frames; 5 gesture classes.
  Graph g("gesture_net");
  Builder b(g);
  NodeId x = g.add_input("frame", Shape{batch, 1, 96, 96});
  x = b.conv_bn_act(x, 8, 3, 2, 1, OpKind::kRelu6);
  for (std::int64_t c : {16, 32, 64}) {
    x = b.dw(x, 3, 2, OpKind::kRelu6);
    x = b.pw(x, c, OpKind::kRelu6);
  }
  x = g.add(OpKind::kGlobalAvgPool, "gap", {x});
  x = g.add(OpKind::kFlatten, "flatten", {x});
  x = g.add(OpKind::kDense, "logits", {x}, dense_attrs(5));
  g.add(OpKind::kSoftmax, "prob", {x});
  g.validate();
  return g;
}

Graph face_net(std::int64_t batch) {
  // Small embedding network: residual CNN -> 128-d L2-style embedding head.
  Graph g("face_net");
  Builder b(g);
  NodeId x = g.add_input("face", Shape{batch, 3, 112, 112});
  x = b.conv_bn_act(x, 16, 3, 2, 1, OpKind::kRelu);
  for (std::int64_t c : {32, 64, 128}) {
    NodeId y = b.conv_bn_act(x, c, 3, 2, 1, OpKind::kRelu);
    NodeId z = b.conv_bn_act(y, c, 3, 1, 1, OpKind::kIdentity);
    x = b.act(b.add(z, y), OpKind::kRelu);
  }
  x = g.add(OpKind::kGlobalAvgPool, "gap", {x});
  x = g.add(OpKind::kFlatten, "flatten", {x});
  x = g.add(OpKind::kDense, "embedding", {x}, dense_attrs(128));
  g.add(OpKind::kTanh, "embed_norm", {x});
  g.validate();
  return g;
}

Graph object_det_net(std::int64_t batch) {
  // Tiny single-scale detector (YOLO-style head on a small backbone).
  Graph g("object_det_net");
  Builder b(g);
  NodeId x = g.add_input("frame", Shape{batch, 3, 160, 160});
  std::int64_t c = 16;
  for (int stage = 0; stage < 4; ++stage) {
    x = b.conv_bn_act(x, c, 3, 1, 1, OpKind::kLeakyRelu);
    x = b.maxpool(x, 2, 2, 0);
    c *= 2;
  }
  x = b.conv_bn_act(x, 256, 3, 1, 1, OpKind::kLeakyRelu);
  AttrMap head;
  head.set_int("out_channels", 3 * (10 + 5));  // 10 household classes
  head.set_int("kernel", 1);
  head.set_int("stride", 1);
  head.set_int("pad", 0);
  head.set_int("groups", 1);
  head.set_int("bias", 1);
  g.add(OpKind::kConv2d, "det_head", {x}, std::move(head));
  g.validate();
  return g;
}

Graph speech_net(std::int64_t batch) {
  // Keyword spotting on 49x10 MFCC patches (cnn-trad-pool style), 12 words.
  Graph g("speech_net");
  Builder b(g);
  NodeId x = g.add_input("mfcc", Shape{batch, 1, 49, 10});
  x = b.conv_bn_act(x, 28, 3, 1, 1, OpKind::kRelu);
  x = b.maxpool(x, 2, 2, 0);
  x = b.conv_bn_act(x, 30, 3, 1, 1, OpKind::kRelu);
  x = g.add(OpKind::kGlobalAvgPool, "gap", {x});
  x = g.add(OpKind::kFlatten, "flatten", {x});
  x = g.add(OpKind::kDense, "fc1", {x}, dense_attrs(64));
  x = g.add(OpKind::kRelu, "relu_fc1", {x});
  x = g.add(OpKind::kDense, "logits", {x}, dense_attrs(12));
  g.add(OpKind::kSoftmax, "prob", {x});
  g.validate();
  return g;
}

Graph motor_net(std::int64_t batch) {
  // Vibration-spectrum classifier: 256-bin FFT magnitudes + 8 thermal/
  // electrical features -> {healthy, imbalance, bearing, overheat}.
  return micro_mlp("motor_net", batch, 264, {64, 32}, 4);
}

Graph arc_net(std::int64_t batch) {
  // 32x32 current-spectrogram patches -> {no_arc, arc}.
  return micro_cnn("arc_net", batch, 1, 32, 2, 8);
}

Graph pedestrian_net(std::int64_t batch, std::int64_t image) {
  // PAEB pedestrian detector: downscaled single-class YOLO-style network.
  Graph g("pedestrian_net");
  Builder b(g);
  NodeId x = g.add_input("frame", Shape{batch, 3, image, image});
  x = b.conv_bn_act(x, 16, 3, 2, 1, OpKind::kLeakyRelu);
  std::int64_t c = 32;
  for (int stage = 0; stage < 4; ++stage) {
    x = b.conv_bn_act(x, c, 3, 2, 1, OpKind::kLeakyRelu);
    NodeId y = b.conv_bn_act(x, c / 2, 1, 1, 0, OpKind::kLeakyRelu);
    y = b.conv_bn_act(y, c, 3, 1, 1, OpKind::kIdentity);
    x = b.act(b.add(y, x), OpKind::kLeakyRelu);
    c *= 2;
  }
  x = b.conv_bn_act(x, 256, 3, 1, 1, OpKind::kLeakyRelu);
  AttrMap head;
  head.set_int("out_channels", 3 * (1 + 5));  // single "pedestrian" class
  head.set_int("kernel", 1);
  head.set_int("stride", 1);
  head.set_int("pad", 0);
  head.set_int("groups", 1);
  head.set_int("bias", 1);
  g.add(OpKind::kConv2d, "det_head", {x}, std::move(head));
  g.validate();
  return g;
}

}  // namespace vedliot::zoo
