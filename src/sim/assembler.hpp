#pragma once
/// \file assembler.hpp
/// \brief Programmatic RV32IM assembler with label support, used to author
/// the simulated firmware in tests, benches and examples.

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace vedliot::sim {

/// Register aliases for readability.
enum Reg : std::uint32_t {
  x0 = 0, ra = 1, sp = 2, gp = 3, tp = 4,
  t0 = 5, t1 = 6, t2 = 7,
  s0 = 8, s1 = 9,
  a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15, a6 = 16, a7 = 17,
  s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23, s8 = 24, s9 = 25,
  s10 = 26, s11 = 27,
  t3 = 28, t4 = 29, t5 = 30, t6 = 31,
};

class Assembler {
 public:
  /// \param base address the program will be loaded at (for label math).
  explicit Assembler(std::uint32_t base = 0) : base_(base) {}

  // -- labels ---------------------------------------------------------------
  int new_label();
  void bind(int label);

  // -- RV32I ----------------------------------------------------------------
  void lui(Reg rd, std::uint32_t imm20);
  void auipc(Reg rd, std::uint32_t imm20);
  void jal(Reg rd, int label);
  void jalr(Reg rd, Reg rs1, std::int32_t imm);
  void beq(Reg rs1, Reg rs2, int label);
  void bne(Reg rs1, Reg rs2, int label);
  void blt(Reg rs1, Reg rs2, int label);
  void bge(Reg rs1, Reg rs2, int label);
  void bltu(Reg rs1, Reg rs2, int label);
  void bgeu(Reg rs1, Reg rs2, int label);
  void lb(Reg rd, Reg rs1, std::int32_t imm);
  void lh(Reg rd, Reg rs1, std::int32_t imm);
  void lw(Reg rd, Reg rs1, std::int32_t imm);
  void lbu(Reg rd, Reg rs1, std::int32_t imm);
  void lhu(Reg rd, Reg rs1, std::int32_t imm);
  void sb(Reg rs2, Reg rs1, std::int32_t imm);
  void sh(Reg rs2, Reg rs1, std::int32_t imm);
  void sw(Reg rs2, Reg rs1, std::int32_t imm);
  void addi(Reg rd, Reg rs1, std::int32_t imm);
  void slti(Reg rd, Reg rs1, std::int32_t imm);
  void xori(Reg rd, Reg rs1, std::int32_t imm);
  void ori(Reg rd, Reg rs1, std::int32_t imm);
  void andi(Reg rd, Reg rs1, std::int32_t imm);
  void slli(Reg rd, Reg rs1, std::uint32_t shamt);
  void srli(Reg rd, Reg rs1, std::uint32_t shamt);
  void srai(Reg rd, Reg rs1, std::uint32_t shamt);
  void add(Reg rd, Reg rs1, Reg rs2);
  void sub(Reg rd, Reg rs1, Reg rs2);
  void sll(Reg rd, Reg rs1, Reg rs2);
  void slt(Reg rd, Reg rs1, Reg rs2);
  void sltu(Reg rd, Reg rs1, Reg rs2);
  void xor_(Reg rd, Reg rs1, Reg rs2);
  void srl(Reg rd, Reg rs1, Reg rs2);
  void sra(Reg rd, Reg rs1, Reg rs2);
  void or_(Reg rd, Reg rs1, Reg rs2);
  void and_(Reg rd, Reg rs1, Reg rs2);
  void ecall();
  void ebreak();
  void mret();
  void csrrw(Reg rd, std::uint32_t csr, Reg rs1);
  void csrrs(Reg rd, std::uint32_t csr, Reg rs1);

  // -- RV32M ----------------------------------------------------------------
  void mul(Reg rd, Reg rs1, Reg rs2);
  void div(Reg rd, Reg rs1, Reg rs2);
  void rem(Reg rd, Reg rs1, Reg rs2);

  // -- custom-0 (CFU) ---------------------------------------------------------
  void cfu(std::uint32_t funct3, std::uint32_t funct7, Reg rd, Reg rs1, Reg rs2);

  // -- pseudo-instructions ----------------------------------------------------
  void li(Reg rd, std::int32_t value);     ///< lui+addi as needed
  void mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
  void nop() { addi(static_cast<Reg>(0), static_cast<Reg>(0), 0); }
  void j(int label) { jal(static_cast<Reg>(0), label); }
  void ret() { jalr(static_cast<Reg>(0), static_cast<Reg>(1), 0); }

  /// Resolve labels and return the program image. Throws on unbound labels
  /// or out-of-range branches.
  std::vector<std::uint32_t> finish();

  std::uint32_t pc() const { return base_ + 4 * static_cast<std::uint32_t>(code_.size()); }

 private:
  void emit(std::uint32_t word) { code_.push_back(word); }
  void branch(std::uint32_t funct3, Reg rs1, Reg rs2, int label);

  std::uint32_t base_;
  std::vector<std::uint32_t> code_;
  std::vector<std::int64_t> labels_;  // byte offset from base, -1 unbound
  struct Fixup {
    std::size_t index;
    int label;
    enum class Kind { kBranch, kJal } kind;
  };
  std::vector<Fixup> fixups_;
};

}  // namespace vedliot::sim
