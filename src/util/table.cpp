#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace vedliot {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  VEDLIOT_CHECK(!header_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  VEDLIOT_CHECK(row.size() == header_.size(), "Table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_eng(double v) {
  const char* suffix = "";
  double scaled = v;
  const double a = std::abs(v);
  if (a >= 1e12) {
    scaled = v / 1e12;
    suffix = "T";
  } else if (a >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (a >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (a >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  char buf[64];
  const double sa = std::abs(scaled);
  int prec = sa >= 100 ? 0 : (sa >= 10 ? 1 : 2);
  std::snprintf(buf, sizeof(buf), "%.*f%s", prec, scaled, suffix);
  return buf;
}

std::string fmt_ratio(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace vedliot
