
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assembler.cpp" "src/sim/CMakeFiles/vedliot_sim.dir/assembler.cpp.o" "gcc" "src/sim/CMakeFiles/vedliot_sim.dir/assembler.cpp.o.d"
  "/root/repo/src/sim/bus.cpp" "src/sim/CMakeFiles/vedliot_sim.dir/bus.cpp.o" "gcc" "src/sim/CMakeFiles/vedliot_sim.dir/bus.cpp.o.d"
  "/root/repo/src/sim/cfu.cpp" "src/sim/CMakeFiles/vedliot_sim.dir/cfu.cpp.o" "gcc" "src/sim/CMakeFiles/vedliot_sim.dir/cfu.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/sim/CMakeFiles/vedliot_sim.dir/cpu.cpp.o" "gcc" "src/sim/CMakeFiles/vedliot_sim.dir/cpu.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/vedliot_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/vedliot_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/testbench.cpp" "src/sim/CMakeFiles/vedliot_sim.dir/testbench.cpp.o" "gcc" "src/sim/CMakeFiles/vedliot_sim.dir/testbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/security/CMakeFiles/vedliot_security.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vedliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
