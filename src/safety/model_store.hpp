#pragma once
/// \file model_store.hpp
/// \brief Versioned golden-model retention, surgical weight repair, and
/// OTA updates with automatic rollback.
///
/// The ModelStore is the recovery half of the silent-data-corruption
/// defense (ROADMAP item 4: "OTA updates of sealed model packages with
/// rollback on a failed golden check"):
///
///  * it retains the verified golden package (graph/package.hpp, format v2
///    with its digest table) per deployed model, plus the previous version
///    for rollback;
///  * when the WeightScrubber localizes corruption to (node, tensor)
///    pairs, repair() re-materializes only those tensors into the live
///    graph — no full reload, no service interruption beyond the
///    quarantine window;
///  * push() stages an over-the-air update and verifies it end to end
///    before the atomic swap: package digests + the vedliot_analysis IR
///    verifier (both inside unpack_model) and a golden-input canary run
///    whose outputs must match what the publisher declared at pack time.
///    A corrupted payload or a canary divergence is rejected with the old
///    version still serving; rollback() reverts a committed update whose
///    freshly-written image turns out corrupt (post-swap scrub failure).

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/package.hpp"
#include "safety/scrub.hpp"
#include "util/thread_safety.hpp"

namespace vedliot::safety {

/// Terminal outcome of one OTA interaction.
enum class OtaOutcome {
  kCommitted,   ///< verified and swapped in atomically
  kRejected,    ///< failed pre-swap verification; old version keeps serving
  kRolledBack,  ///< post-swap failure; previous version restored
};

std::string_view ota_outcome_name(OtaOutcome o);

/// An over-the-air model update: the v2 package plus the publisher-declared
/// canary outputs a healthy device must reproduce bit-for-bit (within
/// tolerance) before committing the swap.
struct OtaPackage {
  std::vector<std::uint8_t> package;     ///< pack_model bytes (v2)
  std::uint64_t canary_seed = 0xCAA1Bull;
  std::size_t canary_inputs = 2;         ///< seeded golden inputs to re-run
  std::vector<float> canary_output;      ///< declared outputs, concatenated
};

/// Build an update bundle from a weights-materialized graph: packs it and
/// runs the canary inputs through the float reference executor to record
/// the outputs the receiving device must reproduce.
OtaPackage make_ota_package(const Graph& g, std::uint64_t canary_seed = 0xCAA1Bull,
                            std::size_t canary_inputs = 2);

class ModelStore {
 public:
  struct Config {
    double canary_tolerance = 1e-4;  ///< max |declared - observed| per element
  };

  ModelStore();
  explicit ModelStore(Config config);

  /// One retained model version: the verified package and its digest table
  /// (kept alive in memory for scrubbers and repair verification).
  struct Version {
    std::uint32_t version = 0;
    std::vector<std::uint8_t> package;
    std::vector<TensorDigest> digests;
  };

  struct OtaReport {
    OtaOutcome outcome = OtaOutcome::kRejected;
    std::uint32_t from_version = 0;
    std::uint32_t to_version = 0;
    std::string detail;
  };

  /// Register the verified golden package for \p name (version 1). The
  /// graph must carry materialized weights; it is packed, re-verified and
  /// retained. Throws InvalidArgument when the name is already installed.
  std::uint32_t install(const std::string& name, const Graph& g);

  bool has(const std::string& name) const;
  const Version& current(const std::string& name) const;
  std::uint32_t version(const std::string& name) const;
  bool can_rollback(const std::string& name) const;

  /// Unpack a fresh deployable graph from the current golden package
  /// (digest-verified on the way out).
  Graph materialize(const std::string& name) const;

  /// Re-materialize exactly the corrupted tensors named by \p hits into the
  /// live graph and verify their digests afterwards. Returns the number of
  /// tensors rewritten. Throws on a hit that does not exist in the golden
  /// model or whose repaired bits still mismatch (storage is actively bad).
  std::size_t repair(const std::string& name, Graph& live,
                     std::span<const WeightScrubber::Hit> hits) const;

  /// Re-materialize every weight tensor from the golden package (recovery
  /// path when corruption is detected but not localized). Returns the
  /// number of tensors rewritten.
  std::size_t restore(const std::string& name, Graph& live) const;

  /// Stage + verify + atomically swap an OTA update. On kCommitted the
  /// previous version is retained for rollback(); on kRejected nothing
  /// changes. Never throws on a bad payload — the report carries the
  /// verifier/digest/canary failure in detail.
  OtaReport push(const std::string& name, const OtaPackage& update);

  /// Revert to the retained previous version (post-swap failure policy).
  /// Returns kRolledBack with the restored version, or kRejected when
  /// there is nothing to roll back to.
  OtaReport rollback(const std::string& name);

 private:
  struct Slot {
    Version current;
    std::optional<Version> previous;
    std::uint32_t next_version = 2;
  };

  const Slot& slot(const std::string& name) const VEDLIOT_REQUIRES(mutex_);

  Config cfg_;
  // One store may back several serving surfaces at once (a Server's scrub
  // ticks plus an out-of-band OTA push); the mutex serializes the version
  // map. The reference current() returns is only stable until the next
  // push()/rollback() for that name — callers snapshot what they need
  // rather than holding it across updates.
  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_ VEDLIOT_GUARDED_BY(mutex_);
};

}  // namespace vedliot::safety
