#pragma once
/// \file attr.hpp
/// \brief ONNX-style typed attribute map attached to graph nodes.

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace vedliot {

using AttrValue = std::variant<std::int64_t, double, std::string, std::vector<std::int64_t>>;

/// Ordered map of named attributes with checked typed access.
class AttrMap {
 public:
  void set_int(const std::string& key, std::int64_t v) { values_[key] = v; }
  void set_float(const std::string& key, double v) { values_[key] = v; }
  void set_str(const std::string& key, std::string v) { values_[key] = std::move(v); }
  void set_ints(const std::string& key, std::vector<std::int64_t> v) { values_[key] = std::move(v); }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// Typed getters throw NotFound / InvalidArgument on missing key or wrong type.
  std::int64_t get_int(const std::string& key) const;
  double get_float(const std::string& key) const;
  const std::string& get_str(const std::string& key) const;
  const std::vector<std::int64_t>& get_ints(const std::string& key) const;

  /// Getters with defaults never throw on a missing key.
  std::int64_t get_int_or(const std::string& key, std::int64_t dflt) const;
  double get_float_or(const std::string& key, double dflt) const;
  std::string get_str_or(const std::string& key, const std::string& dflt) const;

  void erase(const std::string& key) { values_.erase(key); }

  const std::map<std::string, AttrValue>& raw() const { return values_; }

  bool operator==(const AttrMap& other) const { return values_ == other.values_; }

 private:
  std::map<std::string, AttrValue> values_;
};

}  // namespace vedliot
