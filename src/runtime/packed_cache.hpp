#pragma once
/// \file packed_cache.hpp
/// \brief Version-keyed cache of microkernel-packed weight panels.
///
/// Packing the weight matrix into mr-row panels (microkernel.hpp) costs one
/// pass over the weights; the panels are then reused by every GEMM call that
/// touches the layer — across batches, groups, and Session::run calls. The
/// cache key is (node, group); an entry is valid only while its recorded
/// Graph::version() and microkernel tile still match, so *any* weight
/// mutation that calls Graph::touch() — an OTA swap rebuilding the graph, a
/// WeightScrubber surgical repair, a ModelStore full restore — invalidates
/// the stale panels on the next run, and an env-forced dispatch-level change
/// (different tile) repacks rather than feeding a kernel the wrong layout.
///
/// Thread safety: lookups and packs run under one mutex, so concurrent
/// inter-op waves can pack different layers safely. After insertion an entry
/// is immutable for its (version, tile) lifetime, which keeps the returned
/// references valid across the run.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/microkernel.hpp"
#include "util/thread_safety.hpp"

namespace vedliot::runtime_kernels {

class PackedWeightCache {
 public:
  /// Packed f32 weight panels for (node, group). Calls \p pack to (re)fill
  /// the buffer when the entry is absent, from another graph version, or
  /// packed for a different tile. The reference stays valid until clear().
  const std::vector<float>& get_f32(NodeId node, std::int64_t group,
                                    std::uint64_t graph_version, const MicrokernelTile& tile,
                                    const std::function<void(std::vector<float>&)>& pack);

  /// int8 variant: the packed buffer holds the int16-pair words pack_a_s8
  /// produces.
  const std::vector<std::int32_t>& get_s8(NodeId node, std::int64_t group,
                                          std::uint64_t graph_version,
                                          const MicrokernelTile& tile,
                                          const std::function<void(std::vector<std::int32_t>&)>& pack);

  /// Total pack invocations (misses + invalidations) — the cache-behavior
  /// test hook: steady-state runs must not grow this.
  std::size_t packs() const;

  void clear();

 private:
  template <typename T>
  struct Entry {
    std::vector<T> data;
    std::uint64_t version = 0;
    std::int64_t mr = 0, nr = 0;
  };
  using Key = std::pair<NodeId, std::int64_t>;

  template <typename T>
  const std::vector<T>& get(std::map<Key, Entry<T>>& table, NodeId node, std::int64_t group,
                            std::uint64_t graph_version, const MicrokernelTile& tile,
                            const std::function<void(std::vector<T>&)>& pack)
      VEDLIOT_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::map<Key, Entry<float>> f32_ VEDLIOT_GUARDED_BY(mutex_);
  std::map<Key, Entry<std::int32_t>> s8_ VEDLIOT_GUARDED_BY(mutex_);
  std::size_t packs_ VEDLIOT_GUARDED_BY(mutex_) = 0;
};

}  // namespace vedliot::runtime_kernels
