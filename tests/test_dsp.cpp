// Tests for the DSP utilities (FFT, spectrogram) and the FFT-based
// vibration front-end of the motor use case.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/motor.hpp"
#include "kenning/metrics.hpp"
#include "util/error.hpp"
#include "util/fft.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> x(8, {0, 0});
  x[0] = {1, 0};
  dsp::fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Fft, SinusoidLandsInItsBin) {
  constexpr std::size_t n = 256;
  std::vector<float> signal(n);
  const double f_bin = 17.0;
  for (std::size_t i = 0; i < n; ++i) {
    signal[i] = static_cast<float>(std::sin(2.0 * kPi * f_bin * static_cast<double>(i) / n));
  }
  const auto mags = dsp::magnitude_spectrum(signal, n);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < mags.size(); ++k) {
    if (mags[k] > mags[peak]) peak = k;
  }
  EXPECT_EQ(peak, 17u);
  EXPECT_NEAR(mags[17], 1.0, 1e-7);  // unit amplitude with the chosen norm
  // other bins near zero (exact bin frequency -> no leakage)
  EXPECT_LT(mags[5], 1e-7);
}

TEST(Fft, InverseRoundTrip) {
  Rng rng(4);
  std::vector<std::complex<double>> x(64);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  auto orig = x;
  dsp::fft(x);
  dsp::fft(x, /*inverse=*/true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-9);
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(5);
  std::vector<std::complex<double>> x(128);
  double time_energy = 0;
  for (auto& v : x) {
    v = {rng.normal(), 0.0};
    time_energy += std::norm(v);
  }
  dsp::fft(x);
  double freq_energy = 0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-6);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> x(12);
  EXPECT_THROW(dsp::fft(x), Error);
  std::vector<float> s(12);
  EXPECT_THROW((void)dsp::magnitude_spectrum(s, 12), Error);
}

TEST(Fft, BinFrequencyMapping) {
  EXPECT_DOUBLE_EQ(dsp::bin_frequency_hz(0, 8000, 256), 0.0);
  EXPECT_DOUBLE_EQ(dsp::bin_frequency_hz(128, 8000, 256), 4000.0);  // Nyquist
  EXPECT_DOUBLE_EQ(dsp::bin_frequency_hz(32, 8192, 512), 512.0);
}

TEST(Spectrogram, FrameCountAndTonePersistence) {
  constexpr std::size_t n = 2048;
  std::vector<float> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    signal[i] = static_cast<float>(std::sin(2.0 * kPi * 32.0 * static_cast<double>(i) / 256.0));
  }
  const auto frames = dsp::spectrogram(signal, 256, 128);
  EXPECT_EQ(frames.size(), (n - 256) / 128 + 1);
  for (const auto& frame : frames) {
    std::size_t peak = 0;
    for (std::size_t k = 1; k < frame.size(); ++k) {
      if (frame[k] > frame[peak]) peak = k;
    }
    EXPECT_EQ(peak, 32u);
  }
}

TEST(Spectrogram, HannWindowEndpoints) {
  std::vector<double> frame(8, 1.0);
  dsp::hann_window(frame);
  EXPECT_NEAR(frame.front(), 0.0, 1e-12);
  EXPECT_NEAR(frame.back(), 0.0, 1e-12);
  EXPECT_GT(frame[4], 0.9);
}

// ---------------------------------------------------------------------------
// FFT-based motor front-end
// ---------------------------------------------------------------------------

TEST(MotorWaveform, ObservationHasExpectedLength) {
  apps::VibrationGenerator gen({}, 9);
  const auto obs = gen.sample_observation(apps::MotorCondition::kHealthy);
  EXPECT_EQ(obs.waveform.size(), 2 * apps::kSpectrumBins);
  EXPECT_GT(obs.temp_stator_c, 40.0);
}

TEST(MotorWaveform, ImbalanceToneVisibleInFftSpectrum) {
  apps::VibrationGenerator gen({}, 10);
  const auto obs = gen.sample_observation(apps::MotorCondition::kImbalance);
  const auto f = apps::features_from_observation(obs, gen.sample_rate_hz());
  // 1x RPM = 24.7 Hz at 1480 rpm; bin width = 8192/512 = 16 Hz -> bin 1..2.
  double low = 0;
  for (std::size_t k = 0; k <= 4; ++k) low = std::max(low, static_cast<double>(f[k]));
  EXPECT_GT(low, 0.3);  // strong rotational component
}

TEST(MotorWaveform, BearingFaultRaisesHighBand) {
  apps::VibrationGenerator gen({}, 11);
  const auto healthy = apps::features_from_observation(
      gen.sample_observation(apps::MotorCondition::kHealthy), gen.sample_rate_hz());
  const auto bearing = apps::features_from_observation(
      gen.sample_observation(apps::MotorCondition::kBearingFault), gen.sample_rate_hz());
  double healthy_high = 0, bearing_high = 0;
  for (std::size_t k = apps::kSpectrumBins / 2; k < apps::kSpectrumBins; ++k) {
    healthy_high += healthy[k];
    bearing_high += bearing[k];
  }
  EXPECT_GT(bearing_high, healthy_high * 2.0);
}

TEST(MotorWaveform, FftPipelineClassifiesAllConditions) {
  // The full deployed pipeline: raw waveform -> FFT front-end -> classifier.
  apps::VibrationGenerator train_gen({}, 21);
  std::vector<std::pair<apps::MotorFeatures, apps::MotorCondition>> train;
  for (std::size_t c = 0; c < apps::kMotorConditionCount; ++c) {
    for (int i = 0; i < 40; ++i) {
      const auto cond = static_cast<apps::MotorCondition>(c);
      train.emplace_back(
          apps::features_from_observation(train_gen.sample_observation(cond),
                                          train_gen.sample_rate_hz()),
          cond);
    }
  }
  apps::MotorClassifier clf;
  clf.fit(train);

  kenning::ConfusionMatrix cm(apps::kMotorConditionCount);
  apps::VibrationGenerator test_gen({}, 22);
  for (std::size_t c = 0; c < apps::kMotorConditionCount; ++c) {
    for (int i = 0; i < 40; ++i) {
      const auto cond = static_cast<apps::MotorCondition>(c);
      const auto pred = clf.classify(apps::features_from_observation(
          test_gen.sample_observation(cond), test_gen.sample_rate_hz()));
      cm.add(c, static_cast<std::size_t>(pred));
    }
  }
  EXPECT_GT(cm.accuracy(), 0.85);
}

TEST(MotorWaveform, ShortWaveformRejected) {
  apps::VibrationGenerator::Observation obs;
  obs.waveform.resize(10);
  EXPECT_THROW((void)apps::features_from_observation(obs, 8192.0), Error);
}

}  // namespace
}  // namespace vedliot
