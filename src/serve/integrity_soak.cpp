#include "serve/integrity_soak.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "graph/zoo.hpp"
#include "obs/json.hpp"
#include "platform/baseboard.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {

namespace {

/// Independent deterministic streams (soak.cpp keeps the same discipline):
/// the load schedule, the SEU campaign, the model weights and the
/// simulator's transient draws must not perturb each other across flip
/// rates.
constexpr std::uint64_t kLoadStream = 0xA11CEull;
constexpr std::uint64_t kFlipStream = 0x5EBull;
constexpr std::uint64_t kModelStream = 0x30DE1ull;
constexpr std::uint64_t kSimStream = 0x51ull;

std::string event_digest(const ServeReport& report) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const ServeEvent& e : report.events) {
    h = util::fnv1a64(format_serve_event(e), h);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

bool is_detection(ServeEventKind k) { return k == ServeEventKind::kScrubHit; }

bool is_recovery(ServeEventKind k) {
  return k == ServeEventKind::kModelReloaded || k == ServeEventKind::kOtaRolledBack;
}

/// Invariants 1 + 3 (event side): every memory fault is followed by a scrub
/// hit within the detection bound, and every scrub hit is healed by a
/// recovery event at the same timestamp (recovery is synchronous).
void check_detection_invariant(const ServeReport& report, double bound_s,
                               const std::string& identity, IntegritySoakResult& out) {
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const ServeEvent& e = report.events[i];
    if (e.kind == ServeEventKind::kMemoryFault) {
      double detected_at = -1;
      for (std::size_t j = i + 1; j < report.events.size(); ++j) {
        if (is_detection(report.events[j].kind)) {
          detected_at = report.events[j].time_s;
          break;
        }
      }
      if (detected_at < 0) {
        out.violations.push_back("memory fault at " + std::to_string(e.time_s) +
                                 "s never detected [" + identity + "]");
        continue;
      }
      const double latency = detected_at - e.time_s;
      if (latency > bound_s + 1e-9) {
        out.violations.push_back(
            "detection latency " + std::to_string(latency) + "s exceeds bound " +
            std::to_string(bound_s) + "s for fault at " + std::to_string(e.time_s) + "s [" +
            identity + "]");
      }
      out.max_detection_s = std::max(out.max_detection_s, latency);
      out.mean_detection_s += latency;  // normalized by the caller
    }
    if (is_detection(e.kind)) {
      // The self-healing reload is synchronous with detection: a recovery
      // event must follow at the same simulated time.
      bool healed = false;
      for (std::size_t j = i + 1; j < report.events.size(); ++j) {
        if (report.events[j].time_s > e.time_s + 1e-12) break;
        if (is_recovery(report.events[j].kind)) {
          healed = true;
          break;
        }
      }
      if (!healed) {
        out.violations.push_back("scrub hit at " + std::to_string(e.time_s) +
                                 "s not followed by a recovery event [" + identity + "]");
      }
    }
  }
}

/// The chaos-soak observability contract, re-asserted here: events mirror
/// 1:1 in order into the tracer and per-kind counters match exactly.
void check_observability_invariant(const ServeReport& report, const obs::Tracer& tracer,
                                   const obs::MetricsRegistry& metrics,
                                   const std::string& identity,
                                   std::vector<std::string>& violations) {
  std::vector<const obs::Span*> mirrored;
  for (const obs::Span& sp : tracer.spans()) {
    if (sp.category == "vedliot.serve") mirrored.push_back(&sp);
  }
  if (mirrored.size() != report.events.size()) {
    violations.push_back("tracer mirror count " + std::to_string(mirrored.size()) +
                         " != event count " + std::to_string(report.events.size()) + " [" +
                         identity + "]");
    return;
  }
  for (std::size_t i = 0; i < mirrored.size(); ++i) {
    const std::string expect(serve_event_name(report.events[i].kind));
    if (mirrored[i]->name != expect) {
      violations.push_back("tracer mirror out of order at event " + std::to_string(i) + ": " +
                           mirrored[i]->name + " != " + expect + " [" + identity + "]");
      return;
    }
  }
  std::map<std::string, std::uint64_t> counts;
  for (const ServeEvent& e : report.events) {
    ++counts["vedliot.serve." + std::string(serve_event_name(e.kind))];
  }
  for (const auto& [name, count] : counts) {
    if (!metrics.has_counter(name) || metrics.counters().at(name).value() != count) {
      violations.push_back("counter " + name + " != event count " + std::to_string(count) +
                           " [" + identity + "]");
    }
  }
}

}  // namespace

std::string IntegritySoakResult::to_json() const {
  std::string out = "{\"record\":\"soak-integrity\"";
  out += ",\"seed\":" + obs::json_number(static_cast<double>(config.seed));
  out += ",\"flip_rate_hz\":" + obs::json_number(config.flip_rate_hz);
  out += ",\"duration_s\":" + obs::json_number(config.duration_s);
  out += ",\"arrival_hz\":" + obs::json_number(config.arrival_hz);
  out += ",\"backends\":" + obs::json_number(static_cast<double>(config.n_backends));
  out += ",\"offered\":" + obs::json_number(static_cast<double>(report.offered));
  out += ",\"completed\":" + obs::json_number(static_cast<double>(report.completed));
  out += ",\"deadline_missed\":" + obs::json_number(static_cast<double>(report.deadline_missed));
  out += ",\"memory_faults\":" + obs::json_number(static_cast<double>(report.memory_faults));
  out += ",\"scrub_hits\":" + obs::json_number(static_cast<double>(report.scrub_hits));
  out += ",\"quarantines\":" + obs::json_number(static_cast<double>(report.quarantines));
  out += ",\"model_reloads\":" + obs::json_number(static_cast<double>(report.model_reloads));
  out += ",\"ota_staged\":" + obs::json_number(static_cast<double>(report.ota_staged));
  out += ",\"ota_committed\":" + obs::json_number(static_cast<double>(report.ota_committed));
  out += ",\"ota_rejected\":" + obs::json_number(static_cast<double>(report.ota_rejected));
  out +=
      ",\"ota_rolled_back\":" + obs::json_number(static_cast<double>(report.ota_rolled_back));
  out +=
      ",\"integrity_checks\":" + obs::json_number(static_cast<double>(report.integrity_checks));
  out +=
      ",\"integrity_faults\":" + obs::json_number(static_cast<double>(report.integrity_faults));
  out += ",\"quality_degraded\":" + obs::json_number(static_cast<double>(report.quality_degraded));
  out += ",\"dirty_at_end\":" + obs::json_number(static_cast<double>(report.dirty_at_end));
  out += ",\"detection_bound_s\":" + obs::json_number(detection_bound_s);
  out += ",\"max_detection_s\":" + obs::json_number(max_detection_s);
  out += ",\"mean_detection_s\":" + obs::json_number(mean_detection_s);
  out += ",\"events\":" + obs::json_number(static_cast<double>(report.events.size()));
  out += ",\"events_fnv1a\":\"" + event_digest(report) + "\"";
  out += ",\"sim\":\"" + obs::json_escape(sim_describe) + "\"";
  out += ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    out += obs::json_escape(violations[i]);
    out += "\"";
  }
  out += "]}";
  return out;
}

IntegritySoakResult run_integrity_soak(const IntegritySoakConfig& cfg) {
  VEDLIOT_CHECK(cfg.duration_s > 0, "soak duration must be positive");
  VEDLIOT_CHECK(cfg.flip_rate_hz >= 0, "flip rate must be >= 0");
  VEDLIOT_CHECK(cfg.arrival_hz > 0, "arrival rate must be positive");
  VEDLIOT_CHECK(cfg.n_backends >= 1 && cfg.n_backends <= 4,
                "a RECS|Box soak uses 1..4 backend modules");
  VEDLIOT_CHECK(cfg.scrub_per_tick >= 1, "scrub budget must be >= 1");

  // Platform: RECS|Box Xavier modules on a star fabric, hub as ingress.
  platform::Chassis chassis((platform::recs_box()));
  std::vector<std::string> slots;
  for (int i = 0; i < cfg.n_backends; ++i) {
    const std::string slot = "come" + std::to_string(i);
    chassis.install(slot, platform::find_module("COMe-XavierAGX"));
    slots.push_back(slot);
  }
  platform::Fabric fabric =
      platform::star_fabric({"come0", "come1", "come2", "come3"}, 10.0, {1.0, 10.0});

  platform::PlatformSimulator::Config sim_cfg;
  sim_cfg.seed = cfg.seed ^ kSimStream;
  platform::PlatformSimulator sim(std::move(chassis), std::move(fabric), sim_cfg);

  // Model under protection: a tiny CNN served with real tensors, so the
  // robustness service genuinely verifies every delivered output.
  Graph model = zoo::micro_cnn("integrity", 1, 3, 16, 8, 8);
  Rng weight_rng(cfg.seed ^ kModelStream);
  model.materialize_weights(weight_rng);

  safety::ModelStore store;
  safety::RobustnessService::Config rc;
  rc.check_period = 1;  // invariant 2: every delivery is verified
  rc.tolerance = 1e-4;
  safety::RobustnessService robustness(model, rc);

  ServerConfig server_cfg;
  server_cfg.backends = slots;
  server_cfg.variants = {ModelVariant{"integrity-fp32", &model, DType::kFP32, false}};
  server_cfg.ladder = {BrownoutStep{0, 2}};
  server_cfg.seed = cfg.seed;
  server_cfg.execute = true;
  server_cfg.robustness = &robustness;
  server_cfg.store = &store;
  server_cfg.scrub.tensors_per_tick = cfg.scrub_per_tick;
  // Probation must outlast a full detection sweep, or a bad push flipping
  // bits right after commit could be misread as an SEU once the counter
  // runs out before the sweep reaches the corrupt tensor.
  server_cfg.ota_probation_sweeps = 2;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  server_cfg.trace = &tracer;
  server_cfg.metrics = &metrics;

  Server server(sim, server_cfg);

  // Detection bound from the scrub geometry: one full sweep plus two ticks
  // of slack (the fault can land just after a tick, and recovery logs on
  // the tick that scans the corrupt tensor).
  const std::size_t entries = digest_weights(model).size();
  const std::size_t sweep_ticks = (entries + cfg.scrub_per_tick - 1) / cfg.scrub_per_tick;
  const double bound_s =
      static_cast<double>(sweep_ticks + 2) * server_cfg.control_period_s;

  // SEU campaign: single-bit flips in the first 30% of the run, clear of
  // the OTA scenario so random flips repair and scripted ones roll back.
  platform::FaultTimeline timeline;
  Rng flip_rng(cfg.seed ^ kFlipStream);
  const auto n_flips =
      static_cast<std::size_t>(std::lround(cfg.flip_rate_hz * cfg.duration_s));
  for (std::size_t i = 0; i < n_flips; ++i) {
    platform::FaultEvent e;
    e.kind = platform::FaultKind::kMemoryFault;
    e.time_s = flip_rng.uniform(0.05, 0.30) * cfg.duration_s;
    e.slot = slots[static_cast<std::size_t>(
        flip_rng.uniform_int(0, static_cast<std::int64_t>(slots.size()) - 1))];
    e.magnitude = 1.0;
    timeline.push(e);
  }

  std::size_t scripted_faults = 0;
  std::size_t corrupted_otas = 0;
  const auto first_parametric = [](Graph& g) -> Node& {
    for (NodeId id : g.topo_order()) {
      if (!g.node(id).weights.empty()) return g.node(id);
    }
    throw InvalidArgument("soak model has no parametric node");
  };
  if (cfg.ota_scenario) {
    // Good push: same architecture, slightly re-tuned weights -> commits.
    Graph v2 = model.clone();
    for (float& w : first_parametric(v2).weights.at(0).data()) w *= 1.02f;
    v2.touch();
    server.submit_ota(0.45 * cfg.duration_s, 0, safety::make_ota_package(v2));

    // Corrupt push: the same payload, damaged in transit by a scheduled
    // kOtaCorrupt marker -> must be rejected at staging.
    platform::FaultEvent corrupt;
    corrupt.kind = platform::FaultKind::kOtaCorrupt;
    corrupt.time_s = 0.55 * cfg.duration_s;
    timeline.push(corrupt);
    server.submit_ota(0.60 * cfg.duration_s, 0, safety::make_ota_package(v2));
    ++corrupted_otas;

    // Bad push: commits cleanly, then an SEU lands inside the probation
    // window -> the whole update must roll back.
    Graph v3 = model.clone();
    for (float& w : first_parametric(v3).weights.at(0).data()) w *= 0.97f;
    v3.touch();
    server.submit_ota(0.70 * cfg.duration_s, 0, safety::make_ota_package(v3));
    platform::FaultEvent probation_seu;
    probation_seu.kind = platform::FaultKind::kMemoryFault;
    probation_seu.time_s = 0.70 * cfg.duration_s + 1.5 * server_cfg.control_period_s;
    probation_seu.slot = slots.front();
    probation_seu.magnitude = 1.0;
    timeline.push(probation_seu);
    ++scripted_faults;
  }
  sim.schedule(timeline);

  // Open-loop seeded load, identical across flip rates.
  Rng load_rng(cfg.seed ^ kLoadStream);
  double t = 0;
  std::uint64_t i = 0;
  while (true) {
    t += -std::log(1.0 - load_rng.uniform()) / cfg.arrival_hz;
    if (t >= cfg.duration_s) break;
    Request r;
    r.client = "client" + std::to_string(i % 4);
    r.arrival_s = t;
    r.deadline_s = t + load_rng.jittered(cfg.deadline_s, 0.3);
    server.submit(r);
    ++i;
  }

  IntegritySoakResult result;
  result.config = cfg;
  result.detection_bound_s = bound_s;
  result.report = server.run(cfg.duration_s);
  result.sim_describe = sim.describe();
  const std::string& identity = result.sim_describe;

  // Invariants 1 + 3 (events).
  check_detection_invariant(result.report, bound_s, identity, result);
  if (result.report.memory_faults > 0) {
    result.mean_detection_s /= static_cast<double>(result.report.memory_faults);
  }
  if (result.report.memory_faults != n_flips + scripted_faults) {
    // A random SEU can land on a crashed module and be skipped; this soak
    // schedules no crashes, so every scheduled fault must apply.
    result.violations.push_back(
        "applied memory faults " + std::to_string(result.report.memory_faults) + " != scheduled " +
        std::to_string(n_flips + scripted_faults) + " [" + identity + "]");
  }

  // Invariant 2: nothing was delivered unchecked.
  const std::size_t delivered = result.report.completed + result.report.deadline_missed;
  if (result.report.integrity_checks != delivered) {
    result.violations.push_back(
        "integrity checks " + std::to_string(result.report.integrity_checks) +
        " != delivered responses " + std::to_string(delivered) + " [" + identity + "]");
  }

  // Invariant 3 (end state): the healed server leaves no corrupt tensor.
  if (result.report.dirty_at_end != 0) {
    result.violations.push_back("run ended with " + std::to_string(result.report.dirty_at_end) +
                                " corrupt tensor(s) unhealed [" + identity + "]");
  }

  // Invariant 4: bad OTA never sticks.
  if (cfg.ota_scenario) {
    if (result.report.ota_rejected != corrupted_otas) {
      result.violations.push_back(
          "corrupted OTA payloads " + std::to_string(corrupted_otas) + " but " +
          std::to_string(result.report.ota_rejected) + " rejections [" + identity + "]");
    }
    if (result.report.ota_rolled_back != 1) {
      result.violations.push_back(
          "scripted bad push ended with " + std::to_string(result.report.ota_rolled_back) +
          " rollbacks (want exactly 1) [" + identity + "]");
    }
    if (result.report.ota_staged != 3) {
      result.violations.push_back("staged " + std::to_string(result.report.ota_staged) +
                                  " OTA payloads (want 3) [" + identity + "]");
    }
  }

  check_observability_invariant(result.report, tracer, metrics, identity, result.violations);
  return result;
}

}  // namespace vedliot::serve
