# Empty compiler generated dependencies file for vedliot_apps.
# This may be replaced when dependencies are built.
