#pragma once
/// \file zoo_common.hpp
/// \brief Internal builder helpers shared by the model-zoo constructors.

#include <string>

#include "graph/graph.hpp"

namespace vedliot::zoo::detail {

/// Fluent helper around Graph for conv-bn-act idioms; generates unique
/// layer names from a running counter.
class Builder {
 public:
  explicit Builder(Graph& g) : g_(g) {}

  /// conv (+ optional bn) (+ optional activation). act is an OpKind that
  /// satisfies op_is_activation, or OpKind::kIdentity for linear output.
  NodeId conv_bn_act(NodeId in, std::int64_t oc, std::int64_t kernel, std::int64_t stride,
                     std::int64_t pad, OpKind act, std::int64_t groups = 1, bool with_bn = true);

  /// 1x1 pointwise conv + bn + act.
  NodeId pw(NodeId in, std::int64_t oc, OpKind act) {
    return conv_bn_act(in, oc, 1, 1, 0, act);
  }

  /// kxk depthwise conv + bn + act (groups == channels).
  NodeId dw(NodeId in, std::int64_t kernel, std::int64_t stride, OpKind act);

  /// Squeeze-and-excitation block implemented with 1x1 convs so it stays
  /// rank-4 (matches MobileNetV3 / EfficientNet practice).
  NodeId se_block(NodeId in, std::int64_t channels, std::int64_t squeezed);

  NodeId add(NodeId a, NodeId b);
  NodeId act(NodeId in, OpKind kind);
  NodeId maxpool(NodeId in, std::int64_t kernel, std::int64_t stride, std::int64_t pad);

  Graph& graph() { return g_; }
  std::string next_name(const std::string& stem);

 private:
  Graph& g_;
  int counter_ = 0;
};

}  // namespace vedliot::zoo::detail
