file(REMOVE_RECURSE
  "CMakeFiles/bench_motor_condition.dir/bench_motor_condition.cpp.o"
  "CMakeFiles/bench_motor_condition.dir/bench_motor_condition.cpp.o.d"
  "bench_motor_condition"
  "bench_motor_condition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motor_condition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
