file(REMOVE_RECURSE
  "CMakeFiles/smart_mirror.dir/smart_mirror.cpp.o"
  "CMakeFiles/smart_mirror.dir/smart_mirror.cpp.o.d"
  "smart_mirror"
  "smart_mirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
