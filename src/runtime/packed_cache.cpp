#include "runtime/packed_cache.hpp"

namespace vedliot::runtime_kernels {

template <typename T>
const std::vector<T>& PackedWeightCache::get(std::map<Key, Entry<T>>& table, NodeId node,
                                             std::int64_t group, std::uint64_t graph_version,
                                             const MicrokernelTile& tile,
                                             const std::function<void(std::vector<T>&)>& pack) {
  Entry<T>& e = table[{node, group}];
  if (e.version != graph_version || e.mr != tile.mr || e.nr != tile.nr || e.data.empty()) {
    e.data.clear();
    pack(e.data);
    e.version = graph_version;
    e.mr = tile.mr;
    e.nr = tile.nr;
    ++packs_;
  }
  return e.data;
}

const std::vector<float>& PackedWeightCache::get_f32(
    NodeId node, std::int64_t group, std::uint64_t graph_version, const MicrokernelTile& tile,
    const std::function<void(std::vector<float>&)>& pack) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get(f32_, node, group, graph_version, tile, pack);
}

const std::vector<std::int32_t>& PackedWeightCache::get_s8(
    NodeId node, std::int64_t group, std::uint64_t graph_version, const MicrokernelTile& tile,
    const std::function<void(std::vector<std::int32_t>&)>& pack) {
  std::lock_guard<std::mutex> lock(mutex_);
  return get(s8_, node, group, graph_version, tile, pack);
}

std::size_t PackedWeightCache::packs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return packs_;
}

void PackedWeightCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  f32_.clear();
  s8_.clear();
}

}  // namespace vedliot::runtime_kernels
