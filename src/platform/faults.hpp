#pragma once
/// \file faults.hpp
/// \brief Deterministic platform-level fault injection (Sec. II-A + IV-B):
/// module crashes/restarts, link drops and bandwidth degradation, thermal
/// throttling, and seeded transient transfer errors, applied to a
/// Chassis + Fabric pair from a time-ordered event schedule.
///
/// This is the adversary side of the resilience story: safety's
/// FaultInjector corrupts *model weights*; PlatformSimulator breaks the
/// *platform under the model* over simulated time, so the
/// ResilienceController (resilience.hpp) has something to detect, retry
/// against, and recover from.
///
/// Two fault kinds are pure schedule markers whose effect is owned by the
/// driver (the way thermal events stretch in-flight work in serve::Server):
/// kMemoryFault means "flip `magnitude` weight bits in the model deployed
/// on `slot` now", and kOtaCorrupt means "the next staged OTA payload was
/// corrupted in transit". The simulator validates and sequences them; the
/// serving layer applies the damage to the state it owns.

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "platform/baseboard.hpp"
#include "platform/fabric.hpp"
#include "util/rng.hpp"

namespace vedliot::platform {

enum class FaultKind {
  kModuleCrash,      ///< module in `slot` stops responding (hot-removed)
  kModuleRestart,    ///< previously crashed module in `slot` comes back
  kLinkDrop,         ///< link a<->b removed from the fabric
  kLinkRestore,      ///< previously dropped link a<->b reinstated
  kLinkDegrade,      ///< link a<->b degraded to `magnitude` of its bandwidth
  kThermalThrottle,  ///< module GOPS scaled by `magnitude` in (0, 1]
  kThermalRecover,   ///< throttle on `slot` cleared
  kMemoryFault,      ///< SEU: `magnitude` weight bits flip on `slot`'s model
  kOtaCorrupt,       ///< next OTA payload arrives corrupted in transit
  kLinkPartition,    ///< `slot` isolated: every link touching it removed
  kLinkHeal,         ///< previously partitioned `slot` reconnected
  kPacketDup,        ///< link a<->b duplicates packets with prob `magnitude`
  kPacketReorder,    ///< link a<->b reorders packets with prob `magnitude`
};

std::string_view fault_kind_name(FaultKind kind);

struct FaultEvent {
  double time_s = 0;
  FaultKind kind = FaultKind::kModuleCrash;
  std::string slot;        ///< module faults
  std::string a, b;        ///< link faults
  double magnitude = 1.0;  ///< degradation / throttle factor in (0, 1]

  /// "slot come1" or "link come0<->switch0" — the faulted entity.
  std::string subject() const;
};

/// A time-ordered fault schedule. Events can be scripted one by one or
/// drawn as a seeded random campaign; either way the sequence applied to a
/// PlatformSimulator is fully deterministic.
class FaultTimeline {
 public:
  /// Insert keeping the schedule sorted by time (stable for ties).
  void push(FaultEvent e);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Seeded random campaign over [0, duration): \p n_faults events drawn
  /// uniformly in time, alternating crash/restart, throttle/recover and
  /// link degrade/restore pairs over the given slots so the platform keeps
  /// oscillating between healthy and degraded states.
  static FaultTimeline random_campaign(const std::vector<std::string>& slots,
                                       std::size_t n_faults, double duration_s, Rng& rng);

  /// Seeded lossy-fabric campaign: the transport-layer adversary. Draws
  /// \p n_faults inject/heal pairs over [0, duration_s * 0.6) alternating
  /// node partitions (kLinkPartition/kLinkHeal on "switch0"<->slot stars),
  /// device crash/restart, packet duplication and packet reordering
  /// (kPacketDup/kPacketReorder set to `intensity`, cleared by the pair's
  /// second event). `intensity` in (0, 1) scales the dup/reorder
  /// probabilities. Every draw comes from \p rng, so the campaign is
  /// reproducible from the seed a PlatformSimulator::describe() line names.
  static FaultTimeline lossy_fabric_campaign(const std::vector<std::string>& slots,
                                             std::size_t n_faults, double duration_s,
                                             double intensity, Rng& rng);

 private:
  std::vector<FaultEvent> events_;
};

/// A chassis + fabric under fault injection. Owns private copies of both,
/// applies scheduled events as simulated time advances, and answers the
/// health / effective-capacity queries the resilience layer plans against.
class PlatformSimulator {
 public:
  struct Config {
    double transient_transfer_prob = 0.0;  ///< per transfer attempt
    std::uint64_t seed = 0x5EEDu;
  };

  PlatformSimulator(Chassis chassis, Fabric fabric);
  PlatformSimulator(Chassis chassis, Fabric fabric, Config config);

  void schedule(const FaultTimeline& timeline);
  /// Throws InvalidArgument when the event lies in the simulated past.
  void schedule(FaultEvent event);

  /// Apply every scheduled event with time <= t (in order) and move the
  /// clock to t. Returns the events that actually took effect; events that
  /// no longer apply (crash of an already-dead module, restore of a live
  /// link) are counted as skipped instead of throwing, so random campaigns
  /// cannot wedge the simulation.
  std::vector<FaultEvent> advance_to(double t);

  double now() const { return now_; }
  const Chassis& chassis() const { return chassis_; }
  const Fabric& fabric() const { return fabric_; }

  /// Health query: is the module in \p slot installed and responding?
  bool alive(const std::string& slot) const;
  /// The subset of \p slots currently alive, original order preserved.
  std::vector<std::string> alive_of(const std::vector<std::string>& slots) const;

  /// Effective capacity of a slot: 1.0 healthy, <1 thermally throttled.
  double gops_scale(const std::string& slot) const;
  /// All current throttles, keyed by slot (healthy slots omitted).
  std::map<std::string, double> gops_scales() const;

  /// One transfer attempt over the current fabric: returns false on a
  /// seeded transient error, throws NotFound when no route exists
  /// (partition). Deterministic given the construction seed and call order.
  bool try_transfer(const std::string& from, const std::string& to);

  /// One packet's fate over the route from -> to, folding in the per-link
  /// duplication / reordering state kPacketDup / kPacketReorder installed.
  struct ChannelDraw {
    bool intact = true;      ///< false: damaged in flight (CRC will fail)
    bool duplicated = false; ///< delivered twice (receiver must dedupe)
    bool reordered = false;  ///< delivered out of order vs its window peer
  };

  /// Draw the fate of one packet over the current fabric. Throws NotFound
  /// when no route exists (partitioned). Consumes rng draws only for the
  /// hazards that are actually armed (the transient probability, plus
  /// dup/reorder when a link on the route carries a non-zero setting), so
  /// a clean channel replays identically to try_transfer.
  ChannelDraw draw_channel(const std::string& from, const std::string& to);

  std::size_t faults_applied() const { return applied_; }
  std::size_t faults_skipped() const { return skipped_; }

  /// Current channel-fault state (tests + repro tooling).
  bool partitioned(const std::string& slot) const { return partitioned_.count(slot) > 0; }
  double dup_prob(const std::string& a, const std::string& b) const;
  double reorder_prob(const std::string& a, const std::string& b) const;

  /// Time of the earliest scheduled-but-not-yet-applied fault, if any.
  /// Discrete-event drivers (the serving layer) include it in their
  /// next-event computation so faults take effect at their scheduled time
  /// instead of at the driver's next natural wakeup.
  std::optional<double> next_fault_time() const;

  /// Seed behind the transient-transfer draws (and, by convention, the
  /// fault campaigns scheduled onto this simulator).
  std::uint64_t seed() const { return cfg_.seed; }

  /// One-line identity for failure messages — the seed and fault counters
  /// a CI log needs to reproduce a chaos-soak run:
  ///   "PlatformSimulator{seed=0x5eed, now=1.2340s, faults applied=3
  ///    skipped=0 pending=2, transient_prob=0.05}"
  std::string describe() const;

 private:
  bool apply(const FaultEvent& e);
  static std::string link_key(const std::string& a, const std::string& b);

  Chassis chassis_;
  Fabric fabric_;
  Config cfg_;
  Rng rng_;
  double now_ = 0;
  std::vector<FaultEvent> pending_;  ///< sorted by time; consumed from next_
  std::size_t next_ = 0;
  std::map<std::string, MicroserverModule> crashed_;
  std::map<std::string, double> throttle_;
  std::vector<Link> dropped_;
  std::map<std::string, std::vector<Link>> partitioned_;  ///< slot -> severed links
  std::map<std::string, double> dup_;      ///< "a|b" (sorted) -> probability
  std::map<std::string, double> reorder_;  ///< "a|b" (sorted) -> probability
  std::size_t applied_ = 0;
  std::size_t skipped_ = 0;
};

}  // namespace vedliot::platform
