// Smart Mirror demonstrator (Sec. V-C / Fig. 5).
//
// Places the four perception networks (gesture, face, object, speech) on a
// uRECS node, verifies real-time rates and the < 15 W budget, then runs a
// short simulated interaction session: frames stream through the image
// quality monitor before inference, and the safety kernel supervises the
// pipelines' heartbeats.
//
// Build & run:  ./build/examples/smart_mirror

#include <cstdio>

#include "apps/mirror.hpp"
#include "graph/zoo.hpp"
#include "runtime/session.hpp"
#include "safety/hybrid.hpp"
#include "safety/monitors.hpp"
#include "util/rng.hpp"

using namespace vedliot;

int main() {
  std::printf("Smart Mirror demonstrator: 4 neural networks, on-site only\n\n");

  // 1. Plan the deployment on a Jetson Xavier NX uRECS module.
  const auto plan = apps::plan_smart_mirror("JetsonXavierNX");
  std::printf("placement on uRECS/JetsonXavierNX:\n");
  for (const auto& p : plan.placements) {
    std::printf("  %-8s -> %-16s %6.2f ms/inf, %4.1f%% of the module\n", p.workload.c_str(),
                p.module.c_str(), p.latency_s * 1e3, p.utilization * 100);
  }
  std::printf("average power %.2f W (budget 15 W) — realtime:%s privacy:%s\n\n",
              plan.average_power_w, plan.realtime_ok ? "ok" : "VIOLATED",
              plan.privacy_preserved ? "on-site" : "VIOLATED");

  // 2. Gesture pipeline with the input-quality monitor in front.
  Graph gesture = zoo::gesture_net();
  Rng rng(7);
  gesture.materialize_weights(rng);
  const auto session = runtime::make_session(gesture, {});
  safety::ImageMonitor monitor;

  safety::SafetyKernel kernel;
  safety::PayloadTask task;
  task.name = "gesture";
  task.period_s = 1.0 / 15.0;
  task.deadline_s = 0.12;
  kernel.register_task(task);
  kernel.on_degraded([] { std::printf("  [kernel] DEGRADED: slowing UI, showing notice\n"); });

  Rng scene(99);
  double now = 0.0;
  std::printf("streaming 30 camera frames through monitor -> model:\n");
  int inferred = 0, dropped = 0;
  for (int frame = 0; frame < 30; ++frame) {
    now += 1.0 / 15.0;
    Tensor img(Shape{1, 1, 96, 96});
    const bool corrupted = frame == 12 || frame == 13;  // a camera glitch
    for (float& v : img.data()) {
      v = static_cast<float>(0.5 + scene.normal(0.0, corrupted ? 0.7 : 0.05));
    }
    const auto verdict = monitor.check(img);
    if (safety::correction_for(verdict) == safety::CorrectionAction::kDrop) {
      ++dropped;
      std::printf("  frame %2d: dropped (%s) — no heartbeat\n", frame,
                  std::string(safety::verdict_name(verdict)).c_str());
    } else {
      session->run_single(img);
      kernel.heartbeat("gesture", now);
      ++inferred;
    }
    kernel.tick(now);
  }
  kernel.try_recover(now);
  std::printf("\nsession: %d frames inferred, %d dropped by the monitor, final state: %s\n",
              inferred, dropped, std::string(safety::system_state_name(kernel.state())).c_str());
  return 0;
}
