#include "serve/brownout.hpp"

#include "util/error.hpp"

namespace vedliot::serve {

BrownoutLadder::BrownoutLadder(BrownoutConfig config) : cfg_(config) {
  VEDLIOT_CHECK(cfg_.low_watermark >= 0, "low watermark must be >= 0");
  VEDLIOT_CHECK(cfg_.high_watermark > cfg_.low_watermark,
                "high watermark must exceed low watermark");
  VEDLIOT_CHECK(cfg_.step_down_after >= 1, "step-down streak must be >= 1");
  VEDLIOT_CHECK(cfg_.step_up_after >= 1, "step-up streak must be >= 1");
  VEDLIOT_CHECK(cfg_.max_level >= 0, "max level must be >= 0");
}

BrownoutLadder::BrownoutLadder(BrownoutConfig config, std::vector<BrownoutStep> steps)
    : BrownoutLadder([&] {
        VEDLIOT_CHECK(!steps.empty(), "degradation ladder needs at least one rung");
        config.max_level = static_cast<int>(steps.size()) - 1;
        return config;
      }()) {
  steps_ = std::move(steps);
}

const BrownoutStep& BrownoutLadder::current() const {
  VEDLIOT_CHECK(!steps_.empty(), "ladder was constructed without steps");
  return steps_[static_cast<std::size_t>(level_)];
}

int BrownoutLadder::observe(double load) {
  if (load >= cfg_.high_watermark) {
    calm_streak_ = 0;
    ++hot_streak_;
    if (hot_streak_ >= cfg_.step_down_after && level_ < cfg_.max_level) {
      hot_streak_ = 0;
      ++level_;
      return +1;
    }
    return 0;
  }
  if (load <= cfg_.low_watermark) {
    hot_streak_ = 0;
    ++calm_streak_;
    if (calm_streak_ >= cfg_.step_up_after && level_ > 0) {
      calm_streak_ = 0;
      --level_;
      return -1;
    }
    return 0;
  }
  // Between the watermarks: hold the rung, reset both streaks so a later
  // excursion must re-earn its full streak.
  hot_streak_ = 0;
  calm_streak_ = 0;
  return 0;
}

}  // namespace vedliot::serve
