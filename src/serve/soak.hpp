#pragma once
/// \file soak.hpp
/// \brief Deterministic closed-loop chaos soak for the serving layer.
///
/// One run_soak() call builds a RECS|Box chassis with a star fabric,
/// schedules a seeded open-loop load (independent RNG stream) and a seeded
/// fault campaign scaled by `fault_rate` (another independent stream) onto
/// a fault-injecting PlatformSimulator, drives a Server through it, and
/// checks the serving invariants:
///
///   1. capacity-honest deadlines — at fault rate zero no accepted request
///      may miss its deadline; under faults, every miss's lifetime must
///      overlap an observed failure/retry on that request or a scheduled
///      platform fault window;
///   2. (cross-run, check_goodput_monotone) goodput is monotone
///      non-increasing in fault rate over the same load schedule;
///   3. bounded queue — the observed max depth never exceeds the
///      configured capacity;
///   4. observable transitions — the structured event log is mirrored 1:1,
///      in order, into the obs tracer (category "vedliot.serve") and every
///      per-kind `vedliot.serve.*` counter equals its event count.
///
/// Everything derives from SoakConfig::seed, so two runs of the same
/// config produce bitwise-identical reports (asserted via to_json string
/// compare in tests and bench/soak_serve). Violation messages embed
/// PlatformSimulator::describe() so a failing CI log carries the seed that
/// reproduces it.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace vedliot::serve {

struct SoakConfig {
  std::uint64_t seed = 0x5EEDu;
  double duration_s = 2.0;
  double fault_rate = 0.0;     ///< 0 = healthy; scales campaign + transients
  double arrival_hz = 7000.0;  ///< offered load (Poisson-like, seeded);
                               ///< ~3x the healthy fp32 capacity, so the
                               ///< brownout ladder genuinely engages and
                               ///< every run pins past the fp32<->int8
                               ///< boundary (where goodput-vs-fault-rate
                               ///< would not be monotone)
  int n_backends = 3;          ///< modules installed in the RECS|Box
  double deadline_s = 20e-3;   ///< mean per-request budget (jittered)
  std::size_t queue_capacity = 32;
};

struct SoakResult {
  SoakConfig config;
  ServeReport report;
  std::vector<std::string> violations;  ///< empty = per-run invariants hold
  std::string sim_describe;             ///< seed/fault identity of the run

  double goodput() const { return report.goodput(); }
  bool ok() const { return violations.empty(); }

  /// Deterministic JSON-lines record ("record":"soak-serve"); bitwise
  /// identical across runs of the same config.
  std::string to_json() const;
};

/// Run one seeded soak at the configured fault rate.
SoakResult run_soak(const SoakConfig& config);

/// Invariant 2 over a sweep that shares seed/load and varies only
/// fault_rate (ascending): goodput must be monotone non-increasing.
/// Returns violation messages (empty = holds).
std::vector<std::string> check_goodput_monotone(const std::vector<SoakResult>& sweep);

}  // namespace vedliot::serve
