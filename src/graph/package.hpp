#pragma once
/// \file package.hpp
/// \brief Deployable model packages (Sec. III steps 5-6: compile and ship
/// the model to the target).
///
/// A package is a self-contained binary blob: the textual graph plus all
/// weight tensors. For field deployment over untrusted links, packages can
/// additionally be sealed (ChaCha20 + HMAC-SHA256 under a key derived from
/// the device's provisioning secret), so only the target device — after
/// remote attestation — can open them. This is the "model protection"
/// half of the end-to-end trust story.
///
/// Format v2 appends a per-tensor CRC-32 digest table (computed at
/// pack_model, verified at unpack_model). The table localizes silent data
/// corruption to a specific (node, tensor) pair, and loaders keep it alive
/// in memory so safety::WeightScrubber can incrementally re-hash deployed
/// weights against it. v1 packages (no table) still load.
///
/// unpack_model rejects every malformed input with a GraphError whose
/// message starts with a stable dotted check id and carries the byte
/// offset of the offending field:
///   package.magic  package.version  package.truncated  package.node_index
///   package.record.order  package.rank  package.dim  package.numel
///   package.trailing  package.digest.count  package.digest.key
///   package.digest.mismatch

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "security/crypto.hpp"

namespace vedliot {

/// One weight tensor's integrity digest inside a package (and, after
/// loading, inside a deployed model's in-memory digest table).
struct TensorDigest {
  std::uint32_t node_index = 0;    ///< dense topo index (to_text's remap)
  std::uint32_t tensor_index = 0;  ///< position in Node::weights
  std::uint32_t crc = 0;           ///< CRC-32 of the raw float bytes
};

/// The per-tensor digest table of a graph's current weights, in the order
/// pack_model writes tensors. Recomputing this on a verified-clean graph
/// reproduces the table stored in its package bit for bit.
std::vector<TensorDigest> digest_weights(const Graph& g);

/// Serialize the graph structure AND weights into one binary blob
/// (format v2: includes the digest table).
std::vector<std::uint8_t> pack_model(const Graph& g);

/// Reconstruct a graph (with weights) from a package. Throws GraphError on
/// malformed input; v2 packages additionally have every weight tensor
/// checked against the embedded digest table, so a silent bit flip is
/// rejected here with the corrupted (node, tensor) named.
Graph unpack_model(std::span<const std::uint8_t> package);

/// An encrypted, authenticated package for field deployment.
struct SealedModel {
  std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> ciphertext;
  security::Digest mac{};
  security::Digest model_measurement{};  ///< sha256 of the plaintext package
};

/// Encrypt a model package to a device key (from
/// security::AttestationAuthority::provision). \p nonce_counter must be
/// unique per (key, model) pair — callers typically use a version number.
SealedModel seal_model(const Graph& g, const security::Key& device_key,
                       std::uint32_t nonce_counter);

/// Decrypt + authenticate + unpack; throws vedliot::Error if the MAC fails
/// (wrong device, tampered package).
Graph unseal_model(const SealedModel& sealed, const security::Key& device_key);

}  // namespace vedliot
