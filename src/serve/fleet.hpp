#pragma once
/// \file fleet.hpp
/// \brief Fleet-scale serving: consistent-hash routing, continuous dynamic
/// batching and queue-depth autoscaling over power-budgeted RECS slots.
///
/// Where Server (server.hpp) hardens ONE serving process against faults,
/// Fleet scales MANY serving replicas against load. One Fleet drives a
/// seeded, fully deterministic discrete-event run:
///
///  * routing — each client key routes through a consistent-hash ring
///    (ring.hpp) to one replica, so a client's requests share a queue and
///    an autoscaling step remaps only ~1/N of clients;
///  * placement — every replica occupies a real chassis slot through
///    platform::FleetPlacement; Chassis::install is the sole admission
///    gate, so replicas can only exist under the per-slot and per-chassis
///    power budgets, and every executed batch is metered against its slot;
///  * dynamic batching — an idle replica opens a short batch window, then
///    coalesces queued requests (EDF order) into the smallest power-of-two
///    bucket that fits (batcher.hpp); while a batch runs, arrivals queue
///    up and the next batch launches the instant the replica frees —
///    continuous batching without a central scheduler;
///  * brownout — a hysteretic ladder (brownout.hpp) shrinks `max_batch`
///    live under sustained queue pressure; in execute mode the shrink
///    travels through Session::set_exec_config on every bucket session, so
///    it is enforced by the runtime, not by fleet bookkeeping;
///  * autoscaling — a control tick compares mean queue depth per replica
///    against watermarks and adds (kScaleUp) or drains (kScaleDown)
///    replicas between configured bounds;
///  * idempotency cache — requests carrying an idempotency key may be
///    answered from an LRU response cache (cache.hpp) without costing a
///    queue slot or a batch lane (retry storms collapse to one execution).
///
/// Every decision is a structured ServeEvent mirrored 1:1 into the
/// optional obs::Tracer (instant spans, category "vedliot.fleet") and
/// counted under `vedliot.fleet.*` — fleet_soak.hpp asserts that mirror,
/// plus accounting conservation (every offered request gets exactly one
/// terminal Response) and per-slot power honesty.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/placement.hpp"
#include "serve/batcher.hpp"
#include "serve/brownout.hpp"
#include "serve/cache.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/ring.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {

struct FleetConfig {
  /// Deployment model: single-input single-output, materialized weights
  /// (deployment-ready when `quantized`). Must outlive the fleet.
  const Graph* graph = nullptr;
  DType dtype = DType::kFP32;  ///< cost-model precision
  bool quantized = false;      ///< execute via make_quantized_session

  /// Run real tensors through bucket sessions on dispatch (CRC-stamped
  /// responses). Off = analytic timing only (the big sweeps).
  bool execute = false;

  std::int64_t max_batch = 8;  ///< widest batch bucket (healthy cap)

  /// Brownout rungs over `max_batch` (variant index is ignored — the fleet
  /// serves one model; the knob is exec.max_batch). Empty = a default
  /// halving ladder max_batch, max_batch/2, ..., 1.
  std::vector<BrownoutStep> ladder;
  BrownoutConfig brownout;  ///< max_level forced to ladder size - 1

  std::size_t initial_replicas = 2;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 16;

  /// Autoscaling watermarks on mean queue depth per active replica,
  /// sampled each control tick.
  double scale_up_depth = 8.0;
  double scale_down_depth = 1.0;

  std::size_t queue_capacity = 64;  ///< per replica (hard bound)
  double batch_window_s = 2e-3;     ///< idle-replica coalescing window
  double control_period_s = 10e-3;  ///< autoscale + brownout tick

  std::size_t cache_capacity = 128;  ///< idempotency cache entries
  std::size_t ring_vnodes = 64;

  /// Chassis model replicas are placed into (first fit, opened on demand)
  /// and the module kinds cycled across placements.
  platform::BaseboardSpec board = platform::recs_box();
  std::vector<std::string> modules = {"COMe-XavierAGX", "COMe-D1577"};

  std::uint64_t seed = 0x5EEDu;  ///< execute-mode input synthesis

  obs::Tracer* trace = nullptr;             ///< 1:1 mirror when set
  obs::MetricsRegistry* metrics = nullptr;  ///< vedliot.fleet.* when set
};

struct FleetReport {
  std::vector<ServeEvent> events;

  /// Terminal outcome for every offered request, in request-id order.
  /// Conservation: size() == offered and the status counts below sum to
  /// offered (fleet_soak asserts both).
  std::vector<Response> responses;

  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t displaced = 0;
  std::size_t cache_hits = 0;
  std::size_t completed = 0;        ///< within deadline
  std::size_t deadline_missed = 0;  ///< delivered late (structurally avoided)
  std::size_t cancelled = 0;

  std::size_t batches = 0;       ///< kBatchExecuted count
  std::size_t lanes = 0;         ///< real lanes executed
  std::size_t padded_lanes = 0;  ///< zero lanes added to fill buckets

  std::size_t max_queue_depth = 0;  ///< max depth of any one replica queue
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  std::size_t max_replicas = 0;
  std::size_t final_replicas = 0;
  int max_brownout_level = 0;
  int final_brownout_level = 0;

  double busy_s = 0;    ///< summed replica busy time
  double energy_j = 0;  ///< summed metered energy

  std::vector<platform::FleetPlacement::SlotPower> power;  ///< per replica

  /// In-deadline completions (cache hits included) over offered load.
  double goodput() const;

  /// Deterministic JSON summary; bitwise-identical for identical
  /// configs, which the fleet soak checks by string compare.
  std::string to_json() const;
};

/// The tensor the execute path feeds for \p r: synthesized from the
/// payload handle (falling back to the request id) at the graph input's
/// lane shape widened to the request's batch. Shared with the soak
/// harness so its batch-vs-singleton equality check reproduces the exact
/// fleet inputs.
Tensor synthesize_input(const Graph& graph, std::uint64_t seed, const Request& r);

/// One-shot fleet run: submit the offered load, then run() once.
class Fleet {
 public:
  explicit Fleet(FleetConfig config);
  ~Fleet();

  /// Register one offered request (before run()). Returns the request id.
  /// The request must be wire version kServeApiVersion.
  std::uint64_t submit(Request r);

  /// Drive the event loop: arrivals within \p duration_s of simulated
  /// time, then drain — every admitted request reaches a terminal state
  /// before run() returns (conservation holds unconditionally).
  FleetReport run(double duration_s);

  /// Live batch cap as the brownout rung allows it (largest bucket width
  /// not above the rung cap). Exposed for tests.
  std::int64_t effective_max_batch() const;

  /// Active replica names in ring order (for tests).
  std::vector<std::string> replicas() const { return ring_.members(); }

  /// The batcher serving \p replica (execute mode; throws NotFound
  /// otherwise) — lets tests watch a brownout shrink through the bucket
  /// sessions' own Session API.
  DynamicBatcher& batcher(const std::string& replica) const;

 private:
  struct Replica {
    std::string name;
    std::unique_ptr<AdmissionQueue> queue;
    std::unique_ptr<DynamicBatcher> batcher;  ///< execute mode only
    double busy_until_s = 0;
    std::optional<double> window_close_s;  ///< open batch window
    bool retired = false;
  };

  struct PendingBatch {
    double finish_s = 0;
    std::size_t replica = 0;
    std::vector<Response> responses;  ///< terminal kOk/kLate, in EDF order
  };

  void log(double t, ServeEventKind kind, const std::string& subject,
           const std::string& detail, double value = 0);
  Replica& replica_of(const std::string& name);
  std::size_t add_replica(double t);
  void drain_replica(double t, std::size_t idx);
  void admit(double t, const Request& r);
  void finish_response(double t, Response r);
  void try_dispatch(double t, std::size_t idx);
  void launch(double t, std::size_t idx, std::vector<Ticket> group);
  void control_tick(double t);
  void apply_brownout(double t, int delta);
  const runtime::ExecConfig& rung_exec() const;
  double latency_s(const Replica& rep, std::int64_t width) const;
  double power_w(const Replica& rep, std::int64_t width) const;
  std::int64_t bucket_width(std::int64_t lanes) const;

  FleetConfig cfg_;
  platform::FleetPlacement placement_;
  HashRing ring_;
  ResponseCache cache_;
  BrownoutLadder ladder_;
  Rng rng_;

  std::vector<Replica> fleet_;  ///< retired replicas stay (names unique)
  std::size_t active_ = 0;
  std::size_t next_replica_ = 0;

  std::vector<std::int64_t> widths_;  ///< bucket widths 1, 2, 4, ..., W
  /// Analytic (latency_s, power_w) per module kind per bucket width,
  /// precomputed from hw::estimate over rebatched clones.
  std::map<std::string, std::map<std::int64_t, std::pair<double, double>>> perf_;
  /// Routing weight per module kind: analytic full-batch throughput,
  /// normalized so the fastest module is 1.0. Slower modules own
  /// proportionally shorter ring arcs.
  std::map<std::string, double> module_weight_;

  std::vector<Request> arrivals_;              ///< sorted by arrival at run()
  std::map<std::uint64_t, Request> requests_;  ///< by id
  std::vector<PendingBatch> in_flight_;        ///< sorted by finish time
  std::map<std::uint64_t, Response> responses_;  ///< terminal, by id
  std::uint64_t next_id_ = 1;

  FleetReport report_;
  bool ran_ = false;
};

}  // namespace vedliot::serve
