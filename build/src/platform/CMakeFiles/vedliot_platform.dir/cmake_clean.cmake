file(REMOVE_RECURSE
  "CMakeFiles/vedliot_platform.dir/baseboard.cpp.o"
  "CMakeFiles/vedliot_platform.dir/baseboard.cpp.o.d"
  "CMakeFiles/vedliot_platform.dir/distributed.cpp.o"
  "CMakeFiles/vedliot_platform.dir/distributed.cpp.o.d"
  "CMakeFiles/vedliot_platform.dir/fabric.cpp.o"
  "CMakeFiles/vedliot_platform.dir/fabric.cpp.o.d"
  "CMakeFiles/vedliot_platform.dir/microserver.cpp.o"
  "CMakeFiles/vedliot_platform.dir/microserver.cpp.o.d"
  "CMakeFiles/vedliot_platform.dir/resource_manager.cpp.o"
  "CMakeFiles/vedliot_platform.dir/resource_manager.cpp.o.d"
  "libvedliot_platform.a"
  "libvedliot_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
