#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace vedliot {

double Rng::backoff_s(double base_s, double cap_s, int attempt, double floor_s) {
  const int exponent = std::clamp(attempt, 0, kMaxBackoffExponent);
  const double ceiling = std::min(cap_s, base_s * std::exp2(static_cast<double>(exponent)));
  const double lo = std::clamp(floor_s, 0.0, ceiling);
  return uniform(lo, ceiling);
}

double Rng::jittered(double value, double frac) {
  return value * uniform(1.0 - frac, 1.0 + frac);
}

std::vector<float> Rng::normal_vector(std::size_t n, double mean, double stddev) {
  std::vector<float> out(n);
  std::normal_distribution<double> dist(mean, stddev);
  for (auto& v : out) v = static_cast<float>(dist(engine_));
  return out;
}

std::vector<float> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<float> out(n);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (auto& v : out) v = static_cast<float>(dist(engine_));
  return out;
}

}  // namespace vedliot
