// Distributed inference (abstract: "collaboratively solving complex Deep
// Learning applications across distributed systems").
//
// Populates a RECS|Box chassis with three Xavier AGX microservers on the
// 10G fabric, splits YoloV4 into pipeline stages, and compares throughput
// against the best single module; then simulates losing one module and
// replanning (the platform's "seamless switching" robustness story).
//
// Build & run:  ./build/examples/distributed_pipeline

#include <cstdio>

#include "graph/zoo.hpp"
#include "platform/distributed.hpp"

using namespace vedliot;
using namespace vedliot::platform;

namespace {

void print_plan(const DistributedPlan& plan) {
  for (std::size_t i = 0; i < plan.stages.size(); ++i) {
    const auto& st = plan.stages[i];
    std::printf("  stage %zu on %-16s %4zu nodes  %5.1f GOPs  compute %6.2f ms", i,
                st.module.c_str(), st.last - st.first + 1, st.ops / 1e9, st.compute_s * 1e3);
    if (st.transfer_s > 0) {
      std::printf("  -> ship %4.0f KiB (%.2f ms)", st.boundary_bytes / 1024.0,
                  st.transfer_s * 1e3);
    }
    std::printf("\n");
  }
  std::printf("  latency %.1f ms | steady-state %.1f fps | %.1fx one module\n\n",
              plan.latency_s * 1e3, plan.throughput_fps, plan.speedup_vs_single());
}

}  // namespace

int main() {
  std::printf("Distributed YoloV4 on RECS|Box (INT8, 10G fabric)\n\n");

  Chassis chassis(recs_box());
  Fabric fabric = star_fabric({"come0", "come1", "come2", "come3"}, 10.0, {1.0, 10.0});
  std::vector<std::string> slots{"come0", "come1", "come2"};
  for (const auto& slot : slots) chassis.install(slot, find_module("COMe-XavierAGX"));

  Graph model = zoo::yolov4();
  std::printf("3-stage pipeline:\n");
  const auto plan = plan_distributed_inference(model, chassis, fabric, slots, 3, DType::kINT8);
  print_plan(plan);

  // A module is pulled for maintenance: replan on the surviving two
  // (Sec. II-A: "easy exchange of computing resources and seamless
  // switching between the different heterogeneous components").
  std::printf("module come1 removed (maintenance) — replanned on 2 modules:\n");
  chassis.remove("come1");
  const std::vector<std::string> survivors{"come0", "come2"};
  const auto degraded =
      plan_distributed_inference(model, chassis, fabric, survivors, 2, DType::kINT8);
  print_plan(degraded);

  // Fabric reconfiguration to compensate: nothing to gain here (already
  // 10G), but show the knob: drop to 1G and observe the transfer share.
  fabric.set_link_speed("switch0", "come0", 1.0);
  fabric.set_link_speed("switch0", "come2", 1.0);
  const auto slow = plan_distributed_inference(model, chassis, fabric, survivors, 2, DType::kINT8);
  std::printf("same split on a 1G fabric (transfer-bound check):\n");
  print_plan(slow);
  std::printf("fabric reconfigurations performed: %zu\n", fabric.reconfiguration_count());
  return 0;
}
