file(REMOVE_RECURSE
  "CMakeFiles/vedliot_reqs.dir/framework.cpp.o"
  "CMakeFiles/vedliot_reqs.dir/framework.cpp.o.d"
  "libvedliot_reqs.a"
  "libvedliot_reqs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_reqs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
