# Empty compiler generated dependencies file for vedliot_security.
# This may be replaced when dependencies are built.
