// T-PMP — the "highly optimized RISC-V Physical Memory Protection unit"
// for VexRiscv (Sec. IV-C).
//
// Reports (a) PMP check cost as a function of programmed region count —
// the linear priority scan is the hardware-relevant metric — and (b) the
// end-to-end overhead PMP enforcement adds to simulated firmware.

#include <chrono>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "security/pmp.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::security;

namespace {

PmpUnit make_pmp(std::size_t regions) {
  PmpUnit pmp(16);
  for (std::size_t i = 0; i < regions; ++i) {
    PmpEntry e;
    e.mode = AddressMatch::kNapot;
    e.addr = napot_encode(static_cast<std::uint32_t>(0x1000 * (i + 1)), 0x1000);
    e.r = e.w = e.x = true;
    pmp.configure(i, e);
  }
  return pmp;
}

/// A small memory-heavy firmware loop (checksums a buffer).
sim::Assembler checksum_firmware() {
  using namespace sim;
  Assembler a(kRamBase);
  a.li(t0, static_cast<std::int32_t>(kRamBase + 0x10000));
  a.li(t1, 1024);  // words
  a.li(a0, 0);
  const int loop = a.new_label();
  const int done = a.new_label();
  a.bind(loop);
  a.beq(t1, x0, done);
  a.lw(t2, t0, 0);
  a.add(a0, a0, t2);
  a.addi(t0, t0, 4);
  a.addi(t1, t1, -1);
  a.j(loop);
  a.bind(done);
  a.ecall();
  return a;
}

}  // namespace

void print_artifact() {
  bench::banner("T-PMP", "PMP unit: check cost vs region count, firmware overhead");

  Table t({"programmed regions", "checks/s (host)", "relative"});
  double base_rate = 0;
  for (std::size_t regions : {1u, 2u, 4u, 8u, 16u}) {
    PmpUnit pmp = make_pmp(regions);
    // time a fixed number of checks
    constexpr int kChecks = 2'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    bool acc = false;
    for (int i = 0; i < kChecks; ++i) {
      acc ^= pmp.check(static_cast<std::uint32_t>(0x1000 + (i % (0x1000 * regions))),
                       Access::kRead, Privilege::kUser);
    }
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(acc);
    const double rate = kChecks / std::chrono::duration<double>(t1 - t0).count();
    if (base_rate == 0) base_rate = rate;
    t.add_row({std::to_string(regions), fmt_eng(rate), fmt_ratio(rate / base_rate, 2)});
  }
  t.print(std::cout);

  // End-to-end: the same firmware with and without PMP enforcement.
  auto run = [](bool with_pmp) {
    sim::Machine m;
    if (with_pmp) {
      auto& pmp = m.enable_pmp(8);
      PmpEntry all;
      all.mode = AddressMatch::kTor;
      all.addr = 0xFFFFFFFF >> 2;
      all.r = all.w = all.x = true;
      pmp.configure(0, all);
    }
    auto fw = checksum_firmware();
    m.load_program(fw);
    const auto t0 = std::chrono::steady_clock::now();
    m.run();
    const auto t1 = std::chrono::steady_clock::now();
    return std::pair{m.cpu().instructions_retired(),
                     std::chrono::duration<double>(t1 - t0).count()};
  };
  const auto [instr_off, time_off] = run(false);
  const auto [instr_on, time_on] = run(true);
  std::printf("\nfirmware checksum loop: %llu instructions\n",
              static_cast<unsigned long long>(instr_off));
  std::printf("simulation wall time: pmp-off %.3f ms, pmp-on %.3f ms (overhead %.1f%%)\n",
              time_off * 1e3, time_on * 1e3, (time_on / time_off - 1.0) * 100.0);
  std::printf("architectural instruction count unchanged: %s\n",
              instr_off == instr_on ? "yes (PMP is transparent to correct code)" : "NO — BUG");
}

static void BM_PmpCheck(benchmark::State& state) {
  PmpUnit pmp = make_pmp(static_cast<std::size_t>(state.range(0)));
  std::uint32_t addr = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmp.check(addr, Access::kRead, Privilege::kUser));
    addr = (addr + 64) & 0xFFFF;
  }
}
BENCHMARK(BM_PmpCheck)->Arg(1)->Arg(4)->Arg(16);

static void BM_SimulatedFirmware(benchmark::State& state) {
  for (auto _ : state) {
    sim::Machine m;
    auto fw = checksum_firmware();
    m.load_program(fw);
    benchmark::DoNotOptimize(m.run());
  }
}
BENCHMARK(BM_SimulatedFirmware)->Unit(benchmark::kMicrosecond);

VEDLIOT_BENCH_MAIN()
