#!/usr/bin/env bash
# Regenerate BENCH_runtime.json — the checked-in execution-engine baseline
# (ResNet-50 sweep over batch {1,8} x threads {1,2,4} x {direct,gemm} conv).
#
# Usage: scripts/bench_runtime.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_runtime -j"$(nproc)"

# The sweep runs inside the artifact pass; skip the google-benchmark
# microbenchmarks (they are not part of the checked-in baseline).
VEDLIOT_BENCH_RUNTIME_JSON="$REPO_ROOT/BENCH_runtime.json" \
  "$BUILD_DIR/bench/bench_runtime" --benchmark_filter='^$'

echo "baseline written to $REPO_ROOT/BENCH_runtime.json"
