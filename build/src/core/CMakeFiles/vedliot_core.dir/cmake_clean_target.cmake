file(REMOVE_RECURSE
  "libvedliot_core.a"
)
