file(REMOVE_RECURSE
  "libvedliot_util.a"
)
