#pragma once
/// \file detection.hpp
/// \brief Synthetic detection workload for the Kenning quality pipeline
/// (Sec. III: Kenning "can automatically benchmark the processing quality
/// of a given neural network ... and [generate] recall/precision graphs
/// for detection algorithms").
///
/// A seeded scene generator produces ground-truth pedestrian boxes; a
/// parameterised detector model produces detections whose quality degrades
/// realistically (small objects missed more often, localisation jitter,
/// score-correlated confidence, background false positives). The
/// kenning::evaluate_detections machinery then produces the PR curve / AP.

#include <vector>

#include "kenning/metrics.hpp"
#include "util/rng.hpp"

namespace vedliot::apps {

/// One generated scene: ground-truth boxes within an image.
struct Scene {
  int image_id = 0;
  std::vector<kenning::GroundTruth> truths;
};

class SceneGenerator {
 public:
  struct Config {
    double image_size = 320.0;
    int max_objects = 4;           ///< uniform 0..max per scene
    double min_box = 12.0;         ///< smallest pedestrian extent (px)
    double max_box = 120.0;
    double aspect = 2.4;           ///< pedestrians are tall: h = aspect * w
  };

  SceneGenerator(Config config, std::uint64_t seed);

  Scene next();

 private:
  Config cfg_;
  Rng rng_;
  int next_id_ = 0;
};

/// Parameterised detector model.
class SimulatedDetector {
 public:
  struct Config {
    double max_recall = 0.98;      ///< detection probability for large objects
    double size50 = 16.0;          ///< box height at which recall halves
    double loc_jitter = 0.08;      ///< box jitter as a fraction of extent
    double fp_per_image = 0.3;     ///< expected background false positives
    double score_noise = 0.1;      ///< confidence noise
  };

  SimulatedDetector(Config config, std::uint64_t seed);

  /// Detection probability for an object of the given box height.
  double recall_for_height(double h) const;

  std::vector<kenning::Detection> detect(const Scene& scene, double image_size = 320.0);

 private:
  Config cfg_;
  Rng rng_;
};

/// Run `scenes` scenes through the detector and evaluate at the IoU
/// threshold — the full Kenning detection-quality pipeline.
kenning::DetectionEval run_detection_benchmark(SceneGenerator& scenes, SimulatedDetector& detector,
                                               std::size_t num_scenes,
                                               double iou_threshold = 0.5);

}  // namespace vedliot::apps
