#pragma once
/// \file instrument.hpp
/// \brief Shared observability conventions of the runtime executors: both
/// the float reference and the integer executor report through the same
/// metric names so dashboards and tests can compare backends directly.

#include <string>

#include "graph/op.hpp"
#include "obs/metrics.hpp"

namespace vedliot::runtime_detail {

/// Per-op-class node latency histogram, microseconds over [0, 10 ms).
/// One sample is added per executed (non-input) node, so the sample counts
/// across all op-class histograms sum to nodes_executed.
inline obs::Histogram& op_histogram(obs::MetricsRegistry& registry, OpKind kind) {
  return registry.histogram("vedliot.runtime.op." + std::string(op_name(kind)),
                            /*lo=*/0.0, /*hi=*/1e4, /*buckets=*/50);
}

inline constexpr const char* kRunsCounter = "vedliot.runtime.runs";
inline constexpr const char* kNodesCounter = "vedliot.runtime.nodes_executed";
inline constexpr const char* kSaturationsGauge = "vedliot.runtime.saturations";

}  // namespace vedliot::runtime_detail
