#pragma once
/// \file brownout.hpp
/// \brief Hysteretic brownout controller: which rung of the degradation
/// ladder the server should be on, given a scalar load signal.
///
/// Level 0 is full quality; higher levels are progressively cheaper
/// configurations (int8 precision, smaller admission batch, smaller
/// fallback model). The rungs themselves live here too since the PR 7 API
/// redesign: a BrownoutStep names a ModelVariant and carries the
/// runtime::ExecConfig the serving session runs under at that rung, so one
/// struct travels from ladder definition through Session::set_exec_config
/// and a shrink is visible wherever the session is shared (the dynamic
/// batcher reads the same cap).
///
/// The controller is deliberately sluggish in both directions: the load
/// must sit above the high watermark for `step_down_after` consecutive
/// observations before degrading one rung, and below the low watermark for
/// the (longer) `step_up_after` before recovering one rung, so a load level
/// between the watermarks holds the current rung and the server cannot flap
/// between qualities on a noisy signal.

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/exec_config.hpp"

namespace vedliot::serve {

/// One rung's model configuration. The graph provides the cost-model
/// workload (and, in execute mode, the weights actually run); it must
/// outlive the server.
struct ModelVariant {
  std::string name;            ///< "fp32", "int8", "fallback", ...
  const Graph* graph = nullptr;
  DType dtype = DType::kFP32;
  bool quantized = false;      ///< execute via make_quantized_session
};

/// One rung of the degradation ladder: which variant serves and the
/// execution-resource envelope (admission batch cap + intra-op threads) at
/// this level. ladder[0] is the healthy config. `exec.max_batch == 0`
/// means unlimited admission.
struct BrownoutStep {
  std::size_t variant = 0;
  runtime::ExecConfig exec;

  BrownoutStep() = default;
  BrownoutStep(std::size_t variant_, std::int64_t max_batch_, unsigned threads_ = 1)
      : variant(variant_), exec{max_batch_, threads_} {}
};

struct BrownoutConfig {
  double high_watermark = 0.75;  ///< load >= this counts toward degrading
  double low_watermark = 0.25;   ///< load <= this counts toward recovering
  int step_down_after = 3;       ///< consecutive hot observations per rung
  int step_up_after = 12;        ///< consecutive calm observations per rung
  int max_level = 1;             ///< deepest rung (ladder size - 1)
};

class BrownoutLadder {
 public:
  explicit BrownoutLadder(BrownoutConfig config);

  /// Ladder that owns its rungs: max_level is forced to steps.size() - 1
  /// and current() resolves to the active rung. \p steps must be non-empty;
  /// steps.front() is the healthy configuration.
  BrownoutLadder(BrownoutConfig config, std::vector<BrownoutStep> steps);

  /// Feed one load observation (the server samples once per control tick).
  /// Returns the level delta applied this observation: +1 stepped one rung
  /// down in quality, -1 recovered one rung, 0 held.
  int observe(double load);

  int level() const { return level_; }

  /// The active rung; throws Error unless constructed with steps.
  const BrownoutStep& current() const;

  /// The owned rungs (empty for the config-only constructor).
  const std::vector<BrownoutStep>& steps() const { return steps_; }

 private:
  BrownoutConfig cfg_;
  std::vector<BrownoutStep> steps_;
  int level_ = 0;
  int hot_streak_ = 0;
  int calm_streak_ = 0;
};

}  // namespace vedliot::serve
