#pragma once
/// \file robustness.hpp
/// \brief Output robustness service (Sec. IV-B, second direction):
/// "periodically submitting both the input and the output data to a
/// robustness service, which holds a copy of the DL model and can verify
/// the correctness of the output data" — catching systematic faults
/// injected into the deployed model at run time (hardware faults, attacks).

#include <cstdint>
#include <memory>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "runtime/session.hpp"
#include "util/rng.hpp"

namespace vedliot::safety {

/// Outcome of one submission to the robustness service. Submissions are
/// period-sampled, so "no fault flagged" comes in two distinct flavours:
/// the pair was never looked at vs. the pair was verified clean.
enum class CheckResult {
  kNotChecked,     ///< skipped by period sampling
  kCheckedOk,      ///< verified against the golden model, within tolerance
  kCheckedFaulty,  ///< verified and found divergent — systematic fault
};

std::string_view check_result_name(CheckResult r);

/// Holds a golden copy of the model and re-checks sampled (input, output)
/// pairs against it.
class RobustnessService {
 public:
  struct Config {
    std::size_t check_period = 8;  ///< verify every n-th submission
    double tolerance = 1e-4;       ///< max |golden - submitted| per element

    /// Optional metrics mirror (must outlive the service): counters
    /// `vedliot.safety.checks` / `vedliot.safety.faults` track checks_run()
    /// and faults_detected() 1:1, and the gauge
    /// `vedliot.safety.last_divergence` tracks last_divergence() — the same
    /// mirror contract the serving layer keeps for its event counters.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Takes its own clone of the (weights-materialized) graph — the golden
  /// reference is intentionally independent of the deployed instance.
  RobustnessService(const Graph& golden_model, Config config);

  /// Submit an observed pair; period sampling decides whether it is
  /// actually verified this round, and the result says what happened.
  CheckResult submit(const Tensor& input, const Tensor& output);

  /// Swap the golden reference — an OTA update moved the deployment to a
  /// new model, so correctness is now defined by the new weights. Counters
  /// keep running; only the reference (and its executor) are replaced.
  void replace_golden(const Graph& new_golden);

  std::size_t submissions() const { return submissions_; }
  std::size_t checks_run() const { return checks_; }
  std::size_t faults_detected() const { return faults_; }

  /// Max-abs |golden - submitted| divergence measured by the most recent
  /// *verified* submission (0 until the first check runs). Serving layers
  /// surface it in degraded-quality events so a checked-faulty response
  /// carries how far off it was.
  double last_divergence() const { return last_divergence_; }

 private:
  Graph golden_;
  std::unique_ptr<runtime::Session> session_;
  Config cfg_;
  std::size_t submissions_ = 0;
  std::size_t checks_ = 0;
  std::size_t faults_ = 0;
  double last_divergence_ = 0.0;
};

/// Run-time fault injector: emulates the systematic faults the service must
/// catch (bit flips in weights, zeroed channels, stuck activations).
class FaultInjector {
 public:
  explicit FaultInjector(Rng& rng) : rng_(rng) {}

  /// Flip one bit in each of n randomly-chosen weights. Float tensors flip
  /// a high-mantissa/low-exponent bit (visible, rarely inf/nan — like real
  /// SEUs); tensors on an int8-quantized node flip one of the 8 bits of the
  /// per-channel-quantized code and map back through the scale, which is
  /// what a flip in deployed int8 memory actually does to the dequantized
  /// value. With \p include_bias, bias tensors fault too (weights[1..]),
  /// not just the kernel.
  void flip_weight_bits(Graph& g, std::size_t n_bits, bool include_bias = false);

  /// Zero an entire randomly-chosen output channel of a random conv layer.
  void zero_random_channel(Graph& g);

  /// Scale all weights of one random layer (gain fault / attack).
  void scale_random_layer(Graph& g, float factor);

 private:
  std::vector<NodeId> parametric_nodes(const Graph& g) const;
  Rng& rng_;
};

}  // namespace vedliot::safety
