#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vedliot {

Graph::Graph(std::string name) : name_(std::move(name)) {}

NodeId Graph::add_input(const std::string& name, Shape shape) {
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.name = name;
  n.kind = OpKind::kInput;
  n.out_shape = std::move(shape);
  nodes_.push_back(std::move(n));
  ++version_;
  return nodes_.back().id;
}

NodeId Graph::add(OpKind kind, const std::string& name, std::vector<NodeId> inputs,
                  AttrMap attrs) {
  if (kind == OpKind::kInput) throw GraphError("use add_input for Input nodes");
  for (NodeId in : inputs) check_live(in);
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.name = name;
  n.kind = kind;
  n.attrs = std::move(attrs);
  n.inputs = std::move(inputs);
  n.out_shape = infer_shape(n);
  nodes_.push_back(std::move(n));
  ++version_;
  return nodes_.back().id;
}

Node& Graph::node(NodeId id) {
  VEDLIOT_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

const Node& Graph::node(NodeId id) const { return const_cast<Graph*>(this)->node(id); }

NodeId Graph::find(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (!n.dead && n.name == name) return n.id;
  }
  throw NotFound("no live node named " + name + " in graph " + name_);
}

std::size_t Graph::size() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(), [](const Node& n) { return !n.dead; }));
}

std::vector<NodeId> Graph::topo_order() const {
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (!n.dead) order.push_back(n.id);
  }
  return order;
}

std::vector<NodeId> Graph::outputs() const {
  std::vector<bool> consumed(nodes_.size(), false);
  for (const auto& n : nodes_) {
    if (n.dead) continue;
    for (NodeId in : n.inputs) consumed[static_cast<std::size_t>(in)] = true;
  }
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (!n.dead && !consumed[static_cast<std::size_t>(n.id)]) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Graph::inputs() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (!n.dead && n.kind == OpKind::kInput) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Graph::consumers(NodeId id) const {
  check_live(id);
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.dead) continue;
    if (std::find(n.inputs.begin(), n.inputs.end(), id) != n.inputs.end()) out.push_back(n.id);
  }
  return out;
}

void Graph::bypass(NodeId id) {
  Node& n = node(id);
  check_live(id);
  if (n.kind == OpKind::kInput) throw GraphError("cannot bypass an Input node");
  if (n.inputs.empty()) throw GraphError("cannot bypass a node without inputs: " + n.name);
  const NodeId replacement = n.inputs.front();
  for (auto& other : nodes_) {
    if (other.dead || other.id == id) continue;
    for (auto& in : other.inputs) {
      if (in == id) in = replacement;
    }
  }
  n.dead = true;
  ++version_;
}

void Graph::replace_input(NodeId nid, NodeId old_input, NodeId new_input) {
  check_live(nid);
  check_live(new_input);
  Node& n = node(nid);
  bool replaced = false;
  for (auto& in : n.inputs) {
    if (in == old_input) {
      in = new_input;
      replaced = true;
    }
  }
  if (!replaced) throw GraphError("replace_input: " + n.name + " does not consume the given node");
  ++version_;
}

void Graph::infer_all() {
  for (auto& n : nodes_) {
    if (n.dead || n.kind == OpKind::kInput) continue;
    n.out_shape = infer_shape(n);
  }
  ++version_;
}

void Graph::validate() const {
  for (const auto& n : nodes_) {
    if (n.dead) continue;
    for (NodeId in : n.inputs) {
      VEDLIOT_CHECK(in >= 0 && static_cast<std::size_t>(in) < nodes_.size(),
                    "node " + n.name + " references out-of-range input");
      VEDLIOT_CHECK(in < n.id, "node " + n.name + " violates topological id order");
      VEDLIOT_CHECK(!nodes_[static_cast<std::size_t>(in)].dead,
                    "node " + n.name + " consumes a dead node");
    }
    if (n.kind != OpKind::kInput) {
      // Re-inference must agree with the stored shape.
      const Shape s = infer_shape(n);
      VEDLIOT_CHECK(s == n.out_shape, "stale shape on node " + n.name);
    }
  }
  VEDLIOT_CHECK(!inputs().empty(), "graph " + name_ + " has no inputs");
  VEDLIOT_CHECK(!outputs().empty(), "graph " + name_ + " has no outputs");
}

namespace {

std::int64_t conv_out_extent(std::int64_t in, std::int64_t k, std::int64_t s, std::int64_t p) {
  const std::int64_t out = (in + 2 * p - k) / s + 1;
  if (out <= 0) {
    throw GraphError("convolution/pool output extent is non-positive (in=" + std::to_string(in) +
                     " k=" + std::to_string(k) + " s=" + std::to_string(s) +
                     " p=" + std::to_string(p) + ")");
  }
  return out;
}

bool broadcast_compatible(const Shape& a, const Shape& b) {
  if (a == b) return true;
  if (a.rank() != 4 || b.rank() != 4) return false;
  // channelwise broadcast: [N,C,1,1] against [N,C,H,W] (either side)
  auto is_cvec = [](const Shape& s) { return s.h() == 1 && s.w() == 1; };
  if (a.n() != b.n() || a.c() != b.c()) return false;
  return is_cvec(a) || is_cvec(b);
}

}  // namespace

Shape Graph::infer_shape(const Node& n) const {
  auto in_shape = [&](std::size_t i) -> const Shape& {
    if (i >= n.inputs.size()) {
      throw GraphError("node " + n.name + " (" + std::string(op_name(n.kind)) +
                       ") is missing input " + std::to_string(i));
    }
    return nodes_[static_cast<std::size_t>(n.inputs[i])].out_shape;
  };
  auto expect_inputs = [&](std::size_t k) {
    if (n.inputs.size() != k) {
      throw GraphError("node " + n.name + " (" + std::string(op_name(n.kind)) + ") expects " +
                       std::to_string(k) + " inputs, got " + std::to_string(n.inputs.size()));
    }
  };

  switch (n.kind) {
    case OpKind::kInput:
      return n.out_shape;

    case OpKind::kConv2d: {
      expect_inputs(1);
      const Shape& s = in_shape(0);
      if (s.rank() != 4) throw GraphError("Conv2d input must be rank-4: " + n.name);
      const auto oc = n.attrs.get_int("out_channels");
      const auto k = n.attrs.get_int("kernel");
      const auto st = n.attrs.get_int_or("stride", 1);
      const auto p = n.attrs.get_int_or("pad", 0);
      const auto g = n.attrs.get_int_or("groups", 1);
      if (s.c() % g != 0 || oc % g != 0) {
        throw GraphError("Conv2d groups must divide channels: " + n.name);
      }
      return Shape{s.n(), oc, conv_out_extent(s.h(), k, st, p), conv_out_extent(s.w(), k, st, p)};
    }

    case OpKind::kDense: {
      expect_inputs(1);
      const Shape& s = in_shape(0);
      if (s.rank() != 2) throw GraphError("Dense input must be rank-2 [N,F]: " + n.name);
      return Shape{s.dim(0), n.attrs.get_int("units")};
    }

    case OpKind::kBatchNorm:
    case OpKind::kRelu:
    case OpKind::kRelu6:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kHSigmoid:
    case OpKind::kHSwish:
    case OpKind::kMish:
    case OpKind::kTanh:
    case OpKind::kSoftmax:
    case OpKind::kIdentity:
      expect_inputs(1);
      return in_shape(0);

    case OpKind::kAdd:
    case OpKind::kMul: {
      expect_inputs(2);
      const Shape& a = in_shape(0);
      const Shape& b = in_shape(1);
      if (!broadcast_compatible(a, b)) {
        throw GraphError("elementwise shape mismatch at " + n.name + ": " + a.to_string() +
                         " vs " + b.to_string());
      }
      return a.numel() >= b.numel() ? a : b;
    }

    case OpKind::kConcat: {
      if (n.inputs.size() < 2) throw GraphError("Concat needs >=2 inputs: " + n.name);
      const auto axis = static_cast<std::size_t>(n.attrs.get_int_or("axis", 1));
      const Shape& first = in_shape(0);
      if (axis >= first.rank()) throw GraphError("Concat axis out of range: " + n.name);
      std::vector<std::int64_t> dims(first.dims().begin(), first.dims().end());
      for (std::size_t i = 1; i < n.inputs.size(); ++i) {
        const Shape& s = in_shape(i);
        if (s.rank() != first.rank()) throw GraphError("Concat rank mismatch: " + n.name);
        for (std::size_t d = 0; d < s.rank(); ++d) {
          if (d == axis) continue;
          if (s.dim(d) != first.dim(d)) {
            throw GraphError("Concat non-axis dim mismatch at " + n.name);
          }
        }
        dims[axis] += s.dim(axis);
      }
      return Shape{std::move(dims)};
    }

    case OpKind::kMaxPool:
    case OpKind::kAvgPool: {
      expect_inputs(1);
      const Shape& s = in_shape(0);
      if (s.rank() != 4) throw GraphError("pooling input must be rank-4: " + n.name);
      const auto k = n.attrs.get_int("kernel");
      const auto st = n.attrs.get_int_or("stride", k);
      const auto p = n.attrs.get_int_or("pad", 0);
      return Shape{s.n(), s.c(), conv_out_extent(s.h(), k, st, p), conv_out_extent(s.w(), k, st, p)};
    }

    case OpKind::kGlobalAvgPool: {
      expect_inputs(1);
      const Shape& s = in_shape(0);
      if (s.rank() != 4) throw GraphError("GlobalAvgPool input must be rank-4: " + n.name);
      return Shape{s.n(), s.c(), 1, 1};
    }

    case OpKind::kUpsample: {
      expect_inputs(1);
      const Shape& s = in_shape(0);
      if (s.rank() != 4) throw GraphError("Upsample input must be rank-4: " + n.name);
      const auto scale = n.attrs.get_int("scale");
      if (scale < 1) throw GraphError("Upsample scale must be >=1: " + n.name);
      return Shape{s.n(), s.c(), s.h() * scale, s.w() * scale};
    }

    case OpKind::kFlatten: {
      expect_inputs(1);
      const Shape& s = in_shape(0);
      if (s.rank() < 2) throw GraphError("Flatten input must be rank>=2: " + n.name);
      std::int64_t rest = 1;
      for (std::size_t d = 1; d < s.rank(); ++d) rest *= s.dim(d);
      return Shape{s.dim(0), rest};
    }
  }
  throw GraphError("shape inference not implemented for " + std::string(op_name(n.kind)));
}

void Graph::check_live(NodeId id) const {
  VEDLIOT_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(), "node id out of range");
  if (nodes_[static_cast<std::size_t>(id)].dead) {
    throw GraphError("node " + nodes_[static_cast<std::size_t>(id)].name + " is dead");
  }
}

std::int64_t Graph::param_count(NodeId id) const {
  const Node& n = node(id);
  switch (n.kind) {
    case OpKind::kConv2d: {
      const Shape& s = node(n.inputs.at(0)).out_shape;
      const auto oc = n.attrs.get_int("out_channels");
      const auto k = n.attrs.get_int("kernel");
      const auto g = n.attrs.get_int_or("groups", 1);
      const auto bias = n.attrs.get_int_or("bias", 1);
      return oc * (s.c() / g) * k * k + (bias ? oc : 0);
    }
    case OpKind::kDense: {
      const Shape& s = node(n.inputs.at(0)).out_shape;
      const auto units = n.attrs.get_int("units");
      const auto bias = n.attrs.get_int_or("bias", 1);
      return units * s.dim(1) + (bias ? units : 0);
    }
    case OpKind::kBatchNorm: {
      const Shape& s = node(n.inputs.at(0)).out_shape;
      const std::int64_t c = s.rank() == 4 ? s.c() : s.dim(1);
      return 4 * c;
    }
    default:
      return 0;
  }
}

std::int64_t Graph::total_params() const {
  std::int64_t total = 0;
  for (const auto& n : nodes_) {
    if (!n.dead) total += param_count(n.id);
  }
  return total;
}

void Graph::materialize_weights(Rng& rng) {
  for (auto& n : nodes_) {
    if (n.dead || !op_has_weights(n.kind)) continue;
    if (!n.weights.empty()) continue;
    const Shape& in = nodes_[static_cast<std::size_t>(n.inputs.at(0))].out_shape;
    switch (n.kind) {
      case OpKind::kConv2d: {
        const auto oc = n.attrs.get_int("out_channels");
        const auto k = n.attrs.get_int("kernel");
        const auto g = n.attrs.get_int_or("groups", 1);
        const auto ic = in.c() / g;
        const double fan_in = static_cast<double>(ic * k * k);
        const double std = std::sqrt(2.0 / fan_in);
        n.weights.emplace_back(Shape{oc, ic, k, k},
                               rng.normal_vector(static_cast<std::size_t>(oc * ic * k * k), 0.0, std));
        if (n.attrs.get_int_or("bias", 1)) {
          n.weights.emplace_back(Shape{oc}, rng.normal_vector(static_cast<std::size_t>(oc), 0.0, 0.01));
        }
        break;
      }
      case OpKind::kDense: {
        const auto units = n.attrs.get_int("units");
        const auto f = in.dim(1);
        const double std = std::sqrt(2.0 / static_cast<double>(f));
        n.weights.emplace_back(Shape{units, f},
                               rng.normal_vector(static_cast<std::size_t>(units * f), 0.0, std));
        if (n.attrs.get_int_or("bias", 1)) {
          n.weights.emplace_back(Shape{units},
                                 rng.normal_vector(static_cast<std::size_t>(units), 0.0, 0.01));
        }
        break;
      }
      case OpKind::kBatchNorm: {
        const std::int64_t c = in.rank() == 4 ? in.c() : in.dim(1);
        const auto cs = static_cast<std::size_t>(c);
        n.weights.emplace_back(Shape{c}, rng.uniform_vector(cs, 0.8, 1.2));   // gamma
        n.weights.emplace_back(Shape{c}, rng.normal_vector(cs, 0.0, 0.05));   // beta
        n.weights.emplace_back(Shape{c}, rng.normal_vector(cs, 0.0, 0.1));    // running mean
        n.weights.emplace_back(Shape{c}, rng.uniform_vector(cs, 0.5, 1.5));   // running var
        break;
      }
      default:
        break;
    }
  }
  ++version_;
}

bool Graph::weights_materialized() const {
  for (const auto& n : nodes_) {
    if (!n.dead && op_has_weights(n.kind) && n.weights.empty()) return false;
  }
  return true;
}

Graph Graph::clone() const {
  Graph g(name_);
  g.nodes_ = nodes_;
  return g;
}

Graph rebatched(const Graph& graph, std::int64_t batch) {
  VEDLIOT_CHECK(batch >= 1, "rebatched requires batch >= 1");
  Graph g = graph.clone();
  for (NodeId id : g.inputs()) {
    Node& n = g.node(id);
    VEDLIOT_CHECK(n.out_shape.rank() >= 1,
                  "rebatched requires rank >= 1 inputs, got " + n.out_shape.to_string());
    std::vector<std::int64_t> dims(n.out_shape.dims().begin(), n.out_shape.dims().end());
    dims[0] = batch;
    n.out_shape = Shape(dims);
  }
  g.touch();
  g.infer_all();
  return g;
}

}  // namespace vedliot
