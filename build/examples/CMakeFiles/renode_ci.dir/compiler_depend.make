# Empty compiler generated dependencies file for renode_ci.
# This may be replaced when dependencies are built.
