# Empty compiler generated dependencies file for bench_hw_aware.
# This may be replaced when dependencies are built.
