#include "safety/ota_transport.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace vedliot::safety {

OtaChunker::OtaChunker(std::span<const std::uint8_t> package, std::size_t chunk_bytes)
    : package_(package.begin(), package.end()), chunk_bytes_(chunk_bytes) {
  VEDLIOT_CHECK(!package_.empty(), "cannot chunk an empty package");
  VEDLIOT_CHECK(chunk_bytes_ >= 64, "OTA chunks need at least 64 bytes of payload");
  chunk_count_ = (package_.size() + chunk_bytes_ - 1) / chunk_bytes_;
  package_crc_ = util::crc32(std::span<const std::uint8_t>(package_));
}

OtaChunk OtaChunker::chunk(std::uint32_t seq) const {
  VEDLIOT_CHECK(seq < chunk_count_, "chunk seq " + std::to_string(seq) +
                                        " out of range (count " +
                                        std::to_string(chunk_count_) + ")");
  OtaChunk c;
  c.seq = seq;
  c.offset = static_cast<std::uint64_t>(seq) * chunk_bytes_;
  const std::size_t end =
      std::min(package_.size(), static_cast<std::size_t>(c.offset) + chunk_bytes_);
  c.payload.assign(package_.begin() + static_cast<std::ptrdiff_t>(c.offset),
                   package_.begin() + static_cast<std::ptrdiff_t>(end));
  c.crc = util::crc32(std::span<const std::uint8_t>(c.payload));
  return c;
}

OtaReceiver::OtaReceiver(std::uint64_t total_bytes, std::size_t chunk_bytes,
                         std::uint32_t package_crc)
    : buffer_(static_cast<std::size_t>(total_bytes)),
      chunk_bytes_(chunk_bytes),
      package_crc_(package_crc) {
  VEDLIOT_CHECK(total_bytes > 0, "an OTA transfer announces a non-empty package");
  VEDLIOT_CHECK(chunk_bytes_ >= 64, "OTA chunks need at least 64 bytes of payload");
  chunk_count_ = (buffer_.size() + chunk_bytes_ - 1) / chunk_bytes_;
  have_.assign(chunk_count_, false);
}

OtaReceiver::Accept OtaReceiver::accept(const OtaChunk& chunk) {
  if (chunk.seq >= chunk_count_) return Accept::kBogus;
  const std::uint64_t expect_offset = static_cast<std::uint64_t>(chunk.seq) * chunk_bytes_;
  if (chunk.offset != expect_offset) return Accept::kBogus;
  const std::size_t expect_len =
      std::min(buffer_.size() - static_cast<std::size_t>(expect_offset), chunk_bytes_);
  if (chunk.payload.size() != expect_len) return Accept::kBogus;
  if (util::crc32(std::span<const std::uint8_t>(chunk.payload)) != chunk.crc) {
    return Accept::kCorrupt;
  }
  if (have_[chunk.seq]) return Accept::kDuplicate;
  std::copy(chunk.payload.begin(), chunk.payload.end(),
            buffer_.begin() + static_cast<std::ptrdiff_t>(expect_offset));
  have_[chunk.seq] = true;
  ++received_;
  received_bytes_ += chunk.payload.size();
  return Accept::kAccepted;
}

std::uint32_t OtaReceiver::next_needed() const {
  for (std::size_t i = 0; i < have_.size(); ++i) {
    if (!have_[i]) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(chunk_count_);
}

bool OtaReceiver::has(std::uint32_t seq) const {
  return seq < chunk_count_ && have_[seq];
}

const std::vector<std::uint8_t>& OtaReceiver::assemble() const {
  VEDLIOT_CHECK(complete(), "cannot assemble: " + std::to_string(chunk_count_ - received_) +
                                " of " + std::to_string(chunk_count_) +
                                " chunks still missing");
  VEDLIOT_CHECK(util::crc32(std::span<const std::uint8_t>(buffer_)) == package_crc_,
                "assembled package fails its whole-package CRC");
  return buffer_;
}

OtaSender::OtaSender(Config config, std::uint64_t seed) : cfg_(config), rng_(seed) {
  VEDLIOT_CHECK(cfg_.window >= 1, "sender window must be >= 1");
  VEDLIOT_CHECK(cfg_.max_chunk_attempts >= 1, "chunk attempt cap must be >= 1");
  VEDLIOT_CHECK(cfg_.backoff_base_s > 0 && cfg_.backoff_cap_s > 0,
                "backoff base and cap must be positive");
  VEDLIOT_CHECK(cfg_.backoff_floor_s >= 0, "backoff floor must be >= 0");
}

std::vector<std::uint32_t> OtaSender::select(const OtaReceiver& receiver) const {
  std::vector<std::uint32_t> out;
  const std::size_t count = receiver.chunk_count();
  for (std::uint32_t seq = receiver.next_needed();
       seq < count && out.size() < cfg_.window; ++seq) {
    if (!receiver.has(seq)) out.push_back(seq);
  }
  return out;
}

double OtaSender::on_result(std::uint32_t seq, bool accepted) {
  if (attempts_.size() <= seq) attempts_.resize(seq + 1, 0);
  ++sent_;
  ++attempts_[seq];
  if (accepted) return 0.0;
  ++retries_;
  if (attempts_[seq] >= cfg_.max_chunk_attempts) exhausted_ = true;
  return rng_.backoff_s(cfg_.backoff_base_s, cfg_.backoff_cap_s, attempts_[seq] - 1,
                        cfg_.backoff_floor_s);
}

std::string_view ota_accept_name(OtaReceiver::Accept a) {
  switch (a) {
    case OtaReceiver::Accept::kAccepted: return "accepted";
    case OtaReceiver::Accept::kDuplicate: return "duplicate";
    case OtaReceiver::Accept::kCorrupt: return "corrupt";
    case OtaReceiver::Accept::kBogus: return "bogus";
  }
  throw InvalidArgument("unknown accept result");
}

}  // namespace vedliot::safety
