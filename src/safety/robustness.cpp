#include "safety/robustness.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace vedliot::safety {

RobustnessService::RobustnessService(const Graph& golden_model, Config config)
    : golden_(golden_model.clone()), cfg_(config) {
  VEDLIOT_CHECK(cfg_.check_period >= 1, "check period must be >= 1");
  session_ = runtime::make_session(golden_, {});
}

void RobustnessService::replace_golden(const Graph& new_golden) {
  session_.reset();  // the session holds a reference into the old golden graph
  golden_ = new_golden.clone();
  session_ = runtime::make_session(golden_, {});
}

std::string_view check_result_name(CheckResult r) {
  switch (r) {
    case CheckResult::kNotChecked: return "not-checked";
    case CheckResult::kCheckedOk: return "checked-ok";
    case CheckResult::kCheckedFaulty: return "checked-faulty";
  }
  throw InvalidArgument("unknown check result");
}

CheckResult RobustnessService::submit(const Tensor& input, const Tensor& output) {
  ++submissions_;
  if (submissions_ % cfg_.check_period != 0) return CheckResult::kNotChecked;
  ++checks_;
  const Tensor golden = session_->run_single(input);
  VEDLIOT_CHECK(golden.shape() == output.shape(),
                "robustness service: output shape mismatch");
  const float diff = max_abs_diff(golden, output);
  last_divergence_ = diff;
  CheckResult result = CheckResult::kCheckedOk;
  if (diff > cfg_.tolerance) {
    ++faults_;
    result = CheckResult::kCheckedFaulty;
  }
  if (cfg_.metrics) {
    cfg_.metrics->counter("vedliot.safety.checks").inc();
    if (result == CheckResult::kCheckedFaulty) {
      cfg_.metrics->counter("vedliot.safety.faults").inc();
    }
    cfg_.metrics->gauge("vedliot.safety.last_divergence").set(last_divergence_);
  }
  return result;
}

std::vector<NodeId> FaultInjector::parametric_nodes(const Graph& g) const {
  std::vector<NodeId> out;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if ((n.kind == OpKind::kConv2d || n.kind == OpKind::kDense) && !n.weights.empty()) {
      out.push_back(id);
    }
  }
  return out;
}

namespace {

/// Per-output-channel int8 scale, matching the QuantizedExecutor's
/// preparation convention (amax over the channel / 127, 1.0 for an
/// all-zero channel).
double int8_channel_scale(const Tensor& w, std::size_t idx) {
  const auto oc = w.shape().dim(0);
  const auto per = static_cast<std::size_t>(w.numel() / oc);
  const std::size_t chan = idx / per;
  const auto span = w.data().subspan(chan * per, per);
  double amax = 0;
  for (float v : span) amax = std::max(amax, std::abs(static_cast<double>(v)));
  return amax > 0 ? amax / 127.0 : 1.0;
}

}  // namespace

void FaultInjector::flip_weight_bits(Graph& g, std::size_t n_bits, bool include_bias) {
  const auto nodes = parametric_nodes(g);
  VEDLIOT_CHECK(!nodes.empty(), "graph has no parametric nodes to fault");
  for (std::size_t i = 0; i < n_bits; ++i) {
    const auto nid = nodes[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    Node& n = g.node(nid);
    std::size_t tensor = 0;
    if (include_bias && n.weights.size() > 1) {
      tensor = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n.weights.size()) - 1));
    }
    Tensor& w = n.weights[tensor];
    const auto idx = static_cast<std::size_t>(rng_.uniform_int(0, w.numel() - 1));
    if (n.weight_dtype == DType::kINT8 && tensor == 0) {
      // Deployed int8 memory: flip one of the 8 bits of the per-channel
      // quantized code, then dequantize — the fault as the executor's
      // integer kernels would actually see it.
      const double ws = int8_channel_scale(w, idx);
      const auto q = static_cast<std::int32_t>(std::clamp(
          std::lround(static_cast<double>(w.at(idx)) / ws), long{-127}, long{127}));
      const int bit = static_cast<int>(rng_.uniform_int(0, 7));
      const auto flipped =
          static_cast<std::int8_t>(static_cast<std::uint8_t>(q) ^ (1u << bit));
      w.at(idx) = static_cast<float>(static_cast<double>(flipped) * ws);
    } else {
      // Flip within bits 20..29 (high mantissa / low exponent): visible but
      // rarely produces inf/nan, like real SEUs in practice.
      const int bit = static_cast<int>(rng_.uniform_int(20, 29));
      auto u = std::bit_cast<std::uint32_t>(w.at(idx));
      u ^= (1u << bit);
      w.at(idx) = std::bit_cast<float>(u);
    }
  }
}

void FaultInjector::zero_random_channel(Graph& g) {
  const auto nodes = parametric_nodes(g);
  VEDLIOT_CHECK(!nodes.empty(), "graph has no parametric nodes to fault");
  const auto nid = nodes[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
  Tensor& w = g.node(nid).weights[0];
  const auto oc = w.shape().dim(0);
  const auto per = static_cast<std::size_t>(w.numel() / oc);
  const auto c = static_cast<std::size_t>(rng_.uniform_int(0, oc - 1));
  auto chan = w.data().subspan(c * per, per);
  std::fill(chan.begin(), chan.end(), 0.0f);
}

void FaultInjector::scale_random_layer(Graph& g, float factor) {
  const auto nodes = parametric_nodes(g);
  VEDLIOT_CHECK(!nodes.empty(), "graph has no parametric nodes to fault");
  const auto nid = nodes[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
  for (float& v : g.node(nid).weights[0].data()) v *= factor;
}

}  // namespace vedliot::safety
