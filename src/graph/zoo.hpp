#pragma once
/// \file zoo.hpp
/// \brief Model zoo: the evaluation networks from the paper.
///
/// Sec. II-C evaluates ResNet50, MobileNetV3 and YoloV4; Sec. V's use cases
/// add small application networks (gesture/face/object/speech for the smart
/// mirror, motor-condition and arc-detection classifiers). All builders
/// reconstruct the published layer topology so that analytic MAC/parameter
/// counts land within a few percent of the canonical numbers.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace vedliot::zoo {

/// ResNet-50 (He et al.) — ~25.5 M params, ~4.1 GMACs at 224x224.
Graph resnet50(std::int64_t batch = 1, std::int64_t classes = 1000, std::int64_t image = 224);

/// MobileNetV3-Large (Howard et al.) — ~5.4 M params, ~219 MMACs at 224x224.
Graph mobilenet_v3_large(std::int64_t batch = 1, std::int64_t classes = 1000,
                         std::int64_t image = 224);

/// YOLOv4 (Bochkovskiy et al.): CSPDarknet53 + SPP + PANet + 3 heads —
/// ~64 M params, ~30 GMACs at 416x416.
Graph yolov4(std::int64_t batch = 1, std::int64_t image = 416, std::int64_t classes = 80);

/// EfficientNet-Lite0 (the mobile-friendly EfficientNet variant: no SE, no
/// swish) — ~4.7 M params, ~400 MMACs at 224x224.
Graph efficientnet_lite0(std::int64_t batch = 1, std::int64_t classes = 1000,
                         std::int64_t image = 224);

/// Generic small MLP: Dense/Relu stack + softmax classifier head.
Graph micro_mlp(const std::string& name, std::int64_t batch, std::int64_t in_features,
                std::vector<std::int64_t> hidden, std::int64_t classes);

/// Generic small CNN (conv-bn-relu x3 + pool + dense head).
Graph micro_cnn(const std::string& name, std::int64_t batch, std::int64_t in_channels,
                std::int64_t image, std::int64_t classes, std::int64_t width = 16);

// -- Smart-mirror networks (Fig. 5: gesture, face, object, speech) --------
Graph gesture_net(std::int64_t batch = 1);   ///< 96x96 gray, 5 gestures
Graph face_net(std::int64_t batch = 1);      ///< 112x112 RGB, 128-d embedding head
Graph object_det_net(std::int64_t batch = 1);///< tiny single-scale detector, 160x160
Graph speech_net(std::int64_t batch = 1);    ///< keyword spotting on 49x10 MFCC

// -- Industrial IoT networks (Sec. V-B) ------------------------------------
Graph motor_net(std::int64_t batch = 1);     ///< vibration-spectrum MLP, 4 states
Graph arc_net(std::int64_t batch = 1);       ///< spectrogram CNN, arc / no-arc

// -- Automotive (Sec. V-A) --------------------------------------------------
Graph pedestrian_net(std::int64_t batch = 1, std::int64_t image = 320);  ///< PAEB detector

}  // namespace vedliot::zoo
