#pragma once
/// \file package.hpp
/// \brief Deployable model packages (Sec. III steps 5-6: compile and ship
/// the model to the target).
///
/// A package is a self-contained binary blob: the textual graph plus all
/// weight tensors. For field deployment over untrusted links, packages can
/// additionally be sealed (ChaCha20 + HMAC-SHA256 under a key derived from
/// the device's provisioning secret), so only the target device — after
/// remote attestation — can open them. This is the "model protection"
/// half of the end-to-end trust story.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "security/crypto.hpp"

namespace vedliot {

/// Serialize the graph structure AND weights into one binary blob.
std::vector<std::uint8_t> pack_model(const Graph& g);

/// Reconstruct a graph (with weights) from a package. Throws GraphError on
/// malformed input.
Graph unpack_model(std::span<const std::uint8_t> package);

/// An encrypted, authenticated package for field deployment.
struct SealedModel {
  std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> ciphertext;
  security::Digest mac{};
  security::Digest model_measurement{};  ///< sha256 of the plaintext package
};

/// Encrypt a model package to a device key (from
/// security::AttestationAuthority::provision). \p nonce_counter must be
/// unique per (key, model) pair — callers typically use a version number.
SealedModel seal_model(const Graph& g, const security::Key& device_key,
                       std::uint32_t nonce_counter);

/// Decrypt + authenticate + unpack; throws vedliot::Error if the MAC fails
/// (wrong device, tampered package).
Graph unseal_model(const SealedModel& sealed, const security::Key& device_key);

}  // namespace vedliot
