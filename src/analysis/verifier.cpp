#include "analysis/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "util/error.hpp"

namespace vedliot::analysis {

namespace {

// ---------------------------------------------------------------------------
// Per-OpKind contracts
// ---------------------------------------------------------------------------

enum class AttrType { kInt, kFloat, kStr, kInts };

struct AttrSpec {
  const char* name;
  AttrType type;
  bool required;
};

struct OpContract {
  std::size_t min_inputs;
  std::size_t max_inputs;  // SIZE_MAX for variadic (Concat)
  std::vector<AttrSpec> attrs;
};

constexpr std::size_t kVariadic = static_cast<std::size_t>(-1);

/// Attributes legal on every op. act_scale is stamped onto all live nodes by
/// calibrate_activations; the fusion tags are legal only on Conv2d/Dense and
/// get their own specs there.
const std::vector<AttrSpec>& common_attrs() {
  static const std::vector<AttrSpec> kCommon = {
      {"act_scale", AttrType::kFloat, false},
  };
  return kCommon;
}

const OpContract& contract_for(OpKind kind) {
  static const std::map<OpKind, OpContract> kContracts = [] {
    std::map<OpKind, OpContract> m;
    const std::vector<AttrSpec> fusable = {
        {"fused_act", AttrType::kStr, false},   {"fused_alpha", AttrType::kFloat, false},
        {"fused_bn", AttrType::kInt, false},    {"pruned_out_channels", AttrType::kInt, false},
        {"bias", AttrType::kInt, false},
    };
    OpContract conv{1, 1, {{"out_channels", AttrType::kInt, true},
                           {"kernel", AttrType::kInt, true},
                           {"stride", AttrType::kInt, false},
                           {"pad", AttrType::kInt, false},
                           {"groups", AttrType::kInt, false}}};
    conv.attrs.insert(conv.attrs.end(), fusable.begin(), fusable.end());
    m[OpKind::kConv2d] = std::move(conv);

    OpContract dense{1, 1, {{"units", AttrType::kInt, true}}};
    dense.attrs.insert(dense.attrs.end(), fusable.begin(), fusable.end());
    m[OpKind::kDense] = std::move(dense);

    m[OpKind::kInput] = {0, 0, {}};
    m[OpKind::kBatchNorm] = {1, 1, {{"epsilon", AttrType::kFloat, false}}};
    m[OpKind::kLeakyRelu] = {1, 1, {{"alpha", AttrType::kFloat, false}}};
    for (OpKind k : {OpKind::kRelu, OpKind::kRelu6, OpKind::kSigmoid, OpKind::kHSigmoid,
                     OpKind::kHSwish, OpKind::kMish, OpKind::kTanh, OpKind::kSoftmax,
                     OpKind::kFlatten, OpKind::kIdentity, OpKind::kGlobalAvgPool}) {
      m[k] = {1, 1, {}};
    }
    m[OpKind::kAdd] = {2, 2, {}};
    m[OpKind::kMul] = {2, 2, {}};
    m[OpKind::kConcat] = {2, kVariadic, {{"axis", AttrType::kInt, false}}};
    const OpContract pool{1, 1, {{"kernel", AttrType::kInt, true},
                                 {"stride", AttrType::kInt, false},
                                 {"pad", AttrType::kInt, false}}};
    m[OpKind::kMaxPool] = pool;
    m[OpKind::kAvgPool] = pool;
    m[OpKind::kUpsample] = {1, 1, {{"scale", AttrType::kInt, true}}};
    return m;
  }();
  auto it = kContracts.find(kind);
  VEDLIOT_ASSERT(it != kContracts.end());
  return it->second;
}

const char* attr_type_name(AttrType t) {
  switch (t) {
    case AttrType::kInt:
      return "int";
    case AttrType::kFloat:
      return "float";
    case AttrType::kStr:
      return "str";
    case AttrType::kInts:
      return "ints";
  }
  return "?";
}

bool attr_type_matches(const AttrValue& v, AttrType t) {
  switch (t) {
    case AttrType::kInt:
      return std::holds_alternative<std::int64_t>(v);
    case AttrType::kFloat:
      return std::holds_alternative<double>(v);
    case AttrType::kStr:
      return std::holds_alternative<std::string>(v);
    case AttrType::kInts:
      return std::holds_alternative<std::vector<std::int64_t>>(v);
  }
  return false;
}

/// Domain constraint for a (well-typed) attribute value; empty string = ok.
std::string attr_value_problem(const std::string& name, const AttrValue& v) {
  auto ival = [&]() { return std::get<std::int64_t>(v); };
  auto fval = [&]() { return std::get<double>(v); };
  if (name == "out_channels" || name == "kernel" || name == "units" || name == "groups" ||
      name == "stride" || name == "pruned_out_channels") {
    if (ival() < 1) return name + " must be >= 1, got " + std::to_string(ival());
  } else if (name == "pad" || name == "axis") {
    if (ival() < 0) return name + " must be >= 0, got " + std::to_string(ival());
  } else if (name == "scale") {
    if (ival() < 1) return "scale must be >= 1, got " + std::to_string(ival());
  } else if (name == "bias" || name == "fused_bn") {
    if (ival() != 0 && ival() != 1) return name + " must be 0 or 1, got " + std::to_string(ival());
  } else if (name == "epsilon") {
    if (!(fval() > 0.0) || !std::isfinite(fval())) return "epsilon must be finite and > 0";
  } else if (name == "act_scale") {
    if (!(fval() > 0.0) || !std::isfinite(fval())) return "act_scale must be finite and > 0";
  } else if (name == "alpha" || name == "fused_alpha") {
    if (!std::isfinite(fval())) return name + " must be finite";
  }
  return {};
}

// ---------------------------------------------------------------------------
// Group passes
// ---------------------------------------------------------------------------

struct Context {
  const Graph& g;
  std::vector<NodeId> live;
  /// Nodes with structural defects; weight/shape checks skip them because
  /// their contracts can't be evaluated meaningfully.
  std::set<NodeId> broken;
};

bool inputs_in_range(const Graph& g, const Node& n) {
  return std::all_of(n.inputs.begin(), n.inputs.end(), [&](NodeId in) {
    return in >= 0 && static_cast<std::size_t>(in) < g.total_nodes();
  });
}

void check_ir(Context& ctx, Report& rep) {
  const Graph& g = ctx.g;

  if (g.inputs().empty()) {
    rep.add(Severity::kError, "ir.graph.no_inputs", "graph has no live Input nodes");
  }
  if (g.outputs().empty()) {
    rep.add(Severity::kError, "ir.graph.no_outputs", "graph has no outputs (all nodes consumed)");
  }

  std::map<std::string, NodeId> names;
  for (NodeId id : ctx.live) {
    const Node& n = g.node(id);

    if (n.name.empty()) {
      rep.add(Severity::kWarning, "ir.name.empty", n, "node has an empty name");
    } else {
      auto [it, inserted] = names.emplace(n.name, id);
      if (!inserted) {
        rep.add(Severity::kWarning, "ir.name.duplicate", n,
                "name also used by live node #" + std::to_string(it->second) +
                    "; find() resolves to the first");
      }
    }

    // Edge validity.
    for (NodeId in : n.inputs) {
      if (in < 0 || static_cast<std::size_t>(in) >= g.total_nodes()) {
        rep.add(Severity::kError, "ir.input.range", n,
                "references out-of-range input id " + std::to_string(in));
        ctx.broken.insert(id);
        continue;
      }
      if (in >= n.id) {
        rep.add(Severity::kError, "ir.input.order", n,
                "input id " + std::to_string(in) + " violates topological id order");
        ctx.broken.insert(id);
      }
      if (g.node(in).dead) {
        rep.add(Severity::kError, "ir.input.dead", n,
                "consumes dead node " + g.node(in).name);
        ctx.broken.insert(id);
      }
    }

    // Arity.
    const OpContract& c = contract_for(n.kind);
    if (n.inputs.size() < c.min_inputs ||
        (c.max_inputs != kVariadic && n.inputs.size() > c.max_inputs)) {
      std::string want = c.max_inputs == kVariadic
                             ? ">= " + std::to_string(c.min_inputs)
                             : (c.min_inputs == c.max_inputs
                                    ? std::to_string(c.min_inputs)
                                    : std::to_string(c.min_inputs) + ".." +
                                          std::to_string(c.max_inputs));
      rep.add(Severity::kError, "ir.arity", n,
              std::string(op_name(n.kind)) + " expects " + want + " inputs, got " +
                  std::to_string(n.inputs.size()));
      ctx.broken.insert(id);
    }

    // Attribute schema: required presence, type, value domain, unknown keys.
    std::set<std::string> known;
    auto check_spec = [&](const AttrSpec& spec) {
      known.insert(spec.name);
      if (!n.attrs.has(spec.name)) {
        if (spec.required) {
          rep.add(Severity::kError, "ir.attr.missing", n,
                  std::string(op_name(n.kind)) + " requires attr '" + spec.name + "'");
          ctx.broken.insert(id);
        }
        return;
      }
      const AttrValue& v = n.attrs.raw().at(spec.name);
      if (!attr_type_matches(v, spec.type)) {
        rep.add(Severity::kError, "ir.attr.type", n,
                "attr '" + std::string(spec.name) + "' must be " + attr_type_name(spec.type));
        ctx.broken.insert(id);
        return;
      }
      const std::string problem = attr_value_problem(spec.name, v);
      if (!problem.empty()) {
        rep.add(Severity::kError, "ir.attr.value", n, problem);
        ctx.broken.insert(id);
      }
    };
    for (const AttrSpec& spec : c.attrs) check_spec(spec);
    for (const AttrSpec& spec : common_attrs()) check_spec(spec);
    for (const auto& [key, value] : n.attrs.raw()) {
      if (!known.count(key)) {
        rep.add(Severity::kWarning, "ir.attr.unknown", n,
                "attr '" + key + "' is not part of the " + std::string(op_name(n.kind)) +
                    " contract");
      }
    }

    // Shapes. Input nodes carry a user-provided shape: require positive dims.
    if (n.kind == OpKind::kInput) {
      const auto& dims = n.out_shape.dims();
      if (dims.empty() ||
          std::any_of(dims.begin(), dims.end(), [](std::int64_t d) { return d <= 0; })) {
        rep.add(Severity::kError, "ir.shape.invalid", n,
                "Input shape " + n.out_shape.to_string() + " has non-positive dims");
        ctx.broken.insert(id);
      }
    } else if (!ctx.broken.count(id) && inputs_in_range(g, n)) {
      try {
        const Shape s = g.inferred_shape(id);
        if (!(s == n.out_shape)) {
          rep.add(Severity::kError, "ir.shape.stale", n,
                  "stored shape " + n.out_shape.to_string() + " != inferred " + s.to_string());
        }
      } catch (const Error& e) {
        rep.add(Severity::kError, "ir.shape.invalid", n, e.what());
        ctx.broken.insert(id);
      }
    }
  }

  // Unused graph inputs (they show up as outputs(), which is almost
  // certainly unintended) and unreachable interior nodes.
  std::set<NodeId> reachable;
  std::vector<NodeId> frontier = g.inputs();
  for (NodeId id : frontier) reachable.insert(id);
  while (!frontier.empty()) {
    const NodeId id = frontier.back();
    frontier.pop_back();
    for (NodeId c : g.consumers(id)) {
      if (reachable.insert(c).second) frontier.push_back(c);
    }
  }
  for (NodeId id : ctx.live) {
    const Node& n = g.node(id);
    if (n.kind == OpKind::kInput && g.consumers(id).empty()) {
      rep.add(Severity::kWarning, "ir.input.unused", n, "graph input has no consumers");
    }
    if (!reachable.count(id)) {
      rep.add(Severity::kWarning, "ir.unreachable", n,
              "not reachable from any graph input");
    }
  }
}

Shape weight_shape_for(const Graph& g, const Node& n, std::size_t index) {
  const Shape& in = g.node(n.inputs.at(0)).out_shape;
  switch (n.kind) {
    case OpKind::kConv2d: {
      const auto oc = n.attrs.get_int("out_channels");
      const auto k = n.attrs.get_int("kernel");
      const auto grp = n.attrs.get_int_or("groups", 1);
      return index == 0 ? Shape{oc, in.c() / grp, k, k} : Shape{oc};
    }
    case OpKind::kDense: {
      const auto units = n.attrs.get_int("units");
      return index == 0 ? Shape{units, in.dim(1)} : Shape{units};
    }
    case OpKind::kBatchNorm: {
      const std::int64_t c = in.rank() == 4 ? in.c() : in.dim(1);
      return Shape{c};
    }
    default:
      VEDLIOT_ASSERT(false && "weight_shape_for on non-parametric op");
  }
  return Shape{};
}

void check_weights(const Context& ctx, Report& rep) {
  const Graph& g = ctx.g;
  std::size_t parametric = 0, materialized = 0;

  for (NodeId id : ctx.live) {
    const Node& n = g.node(id);

    if (!op_has_weights(n.kind)) {
      if (!n.weights.empty()) {
        rep.add(Severity::kError, "weight.unexpected", n,
                std::string(op_name(n.kind)) + " carries " + std::to_string(n.weights.size()) +
                    " weight tensors but owns no parameters");
      }
      continue;
    }

    ++parametric;
    if (n.weights.empty()) {
      if (n.weight_dtype != DType::kFP32) {
        rep.add(Severity::kWarning, "weight.dtype", n,
                "weight_dtype is " + std::string(dtype_name(n.weight_dtype)) +
                    " but weights are not materialized");
      }
      continue;
    }
    ++materialized;
    if (ctx.broken.count(id)) continue;  // contract unevaluable

    // Expected tensor count from the bias attr.
    const bool has_bias = n.attrs.get_int_or("bias", 1) != 0;
    std::size_t want = 0;
    switch (n.kind) {
      case OpKind::kConv2d:
      case OpKind::kDense:
        want = has_bias ? 2 : 1;
        break;
      case OpKind::kBatchNorm:
        want = 4;
        break;
      default:
        break;
    }
    if (n.weights.size() != want) {
      const bool bias_mismatch =
          (n.kind == OpKind::kConv2d || n.kind == OpKind::kDense) &&
          (n.weights.size() == 1 || n.weights.size() == 2);
      rep.add(Severity::kError, bias_mismatch ? "weight.bias" : "weight.count", n,
              "expected " + std::to_string(want) + " weight tensors (bias=" +
                  std::to_string(has_bias ? 1 : 0) + "), got " +
                  std::to_string(n.weights.size()));
      continue;
    }

    for (std::size_t i = 0; i < n.weights.size(); ++i) {
      const Shape expect = weight_shape_for(g, n, i);
      if (!(n.weights[i].shape() == expect)) {
        rep.add(Severity::kError, "weight.shape", n,
                "weight[" + std::to_string(i) + "] shape " + n.weights[i].shape().to_string() +
                    " != expected " + expect.to_string());
      }
    }
    for (std::size_t i = 0; i < n.weights.size(); ++i) {
      for (float v : n.weights[i].data()) {
        if (!std::isfinite(v)) {
          rep.add(Severity::kError, "weight.nonfinite", n,
                  "weight[" + std::to_string(i) + "] contains NaN/Inf values");
          break;
        }
      }
    }
  }

  if (materialized > 0 && materialized < parametric) {
    rep.add(Severity::kWarning, "weight.partial",
            std::to_string(materialized) + " of " + std::to_string(parametric) +
                " parametric nodes have materialized weights");
  }
}

void check_quant(const Context& ctx, Report& rep) {
  const Graph& g = ctx.g;
  std::size_t with_scale = 0;
  for (NodeId id : ctx.live) {
    if (g.node(id).attrs.has("act_scale")) ++with_scale;
  }
  const bool calibrated = with_scale > 0;

  for (NodeId id : ctx.live) {
    const Node& n = g.node(id);
    if (calibrated && !n.attrs.has("act_scale")) {
      rep.add(Severity::kError, "quant.act_scale.missing", n,
              "graph is calibrated but this node has no act_scale (the int8 "
              "executor will throw)");
    }
    if (n.attrs.has("act_scale") &&
        std::holds_alternative<double>(n.attrs.raw().at("act_scale"))) {
      const double s = n.attrs.get_float("act_scale");
      if (!(s > 0.0) || !std::isfinite(s)) {
        rep.add(Severity::kError, "quant.act_scale.value", n,
                "act_scale must be finite and > 0, got " + std::to_string(s));
      }
    }
    if (n.weight_dtype != DType::kFP32 && !op_has_weights(n.kind)) {
      rep.add(Severity::kWarning, "quant.weight_dtype.dangling", n,
              "weight_dtype " + std::string(dtype_name(n.weight_dtype)) +
                  " on an op without parameters");
    }
    if (calibrated) {
      const std::string fused = n.attrs.get_str_or("fused_act", "");
      if (!fused.empty() && fused != "Relu" && fused != "Relu6") {
        rep.add(Severity::kWarning, "quant.fused_act.unsupported", n,
                "int8 executor only supports fused Relu/Relu6, found '" + fused + "'");
      }
    }
  }
}

void check_fusion(const Context& ctx, Report& rep) {
  const Graph& g = ctx.g;
  for (NodeId id : ctx.live) {
    const Node& n = g.node(id);
    const bool fusable = n.kind == OpKind::kConv2d || n.kind == OpKind::kDense;

    if (n.attrs.has("fused_act") &&
        std::holds_alternative<std::string>(n.attrs.raw().at("fused_act"))) {
      const std::string& act = n.attrs.get_str("fused_act");
      if (!fusable) {
        rep.add(Severity::kError, "fusion.fused_act.misplaced", n,
                "fused_act tag on " + std::string(op_name(n.kind)) +
                    "; only Conv2d/Dense execute fused activations");
      }
      bool valid = false;
      try {
        valid = op_is_activation(parse_op(act));
      } catch (const Error&) {
        valid = false;
      }
      if (!valid) {
        rep.add(Severity::kError, "fusion.fused_act.invalid", n,
                "fused_act '" + act + "' is not an activation op name");
      }
    }

    if (n.attrs.has("fused_alpha") &&
        n.attrs.get_str_or("fused_act", "") != "LeakyRelu") {
      rep.add(Severity::kWarning, "fusion.fused_alpha.dangling", n,
              "fused_alpha without fused_act=LeakyRelu has no effect");
    }

    if (n.attrs.get_int_or("fused_bn", 0) != 0) {
      if (!fusable) {
        rep.add(Severity::kError, "fusion.fused_bn.misplaced", n,
                "fused_bn tag on " + std::string(op_name(n.kind)));
      } else if (n.attrs.get_int_or("bias", 1) == 0) {
        rep.add(Severity::kError, "fusion.fused_bn.bias", n,
                "fused_bn=1 requires bias=1: the folded BatchNorm shift needs a "
                "bias tensor to live in");
      }
    }
  }
}

void check_memory(const Context& ctx, Report& rep) {
  try {
    const Dataflow df = Dataflow::compute(ctx.g);
    std::size_t single = 0, valued = 0;
    for (const LiveInterval& iv : df.intervals()) {
      const std::size_t uses = df.consumers(iv.node).size();
      if (uses > 0) {
        ++valued;
        if (uses == 1) ++single;
      }
    }
    rep.add(Severity::kNote, "memory.peak",
            "peak live activation set: " + std::to_string(df.peak_live_bytes()) + " bytes (fp32)");
    rep.add(Severity::kNote, "memory.traffic",
            "total def->use edge traffic: " + std::to_string(df.total_edge_bytes()) +
                " bytes (fp32)");
    if (valued > 0) {
      rep.add(Severity::kNote, "memory.reuse",
              std::to_string(single) + " of " + std::to_string(valued) +
                  " consumed values are single-use (in-place candidates)");
    }
  } catch (const Error& e) {
    rep.add(Severity::kError, "memory.dataflow",
            std::string("dataflow analysis failed: ") + e.what());
  }
}

}  // namespace

VerifyOptions parse_check_groups(std::string_view csv) {
  VerifyOptions opts = VerifyOptions::none();
  std::string token;
  std::istringstream in{std::string(csv)};
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    if (token == "ir") {
      opts.ir = true;
    } else if (token == "weights") {
      opts.weights = true;
    } else if (token == "quant") {
      opts.quant = true;
    } else if (token == "fusion") {
      opts.fusion = true;
    } else if (token == "memory") {
      opts.memory = true;
    } else if (token == "all") {
      opts = VerifyOptions::all();
    } else {
      throw InvalidArgument("unknown check group '" + token +
                            "' (expected ir,weights,quant,fusion,memory,all)");
    }
  }
  return opts;
}

Report verify_graph(const Graph& g, const VerifyOptions& opts) {
  Report rep;
  Context ctx{g, g.topo_order(), {}};

  // The IR pass always computes the broken-node set so later groups can skip
  // structurally unevaluable nodes; its findings are dropped when disabled.
  Report ir_rep;
  check_ir(ctx, ir_rep);
  const bool ir_ok = ir_rep.ok();
  const std::string ir_summary = ir_rep.summary();
  if (opts.ir) rep.merge(std::move(ir_rep));

  if (opts.weights) check_weights(ctx, rep);
  if (opts.quant) check_quant(ctx, rep);
  if (opts.fusion) check_fusion(ctx, rep);
  // Dataflow needs a structurally sound graph; on IR errors report the
  // blocker instead of tripping internal checks.
  if (opts.memory) {
    if (ir_ok) {
      check_memory(ctx, rep);
    } else {
      rep.add(Severity::kWarning, "memory.dataflow",
              "skipped: graph has IR errors (" + ir_summary + ")");
    }
  }
  return rep;
}

void verify_or_throw(const Graph& g, const VerifyOptions& opts) {
  const Report rep = verify_graph(g, opts);
  if (!rep.ok()) {
    throw GraphError("IR verification failed for graph '" + g.name() + "' (" + rep.summary() +
                     "):\n" + rep.to_table());
  }
}

}  // namespace vedliot::analysis
