#!/usr/bin/env bash
# Source-level lint: clang-tidy over the static-analysis and security
# subsystems (or a caller-given path list) using the compile database
# exported by CMake, plus a clang -fsyntax-only -Wthread-safety pass over
# the files that carry util/thread_safety.hpp annotations.
#
# Usage: scripts/lint.sh [path-prefix ...]   (default: src/analysis src/security)
#
# Exits 0 with a notice when the LLVM tooling is not installed, so CI images
# without it degrade gracefully instead of failing the pipeline.

set -euo pipefail
cd "$(dirname "$0")/.."

# compile_commands.json is exported unconditionally (CMAKE_EXPORT_COMPILE_COMMANDS
# in the top-level CMakeLists); (re)configure if the database is missing.
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . > /dev/null
fi

prefixes=("${@:-src/analysis src/security}")
# Allow a single space-separated default to expand into multiple prefixes.
read -r -a prefixes <<< "${prefixes[*]}"

files=()
for prefix in "${prefixes[@]}"; do
  while IFS= read -r f; do
    files+=("$f")
  done < <(find "$prefix" -name '*.cpp' | sort)
done

if [[ ${#files[@]} -eq 0 ]]; then
  echo "lint: no .cpp files under: ${prefixes[*]}" >&2
  exit 2
fi

if command -v clang-tidy > /dev/null 2>&1; then
  echo "lint: clang-tidy over ${#files[@]} file(s): ${prefixes[*]}"
  clang-tidy -p build --quiet "${files[@]}"
else
  echo "lint: clang-tidy not found on PATH; skipping clang-tidy pass" >&2
fi

# Thread Safety Analysis: prove the lock annotations (thread_safety.hpp) on
# the classes that declare them. Any clang++ on PATH can run this pass —
# it needs no compile database beyond include paths.
if command -v clang++ > /dev/null 2>&1; then
  ts_files=(src/util/thread_pool.cpp src/runtime/packed_cache.cpp
            src/runtime/executor.cpp src/safety/model_store.cpp)
  echo "lint: clang -Wthread-safety over ${#ts_files[@]} annotated file(s)"
  clang++ -std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror=thread-safety \
    "${ts_files[@]}"
else
  echo "lint: clang++ not found on PATH; skipping thread-safety analysis" >&2
fi

echo "lint OK"
