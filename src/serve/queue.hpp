#pragma once
/// \file queue.hpp
/// \brief Bounded admission queue with priority classes and
/// earliest-deadline-first dispatch.
///
/// The serving front-end's only buffer: a fixed-capacity set of tickets.
/// pop() serves strict priority first and earliest absolute deadline within
/// a class (FIFO, then id, break remaining ties, so the order is total and
/// deterministic); tickets waiting out a retry backoff (not_before) are
/// skipped until their gate passes. When the queue is full a strictly
/// higher-priority arrival may displace() the worst lower-priority ticket
/// instead of being shed. Capacity is a hard bound — push() into a full
/// queue throws, so an overload bug cannot grow the queue silently.

#include <cstdint>
#include <optional>
#include <vector>

namespace vedliot::serve {

/// One queued request, reduced to what dispatch ordering needs.
struct Ticket {
  std::uint64_t id = 0;
  int priority = 0;         ///< higher serves first (strict classes)
  double deadline_s = 0;    ///< absolute; past-deadline tickets expire
  double not_before_s = 0;  ///< retry backoff gate; 0 = dispatchable now
  double enqueued_s = 0;    ///< FIFO tie-break within a class
};

struct QueueConfig {
  std::size_t capacity = 64;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(QueueConfig config);

  std::size_t depth() const { return tickets_.size(); }
  std::size_t capacity() const { return cfg_.capacity; }
  bool full() const { return tickets_.size() >= cfg_.capacity; }
  bool empty() const { return tickets_.empty(); }

  /// Throws Error when full — callers must shed or displace first.
  void push(Ticket t);

  /// Best dispatchable ticket at \p now (not_before passed): max priority,
  /// then earliest deadline, then earliest enqueue, then smallest id.
  /// Empty when nothing is dispatchable yet.
  std::optional<Ticket> pop(double now);

  /// Remove and return every ticket whose deadline has passed (they can no
  /// longer be served in time and only inflate the wait estimate).
  std::vector<Ticket> expire(double now);

  /// Remove and return the worst ticket of any class strictly below
  /// \p priority: lowest priority, then latest deadline, then latest
  /// enqueue, then largest id. Empty when no lower-priority ticket exists.
  std::optional<Ticket> displace(int priority);

  /// All queued tickets in insertion order (for wait estimation).
  const std::vector<Ticket>& tickets() const { return tickets_; }

 private:
  QueueConfig cfg_;
  std::vector<Ticket> tickets_;
};

}  // namespace vedliot::serve
