#pragma once
/// \file request.hpp
/// \brief Versioned serving wire types (v2): what a client submits and what
/// the fleet hands back.
///
/// PR 7 API redesign: the ad-hoc Request POD grew fields in three different
/// PRs, so the serving surface now versions its wire structs explicitly.
/// Request carries a named priority class (not a bare int), an idempotency
/// key the response cache may coalesce on, and an opaque payload handle the
/// execute path derives the input tensor from. Response is the symmetric
/// reply record: where the request was served, how it fared against its
/// deadline, and a CRC-32 of the output tensor so harnesses can check
/// batched-vs-singleton bitwise equality without shipping tensors around.

#include <cstdint>
#include <string>
#include <string_view>

namespace vedliot::serve {

/// Wire-struct version stamped into every Request/Response this header
/// defines. Bump on any field change; harnesses assert it so a stale
/// serializer fails loudly instead of mis-parsing.
inline constexpr std::uint32_t kServeApiVersion = 2;

/// Scheduling class, ordered: higher classes pre-empt lower ones in the
/// admission queue (the queue still breaks ties EDF-first).
enum class PriorityClass : int {
  kBatch = 0,        ///< throughput traffic; first to displace
  kStandard = 1,     ///< default interactive traffic
  kInteractive = 2,  ///< latency-critical; displaces both lower classes
};

std::string_view priority_class_name(PriorityClass p);

/// A serving request (wire version kServeApiVersion).
struct Request {
  std::uint32_t version = kServeApiVersion;

  std::uint64_t id = 0;          ///< 0 = assigned by submit()
  std::string client;            ///< retry-budget + routing key
  PriorityClass priority_class = PriorityClass::kStandard;
  double arrival_s = 0;
  double deadline_s = 0;         ///< absolute simulated time
  std::int64_t batch = 1;        ///< lanes this request occupies

  /// Idempotency key: requests sharing a non-empty key are safe to coalesce
  /// — the response cache may answer a repeat without recomputing. Empty =
  /// never cached.
  std::string idempotency_key;

  /// Opaque payload handle. The simulation has no real client tensors; in
  /// execute mode the input is synthesized deterministically from this
  /// handle (falling back to the request id when 0), so identical handles
  /// produce identical inputs — the property the idempotency cache and the
  /// batched-equality checks rely on.
  std::uint64_t payload = 0;

  /// The queue-facing integer priority (ordered as the enum).
  int priority() const { return static_cast<int>(priority_class); }
};

/// Terminal outcome of a request's lifetime.
enum class ResponseStatus {
  kOk,            ///< delivered within deadline
  kLate,          ///< delivered past deadline
  kShed,          ///< refused at admission
  kCancelled,     ///< deadline expired in queue / infeasible at dispatch
  kFailed,        ///< gave up after retries
};

std::string_view response_status_name(ResponseStatus s);

/// A serving response (wire version kServeApiVersion). One per offered
/// request; the fleet returns the full set after a run.
struct Response {
  std::uint32_t version = kServeApiVersion;

  std::uint64_t request_id = 0;
  ResponseStatus status = ResponseStatus::kShed;
  double time_s = 0;          ///< when the terminal outcome was decided
  double latency_s = 0;       ///< time_s - arrival (0 for shed)
  std::string served_by;      ///< "replica3/come1" (empty unless executed)
  bool cache_hit = false;     ///< answered from the idempotency cache
  bool degraded = false;      ///< served by a brownout rung below healthy
  std::uint32_t output_crc32 = 0;  ///< CRC-32 of the output tensor (execute)
};

}  // namespace vedliot::serve
