#pragma once
/// \file crypto.hpp
/// \brief Minimal cryptographic primitives for the trusted-computing stack
/// (Sec. IV-C): SHA-256 measurements, HMAC-SHA256 attestation MACs and
/// ChaCha20 sealing. Implemented from scratch (no external deps); SHA-256
/// and ChaCha20 are validated against published test vectors in the tests.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace vedliot::security {

using Digest = std::array<std::uint8_t, 32>;
using Key = std::array<std::uint8_t, 32>;

/// SHA-256 of a byte span.
Digest sha256(std::span<const std::uint8_t> data);
Digest sha256(std::string_view text);

/// Incremental SHA-256 (for measuring multi-part enclave images).
class Sha256 {
 public:
  Sha256();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

/// HMAC-SHA256.
Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message);

/// ChaCha20 stream cipher (RFC 8439 block function); encrypt == decrypt.
std::vector<std::uint8_t> chacha20_xor(const Key& key, const std::array<std::uint8_t, 12>& nonce,
                                       std::uint32_t counter, std::span<const std::uint8_t> data);

/// HKDF-style key derivation: HMAC(key, label) truncated to a Key.
Key derive_key(const Key& parent, std::string_view label);

/// Constant-time comparison.
bool digest_equal(const Digest& a, const Digest& b);

/// Lowercase hex rendering (for logs/reports).
std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace vedliot::security
