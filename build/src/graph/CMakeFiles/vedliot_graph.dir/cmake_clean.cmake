file(REMOVE_RECURSE
  "CMakeFiles/vedliot_graph.dir/attr.cpp.o"
  "CMakeFiles/vedliot_graph.dir/attr.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/cost.cpp.o"
  "CMakeFiles/vedliot_graph.dir/cost.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/graph.cpp.o"
  "CMakeFiles/vedliot_graph.dir/graph.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/op.cpp.o"
  "CMakeFiles/vedliot_graph.dir/op.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/package.cpp.o"
  "CMakeFiles/vedliot_graph.dir/package.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/serialize.cpp.o"
  "CMakeFiles/vedliot_graph.dir/serialize.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/zoo_common.cpp.o"
  "CMakeFiles/vedliot_graph.dir/zoo_common.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/zoo_efficientnet.cpp.o"
  "CMakeFiles/vedliot_graph.dir/zoo_efficientnet.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/zoo_micro.cpp.o"
  "CMakeFiles/vedliot_graph.dir/zoo_micro.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/zoo_mobilenet.cpp.o"
  "CMakeFiles/vedliot_graph.dir/zoo_mobilenet.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/zoo_resnet.cpp.o"
  "CMakeFiles/vedliot_graph.dir/zoo_resnet.cpp.o.d"
  "CMakeFiles/vedliot_graph.dir/zoo_yolo.cpp.o"
  "CMakeFiles/vedliot_graph.dir/zoo_yolo.cpp.o.d"
  "libvedliot_graph.a"
  "libvedliot_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
