#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vedliot {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      storage_(static_cast<std::size_t>(shape_.numel()), 0.0f),
      data_(storage_) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), storage_(std::move(data)), data_(storage_) {
  VEDLIOT_CHECK(static_cast<std::int64_t>(storage_.size()) == shape_.numel(),
                "Tensor data size does not match shape " + shape_.to_string());
}

Tensor Tensor::view(Shape shape, std::span<float> data) {
  Tensor t;
  VEDLIOT_CHECK(static_cast<std::int64_t>(data.size()) == shape.numel(),
                "Tensor view size does not match shape " + shape.to_string());
  t.shape_ = std::move(shape);
  t.data_ = data;
  return t;
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_), storage_(other.storage_) {
  data_ = other.is_view() ? other.data_ : std::span<float>(storage_);
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  storage_ = other.storage_;
  data_ = other.is_view() ? other.data_ : std::span<float>(storage_);
  return *this;
}

Tensor Tensor::clone() const {
  return Tensor(shape_, std::vector<float>(data_.begin(), data_.end()));
}

float& Tensor::at(std::size_t i) {
  VEDLIOT_CHECK(i < data_.size(), "Tensor index out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  VEDLIOT_CHECK(i < data_.size(), "Tensor index out of range");
  return data_[i];
}

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
  const auto& s = shape_;
  VEDLIOT_CHECK(n >= 0 && n < s.n() && c >= 0 && c < s.c() && h >= 0 && h < s.h() && w >= 0 && w < s.w(),
                "Tensor 4-D index out of range for " + s.to_string());
  const std::size_t idx =
      static_cast<std::size_t>(((n * s.c() + c) * s.h() + h) * s.w() + w);
  return data_[idx];
}

float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

float Tensor::min() const {
  if (data_.empty()) return 0.0f;
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) return 0.0f;
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::abs_sum() const {
  double s = 0.0;
  for (float v : data_) s += std::abs(v);
  return s;
}

double Tensor::sparsity() const {
  if (data_.empty()) return 0.0;
  std::size_t zeros = 0;
  for (float v : data_) {
    if (v == 0.0f) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

Tensor stack_batch(std::span<const Tensor> parts) {
  VEDLIOT_CHECK(!parts.empty(), "stack_batch needs at least one tensor");
  const Shape& first = parts.front().shape();
  VEDLIOT_CHECK(first.rank() >= 1, "stack_batch needs rank >= 1 tensors");
  std::vector<std::int64_t> dims(first.dims().begin(), first.dims().end());
  std::int64_t batch = 0;
  for (const Tensor& p : parts) {
    const Shape& s = p.shape();
    VEDLIOT_CHECK(s.rank() == first.rank(), "stack_batch rank mismatch");
    for (std::size_t d = 1; d < s.rank(); ++d) {
      VEDLIOT_CHECK(s.dim(d) == first.dim(d),
                    "stack_batch trailing-dim mismatch: " + s.to_string() + " vs " +
                        first.to_string());
    }
    batch += s.dim(0);
  }
  dims[0] = batch;
  Tensor out{Shape(dims)};
  std::size_t at = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data().begin(), p.data().end(), out.data().begin() + at);
    at += p.data().size();
  }
  return out;
}

std::vector<Tensor> split_batch(const Tensor& batched) {
  const Shape& s = batched.shape();
  VEDLIOT_CHECK(s.rank() >= 1, "split_batch needs rank >= 1");
  const auto lanes = static_cast<std::size_t>(s.dim(0));
  VEDLIOT_CHECK(lanes >= 1, "split_batch needs a non-empty batch");
  std::vector<std::int64_t> dims(s.dims().begin(), s.dims().end());
  dims[0] = 1;
  const Shape lane_shape{dims};
  const auto stride = static_cast<std::size_t>(lane_shape.numel());
  std::vector<Tensor> out;
  out.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    const auto lane = batched.data().subspan(i * stride, stride);
    out.emplace_back(lane_shape, std::vector<float>(lane.begin(), lane.end()));
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  VEDLIOT_CHECK(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  float m = 0.0f;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) m = std::max(m, std::abs(da[i] - db[i]));
  return m;
}

double rmse(const Tensor& a, const Tensor& b) {
  VEDLIOT_CHECK(a.shape() == b.shape(), "rmse shape mismatch");
  if (a.numel() == 0) return 0.0;
  double s = 0.0;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double d = static_cast<double>(da[i]) - static_cast<double>(db[i]);
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(da.size()));
}

}  // namespace vedliot
