#pragma once
/// \file kernels.hpp
/// \brief Compute kernels of the execution engine: im2col packing and
/// cache-blocked GEMM for Conv2D/Dense, float and true-integer INT8 paths.
///
/// The kernel restructuring the FPGA co-design line of work (arXiv:2504.09151)
/// applies in hardware, applied to the host runtime: convolution becomes a
/// [patch x cols] packing step plus a dense matrix multiply whose inner loop
/// is contiguous in memory and auto-vectorizable, instead of a 6-deep scalar
/// loop with per-element bounds checks.
///
/// Determinism contract: every kernel accumulates each output element over a
/// fixed k-order (k = 0..K-1), so results are bitwise identical no matter how
/// the row range is partitioned across threads. Parallel callers split the
/// *row* dimension only.

#include <cstdint>

#include "graph/op.hpp"

namespace vedliot::runtime_kernels {

/// Scalar activation used by both executors' epilogues. kIdentity passes
/// through; alpha feeds LeakyRelu.
float apply_activation(float x, OpKind kind, double alpha);

/// Conv2D loop geometry, shared by the float and INT8 paths.
struct Conv2dGeometry {
  std::int64_t batch = 1;
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t out_c = 0, out_h = 0, out_w = 0;
  std::int64_t kernel = 1, stride = 1, pad = 0, groups = 1;

  std::int64_t icg() const { return in_c / groups; }   ///< input channels / group
  std::int64_t ocg() const { return out_c / groups; }  ///< output channels / group
  std::int64_t patch() const { return icg() * kernel * kernel; }  ///< GEMM K
  std::int64_t cols() const { return out_h * out_w; }             ///< GEMM N
  bool depthwise() const { return groups == in_c && ocg() == 1; }
  /// Multiply-accumulates of the full convolution (all batches).
  double macs() const;
};

/// Pack one (batch, group) slice of an NCHW input into a row-major
/// [patch() x cols()] column matrix; out-of-image taps become zero.
/// Rows [row_lo, row_hi) only, so packing itself can be partitioned.
void im2col_f32(const float* in, const Conv2dGeometry& g, std::int64_t b, std::int64_t group,
                std::int64_t row_lo, std::int64_t row_hi, float* col);
void im2col_s8(const std::int8_t* in, const Conv2dGeometry& g, std::int64_t b,
               std::int64_t group, std::int64_t row_lo, std::int64_t row_hi, std::int8_t* col);

/// Row range [m_lo, m_hi) of C = A·B (+bias) with fused activation:
/// A is [M x K] row-major (conv weights / dense weights), B is [K x N]
/// row-major (the im2col matrix / input), C is [M x N] row-major.
/// Float accumulation in fixed k-order; bias may be null.
void gemm_rows_f32(const float* a, const float* b, float* c, std::int64_t m_lo,
                   std::int64_t m_hi, std::int64_t n, std::int64_t k, const float* bias,
                   OpKind act, double alpha);

/// Row range [u_lo, u_hi) of the batched dense layer y = x·Wᵀ (+bias) with
/// fused activation: w is [units x features] row-major, xt is the transposed
/// activation matrix [features x batch] (a [1 x features] input is its own
/// transpose, so batch == 1 passes the input unchanged), y is
/// [batch x units] row-major. Each weight row is read once and serves every
/// lane — the batched path's throughput edge over per-request dispatch —
/// while each lane keeps the fixed f = 0..features-1 accumulation order, so
/// a lane of a batch-8 run is bitwise identical to the same sample run alone.
void dense_rows_f32(const float* w, const float* xt, float* y, std::int64_t u_lo,
                    std::int64_t u_hi, std::int64_t batch, std::int64_t features,
                    std::int64_t units, const float* bias, OpKind act, double alpha);

/// INT8 GEMM row range with int32 accumulation and fused requantization:
/// c[m][j] = clamp(round(acc * mult[m]), q_lo, q_hi) where acc starts at
/// bias[m]. Returns the number of requantization saturations (|q| > 127
/// before the activation clamp), so parallel callers can sum per-chunk
/// counts into a deterministic total.
std::uint64_t gemm_rows_s8(const std::int8_t* a, const std::int8_t* b, std::int8_t* c,
                           std::int64_t m_lo, std::int64_t m_hi, std::int64_t n,
                           std::int64_t k, const std::int32_t* bias, const double* mult,
                           std::int32_t q_lo, std::int32_t q_hi);

/// Direct depthwise convolution (groups == channels) for channel range
/// [c_lo, c_hi) of batch b: im2col degenerates to a k*k dot per pixel, so
/// packing overhead is pure loss — keep it direct. Float accumulation in
/// fixed tap order; bias may be null.
void depthwise_f32(const float* in, const float* w, const float* bias, float* out,
                   const Conv2dGeometry& g, std::int64_t b, std::int64_t c_lo,
                   std::int64_t c_hi, OpKind act, double alpha);

/// INT8 direct depthwise for channel range [c_lo, c_hi) of batch b, with the
/// same requant epilogue as gemm_rows_s8. Returns the saturation count.
std::uint64_t depthwise_s8(const std::int8_t* in, const std::int8_t* w, const std::int32_t* bias,
                           std::int8_t* out, const Conv2dGeometry& g, std::int64_t b,
                           std::int64_t c_lo, std::int64_t c_hi, const double* mult,
                           std::int32_t q_lo, std::int32_t q_hi);

}  // namespace vedliot::runtime_kernels
