#include "graph/zoo.hpp"
#include "graph/zoo_common.hpp"

namespace vedliot::zoo {

namespace {

using detail::Builder;

/// Standard ResNet bottleneck: 1x1 reduce, 3x3, 1x1 expand (+projection
/// shortcut when the shape changes).
NodeId bottleneck(Builder& b, NodeId in, std::int64_t mid, std::int64_t out, std::int64_t stride) {
  Graph& g = b.graph();
  const bool project = (stride != 1) || (g.node(in).out_shape.c() != out);

  NodeId x = b.conv_bn_act(in, mid, 1, 1, 0, OpKind::kRelu);
  x = b.conv_bn_act(x, mid, 3, stride, 1, OpKind::kRelu);
  x = b.conv_bn_act(x, out, 1, 1, 0, OpKind::kIdentity);

  NodeId shortcut = in;
  if (project) shortcut = b.conv_bn_act(in, out, 1, stride, 0, OpKind::kIdentity);

  NodeId sum = b.add(x, shortcut);
  return b.act(sum, OpKind::kRelu);
}

}  // namespace

Graph resnet50(std::int64_t batch, std::int64_t classes, std::int64_t image) {
  Graph g("resnet50");
  Builder b(g);
  NodeId x = g.add_input("image", Shape{batch, 3, image, image});

  x = b.conv_bn_act(x, 64, 7, 2, 3, OpKind::kRelu);
  x = b.maxpool(x, 3, 2, 1);

  struct Stage {
    std::int64_t mid, out, blocks, stride;
  };
  const Stage stages[] = {
      {64, 256, 3, 1},
      {128, 512, 4, 2},
      {256, 1024, 6, 2},
      {512, 2048, 3, 2},
  };
  for (const auto& s : stages) {
    for (std::int64_t i = 0; i < s.blocks; ++i) {
      x = bottleneck(b, x, s.mid, s.out, i == 0 ? s.stride : 1);
    }
  }

  x = g.add(OpKind::kGlobalAvgPool, "gap", {x});
  x = g.add(OpKind::kFlatten, "flatten", {x});
  AttrMap fc;
  fc.set_int("units", classes);
  fc.set_int("bias", 1);
  x = g.add(OpKind::kDense, "fc", {x}, std::move(fc));
  g.add(OpKind::kSoftmax, "prob", {x});
  g.validate();
  return g;
}

}  // namespace vedliot::zoo
