#pragma once
/// \file op.hpp
/// \brief Operator vocabulary of the VEDLIoT graph IR.
///
/// The set covers everything needed to express the paper's evaluation models
/// (ResNet50, MobileNetV3-Large, YoloV4) plus the small use-case networks.

#include <string_view>

namespace vedliot {

enum class OpKind {
  kInput,
  kConv2d,         ///< attrs: out_channels, kernel, stride, pad, groups, bias(0/1), fused_act?
  kDense,          ///< attrs: units, bias(0/1), fused_act?
  kBatchNorm,      ///< attrs: epsilon
  kRelu,
  kRelu6,
  kLeakyRelu,      ///< attrs: alpha
  kSigmoid,
  kHSigmoid,
  kHSwish,
  kMish,
  kTanh,
  kAdd,            ///< elementwise, 2 inputs, broadcasting [N,C,1,1] vs [N,C,H,W]
  kMul,            ///< elementwise, 2 inputs, broadcasting [N,C,1,1] vs [N,C,H,W]
  kConcat,         ///< attrs: axis (channel concat, axis==1)
  kMaxPool,        ///< attrs: kernel, stride, pad
  kAvgPool,        ///< attrs: kernel, stride, pad
  kGlobalAvgPool,  ///< output [N,C,1,1]
  kUpsample,       ///< attrs: scale (nearest neighbour)
  kFlatten,
  kSoftmax,
  kIdentity,
};

/// Canonical op name ("Conv2d", "Relu", ...).
std::string_view op_name(OpKind kind);

/// Parse a canonical name; throws InvalidArgument on unknown names.
OpKind parse_op(std::string_view name);

/// True for unary activation functions (fusable into a preceding conv/dense).
bool op_is_activation(OpKind kind);

/// True if the op owns trainable parameters.
bool op_has_weights(OpKind kind);

}  // namespace vedliot
