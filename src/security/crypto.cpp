#include "security/crypto.hpp"

#include <cstring>

#include "util/error.hpp"

namespace vedliot::security {

namespace {

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
             0x5be0cd19} {}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  auto [a, b, c, d, e, f, g, h] = state_;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kSha256K[static_cast<std::size_t>(i)] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_ += data.size();
  std::size_t i = 0;
  while (i < data.size()) {
    const std::size_t take = std::min<std::size_t>(64 - buffered_, data.size() - i);
    std::memcpy(buffer_.data() + buffered_, data.data() + i, take);
    buffered_ += take;
    i += take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
}

void Sha256::update(std::string_view text) {
  update(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                       text.size()));
}

Digest Sha256::finish() {
  const std::uint64_t bit_len = total_ * 8;
  const std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::array<std::uint8_t, 8> len;
  for (int i = 0; i < 8; ++i) len[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update(len);
  VEDLIOT_ASSERT(buffered_ == 0);
  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return out;
}

Digest sha256(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest sha256(std::string_view text) {
  Sha256 h;
  h.update(text);
  return h.finish();
}

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const Digest d = sha256(key);
    std::memcpy(k.data(), d.data(), d.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, 64> ipad, opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Digest inner_d = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_d);
  return outer.finish();
}

namespace {
void chacha_quarter(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

std::array<std::uint8_t, 64> chacha20_block(const Key& key, const std::array<std::uint8_t, 12>& nonce,
                                            std::uint32_t counter) {
  std::uint32_t s[16];
  s[0] = 0x61707865; s[1] = 0x3320646e; s[2] = 0x79622d32; s[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    s[4 + i] = static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i)]) |
               (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 1)]) << 8) |
               (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 2)]) << 16) |
               (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 3)]) << 24);
  }
  s[12] = counter;
  for (int i = 0; i < 3; ++i) {
    s[13 + i] = static_cast<std::uint32_t>(nonce[static_cast<std::size_t>(4 * i)]) |
                (static_cast<std::uint32_t>(nonce[static_cast<std::size_t>(4 * i + 1)]) << 8) |
                (static_cast<std::uint32_t>(nonce[static_cast<std::size_t>(4 * i + 2)]) << 16) |
                (static_cast<std::uint32_t>(nonce[static_cast<std::size_t>(4 * i + 3)]) << 24);
  }
  std::uint32_t x[16];
  std::memcpy(x, s, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    chacha_quarter(x[0], x[4], x[8], x[12]);
    chacha_quarter(x[1], x[5], x[9], x[13]);
    chacha_quarter(x[2], x[6], x[10], x[14]);
    chacha_quarter(x[3], x[7], x[11], x[15]);
    chacha_quarter(x[0], x[5], x[10], x[15]);
    chacha_quarter(x[1], x[6], x[11], x[12]);
    chacha_quarter(x[2], x[7], x[8], x[13]);
    chacha_quarter(x[3], x[4], x[9], x[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + s[i];
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(v);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(v >> 8);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(v >> 16);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}
}  // namespace

std::vector<std::uint8_t> chacha20_xor(const Key& key, const std::array<std::uint8_t, 12>& nonce,
                                       std::uint32_t counter, std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  std::size_t off = 0;
  while (off < out.size()) {
    const auto ks = chacha20_block(key, nonce, counter++);
    const std::size_t take = std::min<std::size_t>(64, out.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] ^= ks[i];
    off += take;
  }
  return out;
}

Key derive_key(const Key& parent, std::string_view label) {
  const Digest d = hmac_sha256(
      parent, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(label.data()),
                                            label.size()));
  Key k;
  std::memcpy(k.data(), d.data(), k.size());
  return k;
}

bool digest_equal(const Digest& a, const Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

}  // namespace vedliot::security
