#pragma once
/// \file attestation.hpp
/// \brief Distributed remote attestation (Sec. IV-C: "end-to-end trust
/// through a distributed attestation mechanism").
///
/// Symmetric-key scheme: an AttestationAuthority provisions each device a
/// key derived from its root secret; devices produce quotes binding
/// (device id, enclave measurement, verifier nonce); chains of quotes let a
/// cloud verifier attest an edge node that in turn attests leaf devices.

#include <cstdint>
#include <string>
#include <vector>

#include "security/crypto.hpp"

namespace vedliot::security {

struct Quote {
  std::string device_id;
  Digest measurement{};         ///< MRENCLAVE of the attested enclave
  std::uint64_t nonce = 0;      ///< verifier freshness challenge
  Digest prev{};                ///< hash of the previous quote in a chain
  Digest mac{};                 ///< HMAC over all fields with the device key

  std::vector<std::uint8_t> signed_payload() const;
};

/// The provisioning root (plays the role of the manufacturer / IAS).
class AttestationAuthority {
 public:
  explicit AttestationAuthority(Key root) : root_(root) {}

  /// Derive the per-device key (burned into the device at manufacture).
  Key provision(const std::string& device_id) const;

  /// Verify a single quote's MAC and freshness nonce.
  bool verify(const Quote& q, std::uint64_t expected_nonce) const;

  /// Verify a chain: quote[0] is the leaf; each quote[i>0] must embed the
  /// hash of quote[i-1] in its `prev` field. All MACs must verify and the
  /// outermost quote must carry the verifier's nonce.
  bool verify_chain(const std::vector<Quote>& chain, std::uint64_t expected_nonce) const;

 private:
  Key root_;
};

/// Device-side agent holding the provisioned key.
class DeviceAgent {
 public:
  DeviceAgent(std::string device_id, Key device_key)
      : id_(std::move(device_id)), key_(device_key) {}

  /// Produce a quote for an enclave measurement against a nonce.
  Quote quote(const Digest& measurement, std::uint64_t nonce) const;

  /// Produce a chained quote that vouches for a previous quote.
  Quote quote_over(const Quote& previous, const Digest& own_measurement,
                   std::uint64_t nonce) const;

  const std::string& id() const { return id_; }

 private:
  std::string id_;
  Key key_;
};

/// Hash of a quote (for chaining).
Digest quote_hash(const Quote& q);

}  // namespace vedliot::security
