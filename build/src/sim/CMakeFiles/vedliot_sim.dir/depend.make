# Empty dependencies file for vedliot_sim.
# This may be replaced when dependencies are built.
