// T-EXEC — toolchain substrate: the execution engine (thread-pool
// parallelism, im2col/GEMM convolution, activation arena) and the
// liveness-based memory planner (the "memory hierarchy study" of
// Sec. II-B applied to activation buffers).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "hw/roofline.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "runtime/memory_planner.hpp"
#include "runtime/session.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace vedliot;

namespace {

/// One configuration of the ResNet-50 execution-engine sweep.
struct SweepPoint {
  std::string dtype = "f32";     ///< "f32" | "int8"
  std::int64_t batch = 1;
  bool gemm = true;
  std::string simd = "portable"; ///< resolved dispatch level of the point
  unsigned threads = 1;
  bool measured = true;          ///< false: threads exceed this host's cores
  double seconds = 0;            ///< median wall-clock of the timed runs
  double speedup_vs_seed = 1;    ///< vs the serial seed path (direct conv, 1 thread)
  double speedup_vs_portable = 1;///< vs gemm+portable t1, same dtype and batch
  double achieved = 0;           ///< GFLOP/s (f32) or int8 GOP/s, end-to-end
  double roof_fraction = 0;      ///< achieved / (per-thread roof * usable threads)
};

double median_run_seconds(runtime::Session& session, const std::string& feed,
                          const Tensor& x, int repeats) {
  (void)session.run({{feed, x}});  // warm-up: arena + scratch allocation
  std::vector<double> times;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)session.run({{feed, x}});
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// ResNet-50 engine sweep (dtype x batch x dispatch level x threads) against
/// the measured host roofline. Writes the machine-readable baseline to
/// $VEDLIOT_BENCH_RUNTIME_JSON when set — the file checked in as
/// BENCH_runtime.json.
void engine_sweep() {
  constexpr std::int64_t kImage = 64;  // full 224 is impractical for the direct baseline
  constexpr int kRepeats = 3;
  const unsigned hw_threads = util::ThreadPool::hardware_threads();

  // Per-thread compute roofs of this host at both dispatch levels; a
  // portable run must be judged against the portable roof.
  const hw::HostRoofline roof_portable =
      hw::measure_host_roofline(util::SimdLevel::kPortable);
  const hw::HostRoofline roof_simd = hw::measure_host_roofline(util::SimdLevel::kAuto);
  const auto roof_for = [&](const std::string& dtype, const std::string& simd,
                            unsigned threads) {
    const hw::HostRoofline& r =
        simd == util::simd_level_name(util::SimdLevel::kPortable) ? roof_portable
                                                                  : roof_simd;
    const double per_thread = dtype == "f32" ? r.f32_gflops : r.s8_gops;
    return per_thread * static_cast<double>(std::min(threads, hw_threads));
  };

  std::printf(
      "\nExecution engine: ResNet-50 (image %lld), seed vs GEMM x dispatch x threads:\n\n",
      static_cast<long long>(kImage));
  Table t({"dtype", "batch", "conv", "simd", "threads", "median run", "vs seed",
           "vs portable", "GF/s", "roofline"});
  std::vector<SweepPoint> points;

  const auto add_row = [&](const SweepPoint& p) {
    t.add_row({p.dtype, std::to_string(p.batch), p.gemm ? "gemm" : "direct", p.simd,
               std::to_string(p.threads),
               p.measured ? fmt_fixed(p.seconds * 1e3, 1) + " ms" : "unmeasured",
               p.measured ? fmt_ratio(p.speedup_vs_seed) : "-",
               p.measured ? fmt_ratio(p.speedup_vs_portable) : "-",
               p.measured ? fmt_fixed(p.achieved, 2) : "-",
               p.measured ? fmt_fixed(p.roof_fraction * 100.0, 1) + "%" : "-"});
    points.push_back(p);
  };

  const std::string portable_name{util::simd_level_name(util::SimdLevel::kPortable)};
  const std::string simd_name{
      util::simd_level_name(util::resolve_simd_level(util::SimdLevel::kAuto))};

  for (std::int64_t batch : {std::int64_t{1}, std::int64_t{8}}) {
    Graph g = zoo::resnet50(batch, 10, kImage);
    Rng rng(7);
    g.materialize_weights(rng);
    const std::string feed = g.node(g.inputs().front()).name;
    Rng data_rng(8);
    Tensor x(Shape{batch, 3, kImage, kImage},
             data_rng.normal_vector(static_cast<std::size_t>(batch * 3 * kImage * kImage)));
    const double f32_flops = 2.0 * static_cast<double>(graph_cost(g).macs);

    // Seed baseline: the pre-engine executor semantics (direct conv, serial,
    // scalar kernels — the microkernels only back the GEMM paths).
    SweepPoint base{"f32", batch, false, portable_name, 1};
    {
      runtime::RunOptions o;
      o.exec.threads = 1;
      o.exec.simd = util::SimdLevel::kPortable;
      o.use_gemm_conv = false;
      auto s = runtime::make_session(g, o);
      base.seconds = median_run_seconds(*s, feed, x, kRepeats);
    }
    base.achieved = f32_flops / base.seconds / 1e9;
    base.roof_fraction = base.achieved / roof_for("f32", base.simd, 1);
    add_row(base);

    // GEMM at portable dispatch: the pre-microkernel engine (PR 3 semantics).
    SweepPoint f32_portable{"f32", batch, true, portable_name, 1};
    {
      runtime::RunOptions o;
      o.exec.threads = 1;
      o.exec.simd = util::SimdLevel::kPortable;
      o.use_gemm_conv = true;
      auto s = runtime::make_session(g, o);
      f32_portable.seconds = median_run_seconds(*s, feed, x, kRepeats);
    }
    f32_portable.speedup_vs_seed = base.seconds / f32_portable.seconds;
    f32_portable.achieved = f32_flops / f32_portable.seconds / 1e9;
    f32_portable.roof_fraction =
        f32_portable.achieved / roof_for("f32", portable_name, 1);
    add_row(f32_portable);

    for (unsigned threads : {1u, 2u, 4u}) {
      SweepPoint p{"f32", batch, true, simd_name, threads};
      if (threads > hw_threads) {
        // A point this host cannot time honestly: more workers than cores
        // just interleave on one core. Record it as unmeasured rather than
        // publishing a fake scaling number.
        p.measured = false;
        add_row(p);
        continue;
      }
      runtime::RunOptions o;
      o.exec.threads = threads;
      o.use_gemm_conv = true;
      auto s = runtime::make_session(g, o);
      p.seconds = median_run_seconds(*s, feed, x, kRepeats);
      p.speedup_vs_seed = base.seconds / p.seconds;
      p.speedup_vs_portable = f32_portable.seconds / p.seconds;
      p.achieved = f32_flops / p.seconds / 1e9;
      p.roof_fraction = p.achieved / roof_for("f32", p.simd, threads);
      add_row(p);
    }

    // INT8 deployment path: BN folded, activations fused and calibrated,
    // true-integer kernels. Same model and input, so "vs seed" is the
    // end-to-end latency win of quantized+SIMD over the seed executor.
    Graph q = zoo::resnet50(batch, 10, kImage);
    Rng qrng(7);
    q.materialize_weights(qrng);
    opt::FuseBatchNormPass bn;
    bn.run(q);
    opt::FuseActivationPass act;
    act.run(q);
    std::vector<Tensor> calib;
    Rng calib_rng(9);
    for (int i = 0; i < 2; ++i) {
      calib.emplace_back(Shape{batch, 3, kImage, kImage},
                         calib_rng.normal_vector(
                             static_cast<std::size_t>(batch * 3 * kImage * kImage)));
    }
    opt::calibrate_activations(q, calib, Calibration::kMinMax);
    const double s8_ops = 2.0 * static_cast<double>(graph_cost(q).macs);

    SweepPoint s8_portable{"int8", batch, true, portable_name, 1};
    {
      runtime::RunOptions o;
      o.exec.threads = 1;
      o.exec.simd = util::SimdLevel::kPortable;
      auto s = runtime::make_quantized_session(q, o);
      s8_portable.seconds = median_run_seconds(*s, feed, x, kRepeats);
    }
    s8_portable.speedup_vs_seed = base.seconds / s8_portable.seconds;
    s8_portable.achieved = s8_ops / s8_portable.seconds / 1e9;
    s8_portable.roof_fraction =
        s8_portable.achieved / roof_for("int8", portable_name, 1);
    add_row(s8_portable);

    for (unsigned threads : {1u, 2u, 4u}) {
      SweepPoint p{"int8", batch, true, simd_name, threads};
      if (threads > hw_threads) {
        p.measured = false;
        add_row(p);
        continue;
      }
      runtime::RunOptions o;
      o.exec.threads = threads;
      auto s = runtime::make_quantized_session(q, o);
      p.seconds = median_run_seconds(*s, feed, x, kRepeats);
      p.speedup_vs_seed = base.seconds / p.seconds;
      p.speedup_vs_portable = s8_portable.seconds / p.seconds;
      p.achieved = s8_ops / p.seconds / 1e9;
      p.roof_fraction = p.achieved / roof_for("int8", p.simd, threads);
      add_row(p);
    }
  }
  t.print(std::cout);
  bench::note("GF/s is end-to-end model flops (int8: integer ops) over wall-clock;");
  bench::note("roofline is the measured per-level register-FMA roof of this host;");
  bench::note("thread points beyond hardware_concurrency are recorded unmeasured.");

  if (const char* path = std::getenv("VEDLIOT_BENCH_RUNTIME_JSON")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", path);
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_runtime\",\n  \"model\": \"resnet50\",\n");
    std::fprintf(f, "  \"image\": %lld,\n  \"repeats\": %d,\n", static_cast<long long>(kImage),
                 kRepeats);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw_threads);
    std::fprintf(f, "  \"baseline\": \"direct conv, threads=1 (seed executor semantics)\",\n");
    std::fprintf(f,
                 "  \"roofline\": {\"portable_f32_gflops\": %s, \"portable_s8_gops\": %s, "
                 "\"%s_f32_gflops\": %s, \"%s_s8_gops\": %s},\n",
                 obs::json_number(roof_portable.f32_gflops).c_str(),
                 obs::json_number(roof_portable.s8_gops).c_str(), simd_name.c_str(),
                 obs::json_number(roof_simd.f32_gflops).c_str(), simd_name.c_str(),
                 obs::json_number(roof_simd.s8_gops).c_str());
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      if (p.measured) {
        std::fprintf(f,
                     "    {\"dtype\": \"%s\", \"batch\": %lld, \"conv\": \"%s\", "
                     "\"simd\": \"%s\", \"threads\": %u, \"hardware_concurrency\": %u, "
                     "\"unmeasured\": false, \"median_seconds\": %s, "
                     "\"achieved_gflops\": %s, \"fraction_of_roofline\": %s, "
                     "\"speedup_vs_seed\": %s, \"speedup_vs_portable\": %s}%s\n",
                     p.dtype.c_str(), static_cast<long long>(p.batch),
                     p.gemm ? "gemm" : "direct", p.simd.c_str(), p.threads, hw_threads,
                     obs::json_number(p.seconds).c_str(),
                     obs::json_number(p.achieved).c_str(),
                     obs::json_number(p.roof_fraction).c_str(),
                     obs::json_number(p.speedup_vs_seed).c_str(),
                     obs::json_number(p.speedup_vs_portable).c_str(),
                     i + 1 < points.size() ? "," : "");
      } else {
        std::fprintf(f,
                     "    {\"dtype\": \"%s\", \"batch\": %lld, \"conv\": \"%s\", "
                     "\"simd\": \"%s\", \"threads\": %u, \"hardware_concurrency\": %u, "
                     "\"unmeasured\": true, \"median_seconds\": null}%s\n",
                     p.dtype.c_str(), static_cast<long long>(p.batch),
                     p.gemm ? "gemm" : "direct", p.simd.c_str(), p.threads, hw_threads,
                     i + 1 < points.size() ? "," : "");
      }
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
  }
}

}  // namespace

void print_artifact() {
  bench::banner("T-EXEC", "memory planner: arena reuse vs naive allocation");
  bench::Section section("bench_runtime", "memory-planner");

  Table t({"model", "activations (naive)", "arena (planned)", "reuse", "weights fp32"});
  struct Entry {
    const char* name;
    Graph g;
  };
  for (auto& [name, g] : {Entry{"resnet50", zoo::resnet50()},
                          Entry{"mobilenet_v3", zoo::mobilenet_v3_large()},
                          Entry{"yolov4", zoo::yolov4()},
                          Entry{"gesture_net", zoo::gesture_net()},
                          Entry{"pedestrian_net", zoo::pedestrian_net()}}) {
    const MemoryPlan plan = plan_memory(g, DType::kFP32);
    if (!plan_is_valid(plan)) {
      std::printf("INVALID PLAN for %s!\n", name);
      continue;
    }
    t.add_row({name, fmt_fixed(static_cast<double>(plan.naive_bytes) / (1 << 20), 1) + " MiB",
               fmt_fixed(static_cast<double>(plan.arena_bytes) / (1 << 20), 1) + " MiB",
               fmt_ratio(plan.reuse_factor()),
               fmt_fixed(weight_bytes(g, DType::kFP32) / (1 << 20), 1) + " MiB"});
  }
  t.print(std::cout);

  std::printf("\nINT8 activations shrink the arena further:\n\n");
  Table q({"model", "fp32 arena", "int8 arena"});
  for (auto& [name, g] : {Entry{"mobilenet_v3", zoo::mobilenet_v3_large()},
                          Entry{"yolov4", zoo::yolov4()}}) {
    const auto p32 = plan_memory(g, DType::kFP32);
    const auto p8 = plan_memory(g, DType::kINT8);
    q.add_row({name, fmt_fixed(static_cast<double>(p32.arena_bytes) / (1 << 20), 1) + " MiB",
               fmt_fixed(static_cast<double>(p8.arena_bytes) / (1 << 20), 2) + " MiB"});
  }
  q.print(std::cout);
  bench::note("shape: liveness-based packing cuts activation memory by an order of magnitude,");
  bench::note("which is what makes MiB-class on-chip buffers viable for these models.");

  // True-integer INT8 deployment path: agreement with the float reference.
  std::printf("\nINT8 integer executor vs float reference (micro CNN, 32 samples):\n\n");
  Graph g = zoo::micro_cnn("deploy", 1, 1, 16, 4);
  Rng rng(12);
  g.materialize_weights(rng);
  opt::FuseBatchNormPass bn;
  bn.run(g);
  opt::FuseActivationPass act;
  act.run(g);
  std::vector<Tensor> calib;
  Rng data_rng(13);
  for (int i = 0; i < 16; ++i) calib.emplace_back(Shape{1, 1, 16, 16}, data_rng.normal_vector(256));
  opt::calibrate_activations(g, calib, Calibration::kMinMax);

  auto fsession = runtime::make_session(g);
  auto qsession = runtime::make_quantized_session(g);
  std::uint64_t saturations = 0;
  int agree = 0;
  double total_rmse = 0;
  for (int i = 0; i < 32; ++i) {
    Tensor x(Shape{1, 1, 16, 16}, data_rng.normal_vector(256));
    const Tensor fy = fsession->run_single(x);
    const auto qr = qsession->run({{g.node(g.inputs().front()).name, x}});
    const Tensor& qy = qr.single();
    saturations = qr.saturations;
    total_rmse += rmse(fy, qy);
    std::size_t fa = 0, qa = 0;
    for (std::int64_t j = 1; j < fy.numel(); ++j) {
      if (fy.at(static_cast<std::size_t>(j)) > fy.at(fa)) fa = static_cast<std::size_t>(j);
      if (qy.at(static_cast<std::size_t>(j)) > qy.at(qa)) qa = static_cast<std::size_t>(j);
    }
    if (fa == qa) ++agree;
  }
  std::printf("top-1 agreement %d/32, mean softmax RMSE %.4f, int8 saturations %llu\n", agree,
              total_rmse / 32.0, static_cast<unsigned long long>(saturations));

  engine_sweep();
}

static void BM_PlanMemoryMobileNet(benchmark::State& state) {
  Graph g = zoo::mobilenet_v3_large();
  for (auto _ : state) {
    auto plan = plan_memory(g, DType::kINT8);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanMemoryMobileNet)->Unit(benchmark::kMillisecond);

static void BM_ExecutorMicroCnn(benchmark::State& state) {
  Graph g = zoo::micro_cnn("m", 1, 1, 32, 10);
  Rng rng(1);
  g.materialize_weights(rng);
  auto session = runtime::make_session(g);
  Rng data_rng(2);
  Tensor input(Shape{1, 1, 32, 32}, data_rng.normal_vector(1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->run_single(input));
  }
  const auto c = graph_cost(g);
  state.counters["MACs/s"] = benchmark::Counter(
      static_cast<double>(c.macs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecutorMicroCnn)->Unit(benchmark::kMillisecond);

static void BM_ExecutorDense(benchmark::State& state) {
  Graph g = zoo::micro_mlp("m", 1, 1024, {1024}, 256);
  Rng rng(1);
  g.materialize_weights(rng);
  auto session = runtime::make_session(g);
  Rng data_rng(2);
  Tensor input(Shape{1, 1024}, data_rng.normal_vector(1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->run_single(input));
  }
}
BENCHMARK(BM_ExecutorDense)->Unit(benchmark::kMicrosecond);

static void BM_GraphValidateYolo(benchmark::State& state) {
  Graph g = zoo::yolov4();
  for (auto _ : state) {
    g.validate();
  }
}
BENCHMARK(BM_GraphValidateYolo)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
