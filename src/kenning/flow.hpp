#pragma once
/// \file flow.hpp
/// \brief The Kenning-analogue deployment flow (Sec. III / [10]): wrap a
/// model, apply optimizers, deploy to a runtime target, and measure
/// inference duration, resource usage and processing quality.
///
/// Two runtime targets exist: HostRuntime actually executes the graph on
/// this machine (wall-clock measurements); SimulatedTarget evaluates a
/// hardware device through the roofline model (latency/power/energy).

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "hw/device.hpp"
#include "hw/perf_model.hpp"
#include "kenning/metrics.hpp"
#include "opt/pass.hpp"
#include "runtime/executor.hpp"

namespace vedliot::kenning {

/// A labelled classification sample.
struct Sample {
  Tensor input;
  std::size_t label = 0;
};

/// ModelWrapper: the model plus its pre/post-processing (Sec. III step 1).
class ModelWrapper {
 public:
  using Preprocess = std::function<Tensor(const Tensor&)>;
  /// Post-processing maps the raw output tensor to a class index.
  using Postprocess = std::function<std::size_t(const Tensor&)>;

  ModelWrapper(std::string name, Graph graph);

  const std::string& name() const { return name_; }
  Graph& graph() { return graph_; }
  const Graph& graph() const { return graph_; }

  void set_preprocess(Preprocess fn) { pre_ = std::move(fn); }
  void set_postprocess(Postprocess fn) { post_ = std::move(fn); }

  Tensor preprocess(const Tensor& raw) const { return pre_ ? pre_(raw) : raw; }
  std::size_t postprocess(const Tensor& out) const;

 private:
  std::string name_;
  Graph graph_;
  Preprocess pre_;
  Postprocess post_;
};

/// Measured deployment statistics (the Kenning report content).
struct MeasurementReport {
  std::string model;
  std::string target;
  std::size_t samples = 0;

  double mean_latency_ms = 0;
  double p90_latency_ms = 0;
  double arena_mib = 0;        ///< activation memory (resource usage)
  double weight_mib = 0;
  double estimated_power_w = 0;   ///< simulated targets only
  double estimated_energy_mj = 0; ///< per inference, simulated targets only

  /// Host runtime only: the op kinds dominating inference time, descending
  /// ("monitor inference time" / hotspot view of the Kenning report).
  std::vector<std::pair<std::string, double>> hotspots_ms;

  std::optional<ConfusionMatrix> quality;  ///< when labels were provided

  std::string to_markdown() const;
};

/// Runtime target interface.
class RuntimeTarget {
 public:
  virtual ~RuntimeTarget() = default;
  virtual std::string name() const = 0;
  virtual MeasurementReport benchmark(ModelWrapper& model, const std::vector<Sample>& dataset) = 0;
};

/// Executes on the host CPU with the reference executor; wall-clock latency.
class HostRuntime : public RuntimeTarget {
 public:
  std::string name() const override { return "host-cpu"; }
  MeasurementReport benchmark(ModelWrapper& model, const std::vector<Sample>& dataset) override;
};

/// Evaluates a catalog device through the performance model. Quality is
/// still measured by real execution (the numerics don't depend on the
/// simulated device), latency/power/energy come from the model.
class SimulatedTarget : public RuntimeTarget {
 public:
  SimulatedTarget(hw::DeviceSpec device, DType dtype);
  std::string name() const override { return device_.name; }
  MeasurementReport benchmark(ModelWrapper& model, const std::vector<Sample>& dataset) override;

 private:
  hw::DeviceSpec device_;
  DType dtype_;
};

/// End-to-end flow: optimize (pass pipeline) then deploy and measure on a
/// sequence of targets — one MeasurementReport per target.
class Flow {
 public:
  explicit Flow(ModelWrapper model) : model_(std::move(model)) {}

  Flow& optimize(std::unique_ptr<opt::Pass> pass);
  Flow& deploy_to(std::unique_ptr<RuntimeTarget> target);

  /// Run everything; returns per-target reports (optimization happens once,
  /// before the first deployment).
  std::vector<MeasurementReport> run(const std::vector<Sample>& dataset);

  const std::vector<opt::PassResult>& pass_log() const { return pass_log_; }
  ModelWrapper& model() { return model_; }

 private:
  ModelWrapper model_;
  opt::PassManager passes_;
  std::vector<std::unique_ptr<RuntimeTarget>> targets_;
  std::vector<opt::PassResult> pass_log_;
};

}  // namespace vedliot::kenning
