#pragma once
/// \file bus.hpp
/// \brief System bus: flat RAM plus memory-mapped peripherals.
///
/// Part of the Renode-analogue functional simulator (Sec. II-B): the same
/// software binary runs against simulated RAM/MMIO as it would on hardware.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace vedliot::sim {

class SimError : public Error {
 public:
  explicit SimError(const std::string& message) : Error(message) {}
};

/// Memory-mapped peripheral occupying [base, base+size).
class Peripheral {
 public:
  virtual ~Peripheral() = default;
  virtual std::string name() const = 0;
  virtual std::uint32_t base() const = 0;
  virtual std::uint32_t size() const = 0;
  virtual std::uint32_t read32(std::uint32_t offset) = 0;
  virtual void write32(std::uint32_t offset, std::uint32_t value) = 0;
};

class Bus {
 public:
  /// RAM occupies [ram_base, ram_base + ram_size).
  Bus(std::uint32_t ram_base, std::uint32_t ram_size);

  std::uint32_t ram_base() const { return ram_base_; }
  std::uint32_t ram_size() const { return static_cast<std::uint32_t>(ram_.size()); }

  /// Register a peripheral; regions must not overlap RAM or each other.
  void attach(std::shared_ptr<Peripheral> p);

  std::uint8_t read8(std::uint32_t addr);
  std::uint16_t read16(std::uint32_t addr);
  std::uint32_t read32(std::uint32_t addr);
  void write8(std::uint32_t addr, std::uint8_t v);
  void write16(std::uint32_t addr, std::uint16_t v);
  void write32(std::uint32_t addr, std::uint32_t v);

  /// Bulk program load into RAM.
  void load(std::uint32_t addr, std::span<const std::uint8_t> bytes);
  void load_words(std::uint32_t addr, std::span<const std::uint32_t> words);

  /// Introspection hook (Renode-style): called on every store with
  /// (address, value, byte width). Loads are not hooked (they dominate and
  /// rarely matter for CI assertions).
  using WriteHook = std::function<void(std::uint32_t, std::uint32_t, int)>;
  void set_write_hook(WriteHook hook) { write_hook_ = std::move(hook); }

 private:
  bool in_ram(std::uint32_t addr, std::uint32_t len) const;
  Peripheral* find_peripheral(std::uint32_t addr);

  std::uint32_t ram_base_;
  std::vector<std::uint8_t> ram_;
  std::vector<std::shared_ptr<Peripheral>> peripherals_;
  WriteHook write_hook_;
};

/// UART capturing written bytes (console output of the simulated program).
class Uart : public Peripheral {
 public:
  explicit Uart(std::uint32_t base) : base_(base) {}
  std::string name() const override { return "uart"; }
  std::uint32_t base() const override { return base_; }
  std::uint32_t size() const override { return 16; }
  std::uint32_t read32(std::uint32_t) override { return 0; }  // always ready
  void write32(std::uint32_t offset, std::uint32_t value) override;

  const std::string& output() const { return out_; }

 private:
  std::uint32_t base_;
  std::string out_;
};

/// CLINT-style machine timer: mtime (the core's cycle counter) at offsets
/// 0/4, mtimecmp at offsets 8/12. A machine-timer interrupt is pending
/// while mtime >= mtimecmp.
class Timer : public Peripheral {
 public:
  explicit Timer(std::uint32_t base) : base_(base) {}
  std::string name() const override { return "timer"; }
  std::uint32_t base() const override { return base_; }
  std::uint32_t size() const override { return 16; }
  std::uint32_t read32(std::uint32_t offset) override;
  void write32(std::uint32_t offset, std::uint32_t value) override;
  void tick(std::uint64_t cycles) { cycles_ = cycles; }

  /// Bind mtime to a live cycle source (the CPU); overrides tick().
  void bind_clock(std::function<std::uint64_t()> now) { now_ = std::move(now); }

  std::uint64_t mtime() const { return now_ ? now_() : cycles_; }
  std::uint64_t mtimecmp() const { return mtimecmp_; }
  bool interrupt_pending() const { return mtime() >= mtimecmp_; }

 private:
  std::uint32_t base_;
  std::uint64_t cycles_ = 0;
  std::uint64_t mtimecmp_ = ~0ull;
  std::function<std::uint64_t()> now_;
};

}  // namespace vedliot::sim
