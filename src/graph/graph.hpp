#pragma once
/// \file graph.hpp
/// \brief ONNX-like computational graph IR.
///
/// A Graph is a DAG of Nodes built in topological order (every node's inputs
/// must already exist, so node-id order is a valid execution order). The
/// optimizer performs surgery via bypass()/replace_input(); dead nodes stay
/// in place (keeping ids stable) and are skipped by topo_order().

#include <cstdint>
#include <string>
#include <vector>

#include "graph/attr.hpp"
#include "graph/op.hpp"
#include "util/error.hpp"
#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace vedliot {

using NodeId = std::int32_t;

/// Exception for structural graph errors.
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& message) : Error(message) {}
};

struct Node {
  NodeId id = -1;
  std::string name;
  OpKind kind = OpKind::kIdentity;
  AttrMap attrs;
  std::vector<NodeId> inputs;
  Shape out_shape;

  /// Trainable parameters; layout per kind:
  ///  Conv2d -> {weight [oc, ic/groups, kh, kw], bias [oc]?}
  ///  Dense  -> {weight [units, in], bias [units]?}
  ///  BatchNorm -> {gamma, beta, mean, var} each [C]
  /// May be empty when the graph is used purely analytically.
  std::vector<Tensor> weights;

  /// Storage dtype of the node's weights (set by quantization passes).
  DType weight_dtype = DType::kFP32;

  bool dead = false;
};

class Graph {
 public:
  explicit Graph(std::string name);

  const std::string& name() const { return name_; }

  /// Add a graph input with a fixed shape.
  NodeId add_input(const std::string& name, Shape shape);

  /// Add an operator node. All inputs must already exist and be live.
  /// Shape inference runs immediately; throws GraphError on invalid use.
  NodeId add(OpKind kind, const std::string& name, std::vector<NodeId> inputs,
             AttrMap attrs = {});

  Node& node(NodeId id);
  const Node& node(NodeId id) const;

  /// Find a live node by name; throws NotFound.
  NodeId find(const std::string& name) const;

  /// Total slots including dead nodes.
  std::size_t total_nodes() const { return nodes_.size(); }
  /// Live node count.
  std::size_t size() const;

  /// Live node ids in execution order.
  std::vector<NodeId> topo_order() const;

  /// Live nodes not consumed by any live node (the graph outputs).
  std::vector<NodeId> outputs() const;

  /// Live nodes of kind Input.
  std::vector<NodeId> inputs() const;

  /// Live consumers of a node.
  std::vector<NodeId> consumers(NodeId id) const;

  /// Remove a single-input node from the dataflow: consumers are rewired to
  /// its first input and the node is marked dead.
  void bypass(NodeId id);

  /// Replace every occurrence of \p old_input in \p node's input list.
  void replace_input(NodeId node, NodeId old_input, NodeId new_input);

  /// Re-run shape inference over the whole (live) graph; throws on mismatch.
  void infer_all();

  /// Shape inference for one node from its current inputs/attrs, without
  /// storing it. Lets analyses compare against the stored out_shape; throws
  /// GraphError on structurally broken nodes.
  Shape inferred_shape(NodeId id) const { return infer_shape(node(id)); }

  /// Monotonic mutation counter: bumped by every structural change
  /// (add/add_input/bypass/replace_input/infer_all/materialize_weights).
  /// Analyses key their caches on it.
  std::uint64_t version() const { return version_; }

  /// Mark the graph mutated through a non-member mutation (direct Node
  /// field edits via node()), invalidating cached analyses.
  void touch() { ++version_; }

  /// Structural validation: acyclicity by construction, live inputs, shapes.
  void validate() const;

  /// Analytic parameter count of one node (from attrs; no materialization).
  std::int64_t param_count(NodeId id) const;
  /// Analytic parameter count of the whole graph.
  std::int64_t total_params() const;

  /// Allocate and deterministically initialise weights for all parametric
  /// nodes (He-normal conv/dense, sane BatchNorm statistics).
  void materialize_weights(Rng& rng);

  /// True if every parametric live node has materialized weights.
  bool weights_materialized() const;

  /// Deep copy (used by optimization passes that keep the original).
  Graph clone() const;

 private:
  Shape infer_shape(const Node& n) const;
  void check_live(NodeId id) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::uint64_t version_ = 0;
};

/// Deep copy of \p graph with every Input node's leading (batch) dimension
/// set to \p batch, shapes re-inferred throughout. Weights are shared by
/// value (copied), so the result executes identically per batch lane; the
/// dynamic batcher builds one rebatched clone per power-of-two bucket width.
Graph rebatched(const Graph& graph, std::int64_t batch);

}  // namespace vedliot
