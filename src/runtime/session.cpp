#include "runtime/session.hpp"

#include "runtime/executor.hpp"
#include "runtime/qexecutor.hpp"

namespace vedliot::runtime {

namespace {

void check_batch(const std::map<std::string, Tensor>& feeds, std::int64_t max_batch) {
  if (max_batch <= 0) return;
  for (const auto& [name, t] : feeds) {
    if (t.shape().rank() >= 1 && t.shape().dim(0) > max_batch) {
      throw ExecError("feed '" + name + "' batch " + std::to_string(t.shape().dim(0)) +
                      " exceeds session max_batch " + std::to_string(max_batch));
    }
  }
}

class FloatSession final : public Session {
 public:
  FloatSession(const Graph& graph, const RunOptions& options)
      : graph_(graph), options_(options), exec_(graph) {
    exec_.instrument(options_.trace, options_.metrics);
    exec_.set_keep_activations(options_.keep_activations);
    exec_.set_threads(options_.exec.threads);
    exec_.set_simd(options_.exec.simd);
    exec_.set_inter_op(options_.exec.inter_op);
    exec_.set_use_gemm_conv(options_.use_gemm_conv);
    exec_.set_use_arena(options_.arena);
  }

  RunResult run(const std::map<std::string, Tensor>& feeds) override {
    check_batch(feeds, options_.exec.max_batch);
    RunResult result;
    result.outputs = exec_.run(feeds);
    result.nodes_executed = exec_.nodes_executed();
    return result;
  }

  const Graph& graph() const override { return graph_; }
  std::string backend() const override { return "float-reference"; }
  void set_exec_config(const ExecConfig& exec) override {
    options_.exec = exec;
    exec_.set_threads(exec.threads);
    exec_.set_simd(exec.simd);
    exec_.set_inter_op(exec.inter_op);
  }
  const ExecConfig& exec_config() const override { return options_.exec; }

 private:
  const Graph& graph_;
  RunOptions options_;
  Executor exec_;
};

class QuantizedSession final : public Session {
 public:
  QuantizedSession(const Graph& graph, const RunOptions& options)
      : graph_(graph), options_(options), exec_(graph) {
    exec_.instrument(options_.trace, options_.metrics);
    exec_.set_threads(options_.exec.threads);
    exec_.set_simd(options_.exec.simd);
    exec_.set_use_gemm_conv(options_.use_gemm_conv);
  }

  RunResult run(const std::map<std::string, Tensor>& feeds) override {
    check_batch(feeds, options_.exec.max_batch);
    const auto inputs = graph_.inputs();
    VEDLIOT_CHECK(inputs.size() == 1, "int8 session requires exactly one graph input");
    const std::string& input_name = graph_.node(inputs.front()).name;
    const auto it = feeds.find(input_name);
    if (it == feeds.end()) throw ExecError("missing feed for input '" + input_name + "'");
    if (feeds.size() != 1) {
      throw ExecError("int8 session takes exactly one feed, got " +
                      std::to_string(feeds.size()));
    }

    RunResult result;
    const QTensor q = exec_.run_single(it->second);
    result.outputs.emplace(graph_.node(graph_.outputs().front()).name, q.dequantize());
    result.nodes_executed = exec_.nodes_executed();
    result.saturations = exec_.saturations();
    return result;
  }

  const Graph& graph() const override { return graph_; }
  std::string backend() const override { return "int8"; }
  void set_exec_config(const ExecConfig& exec) override {
    options_.exec = exec;
    exec_.set_threads(exec.threads);
    exec_.set_simd(exec.simd);
  }
  const ExecConfig& exec_config() const override { return options_.exec; }

 private:
  const Graph& graph_;
  RunOptions options_;
  QuantizedExecutor exec_;
};

}  // namespace

const Tensor& RunResult::single() const {
  VEDLIOT_CHECK(outputs.size() == 1, "RunResult::single requires exactly one output");
  return outputs.begin()->second;
}

Tensor Session::run_single(const Tensor& input) {
  const auto inputs = graph().inputs();
  VEDLIOT_CHECK(inputs.size() == 1, "run_single requires exactly one graph input");
  RunResult result = run({{graph().node(inputs.front()).name, input}});
  VEDLIOT_CHECK(result.outputs.size() == 1, "run_single requires exactly one graph output");
  return std::move(result.outputs.begin()->second);
}

std::vector<Tensor> Session::run_batch(std::span<const Tensor> inputs) {
  const auto graph_inputs = graph().inputs();
  VEDLIOT_CHECK(graph_inputs.size() == 1, "run_batch requires exactly one graph input");
  VEDLIOT_CHECK(!inputs.empty(), "run_batch needs at least one input");
  const Node& in_node = graph().node(graph_inputs.front());
  const Tensor stacked = stack_batch(inputs);
  // The graph's input shape encodes its built batch; a mismatched stack is
  // a batcher bug (the batcher pads partial batches up to the built width).
  if (stacked.shape() != in_node.out_shape) {
    throw ExecError("run_batch stacked " + stacked.shape().to_string() +
                    " does not match graph input " + in_node.out_shape.to_string() +
                    " (pad partial batches to the built width)");
  }
  RunResult result = run({{in_node.name, stacked}});
  VEDLIOT_CHECK(result.outputs.size() == 1, "run_batch requires exactly one graph output");
  return split_batch(result.outputs.begin()->second);
}

void Session::set_max_batch(std::int64_t max_batch) {
  ExecConfig exec = exec_config();
  exec.max_batch = max_batch;
  set_exec_config(exec);
}

std::unique_ptr<Session> make_session(const Graph& graph, const RunOptions& options) {
  return std::make_unique<FloatSession>(graph, options);
}

std::unique_ptr<Session> make_quantized_session(const Graph& graph,
                                                const RunOptions& options) {
  return std::make_unique<QuantizedSession>(graph, options);
}

}  // namespace vedliot::runtime
