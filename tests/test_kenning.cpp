// Tests for the Kenning-analogue: metrics (confusion matrix, detection
// PR/AP) and the deployment flow (wrapper, optimizers, runtime targets).

#include <gtest/gtest.h>

#include <memory>

#include "exec_single.hpp"
#include "graph/zoo.hpp"
#include "hw/device.hpp"
#include "kenning/flow.hpp"
#include "kenning/metrics.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "util/rng.hpp"

namespace vedliot::kenning {
namespace {

TEST(ConfusionMatrix, AccuracyAndCells) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(1, 2);  // mistake
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 4.0 / 5.0);
  EXPECT_EQ(cm.count(1, 2), 1u);
  EXPECT_EQ(cm.count(2, 1), 0u);
}

TEST(ConfusionMatrix, PrecisionRecallF1) {
  ConfusionMatrix cm(2);
  // class 1: tp=3, fp=1 (truth 0 predicted 1), fn=2 (truth 1 predicted 0)
  for (int i = 0; i < 3; ++i) cm.add(1, 1);
  cm.add(0, 1);
  cm.add(1, 0);
  cm.add(1, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 3.0 / 5.0);
  const double p = 0.75, r = 0.6;
  EXPECT_NEAR(cm.f1(1), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionMatrix, EmptyClassesGiveZeroNotNan) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrix, Validation) {
  EXPECT_THROW(ConfusionMatrix(1), Error);
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), Error);
}

TEST(Iou, KnownOverlaps) {
  const Box a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
  EXPECT_DOUBLE_EQ(iou(a, Box{10, 10, 5, 5}), 0.0);  // touching corners
  // half overlap: inter=50, union=150
  EXPECT_NEAR(iou(a, Box{5, 0, 10, 10}), 50.0 / 150.0, 1e-12);
}

TEST(DetectionEval, PerfectDetector) {
  std::vector<GroundTruth> gt{{{0, 0, 10, 10}, 0}, {{20, 20, 10, 10}, 0}};
  std::vector<Detection> det{{{0, 0, 10, 10}, 0.9, 0}, {{20, 20, 10, 10}, 0.8, 0}};
  const auto eval = evaluate_detections(det, gt);
  EXPECT_EQ(eval.true_positives, 2u);
  EXPECT_EQ(eval.false_positives, 0u);
  EXPECT_EQ(eval.false_negatives, 0u);
  EXPECT_NEAR(eval.average_precision, 1.0, 1e-12);
}

TEST(DetectionEval, DuplicateDetectionsCountOnceAsTp) {
  std::vector<GroundTruth> gt{{{0, 0, 10, 10}, 0}};
  std::vector<Detection> det{{{0, 0, 10, 10}, 0.9, 0}, {{1, 1, 10, 10}, 0.8, 0}};
  const auto eval = evaluate_detections(det, gt);
  EXPECT_EQ(eval.true_positives, 1u);
  EXPECT_EQ(eval.false_positives, 1u);
}

TEST(DetectionEval, ImageIdsSeparateMatches) {
  std::vector<GroundTruth> gt{{{0, 0, 10, 10}, 1}};
  std::vector<Detection> det{{{0, 0, 10, 10}, 0.9, 2}};  // right box, wrong image
  const auto eval = evaluate_detections(det, gt);
  EXPECT_EQ(eval.true_positives, 0u);
  EXPECT_EQ(eval.false_negatives, 1u);
}

TEST(DetectionEval, ApHandComputed) {
  // One GT; two detections: high-scoring FP then TP.
  std::vector<GroundTruth> gt{{{0, 0, 10, 10}, 0}};
  std::vector<Detection> det{{{50, 50, 10, 10}, 0.9, 0}, {{0, 0, 10, 10}, 0.8, 0}};
  const auto eval = evaluate_detections(det, gt);
  // point 1: p=0, r=0; point 2: p=0.5, r=1 -> AP = 0.5 * (1-0) = 0.5
  EXPECT_NEAR(eval.average_precision, 0.5, 1e-12);
  ASSERT_EQ(eval.curve.size(), 2u);
  EXPECT_DOUBLE_EQ(eval.curve[1].recall, 1.0);
}

TEST(DetectionEval, IouThresholdGates) {
  std::vector<GroundTruth> gt{{{0, 0, 10, 10}, 0}};
  std::vector<Detection> det{{{3, 3, 10, 10}, 0.9, 0}};  // iou ~ 0.33
  EXPECT_EQ(evaluate_detections(det, gt, 0.5).true_positives, 0u);
  EXPECT_EQ(evaluate_detections(det, gt, 0.3).true_positives, 1u);
}

// ---------------------------------------------------------------------------
// Flow
// ---------------------------------------------------------------------------

ModelWrapper make_wrapper(std::uint64_t seed = 3) {
  Graph g = zoo::micro_mlp("clf", 1, 8, {16}, 3);
  Rng rng(seed);
  g.materialize_weights(rng);
  return ModelWrapper("clf", std::move(g));
}

std::vector<Sample> make_dataset(const ModelWrapper& wrapper, std::size_t n) {
  // Label every sample with the model's own prediction so accuracy on the
  // unmodified model is exactly 1 (a clean baseline for optimizations).
  std::vector<Sample> out;
  Graph g = wrapper.graph().clone();
  Executor exec(g);
  Rng rng(77);
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    s.input = Tensor(Shape{1, 8}, rng.normal_vector(8));
    const Tensor y = testutil::exec_single(exec, g, s.input);
    s.label = wrapper.postprocess(y);
    out.push_back(std::move(s));
  }
  return out;
}

TEST(ModelWrapper, DefaultPostprocessIsArgmax) {
  ModelWrapper w = make_wrapper();
  Tensor t(Shape{1, 3}, {0.1f, 0.7f, 0.2f});
  EXPECT_EQ(w.postprocess(t), 1u);
}

TEST(ModelWrapper, CustomHooks) {
  ModelWrapper w = make_wrapper();
  w.set_preprocess([](const Tensor& t) {
    Tensor out = t;
    for (float& v : out.data()) v *= 2.0f;
    return out;
  });
  w.set_postprocess([](const Tensor&) { return std::size_t{2}; });
  EXPECT_EQ(w.postprocess(Tensor(Shape{1, 3})), 2u);
  EXPECT_EQ(w.preprocess(Tensor(Shape{1}, {3.0f})).at(0), 6.0f);
}

TEST(HostRuntime, MeasuresLatencyMemoryQuality) {
  ModelWrapper w = make_wrapper();
  const auto dataset = make_dataset(w, 20);
  HostRuntime rt;
  const auto report = rt.benchmark(w, dataset);
  EXPECT_EQ(report.samples, 20u);
  EXPECT_GT(report.mean_latency_ms, 0.0);
  EXPECT_GE(report.p90_latency_ms, report.mean_latency_ms * 0.5);
  EXPECT_GT(report.arena_mib, 0.0);
  EXPECT_GT(report.weight_mib, 0.0);
  ASSERT_TRUE(report.quality.has_value());
  EXPECT_DOUBLE_EQ(report.quality->accuracy(), 1.0);  // self-labelled
}

TEST(SimulatedTarget, UsesPerfModelNumbers) {
  ModelWrapper w = make_wrapper();
  const auto dataset = make_dataset(w, 4);
  SimulatedTarget target(hw::find_device("MyriadX"), DType::kINT8);
  const auto report = target.benchmark(w, dataset);
  EXPECT_EQ(report.target, "MyriadX");
  EXPECT_GT(report.estimated_power_w, 0.0);
  EXPECT_GT(report.estimated_energy_mj, 0.0);
  ASSERT_TRUE(report.quality.has_value());
}

TEST(Flow, OptimizeThenDeployAcrossTargets) {
  Flow flow(make_wrapper());
  flow.optimize(std::make_unique<opt::FuseBatchNormPass>())
      .optimize(std::make_unique<opt::QuantizeWeightsPass>(DType::kINT8));
  flow.deploy_to(std::make_unique<HostRuntime>())
      .deploy_to(std::make_unique<SimulatedTarget>(hw::find_device("EdgeTPU"), DType::kINT8));
  const auto dataset = make_dataset(make_wrapper(), 12);
  const auto reports = flow.run(dataset);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(flow.pass_log().size(), 2u);
  // INT8 quantization must keep the self-labelled accuracy near-perfect
  ASSERT_TRUE(reports[0].quality.has_value());
  EXPECT_GE(reports[0].quality->accuracy(), 0.9);
}

TEST(Flow, ReportRendersMarkdown) {
  ModelWrapper w = make_wrapper();
  HostRuntime rt;
  const auto report = rt.benchmark(w, make_dataset(w, 4));
  const std::string md = report.to_markdown();
  EXPECT_NE(md.find("## Deployment report"), std::string::npos);
  EXPECT_NE(md.find("mean latency"), std::string::npos);
  EXPECT_NE(md.find("Confusion matrix"), std::string::npos);
}

TEST(Flow, EmptyDatasetStillMeasuresSimulatedTargets) {
  Flow flow(make_wrapper());
  flow.deploy_to(std::make_unique<SimulatedTarget>(hw::find_device("MyriadX"), DType::kINT8));
  const auto reports = flow.run({});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GT(reports[0].mean_latency_ms, 0.0);
  EXPECT_FALSE(reports[0].quality.has_value());
}

}  // namespace
}  // namespace vedliot::kenning
// appended: hotspot profiling in the host-runtime report
namespace vedliot::kenning {
namespace {

TEST(HostRuntime, ReportsHotspots) {
  Graph g = zoo::micro_cnn("hot", 1, 1, 16, 4);
  Rng rng(8);
  g.materialize_weights(rng);
  ModelWrapper wrapper("hot", std::move(g));
  std::vector<Sample> dataset;
  Rng data_rng(9);
  for (int i = 0; i < 4; ++i) {
    Sample s;
    s.input = Tensor(Shape{1, 1, 16, 16}, data_rng.normal_vector(256));
    s.label = 0;
    dataset.push_back(std::move(s));
  }
  HostRuntime rt;
  const auto report = rt.benchmark(wrapper, dataset);
  ASSERT_FALSE(report.hotspots_ms.empty());
  EXPECT_EQ(report.hotspots_ms.front().first, "Conv2d");
  EXPECT_NE(report.to_markdown().find("hottest ops"), std::string::npos);
}

}  // namespace
}  // namespace vedliot::kenning
