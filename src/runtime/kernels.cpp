#include "runtime/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace vedliot::runtime_kernels {

float apply_activation(float x, OpKind kind, double alpha) {
  switch (kind) {
    case OpKind::kRelu: return x > 0.0f ? x : 0.0f;
    case OpKind::kRelu6: return std::clamp(x, 0.0f, 6.0f);
    case OpKind::kLeakyRelu: return x > 0.0f ? x : static_cast<float>(alpha) * x;
    case OpKind::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
    case OpKind::kHSigmoid: return std::clamp(x / 6.0f + 0.5f, 0.0f, 1.0f);
    case OpKind::kHSwish: return x * std::clamp(x / 6.0f + 0.5f, 0.0f, 1.0f);
    case OpKind::kTanh: return std::tanh(x);
    case OpKind::kMish: {
      const float sp = std::log1p(std::exp(x));  // softplus
      return x * std::tanh(sp);
    }
    default: return x;
  }
}

double Conv2dGeometry::macs() const {
  return static_cast<double>(batch) * static_cast<double>(out_c) *
         static_cast<double>(cols()) * static_cast<double>(patch());
}

namespace {

/// Shared im2col: one packed row per (ic, kh, kw) patch tap, one column per
/// output pixel. Interior kh rows are contiguous memcpy-able runs when
/// stride == 1; the generic path below is simple strided loads with zero
/// fill at the borders (correct for every stride/pad combination).
template <typename T>
void im2col_rows(const T* in, const Conv2dGeometry& g, std::int64_t b, std::int64_t group,
                 std::int64_t row_lo, std::int64_t row_hi, T* col) {
  const std::int64_t icg = g.icg(), k = g.kernel, OH = g.out_h, OW = g.out_w;
  const std::int64_t IH = g.in_h, IW = g.in_w;
  const std::int64_t cols = g.cols();
  for (std::int64_t row = row_lo; row < row_hi; ++row) {
    const std::int64_t ic = row / (k * k);
    const std::int64_t kh = (row / k) % k;
    const std::int64_t kw = row % k;
    const std::int64_t in_c = group * icg + ic;
    const T* plane = in + ((b * g.in_c + in_c) * IH) * IW;
    T* dst = col + row * cols;
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      const std::int64_t ih = oh * g.stride - g.pad + kh;
      if (ih < 0 || ih >= IH) {
        std::memset(dst + oh * OW, 0, static_cast<std::size_t>(OW) * sizeof(T));
        continue;
      }
      const T* src_row = plane + ih * IW;
      T* dst_row = dst + oh * OW;
      const std::int64_t iw0 = -g.pad + kw;
      if (g.stride == 1) {
        // valid source range [max(0,-iw0), min(OW, IW-iw0))
        const std::int64_t lo = std::max<std::int64_t>(0, -iw0);
        const std::int64_t hi = std::min<std::int64_t>(OW, IW - iw0);
        if (lo > 0) std::memset(dst_row, 0, static_cast<std::size_t>(lo) * sizeof(T));
        if (hi > lo) {
          std::memcpy(dst_row + lo, src_row + iw0 + lo,
                      static_cast<std::size_t>(hi - lo) * sizeof(T));
        }
        if (hi < OW) {
          std::memset(dst_row + std::max(hi, lo), 0,
                      static_cast<std::size_t>(OW - std::max(hi, lo)) * sizeof(T));
        }
      } else {
        for (std::int64_t ow = 0; ow < OW; ++ow) {
          const std::int64_t iw = ow * g.stride + iw0;
          dst_row[ow] = (iw >= 0 && iw < IW) ? src_row[iw] : T{0};
        }
      }
    }
  }
}

std::int8_t requant_sat(double v, std::uint64_t& saturations) {
  const double r = std::nearbyint(v);
  if (r > 127.0) {
    ++saturations;
    return 127;
  }
  if (r < -128.0) {
    ++saturations;
    return -128;
  }
  return static_cast<std::int8_t>(r);
}

}  // namespace

void im2col_f32(const float* in, const Conv2dGeometry& g, std::int64_t b, std::int64_t group,
                std::int64_t row_lo, std::int64_t row_hi, float* col) {
  im2col_rows(in, g, b, group, row_lo, row_hi, col);
}

void im2col_s8(const std::int8_t* in, const Conv2dGeometry& g, std::int64_t b,
               std::int64_t group, std::int64_t row_lo, std::int64_t row_hi, std::int8_t* col) {
  im2col_rows(in, g, b, group, row_lo, row_hi, col);
}

void gemm_rows_f32(const float* a, const float* b, float* c, std::int64_t m_lo,
                   std::int64_t m_hi, std::int64_t n, std::int64_t k, const float* bias,
                   OpKind act, double alpha) {
  // Column blocking keeps a [K x kNB] panel of B plus one accumulator row
  // hot; the kp loop is an axpy over a contiguous row of B, which the
  // compiler vectorizes. k-order is 0..K-1 for every element regardless of
  // blocking, so the result is independent of the (m) partition.
  constexpr std::int64_t kNB = 256;
  for (std::int64_t j0 = 0; j0 < n; j0 += kNB) {
    const std::int64_t jn = std::min(kNB, n - j0);
    for (std::int64_t m = m_lo; m < m_hi; ++m) {
      float acc[kNB];
      const float init = bias != nullptr ? bias[m] : 0.0f;
      for (std::int64_t j = 0; j < jn; ++j) acc[j] = init;
      const float* arow = a + m * k;
      for (std::int64_t kp = 0; kp < k; ++kp) {
        const float av = arow[kp];
        if (av == 0.0f) continue;  // pruned weights are exact zeros
        const float* brow = b + kp * n + j0;
        for (std::int64_t j = 0; j < jn; ++j) acc[j] += av * brow[j];
      }
      float* crow = c + m * n + j0;
      if (act == OpKind::kIdentity) {
        for (std::int64_t j = 0; j < jn; ++j) crow[j] = acc[j];
      } else {
        for (std::int64_t j = 0; j < jn; ++j) crow[j] = apply_activation(acc[j], act, alpha);
      }
    }
  }
}

void dense_rows_f32(const float* w, const float* xt, float* y, std::int64_t u_lo,
                    std::int64_t u_hi, std::int64_t batch, std::int64_t features,
                    std::int64_t units, const float* bias, OpKind act, double alpha) {
  // Lane blocking bounds the accumulator tile; the inner j loop carries
  // independent per-lane sums, so it vectorizes without reassociating any
  // single lane's f-order. A per-sample dot product is a serial dependency
  // chain the compiler cannot reorder — amortizing the weight row across
  // lanes is where the batch >= 2 speedup comes from. No zero-skip here:
  // dense weights are not pruned, and the epilogue must match the
  // historical per-sample loop bit for bit.
  constexpr std::int64_t kJB = 64;
  for (std::int64_t j0 = 0; j0 < batch; j0 += kJB) {
    const std::int64_t jn = std::min(kJB, batch - j0);
    for (std::int64_t u = u_lo; u < u_hi; ++u) {
      float acc[kJB];
      const float init = bias != nullptr ? bias[u] : 0.0f;
      for (std::int64_t j = 0; j < jn; ++j) acc[j] = init;
      const float* wrow = w + u * features;
      for (std::int64_t f = 0; f < features; ++f) {
        const float wv = wrow[f];
        const float* xrow = xt + f * batch + j0;
        for (std::int64_t j = 0; j < jn; ++j) acc[j] += wv * xrow[j];
      }
      if (act == OpKind::kIdentity) {
        for (std::int64_t j = 0; j < jn; ++j) y[(j0 + j) * units + u] = acc[j];
      } else {
        for (std::int64_t j = 0; j < jn; ++j) {
          y[(j0 + j) * units + u] = apply_activation(acc[j], act, alpha);
        }
      }
    }
  }
}

std::uint64_t gemm_rows_s8(const std::int8_t* a, const std::int8_t* b, std::int8_t* c,
                           std::int64_t m_lo, std::int64_t m_hi, std::int64_t n,
                           std::int64_t k, const std::int32_t* bias, const double* mult,
                           std::int32_t q_lo, std::int32_t q_hi) {
  constexpr std::int64_t kNB = 256;
  std::uint64_t saturations = 0;
  for (std::int64_t j0 = 0; j0 < n; j0 += kNB) {
    const std::int64_t jn = std::min(kNB, n - j0);
    for (std::int64_t m = m_lo; m < m_hi; ++m) {
      std::int32_t acc[kNB];
      const std::int32_t init = bias != nullptr ? bias[m] : 0;
      for (std::int64_t j = 0; j < jn; ++j) acc[j] = init;
      const std::int8_t* arow = a + m * k;
      for (std::int64_t kp = 0; kp < k; ++kp) {
        const std::int32_t av = arow[kp];
        if (av == 0) continue;
        const std::int8_t* brow = b + kp * n + j0;
        for (std::int64_t j = 0; j < jn; ++j) acc[j] += av * static_cast<std::int32_t>(brow[j]);
      }
      const double m_mult = mult[m];
      std::int8_t* crow = c + m * n + j0;
      for (std::int64_t j = 0; j < jn; ++j) {
        std::int8_t q = requant_sat(static_cast<double>(acc[j]) * m_mult, saturations);
        if (q < q_lo) q = static_cast<std::int8_t>(q_lo);
        if (q > q_hi) q = static_cast<std::int8_t>(q_hi);
        crow[j] = q;
      }
    }
  }
  return saturations;
}

void depthwise_f32(const float* in, const float* w, const float* bias, float* out,
                   const Conv2dGeometry& g, std::int64_t b, std::int64_t c_lo,
                   std::int64_t c_hi, OpKind act, double alpha) {
  const std::int64_t k = g.kernel, IH = g.in_h, IW = g.in_w, OH = g.out_h, OW = g.out_w;
  for (std::int64_t c = c_lo; c < c_hi; ++c) {
    const float* plane = in + ((b * g.in_c + c) * IH) * IW;
    const float* wc = w + c * k * k;
    float* oplane = out + ((b * g.out_c + c) * OH) * OW;
    const float init = bias != nullptr ? bias[c] : 0.0f;
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        float acc = init;
        for (std::int64_t kh = 0; kh < k; ++kh) {
          const std::int64_t ih = oh * g.stride - g.pad + kh;
          if (ih < 0 || ih >= IH) continue;
          for (std::int64_t kw = 0; kw < k; ++kw) {
            const std::int64_t iw = ow * g.stride - g.pad + kw;
            if (iw < 0 || iw >= IW) continue;
            acc += plane[ih * IW + iw] * wc[kh * k + kw];
          }
        }
        oplane[oh * OW + ow] = apply_activation(acc, act, alpha);
      }
    }
  }
}

std::uint64_t depthwise_s8(const std::int8_t* in, const std::int8_t* w, const std::int32_t* bias,
                           std::int8_t* out, const Conv2dGeometry& g, std::int64_t b,
                           std::int64_t c_lo, std::int64_t c_hi, const double* mult,
                           std::int32_t q_lo, std::int32_t q_hi) {
  const std::int64_t k = g.kernel, IH = g.in_h, IW = g.in_w, OH = g.out_h, OW = g.out_w;
  std::uint64_t saturations = 0;
  for (std::int64_t c = c_lo; c < c_hi; ++c) {
    const std::int8_t* plane = in + ((b * g.in_c + c) * IH) * IW;
    const std::int8_t* wc = w + c * k * k;
    std::int8_t* oplane = out + ((b * g.out_c + c) * OH) * OW;
    const std::int32_t init = bias != nullptr ? bias[c] : 0;
    const double m_mult = mult[c];
    for (std::int64_t oh = 0; oh < OH; ++oh) {
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        std::int32_t acc = init;
        for (std::int64_t kh = 0; kh < k; ++kh) {
          const std::int64_t ih = oh * g.stride - g.pad + kh;
          if (ih < 0 || ih >= IH) continue;
          for (std::int64_t kw = 0; kw < k; ++kw) {
            const std::int64_t iw = ow * g.stride - g.pad + kw;
            if (iw < 0 || iw >= IW) continue;
            acc += static_cast<std::int32_t>(plane[ih * IW + iw]) *
                   static_cast<std::int32_t>(wc[kh * k + kw]);
          }
        }
        std::int8_t q = requant_sat(static_cast<double>(acc) * m_mult, saturations);
        if (q < q_lo) q = static_cast<std::int8_t>(q_lo);
        if (q > q_hi) q = static_cast<std::int8_t>(q_hi);
        oplane[oh * OW + ow] = q;
      }
    }
  }
  return saturations;
}

}  // namespace vedliot::runtime_kernels
