#pragma once
/// \file fft.hpp
/// \brief Radix-2 FFT and spectrum helpers for the signal-processing
/// pre-processing stages of the industrial use cases (Sec. III step 1:
/// "preparation of data pre-processing ... routines").

#include <complex>
#include <span>
#include <vector>

namespace vedliot::dsp {

/// In-place iterative radix-2 Cooley-Tukey FFT. Size must be a power of
/// two; throws InvalidArgument otherwise. Set \p inverse for the inverse
/// transform (includes the 1/N normalisation).
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Magnitude spectrum of a real signal: |FFT(x)| for bins [0, N/2),
/// normalised by N/2 so a unit-amplitude sinusoid lands at ~1.0 in its bin.
/// The input is zero-padded or truncated to \p n_fft (power of two).
std::vector<double> magnitude_spectrum(std::span<const float> signal, std::size_t n_fft);

/// Von-Hann window applied in place.
void hann_window(std::span<double> frame);

/// Short-time energy spectrogram: frames of \p n_fft samples hopped by
/// \p hop, Hann-windowed, magnitude per bin. Returns frames x (n_fft/2).
std::vector<std::vector<double>> spectrogram(std::span<const float> signal, std::size_t n_fft,
                                             std::size_t hop);

/// Frequency of bin \p k at the given sample rate and FFT size.
double bin_frequency_hz(std::size_t k, double sample_rate_hz, std::size_t n_fft);

}  // namespace vedliot::dsp
