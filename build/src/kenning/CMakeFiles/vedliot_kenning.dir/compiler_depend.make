# Empty compiler generated dependencies file for vedliot_kenning.
# This may be replaced when dependencies are built.
