#include "opt/pass.hpp"

namespace vedliot::opt {

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<PassResult> PassManager::run(Graph& g) {
  std::vector<PassResult> results;
  results.reserve(passes_.size());
  for (auto& pass : passes_) {
    results.push_back(pass->run(g));
    g.validate();
  }
  return results;
}

}  // namespace vedliot::opt
