#pragma once
/// \file verifier.hpp
/// \brief Strict IR verifier with per-OpKind contracts.
///
/// Where Graph::validate() throws on the first structural problem, the
/// verifier checks every live node against the full operator contract —
/// input arity, typed attribute schemas (required/optional/unknown/value
/// domain), weight count/shape/dtype consistency, quantization-attr
/// completeness, fusion-tag validity, reachability — and accumulates one
/// Finding per violation. Callers (PassManager, package loader, the
/// vedliot-lint CLI) decide severity policy from the Report.
///
/// Check-id catalog (stable, dotted; group prefix = toggle):
///   ir.input.range/order/dead  ir.arity  ir.attr.missing/type/unknown/value
///   ir.shape.stale/invalid     ir.name.duplicate/empty
///   ir.graph.no_inputs/no_outputs  ir.input.unused  ir.unreachable
///   weight.unexpected/count/bias/shape/partial/nonfinite/dtype
///   quant.act_scale.missing/value  quant.weight_dtype.dangling
///   quant.fused_act.unsupported
///   fusion.fused_act.invalid/misplaced  fusion.fused_alpha.dangling
///   fusion.fused_bn.misplaced/bias
///   memory.dataflow  memory.peak/traffic/reuse (notes)

#include <string_view>

#include "analysis/finding.hpp"
#include "graph/graph.hpp"

namespace vedliot::analysis {

/// Which check groups to run; all on by default.
struct VerifyOptions {
  bool ir = true;      ///< structure, arity, attr schemas, shapes, reachability
  bool weights = true; ///< weight count/shape/bias/dtype/finiteness
  bool quant = true;   ///< act_scale completeness, dangling weight_dtype
  bool fusion = true;  ///< fused_act/fused_alpha/fused_bn tag validity
  bool memory = true;  ///< liveness-derived statistics (notes)

  static VerifyOptions all() { return {}; }
  static VerifyOptions none() { return {false, false, false, false, false}; }
};

/// Parse a comma-separated group list ("ir,quant,fusion,memory,weights");
/// "all" selects everything. Throws InvalidArgument on unknown group names.
VerifyOptions parse_check_groups(std::string_view csv);

/// Run the enabled check groups over \p g and return all findings.
/// Never throws on IR defects — they become error findings.
Report verify_graph(const Graph& g, const VerifyOptions& opts = VerifyOptions::all());

/// Convenience: verify and throw GraphError (message = findings table) if
/// any error-severity finding is present. Drop-in for Graph::validate()
/// call sites that must keep throwing semantics.
void verify_or_throw(const Graph& g, const VerifyOptions& opts = VerifyOptions::all());

}  // namespace vedliot::analysis
