// Tests for the static WASM bytecode verifier: the interval domain, the
// three verification layers (structural / abstract interpretation / cost
// bounds), the machine-checked soundness contract over a seeded fuzz sweep,
// and the admission gate it feeds (enclave refusal, attest_and_admit, serve
// tenant cost surcharges).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "analysis/wasm_verifier.hpp"
#include "graph/zoo.hpp"
#include "platform/baseboard.hpp"
#include "platform/fabric.hpp"
#include "platform/faults.hpp"
#include "platform/microserver.hpp"
#include "security/attestation.hpp"
#include "security/enclave.hpp"
#include "security/kvstore.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

using analysis::Interval;
using security::WFunction;
using security::WInstr;
using security::WModule;
using security::WOp;
using security::WasmTrap;
using security::WasmVm;

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

TEST(Interval, JoinAndWiden) {
  const Interval a{1, 5}, b{3, 9};
  EXPECT_EQ(analysis::interval_join(a, b), (Interval{1, 9}));
  // A bound that moved jumps to the i32 extreme; a stable bound stays.
  EXPECT_EQ(analysis::interval_widen({0, 5}, {0, 6}), (Interval{0, Interval::kMax}));
  EXPECT_EQ(analysis::interval_widen({0, 5}, {-1, 5}), (Interval{Interval::kMin, 5}));
  EXPECT_EQ(analysis::interval_widen({0, 5}, {0, 5}), (Interval{0, 5}));
}

TEST(Interval, AddSubDetectWrap) {
  EXPECT_EQ(analysis::interval_add({1, 2}, {10, 20}), (Interval{11, 22}));
  // INT32_MAX + 1 can wrap in the VM's uint32 arithmetic: must go to top.
  EXPECT_TRUE(analysis::interval_add({Interval::kMax, Interval::kMax}, {1, 1}).is_top());
  EXPECT_EQ(analysis::interval_sub({10, 20}, {1, 2}), (Interval{8, 19}));
  EXPECT_TRUE(analysis::interval_sub({Interval::kMin, Interval::kMin}, {1, 1}).is_top());
}

TEST(Interval, MulCorners) {
  EXPECT_EQ(analysis::interval_mul({-3, 2}, {4, 5}), (Interval{-15, 10}));
  EXPECT_TRUE(analysis::interval_mul({1 << 20, 1 << 20}, {1 << 20, 1 << 20}).is_top());
}

TEST(Interval, DivRemContainConcreteResults) {
  // One-signed divisor: exact corner arithmetic.
  EXPECT_EQ(analysis::interval_div_s({10, 20}, {2, 5}), (Interval{2, 10}));
  EXPECT_EQ(analysis::interval_div_s({-20, -10}, {2, 5}), (Interval{-10, -2}));
  // Remainder magnitude bounded by divisor and dividend, sign of dividend.
  const Interval r = analysis::interval_rem_s({0, 100}, {7, 7});
  EXPECT_TRUE(r.contains(0));
  EXPECT_TRUE(r.contains(6));
  EXPECT_FALSE(r.contains(-1));
  EXPECT_FALSE(r.contains(7));
}

TEST(Interval, BitwiseBounds) {
  EXPECT_EQ(analysis::interval_and({0, 100}, {0, 15}), (Interval{0, 15}));
  EXPECT_TRUE(analysis::interval_and({-5, 5}, {-5, 5}).is_top());
  // x | y for x,y in [0,5] stays under the covering mask 7 and >= max lo.
  const Interval o = analysis::interval_or({2, 5}, {1, 5});
  EXPECT_TRUE(o.within(2, 7));
  EXPECT_TRUE(analysis::interval_xor({0, 5}, {0, 5}).within(0, 7));
  EXPECT_EQ(analysis::interval_shl({1, 3}, {2, 2}), (Interval{4, 12}));
  EXPECT_EQ(analysis::interval_shr_s({-8, 8}, {1, 1}), (Interval{-4, 4}));
  EXPECT_EQ(analysis::interval_bool(), (Interval{0, 1}));
}

// Exhaustive containment: for small operand ranges, every concrete VM result
// (wrapping i32) must land inside the abstract result.
TEST(Interval, TransferSoundnessExhaustiveSmall) {
  const std::vector<Interval> samples = {
      {0, 3}, {-2, 2}, {-3, -1}, {5, 9}, {Interval::kMax - 1, Interval::kMax}};
  auto wrap32 = [](std::int64_t v) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
  };
  for (const Interval& a : samples) {
    for (const Interval& b : samples) {
      const Interval sum = analysis::interval_add(a, b);
      const Interval dif = analysis::interval_sub(a, b);
      const Interval mul = analysis::interval_mul(a, b);
      for (std::int64_t x = a.lo; x <= a.hi; ++x) {
        for (std::int64_t y = b.lo; y <= b.hi; ++y) {
          EXPECT_TRUE(sum.contains(wrap32(x + y))) << x << "+" << y;
          EXPECT_TRUE(dif.contains(wrap32(x - y))) << x << "-" << y;
          EXPECT_TRUE(mul.contains(wrap32(x * y))) << x << "*" << y;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Verifier: clean modules
// ---------------------------------------------------------------------------

WModule add_module() {
  WModule m;
  m.code = {{WOp::kLocalGet, 0}, {WOp::kLocalGet, 1}, {WOp::kAdd, 0}, {WOp::kRet, 0}};
  m.functions = {{"add", 0, 2, 2, true}};
  return m;
}

// A branched but loop-free module: abs(x) via kJmpIfZ over a comparison.
// Both arms reach the kRet at pc 8 with exactly one value on the stack.
WModule abs_module() {
  WModule m;
  m.code = {
      {WOp::kLocalGet, 0},  // 0: x (the eventual return value)
      {WOp::kLocalGet, 0},  // 1: x (the branch condition copy)
      {WOp::kConst, 0},     // 2
      {WOp::kLtS, 0},       // 3: x < 0
      {WOp::kJmpIfZ, 8},    // 4: not negative -> return x as pushed
      {WOp::kConst, -1},    // 5
      {WOp::kMul, 0},       // 6: x * -1
      {WOp::kJmp, 8},       // 7
      {WOp::kRet, 0},       // 8
  };
  m.functions = {{"abs", 0, 1, 1, true}};
  return m;
}

TEST(WasmVerifier, CleanStraightLineModuleFullyAccepted) {
  const auto res = analysis::verify_module(add_module());
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.accepted());
  EXPECT_TRUE(res.memory_proven);
  EXPECT_TRUE(res.arithmetic_proven);
  EXPECT_TRUE(res.cost_bounded);
  ASSERT_EQ(res.functions.size(), 1u);
  EXPECT_TRUE(res.functions[0].fuel_bound.has_value());
  EXPECT_FALSE(res.functions[0].has_loop);
  EXPECT_FALSE(res.functions[0].recursive);
  EXPECT_EQ(res.functions[0].max_stack_depth, 2u);
}

TEST(WasmVerifier, StaticFuelBoundCoversMeasuredRetirement) {
  const WModule m = add_module();
  const auto res = analysis::verify_module(m);
  ASSERT_TRUE(res.cost_bounded);
  WasmVm vm(m);
  EXPECT_EQ(vm.invoke("add", {20, 22}), 42);
  // The bound is worst-case over all paths; for straight-line code, exact.
  EXPECT_EQ(res.module_fuel_bound, vm.instructions_retired());
  EXPECT_EQ(res.module_fuel_bound, 4u);
}

TEST(WasmVerifier, BranchedModuleBoundIsLongestPath) {
  const WModule m = abs_module();
  const auto res = analysis::verify_module(m);
  EXPECT_TRUE(res.ok()) << res.report.to_table();
  ASSERT_TRUE(res.cost_bounded);
  WasmVm vm(m);
  EXPECT_EQ(vm.invoke("abs", {-7}), 7);
  const std::uint64_t negative_path = vm.instructions_retired();
  EXPECT_EQ(vm.invoke("abs", {7}), 7);
  const std::uint64_t positive_path = vm.instructions_retired() - negative_path;
  // Static bound >= every measured path, equal to the longest one.
  EXPECT_GE(res.module_fuel_bound, negative_path);
  EXPECT_GE(res.module_fuel_bound, positive_path);
  EXPECT_EQ(res.module_fuel_bound, std::max(negative_path, positive_path));
}

TEST(WasmVerifier, KvModuleVerifiedButUnprovenAndUnbounded) {
  const auto res = analysis::verify_module(security::build_kv_module(64));
  // Loops with data-dependent indexing: runnable (no errors) but neither
  // memory-proven nor cost-bounded — exactly the class that needs runtime
  // fuel metering and bounds checks.
  EXPECT_TRUE(res.ok()) << res.report.to_table();
  EXPECT_FALSE(res.accepted());
  EXPECT_FALSE(res.memory_proven);
  EXPECT_FALSE(res.cost_bounded);
  EXPECT_TRUE(res.report.has("wasm.mem.unproven"));
  EXPECT_TRUE(res.report.has("wasm.cost.unbounded"));
  EXPECT_FALSE(res.report.has("wasm.verify.budget"));
  for (const auto& f : res.functions) EXPECT_TRUE(f.has_loop) << f.name;
}

TEST(WasmVerifier, HostSignaturesCheckArityAndRegistration) {
  WModule m;
  m.code = {{WOp::kConst, 1}, {WOp::kHostCall, 0}, {WOp::kRet, 0}};
  m.functions = {{"f", 0, 0, 0, true}};
  const std::vector<analysis::WasmHostSig> one_arg = {{"log", 1}};
  EXPECT_TRUE(analysis::verify_module(m, one_arg).ok());
  // Same module against a 2-arg import: provable stack underflow at the call.
  const std::vector<analysis::WasmHostSig> two_args = {{"log2", 2}};
  const auto res = analysis::verify_module(m, two_args);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.report.has("wasm.host.arity"));
  // And against no registered imports at all: a structural error.
  EXPECT_TRUE(analysis::verify_module(m).report.has("wasm.struct.host.target"));
}

// ---------------------------------------------------------------------------
// Defect classes: static check id + companion unverified-execution behavior
// ---------------------------------------------------------------------------

std::string trap_message(WasmVm& vm, const std::string& fn,
                         const std::vector<std::int32_t>& args) {
  try {
    (void)vm.invoke(fn, args);
  } catch (const WasmTrap& t) {
    return t.what();
  }
  return "<no trap>";
}

struct DefectCase {
  const char* name;
  const char* check;        ///< stable wasm.* id the verifier must emit
  const char* trap_substr;  ///< substring of the trap when run unverified
  WModule (*make)();
};

TEST(WasmVerifier, DefectClassesCarryStableCheckIdsAndTrapUnverified) {
  const DefectCase cases[] = {
      {"wild-jump", "wasm.struct.jump.target", "pc out of range",
       [] {
         WModule m;
         m.code = {{WOp::kJmp, 99}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"fallthrough", "wasm.flow.fallthrough", "pc out of range",
       [] {
         WModule m;
         m.code = {{WOp::kConst, 1}, {WOp::kDrop, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"call-target", "wasm.struct.call.target", "call target out of range",
       [] {
         WModule m;
         m.code = {{WOp::kCall, 9}, {WOp::kHalt, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"host-target", "wasm.struct.host.target", "host import out of range",
       [] {
         WModule m;
         m.code = {{WOp::kHostCall, 3}, {WOp::kHalt, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"local-index", "wasm.struct.local.index", "local index out of range",
       [] {
         WModule m;
         m.code = {{WOp::kLocalGet, 7}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 1, true}};
         return m;
       }},
      {"stack-underflow", "wasm.stack.underflow", "value stack underflow",
       [] {
         WModule m;
         m.code = {{WOp::kAdd, 0}, {WOp::kHalt, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"ret-missing", "wasm.stack.ret.missing", "value stack underflow",
       [] {
         WModule m;
         m.code = {{WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 0, true}};
         return m;
       }},
      {"mem-oob", "wasm.mem.oob", "out-of-bounds linear memory access",
       [] {
         WModule m;
         m.code = {{WOp::kConst, 70000}, {WOp::kConst, 1}, {WOp::kStore, 0}, {WOp::kHalt, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
      {"div-zero", "wasm.div.zero", "integer division by zero",
       [] {
         WModule m;
         m.code = {{WOp::kConst, 1}, {WOp::kConst, 0}, {WOp::kDivS, 0}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 0, true}};
         return m;
       }},
      {"div-overflow", "wasm.div.overflow", "integer overflow in division",
       [] {
         WModule m;
         m.code = {{WOp::kConst, INT32_MIN}, {WOp::kConst, -1}, {WOp::kDivS, 0}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 0, true}};
         return m;
       }},
      {"rem-zero", "wasm.rem.zero", "integer remainder by zero",
       [] {
         WModule m;
         m.code = {{WOp::kConst, 1}, {WOp::kConst, 0}, {WOp::kRemS, 0}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 0, true}};
         return m;
       }},
      {"recursion", "wasm.cost.unbounded", "call stack exhausted",
       [] {
         WModule m;
         m.code = {{WOp::kCall, 0}, {WOp::kRet, 0}};
         m.functions = {{"f", 0, 0, 0, false}};
         return m;
       }},
  };
  for (const auto& c : cases) {
    const WModule m = c.make();
    const auto res = analysis::verify_module(m);
    EXPECT_TRUE(res.report.has(c.check))
        << c.name << " expected " << c.check << "\n"
        << res.report.to_table();
    EXPECT_FALSE(res.accepted()) << c.name;
    // Companion: the exact runtime failure the static check pre-empts.
    WasmVm vm(m);
    const std::string trap = trap_message(vm, "f", {});
    EXPECT_NE(trap.find(c.trap_substr), std::string::npos)
        << c.name << ": trap was '" << trap << "'";
  }
}

TEST(WasmVerifier, UndecodableOpcodeIsRejectedEvenThoughVmIgnoresIt) {
  // The VM's dispatch switch silently skips an unknown opcode — it cannot
  // trap. That makes the static check the only line of defense against
  // smuggled bytes, so it must be an error-severity rejection.
  WModule m;
  m.code = {{static_cast<WOp>(200), 0}, {WOp::kHalt, 0}};
  m.functions = {{"f", 0, 0, 0, false}};
  const auto res = analysis::verify_module(m);
  EXPECT_TRUE(res.report.has("wasm.struct.opcode"));
  EXPECT_FALSE(res.ok());
  WasmVm vm(m);
  EXPECT_NO_THROW((void)vm.invoke("f", {}));
}

TEST(WasmVerifier, DepthMismatchAndSpuriousStackDetected) {
  WModule m;
  m.code = {{WOp::kLocalGet, 0},
            {WOp::kJmpIfZ, 3},
            {WOp::kConst, 1},
            {WOp::kRet, 0}};
  m.functions = {{"f", 0, 1, 1, true}};
  const auto res = analysis::verify_module(m);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.report.has("wasm.stack.depth.mismatch")) << res.report.to_table();
}

TEST(WasmVerifier, JmpIfZRefinementProvesConstantGuardedPaths) {
  // if (0) { provably-trapping division } else { fine }: the refinement on a
  // constant condition must prune the dead trapping arm.
  WModule m;
  m.code = {
      {WOp::kConst, 1},    // 0: condition, never zero
      {WOp::kJmpIfZ, 6},   // 1: dead edge to the trapping arm
      {WOp::kConst, 42},   // 2
      {WOp::kRet, 0},      // 3
      {WOp::kConst, 0},    // 4: unreachable filler
      {WOp::kHalt, 0},     // 5
      {WOp::kConst, 1},    // 6: dead arm: 1 / 0
      {WOp::kConst, 0},    // 7
      {WOp::kDivS, 0},     // 8
      {WOp::kRet, 0},      // 9
  };
  m.functions = {{"f", 0, 0, 0, true}};
  const auto res = analysis::verify_module(m);
  EXPECT_FALSE(res.report.has("wasm.div.zero")) << res.report.to_table();
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.report.has("wasm.flow.unreachable"));
}

// ---------------------------------------------------------------------------
// Soundness fuzz sweep: accepted => trap-free (fuel exhaustion excepted)
// ---------------------------------------------------------------------------

WModule fuzz_module(std::uint64_t seed) {
  Rng rng(seed);
  WModule m;
  const int body = rng.uniform_int(3, 14);
  const auto nargs = static_cast<std::uint32_t>(rng.uniform_int(0, 2));
  const auto nlocals = nargs + static_cast<std::uint32_t>(rng.uniform_int(0, 2));
  const int max_local = nlocals == 0 ? 0 : static_cast<int>(nlocals) - 1;
  for (int i = 0; i < body; ++i) {
    const int pick = static_cast<int>(rng.uniform_int(0, 99));
    WInstr ins{WOp::kHalt, 0};
    if (pick < 22) {
      ins = {WOp::kConst, static_cast<std::int32_t>(rng.uniform_int(-200, 200))};
    } else if (pick < 34 && nlocals > 0) {
      ins = {WOp::kLocalGet, static_cast<std::int32_t>(rng.uniform_int(0, max_local))};
    } else if (pick < 40 && nlocals > 0) {
      ins = {WOp::kLocalSet, static_cast<std::int32_t>(rng.uniform_int(0, max_local))};
    } else if (pick < 58) {
      const WOp arith[] = {WOp::kAdd, WOp::kSub, WOp::kMul, WOp::kAnd, WOp::kOr,
                           WOp::kXor, WOp::kShl, WOp::kShrS, WOp::kEq,  WOp::kNe,
                           WOp::kLtS, WOp::kGtS, WOp::kLeS,  WOp::kGeS};
      ins = {arith[rng.uniform_int(0, 13)], 0};
    } else if (pick < 64) {
      ins = {rng.chance(0.5) ? WOp::kDivS : WOp::kRemS, 0};
    } else if (pick < 74) {
      // In-range addresses sometimes, garbage sometimes.
      const std::int32_t imm =
          rng.chance(0.7) ? static_cast<std::int32_t>(rng.uniform_int(0, 60000))
                          : static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
      ins = {rng.chance(0.5) ? WOp::kLoad : WOp::kStore, imm};
    } else if (pick < 84) {
      // Mostly in-range jump targets (loops included), sometimes wild.
      const std::int32_t target =
          rng.chance(0.85) ? static_cast<std::int32_t>(rng.uniform_int(0, body))
                           : static_cast<std::int32_t>(rng.uniform_int(-5, 500));
      ins = {rng.chance(0.5) ? WOp::kJmp : WOp::kJmpIfZ, target};
    } else if (pick < 88) {
      ins = {WOp::kCall, static_cast<std::int32_t>(rng.uniform_int(0, 1))};
    } else if (pick < 92) {
      ins = {WOp::kHostCall, 0};
    } else if (pick < 96) {
      ins = {WOp::kDrop, 0};
    } else {
      ins = {rng.chance(0.5) ? WOp::kRet : WOp::kHalt, 0};
    }
    m.code.push_back(ins);
  }
  m.code.push_back({rng.chance(0.5) ? WOp::kRet : WOp::kHalt, 0});
  m.functions = {{"f", 0, nargs, nlocals, rng.chance(0.5)}};
  return m;
}

TEST(WasmVerifier, FuzzSoundnessAcceptedModulesNeverTrapExceptFuel) {
  constexpr int kModules = 600;
  constexpr std::uint64_t kFuel = 20000;
  int accepted = 0, fuel_exhausted = 0;
  for (int seed = 1; seed <= kModules; ++seed) {
    const WModule m = fuzz_module(static_cast<std::uint64_t>(seed));
    const auto res = analysis::verify_module(m);
    if (!res.accepted()) continue;
    ++accepted;
    WasmVm vm(m);
    vm.set_fuel_limit(kFuel);
    Rng arg_rng(static_cast<std::uint64_t>(seed) * 7919);
    const WFunction& fn = m.functions[0];
    for (int run = 0; run < 3; ++run) {
      std::vector<std::int32_t> args(fn.nargs);
      for (auto& a : args) {
        a = run == 0 ? std::numeric_limits<std::int32_t>::min()
                     : static_cast<std::int32_t>(arg_rng.uniform_int(-1000000, 1000000));
      }
      try {
        (void)vm.invoke("f", args);
      } catch (const WasmTrap& t) {
        // The one permitted trap. Anything else falsifies the contract.
        ASSERT_STREQ(t.what(), "fuel exhausted")
            << "seed " << seed << " accepted but trapped: " << t.what();
        ++fuel_exhausted;
        break;  // the VM's fuel ledger is cumulative; stop this module
      }
    }
    // Accepted AND cost-bounded: the measured retirement of every invoke
    // must stay within bound * invokes.
    if (res.cost_bounded) {
      EXPECT_LE(vm.instructions_retired(), 3 * res.module_fuel_bound) << "seed " << seed;
    }
  }
  // The generator is tuned so the sweep actually exercises the contract.
  EXPECT_GE(accepted, 20) << "fuzz generator accepts too rarely to be meaningful";
  RecordProperty("accepted", accepted);
  RecordProperty("fuel_exhausted", fuel_exhausted);
}

TEST(WasmVerifier, FuzzRejectionsAreDeterministic) {
  // Same seed, same module, same findings — byte-for-byte (stable check ids
  // are part of the CLI/CI contract).
  for (int seed = 1; seed <= 50; ++seed) {
    const auto a = analysis::verify_module(fuzz_module(static_cast<std::uint64_t>(seed)));
    const auto b = analysis::verify_module(fuzz_module(static_cast<std::uint64_t>(seed)));
    EXPECT_EQ(a.report.to_json_lines(), b.report.to_json_lines()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Admission: enclave gate, attestation, serve tenant costs
// ---------------------------------------------------------------------------

security::Key root_key() {
  security::Key k{};
  k[3] = 0x42;
  return k;
}

TEST(Admission, EnclaveRefusesUnverifiedModuleByDefault) {
  EXPECT_THROW(security::Enclave(security::EnclaveConfig{}, add_module(), root_key()),
               security::EnclaveError);
}

TEST(Admission, EnclaveRefusesTicketForDifferentModule) {
  // A genuine admission for `add`, presented with the kv module: digest
  // mismatch against the enclave measurement.
  const WModule add = add_module();
  const auto adm = analysis::make_admission(add, analysis::verify_module(add));
  EXPECT_THROW(security::Enclave(security::EnclaveConfig{}, security::build_kv_module(16),
                                 root_key(), adm),
               security::EnclaveError);
}

TEST(Admission, EnclaveAcceptsVerifiedModuleAndRuns) {
  const WModule add = add_module();
  const auto adm = analysis::make_admission(add, analysis::verify_module(add));
  EXPECT_TRUE(adm.verified);
  EXPECT_TRUE(adm.memory_proven);
  EXPECT_TRUE(adm.arithmetic_proven);
  ASSERT_TRUE(adm.cost_bounded);
  EXPECT_EQ(adm.fuel_bound, 4u);
  security::Enclave enc(security::EnclaveConfig{}, add, root_key(), adm);
  EXPECT_EQ(enc.ecall("add", {40, 2}), 42);
}

TEST(Admission, EnclaveRequireCostBoundRefusesLoopsAndClampsFuel) {
  security::EnclaveConfig strict;
  strict.require_cost_bound = true;

  // kv has loops: no static bound, refused outright under the strict policy.
  const WModule kv = security::build_kv_module(16);
  const auto kv_adm = analysis::make_admission(kv, analysis::verify_module(kv));
  EXPECT_FALSE(kv_adm.cost_bounded);
  EXPECT_THROW(security::Enclave(strict, kv, root_key(), kv_adm), security::EnclaveError);

  // A forged ticket claiming a tighter bound than reality: the per-ecall
  // fuel clamp turns the lie into an immediate trap instead of free cycles.
  const WModule add = add_module();
  auto lying = analysis::make_admission(add, analysis::verify_module(add));
  lying.fuel_bound = 2;  // actual cost is 4
  security::Enclave enc(strict, add, root_key(), lying);
  EXPECT_THROW((void)enc.ecall("add", {1, 2}), WasmTrap);

  // The honest bound runs repeatedly: the clamp re-anchors per ecall.
  const auto honest = analysis::make_admission(add, analysis::verify_module(add));
  security::Enclave ok(strict, add, root_key(), honest);
  EXPECT_EQ(ok.ecall("add", {1, 2}), 3);
  EXPECT_EQ(ok.ecall("add", {2, 3}), 5);
  EXPECT_EQ(ok.ecall("add", {3, 4}), 7);
}

TEST(Admission, AttestAndAdmitBindsQuoteToVerifiedModule) {
  security::Key authority_root{};
  authority_root[0] = 0x77;
  security::AttestationAuthority authority(authority_root);
  security::DeviceAgent device("edge-1", authority.provision("edge-1"));

  const WModule add = add_module();
  const auto adm = analysis::make_admission(add, analysis::verify_module(add));
  const auto quote = device.quote(security::sha256(add.serialize()), 1001);
  EXPECT_TRUE(security::attest_and_admit(authority, quote, 1001, adm));
  // Wrong nonce: replay refused.
  EXPECT_FALSE(security::attest_and_admit(authority, quote, 1002, adm));
  // Quote over a different module than the admission covers.
  const auto other = device.quote(security::sha256(security::build_kv_module(8).serialize()), 1003);
  EXPECT_FALSE(security::attest_and_admit(authority, other, 1003, adm));
  // Unverified admission never admits, even with a genuine quote.
  security::ModuleAdmission unverified = adm;
  unverified.verified = false;
  EXPECT_FALSE(security::attest_and_admit(authority, quote, 1001, unverified));
}

TEST(Admission, TenantCostDerivesFromFuelBound) {
  const WModule add = add_module();
  const auto adm = analysis::make_admission(add, analysis::verify_module(add));
  // 4 instructions at 2 ns/instr = 8 ns.
  EXPECT_DOUBLE_EQ(security::tenant_cost_s(adm, 2.0), 8e-9);
  const WModule kv = security::build_kv_module(16);
  const auto kv_adm = analysis::make_admission(kv, analysis::verify_module(kv));
  EXPECT_TRUE(std::isinf(security::tenant_cost_s(kv_adm, 2.0)));
}

// ---------------------------------------------------------------------------
// Serve layer: per-tenant surcharge from the static cost bound
// ---------------------------------------------------------------------------

const Graph& resnet_graph() {
  static const Graph g = zoo::resnet50(1, 100, 64);
  return g;
}

TEST(ServeTenantCost, UnboundedTenantShedBoundedTenantServed) {
  platform::Chassis chassis(platform::recs_box());
  chassis.install("come0", platform::find_module("COMe-XavierAGX"));
  platform::Fabric fabric =
      platform::star_fabric({"come0", "come1", "come2", "come3"}, 10.0, {1.0, 10.0});
  platform::PlatformSimulator sim(chassis, fabric);

  serve::ServerConfig cfg;
  cfg.backends = {"come0"};
  cfg.variants = {{"resnet50-fp32", &resnet_graph(), DType::kFP32, false}};
  cfg.ladder = {{0, 0}};

  const WModule add = add_module();
  const WModule kv = security::build_kv_module(16);
  const double vm_ns = security::EnclaveConfig{}.vm_ns_per_instr;
  cfg.tenant_cost_s["tenant-add"] =
      security::tenant_cost_s(analysis::make_admission(add, analysis::verify_module(add)), vm_ns);
  cfg.tenant_cost_s["tenant-kv"] =
      security::tenant_cost_s(analysis::make_admission(kv, analysis::verify_module(kv)), vm_ns);

  serve::Server server(sim, cfg);
  auto req = [](const std::string& client, double arrival) {
    serve::Request r;
    r.client = client;
    r.arrival_s = arrival;
    r.deadline_s = arrival + 50e-3;
    return r;
  };
  server.submit(req("tenant-kv", 1e-3));
  server.submit(req("tenant-add", 2e-3));
  server.submit(req("unknown-tenant", 3e-3));
  const serve::ServeReport r = server.run(0.1);

  // The cost-unbounded tenant is shed at admission with an explicit reason;
  // the bounded tenant and unconfigured clients serve normally.
  EXPECT_EQ(r.offered, 3u);
  EXPECT_EQ(r.shed, 1u);
  EXPECT_EQ(r.completed, 2u);
  const auto shed_it =
      std::find_if(r.events.begin(), r.events.end(), [](const serve::ServeEvent& e) {
        return e.kind == serve::ServeEventKind::kShed;
      });
  ASSERT_NE(shed_it, r.events.end());
  EXPECT_NE(shed_it->detail.find("no static cost bound"), std::string::npos)
      << shed_it->detail;
}

}  // namespace
}  // namespace vedliot
