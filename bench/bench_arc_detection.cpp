// T-ARC — Arc Detection in DC power distribution (Sec. V-B: "a very low
// latency from the first spark till inference ... and an ultra-low
// false-negative error rate").
//
// Sweeps the detector threshold over a generated corpus, reporting the
// FNR / FPR / latency trade-off, plus the real-time margin of the detector.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "apps/arc.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::apps;

void print_artifact() {
  bench::banner("T-ARC", "arc detection: threshold sweep (FNR / FPR / latency)");

  Table t({"threshold", "FNR", "FPR", "mean latency ms", "p99 latency ms"});
  for (double threshold : {1.5, 3.0, 10.0, 30.0, 100.0, 250.0, 600.0}) {
    ArcDetector::Config cfg;
    cfg.threshold = threshold;
    ArcWaveformGenerator gen({}, 1234);
    const auto r = evaluate_arc_detector(ArcDetector(cfg), gen, 300, 300);
    t.add_row({fmt_fixed(threshold, 1), fmt_percent(r.fnr(), 2), fmt_percent(r.fpr(), 2),
               fmt_fixed(r.mean_latency_ms, 2), fmt_fixed(r.p99_latency_ms, 2)});
  }
  t.print(std::cout);

  // Persistence sweep at the default threshold.
  std::printf("\npersistence sweep (threshold 3.0):\n\n");
  Table p({"persistence windows", "FNR", "FPR", "mean latency ms"});
  for (std::size_t persistence : {1u, 2u, 3u, 4u}) {
    ArcDetector::Config cfg;
    cfg.persistence = persistence;
    ArcWaveformGenerator gen({}, 1234);
    const auto r = evaluate_arc_detector(ArcDetector(cfg), gen, 300, 300);
    p.add_row({std::to_string(persistence), fmt_percent(r.fnr(), 2), fmt_percent(r.fpr(), 2),
               fmt_fixed(r.mean_latency_ms, 2)});
  }
  p.print(std::cout);

  // Real-time margin: samples processed per second vs the 100 kS/s input.
  ArcDetector detector({});
  ArcWaveformGenerator gen({}, 99);
  std::vector<ArcTrace> traces;
  for (int i = 0; i < 50; ++i) traces.push_back(gen.arc_trace());
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t hits = 0;
  for (const auto& trace : traces) {
    if (detector.detect(trace)) ++hits;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double samples = static_cast<double>(traces.size()) *
                         static_cast<double>(traces.front().current.size());
  const double rate = samples / std::chrono::duration<double>(t1 - t0).count();
  std::printf("\ndetector throughput: %s samples/s -> %.0fx real time at 100 kS/s (hits %zu/50)\n",
              fmt_eng(rate).c_str(), rate / 100e3, hits);
  bench::note("shape: a wide threshold plateau holds FNR ~0 with low FPR and ~1-3 ms latency;");
  bench::note("persistence trades a fraction of a millisecond for false-alarm robustness.");
}

static void BM_DetectTrace(benchmark::State& state) {
  ArcWaveformGenerator gen({}, 7);
  const ArcTrace trace = gen.arc_trace();
  ArcDetector detector({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(trace));
  }
}
BENCHMARK(BM_DetectTrace)->Unit(benchmark::kMicrosecond);

static void BM_GenerateTrace(benchmark::State& state) {
  ArcWaveformGenerator gen({}, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.arc_trace());
  }
}
BENCHMARK(BM_GenerateTrace)->Unit(benchmark::kMicrosecond);

VEDLIOT_BENCH_MAIN()
