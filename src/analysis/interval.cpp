#include "analysis/interval.hpp"

#include <algorithm>
#include <bit>

namespace vedliot::analysis {

namespace {

/// True when [lo, hi] fits the i32 range — the "no wrap possible" test.
bool fits_i32(std::int64_t lo, std::int64_t hi) {
  return lo >= Interval::kMin && hi <= Interval::kMax;
}

Interval exact_or_top(std::int64_t lo, std::int64_t hi) {
  return fits_i32(lo, hi) ? Interval{lo, hi} : Interval::top();
}

/// Smallest (2^k - 1) covering every value in [0, v].
std::int64_t pow2_mask_cover(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  const std::uint64_t ceil = std::bit_ceil(u + 1);
  return static_cast<std::int64_t>(ceil - 1);
}

}  // namespace

Interval Interval::range(std::int64_t lo, std::int64_t hi) {
  return {std::max(lo, kMin), std::min(hi, kMax)};
}

Interval interval_join(Interval a, Interval b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval interval_widen(Interval older, Interval newer) {
  return {newer.lo < older.lo ? Interval::kMin : newer.lo,
          newer.hi > older.hi ? Interval::kMax : newer.hi};
}

Interval interval_add(Interval a, Interval b) { return exact_or_top(a.lo + b.lo, a.hi + b.hi); }

Interval interval_sub(Interval a, Interval b) { return exact_or_top(a.lo - b.hi, a.hi - b.lo); }

Interval interval_mul(Interval a, Interval b) {
  const std::int64_t p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  const std::int64_t lo = *std::min_element(p, p + 4);
  const std::int64_t hi = *std::max_element(p, p + 4);
  return exact_or_top(lo, hi);
}

Interval interval_div_s(Interval a, Interval b) {
  // Precondition: 0 not in b and the INT32_MIN / -1 corner excluded, so b is
  // strictly one-signed and truncating division is corner-monotone: the
  // extreme quotients occur at interval corners.
  const std::int64_t q[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  const std::int64_t lo = *std::min_element(q, q + 4);
  const std::int64_t hi = *std::max_element(q, q + 4);
  return exact_or_top(lo, hi);
}

Interval interval_rem_s(Interval a, Interval b) {
  // Precondition: 0 not in b. |a % b| < max|b| and the result takes the
  // dividend's sign (C++ truncating semantics, matching the VM).
  const std::int64_t bmax = std::max(std::abs(b.lo), std::abs(b.hi));
  std::int64_t lo = -(bmax - 1), hi = bmax - 1;
  if (a.lo >= 0) lo = 0;
  if (a.hi <= 0) hi = 0;
  // The remainder magnitude also never exceeds the dividend magnitude.
  lo = std::max(lo, std::min<std::int64_t>(a.lo, 0));
  hi = std::min(hi, std::max<std::int64_t>(a.hi, 0));
  return {lo, hi};
}

Interval interval_and(Interval a, Interval b) {
  // x & y <= y for y >= 0 (and result is non-negative): masking with a
  // non-negative operand bounds the result regardless of the other side.
  if (a.lo >= 0 && b.lo >= 0) return {0, std::min(a.hi, b.hi)};
  if (b.lo >= 0) return {0, b.hi};
  if (a.lo >= 0) return {0, a.hi};
  return Interval::top();
}

Interval interval_or(Interval a, Interval b) {
  if (a.lo >= 0 && b.lo >= 0) {
    // x | y >= max(x, y) and stays under the covering power-of-two mask.
    return {std::max(a.lo, b.lo), pow2_mask_cover(std::max(a.hi, b.hi))};
  }
  return Interval::top();
}

Interval interval_xor(Interval a, Interval b) {
  if (a.lo >= 0 && b.lo >= 0) return {0, pow2_mask_cover(std::max(a.hi, b.hi))};
  return Interval::top();
}

Interval interval_shl(Interval a, Interval b) {
  // The VM masks the shift amount to [0, 31].
  if (b.is_constant()) {
    const std::int64_t c = static_cast<std::uint32_t>(b.lo) & 31u;
    if (a.lo >= 0 && (a.hi << c) <= Interval::kMax) return {a.lo << c, a.hi << c};
  }
  return Interval::top();
}

Interval interval_shr_s(Interval a, Interval b) {
  if (b.is_constant()) {
    const std::int64_t c = static_cast<std::uint32_t>(b.lo) & 31u;
    return {a.lo >> c, a.hi >> c};  // arithmetic shift is monotone
  }
  if (a.lo >= 0) return {0, a.hi};  // any masked shift only shrinks it
  return Interval::top();
}

Interval interval_bool() { return {0, 1}; }

}  // namespace vedliot::analysis
