#include "graph/package.hpp"

#include <cstdio>
#include <cstring>
#include <map>

#include "analysis/verifier.hpp"
#include "graph/serialize.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace vedliot {

namespace {

constexpr std::uint32_t kMagic = 0x4C444D56;  // "VMDL"
constexpr std::uint32_t kVersion = 2;         // v2: per-tensor digest table
constexpr std::uint32_t kOldestReadable = 1;  // v1 packages (no table) load

// Hard limits the reader enforces before trusting any length field: a
// corrupted (or lying) field must fail a bounds check, never drive an
// allocation or an over-read.
constexpr std::size_t kMaxRank = 8;
constexpr std::int64_t kMaxTensorElems = std::int64_t{1} << 31;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    check(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    check(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int64_t i64() {
    check(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return static_cast<std::int64_t>(v);
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    check(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void check(std::size_t n) const {
    // n comes from untrusted length fields; pos_ is always <= size(), so
    // comparing against the remaining bytes cannot overflow.
    if (n > data_.size() - pos_) {
      throw GraphError("package.truncated: need " + std::to_string(n) + " bytes at offset " +
                       std::to_string(pos_) + ", only " + std::to_string(data_.size() - pos_) +
                       " remain");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

std::uint32_t tensor_crc(const Tensor& t) { return util::crc32(t.data()); }

}  // namespace

std::vector<TensorDigest> digest_weights(const Graph& g) {
  std::vector<TensorDigest> table;
  std::uint32_t dense = 0;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    for (std::size_t t = 0; t < n.weights.size(); ++t) {
      table.push_back(TensorDigest{dense, static_cast<std::uint32_t>(t),
                                   tensor_crc(n.weights[t])});
    }
    ++dense;
  }
  return table;
}

std::vector<std::uint8_t> pack_model(const Graph& g) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);

  const std::string text = to_text(g);
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());

  // Weight records keyed by dense topo index (matching to_text's remap).
  std::vector<std::pair<std::uint32_t, const Node*>> with_weights;
  std::uint32_t dense = 0;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if (!n.weights.empty()) with_weights.emplace_back(dense, &n);
    ++dense;
  }
  put_u32(out, static_cast<std::uint32_t>(with_weights.size()));
  for (const auto& [index, node] : with_weights) {
    put_u32(out, index);
    out.push_back(static_cast<std::uint8_t>(node->weight_dtype));
    out.push_back(static_cast<std::uint8_t>(node->weights.size()));
    for (const Tensor& w : node->weights) {
      out.push_back(static_cast<std::uint8_t>(w.shape().rank()));
      for (std::size_t d = 0; d < w.shape().rank(); ++d) put_i64(out, w.shape().dim(d));
      const auto data = w.data();
      const auto* raw = reinterpret_cast<const std::uint8_t*>(data.data());
      out.insert(out.end(), raw, raw + data.size() * sizeof(float));
    }
  }

  // v2 digest table: one CRC-32 per weight tensor, same order as the
  // records above. Written last so a truncation cannot drop it silently —
  // the reader requires exactly one entry per tensor it read.
  const auto digests = digest_weights(g);
  put_u32(out, static_cast<std::uint32_t>(digests.size()));
  for (const TensorDigest& d : digests) {
    put_u32(out, d.node_index);
    put_u32(out, d.tensor_index);
    put_u32(out, d.crc);
  }
  return out;
}

Graph unpack_model(std::span<const std::uint8_t> package) {
  Reader r(package);
  if (r.u32() != kMagic) throw GraphError("package.magic: not a model package at byte 0");
  const std::uint32_t version = r.u32();
  if (version < kOldestReadable || version > kVersion) {
    throw GraphError("package.version: unsupported package version " + std::to_string(version) +
                     " at byte 4");
  }

  const std::uint32_t text_len = r.u32();
  const auto text_bytes = r.bytes(text_len);
  Graph g = from_text(std::string(text_bytes.begin(), text_bytes.end()));

  const auto order = g.topo_order();
  const std::uint32_t records = r.u32();
  // Actual digests of the tensors as read, in record order; compared
  // against the embedded table afterwards (v2).
  std::vector<TensorDigest> actual;
  std::int64_t prev_index = -1;
  for (std::uint32_t i = 0; i < records; ++i) {
    const std::size_t index_at = r.pos();
    const std::uint32_t index = r.u32();
    if (index >= order.size()) {
      throw GraphError("package.node_index: weight record references unknown node " +
                       std::to_string(index) + " at byte " + std::to_string(index_at));
    }
    if (static_cast<std::int64_t>(index) <= prev_index) {
      throw GraphError("package.record.order: weight record for node " + std::to_string(index) +
                       " out of order at byte " + std::to_string(index_at) +
                       " (records are strictly increasing by topo index)");
    }
    prev_index = index;
    Node& n = g.node(order[index]);
    n.weight_dtype = static_cast<DType>(r.u8());
    const std::uint8_t tensors = r.u8();
    for (std::uint8_t t = 0; t < tensors; ++t) {
      const std::size_t rank_at = r.pos();
      const std::uint8_t rank = r.u8();
      if (rank > kMaxRank) {
        throw GraphError("package.rank: weight tensor rank " + std::to_string(rank) +
                         " exceeds limit " + std::to_string(kMaxRank) + " at byte " +
                         std::to_string(rank_at));
      }
      std::vector<std::int64_t> dims;
      std::int64_t numel = 1;
      for (std::uint8_t d = 0; d < rank; ++d) {
        const std::size_t dim_at = r.pos();
        const std::int64_t dim = r.i64();
        if (dim < 0 || dim > kMaxTensorElems) {
          throw GraphError("package.dim: invalid dimension " + std::to_string(dim) +
                           " at byte " + std::to_string(dim_at));
        }
        // dim and numel are both capped, so the product fits in 62 bits
        // before this check can trip — no signed overflow on the way.
        numel *= dim;
        if (numel > kMaxTensorElems) {
          throw GraphError("package.numel: tensor element count exceeds limit at byte " +
                           std::to_string(dim_at));
        }
        dims.push_back(dim);
      }
      Shape shape(std::move(dims));
      const auto n_elems = static_cast<std::size_t>(shape.numel());
      const auto raw = r.bytes(n_elems * sizeof(float));
      std::vector<float> data(n_elems);
      std::memcpy(data.data(), raw.data(), raw.size());
      n.weights.emplace_back(std::move(shape), std::move(data));
      actual.push_back(TensorDigest{index, t, tensor_crc(n.weights.back())});
    }
  }

  if (version >= 2) {
    const std::size_t table_at = r.pos();
    const std::uint32_t entries = r.u32();
    if (entries != actual.size()) {
      throw GraphError("package.digest.count: digest table has " + std::to_string(entries) +
                       " entries at byte " + std::to_string(table_at) + ", expected " +
                       std::to_string(actual.size()));
    }
    for (std::size_t i = 0; i < entries; ++i) {
      const std::size_t entry_at = r.pos();
      TensorDigest expect;
      expect.node_index = r.u32();
      expect.tensor_index = r.u32();
      expect.crc = r.u32();
      const TensorDigest& got = actual[i];
      if (expect.node_index != got.node_index || expect.tensor_index != got.tensor_index) {
        throw GraphError("package.digest.key: digest entry (" +
                         std::to_string(expect.node_index) + "," +
                         std::to_string(expect.tensor_index) + ") at byte " +
                         std::to_string(entry_at) + " does not match weight record (" +
                         std::to_string(got.node_index) + "," +
                         std::to_string(got.tensor_index) + ")");
      }
      if (expect.crc != got.crc) {
        char want[16], have[16];
        std::snprintf(want, sizeof(want), "%08x", expect.crc);
        std::snprintf(have, sizeof(have), "%08x", got.crc);
        throw GraphError("package.digest.mismatch: node '" +
                         g.node(order[expect.node_index]).name + "' (index " +
                         std::to_string(expect.node_index) + ") tensor " +
                         std::to_string(expect.tensor_index) + ": expected crc32 " + want +
                         ", got " + have + " (table entry at byte " + std::to_string(entry_at) +
                         ")");
      }
    }
  }

  if (!r.done()) {
    throw GraphError("package.trailing: " + std::to_string(r.remaining()) +
                     " trailing bytes at offset " + std::to_string(r.pos()));
  }
  // from_text already verified structure; re-verify now that weight records
  // are attached so packages with wrong shapes/counts are rejected here with
  // the findings table rather than crashing an executor later.
  analysis::verify_or_throw(g);
  return g;
}

SealedModel seal_model(const Graph& g, const security::Key& device_key,
                       std::uint32_t nonce_counter) {
  const auto plain = pack_model(g);
  SealedModel out;
  out.model_measurement = security::sha256(plain);
  std::memcpy(out.nonce.data(), &nonce_counter, sizeof(nonce_counter));
  const security::Key enc_key = security::derive_key(device_key, "model-encrypt");
  const security::Key mac_key = security::derive_key(device_key, "model-mac");
  out.ciphertext = security::chacha20_xor(enc_key, out.nonce, 1, plain);

  std::vector<std::uint8_t> mac_input(out.nonce.begin(), out.nonce.end());
  mac_input.insert(mac_input.end(), out.ciphertext.begin(), out.ciphertext.end());
  out.mac = security::hmac_sha256(mac_key, mac_input);
  return out;
}

Graph unseal_model(const SealedModel& sealed, const security::Key& device_key) {
  const security::Key enc_key = security::derive_key(device_key, "model-encrypt");
  const security::Key mac_key = security::derive_key(device_key, "model-mac");

  std::vector<std::uint8_t> mac_input(sealed.nonce.begin(), sealed.nonce.end());
  mac_input.insert(mac_input.end(), sealed.ciphertext.begin(), sealed.ciphertext.end());
  const security::Digest expected = security::hmac_sha256(mac_key, mac_input);
  if (!security::digest_equal(expected, sealed.mac)) {
    throw Error("sealed model MAC mismatch (wrong device key or tampered package)");
  }
  const auto plain = security::chacha20_xor(enc_key, sealed.nonce, 1, sealed.ciphertext);
  if (!security::digest_equal(security::sha256(plain), sealed.model_measurement)) {
    throw Error("sealed model measurement mismatch");
  }
  return unpack_model(plain);
}

}  // namespace vedliot
