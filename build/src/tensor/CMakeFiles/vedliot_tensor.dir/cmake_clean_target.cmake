file(REMOVE_RECURSE
  "libvedliot_tensor.a"
)
