#include "serve/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "hw/perf_model.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace vedliot::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::int64_t> bucket_widths(std::int64_t max_batch) {
  std::vector<std::int64_t> widths;
  for (std::int64_t w = 1;; w *= 2) {
    widths.push_back(w);
    if (w >= max_batch) break;
  }
  return widths;
}

/// Default brownout rungs: the full batch cap, halved per rung down to 1.
std::vector<BrownoutStep> default_ladder(std::int64_t max_batch) {
  std::vector<BrownoutStep> steps;
  for (std::int64_t cap = bucket_widths(max_batch).back();; cap /= 2) {
    steps.emplace_back(0, cap);
    if (cap <= 1) break;
  }
  return steps;
}

/// Order-sensitive digest of the event log (same scheme as soak.cpp).
std::string event_digest(std::span<const ServeEvent> events) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const ServeEvent& e : events) {
    h = util::fnv1a64(format_serve_event(e), h);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

Tensor synthesize_input(const Graph& graph, std::uint64_t seed, const Request& r) {
  const Shape& in_shape = graph.node(graph.inputs().front()).out_shape;
  const std::uint64_t handle = r.payload != 0 ? r.payload : r.id;
  Rng in_rng(seed ^ (handle * 0x9E3779B97F4A7C15ull));
  std::vector<std::int64_t> dims(in_shape.dims().begin(), in_shape.dims().end());
  dims[0] = r.batch;
  const Shape shape(dims);
  return Tensor(shape, in_rng.normal_vector(static_cast<std::size_t>(shape.numel())));
}

double FleetReport::goodput() const {
  return offered == 0 ? 0.0 : static_cast<double>(completed) / static_cast<double>(offered);
}

std::string FleetReport::to_json() const {
  const auto num = [](auto v) { return obs::json_number(static_cast<double>(v)); };
  std::string out = "{\"record\":\"fleet\"";
  out += ",\"offered\":" + num(offered);
  out += ",\"admitted\":" + num(admitted);
  out += ",\"shed\":" + num(shed);
  out += ",\"displaced\":" + num(displaced);
  out += ",\"cache_hits\":" + num(cache_hits);
  out += ",\"completed\":" + num(completed);
  out += ",\"deadline_missed\":" + num(deadline_missed);
  out += ",\"cancelled\":" + num(cancelled);
  out += ",\"batches\":" + num(batches);
  out += ",\"lanes\":" + num(lanes);
  out += ",\"padded_lanes\":" + num(padded_lanes);
  out += ",\"max_queue_depth\":" + num(max_queue_depth);
  out += ",\"scale_ups\":" + num(scale_ups);
  out += ",\"scale_downs\":" + num(scale_downs);
  out += ",\"max_replicas\":" + num(max_replicas);
  out += ",\"final_replicas\":" + num(final_replicas);
  out += ",\"max_brownout_level\":" + num(max_brownout_level);
  out += ",\"final_brownout_level\":" + num(final_brownout_level);
  out += ",\"busy_s\":" + obs::json_number(busy_s);
  out += ",\"energy_j\":" + obs::json_number(energy_j);
  out += ",\"goodput\":" + obs::json_number(goodput());
  out += ",\"events\":" + num(events.size());
  out += ",\"events_fnv1a\":\"" + event_digest(events) + "\"";
  out += ",\"power\":[";
  for (std::size_t i = 0; i < power.size(); ++i) {
    if (i) out += ",";
    out += "{\"replica\":\"" + obs::json_escape(power[i].replica) + "\"";
    out += ",\"slot\":\"" + obs::json_escape(power[i].slot) + "\"";
    out += ",\"budget_w\":" + obs::json_number(power[i].budget_w);
    out += ",\"module_cap_w\":" + obs::json_number(power[i].module_cap_w);
    out += ",\"busy_s\":" + obs::json_number(power[i].busy_s);
    out += ",\"avg_power_w\":" + obs::json_number(power[i].avg_power_w()) + "}";
  }
  out += "]}";
  return out;
}

Fleet::Fleet(FleetConfig config)
    : cfg_(std::move(config)),
      placement_({cfg_.board, cfg_.modules}),
      ring_(cfg_.ring_vnodes),
      cache_(cfg_.cache_capacity),
      ladder_(cfg_.brownout,
              cfg_.ladder.empty() ? default_ladder(cfg_.max_batch) : cfg_.ladder),
      rng_(cfg_.seed) {
  VEDLIOT_CHECK(cfg_.graph != nullptr, "fleet needs a deployment graph");
  VEDLIOT_CHECK(cfg_.graph->inputs().size() == 1 && cfg_.graph->outputs().size() == 1,
                "fleet serves a single-input single-output graph");
  VEDLIOT_CHECK(cfg_.max_batch >= 1, "fleet max_batch must be >= 1");
  VEDLIOT_CHECK(cfg_.min_replicas >= 1, "fleet needs at least one replica");
  VEDLIOT_CHECK(cfg_.min_replicas <= cfg_.initial_replicas &&
                    cfg_.initial_replicas <= cfg_.max_replicas,
                "replica bounds must satisfy min <= initial <= max");
  VEDLIOT_CHECK(cfg_.queue_capacity >= 1, "queue capacity must be >= 1");
  VEDLIOT_CHECK(cfg_.batch_window_s >= 0, "batch window must be >= 0");
  VEDLIOT_CHECK(cfg_.control_period_s > 0, "control period must be positive");
  VEDLIOT_CHECK(cfg_.scale_down_depth < cfg_.scale_up_depth,
                "scale-down watermark must sit below scale-up");

  widths_ = bucket_widths(cfg_.max_batch);

  // Analytic service model: latency/power per module kind per bucket width,
  // from the roofline estimate over a rebatched clone. Execute mode runs
  // real tensors but keeps this simulated clock, so wall-clock speed never
  // leaks into the event schedule.
  for (const std::string& name : cfg_.modules) {
    if (perf_.count(name)) continue;
    const platform::MicroserverModule& m = platform::find_module(name);
    auto& per_width = perf_[name];
    for (const std::int64_t w : widths_) {
      const Graph gw = rebatched(*cfg_.graph, w);
      const hw::PerfEstimate est = hw::estimate(m.device_spec(), gw, cfg_.dtype);
      per_width[w] = {est.latency_s, est.power_w};
    }
  }

  // Capacity weights for the routing ring: a module's share of traffic is
  // proportional to its analytic throughput at the widest bucket. Without
  // this, an even hash split across a heterogeneous fleet drowns the slow
  // module and adding a replica can lower goodput.
  double best_tput = 0.0;
  for (const auto& [name, per_width] : perf_) {
    const std::int64_t widest = widths_.back();
    module_weight_[name] = static_cast<double>(widest) / per_width.at(widest).first;
    best_tput = std::max(best_tput, module_weight_[name]);
  }
  for (auto& [name, weight] : module_weight_) weight /= best_tput;
}

Fleet::~Fleet() = default;

const runtime::ExecConfig& Fleet::rung_exec() const { return ladder_.current().exec; }

std::int64_t Fleet::bucket_width(std::int64_t lanes) const {
  for (const std::int64_t w : widths_) {
    if (w >= lanes) return w;
  }
  throw InvalidArgument("no bucket for " + std::to_string(lanes) + " lanes");
}

std::int64_t Fleet::effective_max_batch() const {
  const std::int64_t cap = rung_exec().max_batch;
  std::int64_t widest = 0;
  for (const std::int64_t w : widths_) {
    if (cap > 0 && w > cap) break;
    widest = w;
  }
  return std::max<std::int64_t>(widest, 1);
}

double Fleet::latency_s(const Replica& rep, std::int64_t width) const {
  const std::string& module = placement_.placement_of(rep.name).module;
  return perf_.at(module).at(width).first;
}

double Fleet::power_w(const Replica& rep, std::int64_t width) const {
  const std::string& module = placement_.placement_of(rep.name).module;
  return perf_.at(module).at(width).second;
}

void Fleet::log(double t, ServeEventKind kind, const std::string& subject,
                const std::string& detail, double value) {
  report_.events.push_back(ServeEvent{t, kind, subject, detail, value});
  if (cfg_.trace) {
    obs::Span& sp = cfg_.trace->instant(std::string(serve_event_name(kind)), "vedliot.fleet");
    sp.attrs.emplace_back("subject", subject);
    if (!detail.empty()) sp.attrs.emplace_back("detail", detail);
    sp.num_attrs.emplace_back("time_s", t);
    sp.num_attrs.emplace_back("value", value);
  }
  if (cfg_.metrics) {
    cfg_.metrics->counter("vedliot.fleet." + std::string(serve_event_name(kind))).inc();
  }
}

Fleet::Replica& Fleet::replica_of(const std::string& name) {
  for (Replica& rep : fleet_) {
    if (rep.name == name) return rep;
  }
  throw NotFound("no replica named " + name);
}

DynamicBatcher& Fleet::batcher(const std::string& replica) const {
  for (const Replica& rep : fleet_) {
    if (rep.name == replica) {
      VEDLIOT_CHECK(rep.batcher != nullptr, "replica has no batcher (analytic mode)");
      return *rep.batcher;
    }
  }
  throw NotFound("no replica named " + replica);
}

std::size_t Fleet::add_replica(double t) {
  (void)t;
  const std::string name = "replica" + std::to_string(next_replica_++);
  // Throws if no chassis slot can power the module; the module kind the
  // chassis admitted sets the replica's routing weight.
  const platform::Placement at = placement_.place(name);
  ring_.add(name, module_weight_.at(at.module));
  Replica rep;
  rep.name = name;
  rep.queue = std::make_unique<AdmissionQueue>(QueueConfig{cfg_.queue_capacity});
  if (cfg_.execute) {
    DynamicBatcher::Config bc;
    bc.max_batch = cfg_.max_batch;
    bc.exec = rung_exec();
    bc.quantized = cfg_.quantized;
    rep.batcher = std::make_unique<DynamicBatcher>(*cfg_.graph, bc);
  }
  fleet_.push_back(std::move(rep));
  ++active_;
  report_.max_replicas = std::max(report_.max_replicas, active_);
  return fleet_.size() - 1;
}

void Fleet::drain_replica(double t, std::size_t idx) {
  Replica& rep = fleet_[idx];
  VEDLIOT_CHECK(!rep.retired && rep.queue->empty() && rep.busy_until_s <= t,
                "only an idle, empty replica can drain");
  // Snapshot its power accounting before the slot releases — the honesty
  // check covers every replica that ever ran, not just survivors.
  for (auto& sp : placement_.power_report()) {
    if (sp.replica == rep.name) report_.power.push_back(std::move(sp));
  }
  ring_.remove(rep.name);
  placement_.release(rep.name);
  rep.retired = true;
  rep.batcher.reset();
  --active_;
}

std::uint64_t Fleet::submit(Request r) {
  VEDLIOT_CHECK(!ran_, "submit all requests before run()");
  if (r.version != kServeApiVersion) {
    throw InvalidArgument("request wire version " + std::to_string(r.version) +
                          " != " + std::to_string(kServeApiVersion));
  }
  VEDLIOT_CHECK(!r.client.empty(), "request needs a client key");
  VEDLIOT_CHECK(r.arrival_s >= 0, "arrival must be >= 0");
  VEDLIOT_CHECK(r.deadline_s > r.arrival_s, "deadline must be after arrival");
  VEDLIOT_CHECK(r.batch >= 1, "request batch must be >= 1");
  if (r.id == 0) {
    r.id = next_id_++;
  } else {
    VEDLIOT_CHECK(!requests_.count(r.id), "duplicate request id");
    next_id_ = std::max(next_id_, r.id + 1);
  }
  const std::uint64_t id = r.id;
  requests_.emplace(id, r);
  arrivals_.push_back(std::move(r));
  return id;
}

void Fleet::finish_response(double t, Response r) {
  const Request& req = requests_.at(r.request_id);
  switch (r.status) {
    case ResponseStatus::kOk:
      ++report_.completed;
      if (!r.cache_hit) {
        log(t, ServeEventKind::kCompleted, "request " + std::to_string(r.request_id),
            "served by " + r.served_by, r.latency_s);
      }
      if (!req.idempotency_key.empty()) cache_.put(req.idempotency_key, r);
      break;
    case ResponseStatus::kLate:
      ++report_.deadline_missed;
      log(t, ServeEventKind::kDeadlineMiss, "request " + std::to_string(r.request_id),
          "served by " + r.served_by, r.latency_s);
      break;
    case ResponseStatus::kShed:
      ++report_.shed;
      break;
    case ResponseStatus::kCancelled:
      ++report_.cancelled;
      break;
    case ResponseStatus::kFailed:
      break;  // unreachable: the fleet injects no faults
  }
  responses_.emplace(r.request_id, std::move(r));
}

void Fleet::admit(double t, const Request& r) {
  const std::string subject = "request " + std::to_string(r.id);

  if (!r.idempotency_key.empty()) {
    if (auto hit = cache_.get(r.idempotency_key)) {
      Response resp = *hit;
      resp.request_id = r.id;
      resp.time_s = t;
      resp.latency_s = 0;
      resp.cache_hit = true;
      resp.status = ResponseStatus::kOk;
      ++report_.cache_hits;
      log(t, ServeEventKind::kCacheHit, subject, "key '" + r.idempotency_key + "'");
      finish_response(t, std::move(resp));
      return;
    }
  }

  if (r.batch > effective_max_batch()) {
    Response resp;
    resp.request_id = r.id;
    resp.status = ResponseStatus::kShed;
    resp.time_s = t;
    log(t, ServeEventKind::kShed, subject,
        "batch " + std::to_string(r.batch) + " exceeds live cap " +
            std::to_string(effective_max_batch()));
    finish_response(t, std::move(resp));
    return;
  }

  const std::string& name = ring_.route(r.client);
  Replica& rep = replica_of(name);
  const auto idx = static_cast<std::size_t>(&rep - fleet_.data());

  if (rep.queue->full()) {
    if (auto victim = rep.queue->displace(r.priority())) {
      ++report_.displaced;
      Response evicted;
      evicted.request_id = victim->id;
      evicted.status = ResponseStatus::kShed;
      evicted.time_s = t;
      log(t, ServeEventKind::kDisplaced, "request " + std::to_string(victim->id),
          "displaced by " + subject + " on " + name);
      finish_response(t, std::move(evicted));
    } else {
      Response resp;
      resp.request_id = r.id;
      resp.status = ResponseStatus::kShed;
      resp.time_s = t;
      log(t, ServeEventKind::kShed, subject, "queue full on " + name);
      finish_response(t, std::move(resp));
      return;
    }
  }

  rep.queue->push(Ticket{r.id, r.priority(), r.deadline_s, 0, t});
  ++report_.admitted;
  report_.max_queue_depth = std::max(report_.max_queue_depth, rep.queue->depth());
  log(t, ServeEventKind::kAdmitted, subject,
      std::string(priority_class_name(r.priority_class)) + " from " + r.client + " -> " + name);
  try_dispatch(t, idx);
}

void Fleet::try_dispatch(double t, std::size_t idx) {
  Replica& rep = fleet_[idx];
  if (rep.retired || rep.busy_until_s > t) return;

  for (const Ticket& dead : rep.queue->expire(t)) {
    Response resp;
    resp.request_id = dead.id;
    resp.status = ResponseStatus::kCancelled;
    resp.time_s = t;
    resp.latency_s = t - requests_.at(dead.id).arrival_s;
    log(t, ServeEventKind::kCancelled, "request " + std::to_string(dead.id),
        "deadline passed in queue on " + rep.name);
    finish_response(t, std::move(resp));
  }
  if (rep.queue->empty()) {
    rep.window_close_s.reset();
    return;
  }

  const std::int64_t cap = effective_max_batch();
  std::int64_t waiting = 0;
  for (const Ticket& tk : rep.queue->tickets()) waiting += requests_.at(tk.id).batch;

  if (waiting < cap && !(rep.window_close_s && t >= *rep.window_close_s)) {
    // Not enough lanes yet: open (or keep) a short coalescing window so a
    // near-simultaneous arrival can share the batch.
    if (!rep.window_close_s) rep.window_close_s = t + cfg_.batch_window_s;
    return;
  }

  std::vector<Ticket> group;
  std::int64_t lanes = 0;
  while (auto tk = rep.queue->pop(t)) {
    const std::int64_t b = requests_.at(tk->id).batch;
    if (b > cap) {
      // Admitted under a wider cap that has since browned out.
      Response resp;
      resp.request_id = tk->id;
      resp.status = ResponseStatus::kCancelled;
      resp.time_s = t;
      resp.latency_s = t - requests_.at(tk->id).arrival_s;
      log(t, ServeEventKind::kCancelled, "request " + std::to_string(tk->id),
          "batch " + std::to_string(b) + " exceeds degraded cap " + std::to_string(cap));
      finish_response(t, std::move(resp));
      continue;
    }
    if (lanes + b > cap) {
      rep.queue->push(*tk);  // does not fit this batch; next batch takes it
      break;
    }
    group.push_back(*tk);
    lanes += b;
  }
  rep.window_close_s.reset();
  if (group.empty()) return;  // everything expired or over-cap
  launch(t, idx, std::move(group));
}

void Fleet::launch(double t, std::size_t idx, std::vector<Ticket> group) {
  Replica& rep = fleet_[idx];

  // Feasibility pruning: drop members whose deadline the batch's own
  // latency would bust — the estimate shrinks as the bucket shrinks, so
  // this converges (and makes a delivered-late response structurally
  // impossible: the capacity-honest deadline invariant).
  double lat = 0;
  std::int64_t lanes = 0;
  while (true) {
    lanes = 0;
    for (const Ticket& tk : group) lanes += requests_.at(tk.id).batch;
    if (lanes == 0) break;
    lat = latency_s(rep, bucket_width(lanes));
    const auto first_bad = std::stable_partition(
        group.begin(), group.end(), [&](const Ticket& tk) { return t + lat <= tk.deadline_s; });
    if (first_bad == group.end()) break;
    for (auto it = first_bad; it != group.end(); ++it) {
      Response resp;
      resp.request_id = it->id;
      resp.status = ResponseStatus::kCancelled;
      resp.time_s = t;
      resp.latency_s = t - requests_.at(it->id).arrival_s;
      log(t, ServeEventKind::kCancelled, "request " + std::to_string(it->id),
          "infeasible at dispatch on " + rep.name + " (batch latency " + std::to_string(lat) +
              "s)");
      finish_response(t, std::move(resp));
    }
    group.erase(first_bad, group.end());
  }
  if (group.empty()) {
    try_dispatch(t, idx);  // the queue may still hold a feasible next batch
    return;
  }

  const std::int64_t width = bucket_width(lanes);
  const double finish = t + lat;
  const double watts = power_w(rep, width);
  const platform::Placement& at = placement_.placement_of(rep.name);
  const std::string served_by =
      rep.name + "/box" + std::to_string(at.chassis) + "/" + at.slot;

  // Execute mode: synthesize each member's input from its payload handle
  // and run the coalesced group through the bucket sessions for real.
  std::vector<std::uint32_t> crcs(group.size(), 0);
  if (cfg_.execute) {
    std::vector<Tensor> inputs;
    inputs.reserve(group.size());
    for (const Ticket& tk : group) {
      inputs.push_back(synthesize_input(*cfg_.graph, cfg_.seed, requests_.at(tk.id)));
    }
    const std::vector<Tensor> outputs = rep.batcher->run(inputs);
    for (std::size_t i = 0; i < outputs.size(); ++i) crcs[i] = util::crc32(outputs[i].data());
  }

  PendingBatch batch;
  batch.finish_s = finish;
  batch.replica = idx;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const Request& req = requests_.at(group[i].id);
    Response resp;
    resp.request_id = req.id;
    resp.status = finish <= req.deadline_s ? ResponseStatus::kOk : ResponseStatus::kLate;
    resp.time_s = finish;
    resp.latency_s = finish - req.arrival_s;
    resp.served_by = served_by;
    resp.degraded = ladder_.level() > 0;
    resp.output_crc32 = crcs[i];
    batch.responses.push_back(std::move(resp));
    log(t, ServeEventKind::kDispatched, "request " + std::to_string(req.id),
        rep.name + " bucket " + std::to_string(width));
  }
  log(t, ServeEventKind::kBatchExecuted, rep.name,
      std::to_string(group.size()) + " requests, " + std::to_string(lanes) + " lanes, bucket " +
          std::to_string(width),
      static_cast<double>(lanes));
  ++report_.batches;
  report_.lanes += static_cast<std::size_t>(lanes);
  report_.padded_lanes += static_cast<std::size_t>(width - lanes);
  report_.busy_s += lat;
  report_.energy_j += watts * lat;
  placement_.meter(rep.name, watts * lat, lat);

  rep.busy_until_s = finish;
  const auto pos = std::upper_bound(
      in_flight_.begin(), in_flight_.end(), batch,
      [](const PendingBatch& a, const PendingBatch& b) { return a.finish_s < b.finish_s; });
  in_flight_.insert(pos, std::move(batch));
}

void Fleet::apply_brownout(double t, int delta) {
  const int level = ladder_.level();
  report_.max_brownout_level = std::max(report_.max_brownout_level, level);
  log(t, delta > 0 ? ServeEventKind::kBrownoutDown : ServeEventKind::kBrownoutUp, "fleet",
      "batch cap now " + std::to_string(effective_max_batch()), level);
  if (!cfg_.execute) return;
  // The shrink must be enforced by the runtime, not fleet bookkeeping:
  // forward the rung's envelope through every bucket session's
  // set_exec_config (buckets wider than the cap then refuse their feeds).
  for (Replica& rep : fleet_) {
    if (!rep.retired && rep.batcher) rep.batcher->set_exec_config(rung_exec());
  }
}

void Fleet::control_tick(double t) {
  std::size_t depth = 0;
  for (const Replica& rep : fleet_) {
    if (!rep.retired) depth += rep.queue->depth();
  }
  const double per_replica = static_cast<double>(depth) / static_cast<double>(active_);

  const double load =
      static_cast<double>(depth) /
      (static_cast<double>(active_) * static_cast<double>(cfg_.queue_capacity));
  if (const int delta = ladder_.observe(load)) apply_brownout(t, delta);

  if (per_replica > cfg_.scale_up_depth && active_ < cfg_.max_replicas) {
    const std::size_t idx = add_replica(t);
    ++report_.scale_ups;
    log(t, ServeEventKind::kScaleUp, fleet_[idx].name,
        "mean queue depth " + std::to_string(per_replica), static_cast<double>(active_));
  } else if (per_replica < cfg_.scale_down_depth && active_ > cfg_.min_replicas) {
    // Drain the youngest idle, empty replica; if every replica is mid-work
    // or holding tickets, skip this tick rather than strand queued work.
    for (std::size_t i = fleet_.size(); i-- > 0;) {
      Replica& rep = fleet_[i];
      if (rep.retired || !rep.queue->empty() || rep.busy_until_s > t) continue;
      const std::string name = rep.name;
      drain_replica(t, i);
      ++report_.scale_downs;
      log(t, ServeEventKind::kScaleDown, name,
          "mean queue depth " + std::to_string(per_replica), static_cast<double>(active_));
      break;
    }
  }
}

FleetReport Fleet::run(double duration_s) {
  VEDLIOT_CHECK(!ran_, "a Fleet runs once");
  VEDLIOT_CHECK(duration_s > 0, "fleet run duration must be positive");
  ran_ = true;

  std::stable_sort(arrivals_.begin(), arrivals_.end(), [](const Request& a, const Request& b) {
    return a.arrival_s != b.arrival_s ? a.arrival_s < b.arrival_s : a.id < b.id;
  });
  report_.offered = arrivals_.size();

  for (std::size_t i = 0; i < cfg_.initial_replicas; ++i) add_replica(0.0);

  std::size_t next_arrival = 0;
  double next_control = cfg_.control_period_s;
  while (true) {
    const double t_batch = in_flight_.empty() ? kInf : in_flight_.front().finish_s;
    double t_window = kInf;
    for (const Replica& rep : fleet_) {
      if (!rep.retired && rep.window_close_s) t_window = std::min(t_window, *rep.window_close_s);
    }
    const double t_arrival =
        next_arrival < arrivals_.size() ? arrivals_[next_arrival].arrival_s : kInf;
    const double t_control = next_control <= duration_s ? next_control : kInf;

    const double t = std::min({t_batch, t_window, t_arrival, t_control});
    if (t == kInf) break;  // drained: every request reached a terminal state

    // Fixed tie order keeps runs bitwise deterministic: completions free
    // capacity first, then windows close, then arrivals land, then the
    // control loop observes the settled state.
    if (t_batch == t) {
      PendingBatch batch = std::move(in_flight_.front());
      in_flight_.erase(in_flight_.begin());
      for (Response& r : batch.responses) finish_response(t, std::move(r));
      try_dispatch(t, batch.replica);
    } else if (t_window == t) {
      for (std::size_t i = 0; i < fleet_.size(); ++i) {
        const Replica& rep = fleet_[i];
        if (!rep.retired && rep.window_close_s && *rep.window_close_s <= t) try_dispatch(t, i);
      }
    } else if (t_arrival == t) {
      const Request& r = arrivals_[next_arrival++];
      admit(t, r);
    } else {
      control_tick(t);
      next_control += cfg_.control_period_s;
    }
  }

  report_.final_replicas = active_;
  report_.final_brownout_level = ladder_.level();
  for (auto& sp : placement_.power_report()) report_.power.push_back(std::move(sp));

  report_.responses.reserve(responses_.size());
  for (auto& [id, resp] : responses_) {
    (void)id;
    report_.responses.push_back(resp);
  }
  return report_;
}

}  // namespace vedliot::serve
