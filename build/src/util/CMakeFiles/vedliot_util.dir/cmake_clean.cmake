file(REMOVE_RECURSE
  "CMakeFiles/vedliot_util.dir/error.cpp.o"
  "CMakeFiles/vedliot_util.dir/error.cpp.o.d"
  "CMakeFiles/vedliot_util.dir/fft.cpp.o"
  "CMakeFiles/vedliot_util.dir/fft.cpp.o.d"
  "CMakeFiles/vedliot_util.dir/rng.cpp.o"
  "CMakeFiles/vedliot_util.dir/rng.cpp.o.d"
  "CMakeFiles/vedliot_util.dir/stats.cpp.o"
  "CMakeFiles/vedliot_util.dir/stats.cpp.o.d"
  "CMakeFiles/vedliot_util.dir/table.cpp.o"
  "CMakeFiles/vedliot_util.dir/table.cpp.o.d"
  "libvedliot_util.a"
  "libvedliot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
