#pragma once
/// \file roofline.hpp
/// \brief Measured compute roof of the bench host, per dispatch level.
///
/// The device catalog (device.hpp) quotes *vendor* peaks for the VEDLIoT
/// hardware classes; the runtime bench needs the roof of the machine it is
/// actually running on, at the dispatch level the kernels actually execute
/// — a portable-scalar run must not be judged against an AVX2 roof. The
/// microkernel peak probes (runtime/microkernel.hpp) time a
/// register-resident FMA / madd chain, i.e. the same instruction mix as the
/// GEMM inner loop with all memory traffic removed, which makes
/// "fraction of roofline" a like-for-like utilization number in the sense
/// of the perf_model compute roof.

#include "util/cpu.hpp"

namespace vedliot::hw {

/// One-thread compute roofs measured on this host.
struct HostRoofline {
  util::SimdLevel level = util::SimdLevel::kPortable;  ///< resolved level probed
  double f32_gflops = 0;  ///< f32 multiply-add roof (2 flops per FMA)
  double s8_gops = 0;     ///< int8-path int32 MAC roof (2 ops per MAC)
};

/// Probe the host at the resolved form of \p requested (env overrides and
/// CPU features applied, as resolve_simd_level). \p min_seconds is the
/// minimum timed interval per probe; 0.05 s keeps clock noise under ~1%.
HostRoofline measure_host_roofline(util::SimdLevel requested = util::SimdLevel::kAuto,
                                   double min_seconds = 0.05);

/// Achieved / roof, clamped below at 0; returns 0 when the roof is unknown.
double fraction_of_roofline(double achieved, double roof);

}  // namespace vedliot::hw
