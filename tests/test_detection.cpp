// Tests for the synthetic detection workload and the Kenning detection-
// quality pipeline built on it.

#include <gtest/gtest.h>

#include "apps/detection.hpp"

namespace vedliot::apps {
namespace {

SceneGenerator::Config scene_cfg() { return {}; }

TEST(SceneGenerator, BoxesWithinImage) {
  SceneGenerator gen(scene_cfg(), 1);
  for (int i = 0; i < 200; ++i) {
    const Scene s = gen.next();
    EXPECT_EQ(s.image_id, i);
    for (const auto& gt : s.truths) {
      EXPECT_GE(gt.box.x, 0.0);
      EXPECT_GE(gt.box.y, 0.0);
      EXPECT_LE(gt.box.x + gt.box.w, 320.0 + 1e-9);
      EXPECT_LE(gt.box.y + gt.box.h, 320.0 + 1e-9);
      EXPECT_GT(gt.box.h, gt.box.w * 0.9);  // pedestrians are tall
    }
  }
}

TEST(SceneGenerator, ObjectCountBounded) {
  SceneGenerator gen(scene_cfg(), 2);
  std::size_t max_seen = 0, total = 0;
  for (int i = 0; i < 300; ++i) {
    const Scene s = gen.next();
    max_seen = std::max(max_seen, s.truths.size());
    total += s.truths.size();
  }
  EXPECT_LE(max_seen, 4u);
  EXPECT_GT(total, 0u);
}

TEST(SimulatedDetector, RecallIncreasesWithSize) {
  SimulatedDetector det({}, 3);
  EXPECT_LT(det.recall_for_height(8), det.recall_for_height(32));
  EXPECT_LT(det.recall_for_height(32), det.recall_for_height(128));
  EXPECT_LE(det.recall_for_height(1000), 0.98 + 1e-9);
}

TEST(SimulatedDetector, PerfectConfigFindsEverything) {
  SimulatedDetector::Config ideal;
  ideal.max_recall = 1.0;
  ideal.size50 = 0.5;     // everything is "large"
  ideal.loc_jitter = 0.0;
  ideal.fp_per_image = 0.0;
  ideal.score_noise = 0.0;
  SceneGenerator gen(scene_cfg(), 4);
  SimulatedDetector det(ideal, 5);
  const auto eval = run_detection_benchmark(gen, det, 100);
  EXPECT_EQ(eval.false_negatives, 0u);
  EXPECT_EQ(eval.false_positives, 0u);
  EXPECT_NEAR(eval.average_precision, 1.0, 1e-9);
}

TEST(DetectionPipeline, RealisticDetectorProducesReasonableAp) {
  SceneGenerator gen(scene_cfg(), 6);
  SimulatedDetector det({}, 7);
  const auto eval = run_detection_benchmark(gen, det, 400);
  EXPECT_GT(eval.average_precision, 0.6);
  EXPECT_LT(eval.average_precision, 1.0);
  EXPECT_GT(eval.true_positives, 0u);
  EXPECT_GT(eval.false_negatives, 0u);  // small pedestrians get missed
  EXPECT_FALSE(eval.curve.empty());
}

TEST(DetectionPipeline, JitterLowersApAtStrictIou) {
  SimulatedDetector::Config sloppy;
  sloppy.loc_jitter = 0.25;
  SceneGenerator gen_a(scene_cfg(), 8);
  SceneGenerator gen_b(scene_cfg(), 8);
  SimulatedDetector tight({}, 9);
  SimulatedDetector loose(sloppy, 9);
  const auto a = run_detection_benchmark(gen_a, tight, 300, 0.7);
  const auto b = run_detection_benchmark(gen_b, loose, 300, 0.7);
  EXPECT_GT(a.average_precision, b.average_precision);
}

TEST(DetectionPipeline, PrCurveIsMonotoneInRecall) {
  SceneGenerator gen(scene_cfg(), 10);
  SimulatedDetector det({}, 11);
  const auto eval = run_detection_benchmark(gen, det, 200);
  double prev_recall = 0.0;
  for (const auto& pt : eval.curve) {
    EXPECT_GE(pt.recall, prev_recall - 1e-12);  // recall only grows down the ranking
    prev_recall = pt.recall;
    EXPECT_GE(pt.precision, 0.0);
    EXPECT_LE(pt.precision, 1.0);
  }
}

TEST(DetectionPipeline, FalsePositivesDepressTailPrecision) {
  SimulatedDetector::Config noisy;
  noisy.fp_per_image = 1.0;  // a false positive in (almost) every image
  SceneGenerator gen_a(scene_cfg(), 12);
  SceneGenerator gen_b(scene_cfg(), 12);
  SimulatedDetector clean({}, 13);
  SimulatedDetector cluttered(noisy, 13);
  const auto a = run_detection_benchmark(gen_a, clean, 300);
  const auto b = run_detection_benchmark(gen_b, cluttered, 300);
  EXPECT_GT(b.false_positives, a.false_positives);
  EXPECT_GT(a.average_precision, b.average_precision);
}

}  // namespace
}  // namespace vedliot::apps
