#pragma once
/// \file arc.hpp
/// \brief Arc Detection in DC power distribution cabinets (Sec. V-B):
/// "guarantee a very low latency from the first spark till inference ...
/// and an ultra-low false-negative error rate".
///
/// The generator produces DC current traces with benign transients (load
/// steps, switching ripple) and genuine series-arc events (broadband
/// chaotic noise, the classic 1/f arc signature). The detector is a
/// streaming spectral-ratio classifier over short windows with a
/// persistence counter; the bench sweeps its threshold to produce the
/// latency / FNR / FPR trade-off.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace vedliot::apps {

/// One generated trace with labelled arc onset.
struct ArcTrace {
  std::vector<float> current;        ///< amps, sampled at sample_rate
  double sample_rate_hz = 100000.0;
  std::optional<std::size_t> arc_onset;  ///< sample index; nullopt = no arc
};

class ArcWaveformGenerator {
 public:
  struct Config {
    double sample_rate_hz = 100000.0;
    double dc_level_a = 8.0;
    double ripple_a = 0.05;          ///< converter switching ripple
    double arc_noise_a = 0.8;        ///< arc broadband amplitude
    double load_step_prob = 0.3;     ///< benign transient per trace
    double trace_s = 0.05;           ///< 50 ms traces
  };

  ArcWaveformGenerator(Config config, std::uint64_t seed);

  /// Trace with an arc igniting at a random position in the middle 60%.
  ArcTrace arc_trace();

  /// Benign trace (possibly with a load step — the hard negative).
  ArcTrace normal_trace();

 private:
  void base_waveform(std::vector<float>& out);
  Config cfg_;
  Rng rng_;
};

/// Streaming detector: per window, ratio of high-band to low-band energy;
/// trips after `persistence` consecutive suspicious windows.
class ArcDetector {
 public:
  struct Config {
    std::size_t window = 64;         ///< samples per analysis window
    double threshold = 3.0;          ///< high/low band energy ratio
    std::size_t persistence = 2;     ///< consecutive hits to trip
  };

  explicit ArcDetector(Config config);

  /// Process a full trace; returns the sample index where the detector
  /// tripped, or nullopt.
  std::optional<std::size_t> detect(const ArcTrace& trace) const;

  /// Detection latency in seconds for a trace with a labelled onset
  /// (nullopt if missed).
  std::optional<double> latency_s(const ArcTrace& trace) const;

 private:
  /// High-frequency energy proxy: mean squared first difference.
  static double hf_energy(std::span<const float> w);
  /// Low-frequency energy: variance of the window mean against DC.
  static double lf_energy(std::span<const float> w);

  Config cfg_;
};

/// Corpus-level evaluation: false-negative rate, false-positive rate and
/// latency statistics across generated traces.
struct ArcEvalResult {
  std::size_t arcs = 0;
  std::size_t detected = 0;
  std::size_t normals = 0;
  std::size_t false_alarms = 0;
  double mean_latency_ms = 0;
  double p99_latency_ms = 0;

  double fnr() const { return arcs ? 1.0 - static_cast<double>(detected) / arcs : 0.0; }
  double fpr() const { return normals ? static_cast<double>(false_alarms) / normals : 0.0; }
};

ArcEvalResult evaluate_arc_detector(const ArcDetector& detector, ArcWaveformGenerator& gen,
                                    std::size_t arc_traces, std::size_t normal_traces);

}  // namespace vedliot::apps
