#include "core/designflow.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "graph/cost.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "platform/microserver.hpp"
#include "util/table.hpp"

namespace vedliot::core {

namespace {

platform::BaseboardSpec board_for(const std::string& name) {
  if (name == "uRECS") return platform::u_recs();
  if (name == "t.RECS") return platform::t_recs();
  if (name == "RECS|Box") return platform::recs_box();
  throw DesignFlowError("unknown platform: " + name);
}

/// Modules installable on the given board (form-factor compatible with any
/// slot and within its power budget).
std::vector<platform::MicroserverModule> compatible_modules(const platform::BaseboardSpec& board) {
  std::vector<platform::MicroserverModule> out;
  for (const auto& m : platform::module_catalog()) {
    for (const auto& slot : board.slots) {
      if (slot.accepts_form(m.form) && m.max_power_w <= slot.power_budget_w) {
        out.push_back(m);
        break;
      }
    }
  }
  return out;
}

}  // namespace

FlowReport run_design_flow(Graph& model, const DesignSpec& spec) {
  FlowReport report;
  report.application = spec.application;
  report.model = model.name();
  report.platform = spec.platform;

  // --- Stage 1: toolchain optimization (Sec. III) ---
  opt::PassManager pm;
  if (spec.fuse_operators) {
    pm.add(std::make_unique<opt::FuseBatchNormPass>());
    pm.add(std::make_unique<opt::FuseActivationPass>());
  }
  if (spec.quantize_int8 && model.weights_materialized()) {
    pm.add(std::make_unique<opt::QuantizeWeightsPass>(DType::kINT8));
  }
  report.optimization_log = pm.run(model);

  // --- Stage 2: accelerator selection (Sec. II-B/C) ---
  const auto board = board_for(spec.platform);
  const auto modules = compatible_modules(board);
  if (modules.empty()) throw DesignFlowError("no modules compatible with " + spec.platform);

  const platform::MicroserverModule* best_module = nullptr;
  std::optional<hw::PerfEstimate> best;
  DType best_dtype = DType::kFP32;

  for (const auto& module : modules) {
    const hw::DeviceSpec& dev = module.device_spec();
    // Prefer the lowest-precision dtype the device supports (most efficient),
    // honoring the spec's quantization policy.
    DType dt = DType::kFP32;
    if (spec.quantize_int8 && dev.supports(DType::kINT8)) dt = DType::kINT8;
    else if (dev.supports(DType::kFP16)) dt = DType::kFP16;
    else if (!dev.supports(DType::kFP32)) dt = dev.best_dtype;

    CandidateResult cand;
    cand.device = dev.name;
    cand.dtype = dt;
    try {
      const hw::PerfEstimate e = hw::estimate(dev, model, dt);
      cand.latency_s = e.latency_s;
      cand.power_w = e.power_w;
      cand.energy_per_inference_j = e.energy_per_inference_j;
      const double duty = std::min(1.0, e.latency_s * spec.rate_hz);
      const double avg_power = dev.idle_w + (e.power_w - dev.idle_w) * duty;
      if (e.latency_s > spec.latency_budget_s) {
        cand.rejection = "latency over budget";
      } else if (avg_power > spec.power_budget_w) {
        cand.rejection = "power over budget";
      } else if (e.latency_s * spec.rate_hz > 1.0) {
        cand.rejection = "cannot sustain the inference rate";
      } else {
        cand.feasible = true;
        if (!best || cand.energy_per_inference_j < best->energy_per_inference_j) {
          best = e;
          best_module = &platform::find_module(module.name);
          best_dtype = dt;
        }
      }
    } catch (const Unsupported& e) {
      cand.rejection = e.what();
    }
    report.candidates.push_back(cand);
  }

  if (!best) {
    throw DesignFlowError("no accelerator on " + spec.platform +
                          " meets the latency/power budgets for " + model.name());
  }

  report.selected_device = best->device;
  report.selected_module = best_module->name;
  report.estimate = *best;
  (void)best_dtype;
  const hw::DeviceSpec& dev = best_module->device_spec();
  const double duty = std::min(1.0, best->latency_s * spec.rate_hz);
  report.duty_cycled_power_w = dev.idle_w + (best->power_w - dev.idle_w) * duty;

  // --- Stage 3: safety & security wiring (Sec. IV) ---
  report.attestation_configured = spec.require_attestation;
  report.robustness_monitor_configured = spec.enable_robustness_monitor;

  return report;
}

std::string FlowReport::to_markdown() const {
  std::ostringstream os;
  os << "# VEDLIoT design-flow report: " << application << "\n\n";
  os << "- model: **" << model << "**\n";
  os << "- platform: **" << platform << "**, module: **" << selected_module << "** (device "
     << selected_device << ")\n";
  os << "- latency: " << fmt_fixed(estimate.latency_s * 1e3, 2) << " ms, power "
     << fmt_fixed(estimate.power_w, 2) << " W (duty-cycled " << fmt_fixed(duty_cycled_power_w, 2)
     << " W), energy/inference " << fmt_fixed(estimate.energy_per_inference_j * 1e3, 2) << " mJ\n";
  os << "- attestation: " << (attestation_configured ? "enabled" : "off")
     << ", robustness monitor: " << (robustness_monitor_configured ? "enabled" : "off") << "\n\n";
  os << "## Optimization passes\n\n";
  for (const auto& p : optimization_log) {
    os << "- " << p.pass_name << ": " << p.detail << "\n";
  }
  os << "\n## Candidate accelerators\n\n| device | dtype | latency ms | power W | mJ/inf | verdict |\n|---|---|---|---|---|---|\n";
  for (const auto& c : candidates) {
    os << "| " << c.device << " | " << dtype_name(c.dtype) << " | "
       << fmt_fixed(c.latency_s * 1e3, 2) << " | " << fmt_fixed(c.power_w, 2) << " | "
       << fmt_fixed(c.energy_per_inference_j * 1e3, 2) << " | "
       << (c.feasible ? "ok" : c.rejection) << " |\n";
  }
  return os.str();
}

}  // namespace vedliot::core
