#include "sim/cpu.hpp"

namespace vedliot::sim {

namespace {
inline std::int32_t sext(std::uint32_t v, int bits) {
  const int shift = 32 - bits;
  return static_cast<std::int32_t>(v << shift) >> shift;
}
}  // namespace

Cpu::Cpu(Bus& bus) : bus_(bus) {}

std::uint32_t Cpu::reg(std::size_t i) const {
  VEDLIOT_CHECK(i < 32, "register index out of range");
  return regs_[i];
}

void Cpu::set_reg(std::size_t i, std::uint32_t v) {
  VEDLIOT_CHECK(i < 32, "register index out of range");
  if (i != 0) regs_[i] = v;
}

std::uint32_t Cpu::csr(std::uint32_t addr) const {
  switch (addr) {
    case 0x300: return mstatus_;
    case 0x304: return mie_;
    case 0x305: return mtvec_;
    case 0x341: return mepc_;
    case 0x342: return mcause_;
    case 0xB00: return static_cast<std::uint32_t>(cycles_);
    case 0xB02: return static_cast<std::uint32_t>(instret_);
    default: return 0;
  }
}

void Cpu::set_csr(std::uint32_t addr, std::uint32_t v) {
  switch (addr) {
    case 0x300: mstatus_ = v; break;
    case 0x304: mie_ = v; break;
    case 0x305: mtvec_ = v; break;
    case 0x341: mepc_ = v; break;
    case 0x342: mcause_ = v; break;
    default: break;
  }
}

bool Cpu::pmp_ok(std::uint32_t addr, security::Access access) const {
  if (!pmp_) return true;
  return pmp_->check(addr, access, priv_);
}

bool Cpu::trap(std::uint32_t cause) {
  ++traps_;
  if (mtvec_ == 0) return false;
  mepc_ = pc_;
  mcause_ = cause;
  // Save the interrupted privilege into mstatus.MPP (bits 11:12).
  const std::uint32_t mpp = priv_ == security::Privilege::kMachine ? 3u : 0u;
  mstatus_ = (mstatus_ & ~(3u << 11)) | (mpp << 11);
  priv_ = security::Privilege::kMachine;
  pc_ = mtvec_;
  return true;
}

HaltReason Cpu::run(std::uint64_t max_instructions) {
  for (std::uint64_t i = 0; i < max_instructions; ++i) {
    const HaltReason r = step();
    if (r != HaltReason::kRunning) return r;
  }
  return HaltReason::kMaxInstructions;
}

HaltReason Cpu::step() {
  // Machine-timer interrupt: taken between instructions when globally
  // enabled (mstatus.MIE) and individually enabled (mie.MTIE).
  if (timer_irq_ && mtvec_ != 0 && (mstatus_ & 0x8u) && (mie_ & 0x80u) && timer_irq_()) {
    ++traps_;
    mepc_ = pc_;
    mcause_ = kCauseMachineTimerIrq;
    const std::uint32_t mpp = priv_ == security::Privilege::kMachine ? 3u : 0u;
    // save MIE into MPIE (bit 7), clear MIE, record the privilege
    mstatus_ = (mstatus_ & ~(3u << 11)) | (mpp << 11);
    mstatus_ = (mstatus_ & ~0x80u) | ((mstatus_ & 0x8u) << 4);
    mstatus_ &= ~0x8u;
    priv_ = security::Privilege::kMachine;
    pc_ = mtvec_;
  }
  if (!pmp_ok(pc_, security::Access::kExecute)) {
    return trap(kCauseInstrAccessFault) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
  }
  std::uint32_t inst;
  try {
    inst = bus_.read32(pc_);
  } catch (const SimError&) {
    return trap(kCauseInstrAccessFault) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
  }
  if (trace_) trace_(pc_, inst);

  const std::uint32_t opcode = inst & 0x7F;
  const std::uint32_t rd = (inst >> 7) & 0x1F;
  const std::uint32_t funct3 = (inst >> 12) & 0x7;
  const std::uint32_t rs1 = (inst >> 15) & 0x1F;
  const std::uint32_t rs2 = (inst >> 20) & 0x1F;
  const std::uint32_t funct7 = inst >> 25;

  std::uint32_t next_pc = pc_ + 4;
  ++instret_;
  ++cycles_;

  auto v1 = regs_[rs1];
  auto v2 = regs_[rs2];

  switch (opcode) {
    case 0x37:  // LUI
      set_reg(rd, inst & 0xFFFFF000u);
      break;
    case 0x17:  // AUIPC
      set_reg(rd, pc_ + (inst & 0xFFFFF000u));
      break;
    case 0x6F: {  // JAL
      const std::uint32_t imm = ((inst >> 31) << 20) | (((inst >> 12) & 0xFF) << 12) |
                                (((inst >> 20) & 1) << 11) | (((inst >> 21) & 0x3FF) << 1);
      set_reg(rd, pc_ + 4);
      next_pc = pc_ + static_cast<std::uint32_t>(sext(imm, 21));
      break;
    }
    case 0x67: {  // JALR
      const std::int32_t imm = sext(inst >> 20, 12);
      const std::uint32_t target = (v1 + static_cast<std::uint32_t>(imm)) & ~1u;
      set_reg(rd, pc_ + 4);
      next_pc = target;
      break;
    }
    case 0x63: {  // branches
      const std::uint32_t imm = ((inst >> 31) << 12) | (((inst >> 7) & 1) << 11) |
                                (((inst >> 25) & 0x3F) << 5) | (((inst >> 8) & 0xF) << 1);
      const std::int32_t off = sext(imm, 13);
      bool take = false;
      switch (funct3) {
        case 0: take = v1 == v2; break;                                           // BEQ
        case 1: take = v1 != v2; break;                                           // BNE
        case 4: take = static_cast<std::int32_t>(v1) < static_cast<std::int32_t>(v2); break;   // BLT
        case 5: take = static_cast<std::int32_t>(v1) >= static_cast<std::int32_t>(v2); break;  // BGE
        case 6: take = v1 < v2; break;                                            // BLTU
        case 7: take = v1 >= v2; break;                                           // BGEU
        default: return trap(kCauseIllegalInstr) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
      }
      if (take) next_pc = pc_ + static_cast<std::uint32_t>(off);
      break;
    }
    case 0x03: {  // loads
      const std::uint32_t addr = v1 + static_cast<std::uint32_t>(sext(inst >> 20, 12));
      if (!pmp_ok(addr, security::Access::kRead)) {
        return trap(kCauseLoadAccessFault) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
      }
      try {
        switch (funct3) {
          case 0: set_reg(rd, static_cast<std::uint32_t>(sext(bus_.read8(addr), 8))); break;   // LB
          case 1: set_reg(rd, static_cast<std::uint32_t>(sext(bus_.read16(addr), 16))); break; // LH
          case 2: set_reg(rd, bus_.read32(addr)); break;                                       // LW
          case 4: set_reg(rd, bus_.read8(addr)); break;                                        // LBU
          case 5: set_reg(rd, bus_.read16(addr)); break;                                       // LHU
          default: return trap(kCauseIllegalInstr) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
        }
      } catch (const SimError&) {
        return trap(kCauseLoadAccessFault) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
      }
      ++cycles_;  // memory access costs an extra cycle
      break;
    }
    case 0x23: {  // stores
      const std::uint32_t imm = ((inst >> 25) << 5) | ((inst >> 7) & 0x1F);
      const std::uint32_t addr = v1 + static_cast<std::uint32_t>(sext(imm, 12));
      if (!pmp_ok(addr, security::Access::kWrite)) {
        return trap(kCauseStoreAccessFault) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
      }
      try {
        switch (funct3) {
          case 0: bus_.write8(addr, static_cast<std::uint8_t>(v2)); break;
          case 1: bus_.write16(addr, static_cast<std::uint16_t>(v2)); break;
          case 2: bus_.write32(addr, v2); break;
          default: return trap(kCauseIllegalInstr) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
        }
      } catch (const SimError&) {
        return trap(kCauseStoreAccessFault) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
      }
      ++cycles_;
      break;
    }
    case 0x13: {  // ALU immediate
      const std::int32_t imm = sext(inst >> 20, 12);
      const std::uint32_t ui = static_cast<std::uint32_t>(imm);
      switch (funct3) {
        case 0: set_reg(rd, v1 + ui); break;                                                  // ADDI
        case 2: set_reg(rd, static_cast<std::int32_t>(v1) < imm ? 1 : 0); break;              // SLTI
        case 3: set_reg(rd, v1 < ui ? 1 : 0); break;                                          // SLTIU
        case 4: set_reg(rd, v1 ^ ui); break;                                                  // XORI
        case 6: set_reg(rd, v1 | ui); break;                                                  // ORI
        case 7: set_reg(rd, v1 & ui); break;                                                  // ANDI
        case 1: set_reg(rd, v1 << (rs2)); break;                                              // SLLI
        case 5:
          if (funct7 & 0x20) {
            set_reg(rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(v1) >> rs2));    // SRAI
          } else {
            set_reg(rd, v1 >> rs2);                                                           // SRLI
          }
          break;
      }
      break;
    }
    case 0x33: {  // ALU register / M extension
      if (funct7 == 1) {
        const std::int64_t s1 = static_cast<std::int32_t>(v1);
        const std::int64_t s2 = static_cast<std::int32_t>(v2);
        const std::uint64_t u1 = v1, u2 = v2;
        switch (funct3) {
          case 0: set_reg(rd, static_cast<std::uint32_t>(s1 * s2)); break;                    // MUL
          case 1: set_reg(rd, static_cast<std::uint32_t>((s1 * s2) >> 32)); break;            // MULH
          case 2: set_reg(rd, static_cast<std::uint32_t>((s1 * static_cast<std::int64_t>(u2)) >> 32)); break;  // MULHSU
          case 3: set_reg(rd, static_cast<std::uint32_t>((u1 * u2) >> 32)); break;            // MULHU
          case 4:  // DIV
            if (v2 == 0) set_reg(rd, 0xFFFFFFFFu);
            else if (s1 == INT32_MIN && s2 == -1) set_reg(rd, static_cast<std::uint32_t>(INT32_MIN));
            else set_reg(rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(s1 / s2)));
            break;
          case 5: set_reg(rd, v2 == 0 ? 0xFFFFFFFFu : v1 / v2); break;                        // DIVU
          case 6:  // REM
            if (v2 == 0) set_reg(rd, v1);
            else if (s1 == INT32_MIN && s2 == -1) set_reg(rd, 0);
            else set_reg(rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(s1 % s2)));
            break;
          case 7: set_reg(rd, v2 == 0 ? v1 : v1 % v2); break;                                 // REMU
        }
        cycles_ += funct3 >= 4 ? 16 : 3;  // div slower than mul
      } else {
        switch (funct3) {
          case 0: set_reg(rd, funct7 & 0x20 ? v1 - v2 : v1 + v2); break;                      // ADD/SUB
          case 1: set_reg(rd, v1 << (v2 & 31)); break;                                        // SLL
          case 2: set_reg(rd, static_cast<std::int32_t>(v1) < static_cast<std::int32_t>(v2) ? 1 : 0); break;
          case 3: set_reg(rd, v1 < v2 ? 1 : 0); break;                                        // SLTU
          case 4: set_reg(rd, v1 ^ v2); break;
          case 5:
            if (funct7 & 0x20) set_reg(rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(v1) >> (v2 & 31)));
            else set_reg(rd, v1 >> (v2 & 31));
            break;
          case 6: set_reg(rd, v1 | v2); break;
          case 7: set_reg(rd, v1 & v2); break;
        }
      }
      break;
    }
    case 0x0B: {  // custom-0: CFU dispatch
      if (!cfu_) {
        return trap(kCauseIllegalInstr) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
      }
      set_reg(rd, cfu_->execute(funct3, funct7, v1, v2));
      cycles_ += cfu_->latency_cycles(funct3);
      break;
    }
    case 0x73: {  // SYSTEM
      if (funct3 == 0) {
        const std::uint32_t imm12 = inst >> 20;
        if (imm12 == 0) {  // ECALL
          if (priv_ == security::Privilege::kUser) {
            return trap(kCauseEcallU) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
          }
          return HaltReason::kEcall;
        }
        if (imm12 == 1) return HaltReason::kEbreak;  // EBREAK
        if (imm12 == 0x302) {  // MRET
          if (priv_ != security::Privilege::kMachine) {
            return trap(kCauseIllegalInstr) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
          }
          const std::uint32_t mpp = (mstatus_ >> 11) & 3u;
          priv_ = mpp == 3u ? security::Privilege::kMachine : security::Privilege::kUser;
          // restore MIE from MPIE
          mstatus_ = (mstatus_ & ~0x8u) | ((mstatus_ >> 4) & 0x8u);
          next_pc = mepc_;
          break;
        }
        return trap(kCauseIllegalInstr) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
      }
      // CSR instructions (M-mode only in this core).
      if (priv_ != security::Privilege::kMachine) {
        return trap(kCauseIllegalInstr) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
      }
      const std::uint32_t addr = inst >> 20;
      const std::uint32_t old = csr(addr);
      switch (funct3) {
        case 1: set_csr(addr, v1); break;                 // CSRRW
        case 2: if (rs1 != 0) set_csr(addr, old | v1); break;   // CSRRS
        case 3: if (rs1 != 0) set_csr(addr, old & ~v1); break;  // CSRRC
        default: return trap(kCauseIllegalInstr) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
      }
      set_reg(rd, old);
      break;
    }
    default:
      return trap(kCauseIllegalInstr) ? HaltReason::kRunning : HaltReason::kUnhandledTrap;
  }

  pc_ = next_pc;
  return HaltReason::kRunning;
}

}  // namespace vedliot::sim
