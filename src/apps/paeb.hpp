#pragma once
/// \file paeb.hpp
/// \brief Pedestrian Automatic Emergency Braking (Sec. V-A): distribute the
/// detection pipeline between the on-car computer and an edge station,
/// minimizing on-car energy while always meeting the braking deadline.

#include <optional>
#include <string>

#include "apps/network.hpp"
#include "hw/device.hpp"
#include "hw/perf_model.hpp"

namespace vedliot::apps {

/// The driving scenario that fixes the latency budget.
struct PaebScenario {
  double vehicle_speed_kmh = 50.0;
  double detection_distance_m = 40.0;  ///< pedestrian first observable here
  double brake_decel_ms2 = 8.0;        ///< emergency braking deceleration
  double system_margin_s = 0.15;       ///< actuation + controller margin

  /// Time available from frame capture to a braking decision: time until
  /// braking must begin so the car stops short of the pedestrian.
  double decision_budget_s() const;
};

/// The perception workload (per frame).
struct PaebWorkload {
  double ops = 0;              ///< detector ops per frame
  double frame_bytes = 0;      ///< compressed frame for offload
  double result_bytes = 256;   ///< detection list coming back
  double traffic_bytes = 0;    ///< on-accelerator operand traffic
  double weight_bytes = 0;
  DType dtype = DType::kINT8;
};

/// Where a frame was processed and what it cost.
struct OffloadDecision {
  bool offloaded = false;
  double latency_s = 0;
  double oncar_energy_j = 0;   ///< what the battery pays
  double total_energy_j = 0;   ///< including the edge station
  bool deadline_met = false;
  std::string reason;
};

/// Policy inputs: the on-car device, the edge device, radio power model.
struct PaebConfig {
  hw::DeviceSpec oncar_device;
  hw::DeviceSpec edge_device;
  double radio_tx_w = 2.5;     ///< uplink transmit power
  double radio_idle_w = 0.3;
  bool require_attestation = true;
  double attest_overhead_s = 0.004;  ///< amortized re-attestation cost
};

/// Decide per frame: run locally, or ship to the edge.
///
/// The optimizer ("minimize the on-car energy consumption") offloads only
/// when the network is good enough that (tx energy) < (local inference
/// energy) AND the end-to-end latency still meets the braking deadline AND
/// the edge is attested (raw sensor data never goes to unattested nodes).
class OffloadManager {
 public:
  OffloadManager(PaebConfig config, PaebWorkload workload);

  OffloadDecision decide(const PaebScenario& scenario, const LinkState& link,
                         bool edge_attested) const;

  /// Energy of pure-local operation (the baseline the paper compares with).
  double local_energy_j() const;
  double local_latency_s() const;

 private:
  PaebConfig cfg_;
  PaebWorkload work_;
};

}  // namespace vedliot::apps
