#pragma once
/// \file metrics.hpp
/// \brief Quality metrics the Kenning-analogue reports: confusion matrix
/// for classification models, precision/recall and AP for detectors
/// (Sec. III: "generate a confusion matrix for classification models and
/// recall/precision graphs for detection algorithms").

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace vedliot::kenning {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t truth, std::size_t predicted);

  std::size_t classes() const { return n_; }
  std::uint64_t count(std::size_t truth, std::size_t predicted) const;
  std::uint64_t total() const { return total_; }

  double accuracy() const;
  double precision(std::size_t cls) const;  ///< tp / (tp + fp); 0 if no predictions
  double recall(std::size_t cls) const;     ///< tp / (tp + fn); 0 if no instances
  double f1(std::size_t cls) const;
  double macro_f1() const;

  std::string to_string() const;

 private:
  std::size_t n_;
  std::vector<std::uint64_t> cells_;  // row = truth, col = predicted
  std::uint64_t total_ = 0;
};

/// Axis-aligned box for detection metrics.
struct Box {
  double x = 0, y = 0, w = 0, h = 0;
  double area() const { return w * h; }
};

/// Intersection-over-union of two boxes.
double iou(const Box& a, const Box& b);

struct Detection {
  Box box;
  double score = 0;
  int image_id = 0;
};

struct GroundTruth {
  Box box;
  int image_id = 0;
};

struct PrPoint {
  double threshold = 0;
  double precision = 0;
  double recall = 0;
};

/// Greedy score-ordered matching at the given IoU threshold; returns the
/// precision/recall curve over score thresholds plus average precision
/// (all-point interpolation).
struct DetectionEval {
  std::vector<PrPoint> curve;
  double average_precision = 0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
};

DetectionEval evaluate_detections(std::vector<Detection> detections,
                                  const std::vector<GroundTruth>& truths,
                                  double iou_threshold = 0.5);

}  // namespace vedliot::kenning
