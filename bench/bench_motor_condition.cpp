// T-MOTOR — Motor Condition Classification (Sec. V-B: "battery-powered
// ultra-low energy deep learning-driven small box ... continuously
// monitors the motor").
//
// Reports classification quality vs fault severity and the battery-life
// trade-off of the duty-cycled monitoring box.

#include <iostream>

#include "bench_common.hpp"
#include "apps/motor.hpp"
#include "kenning/metrics.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::apps;

namespace {

kenning::ConfusionMatrix evaluate(double severity, std::uint64_t seed) {
  VibrationGenerator::Config cfg;
  cfg.severity = severity;
  VibrationGenerator train_gen(cfg, seed);
  std::vector<std::pair<MotorFeatures, MotorCondition>> train;
  for (std::size_t c = 0; c < kMotorConditionCount; ++c) {
    for (int i = 0; i < 60; ++i) {
      train.emplace_back(train_gen.sample(static_cast<MotorCondition>(c)),
                         static_cast<MotorCondition>(c));
    }
  }
  MotorClassifier clf;
  clf.fit(train);

  kenning::ConfusionMatrix cm(kMotorConditionCount);
  VibrationGenerator test_gen(cfg, seed + 1);
  for (std::size_t c = 0; c < kMotorConditionCount; ++c) {
    for (int i = 0; i < 100; ++i) {
      cm.add(c, static_cast<std::size_t>(clf.classify(test_gen.sample(static_cast<MotorCondition>(c)))));
    }
  }
  return cm;
}

}  // namespace

void print_artifact() {
  bench::banner("T-MOTOR", "motor condition classification + battery life");

  Table t({"fault severity", "accuracy", "macro F1", "bearing recall", "overheat recall"});
  for (double severity : {0.25, 0.5, 1.0, 2.0}) {
    const auto cm = evaluate(severity, 42);
    t.add_row({fmt_fixed(severity, 2), fmt_percent(cm.accuracy()), fmt_fixed(cm.macro_f1(), 3),
               fmt_percent(cm.recall(static_cast<std::size_t>(MotorCondition::kBearingFault))),
               fmt_percent(cm.recall(static_cast<std::size_t>(MotorCondition::kOverheat)))});
  }
  t.print(std::cout);

  std::printf("\nconfusion matrix at severity 1.0:\n%s\n", evaluate(1.0, 42).to_string().c_str());

  Table b({"classification interval", "avg power mW", "battery life (10 Wh)"});
  for (double interval : {1.0, 10.0, 60.0, 600.0, 3600.0}) {
    MotorBoxEnergy box;
    b.add_row({fmt_fixed(interval, 0) + " s", fmt_fixed(box.average_power_w(interval) * 1e3, 3),
               fmt_fixed(box.battery_life_days(interval, 10.0) / 365.0, 2) + " years"});
  }
  b.print(std::cout);
  bench::note("shape: accuracy degrades gracefully with milder faults; minute-scale duty");
  bench::note("cycling puts the box in multi-year battery territory (ultra-low energy).");
}

static void BM_Classify(benchmark::State& state) {
  VibrationGenerator gen({}, 1);
  std::vector<std::pair<MotorFeatures, MotorCondition>> train;
  for (std::size_t c = 0; c < kMotorConditionCount; ++c) {
    for (int i = 0; i < 20; ++i) {
      train.emplace_back(gen.sample(static_cast<MotorCondition>(c)),
                         static_cast<MotorCondition>(c));
    }
  }
  MotorClassifier clf;
  clf.fit(train);
  const auto sample = gen.sample(MotorCondition::kBearingFault);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.classify(sample));
  }
}
BENCHMARK(BM_Classify);

static void BM_GenerateSample(benchmark::State& state) {
  VibrationGenerator gen({}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.sample(MotorCondition::kImbalance));
  }
}
BENCHMARK(BM_GenerateSample);

VEDLIOT_BENCH_MAIN()
