#include "analysis/dataflow.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vedliot::analysis {

Dataflow Dataflow::compute(const Graph& g, DType act_dtype) {
  const auto order = g.topo_order();
  return compute_with_order(g, order, act_dtype);
}

Dataflow Dataflow::compute_with_order(const Graph& g, std::span<const NodeId> order,
                                      DType act_dtype) {
  VEDLIOT_CHECK(order.size() == g.size(), "order must cover exactly the live nodes");

  Dataflow df;
  df.graph_version_ = g.version();
  df.order_.assign(order.begin(), order.end());
  for (std::size_t i = 0; i < df.order_.size(); ++i) {
    const auto [it, inserted] = df.step_of_.emplace(df.order_[i], i);
    VEDLIOT_CHECK(inserted, "duplicate node in execution order");
  }
  // Topological validity: every input scheduled before its consumer.
  for (NodeId id : df.order_) {
    for (NodeId in : g.node(id).inputs) {
      auto it = df.step_of_.find(in);
      VEDLIOT_CHECK(it != df.step_of_.end(), "node consumes a value outside the order");
      VEDLIOT_CHECK(it->second < df.step_of_.at(id), "order is not topological");
    }
  }

  // Use-def chains in one sweep: each node's input list defines both its
  // producer set and a use of each producer.
  for (NodeId id : df.order_) {
    df.producers_[id] = g.node(id).inputs;
    df.consumers_[id];  // ensure every live node has an (empty) entry
  }
  for (NodeId id : df.order_) {
    for (NodeId in : g.node(id).inputs) df.consumers_[in].push_back(id);
    const OpKind k = g.node(id).kind;
    if (k == OpKind::kIdentity || k == OpKind::kFlatten) df.passthrough_.insert(id);
  }

  const double elem_bytes = dtype_bytes(act_dtype);
  const auto outputs = g.outputs();

  // Liveness: a value is born at its producer's step and stays live through
  // its last consumer's step; graph outputs survive past the final step.
  df.intervals_.resize(df.order_.size());
  for (std::size_t step = 0; step < df.order_.size(); ++step) {
    const NodeId id = df.order_[step];
    LiveInterval& iv = df.intervals_[step];
    iv.node = id;
    iv.def_step = step;
    iv.last_use = step;
    for (NodeId c : df.consumers_.at(id)) iv.last_use = std::max(iv.last_use, df.step_of_.at(c));
    iv.is_output = std::find(outputs.begin(), outputs.end(), id) != outputs.end();
    if (iv.is_output) iv.last_use = df.order_.size();
    iv.bytes = static_cast<std::int64_t>(
        static_cast<double>(g.node(id).out_shape.numel()) * elem_bytes + 0.999);
  }

  for (const LiveInterval& iv : df.intervals_) {
    df.total_edge_bytes_ +=
        iv.bytes * static_cast<std::int64_t>(df.consumers_.at(iv.node).size());
  }

  // Peak live set: sweep steps, summing values whose interval covers the step.
  for (std::size_t step = 0; step < df.order_.size(); ++step) {
    std::int64_t live = 0;
    for (const LiveInterval& iv : df.intervals_) {
      if (iv.def_step <= step && step <= iv.last_use) live += iv.bytes;
    }
    df.peak_live_bytes_ = std::max(df.peak_live_bytes_, live);
  }

  return df;
}

std::size_t Dataflow::step_of(NodeId id) const {
  auto it = step_of_.find(id);
  VEDLIOT_CHECK(it != step_of_.end(), "node not covered by this dataflow analysis");
  return it->second;
}

const LiveInterval& Dataflow::interval(NodeId id) const { return intervals_[step_of(id)]; }

const std::vector<NodeId>& Dataflow::consumers(NodeId id) const {
  auto it = consumers_.find(id);
  VEDLIOT_CHECK(it != consumers_.end(), "node not covered by this dataflow analysis");
  return it->second;
}

const std::vector<NodeId>& Dataflow::producers(NodeId id) const {
  auto it = producers_.find(id);
  VEDLIOT_CHECK(it != producers_.end(), "node not covered by this dataflow analysis");
  return it->second;
}

NodeId Dataflow::reaching_producer(NodeId id, std::size_t input_index) const {
  const auto& ins = producers(id);
  VEDLIOT_CHECK(input_index < ins.size(), "input index out of range");
  NodeId cur = ins[input_index];
  // Walk through value-preserving pass-throughs (Identity; Flatten only
  // reshapes) to the node that actually computed the value.
  while (passthrough_.count(cur)) {
    auto it = producers_.find(cur);
    if (it == producers_.end() || it->second.size() != 1) break;
    cur = it->second[0];
  }
  return cur;
}

std::vector<std::vector<NodeId>> Dataflow::waves() const {
  std::map<NodeId, std::size_t> level;
  std::vector<std::vector<NodeId>> out;
  // order_ is topological, so every producer's level is known when its
  // consumer is visited; one sweep suffices.
  for (NodeId id : order_) {
    std::size_t lv = 0;
    for (NodeId in : producers_.at(id)) lv = std::max(lv, level.at(in) + 1);
    level[id] = lv;
    if (out.size() <= lv) out.resize(lv + 1);
    out[lv].push_back(id);
  }
  return out;
}

const Dataflow& DataflowCache::get(const Graph& g, DType act_dtype) {
  if (cached_ && graph_ == &g && dtype_ == act_dtype && cached_->valid_for(g)) {
    return *cached_;
  }
  cached_ = std::make_unique<Dataflow>(Dataflow::compute(g, act_dtype));
  graph_ = &g;
  dtype_ = act_dtype;
  ++recomputations_;
  return *cached_;
}

}  // namespace vedliot::analysis
