#pragma once
/// \file quant.hpp
/// \brief Quantization primitives for the Sec. III optimizing toolchain.
///
/// Supports symmetric and affine (asymmetric) INT8/INT4 quantization with
/// min-max or percentile calibration, per-tensor and per-channel scales, and
/// the fake-quant round trip the optimizer uses to model accuracy loss.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/dtype.hpp"
#include "tensor/tensor.hpp"

namespace vedliot {

/// Affine quantization parameters: real = scale * (q - zero_point).
struct QuantParams {
  double scale = 1.0;
  std::int32_t zero_point = 0;
  std::int32_t qmin = -128;
  std::int32_t qmax = 127;

  /// Quantize one real value (round-to-nearest, saturating).
  std::int32_t quantize(float v) const;
  /// Dequantize one integer value.
  float dequantize(std::int32_t q) const;
};

/// Calibration strategy for choosing the clipping range.
enum class Calibration {
  kMinMax,       ///< use the exact observed min/max
  kPercentile,   ///< clip to the [p, 100-p] percentile range (robust to outliers)
};

/// Compute symmetric quantization parameters (zero_point == 0) for the
/// observed data range. \p dt must be an integer type.
QuantParams choose_symmetric(std::span<const float> data, DType dt,
                             Calibration cal = Calibration::kMinMax,
                             double percentile = 0.1);

/// Compute affine quantization parameters covering [min, max].
QuantParams choose_affine(std::span<const float> data, DType dt,
                          Calibration cal = Calibration::kMinMax,
                          double percentile = 0.1);

/// Quantize a whole span into integers.
std::vector<std::int32_t> quantize(std::span<const float> data, const QuantParams& qp);

/// Dequantize integers back to floats.
std::vector<float> dequantize(std::span<const std::int32_t> q, const QuantParams& qp);

/// Round-trip ("fake quant") a tensor in place; returns the params used.
QuantParams fake_quantize(Tensor& t, DType dt, Calibration cal = Calibration::kMinMax,
                          double percentile = 0.1);

/// Per-output-channel symmetric fake quantization of a rank-4 OIHW weight
/// tensor (channel = dim 0). Returns one QuantParams per channel.
std::vector<QuantParams> fake_quantize_per_channel(Tensor& weight, DType dt);

/// Worst-case quantization step (scale) for the given data/type — useful as
/// an analytic bound in property tests: |x - fq(x)| <= scale/2 for values
/// inside the clipping range.
double quant_step(std::span<const float> data, DType dt);

/// IEEE-754 half-precision round trip used to model FP16 casting.
float fp16_round_trip(float v);

/// Apply fp16 rounding to every element.
void cast_fp16_inplace(Tensor& t);

}  // namespace vedliot
