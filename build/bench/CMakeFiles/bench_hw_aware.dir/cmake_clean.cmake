file(REMOVE_RECURSE
  "CMakeFiles/bench_hw_aware.dir/bench_hw_aware.cpp.o"
  "CMakeFiles/bench_hw_aware.dir/bench_hw_aware.cpp.o.d"
  "bench_hw_aware"
  "bench_hw_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
