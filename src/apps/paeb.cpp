#include "apps/paeb.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vedliot::apps {

double PaebScenario::decision_budget_s() const {
  const double v = vehicle_speed_kmh / 3.6;  // m/s
  VEDLIOT_CHECK(v > 0, "vehicle must be moving");
  const double braking_distance = v * v / (2.0 * brake_decel_ms2);
  const double distance_budget = detection_distance_m - braking_distance;
  const double t = distance_budget / v - system_margin_s;
  return std::max(0.0, t);
}

OffloadManager::OffloadManager(PaebConfig config, PaebWorkload workload)
    : cfg_(std::move(config)), work_(workload) {
  VEDLIOT_CHECK(work_.ops > 0, "PAEB workload has no operations");
}

double OffloadManager::local_latency_s() const {
  return hw::estimate_workload(cfg_.oncar_device, work_.ops, work_.traffic_bytes,
                               work_.weight_bytes, 1, work_.dtype)
      .latency_s;
}

double OffloadManager::local_energy_j() const {
  return hw::estimate_workload(cfg_.oncar_device, work_.ops, work_.traffic_bytes,
                               work_.weight_bytes, 1, work_.dtype)
      .energy_j;
}

OffloadDecision OffloadManager::decide(const PaebScenario& scenario, const LinkState& link,
                                       bool edge_attested) const {
  const double budget = scenario.decision_budget_s();

  // Local option.
  const auto local = hw::estimate_workload(cfg_.oncar_device, work_.ops, work_.traffic_bytes,
                                           work_.weight_bytes, 1, work_.dtype);
  OffloadDecision local_choice;
  local_choice.offloaded = false;
  local_choice.latency_s = local.latency_s;
  local_choice.oncar_energy_j = local.energy_j;
  local_choice.total_energy_j = local.energy_j;
  local_choice.deadline_met = local.latency_s <= budget;
  local_choice.reason = "local inference";

  // Remote option.
  OffloadDecision remote_choice;
  remote_choice.offloaded = true;
  const double up_s = work_.frame_bytes * 8.0 / (link.bandwidth_mbps * 1e6) /
                      std::max(1e-6, 1.0 - link.loss);
  const double down_s = work_.result_bytes * 8.0 / (link.bandwidth_mbps * 4.0 * 1e6);
  const auto edge = hw::estimate_workload(cfg_.edge_device, work_.ops, work_.traffic_bytes,
                                          work_.weight_bytes, 1, work_.dtype);
  double latency = up_s + link.rtt_ms * 1e-3 + edge.latency_s + down_s;
  if (cfg_.require_attestation) latency += cfg_.attest_overhead_s;
  remote_choice.latency_s = latency;
  remote_choice.oncar_energy_j = cfg_.radio_tx_w * up_s + cfg_.radio_idle_w * (latency - up_s);
  remote_choice.total_energy_j = remote_choice.oncar_energy_j + edge.energy_j;
  remote_choice.deadline_met = latency <= budget;
  remote_choice.reason = "edge offload";

  if (cfg_.require_attestation && !edge_attested) {
    remote_choice.deadline_met = false;
    remote_choice.reason = "edge not attested: raw sensor data must stay on-car";
  }

  // Pick the choice that meets the deadline with lowest on-car energy;
  // if neither meets it, run locally (never gamble safety on the network).
  if (remote_choice.deadline_met &&
      (!local_choice.deadline_met ||
       remote_choice.oncar_energy_j < local_choice.oncar_energy_j)) {
    return remote_choice;
  }
  return local_choice;
}

}  // namespace vedliot::apps
