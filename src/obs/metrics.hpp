#pragma once
/// \file metrics.hpp
/// \brief Counters, gauges and fixed-bucket histograms — the metrics half of
/// vedliot::obs.
///
/// Metric names follow `vedliot.<subsystem>.<name>` (see DESIGN.md,
/// "Observability"). Registries are plain maps: cheap to create per run,
/// mergeable by re-reporting, and deterministic to iterate (names sort).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vedliot::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins floating point metric.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed uniform-bucket histogram over [lo, hi); out-of-range samples clamp
/// into the first/last bucket. Tracks exact min/max/sum alongside the
/// buckets so mean is exact and percentile interpolation can clamp to the
/// observed range.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  std::size_t total() const { return total_; }
  double sum() const { return sum_; }
  double mean() const { return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0; }
  double min() const { return total_ > 0 ? min_ : 0.0; }
  double max() const { return total_ > 0 ? max_ : 0.0; }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t buckets() const { return counts_.size(); }
  std::size_t bucket_count(std::size_t i) const { return counts_.at(i); }
  double bucket_width() const { return (hi_ - lo_) / static_cast<double>(counts_.size()); }

  /// p-th percentile, p in [0, 100], linearly interpolated inside the
  /// bucket that crosses the target rank; clamped to [min(), max()].
  /// Returns 0 for an empty histogram.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> metric registry. First access creates the metric; later accesses
/// return the same instance (histogram bounds from the first call win).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double lo = 0.0, double hi = 1.0,
                       std::size_t buckets = 64);

  bool has_counter(const std::string& name) const { return counters_.count(name) > 0; }
  bool has_gauge(const std::string& name) const { return gauges_.count(name) > 0; }
  bool has_histogram(const std::string& name) const { return histograms_.count(name) > 0; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  void clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace vedliot::obs
