// Tests for distributed inference across microservers (pipeline-parallel
// partitioning over the RECS fabric).

#include <gtest/gtest.h>

#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "hw/perf_model.hpp"
#include "platform/distributed.hpp"

namespace vedliot::platform {
namespace {

struct TestRig {
  Chassis chassis;
  Fabric fabric;
  std::vector<std::string> slots;
};

TestRig recs_box_with_modules(int count) {
  TestRig s{Chassis(recs_box()), star_fabric({}, 10.0, {1.0, 10.0}), {}};
  s.fabric = star_fabric({"come0", "come1", "come2", "come3"}, 10.0, {1.0, 10.0});
  for (int i = 0; i < count; ++i) {
    const std::string slot = "come" + std::to_string(i);
    s.chassis.install(slot, find_module(i % 2 == 0 ? "COMe-XavierAGX" : "COMe-D1577"));
    s.slots.push_back(slot);
  }
  return s;
}

TEST(Distributed, SingleStageEqualsWholeModelOnOneModule) {
  TestRig s = recs_box_with_modules(1);
  Graph g = zoo::resnet50();
  const auto plan =
      plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 1, DType::kINT8);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].first, 0u);
  EXPECT_EQ(plan.stages[0].last, g.size() - 1);
  EXPECT_DOUBLE_EQ(plan.stages[0].transfer_s, 0.0);
  EXPECT_GT(plan.latency_s, 0.0);
}

TEST(Distributed, StagesPartitionEveryNode) {
  TestRig s = recs_box_with_modules(3);
  Graph g = zoo::yolov4();
  const auto plan =
      plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 3, DType::kINT8);
  ASSERT_EQ(plan.stages.size(), 3u);
  std::size_t covered = 0;
  std::size_t expected_start = 0;
  for (const auto& st : plan.stages) {
    EXPECT_EQ(st.first, expected_start);
    EXPECT_GE(st.last, st.first);
    covered += st.last - st.first + 1;
    expected_start = st.last + 1;
  }
  EXPECT_EQ(covered, g.size());
}

TEST(Distributed, OpsConserved) {
  TestRig s = recs_box_with_modules(2);
  Graph g = zoo::resnet50();
  const auto plan =
      plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 2, DType::kINT8);
  double total = 0;
  for (const auto& st : plan.stages) total += st.ops;
  EXPECT_NEAR(total, static_cast<double>(graph_cost(g).ops), 1.0);
}

TEST(Distributed, StagesRoughlyBalanced) {
  TestRig s = recs_box_with_modules(4);
  Graph g = zoo::resnet50();
  const auto plan =
      plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 4, DType::kINT8);
  const double total = static_cast<double>(graph_cost(g).ops);
  for (const auto& st : plan.stages) {
    EXPECT_GT(st.ops, total * 0.10) << "stage too small";
    EXPECT_LT(st.ops, total * 0.45) << "stage too large";
  }
}

TEST(Distributed, PipeliningImprovesThroughputOverSingleDevice) {
  // Identical modules: steady-state interval ~ 1/k of the single-device
  // latency (minus transfer overheads) -> throughput speedup > 1.
  TestRig s{Chassis(recs_box()), star_fabric({"come0", "come1", "come2", "come3"}, 10.0, {1.0, 10.0}),
          {"come0", "come1", "come2"}};
  for (const auto& slot : s.slots) s.chassis.install(slot, find_module("COMe-XavierAGX"));
  Graph g = zoo::yolov4();
  const auto plan =
      plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 3, DType::kINT8);
  EXPECT_GT(plan.speedup_vs_single(), 1.5);
  EXPECT_LT(plan.speedup_vs_single(), 3.5);
}

TEST(Distributed, LatencyIncludesTransfers) {
  TestRig s = recs_box_with_modules(2);
  Graph g = zoo::resnet50();
  const auto plan =
      plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 2, DType::kINT8);
  double compute = 0, transfers = 0;
  for (const auto& st : plan.stages) {
    compute += st.compute_s;
    transfers += st.transfer_s;
  }
  EXPECT_GT(transfers, 0.0);  // something crosses the fabric
  EXPECT_NEAR(plan.latency_s, compute + transfers, 1e-12);
  EXPECT_GT(plan.stages.front().boundary_bytes, 0.0);
}

TEST(Distributed, SlowFabricHurtsThroughput) {
  TestRig fast = recs_box_with_modules(2);
  TestRig slow = recs_box_with_modules(2);
  slow.fabric.set_link_speed("switch0", "come0", 1.0);
  slow.fabric.set_link_speed("switch0", "come1", 1.0);
  Graph g = zoo::yolov4();
  const auto pf =
      plan_distributed_inference(g, fast.chassis, fast.fabric, fast.slots, 2, DType::kINT8);
  const auto ps =
      plan_distributed_inference(g, slow.chassis, slow.fabric, slow.slots, 2, DType::kINT8);
  EXPECT_LE(pf.latency_s, ps.latency_s);
}

TEST(Distributed, Validation) {
  TestRig s = recs_box_with_modules(1);
  Graph g = zoo::resnet50();
  EXPECT_THROW((void)plan_distributed_inference(g, s.chassis, s.fabric, {}, 1, DType::kINT8),
               PlatformError);
  EXPECT_THROW((void)plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 5, DType::kINT8),
               PlatformError);
  EXPECT_THROW(
      (void)plan_distributed_inference(g, s.chassis, s.fabric, {"come3"}, 1, DType::kINT8),
      PlatformError);
}

TEST(Distributed, UnsupportedDtypeRejected) {
  TestRig s{Chassis(recs_box()), star_fabric({"come0"}, 10.0, {1.0, 10.0}), {"come0"}};
  s.chassis.install("come0", find_module("COMe-D1577"));
  Graph g = zoo::resnet50();
  // D1577 supports int8 in this catalog; binary is not supported.
  EXPECT_THROW(
      (void)plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 1, DType::kBinary),
      Error);
}

TEST(Distributed, FabricPartitionSurfacesClearError) {
  // A partition between assigned slots must not leak a bare NotFound from
  // deep inside the fabric: the planner says which stage boundary failed.
  TestRig s = recs_box_with_modules(2);
  s.fabric.remove_link("switch0", "come1");
  Graph g = zoo::resnet50();
  try {
    (void)plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 2, DType::kINT8);
    FAIL() << "expected PlatformError on a partitioned fabric";
  } catch (const PlatformError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fabric partition"), std::string::npos) << msg;
    EXPECT_NE(msg.find("come1"), std::string::npos) << msg;
  }
  // A single stage on the still-reachable module is unaffected.
  const auto plan =
      plan_distributed_inference(g, s.chassis, s.fabric, {"come0"}, 1, DType::kINT8);
  EXPECT_EQ(plan.stages.size(), 1u);
}

TEST(Distributed, ThrottledSlotSlowsThePlan) {
  TestRig s = recs_box_with_modules(2);
  Graph g = zoo::resnet50();
  const auto healthy =
      plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 2, DType::kINT8);
  PlanOptions opts;
  opts.slot_gops_scale["come0"] = 0.25;
  const auto throttled =
      plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 2, DType::kINT8, opts);
  EXPECT_GT(throttled.latency_s, healthy.latency_s);
  EXPECT_LT(throttled.throughput_fps, healthy.throughput_fps);

  PlanOptions bad;
  bad.slot_gops_scale["come0"] = 0.0;
  EXPECT_THROW(
      (void)plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 2, DType::kINT8, bad),
      Error);
}

TEST(Distributed, StagesCarryWeightBytes) {
  TestRig s = recs_box_with_modules(2);
  Graph g = zoo::resnet50();
  const auto plan =
      plan_distributed_inference(g, s.chassis, s.fabric, s.slots, 2, DType::kINT8);
  double total = 0;
  for (const auto& st : plan.stages) {
    EXPECT_GT(st.weight_bytes, 0.0);
    total += st.weight_bytes;
  }
  EXPECT_GT(total, 0.0);
}

TEST(Distributed, BestSingleModulePicksFastest) {
  TestRig s = recs_box_with_modules(2);  // AGX + D1577
  Graph g = zoo::resnet50();
  const double best = best_single_module_latency(g, s.chassis, DType::kINT8);
  const double agx = hw::estimate(hw::find_device("XavierAGX-MAXN"), g, DType::kINT8).latency_s;
  EXPECT_DOUBLE_EQ(best, agx);
}

}  // namespace
}  // namespace vedliot::platform
