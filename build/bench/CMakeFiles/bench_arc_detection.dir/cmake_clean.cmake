file(REMOVE_RECURSE
  "CMakeFiles/bench_arc_detection.dir/bench_arc_detection.cpp.o"
  "CMakeFiles/bench_arc_detection.dir/bench_arc_detection.cpp.o.d"
  "bench_arc_detection"
  "bench_arc_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arc_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
