#pragma once
/// \file tensor.hpp
/// \brief Dense FP32 tensor used by the reference executor and optimizer.
///
/// Storage is always float; quantized execution is modelled by
/// quantize-dequantize ("fake quant", see quant.hpp), which is how
/// post-training-quantization accuracy is normally evaluated before
/// deploying real integer kernels.

#include <span>
#include <vector>

#include "tensor/shape.hpp"

namespace vedliot {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit data; data.size() must equal shape.numel().
  Tensor(Shape shape, std::vector<float> data);

  /// Non-owning tensor over external storage (an activation-arena slab);
  /// data.size() must equal shape.numel(). The storage must outlive every
  /// view of it. Copying a view yields another view of the same memory;
  /// use clone() to materialize an owned snapshot.
  static Tensor view(Shape shape, std::span<float> data);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  // Moves keep the source's heap buffer alive, so the span stays valid for
  // owned tensors and keeps aliasing the arena for views.
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept = default;

  /// True when the tensor aliases external storage instead of owning it.
  bool is_view() const { return storage_.empty() && !data_.empty(); }

  /// Owned deep copy (views included).
  Tensor clone() const;

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// 4-D NCHW element access; throws unless rank-4 and in range.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  /// Fill with a constant.
  void fill(float v);

  /// Elementwise min/max over the data (0,0 for empty).
  float min() const;
  float max() const;

  /// Sum of absolute values.
  double abs_sum() const;

  /// Fraction of exact zeros (sparsity after pruning).
  double sparsity() const;

  bool empty() const { return data_.empty(); }

 private:
  Shape shape_;
  std::vector<float> storage_;   ///< empty for views
  std::span<float> data_;        ///< spans storage_ (owned) or external memory
};

/// Stack tensors along the leading (batch) dimension: parts must agree on
/// rank and trailing dims; the result's dim 0 is the sum of the parts'.
/// Rank must be >= 1. Used by the batched-submit path to coalesce
/// per-request inputs into one GEMM-friendly feed.
Tensor stack_batch(std::span<const Tensor> parts);

/// Inverse of stack_batch for unit lanes: split a batched tensor into
/// dim0-many owned tensors of batch 1, in lane order.
std::vector<Tensor> split_batch(const Tensor& batched);

/// Max absolute elementwise difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Root-mean-square error between two tensors; shapes must match.
double rmse(const Tensor& a, const Tensor& b);

}  // namespace vedliot
