// Tests for tensor, shape, dtype and quantization primitives.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{1, 3, 224, 224};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.numel(), 1 * 3 * 224 * 224);
  EXPECT_EQ(s.n(), 1);
  EXPECT_EQ(s.c(), 3);
  EXPECT_EQ(s.h(), 224);
  EXPECT_EQ(s.w(), 224);
  EXPECT_EQ(s.to_string(), "[1, 3, 224, 224]");
}

TEST(Shape, RejectsNonPositiveExtents) {
  EXPECT_THROW(Shape({1, 0, 3}), InvalidArgument);
  EXPECT_THROW(Shape({-1}), InvalidArgument);
}

TEST(Shape, NchwAccessorRequiresRank4) {
  Shape s{2, 3};
  EXPECT_THROW((void)s.c(), Error);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
}

TEST(Tensor, ZeroInitialised) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, DataSizeMustMatchShape) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0f, 2.0f}), Error);
}

TEST(Tensor, At4RowMajorLayout) {
  Tensor t(Shape{1, 2, 2, 2});
  t.at4(0, 1, 1, 0) = 5.0f;
  // index = ((0*2+1)*2+1)*2+0 = 6
  EXPECT_EQ(t.at(6), 5.0f);
}

TEST(Tensor, At4BoundsChecked) {
  Tensor t(Shape{1, 1, 2, 2});
  EXPECT_THROW((void)t.at4(0, 0, 2, 0), Error);
  EXPECT_THROW((void)t.at4(0, 1, 0, 0), Error);
}

TEST(Tensor, MinMaxSparsity) {
  Tensor t(Shape{4}, {0.0f, -2.0f, 3.0f, 0.0f});
  EXPECT_EQ(t.min(), -2.0f);
  EXPECT_EQ(t.max(), 3.0f);
  EXPECT_DOUBLE_EQ(t.sparsity(), 0.5);
  EXPECT_DOUBLE_EQ(t.abs_sum(), 5.0);
}

TEST(Tensor, MaxAbsDiffAndRmse) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b(Shape{2}, {1.5f, 2.0f});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  EXPECT_NEAR(rmse(a, b), 0.5 / std::sqrt(2.0), 1e-7);
  Tensor c(Shape{3});
  EXPECT_THROW((void)max_abs_diff(a, c), Error);
}

TEST(DType, BitsAndNames) {
  EXPECT_EQ(dtype_bits(DType::kFP32), 32);
  EXPECT_EQ(dtype_bits(DType::kINT4), 4);
  EXPECT_EQ(dtype_bits(DType::kBinary), 1);
  EXPECT_EQ(dtype_name(DType::kINT8), "int8");
  EXPECT_EQ(parse_dtype("fp16"), DType::kFP16);
  EXPECT_THROW((void)parse_dtype("float64"), InvalidArgument);
}

TEST(DType, RoundTripAllNames) {
  for (DType dt : {DType::kFP32, DType::kFP16, DType::kINT8, DType::kINT4, DType::kBinary}) {
    EXPECT_EQ(parse_dtype(dtype_name(dt)), dt);
  }
}

TEST(DType, IntegerPredicate) {
  EXPECT_TRUE(dtype_is_integer(DType::kINT8));
  EXPECT_TRUE(dtype_is_integer(DType::kBinary));
  EXPECT_FALSE(dtype_is_integer(DType::kFP16));
}

TEST(DType, SpeedupMonotone) {
  EXPECT_LT(dtype_speedup_vs_fp32(DType::kFP32), dtype_speedup_vs_fp32(DType::kFP16));
  EXPECT_LT(dtype_speedup_vs_fp32(DType::kFP16), dtype_speedup_vs_fp32(DType::kINT8));
}

TEST(Quant, SymmetricZeroPointIsZero) {
  const std::vector<float> data{-1.0f, 0.5f, 0.9f};
  const auto qp = choose_symmetric(data, DType::kINT8);
  EXPECT_EQ(qp.zero_point, 0);
  EXPECT_NEAR(qp.scale, 1.0 / 127.0, 1e-9);
}

TEST(Quant, SymmetricRoundTripBound) {
  Rng rng(3);
  const auto data = rng.uniform_vector(4096, -2.0, 2.0);
  const auto qp = choose_symmetric(data, DType::kINT8);
  for (float v : data) {
    const float back = qp.dequantize(qp.quantize(v));
    EXPECT_LE(std::abs(v - back), qp.scale / 2.0 + 1e-6);
  }
}

TEST(Quant, AffineCoversAsymmetricRange) {
  const std::vector<float> data{0.0f, 10.0f};
  const auto qp = choose_affine(data, DType::kINT8);
  // zero must be exactly representable
  const float zero_back = qp.dequantize(qp.quantize(0.0f));
  EXPECT_NEAR(zero_back, 0.0f, 1e-6);
  EXPECT_NEAR(qp.dequantize(qp.quantize(10.0f)), 10.0f, qp.scale);
}

TEST(Quant, QuantizeSaturates) {
  QuantParams qp;
  qp.scale = 0.1;
  EXPECT_EQ(qp.quantize(1000.0f), 127);
  EXPECT_EQ(qp.quantize(-1000.0f), -128);
}

TEST(Quant, Int4HasCoarserStepThanInt8) {
  const std::vector<float> data{-1.0f, 1.0f};
  EXPECT_GT(quant_step(data, DType::kINT4), quant_step(data, DType::kINT8));
}

TEST(Quant, PercentileCalibrationIgnoresOutliers) {
  Rng rng(17);
  auto data = rng.uniform_vector(10000, -1.0, 1.0);
  data.push_back(1000.0f);  // a single spike
  const auto minmax = choose_symmetric(data, DType::kINT8, Calibration::kMinMax);
  const auto pct = choose_symmetric(data, DType::kINT8, Calibration::kPercentile, 0.5);
  EXPECT_GT(minmax.scale, 1.0);   // poisoned by the outlier
  EXPECT_LT(pct.scale, 0.05);     // robust
}

TEST(Quant, FakeQuantizeReducesDistinctValues) {
  Rng rng(5);
  Tensor t(Shape{1, 1, 16, 16}, rng.normal_vector(256));
  fake_quantize(t, DType::kINT4);
  std::set<float> distinct(t.data().begin(), t.data().end());
  EXPECT_LE(distinct.size(), 16u);  // int4 has at most 16 levels
}

TEST(Quant, PerChannelScalesIndependent) {
  // Channel 0 has tiny weights, channel 1 has huge ones; per-channel must
  // quantize the small channel much more precisely than per-tensor would.
  std::vector<float> data(2 * 4);
  for (int i = 0; i < 4; ++i) data[static_cast<std::size_t>(i)] = 0.01f * static_cast<float>(i - 2);
  for (int i = 0; i < 4; ++i) data[static_cast<std::size_t>(4 + i)] = 100.0f * static_cast<float>(i - 2);
  Tensor w(Shape{2, 1, 2, 2}, data);
  Tensor per_tensor = w;

  const auto params = fake_quantize_per_channel(w, DType::kINT8);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_LT(params[0].scale, params[1].scale / 100.0);

  fake_quantize(per_tensor, DType::kINT8);
  // per-channel error on the small channel is much lower
  double err_pc = 0, err_pt = 0;
  for (int i = 0; i < 4; ++i) {
    err_pc += std::abs(w.at(static_cast<std::size_t>(i)) - data[static_cast<std::size_t>(i)]);
    err_pt += std::abs(per_tensor.at(static_cast<std::size_t>(i)) - data[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(err_pc, err_pt);
}

TEST(Quant, CalibrationRejectsEmpty) {
  std::vector<float> empty;
  EXPECT_THROW((void)choose_symmetric(empty, DType::kINT8), Error);
}

TEST(Fp16, ExactValuesSurvive) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f}) {
    EXPECT_EQ(fp16_round_trip(v), v) << v;
  }
}

TEST(Fp16, InfinityAndNanHandling) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(fp16_round_trip(inf), inf);
  EXPECT_EQ(fp16_round_trip(-inf), -inf);
  EXPECT_TRUE(std::isnan(fp16_round_trip(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Fp16, OverflowBecomesInfinity) {
  EXPECT_TRUE(std::isinf(fp16_round_trip(1e20f)));
  EXPECT_TRUE(std::isinf(fp16_round_trip(70000.0f)));  // > 65504 (fp16 max)
}

TEST(Fp16, MaxFiniteValuePreserved) {
  EXPECT_EQ(fp16_round_trip(65504.0f), 65504.0f);
}

TEST(Fp16, SubnormalsRepresentable) {
  const float tiny = 6.0e-8f;  // within fp16 subnormal range
  const float back = fp16_round_trip(tiny);
  EXPECT_GT(back, 0.0f);
  EXPECT_NEAR(back, tiny, 6e-8);
}

TEST(Fp16, UnderflowToZero) {
  EXPECT_EQ(fp16_round_trip(1e-12f), 0.0f);
}

class Fp16RelativeError : public ::testing::TestWithParam<float> {};

TEST_P(Fp16RelativeError, WithinHalfUlp) {
  const float v = GetParam();
  const float back = fp16_round_trip(v);
  // fp16 has 10 mantissa bits: relative error <= 2^-11.
  EXPECT_LE(std::abs(back - v), std::abs(v) * (1.0 / 2048.0) + 1e-12) << v;
}

INSTANTIATE_TEST_SUITE_P(SweepValues, Fp16RelativeError,
                         ::testing::Values(0.1f, -0.3f, 3.14159f, 123.456f, -9876.5f, 1e-3f,
                                           6.1e-5f, 42.42f, 0.9999f, -2.7182f));

TEST(Fp16, CastTensorInPlace) {
  Rng rng(21);
  Tensor t(Shape{64}, rng.normal_vector(64));
  Tensor orig = t;
  cast_fp16_inplace(t);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(t.at(idx), fp16_round_trip(orig.at(idx)));
  }
}

}  // namespace
}  // namespace vedliot
