#pragma once
/// \file fleet_soak.hpp
/// \brief Deterministic soak for the fleet layer: generated million-user
/// traffic against an autoscaled, power-budgeted fleet, with machine-checked
/// invariants.
///
/// One run_fleet_soak() call generates a seeded traffic shape (traffic.hpp:
/// diurnal / flash-crowd / retry-storm over a Zipf client population),
/// drives a Fleet through it, and checks:
///
///   1. accounting conservation — every offered request gets exactly one
///      terminal Response, and completed + late + shed + cancelled equals
///      offered (nothing is dropped or double-counted);
///   2. capacity-honest deadlines — a delivered response is never late:
///      the fleet cancels at dispatch instead of serving past-deadline
///      work, so deadline_missed must be zero and every kOk response lands
///      at or before its request's deadline;
///   3. bounded queues — no replica queue ever exceeds its configured
///      capacity, and the replica count stays within [min, max];
///   4. observable transitions — the event log mirrors 1:1, in order, into
///      the obs tracer (category "vedliot.fleet") and every per-kind
///      `vedliot.fleet.*` counter equals its event count;
///   5. per-slot power honesty — every replica's metered average busy
///      power stays within the slot budget its chassis admitted the module
///      under, and within the module's own envelope;
///   6. batch honesty — no executed batch carries more real lanes than the
///      configured cap, and (execute mode) a sample of batched outputs is
///      re-run as singletons and must match CRC-for-CRC bitwise.
///
/// Cross-run: check_fleet_goodput_monotone asserts goodput is monotone
/// non-decreasing in fleet size over the same offered load. Everything
/// derives from FleetSoakConfig::seed, so two runs of the same config
/// produce bitwise-identical to_json() (asserted in tests and
/// bench/soak_fleet).

#include <cstdint>
#include <string>
#include <vector>

#include "serve/fleet.hpp"
#include "serve/traffic.hpp"

namespace vedliot::serve {

struct FleetSoakConfig {
  std::uint64_t seed = 0x5EEDu;
  TrafficPattern pattern = TrafficPattern::kDiurnal;
  double duration_s = 2.0;
  double base_hz = 2000.0;     ///< offered aggregate rate (pattern-shaped)
  std::size_t fleet_size = 4;  ///< replica ceiling
  bool autoscale = true;       ///< false = pin replicas at fleet_size
  std::int64_t max_batch = 8;
  std::size_t queue_capacity = 64;
  double deadline_s = 0.08;    ///< mean relative deadline (jittered)

  /// Run real tensors (micro CNN, materialized from the seed) instead of
  /// the analytic ResNet-50 timing model; enables the batched-vs-singleton
  /// CRC equality check.
  bool execute = false;

  /// Execute mode: how many completed responses to re-run as singletons
  /// for the CRC equality check.
  std::size_t equality_samples = 32;
};

struct FleetSoakResult {
  FleetSoakConfig config;
  FleetReport report;
  std::vector<std::string> violations;  ///< empty = per-run invariants hold

  double goodput() const { return report.goodput(); }
  bool ok() const { return violations.empty(); }

  /// Deterministic JSON-lines record ("record":"soak-fleet"); bitwise
  /// identical across runs of the same config.
  std::string to_json() const;
};

/// Run one seeded fleet soak.
FleetSoakResult run_fleet_soak(const FleetSoakConfig& config);

/// Cross-run invariant over a sweep sharing seed/traffic and varying only
/// fleet_size (ascending): goodput must be monotone non-decreasing — more
/// replicas never serve less. Returns violations (empty = holds).
std::vector<std::string> check_fleet_goodput_monotone(
    const std::vector<FleetSoakResult>& sweep);

}  // namespace vedliot::serve
