// Tests for the observability subsystem (vedliot::obs): deterministic
// tracing under a fake clock, metrics registry + histogram percentiles,
// exporter round-trips through the bundled JSON parser, and the traced
// runtime::Session acceptance invariants (span count and op-class
// histogram totals vs nodes executed).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "exec_single.hpp"
#include "graph/zoo.hpp"
#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "runtime/executor.hpp"
#include "runtime/session.hpp"
#include "sim/bus.hpp"
#include "sim/cpu.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vedliot {
namespace {

// ---------------------------------------------------------------------------
// Tracer + FakeClock
// ---------------------------------------------------------------------------

TEST(Tracer, NestedSpansRecordStructureAndFakeClockTime) {
  obs::FakeClock clock(1000);
  clock.set_auto_tick_ns(10);
  obs::Tracer tracer(&clock);

  {
    obs::ScopedSpan root = tracer.span("session.run", "vedliot.runtime");
    root.attr("graph", "g");
    {
      obs::ScopedSpan child = tracer.span("conv1", "Conv2d");
      child.attr("out_elems", 64.0);
      tracer.instant("checkpoint", "vedliot.test");
      EXPECT_EQ(tracer.open_spans(), 2u);
    }
    {
      obs::ScopedSpan child2 = tracer.span("fc", "Dense");
    }
  }
  EXPECT_EQ(tracer.open_spans(), 0u);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);  // root, conv1, instant, fc — in START order

  EXPECT_EQ(spans[0].name, "session.run");
  EXPECT_EQ(spans[0].category, "vedliot.runtime");
  EXPECT_EQ(spans[0].parent, obs::Span::kNoParent);
  EXPECT_EQ(spans[0].depth, 0u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "graph");
  EXPECT_EQ(spans[0].attrs[0].second, "g");

  EXPECT_EQ(spans[1].name, "conv1");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  ASSERT_EQ(spans[1].num_attrs.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[1].num_attrs[0].second, 64.0);

  EXPECT_EQ(spans[2].name, "checkpoint");
  EXPECT_EQ(spans[2].parent, 1u);  // under the open conv1 span
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[2].start_ns, spans[2].end_ns);  // instant

  EXPECT_EQ(spans[3].name, "fc");
  EXPECT_EQ(spans[3].parent, 0u);
  EXPECT_EQ(spans[3].depth, 1u);

  // FakeClock with auto-tick: strictly increasing deterministic stamps,
  // children nested inside the parent's [start, end] interval.
  EXPECT_EQ(spans[0].start_ns, 1000u);
  for (const obs::Span& s : spans) {
    EXPECT_GE(s.end_ns, s.start_ns);
    if (s.parent != obs::Span::kNoParent) {
      EXPECT_GE(s.start_ns, spans[s.parent].start_ns);
      EXPECT_LE(s.end_ns, spans[s.parent].end_ns);
    }
  }
}

TEST(Tracer, IdenticalRunsUnderFakeClockAreBitIdentical) {
  const auto record = [] {
    obs::FakeClock clock(0);
    clock.set_auto_tick_ns(7);
    obs::Tracer tracer(&clock);
    {
      obs::ScopedSpan a = tracer.span("a");
      obs::ScopedSpan b = tracer.span("b", "cat");
      b.attr("k", 3.5);
    }
    return obs::chrome_trace_json(tracer.spans());
  };
  EXPECT_EQ(record(), record());
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, CountersGaugesAndRegistryIdentity) {
  obs::MetricsRegistry reg;
  reg.counter("vedliot.test.runs").inc();
  reg.counter("vedliot.test.runs").inc(4);
  EXPECT_EQ(reg.counter("vedliot.test.runs").value(), 5u);

  reg.gauge("vedliot.test.temp").set(42.5);
  reg.gauge("vedliot.test.temp").set(17.0);  // last write wins
  EXPECT_DOUBLE_EQ(reg.gauge("vedliot.test.temp").value(), 17.0);

  EXPECT_TRUE(reg.has_counter("vedliot.test.runs"));
  EXPECT_FALSE(reg.has_counter("vedliot.test.absent"));
  EXPECT_EQ(reg.size(), 2u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Metrics, HistogramPercentilesMatchExactStatsWithinBucketWidth) {
  // 1000 deterministic samples in [0, 100): the bucketed percentile must
  // agree with the exact order statistic to within one bucket width.
  obs::Histogram h(0.0, 100.0, 50);
  std::vector<double> xs;
  Rng rng(424242);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0;
    xs.push_back(x);
    h.add(x);
  }
  ASSERT_EQ(h.total(), 1000u);
  std::sort(xs.begin(), xs.end());
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = stats::percentile(xs, p);
    EXPECT_NEAR(h.percentile(p), exact, h.bucket_width())
        << "p" << p << " diverged from exact order statistic";
  }
  EXPECT_NEAR(h.mean(), stats::mean(xs), 1e-9);  // mean is exact, not bucketed
  EXPECT_DOUBLE_EQ(h.min(), xs.front());
  EXPECT_DOUBLE_EQ(h.max(), xs.back());
}

TEST(Metrics, HistogramClampsOutOfRangeIntoEdgeBuckets) {
  obs::Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Percentiles clamp to the observed range, not the bucket grid.
  EXPECT_GE(h.percentile(0.0), -5.0);
  EXPECT_LE(h.percentile(100.0), 100.0);
}

// ---------------------------------------------------------------------------
// Exporters round-trip through the bundled JSON parser
// ---------------------------------------------------------------------------

TEST(Exporters, ChromeTraceRoundTripsThroughJsonParser) {
  obs::FakeClock clock(5000);
  clock.set_auto_tick_ns(1000);
  obs::Tracer tracer(&clock);
  {
    obs::ScopedSpan root = tracer.span("session.run", "vedliot.runtime");
    root.attr("graph", "quote\"and\\slash");
    obs::ScopedSpan child = tracer.span("conv", "Conv2d");
    child.attr("out_elems", 128.0);
  }

  const obs::JsonValue doc = obs::json_parse(obs::chrome_trace_json(tracer.spans(), 3, 9));
  ASSERT_TRUE(doc.is_object());
  const obs::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), tracer.spans().size());

  const obs::JsonValue& root = events.array[0];
  EXPECT_EQ(root.at("name").as_string(), "session.run");
  EXPECT_EQ(root.at("cat").as_string(), "vedliot.runtime");
  EXPECT_EQ(root.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(root.at("pid").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(root.at("tid").as_number(), 9.0);
  EXPECT_DOUBLE_EQ(root.at("ts").as_number(), 5.0);  // 5000 ns -> 5 us
  EXPECT_EQ(root.at("args").at("graph").as_string(), "quote\"and\\slash");

  const obs::JsonValue& child = events.array[1];
  EXPECT_EQ(child.at("name").as_string(), "conv");
  EXPECT_DOUBLE_EQ(child.at("args").at("out_elems").as_number(), 128.0);
  EXPECT_GE(child.at("ts").as_number(), root.at("ts").as_number());
}

TEST(Exporters, MetricsJsonlOneParsableRecordPerMetric) {
  obs::MetricsRegistry reg;
  reg.counter("vedliot.t.runs").inc(3);
  reg.gauge("vedliot.t.load").set(0.75);
  auto& h = reg.histogram("vedliot.t.lat", 0.0, 10.0, 10);
  h.add(1.0);
  h.add(9.0);

  const std::string jsonl = obs::metrics_jsonl(reg);
  std::vector<obs::JsonValue> records;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    if (end > start) records.push_back(obs::json_parse(jsonl.substr(start, end - start)));
    start = end + 1;
  }
  ASSERT_EQ(records.size(), 3u);
  for (const auto& r : records) {
    EXPECT_EQ(r.at("record").as_string(), "metric");
  }
  const auto find = [&](const std::string& name) -> const obs::JsonValue& {
    const auto it = std::find_if(records.begin(), records.end(), [&](const obs::JsonValue& r) {
      return r.at("name").as_string() == name;
    });
    EXPECT_NE(it, records.end());
    return *it;
  };
  EXPECT_EQ(find("vedliot.t.runs").at("type").as_string(), "counter");
  EXPECT_DOUBLE_EQ(find("vedliot.t.runs").at("value").as_number(), 3.0);
  EXPECT_EQ(find("vedliot.t.load").at("type").as_string(), "gauge");
  const obs::JsonValue& hist = find("vedliot.t.lat");
  EXPECT_EQ(hist.at("type").as_string(), "histogram");
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").as_number(), 5.0);
  EXPECT_TRUE(hist.has("p50"));
  EXPECT_TRUE(hist.has("p99"));
}

TEST(Exporters, HumanTablesRenderEveryEntry) {
  obs::MetricsRegistry reg;
  reg.counter("vedliot.t.runs").inc();
  reg.histogram("vedliot.t.lat", 0.0, 1.0, 4).add(0.5);
  const std::string table = obs::metrics_table(reg);
  EXPECT_NE(table.find("vedliot.t.runs"), std::string::npos);
  EXPECT_NE(table.find("vedliot.t.lat"), std::string::npos);

  obs::FakeClock clock;
  obs::Tracer tracer(&clock);
  { auto s = tracer.span("root"); auto c = tracer.span("leaf"); }
  const std::string spans = obs::spans_table(tracer.spans());
  EXPECT_NE(spans.find("root"), std::string::npos);
  EXPECT_NE(spans.find("leaf"), std::string::npos);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)obs::json_parse("{"), obs::JsonError);
  EXPECT_THROW((void)obs::json_parse("{} trailing"), obs::JsonError);
  EXPECT_THROW((void)obs::json_parse("[1,]"), obs::JsonError);
  const obs::JsonValue v = obs::json_parse(R"({"a": [1, 2.5], "b": "x\nA"})");
  EXPECT_DOUBLE_EQ(v.at("a").array[1].as_number(), 2.5);
  EXPECT_EQ(v.at("b").as_string(), "x\nA");
}

// ---------------------------------------------------------------------------
// Traced runtime::Session (the ISSUE acceptance invariants)
// ---------------------------------------------------------------------------

TEST(TracedSession, ResNet50SpanAndHistogramCountsMatchNodesExecuted) {
  // Same topology as the paper's ResNet-50, at a small image so the
  // reference interpreter stays test-sized; node count is unchanged.
  Graph g = zoo::resnet50(1, 10, 32);
  Rng rng(5);
  g.materialize_weights(rng);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  runtime::RunOptions opts;
  opts.trace = &tracer;
  opts.metrics = &metrics;
  auto session = runtime::make_session(g, opts);

  Rng data_rng(6);
  const Shape in_shape{1, 3, 32, 32};
  Tensor x(in_shape, data_rng.normal_vector(static_cast<std::size_t>(in_shape.numel())));
  const runtime::RunResult r =
      session->run({{g.node(g.inputs().front()).name, x}});

  ASSERT_GT(r.nodes_executed, 0u);
  // One span per executed (non-input) node plus the session.run root.
  EXPECT_EQ(tracer.spans().size(), r.nodes_executed + 1);
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.spans().front().name, "session.run");
  ASSERT_FALSE(tracer.spans().front().num_attrs.empty());
  EXPECT_DOUBLE_EQ(tracer.spans().front().num_attrs.back().second,
                   static_cast<double>(r.nodes_executed));

  // Every op-class histogram sample corresponds to one executed node.
  std::size_t samples = 0;
  for (const auto& [name, h] : metrics.histograms()) {
    EXPECT_EQ(name.rfind("vedliot.runtime.op.", 0), 0u) << name;
    samples += h.total();
  }
  EXPECT_EQ(samples, r.nodes_executed);
  EXPECT_EQ(metrics.counter("vedliot.runtime.runs").value(), 1u);
  EXPECT_EQ(metrics.counter("vedliot.runtime.nodes_executed").value(), r.nodes_executed);

  // The Chrome export carries exactly one event per span.
  const obs::JsonValue doc = obs::json_parse(obs::chrome_trace_json(tracer.spans()));
  EXPECT_EQ(doc.at("traceEvents").array.size(), r.nodes_executed + 1);
}

TEST(TracedSession, TwoRunsProduceIdenticalSpanStructure) {
  Graph g = zoo::micro_cnn("det", 1, 1, 16, 4);
  Rng rng(8);
  g.materialize_weights(rng);
  const Shape in_shape{1, 1, 16, 16};
  Rng data_rng(9);
  Tensor x(in_shape, data_rng.normal_vector(256));

  const auto run_traced = [&]() {
    obs::Tracer tracer;
    auto session = runtime::make_session(g, {.trace = &tracer});
    (void)session->run_single(x);
    std::vector<std::tuple<std::string, std::string, std::size_t, std::size_t>> shape;
    for (const obs::Span& s : tracer.spans()) {
      shape.emplace_back(s.name, s.category, s.parent, s.depth);
    }
    return shape;
  };
  EXPECT_EQ(run_traced(), run_traced());  // structure is timestamp-free
}

TEST(Session, MaxBatchRejectsOversizedFeeds) {
  Graph g = zoo::micro_mlp("m", 4, 8, {8}, 3);
  Rng rng(2);
  g.materialize_weights(rng);
  runtime::RunOptions opts;
  opts.exec.max_batch = 2;
  auto session = runtime::make_session(g, opts);
  Rng data_rng(3);
  Tensor big(Shape{4, 8}, data_rng.normal_vector(32));
  EXPECT_THROW((void)session->run({{g.node(g.inputs().front()).name, big}}), ExecError);
}

TEST(Session, KeepActivationsControlsExecutorRetention) {
  Graph g = zoo::micro_mlp("m", 1, 8, {8}, 3);
  Rng rng(2);
  g.materialize_weights(rng);
  Rng data_rng(3);
  Tensor x(Shape{1, 8}, data_rng.normal_vector(8));

  Executor keep(g);
  keep.set_keep_activations(true);
  (void)testutil::exec_single(keep, g, x);
  EXPECT_NO_THROW((void)keep.activation("fc0"));

  Executor drop(g);
  drop.set_keep_activations(false);
  (void)testutil::exec_single(drop, g, x);
  EXPECT_THROW((void)drop.activation("fc0"), NotFound);
}

TEST(TracedSession, QuantizedBackendEmitsSameTaxonomy) {
  Graph g = zoo::micro_mlp("q", 1, 8, {8}, 3);
  Rng rng(4);
  g.materialize_weights(rng);
  opt::FuseBatchNormPass bn;
  bn.run(g);
  opt::FuseActivationPass act;
  act.run(g);
  std::vector<Tensor> samples;
  Rng data_rng(5);
  for (int i = 0; i < 4; ++i) samples.emplace_back(Shape{1, 8}, data_rng.normal_vector(8));
  opt::calibrate_activations(g, samples, Calibration::kMinMax);

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  runtime::RunOptions opts;
  opts.trace = &tracer;
  opts.metrics = &metrics;
  auto session = runtime::make_quantized_session(g, opts);
  const runtime::RunResult r =
      session->run({{g.node(g.inputs().front()).name, samples[0]}});

  EXPECT_EQ(session->backend(), "int8");
  EXPECT_EQ(tracer.spans().size(), r.nodes_executed + 1);
  EXPECT_EQ(tracer.spans().front().name, "session.run");
  std::size_t hist_samples = 0;
  for (const auto& [name, h] : metrics.histograms()) hist_samples += h.total();
  EXPECT_EQ(hist_samples, r.nodes_executed);
  EXPECT_TRUE(metrics.has_gauge("vedliot.runtime.saturations"));
}

// ---------------------------------------------------------------------------
// sim::Cpu counters published as gauges
// ---------------------------------------------------------------------------

TEST(CpuMetrics, PublishesRetirementCountersAsGauges) {
  sim::Bus bus(0, 1024);
  const std::uint32_t ecall = 0x00000073;
  bus.load_words(0, std::span<const std::uint32_t>(&ecall, 1));
  sim::Cpu cpu(bus);
  cpu.set_pc(0);
  ASSERT_EQ(cpu.run(16), sim::HaltReason::kEcall);

  obs::MetricsRegistry reg;
  cpu.publish_metrics(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("vedliot.sim.cpu.instret").value(),
                   static_cast<double>(cpu.instructions_retired()));
  EXPECT_DOUBLE_EQ(reg.gauge("vedliot.sim.cpu.cycles").value(),
                   static_cast<double>(cpu.cycles()));
  EXPECT_DOUBLE_EQ(reg.gauge("vedliot.sim.cpu.traps").value(),
                   static_cast<double>(cpu.trap_count()));
  EXPECT_GE(cpu.instructions_retired(), 1u);

  obs::MetricsRegistry prefixed;
  cpu.publish_metrics(prefixed, "vedliot.sim.node0");
  EXPECT_TRUE(prefixed.has_gauge("vedliot.sim.node0.instret"));
}

}  // namespace
}  // namespace vedliot
