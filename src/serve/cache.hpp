#pragma once
/// \file cache.hpp
/// \brief LRU response cache keyed on idempotency keys.
///
/// Requests that declare a non-empty idempotency key (Request v2) are safe
/// to answer from a previous computation: retry storms re-submit the same
/// work under the same key, and a hit costs neither a queue slot nor a
/// batch lane. The cache stores the terminal Response (including the
/// output CRC), evicting least-recently-used entries at capacity. Hits
/// refresh recency; entries never expire by time — the fleet run is short
/// and deterministic, and a time-based TTL would couple cache behavior to
/// the event schedule.

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

#include "serve/request.hpp"

namespace vedliot::serve {

class ResponseCache {
 public:
  /// \p capacity entries (>= 1).
  explicit ResponseCache(std::size_t capacity);

  /// Look up an idempotency key; a hit refreshes its recency. Empty keys
  /// never hit (non-idempotent work must not be coalesced).
  ///
  /// \p model_version pins version-skew honesty during an OTA rollout: an
  /// entry cached while the responder served version N must not answer a
  /// retry that will be served by version M != N — mid-rollout fleets are
  /// split across versions and a stale hit would silently time-travel the
  /// output. A mismatched entry counts as a miss (and as a version_miss)
  /// without being evicted: devices still on the old version keep hitting
  /// it. Version 0 (the default) keeps the pre-rollout version-agnostic
  /// behavior for single-version fleets.
  std::optional<Response> get(const std::string& key, std::uint32_t model_version = 0);

  /// Insert (or refresh) the response for a key; evicts the LRU entry at
  /// capacity. Empty keys are ignored. \p model_version tags the entry
  /// with the serving version that produced it.
  void put(const std::string& key, const Response& response, std::uint32_t model_version = 0);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  /// Misses caused purely by a version-skew mismatch on a present key.
  std::uint64_t version_misses() const { return version_misses_; }

 private:
  struct Entry {
    Response response;
    std::uint32_t model_version = 0;
    std::list<std::string>::iterator lru_pos;
  };

  std::size_t capacity_;
  std::list<std::string> lru_;  ///< front = most recent
  std::map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t version_misses_ = 0;
};

}  // namespace vedliot::serve
