#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the benchmark harnesses: every bench prints
/// the paper artifact (the figure/table rows) first, then runs any
/// google-benchmark microbenchmarks registered by the file.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "util/table.hpp"

namespace vedliot::bench {

/// Print a banner identifying which paper artifact the output reproduces.
inline void banner(const std::string& artifact_id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact_id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("note: %s\n", text.c_str()); }

}  // namespace vedliot::bench

/// Each bench defines `void print_artifact();` and uses this main.
#define VEDLIOT_BENCH_MAIN()                        \
  int main(int argc, char** argv) {                 \
    print_artifact();                               \
    ::benchmark::Initialize(&argc, argv);           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();          \
    ::benchmark::Shutdown();                        \
    return 0;                                       \
  }
