#pragma once
/// \file stats.hpp
/// \brief Small statistics toolkit used by monitors, benchmarks and reports.

#include <cstddef>
#include <span>
#include <vector>

namespace vedliot::stats {

/// Arithmetic mean; returns 0 for empty input.
double mean(std::span<const double> xs);

/// Population variance; returns 0 for fewer than 2 samples.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Geometric mean of strictly-positive values; throws InvalidArgument otherwise.
double geomean(std::span<const double> xs);

/// Median (interpolated for even sizes); throws InvalidArgument for empty input.
double median(std::span<const double> xs);

/// p-th percentile with linear interpolation, p in [0,100].
double percentile(std::span<const double> xs, double p);

/// Median absolute deviation (robust scale estimator).
double mad(std::span<const double> xs);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Simple linear regression y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Exponentially-weighted moving average tracker.
class Ewma {
 public:
  /// \param alpha smoothing factor in (0, 1]; larger reacts faster.
  explicit Ewma(double alpha);
  void add(double x);
  double value() const { return value_; }
  bool primed() const { return primed_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Streaming mean/variance (Welford).
class Running {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Histogram with fixed uniform bins over [lo, hi); out-of-range clamps.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vedliot::stats
