#include "graph/op.hpp"

#include <array>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace vedliot {

namespace {
constexpr std::array<std::pair<OpKind, std::string_view>, 22> kOpNames = {{
    {OpKind::kInput, "Input"},
    {OpKind::kConv2d, "Conv2d"},
    {OpKind::kDense, "Dense"},
    {OpKind::kBatchNorm, "BatchNorm"},
    {OpKind::kRelu, "Relu"},
    {OpKind::kRelu6, "Relu6"},
    {OpKind::kLeakyRelu, "LeakyRelu"},
    {OpKind::kSigmoid, "Sigmoid"},
    {OpKind::kHSigmoid, "HSigmoid"},
    {OpKind::kHSwish, "HSwish"},
    {OpKind::kMish, "Mish"},
    {OpKind::kTanh, "Tanh"},
    {OpKind::kAdd, "Add"},
    {OpKind::kMul, "Mul"},
    {OpKind::kConcat, "Concat"},
    {OpKind::kMaxPool, "MaxPool"},
    {OpKind::kAvgPool, "AvgPool"},
    {OpKind::kGlobalAvgPool, "GlobalAvgPool"},
    {OpKind::kUpsample, "Upsample"},
    {OpKind::kFlatten, "Flatten"},
    {OpKind::kSoftmax, "Softmax"},
    {OpKind::kIdentity, "Identity"},
}};
}  // namespace

std::string_view op_name(OpKind kind) {
  for (const auto& [k, n] : kOpNames) {
    if (k == kind) return n;
  }
  throw InvalidArgument("unknown OpKind");
}

OpKind parse_op(std::string_view name) {
  for (const auto& [k, n] : kOpNames) {
    if (n == name) return k;
  }
  throw InvalidArgument("unknown op name: " + std::string(name));
}

bool op_is_activation(OpKind kind) {
  switch (kind) {
    case OpKind::kRelu:
    case OpKind::kRelu6:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kHSigmoid:
    case OpKind::kHSwish:
    case OpKind::kMish:
    case OpKind::kTanh:
      return true;
    default:
      return false;
  }
}

bool op_has_weights(OpKind kind) {
  return kind == OpKind::kConv2d || kind == OpKind::kDense || kind == OpKind::kBatchNorm;
}

}  // namespace vedliot
