#pragma once
/// \file brownout.hpp
/// \brief Hysteretic brownout controller: which rung of the degradation
/// ladder the server should be on, given a scalar load signal.
///
/// Level 0 is full quality; higher levels are progressively cheaper
/// configurations (int8 precision, smaller admission batch, smaller
/// fallback model — the server defines the rungs, this class only picks
/// the level). The controller is deliberately sluggish in both directions:
/// the load must sit above the high watermark for `step_down_after`
/// consecutive observations before degrading one rung, and below the low
/// watermark for the (longer) `step_up_after` before recovering one rung,
/// so a load level between the watermarks holds the current rung and the
/// server cannot flap between qualities on a noisy signal.

namespace vedliot::serve {

struct BrownoutConfig {
  double high_watermark = 0.75;  ///< load >= this counts toward degrading
  double low_watermark = 0.25;   ///< load <= this counts toward recovering
  int step_down_after = 3;       ///< consecutive hot observations per rung
  int step_up_after = 12;        ///< consecutive calm observations per rung
  int max_level = 1;             ///< deepest rung (ladder size - 1)
};

class BrownoutLadder {
 public:
  explicit BrownoutLadder(BrownoutConfig config);

  /// Feed one load observation (the server samples once per control tick).
  /// Returns the level delta applied this observation: +1 stepped one rung
  /// down in quality, -1 recovered one rung, 0 held.
  int observe(double load);

  int level() const { return level_; }

 private:
  BrownoutConfig cfg_;
  int level_ = 0;
  int hot_streak_ = 0;
  int calm_streak_ = 0;
};

}  // namespace vedliot::serve
