#pragma once
/// \file mirror.hpp
/// \brief Smart Mirror demonstrator (Sec. V-C / Fig. 5): camera + microphone
/// feed four neural networks (gesture, face, object, speech) that all run
/// on-site for privacy; the orchestrator places them on a uRECS node and
/// verifies real-time rates within the < 15 W power budget.

#include <string>
#include <vector>

#include "graph/zoo.hpp"
#include "platform/baseboard.hpp"
#include "platform/resource_manager.hpp"

namespace vedliot::apps {

/// One of the mirror's perception pipelines.
struct MirrorPipeline {
  std::string name;
  double rate_hz = 5.0;          ///< required inference rate
  double latency_budget_s = 0.2;
};

/// The default four pipelines of Fig. 5.
std::vector<MirrorPipeline> default_pipelines();

/// Result of planning the mirror onto a platform.
struct MirrorPlan {
  std::vector<platform::Placement> placements;
  double average_power_w = 0;
  bool realtime_ok = false;       ///< all pipelines placed within budgets
  bool within_power_budget = false;
  bool privacy_preserved = true;  ///< always true: no cloud offload exists
};

/// Build the Fig. 5 demonstrator: populate a uRECS chassis with the given
/// main module (by catalog name) and place the four networks.
/// Throws PlatformError when placement is impossible on that module.
MirrorPlan plan_smart_mirror(const std::string& main_module,
                             const std::vector<MirrorPipeline>& pipelines = default_pipelines());

/// The per-pipeline DL workload (from the zoo networks) at INT8.
platform::Workload mirror_workload(const MirrorPipeline& pipeline);

}  // namespace vedliot::apps
