#include "graph/zoo.hpp"
#include "graph/zoo_common.hpp"

namespace vedliot::zoo {

namespace {

using detail::Builder;

constexpr OpKind MISH = OpKind::kMish;
constexpr OpKind LEAKY = OpKind::kLeakyRelu;

/// Darknet residual unit: 1x1 reduce + 3x3, with skip connection.
NodeId res_unit(Builder& b, NodeId in, std::int64_t mid, std::int64_t out) {
  NodeId x = b.conv_bn_act(in, mid, 1, 1, 0, MISH);
  x = b.conv_bn_act(x, out, 3, 1, 1, MISH);
  return b.add(x, in);
}

/// CSPDarknet53 stage: strided downsample conv, cross-stage-partial split,
/// n residual units on one branch, concat, 1x1 merge.
NodeId csp_stage(Builder& b, NodeId in, std::int64_t out_c, std::int64_t n, bool first_stage) {
  Graph& g = b.graph();
  NodeId down = b.conv_bn_act(in, out_c, 3, 2, 1, MISH);

  const std::int64_t split_c = first_stage ? out_c : out_c / 2;
  NodeId route_a = b.conv_bn_act(down, split_c, 1, 1, 0, MISH);  // bypass branch
  NodeId route_b = b.conv_bn_act(down, split_c, 1, 1, 0, MISH);  // residual branch

  NodeId x = route_b;
  const std::int64_t mid = first_stage ? out_c / 2 : split_c;
  for (std::int64_t i = 0; i < n; ++i) x = res_unit(b, x, mid, split_c);
  x = b.conv_bn_act(x, split_c, 1, 1, 0, MISH);

  AttrMap cat;
  cat.set_int("axis", 1);
  NodeId merged = g.add(OpKind::kConcat, b.next_name("csp_cat"), {x, route_a}, std::move(cat));
  return b.conv_bn_act(merged, out_c, 1, 1, 0, MISH);
}

/// Five alternating 1x1/3x3 convs used throughout the PANet neck.
NodeId conv5(Builder& b, NodeId in, std::int64_t c) {
  NodeId x = b.conv_bn_act(in, c, 1, 1, 0, LEAKY);
  x = b.conv_bn_act(x, 2 * c, 3, 1, 1, LEAKY);
  x = b.conv_bn_act(x, c, 1, 1, 0, LEAKY);
  x = b.conv_bn_act(x, 2 * c, 3, 1, 1, LEAKY);
  return b.conv_bn_act(x, c, 1, 1, 0, LEAKY);
}

NodeId concat2(Builder& b, NodeId a, NodeId c) {
  AttrMap cat;
  cat.set_int("axis", 1);
  return b.graph().add(OpKind::kConcat, b.next_name("cat"), {a, c}, std::move(cat));
}

/// Detection head: 3x3 expand + linear 1x1 to 3*(classes+5) channels.
NodeId yolo_head(Builder& b, NodeId in, std::int64_t c, std::int64_t classes,
                 const std::string& name) {
  NodeId x = b.conv_bn_act(in, c, 3, 1, 1, LEAKY);
  AttrMap a;
  a.set_int("out_channels", 3 * (classes + 5));
  a.set_int("kernel", 1);
  a.set_int("stride", 1);
  a.set_int("pad", 0);
  a.set_int("groups", 1);
  a.set_int("bias", 1);
  return b.graph().add(OpKind::kConv2d, name, {x}, std::move(a));
}

}  // namespace

Graph yolov4(std::int64_t batch, std::int64_t image, std::int64_t classes) {
  Graph g("yolov4");
  Builder b(g);
  NodeId x = g.add_input("image", Shape{batch, 3, image, image});

  // --- CSPDarknet53 backbone ---
  x = b.conv_bn_act(x, 32, 3, 1, 1, MISH);
  x = csp_stage(b, x, 64, 1, /*first_stage=*/true);
  x = csp_stage(b, x, 128, 2, false);
  NodeId c3 = csp_stage(b, x, 256, 8, false);   // /8  (52x52 at 416)
  NodeId c4 = csp_stage(b, c3, 512, 8, false);  // /16 (26x26)
  NodeId c5 = csp_stage(b, c4, 1024, 4, false); // /32 (13x13)

  // --- SPP ---
  NodeId y = b.conv_bn_act(c5, 512, 1, 1, 0, LEAKY);
  y = b.conv_bn_act(y, 1024, 3, 1, 1, LEAKY);
  y = b.conv_bn_act(y, 512, 1, 1, 0, LEAKY);
  NodeId p5 = b.maxpool(y, 5, 1, 2);
  NodeId p9 = b.maxpool(y, 9, 1, 4);
  NodeId p13 = b.maxpool(y, 13, 1, 6);
  AttrMap cat;
  cat.set_int("axis", 1);
  y = g.add(OpKind::kConcat, "spp_cat", {p13, p9, p5, y}, std::move(cat));
  y = b.conv_bn_act(y, 512, 1, 1, 0, LEAKY);
  y = b.conv_bn_act(y, 1024, 3, 1, 1, LEAKY);
  NodeId n5 = b.conv_bn_act(y, 512, 1, 1, 0, LEAKY);

  // --- PANet top-down ---
  NodeId up5 = b.conv_bn_act(n5, 256, 1, 1, 0, LEAKY);
  AttrMap us1;
  us1.set_int("scale", 2);
  up5 = g.add(OpKind::kUpsample, "up5", {up5}, std::move(us1));
  NodeId l4 = b.conv_bn_act(c4, 256, 1, 1, 0, LEAKY);
  NodeId n4 = conv5(b, concat2(b, l4, up5), 256);

  NodeId up4 = b.conv_bn_act(n4, 128, 1, 1, 0, LEAKY);
  AttrMap us2;
  us2.set_int("scale", 2);
  up4 = g.add(OpKind::kUpsample, "up4", {up4}, std::move(us2));
  NodeId l3 = b.conv_bn_act(c3, 128, 1, 1, 0, LEAKY);
  NodeId n3 = conv5(b, concat2(b, l3, up4), 128);

  // --- PANet bottom-up + heads ---
  yolo_head(b, n3, 256, classes, "head_small");  // /8 scale

  NodeId d3 = b.conv_bn_act(n3, 256, 3, 2, 1, LEAKY);
  NodeId m4 = conv5(b, concat2(b, d3, n4), 256);
  yolo_head(b, m4, 512, classes, "head_medium");  // /16 scale

  NodeId d4 = b.conv_bn_act(m4, 512, 3, 2, 1, LEAKY);
  NodeId m5 = conv5(b, concat2(b, d4, n5), 512);
  yolo_head(b, m5, 1024, classes, "head_large");  // /32 scale

  g.validate();
  return g;
}

}  // namespace vedliot::zoo
