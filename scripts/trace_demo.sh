#!/usr/bin/env bash
# Trace demo: build the examples, run the quickstart with tracing enabled,
# and leave a Chrome trace_event file behind.
#
# Usage: scripts/trace_demo.sh [out.json]
# Open the result in chrome://tracing or https://ui.perfetto.dev.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-trace.json}"

cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)" --target quickstart > /dev/null

./build/examples/quickstart "${OUT}"
echo
echo "trace written to ${OUT}"
