# Empty compiler generated dependencies file for distributed_pipeline.
# This may be replaced when dependencies are built.
