#pragma once
/// \file exec_single.hpp
/// \brief Test-local single-shot convenience over Executor::run.
///
/// Application code runs inference through runtime::Session; the suites
/// that still construct an Executor directly do so to poke engine-level
/// features (profiling, activation retention, fault-injected weights) and
/// feed it the same way the Session wrapper does.

#include <utility>

#include "graph/graph.hpp"
#include "runtime/executor.hpp"

namespace vedliot::testutil {

/// Run a single-input single-output graph through an existing Executor.
inline Tensor exec_single(Executor& exec, const Graph& g, const Tensor& input) {
  auto outs = exec.run({{g.node(g.inputs().front()).name, input}});
  return std::move(outs.begin()->second);
}

/// Same, with a throwaway Executor (one-shot reference runs).
inline Tensor exec_single(const Graph& g, const Tensor& input) {
  Executor exec(g);
  return exec_single(exec, g, input);
}

}  // namespace vedliot::testutil
