#include "graph/zoo.hpp"
#include "graph/zoo_common.hpp"

namespace vedliot::zoo {

namespace {

using detail::Builder;

/// MBConv block, Lite flavour: ReLU6 activations, no squeeze-excitation.
NodeId mbconv(Builder& b, NodeId in, std::int64_t expand_ratio, std::int64_t out,
              std::int64_t kernel, std::int64_t stride) {
  Graph& g = b.graph();
  const auto in_c = g.node(in).out_shape.c();
  NodeId x = in;
  if (expand_ratio != 1) x = b.pw(in, in_c * expand_ratio, OpKind::kRelu6);
  x = b.dw(x, kernel, stride, OpKind::kRelu6);
  x = b.pw(x, out, OpKind::kIdentity);
  if (stride == 1 && in_c == out) x = b.add(x, in);
  return x;
}

}  // namespace

Graph efficientnet_lite0(std::int64_t batch, std::int64_t classes, std::int64_t image) {
  Graph g("efficientnet_lite0");
  Builder b(g);
  NodeId x = g.add_input("image", Shape{batch, 3, image, image});

  x = b.conv_bn_act(x, 32, 3, 2, 1, OpKind::kRelu6);

  struct Stage {
    std::int64_t expand, out, kernel, stride, repeats;
  };
  // EfficientNet-B0 table; Lite keeps the widths but fixes the stem/head.
  const Stage stages[] = {
      {1, 16, 3, 1, 1}, {6, 24, 3, 2, 2},  {6, 40, 5, 2, 2},  {6, 80, 3, 2, 3},
      {6, 112, 5, 1, 3}, {6, 192, 5, 2, 4}, {6, 320, 3, 1, 1},
  };
  for (const auto& s : stages) {
    for (std::int64_t r = 0; r < s.repeats; ++r) {
      x = mbconv(b, x, s.expand, s.out, s.kernel, r == 0 ? s.stride : 1);
    }
  }

  x = b.pw(x, 1280, OpKind::kRelu6);
  x = g.add(OpKind::kGlobalAvgPool, "gap", {x});
  x = g.add(OpKind::kFlatten, "flatten", {x});
  AttrMap fc;
  fc.set_int("units", classes);
  fc.set_int("bias", 1);
  x = g.add(OpKind::kDense, "fc", {x}, std::move(fc));
  g.add(OpKind::kSoftmax, "prob", {x});
  g.validate();
  return g;
}

}  // namespace vedliot::zoo
