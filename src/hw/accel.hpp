#pragma once
/// \file accel.hpp
/// \brief The four DL-accelerator classes explored in Sec. II-B:
/// (1) off-the-shelf, (2) statically configured, (3) dynamically
/// reconfigurable, (4) fully simultaneous co-design.

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "hw/device.hpp"
#include "hw/perf_model.hpp"

namespace vedliot::hw {

enum class AcceleratorKind {
  kOffTheShelf,
  kStaticConfig,
  kReconfigurable,
  kCoDesign,
};

std::string_view accelerator_kind_name(AcceleratorKind k);

/// Common interface: every accelerator can estimate a graph at a precision.
class Accelerator {
 public:
  virtual ~Accelerator() = default;
  virtual AcceleratorKind kind() const = 0;
  virtual const std::string& name() const = 0;
  virtual PerfEstimate estimate_graph(const Graph& g, DType dt) const = 0;
};

/// (1) Off-the-shelf: a catalog device used as-is.
class OffTheShelfAccelerator : public Accelerator {
 public:
  explicit OffTheShelfAccelerator(DeviceSpec spec) : spec_(std::move(spec)) {}
  AcceleratorKind kind() const override { return AcceleratorKind::kOffTheShelf; }
  const std::string& name() const override { return spec_.name; }
  PerfEstimate estimate_graph(const Graph& g, DType dt) const override;
  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
};

/// (2) Statically configured: an FPGA overlay synthesized for ONE model.
/// Utilization is boosted on the matched model and penalized elsewhere
/// (the fabric's dataflow no longer matches the layer mix).
class StaticConfigAccelerator : public Accelerator {
 public:
  StaticConfigAccelerator(DeviceSpec base, std::string configured_for_model,
                          double matched_util_boost = 1.25, double mismatch_penalty = 0.6);
  AcceleratorKind kind() const override { return AcceleratorKind::kStaticConfig; }
  const std::string& name() const override { return name_; }
  PerfEstimate estimate_graph(const Graph& g, DType dt) const override;

 private:
  DeviceSpec base_;
  std::string name_;
  std::string configured_for_;
  double boost_;
  double penalty_;
};

/// One partial-reconfiguration profile: a bitstream trading performance
/// against power (Sec. II-A: "implementations with different
/// power/performance footprints").
struct ReconfigProfile {
  std::string name;
  double peak_scale = 1.0;   ///< multiplier on the base device peak
  double power_scale = 1.0;  ///< multiplier on TDP/idle
  double bitstream_mib = 8;  ///< partial bitstream size
};

/// (3) Dynamically reconfigurable: switch profiles at run time; switching
/// costs bitstream_mib / config_port_bandwidth (ICAP-style, ~0.4 GB/s).
class ReconfigurableAccelerator : public Accelerator {
 public:
  ReconfigurableAccelerator(DeviceSpec base, std::vector<ReconfigProfile> profiles,
                            double config_bandwidth_gbs = 0.4);
  AcceleratorKind kind() const override { return AcceleratorKind::kReconfigurable; }
  const std::string& name() const override { return base_.name; }

  const std::vector<ReconfigProfile>& profiles() const { return profiles_; }
  const ReconfigProfile& active() const { return profiles_[active_]; }

  /// Switch to the named profile; returns the reconfiguration latency (s).
  double reconfigure(const std::string& profile_name);

  /// Device spec as modified by the active profile.
  DeviceSpec effective_spec() const;

  PerfEstimate estimate_graph(const Graph& g, DType dt) const override;

  /// Pick the most energy-efficient profile that still meets the latency
  /// target; returns the profile name (does not switch).
  std::string best_profile_for(const Graph& g, DType dt, double latency_budget_s) const;

 private:
  DeviceSpec base_;
  std::vector<ReconfigProfile> profiles_;
  double config_bw_;
  std::size_t active_ = 0;
};

// ---------------------------------------------------------------------------
// (4) Fully simultaneous co-design (Sec. II-B): search hardware parameters
// (PE array, buffer) together with model feedback (channel rounding).
// ---------------------------------------------------------------------------

/// FPGA fabric constraints available to the co-design search.
struct FabricBudget {
  int max_macs = 2048;        ///< DSP-limited MAC units
  double max_sram_mib = 8.0;
  double clock_ghz = 0.3;
  double watts_per_kmac = 4.0;   ///< dynamic power per 1000 active MACs
  double idle_w = 2.0;
};

/// One evaluated hardware design point.
struct DesignPoint {
  int pe_rows = 16;        ///< output-channel parallelism
  int pe_cols = 16;        ///< input-channel parallelism
  double sram_mib = 4.0;
  DType dtype = DType::kINT8;

  double latency_s = 0;
  double power_w = 0;
  double energy_j = 0;
  double mean_pe_utilization = 0;  ///< how well layer channels tile the array
};

/// Average efficiency with which the graph's conv/dense layers tile a
/// pe_rows x pe_cols MAC array (1.0 = every cycle all PEs busy).
double array_tiling_efficiency(const Graph& g, int pe_rows, int pe_cols);

/// Exhaustive search over power-of-two PE arrays within the fabric budget;
/// returns all evaluated points sorted by energy (best first).
std::vector<DesignPoint> codesign_search(const Graph& g, const FabricBudget& budget);

/// Model-side feedback (the "feedback to the models" loop): round every
/// conv/dense channel count up to a multiple of \p multiple. Returns a new
/// graph; the caller re-runs codesign_search to quantify the gain.
Graph apply_channel_rounding(const Graph& g, std::int64_t multiple);

}  // namespace vedliot::hw
