#pragma once
/// \file hybrid.hpp
/// \brief Architectural hybridization (Sec. IV-B / [16]): a small, timing-
/// predictable safety kernel supervises a complex, best-effort payload.
/// The kernel enforces heartbeats and deadlines and drives the system
/// through Normal -> Degraded -> SafeStop on violations.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace vedliot::safety {

enum class SystemState { kNormal, kDegraded, kSafeStop };

std::string_view system_state_name(SystemState s);

/// A supervised payload task (e.g. a DL inference pipeline).
struct PayloadTask {
  std::string name;
  double period_s = 0.1;        ///< expected heartbeat period
  double deadline_s = 0.15;     ///< max tolerated heartbeat gap
  std::size_t misses_to_degrade = 1;
  std::size_t misses_to_stop = 3;
};

/// The hybridization kernel: simple synchronous logic, fed with a
/// monotonic clock and heartbeats from payload tasks.
class SafetyKernel {
 public:
  void register_task(PayloadTask task);

  /// Payload signals liveness (called after every completed iteration).
  void heartbeat(const std::string& task, double now_s);

  /// Kernel tick: evaluate deadlines at time `now_s`; returns the state.
  SystemState tick(double now_s);

  SystemState state() const { return state_; }
  std::size_t missed_deadlines(const std::string& task) const;

  /// Degraded-mode hook (e.g. fall back to a conservative controller).
  void on_degraded(std::function<void()> cb) { degraded_cb_ = std::move(cb); }
  /// Safe-stop hook (e.g. Pedestrian AEB: full braking).
  void on_safe_stop(std::function<void()> cb) { stop_cb_ = std::move(cb); }

  /// A recovered task (heartbeats meeting deadlines again) lets the kernel
  /// return from Degraded to Normal; SafeStop is latched.
  void try_recover(double now_s);

 private:
  struct TaskState {
    PayloadTask task;
    double last_beat_s = 0.0;
    bool seen = false;
    std::size_t consecutive_misses = 0;
    std::size_t total_misses = 0;
  };
  std::map<std::string, TaskState> tasks_;
  SystemState state_ = SystemState::kNormal;
  std::function<void()> degraded_cb_;
  std::function<void()> stop_cb_;
};

}  // namespace vedliot::safety
