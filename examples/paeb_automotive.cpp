// Automotive PAEB (Sec. V-A): a drive through changing network coverage.
//
// The car runs the YoloV4 perception workload. Each second the offload
// manager probes the mobile network and decides: run on-car, or ship the
// frame to an attested edge station. The goal is minimum on-car energy
// with the braking deadline always met; attestation gates raw sensor data.
//
// Build & run:  ./build/examples/paeb_automotive

#include <cstdio>

#include "apps/network.hpp"
#include "apps/paeb.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "security/attestation.hpp"
#include "security/crypto.hpp"

using namespace vedliot;
using namespace vedliot::apps;

int main() {
  std::printf("PAEB offload demo: 60 s drive, urban 4G with fading\n\n");

  // Perception workload: full-size detector at FP16 on the car computer.
  const Graph detector = zoo::yolov4();
  PaebWorkload work;
  const auto cost = graph_cost(detector);
  work.ops = static_cast<double>(cost.ops);
  work.traffic_bytes = graph_traffic_bytes(detector, DType::kFP16, DType::kFP16);
  work.weight_bytes = weight_bytes(detector, DType::kFP16);
  work.dtype = DType::kFP16;
  work.frame_bytes = 20e3;

  PaebConfig cfg;
  cfg.oncar_device = hw::find_device("JetsonTX2");
  cfg.edge_device = hw::find_device("GTX1660");
  cfg.require_attestation = true;
  OffloadManager manager(cfg, work);

  // Attest the edge station before trusting it with camera frames.
  security::Key root{};
  root[3] = 0x42;
  security::AttestationAuthority authority(root);
  security::DeviceAgent edge("edge-station-a7", authority.provision("edge-station-a7"));
  const auto quote = edge.quote(security::sha256(std::string_view("edge-perception-v2")), 1001);
  const bool edge_attested = authority.verify(quote, 1001);
  std::printf("edge station attestation: %s\n\n", edge_attested ? "VERIFIED" : "FAILED");

  MobileNetwork network(Coverage::kUrban4G, 20260704);
  PaebScenario scenario;
  scenario.vehicle_speed_kmh = 50;

  double oncar_energy = 0, baseline_energy = 0;
  int offloaded = 0, local = 0, deadline_misses = 0;
  std::printf("  t   bw Mbit/s  rtt ms  decision  latency ms  on-car mJ\n");
  for (int t = 0; t < 60; ++t) {
    network.step(1.0);
    const LinkState probe = network.probe();
    const auto d = manager.decide(scenario, probe, edge_attested);
    oncar_energy += d.oncar_energy_j;
    baseline_energy += manager.local_energy_j();
    d.offloaded ? ++offloaded : ++local;
    if (!d.deadline_met) ++deadline_misses;
    if (t % 6 == 0) {
      std::printf("  %2d  %9.1f  %6.0f  %-8s  %10.1f  %9.1f\n", t, probe.bandwidth_mbps,
                  probe.rtt_ms, d.offloaded ? "edge" : "on-car", d.latency_s * 1e3,
                  d.oncar_energy_j * 1e3);
    }
  }

  std::printf("\n60 s summary: %d frames offloaded, %d local, %d deadline misses\n", offloaded,
              local, deadline_misses);
  std::printf("on-car energy: %.1f J vs %.1f J always-local (%.0f%% saved)\n", oncar_energy,
              baseline_energy, (1.0 - oncar_energy / baseline_energy) * 100.0);

  // What happens when attestation fails mid-drive: all frames stay on-car.
  const auto gated = manager.decide(scenario, network.probe(), false);
  std::printf("\nif the edge fails re-attestation: %s (%s)\n",
              gated.offloaded ? "edge" : "on-car", gated.reason.c_str());
  return 0;
}
