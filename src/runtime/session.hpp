#pragma once
/// \file session.hpp
/// \brief Unified run-session API over the runtime backends.
///
/// A Session is the one way application code runs inference: the float
/// reference executor and the true-integer INT8 executor sit behind the
/// same interface, and every run can be observed through the vedliot::obs
/// tracing/metrics sinks passed in RunOptions. The legacy Executor /
/// QuantizedExecutor entry points remain as thin deprecated shims for
/// calibration-style introspection.
///
///   obs::Tracer tracer;
///   obs::MetricsRegistry metrics;
///   runtime::RunOptions opts;
///   opts.trace = &tracer;
///   opts.metrics = &metrics;
///   auto session = runtime::make_session(graph, opts);
///   Tensor y = session->run_single(x);
///   obs::write_chrome_trace("trace.json", tracer.spans());

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace vedliot::runtime {

/// Per-session knobs; the sink pointers may be null and must outlive the
/// session when set.
struct RunOptions {
  obs::Tracer* trace = nullptr;            ///< span sink for run/node spans
  obs::MetricsRegistry* metrics = nullptr; ///< counter/histogram sink

  /// Keep intermediate activations addressable after run() (float backend
  /// only; needed for quantization calibration). Off by default: serving
  /// sessions should not retain a full activation set per run.
  bool keep_activations = false;

  /// Reject feeds whose leading (batch) dimension exceeds this; 0 = no
  /// limit. The admission check a serving deployment puts in front of the
  /// interpreter.
  std::int64_t max_batch = 0;

  /// Intra-op parallelism: kernels split their output rows/channels across
  /// this many threads (including the caller). 0 selects the hardware
  /// concurrency; default 1. Output bits do not depend on this value.
  unsigned threads = 1;

  /// Execute Conv2D as im2col + cache-blocked GEMM (default) or fall back
  /// to the direct loop nest (the numerical reference / perf baseline).
  bool use_gemm_conv = true;

  /// Place intermediate activations in one planner-packed arena slab
  /// (float backend; ignored while keep_activations is set).
  bool arena = true;
};

/// What one Session::run produced.
struct RunResult {
  std::map<std::string, Tensor> outputs;  ///< keyed by output node name
  std::size_t nodes_executed = 0;
  std::uint64_t saturations = 0;          ///< int8 backend only, cumulative

  /// The single output; throws Error unless exactly one output exists.
  const Tensor& single() const;
};

/// One deployed model instance, ready to serve. Implementations are not
/// thread-safe; use one session per worker.
class Session {
 public:
  virtual ~Session() = default;

  /// Run the graph on the given feeds (one tensor per Input node, keyed by
  /// node name).
  virtual RunResult run(const std::map<std::string, Tensor>& feeds) = 0;

  /// Convenience for single-input single-output graphs.
  Tensor run_single(const Tensor& input);

  virtual const Graph& graph() const = 0;

  /// Backend identifier: "float-reference" or "int8".
  virtual std::string backend() const = 0;

  /// Serving-side admission cap (see RunOptions::max_batch): brownout
  /// controllers shrink it on a live session without rebuilding the
  /// executor, and restore it when headroom returns. 0 = no limit.
  virtual void set_max_batch(std::int64_t max_batch) = 0;
  virtual std::int64_t max_batch() const = 0;
};

/// Float reference session (wraps Executor). The graph must outlive the
/// session and have materialized weights.
std::unique_ptr<Session> make_session(const Graph& graph, const RunOptions& options = {});

/// True-integer INT8 session (wraps QuantizedExecutor). The graph must be
/// deployment-ready: weights materialized, BatchNorm folded, activations
/// calibrated. Throws Unsupported otherwise.
std::unique_ptr<Session> make_quantized_session(const Graph& graph,
                                                const RunOptions& options = {});

}  // namespace vedliot::runtime
