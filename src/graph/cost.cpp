#include "graph/cost.hpp"

#include <algorithm>

namespace vedliot {

NodeCost node_cost(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  NodeCost c;
  c.params = g.param_count(id);
  c.output_elems = n.out_shape.numel();
  for (NodeId in : n.inputs) c.input_elems += g.node(in).out_shape.numel();

  const std::int64_t out = c.output_elems;
  switch (n.kind) {
    case OpKind::kInput:
    case OpKind::kIdentity:
    case OpKind::kFlatten:
    case OpKind::kUpsample:   // nearest-neighbour copy, no arithmetic
    case OpKind::kConcat:     // pure data movement
      break;

    case OpKind::kConv2d: {
      const Shape& in = g.node(n.inputs.at(0)).out_shape;
      const auto k = n.attrs.get_int("kernel");
      const auto groups = n.attrs.get_int_or("groups", 1);
      const auto ic_per_group = in.c() / groups;
      c.macs = out * ic_per_group * k * k;
      c.ops = 2 * c.macs;
      if (n.attrs.get_int_or("bias", 1)) c.ops += out;
      break;
    }

    case OpKind::kDense: {
      const Shape& in = g.node(n.inputs.at(0)).out_shape;
      c.macs = out * in.dim(1);
      c.ops = 2 * c.macs;
      if (n.attrs.get_int_or("bias", 1)) c.ops += out;
      break;
    }

    case OpKind::kBatchNorm:
      c.ops = 2 * out;  // scale + shift per element (folded stats)
      break;

    case OpKind::kRelu:
    case OpKind::kRelu6:
      c.ops = out;
      break;

    case OpKind::kLeakyRelu:
    case OpKind::kHSigmoid:
      c.ops = 2 * out;
      break;

    case OpKind::kSigmoid:
    case OpKind::kTanh:
      c.ops = 4 * out;  // exp-based, conventional 4-op estimate
      break;

    case OpKind::kHSwish:
      c.ops = 3 * out;
      break;

    case OpKind::kMish:
      c.ops = 5 * out;  // softplus + tanh + mul
      break;

    case OpKind::kAdd:
    case OpKind::kMul:
      c.ops = out;
      break;

    case OpKind::kMaxPool:
    case OpKind::kAvgPool: {
      const auto k = n.attrs.get_int("kernel");
      c.ops = out * k * k;
      break;
    }

    case OpKind::kGlobalAvgPool:
      c.ops = c.input_elems;
      break;

    case OpKind::kSoftmax:
      c.ops = 5 * out;
      break;
  }
  return c;
}

GraphCost graph_cost(const Graph& g) {
  GraphCost total;
  for (NodeId id : g.topo_order()) {
    const NodeCost c = node_cost(g, id);
    total.macs += c.macs;
    total.ops += c.ops;
    total.params += c.params;
    total.activation_elems += c.output_elems;
    total.peak_single_elems = std::max(total.peak_single_elems, c.output_elems);
  }
  return total;
}

double graph_traffic_bytes(const Graph& g, DType act_dtype, DType weight_dtype) {
  double bytes = 0.0;
  const double ab = dtype_bytes(act_dtype);
  const double wb = dtype_bytes(weight_dtype);
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    const NodeCost c = node_cost(g, id);
    bytes += static_cast<double>(c.params) * wb;
    if (n.kind != OpKind::kInput) {
      bytes += static_cast<double>(c.input_elems) * ab;
    }
    bytes += static_cast<double>(c.output_elems) * ab;
  }
  return bytes;
}

double weight_bytes(const Graph& g, DType weight_dtype) {
  return static_cast<double>(g.total_params()) * dtype_bytes(weight_dtype);
}

double graph_traffic_bytes_with_locality(const Graph& g, DType act_dtype, DType weight_dtype,
                                         double onchip_bytes) {
  const double ab = dtype_bytes(act_dtype);
  const double threshold = onchip_bytes * 0.25;
  double bytes = weight_bytes(g, weight_dtype);

  const auto outputs = g.outputs();
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    const double out_bytes = static_cast<double>(n.out_shape.numel()) * ab;
    const bool is_io = n.kind == OpKind::kInput ||
                       std::find(outputs.begin(), outputs.end(), id) != outputs.end();
    if (is_io) {
      bytes += out_bytes;  // crosses DRAM once
    } else if (out_bytes > threshold) {
      bytes += 2.0 * out_bytes;  // spilled: written and read back
    }
  }
  return bytes;
}

}  // namespace vedliot
