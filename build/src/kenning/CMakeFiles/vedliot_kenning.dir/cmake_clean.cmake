file(REMOVE_RECURSE
  "CMakeFiles/vedliot_kenning.dir/flow.cpp.o"
  "CMakeFiles/vedliot_kenning.dir/flow.cpp.o.d"
  "CMakeFiles/vedliot_kenning.dir/metrics.cpp.o"
  "CMakeFiles/vedliot_kenning.dir/metrics.cpp.o.d"
  "libvedliot_kenning.a"
  "libvedliot_kenning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_kenning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
