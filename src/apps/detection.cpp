#include "apps/detection.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vedliot::apps {

SceneGenerator::SceneGenerator(Config config, std::uint64_t seed) : cfg_(config), rng_(seed) {
  VEDLIOT_CHECK(cfg_.max_box > cfg_.min_box && cfg_.min_box > 0, "bad box size range");
}

Scene SceneGenerator::next() {
  Scene scene;
  scene.image_id = next_id_++;
  const auto count = rng_.uniform_int(0, cfg_.max_objects);
  for (std::int64_t i = 0; i < count; ++i) {
    kenning::GroundTruth gt;
    gt.image_id = scene.image_id;
    const double w = rng_.uniform(cfg_.min_box, cfg_.max_box);
    const double h = std::min(w * cfg_.aspect, cfg_.image_size * 0.9);
    gt.box.w = w;
    gt.box.h = h;
    gt.box.x = rng_.uniform(0.0, cfg_.image_size - w);
    gt.box.y = rng_.uniform(0.0, cfg_.image_size - h);
    scene.truths.push_back(gt);
  }
  return scene;
}

SimulatedDetector::SimulatedDetector(Config config, std::uint64_t seed)
    : cfg_(config), rng_(seed) {}

double SimulatedDetector::recall_for_height(double h) const {
  // Logistic in log-size: tiny objects vanish, large ones approach max_recall.
  const double x = std::log2(std::max(h, 1.0) / cfg_.size50);
  return cfg_.max_recall / (1.0 + std::exp(-2.0 * x));
}

std::vector<kenning::Detection> SimulatedDetector::detect(const Scene& scene, double image_size) {
  std::vector<kenning::Detection> out;
  for (const auto& gt : scene.truths) {
    const double p = recall_for_height(gt.box.h);
    if (!rng_.chance(p)) continue;  // miss
    kenning::Detection d;
    d.image_id = scene.image_id;
    d.box = gt.box;
    // localisation jitter proportional to extent
    d.box.x += rng_.normal(0.0, cfg_.loc_jitter * gt.box.w);
    d.box.y += rng_.normal(0.0, cfg_.loc_jitter * gt.box.h);
    d.box.w *= 1.0 + rng_.normal(0.0, cfg_.loc_jitter);
    d.box.h *= 1.0 + rng_.normal(0.0, cfg_.loc_jitter);
    d.box.w = std::max(d.box.w, 2.0);
    d.box.h = std::max(d.box.h, 2.0);
    // confidence correlates with size (and thus with true-positive-ness)
    d.score = std::clamp(p + rng_.normal(0.0, cfg_.score_noise), 0.01, 0.999);
    out.push_back(d);
  }
  // background false positives (low-ish confidence clutter)
  const int fps = rng_.chance(cfg_.fp_per_image) ? 1 : 0;
  for (int i = 0; i < fps; ++i) {
    kenning::Detection d;
    d.image_id = scene.image_id;
    d.box.w = rng_.uniform(8.0, 60.0);
    d.box.h = d.box.w * rng_.uniform(1.0, 3.0);
    d.box.x = rng_.uniform(0.0, image_size - d.box.w);
    d.box.y = rng_.uniform(0.0, std::max(1.0, image_size - d.box.h));
    d.score = std::clamp(rng_.uniform(0.05, 0.6) + rng_.normal(0.0, cfg_.score_noise), 0.01, 0.9);
    out.push_back(d);
  }
  return out;
}

kenning::DetectionEval run_detection_benchmark(SceneGenerator& scenes, SimulatedDetector& detector,
                                               std::size_t num_scenes, double iou_threshold) {
  std::vector<kenning::GroundTruth> truths;
  std::vector<kenning::Detection> detections;
  for (std::size_t i = 0; i < num_scenes; ++i) {
    const Scene scene = scenes.next();
    truths.insert(truths.end(), scene.truths.begin(), scene.truths.end());
    const auto dets = detector.detect(scene);
    detections.insert(detections.end(), dets.begin(), dets.end());
  }
  return kenning::evaluate_detections(std::move(detections), truths, iou_threshold);
}

}  // namespace vedliot::apps
