#pragma once
/// \file ota_transport.hpp
/// \brief Chunked, CRC-checked, resumable transport for v2 model packages
/// over a lossy fabric.
///
/// safety::ModelStore (model_store.hpp) verifies and swaps a package that
/// has already arrived; this file is the missing wire half (ROADMAP item 2:
/// "driving [ModelStore OTA] over the sealed-package transport from
/// simulated devices"). A package is split into fixed-size chunks, each
/// carrying its sequence number, byte offset and a CRC-32 of its payload:
///
///  * OtaChunker — sender side: deterministic chunking plus the
///    whole-package CRC the receiver pins reassembly against;
///  * OtaReceiver — receiver side: offset-addressed reassembly that
///    tolerates duplicated and reordered deliveries, rejects damaged
///    chunks by CRC, and survives device crash/restart (the bitmap IS the
///    journal: re-accepting an already-held chunk is a no-op), so an
///    interrupted transfer resumes from the last good chunk instead of
///    restarting;
///  * OtaSender — retry policy: window of in-flight chunks, per-chunk
///    attempt caps, and full-jitter exponential backoff with a non-zero
///    floor (Rng::backoff_s) so loss cannot collapse into a hot loop.
///
/// assemble() refuses to produce bytes unless every chunk landed and the
/// whole-package CRC matches — a torn or corrupted image can never reach
/// ModelStore::push, which re-verifies per-tensor digests anyway. The
/// transport owns bytes, not meaning: sealed and plain packages ship the
/// same way.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace vedliot::safety {

/// One wire message: a contiguous slice of the package plus its integrity
/// digest. The final chunk may be short.
struct OtaChunk {
  std::uint32_t seq = 0;        ///< chunk index in [0, chunk_count)
  std::uint64_t offset = 0;     ///< byte offset of payload[0] in the package
  std::vector<std::uint8_t> payload;
  std::uint32_t crc = 0;        ///< CRC-32 of payload
};

/// Sender-side chunking of one package snapshot.
class OtaChunker {
 public:
  /// \p chunk_bytes >= 64; the package must be non-empty.
  OtaChunker(std::span<const std::uint8_t> package, std::size_t chunk_bytes);

  std::size_t chunk_count() const { return chunk_count_; }
  std::size_t chunk_bytes() const { return chunk_bytes_; }
  std::uint64_t total_bytes() const { return package_.size(); }
  std::uint32_t package_crc() const { return package_crc_; }

  /// Materialize the wire message for chunk \p seq (throws on range).
  OtaChunk chunk(std::uint32_t seq) const;

 private:
  std::vector<std::uint8_t> package_;
  std::size_t chunk_bytes_;
  std::size_t chunk_count_;
  std::uint32_t package_crc_;
};

/// Receiver-side reassembly state. Construction parameters come from the
/// transfer announcement (total size, chunk size, whole-package CRC); the
/// object is the device's journaled staging area — it persists across
/// simulated crashes, which is exactly what makes transfers resumable.
class OtaReceiver {
 public:
  OtaReceiver(std::uint64_t total_bytes, std::size_t chunk_bytes, std::uint32_t package_crc);

  enum class Accept {
    kAccepted,   ///< new chunk, CRC verified, written at its offset
    kDuplicate,  ///< already held (idempotent re-delivery)
    kCorrupt,    ///< payload CRC mismatch — damaged in flight, discarded
    kBogus,      ///< seq/offset/length inconsistent with the announcement
  };

  /// Offer one delivered chunk. Order-independent and idempotent.
  Accept accept(const OtaChunk& chunk);

  bool complete() const { return received_ == chunk_count_; }
  std::size_t chunk_count() const { return chunk_count_; }
  std::size_t received_chunks() const { return received_; }
  std::uint64_t received_bytes() const { return received_bytes_; }

  /// Lowest not-yet-received chunk index (== chunk_count when complete):
  /// the resume point after an interruption.
  std::uint32_t next_needed() const;

  /// Has chunk \p seq landed?
  bool has(std::uint32_t seq) const;

  /// The reassembled package. Throws vedliot::Error unless complete() and
  /// the whole-package CRC matches the announcement — a torn image is
  /// unrepresentable as a return value.
  const std::vector<std::uint8_t>& assemble() const;

 private:
  std::vector<std::uint8_t> buffer_;
  std::vector<bool> have_;
  std::size_t chunk_bytes_;
  std::size_t chunk_count_;
  std::size_t received_ = 0;
  std::uint64_t received_bytes_ = 0;
  std::uint32_t package_crc_;
};

/// Sender-side retry policy: which chunks to put on the wire, how often to
/// give each one another chance, and how long to wait after a failure.
class OtaSender {
 public:
  struct Config {
    std::size_t window = 2;          ///< chunks in flight per step (>= 1)
    int max_chunk_attempts = 64;     ///< per-chunk send cap before kExhausted
    double backoff_base_s = 1e-3;
    double backoff_cap_s = 64e-3;
    double backoff_floor_s = 0.25e-3;  ///< jitter floor (hot-loop guard)
  };

  OtaSender(Config config, std::uint64_t seed);

  /// Up to `window` lowest not-yet-received chunk indices to send now.
  std::vector<std::uint32_t> select(const OtaReceiver& receiver) const;

  /// Record one wire outcome for chunk \p seq. Returns the full-jitter
  /// backoff to wait before the next attempt (0 when the chunk landed).
  double on_result(std::uint32_t seq, bool accepted);

  /// True once any chunk burned through max_chunk_attempts.
  bool exhausted() const { return exhausted_; }

  std::size_t sent() const { return sent_; }
  std::size_t retries() const { return retries_; }

 private:
  Config cfg_;
  Rng rng_;
  std::vector<int> attempts_;  ///< grown on demand, indexed by seq
  std::size_t sent_ = 0;
  std::size_t retries_ = 0;
  bool exhausted_ = false;
};

std::string_view ota_accept_name(OtaReceiver::Accept a);

}  // namespace vedliot::safety
