file(REMOVE_RECURSE
  "libvedliot_graph.a"
)
