#include "opt/compress.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "opt/huffman.hpp"
#include "opt/prune.hpp"
#include "util/error.hpp"

namespace vedliot::opt {

std::vector<float> cluster_weights(Tensor& weights, int codebook_bits, int iterations,
                                   bool apply) {
  VEDLIOT_CHECK(codebook_bits >= 1 && codebook_bits <= 16, "codebook bits must be in [1,16]");
  std::vector<float> nz;
  for (float v : weights.data()) {
    if (v != 0.0f) nz.push_back(v);
  }
  if (nz.empty()) return {};

  const auto k = std::min<std::size_t>(std::size_t{1} << codebook_bits, nz.size());
  auto [mn_it, mx_it] = std::minmax_element(nz.begin(), nz.end());
  const float mn = *mn_it, mx = *mx_it;

  // Linear initialisation over the weight range (Deep Compression's choice —
  // density-based init loses the rare large weights that matter most).
  std::vector<float> centroids(k);
  for (std::size_t i = 0; i < k; ++i) {
    centroids[i] = mn + (mx - mn) * static_cast<float>(i) / static_cast<float>(std::max<std::size_t>(k - 1, 1));
  }

  auto nearest = [&](float v) {
    // Centroids stay sorted: binary search then compare neighbours.
    auto it = std::lower_bound(centroids.begin(), centroids.end(), v);
    std::size_t idx = static_cast<std::size_t>(it - centroids.begin());
    if (idx == centroids.size()) return centroids.size() - 1;
    if (idx > 0 && std::abs(centroids[idx - 1] - v) <= std::abs(centroids[idx] - v)) return idx - 1;
    return idx;
  };

  std::vector<double> sums(k);
  std::vector<std::int64_t> counts(k);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (float v : nz) {
      const auto c = nearest(v);
      sums[c] += v;
      ++counts[c];
    }
    for (std::size_t i = 0; i < k; ++i) {
      if (counts[i] > 0) centroids[i] = static_cast<float>(sums[i] / static_cast<double>(counts[i]));
    }
    std::sort(centroids.begin(), centroids.end());
  }

  if (apply) {
    for (float& v : weights.data()) {
      if (v != 0.0f) v = centroids[nearest(v)];
    }
  }
  return centroids;
}

namespace {

/// 4-bit run-length positions with escape symbols, exactly as in Deep
/// Compression: a run of zeros longer than 15 emits (15, filler) pairs.
std::vector<std::uint32_t> position_runs(const Tensor& w) {
  std::vector<std::uint32_t> runs;
  std::uint32_t gap = 0;
  for (float v : w.data()) {
    if (v == 0.0f) {
      ++gap;
      if (gap == 16) {
        runs.push_back(15);  // escape: max gap, no weight consumed
        gap = 0;
      }
    } else {
      runs.push_back(gap);
      gap = 0;
    }
  }
  return runs;
}

std::map<std::uint32_t, std::uint64_t> histogram(const std::vector<std::uint32_t>& xs) {
  std::map<std::uint32_t, std::uint64_t> h;
  for (auto x : xs) ++h[x];
  return h;
}

}  // namespace

CompressionReport deep_compress(Graph& g, const CompressionOptions& options) {
  VEDLIOT_CHECK(g.weights_materialized(), "deep_compress requires materialized weights");

  CompressionReport report;
  for (NodeId id : g.topo_order()) {
    Node& n = g.node(id);
    if ((n.kind != OpKind::kConv2d && n.kind != OpKind::kDense) || n.weights.empty()) continue;
    const bool is_dense = n.kind == OpKind::kDense;
    Tensor& w = n.weights[0];

    // 1. Prune this layer at its class-specific sparsity.
    const double sparsity = is_dense ? options.dense_sparsity : options.conv_sparsity;
    {
      std::vector<float> mags;
      mags.reserve(static_cast<std::size_t>(w.numel()));
      for (float v : w.data()) mags.push_back(std::abs(v));
      const auto kcut = static_cast<std::size_t>(sparsity * static_cast<double>(mags.size()));
      if (kcut > 0) {
        std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(kcut - 1), mags.end());
        const float threshold = mags[kcut - 1];
        for (float& v : w.data()) {
          if (std::abs(v) <= threshold) v = 0.0f;
        }
      }
    }

    // 2. Cluster the survivors.
    const int bits = is_dense ? options.dense_codebook_bits : options.conv_codebook_bits;
    const auto codebook = cluster_weights(w, bits, options.kmeans_iterations);

    // 3. Entropy-code cluster indexes and positions.
    LayerCompression lc;
    lc.layer = n.name;
    lc.params = w.numel();
    lc.original_bits = static_cast<double>(w.numel()) * 32.0;

    std::vector<std::uint32_t> indexes;
    for (float v : w.data()) {
      if (v == 0.0f) continue;
      const auto it = std::lower_bound(codebook.begin(), codebook.end(), v);
      std::size_t idx = static_cast<std::size_t>(it - codebook.begin());
      if (idx == codebook.size() ||
          (idx > 0 && std::abs(codebook[idx - 1] - v) < std::abs(codebook[idx] - v))) {
        --idx;
      }
      indexes.push_back(static_cast<std::uint32_t>(idx));
    }
    lc.nonzeros = static_cast<std::int64_t>(indexes.size());

    if (!indexes.empty()) {
      const HuffmanCoder idx_coder(histogram(indexes));
      lc.index_bits = static_cast<double>(idx_coder.encoded_bits(histogram(indexes)));
      const auto runs = position_runs(w);
      const HuffmanCoder run_coder(histogram(runs));
      lc.position_bits = static_cast<double>(run_coder.encoded_bits(histogram(runs)));
    }
    lc.codebook_bits = static_cast<double>(codebook.size()) * 32.0;

    report.original_bits += lc.original_bits;
    report.after_prune_bits +=
        static_cast<double>(lc.nonzeros) * 32.0 +                    // raw surviving weights
        static_cast<double>(position_runs(w).size()) * 4.0;          // 4-bit positions
    report.compressed_bits += lc.compressed_bits();
    report.layers.push_back(std::move(lc));
  }
  return report;
}

}  // namespace vedliot::opt
