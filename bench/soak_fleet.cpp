// Fleet soak driver (serve/fleet_soak.hpp): sweep fleet size over three
// traffic scenarios (diurnal, flash crowd, retry storm), check every fleet
// invariant plus cross-size goodput monotonicity and bitwise determinism,
// run one execute-mode soak (real tensors, batched-vs-singleton CRC
// equality), and measure the dynamic batcher's wall-clock speedup over the
// per-request path (must be >= 3x at batch 8). Prints a human summary
// table on stderr and one JSON-lines record per run on stdout
// (scripts/soak_fleet.sh appends those to BENCH_serve.json).
//
// Usage: soak_fleet [--seed N] [--duration S] [--base-hz H] [--quick]
// Exit status 1 when any invariant is violated, determinism breaks, or the
// batching speedup falls short.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/zoo.hpp"
#include "serve/fleet_soak.hpp"
#include "util/rng.hpp"

namespace {

using vedliot::serve::FleetSoakConfig;
using vedliot::serve::FleetSoakResult;
using vedliot::serve::TrafficPattern;

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--seed N] [--duration S] [--base-hz H] [--quick]\n", argv0);
  std::exit(2);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Wall-clock throughput of the batched path vs the per-request path over
/// the same eight inputs (best of \p reps). Returns the speedup factor.
double batching_speedup(int reps) {
  using vedliot::Graph;
  using vedliot::Rng;
  using vedliot::Tensor;

  Graph mlp = vedliot::zoo::micro_mlp("fleet-throughput", 1, 1024, {1024, 1024}, 256);
  Rng rng(0x7EED);
  mlp.materialize_weights(rng);

  vedliot::serve::DynamicBatcher::Config bc;
  bc.max_batch = 8;
  vedliot::serve::DynamicBatcher batcher(mlp, bc);
  const auto single = vedliot::runtime::make_session(mlp, {});

  std::vector<Tensor> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.emplace_back(vedliot::Shape({1, 1024}), rng.normal_vector(1024));
  }

  double best_single = 1e9;
  double best_batched = 1e9;
  for (int r = 0; r < reps + 1; ++r) {  // first lap is warmup
    auto start = std::chrono::steady_clock::now();
    for (const Tensor& x : inputs) (void)single->run_single(x);
    const double t_single = seconds_since(start);

    start = std::chrono::steady_clock::now();
    (void)batcher.run(inputs);
    const double t_batched = seconds_since(start);

    if (r == 0) continue;
    best_single = std::min(best_single, t_single);
    best_batched = std::min(best_batched, t_batched);
  }
  return best_single / best_batched;
}

}  // namespace

int main(int argc, char** argv) {
  FleetSoakConfig base;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      base.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--duration") {
      base.duration_s = std::strtod(next(), nullptr);
    } else if (arg == "--base-hz") {
      base.base_hz = std::strtod(next(), nullptr);
    } else if (arg == "--quick") {
      quick = true;
      base.duration_s = 0.5;
    } else {
      usage(argv[0]);
    }
  }

  const std::vector<std::size_t> sizes = quick ? std::vector<std::size_t>{1, 4}
                                               : std::vector<std::size_t>{1, 4, 16};
  const std::vector<TrafficPattern> patterns = {
      TrafficPattern::kDiurnal, TrafficPattern::kFlashCrowd, TrafficPattern::kRetryStorm};

  bool ok = true;
  std::fprintf(stderr, "fleet soak: seed=0x%llx duration=%.2fs base=%.0f Hz\n",
               static_cast<unsigned long long>(base.seed), base.duration_s, base.base_hz);
  std::fprintf(stderr, "%-12s %5s %8s %9s %6s %9s %7s %6s %7s %8s\n", "pattern", "fleet",
               "offered", "completed", "shed", "cancelled", "cached", "scale", "batches",
               "goodput");

  std::vector<FleetSoakResult> first_pattern_sweep;
  for (const TrafficPattern pattern : patterns) {
    std::vector<FleetSoakResult> sweep;
    for (const std::size_t size : sizes) {
      FleetSoakConfig cfg = base;
      cfg.pattern = pattern;
      cfg.fleet_size = size;
      cfg.autoscale = false;  // capacity pinned, so the size sweep is honest
      FleetSoakResult r = vedliot::serve::run_fleet_soak(cfg);
      std::fprintf(stderr, "%-12s %5zu %8zu %9zu %6zu %9zu %7zu %2zu/%-3zu %7zu %8.4f\n",
                   traffic_pattern_name(pattern).data(), size, r.report.offered,
                   r.report.completed, r.report.shed, r.report.cancelled, r.report.cache_hits,
                   r.report.scale_ups, r.report.scale_downs, r.report.batches, r.goodput());
      for (const std::string& v : r.violations) {
        std::fprintf(stderr, "  INVARIANT VIOLATION: %s\n", v.c_str());
        ok = false;
      }
      std::printf("%s\n", r.to_json().c_str());
      sweep.push_back(std::move(r));
    }
    for (const std::string& v : vedliot::serve::check_fleet_goodput_monotone(sweep)) {
      std::fprintf(stderr, "  INVARIANT VIOLATION: %s\n", v.c_str());
      ok = false;
    }
    if (first_pattern_sweep.empty()) first_pattern_sweep = std::move(sweep);
  }

  // Autoscaling run: replicas must actually scale with a flash crowd.
  {
    FleetSoakConfig cfg = base;
    cfg.pattern = TrafficPattern::kFlashCrowd;
    cfg.fleet_size = 8;
    cfg.autoscale = true;
    const FleetSoakResult r = vedliot::serve::run_fleet_soak(cfg);
    std::fprintf(stderr, "%-12s %5s %8zu %9zu %6zu %9zu %7zu %2zu/%-3zu %7zu %8.4f\n",
                 "autoscale", "1..8", r.report.offered, r.report.completed, r.report.shed,
                 r.report.cancelled, r.report.cache_hits, r.report.scale_ups,
                 r.report.scale_downs, r.report.batches, r.goodput());
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "  INVARIANT VIOLATION: %s\n", v.c_str());
      ok = false;
    }
    std::printf("%s\n", r.to_json().c_str());
  }

  // Execute-mode soak: real tensors through the bucket sessions, with the
  // batched-vs-singleton CRC equality check live.
  {
    FleetSoakConfig cfg = base;
    cfg.pattern = TrafficPattern::kRetryStorm;
    cfg.fleet_size = 2;
    cfg.autoscale = false;
    cfg.execute = true;
    cfg.duration_s = std::min(base.duration_s, 0.5);
    cfg.base_hz = std::min(base.base_hz, 400.0);
    const FleetSoakResult r = vedliot::serve::run_fleet_soak(cfg);
    std::fprintf(stderr, "%-12s %5zu %8zu %9zu %6zu %9zu %7zu %2zu/%-3zu %7zu %8.4f\n",
                 "execute", cfg.fleet_size, r.report.offered, r.report.completed, r.report.shed,
                 r.report.cancelled, r.report.cache_hits, r.report.scale_ups,
                 r.report.scale_downs, r.report.batches, r.goodput());
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "  INVARIANT VIOLATION: %s\n", v.c_str());
      ok = false;
    }
    std::printf("%s\n", r.to_json().c_str());
  }

  // Determinism: the same seed must reproduce the first run bit for bit.
  {
    FleetSoakConfig again = base;
    again.pattern = patterns.front();
    again.fleet_size = sizes.front();
    again.autoscale = false;
    const FleetSoakResult rerun = vedliot::serve::run_fleet_soak(again);
    if (rerun.to_json() != first_pattern_sweep.front().to_json()) {
      std::fprintf(stderr, "  INVARIANT VIOLATION: re-run of seed 0x%llx diverged\n",
                   static_cast<unsigned long long>(base.seed));
      ok = false;
    }
  }

  // Batched-vs-per-request wall clock: the whole point of the batcher.
  {
    const double speedup = batching_speedup(quick ? 2 : 4);
    std::fprintf(stderr, "batching speedup at batch 8: %.2fx (floor 3x)\n", speedup);
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "  INVARIANT VIOLATION: batched throughput %.2fx < 3x per-request path\n",
                   speedup);
      ok = false;
    }
  }

  std::fprintf(stderr, ok ? "fleet soak OK: all invariants hold\n" : "fleet soak FAILED\n");
  return ok ? 0 : 1;
}
