// T-RECONF — run-time reconfiguration (Sec. II-A: partial reconfiguration
// "to adapt to changing application requirements at run-time, e.g., using
// implementations with different power/performance footprints"; plus
// network fabric reconfiguration).
//
// Reports the per-profile power/performance footprints, the cost of a
// partial-reconfiguration switch, and the amortization break-even.

#include <iostream>

#include "bench_common.hpp"
#include "graph/zoo.hpp"
#include "hw/accel.hpp"
#include "platform/fabric.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::hw;

namespace {

ReconfigurableAccelerator make_accel() {
  return ReconfigurableAccelerator(
      find_device("ZynqZU15"),
      {{"high-perf", 1.0, 1.0, 12.0},
       {"balanced", 0.7, 0.55, 10.0},
       {"low-power", 0.4, 0.28, 8.0}});
}

}  // namespace

void print_artifact() {
  bench::banner("T-RECONF", "partial reconfiguration: power/performance footprints");

  auto accel = make_accel();
  Graph g = zoo::resnet50();

  Table t({"profile", "latency ms", "power W", "energy mJ/inf", "bitstream MiB", "switch ms"});
  for (const auto& profile : accel.profiles()) {
    accel.reconfigure(profile.name);
    const auto e = accel.estimate_graph(g, DType::kINT8);
    const double switch_s = profile.bitstream_mib * 1024 * 1024 / 0.4e9;
    t.add_row({profile.name, fmt_fixed(e.latency_s * 1e3, 2), fmt_fixed(e.power_w, 2),
               fmt_fixed(e.energy_per_inference_j * 1e3, 1), fmt_fixed(profile.bitstream_mib, 0),
               fmt_fixed(switch_s * 1e3, 1)});
  }
  t.print(std::cout);

  // Amortization: switching from high-perf to low-power pays a bitstream
  // load; after how many inferences does the energy saving recoup it?
  accel.reconfigure("high-perf");
  const auto hp = accel.estimate_graph(g, DType::kINT8);
  const double switch_s = accel.reconfigure("low-power");
  const auto lp = accel.estimate_graph(g, DType::kINT8);
  const double saving_per_inf = hp.energy_per_inference_j - lp.energy_per_inference_j;
  const double switch_energy = 12.0 * switch_s;  // board draws ~12 W while configuring
  std::printf("\nswitch high-perf -> low-power: %.1f ms, ~%.2f J; energy saving %.1f mJ/inf\n",
              switch_s * 1e3, switch_energy, saving_per_inf * 1e3);
  if (saving_per_inf > 0) {
    std::printf("break-even after %.0f inferences — reconfigure for sustained low-rate phases,\n"
                "stay on high-perf for bursts.\n", switch_energy / saving_per_inf);
  }

  // Latency-budget-driven profile selection.
  std::printf("\nprofile auto-selection vs latency budget (resnet50, int8):\n\n");
  Table sel({"latency budget ms", "selected profile"});
  for (double budget_ms : {4.0, 6.0, 9.0, 15.0, 50.0}) {
    try {
      sel.add_row({fmt_fixed(budget_ms, 0),
                   accel.best_profile_for(g, DType::kINT8, budget_ms * 1e-3)});
    } catch (const Error&) {
      sel.add_row({fmt_fixed(budget_ms, 0), "(none feasible)"});
    }
  }
  sel.print(std::cout);

  // Fabric reconfiguration (Sec. II-A communication level).
  std::printf("\nfabric reconfiguration: 1G -> 10G uplink for a burst transfer:\n");
  platform::Fabric fabric = platform::star_fabric({"nodeA", "nodeB"}, 1.0, {1.0, 10.0});
  const double t_1g = fabric.transfer_time_s("nodeA", "nodeB", 512e6);
  fabric.set_link_speed("switch0", "nodeA", 10.0);
  fabric.set_link_speed("switch0", "nodeB", 10.0);
  const double t_10g = fabric.transfer_time_s("nodeA", "nodeB", 512e6);
  std::printf("512 MB model push: %.2f s at 1G -> %.2f s at 10G (%.1fx), %zu reconfig events\n",
              t_1g, t_10g, t_1g / t_10g, fabric.reconfiguration_count());
}

static void BM_ReconfigureSwitch(benchmark::State& state) {
  auto accel = make_accel();
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.reconfigure(flip ? "high-perf" : "low-power"));
    flip = !flip;
  }
}
BENCHMARK(BM_ReconfigureSwitch);

static void BM_BestProfileSearch(benchmark::State& state) {
  auto accel = make_accel();
  Graph g = zoo::resnet50();
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.best_profile_for(g, DType::kINT8, 0.05));
  }
}
BENCHMARK(BM_BestProfileSearch)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
