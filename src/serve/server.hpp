#pragma once
/// \file server.hpp
/// \brief Overload-safe serving front-end over a fault-injecting platform.
///
/// One Server drives a set of backend slots on a PlatformSimulator through
/// a seeded, fully deterministic discrete-event run:
///
///  * admission control — a bounded priority/EDF queue (queue.hpp); an
///    arrival is shed (never silently queued) when the queue is full, when
///    no backend is currently allowed, or when a conservative wait-bound
///    estimate from the hw cost model says its deadline is infeasible;
///  * deadline enforcement — queued tickets past their deadline are
///    cancelled; dispatch re-checks feasibility against the fastest
///    allowed backend before committing compute;
///  * failure handling — per-backend circuit breakers (breaker.hpp) fed
///    by transfer/completion failures and by heartbeat down/up beats from
///    platform::HealthMonitor; failed requests retry with full-jitter
///    exponential backoff, bounded by a per-client retry-token budget;
///  * brownout degradation — a hysteretic ladder (brownout.hpp) that steps
///    the deployment through cheaper configurations (int8, smaller batch,
///    smaller model) under sustained overload and back up when calm.
///
/// Every decision is a structured ServeEvent, mirrored 1:1 into the
/// optional obs::Tracer (instant spans, category "vedliot.serve") and
/// counted in the optional obs::MetricsRegistry under `vedliot.serve.*` —
/// the soak harness (soak.hpp) asserts that mirror exactly.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/faults.hpp"
#include "platform/health.hpp"
#include "runtime/session.hpp"
#include "safety/robustness.hpp"
#include "serve/breaker.hpp"
#include "serve/brownout.hpp"
#include "serve/queue.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {

enum class ServeEventKind {
  kAdmitted,        ///< request accepted into the queue
  kShed,            ///< rejected at admission (bound / infeasible / no backend)
  kDisplaced,       ///< queued request evicted by a higher-priority arrival
  kDispatched,      ///< request handed to a backend
  kTransientFault,  ///< one transfer leg failed transiently
  kBackendFailure,  ///< a dispatched request failed on its backend
  kRetry,           ///< failed request re-queued after jittered backoff
  kFailed,          ///< request gave up (retry budget / no time left)
  kCancelled,       ///< deadline passed while queued / infeasible at dispatch
  kCompleted,       ///< response delivered within its deadline
  kDeadlineMiss,    ///< response delivered after its deadline
  kQualityDegraded, ///< robustness check flagged the response divergent
  kBackendDown,     ///< heartbeat monitor declared a backend dead
  kBackendUp,       ///< previously-down backend answered probes again
  kBreakerOpen,     ///< circuit breaker tripped on a backend
  kBreakerHalfOpen, ///< breaker cooldown expired, probing
  kBreakerClosed,   ///< probes succeeded, backend back in rotation
  kBrownoutDown,    ///< degraded one rung (value = new level)
  kBrownoutUp,      ///< recovered one rung (value = new level)
};

std::string_view serve_event_name(ServeEventKind kind);

struct ServeEvent {
  double time_s = 0;
  ServeEventKind kind = ServeEventKind::kAdmitted;
  std::string subject;  ///< "request 42", "backend come1", "brownout", ...
  std::string detail;
  double value = 0;     ///< kind-specific (latency s, backoff s, level, ...)
};

/// One line per event: "[ 0.0300s] shed               request 42  queue full".
std::string format_serve_event(const ServeEvent& e);

/// One rung's model configuration. The graph provides the cost-model
/// workload (and, in execute mode, the weights actually run); it must
/// outlive the server.
struct ModelVariant {
  std::string name;            ///< "fp32", "int8", "fallback", ...
  const Graph* graph = nullptr;
  DType dtype = DType::kFP32;
  bool quantized = false;      ///< execute via make_quantized_session
};

/// One rung of the degradation ladder: which variant serves and the
/// admission batch cap at this level. ladder[0] is the healthy config.
struct BrownoutStep {
  std::size_t variant = 0;
  std::int64_t max_batch = 0;  ///< 0 = unlimited
};

struct Request {
  std::uint64_t id = 0;        ///< 0 = assigned by submit()
  std::string client;          ///< retry-budget key
  int priority = 0;            ///< higher serves first
  double arrival_s = 0;
  double deadline_s = 0;       ///< absolute simulated time
  std::int64_t batch = 1;
};

struct ServerConfig {
  std::vector<std::string> backends;   ///< slots of the simulator's chassis
  std::vector<ModelVariant> variants;  ///< at least ladder.front().variant
  std::vector<BrownoutStep> ladder;    ///< healthy rung first

  QueueConfig queue;
  BreakerConfig breaker;
  BrownoutConfig brownout;             ///< max_level forced to ladder size - 1
  platform::HealthConfig health;

  double control_period_s = 10e-3;     ///< heartbeat / breaker / brownout tick
  std::string ingress = "switch0";     ///< fabric node requests enter/leave by

  double retry_tokens_per_request = 0.2;  ///< earned per offered request
  double retry_token_cap = 8.0;           ///< per-client bucket ceiling
  double backoff_base_s = 2e-3;
  double backoff_cap_s = 20e-3;

  std::uint64_t seed = 0x5EEDu;        ///< backoff jitter + execute inputs

  obs::Tracer* trace = nullptr;            ///< 1:1 event mirror when set
  obs::MetricsRegistry* metrics = nullptr; ///< vedliot.serve.* when set

  /// Optional output plausibility check (Sec. IV-B): in execute mode every
  /// completed response is submitted; a checked-faulty verdict marks the
  /// response quality-degraded (kQualityDegraded) but still delivered.
  /// Must outlive the server when set.
  safety::RobustnessService* robustness = nullptr;

  /// Run real tensors through runtime sessions on completion (variants
  /// need materialized / deployment-ready graphs). Off = analytic timing
  /// only, which is what the chaos soak uses.
  bool execute = false;
  unsigned threads = 1;                ///< intra-op threads in execute mode
};

struct ServeReport {
  std::vector<ServeEvent> events;

  std::size_t offered = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t displaced = 0;
  std::size_t completed = 0;         ///< within deadline
  std::size_t deadline_missed = 0;   ///< delivered late
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t retries = 0;
  std::size_t quality_degraded = 0;

  std::size_t max_queue_depth = 0;
  int max_brownout_level = 0;
  int final_brownout_level = 0;

  /// In-deadline completions over offered load (0 when nothing offered).
  double goodput() const;

  /// Deterministic JSON summary (events included): bitwise-identical for
  /// identical seeds, which the soak harness checks by string compare.
  std::string to_json() const;
};

/// Serving front-end over one PlatformSimulator. One-shot: submit the
/// offered load, then run() once.
class Server {
 public:
  Server(platform::PlatformSimulator& sim, ServerConfig config);
  ~Server();

  /// Register one offered request (before run()). Returns the request id.
  std::uint64_t submit(Request r);

  /// Drive the serving loop for \p duration_s of simulated time.
  ServeReport run(double duration_s);

  std::span<const ServeEvent> events() const { return report_.events; }

 private:
  struct InFlight {
    Ticket ticket;
    std::string slot;
    double started_s = 0;
    double finish_s = 0;
    double gops_scale = 1.0;  ///< capacity assumed when finish_s was set
  };

  void log(double t, ServeEventKind kind, const std::string& subject,
           const std::string& detail, double value = 0);
  void log_transition(double t, const std::string& slot, const BreakerTransition& tr);
  const BrownoutStep& rung() const { return cfg_.ladder[static_cast<std::size_t>(level_)]; }
  double service_time(const std::string& slot, std::int64_t batch) const;
  /// Fastest/slowest healthy-rate service time over allowed backends; empty
  /// when every breaker is open.
  std::optional<std::pair<double, double>> service_bounds(std::int64_t batch) const;
  void admit(const Request& r);
  void control_tick(double t);
  void try_dispatch(double t);
  void finish(double t, InFlight f);
  void retry_or_fail(double t, Ticket ticket, const std::string& reason);
  void apply_brownout(double t, int delta);
  void execute_request(double t, const Ticket& ticket);

  platform::PlatformSimulator& sim_;
  ServerConfig cfg_;
  Rng rng_;

  AdmissionQueue queue_;
  BrownoutLadder ladder_;
  platform::HealthMonitor health_;
  std::map<std::string, CircuitBreaker> breakers_;
  std::map<std::string, InFlight> in_flight_;      ///< by slot
  int level_ = 0;

  std::vector<Request> arrivals_;                   ///< sorted by arrival
  std::size_t next_arrival_ = 0;
  std::map<std::uint64_t, Request> requests_;       ///< by id
  std::map<std::uint64_t, int> attempts_;           ///< dispatch attempts by id
  std::map<std::string, double> retry_tokens_;      ///< by client
  std::uint64_t next_id_ = 1;

  /// Per-variant base service time by backend slot, at the variant graph's
  /// native batch (scaled linearly by request batch / gops_scale at use).
  mutable std::vector<std::map<std::string, double>> base_latency_;

  std::vector<std::unique_ptr<runtime::Session>> sessions_;  ///< execute mode
  ServeReport report_;
  bool ran_ = false;
};

}  // namespace vedliot::serve
