#include "platform/microserver.hpp"

#include "util/error.hpp"

namespace vedliot::platform {

std::string_view form_factor_name(FormFactor f) {
  switch (f) {
    case FormFactor::kCOMExpress: return "COM Express";
    case FormFactor::kCOMHPCServer: return "COM-HPC Server";
    case FormFactor::kCOMHPCClient: return "COM-HPC Client";
    case FormFactor::kSMARC: return "SMARC";
    case FormFactor::kJetsonNX: return "Jetson NX";
    case FormFactor::kKriaSOM: return "Kria SOM";
    case FormFactor::kRPiCM: return "RPi CM";
    case FormFactor::kPCIe: return "PCIe";
    case FormFactor::kM2: return "M.2";
    case FormFactor::kUSB: return "USB";
  }
  throw InvalidArgument("unknown FormFactor");
}

const std::vector<MicroserverModule>& module_catalog() {
  static const std::vector<MicroserverModule> catalog = {
      // Cloud / near-edge modules (RECS|Box, t.RECS).
      {"COMh-Epyc3451", FormFactor::kCOMHPCServer, "Epyc3451", 110},
      {"COMe-D1577", FormFactor::kCOMExpress, "D1577", 65},
      {"PCIe-GTX1660", FormFactor::kPCIe, "GTX1660", 130},
      {"COMe-XavierAGX", FormFactor::kCOMExpress, "XavierAGX-MAXN", 40},
      {"COMh-AlveoDPU", FormFactor::kCOMHPCServer, "AlveoU250-DPU", 150},
      // Embedded / far-edge modules (uRECS, < 15 W total budget).
      {"SMARC-iMX8MPlus", FormFactor::kSMARC, "iMX8MPlus-NPU", 6},
      {"SMARC-ZU3", FormFactor::kSMARC, "ZynqZU3", 8},
      {"JetsonXavierNX", FormFactor::kJetsonNX, "XavierNX", 15},
      {"JetsonTX2", FormFactor::kJetsonNX, "JetsonTX2", 15},
      {"Kria-K26", FormFactor::kKriaSOM, "KriaK26-DPU", 12},
      {"RPi-CM4", FormFactor::kRPiCM, "RPiCM4", 7},
      // Extension-slot accelerators.
      {"USB-MyriadX", FormFactor::kUSB, "MyriadX", 3},
      {"M2-EdgeTPU", FormFactor::kM2, "EdgeTPU", 2},
  };
  return catalog;
}

const MicroserverModule& find_module(const std::string& name) {
  for (const auto& m : module_catalog()) {
    if (m.name == name) return m;
  }
  throw NotFound("unknown microserver module: " + name);
}

}  // namespace vedliot::platform
