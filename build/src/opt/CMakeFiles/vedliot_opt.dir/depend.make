# Empty dependencies file for vedliot_opt.
# This may be replaced when dependencies are built.
