#pragma once
/// \file baseboard.hpp
/// \brief RECS baseboards (RECS|Box, t.RECS, uRECS) and populated chassis.
///
/// Encodes Sec. II-A: each baseboard accepts specific COM form factors per
/// slot, enforces per-slot and total power budgets (uRECS < 15 W), and
/// carries the communication fabric microservers talk over.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "platform/microserver.hpp"
#include "util/error.hpp"

namespace vedliot::platform {

using vedliot::Error;
using vedliot::NotFound;

class PlatformError : public Error {
 public:
  explicit PlatformError(const std::string& message) : Error(message) {}
};

struct SlotSpec {
  std::string name;
  std::vector<FormFactor> accepts;
  double power_budget_w = 0;

  bool accepts_form(FormFactor f) const;
};

struct BaseboardSpec {
  std::string name;
  std::vector<SlotSpec> slots;
  double total_power_budget_w = 0;
  std::vector<double> ethernet_gbps;   ///< selectable link speeds
  bool has_low_latency_links = false;  ///< dedicated high-speed interconnect
};

/// RECS|Box: cloud/near-edge chassis, COM Express microservers.
BaseboardSpec recs_box();
/// t.RECS: COM-HPC Server/Client plus PCIe accelerators.
BaseboardSpec t_recs();
/// uRECS: embedded/far-edge, SMARC + Jetson NX + adaptor PCBs, < 15 W.
BaseboardSpec u_recs();

/// A baseboard with modules installed in slots.
class Chassis {
 public:
  explicit Chassis(BaseboardSpec spec);

  const BaseboardSpec& spec() const { return spec_; }

  /// Install a module; throws PlatformError on form-factor or power
  /// violations. Slot must be empty.
  void install(const std::string& slot, const MicroserverModule& module);

  /// Remove a module (models hot-swap / failure); throws if the slot is empty.
  MicroserverModule remove(const std::string& slot);

  bool occupied(const std::string& slot) const;
  const MicroserverModule& module_at(const std::string& slot) const;

  /// All currently installed modules.
  std::vector<std::pair<std::string, MicroserverModule>> installed() const;

  /// Sum of installed modules' max power.
  double provisioned_power_w() const;

  /// Remaining headroom against the board budget.
  double power_headroom_w() const;

 private:
  const SlotSpec& slot_spec(const std::string& slot) const;
  BaseboardSpec spec_;
  std::map<std::string, MicroserverModule> slots_;
};

}  // namespace vedliot::platform
