#include "graph/zoo.hpp"
#include "graph/zoo_common.hpp"

namespace vedliot::zoo {

namespace {

using detail::Builder;

/// MobileNetV3 inverted-residual bottleneck ("bneck").
NodeId bneck(Builder& b, NodeId in, std::int64_t kernel, std::int64_t expand, std::int64_t out,
             bool se, OpKind act, std::int64_t stride) {
  Graph& g = b.graph();
  const auto in_c = g.node(in).out_shape.c();

  NodeId x = in;
  if (expand != in_c) x = b.pw(in, expand, act);
  x = b.dw(x, kernel, stride, act);
  if (se) {
    // squeeze factor 4, rounded to a multiple of 8 as in the reference impl
    std::int64_t squeezed = ((expand / 4) + 7) / 8 * 8;
    x = b.se_block(x, expand, squeezed);
  }
  x = b.pw(x, out, OpKind::kIdentity);
  if (stride == 1 && in_c == out) x = b.add(x, in);
  return x;
}

}  // namespace

Graph mobilenet_v3_large(std::int64_t batch, std::int64_t classes, std::int64_t image) {
  Graph g("mobilenet_v3_large");
  Builder b(g);
  NodeId x = g.add_input("image", Shape{batch, 3, image, image});

  constexpr OpKind RE = OpKind::kRelu;
  constexpr OpKind HS = OpKind::kHSwish;

  x = b.conv_bn_act(x, 16, 3, 2, 1, HS);

  struct Row {
    std::int64_t k, exp, out;
    bool se;
    OpKind act;
    std::int64_t stride;
  };
  // Table 1 of the MobileNetV3 paper (Large).
  const Row rows[] = {
      {3, 16, 16, false, RE, 1},  {3, 64, 24, false, RE, 2},  {3, 72, 24, false, RE, 1},
      {5, 72, 40, true, RE, 2},   {5, 120, 40, true, RE, 1},  {5, 120, 40, true, RE, 1},
      {3, 240, 80, false, HS, 2}, {3, 200, 80, false, HS, 1}, {3, 184, 80, false, HS, 1},
      {3, 184, 80, false, HS, 1}, {3, 480, 112, true, HS, 1}, {3, 672, 112, true, HS, 1},
      {5, 672, 160, true, HS, 2}, {5, 960, 160, true, HS, 1}, {5, 960, 160, true, HS, 1},
  };
  for (const auto& r : rows) x = bneck(b, x, r.k, r.exp, r.out, r.se, r.act, r.stride);

  x = b.pw(x, 960, HS);
  x = g.add(OpKind::kGlobalAvgPool, "gap", {x});
  // Head: 1x1 conv to 1280 (no bn), h-swish, classifier.
  x = b.conv_bn_act(x, 1280, 1, 1, 0, HS, 1, /*with_bn=*/false);
  x = g.add(OpKind::kFlatten, "flatten", {x});
  AttrMap fc;
  fc.set_int("units", classes);
  fc.set_int("bias", 1);
  x = g.add(OpKind::kDense, "fc", {x}, std::move(fc));
  g.add(OpKind::kSoftmax, "prob", {x});
  g.validate();
  return g;
}

}  // namespace vedliot::zoo
