// Industrial IoT (Sec. V-B): both use cases in one program.
//
//   A. Motor Condition Classification — battery-powered box monitoring a
//      large asynchronous motor; nearest-centroid classifier on vibration
//      spectra; duty-cycled energy model.
//   B. Arc Detection — DC cabinet current monitoring with millisecond
//      latency and an ultra-low false-negative target.
//
// Build & run:  ./build/examples/industrial_iot

#include <cstdio>

#include "apps/arc.hpp"
#include "apps/motor.hpp"
#include "kenning/metrics.hpp"

using namespace vedliot;
using namespace vedliot::apps;

int main() {
  std::printf("=== A. Motor Condition Classification ===\n\n");

  VibrationGenerator gen({}, 2026);
  std::vector<std::pair<MotorFeatures, MotorCondition>> train;
  for (std::size_t c = 0; c < kMotorConditionCount; ++c) {
    for (int i = 0; i < 50; ++i) {
      train.emplace_back(gen.sample(static_cast<MotorCondition>(c)),
                         static_cast<MotorCondition>(c));
    }
  }
  MotorClassifier classifier;
  classifier.fit(train);

  // Live monitoring: the motor develops a bearing fault halfway through.
  VibrationGenerator live({}, 4711);
  std::printf("monitoring (1 sample/min):\n");
  for (int minute = 0; minute < 10; ++minute) {
    const auto condition = minute < 5 ? MotorCondition::kHealthy : MotorCondition::kBearingFault;
    const auto pred = classifier.classify(live.sample(condition));
    std::printf("  minute %2d: %-13s", minute,
                std::string(motor_condition_name(pred)).c_str());
    if (pred != MotorCondition::kHealthy) std::printf("  -> alert sent to operator");
    std::printf("\n");
  }

  MotorBoxEnergy box;
  std::printf("\nbattery-powered box at 1 sample/min: %.2f mW average -> %.1f years on 10 Wh\n",
              box.average_power_w(60.0) * 1e3, box.battery_life_days(60.0, 10.0) / 365.0);

  std::printf("\n=== B. Arc Detection in DC cabinets ===\n\n");

  ArcDetector detector({});
  ArcWaveformGenerator arcs({}, 555);
  const auto eval = evaluate_arc_detector(detector, arcs, 500, 500);
  std::printf("500 arc events + 500 benign traces (load steps included):\n");
  std::printf("  detected %zu/%zu arcs  (FNR %.2f%%)\n", eval.detected, eval.arcs,
              eval.fnr() * 100);
  std::printf("  false alarms %zu/%zu   (FPR %.2f%%)\n", eval.false_alarms, eval.normals,
              eval.fpr() * 100);
  std::printf("  latency from first spark: mean %.2f ms, p99 %.2f ms\n", eval.mean_latency_ms,
              eval.p99_latency_ms);

  // One annotated trace end to end.
  ArcWaveformGenerator one({}, 556);
  const ArcTrace trace = one.arc_trace();
  const auto hit = detector.detect(trace);
  if (hit && trace.arc_onset) {
    std::printf("\nexample trace: arc ignites at sample %zu, detector trips at sample %zu "
                "(%.2f ms later) -> breaker trip + unit localization\n",
                *trace.arc_onset, *hit,
                static_cast<double>(*hit - *trace.arc_onset) / trace.sample_rate_hz * 1e3);
  }
  return 0;
}
