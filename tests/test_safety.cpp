// Tests for the safety stack: input monitors, output robustness service,
// fault injection, architectural hybridization kernel.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/zoo.hpp"
#include "runtime/executor.hpp"
#include "safety/hybrid.hpp"
#include "safety/monitors.hpp"
#include "safety/robustness.hpp"
#include "util/rng.hpp"

namespace vedliot::safety {
namespace {

TimeSeriesMonitor::Config default_ts_config() {
  TimeSeriesMonitor::Config cfg;
  cfg.window = 32;
  cfg.range_lo = -100.0;
  cfg.range_hi = 100.0;
  return cfg;
}

TEST(TimeSeriesMonitor, CleanSignalPasses) {
  TimeSeriesMonitor mon(default_ts_config());
  Rng rng(1);
  std::size_t bad = 0;
  for (int i = 0; i < 500; ++i) {
    if (mon.check(std::sin(i * 0.1) + rng.normal(0.0, 0.1)) != DataVerdict::kOk) ++bad;
  }
  // a robust monitor tolerates a noisy sine with near-zero false alarms
  EXPECT_LE(bad, 5u);
}

TEST(TimeSeriesMonitor, DetectsSpikeOutlier) {
  TimeSeriesMonitor mon(default_ts_config());
  Rng rng(2);
  for (int i = 0; i < 100; ++i) mon.check(rng.normal(0.0, 0.5));
  EXPECT_EQ(mon.check(50.0), DataVerdict::kOutlier);
  // the corrected value is the last known-good sample, not the spike
  EXPECT_LT(std::abs(mon.corrected()), 5.0);
}

TEST(TimeSeriesMonitor, OutlierDoesNotPoisonWindow) {
  // After one spike, normal samples must keep passing (median/MAD, not
  // mean/stddev, and rejected samples stay out of the window).
  TimeSeriesMonitor mon(default_ts_config());
  Rng rng(3);
  for (int i = 0; i < 100; ++i) mon.check(rng.normal(0.0, 0.5));
  mon.check(80.0);
  std::size_t bad = 0;
  for (int i = 0; i < 100; ++i) {
    if (mon.check(rng.normal(0.0, 0.5)) != DataVerdict::kOk) ++bad;
  }
  EXPECT_LE(bad, 2u);
}

TEST(TimeSeriesMonitor, DetectsStuckSensor) {
  auto cfg = default_ts_config();
  cfg.stuck_run = 5;
  TimeSeriesMonitor mon(cfg);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) mon.check(rng.normal(0.0, 1.0));
  DataVerdict v = DataVerdict::kOk;
  for (int i = 0; i < 10; ++i) v = mon.check(3.25);
  EXPECT_EQ(v, DataVerdict::kStuckAt);
}

TEST(TimeSeriesMonitor, DetectsMissingAndRange) {
  TimeSeriesMonitor mon(default_ts_config());
  EXPECT_EQ(mon.check(std::numeric_limits<double>::quiet_NaN()), DataVerdict::kMissing);
  EXPECT_EQ(mon.check(std::numeric_limits<double>::infinity()), DataVerdict::kMissing);
  EXPECT_EQ(mon.check(1000.0), DataVerdict::kOutOfRange);
  EXPECT_EQ(mon.check(-101.0), DataVerdict::kOutOfRange);
}

TEST(TimeSeriesMonitor, CountsAnomalies) {
  TimeSeriesMonitor mon(default_ts_config());
  Rng rng(5);
  for (int i = 0; i < 64; ++i) mon.check(rng.normal(0.0, 1.0));
  mon.check(1e6);
  mon.check(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(mon.anomalies(), 2u);
  EXPECT_EQ(mon.samples_seen(), 66u);
}

Tensor synthetic_frame(double mean, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{1, 1, 24, 24});
  for (float& v : t.data()) {
    v = static_cast<float>(std::clamp(mean + rng.normal(0.0, noise), 0.0, 1.0));
  }
  return t;
}

TEST(ImageMonitor, GoodFramePasses) {
  ImageMonitor mon;
  EXPECT_EQ(mon.check(synthetic_frame(0.5, 0.02, 1)), DataVerdict::kOk);
}

TEST(ImageMonitor, DetectsExposureProblems) {
  ImageMonitor mon;
  EXPECT_EQ(mon.check(synthetic_frame(0.005, 0.001, 2)), DataVerdict::kOutOfRange);  // dark
  Tensor bright(Shape{1, 1, 24, 24});
  bright.fill(0.999f);
  EXPECT_EQ(mon.check(bright), DataVerdict::kOutOfRange);
}

TEST(ImageMonitor, DetectsCoveredLens) {
  ImageMonitor mon;
  Tensor flat(Shape{1, 1, 24, 24});
  flat.fill(0.5f);
  EXPECT_EQ(mon.check(flat), DataVerdict::kStuckAt);
}

TEST(ImageMonitor, DetectsHeavyNoise) {
  ImageMonitor mon;
  EXPECT_EQ(mon.check(synthetic_frame(0.5, 0.5, 3)), DataVerdict::kNoisy);
}

TEST(ImageMonitor, DetectsNanPixels) {
  ImageMonitor mon;
  Tensor t = synthetic_frame(0.5, 0.02, 4);
  t.at(10) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(mon.check(t), DataVerdict::kMissing);
}

TEST(ImageMonitor, NoiseEstimatorOrdersFrames) {
  const double clean = ImageMonitor::noise_level(synthetic_frame(0.5, 0.01, 5));
  const double noisy = ImageMonitor::noise_level(synthetic_frame(0.5, 0.3, 6));
  EXPECT_LT(clean, noisy);
}

TEST(Correction, PolicyMapping) {
  EXPECT_EQ(correction_for(DataVerdict::kOk), CorrectionAction::kPass);
  EXPECT_EQ(correction_for(DataVerdict::kOutlier), CorrectionAction::kReplace);
  EXPECT_EQ(correction_for(DataVerdict::kMissing), CorrectionAction::kReplace);
  EXPECT_EQ(correction_for(DataVerdict::kNoisy), CorrectionAction::kDrop);
  EXPECT_EQ(correction_for(DataVerdict::kStuckAt), CorrectionAction::kDrop);
}

// ---------------------------------------------------------------------------
// Robustness service
// ---------------------------------------------------------------------------

struct Deployment {
  Graph graph;
  std::unique_ptr<Executor> exec;
};

Deployment deploy_micro(std::uint64_t seed = 7) {
  Deployment d{zoo::micro_mlp("m", 1, 16, {24, 16}, 4), nullptr};
  Rng rng(seed);
  d.graph.materialize_weights(rng);
  d.exec = std::make_unique<Executor>(d.graph);
  return d;
}

Tensor sample_input(std::uint64_t seed) {
  Rng rng(seed);
  return Tensor(Shape{1, 16}, rng.normal_vector(16));
}

TEST(Robustness, HealthyDeploymentProducesNoFaults) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {4, 1e-4});
  for (int i = 0; i < 32; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    service.submit(in, d.exec->run_single(in));
  }
  EXPECT_EQ(service.faults_detected(), 0u);
  EXPECT_EQ(service.checks_run(), 8u);  // every 4th of 32
}

TEST(Robustness, DetectsBitFlippedModel) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {1, 1e-5});  // check everything

  Rng rng(55);
  FaultInjector injector(rng);
  injector.flip_weight_bits(d.graph, 16);
  Executor faulty(d.graph);

  std::size_t detected = 0;
  for (int i = 0; i < 16; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    if (service.submit(in, faulty.run_single(in)) == CheckResult::kCheckedFaulty) ++detected;
  }
  EXPECT_GT(detected, 0u);
}

TEST(Robustness, DetectsZeroedChannel) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {1, 1e-5});
  Rng rng(56);
  FaultInjector injector(rng);
  injector.zero_random_channel(d.graph);
  Executor faulty(d.graph);
  std::size_t detected = 0;
  for (int i = 0; i < 16; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    if (service.submit(in, faulty.run_single(in)) == CheckResult::kCheckedFaulty) ++detected;
  }
  EXPECT_GT(detected, 0u);
}

TEST(Robustness, DetectsScaledLayerAttack) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {1, 1e-5});
  Rng rng(57);
  FaultInjector injector(rng);
  injector.scale_random_layer(d.graph, 1.5f);
  Executor faulty(d.graph);
  std::size_t detected = 0;
  for (int i = 0; i < 16; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    if (service.submit(in, faulty.run_single(in)) == CheckResult::kCheckedFaulty) ++detected;
  }
  EXPECT_GT(detected, 0u);
}

TEST(Robustness, PeriodSamplingSkipsChecks) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {8, 1e-4});
  for (int i = 0; i < 16; ++i) {
    const Tensor in = sample_input(static_cast<std::uint64_t>(i));
    service.submit(in, d.exec->run_single(in));
  }
  EXPECT_EQ(service.submissions(), 16u);
  EXPECT_EQ(service.checks_run(), 2u);
}

TEST(Robustness, GoldenCopyIndependentOfDeployedGraph) {
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {1, 1e-5});
  const Tensor in = sample_input(0);
  const Tensor good = d.exec->run_single(in);
  // Corrupt the deployed graph AFTER the service took its copy.
  Rng rng(58);
  FaultInjector(rng).scale_random_layer(d.graph, 10.0f);
  // The service still validates against the original behaviour.
  EXPECT_EQ(service.submit(in, good), CheckResult::kCheckedOk);
}

TEST(Robustness, SubmitDistinguishesSkippedFromVerified) {
  // The conflated bool return used to make "skipped by sampling" look like
  // "verified clean"; the CheckResult enum keeps the three outcomes apart.
  Deployment d = deploy_micro();
  RobustnessService service(d.graph, {2, 1e-4});
  const Tensor in = sample_input(0);
  const Tensor good = d.exec->run_single(in);
  EXPECT_EQ(service.submit(in, good), CheckResult::kNotChecked);  // 1st of period 2
  EXPECT_EQ(service.submit(in, good), CheckResult::kCheckedOk);

  Tensor bad = good;
  bad.at(0) += 1.0f;
  EXPECT_EQ(service.submit(in, bad), CheckResult::kNotChecked);
  EXPECT_EQ(service.submit(in, bad), CheckResult::kCheckedFaulty);
  EXPECT_EQ(service.faults_detected(), 1u);

  EXPECT_EQ(check_result_name(CheckResult::kNotChecked), "not-checked");
  EXPECT_EQ(check_result_name(CheckResult::kCheckedOk), "checked-ok");
  EXPECT_EQ(check_result_name(CheckResult::kCheckedFaulty), "checked-faulty");
}

// ---------------------------------------------------------------------------
// Fault injector structure: each fault class does exactly what it claims,
// deterministically under a fixed seed, and the golden-model service flags
// it (beyond the detection-rate tests above).
// ---------------------------------------------------------------------------

std::vector<Tensor> snapshot_weights(const Graph& g) {
  std::vector<Tensor> out;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if (!n.weights.empty()) out.push_back(n.weights[0]);
  }
  return out;
}

TEST(FaultInjector, ZeroRandomChannelZeroesExactlyOneChannel) {
  Deployment d = deploy_micro();
  const auto before = snapshot_weights(d.graph);
  Rng rng(77);
  FaultInjector(rng).zero_random_channel(d.graph);
  const auto after = snapshot_weights(d.graph);
  ASSERT_EQ(before.size(), after.size());

  std::size_t changed_layers = 0;
  for (std::size_t l = 0; l < before.size(); ++l) {
    if (std::equal(before[l].data().begin(), before[l].data().end(),
                   after[l].data().begin())) {
      continue;
    }
    ++changed_layers;
    // Exactly one output channel went to zero; the rest are untouched.
    const auto oc = after[l].shape().dim(0);
    const auto per = static_cast<std::size_t>(after[l].numel() / oc);
    std::size_t zeroed = 0;
    for (std::int64_t c = 0; c < oc; ++c) {
      const auto chan = after[l].data().subspan(static_cast<std::size_t>(c) * per, per);
      const bool all_zero =
          std::all_of(chan.begin(), chan.end(), [](float v) { return v == 0.0f; });
      const auto prev = before[l].data().subspan(static_cast<std::size_t>(c) * per, per);
      if (all_zero) {
        ++zeroed;
      } else {
        EXPECT_TRUE(std::equal(prev.begin(), prev.end(), chan.begin()));
      }
    }
    EXPECT_EQ(zeroed, 1u);
  }
  EXPECT_EQ(changed_layers, 1u);
}

TEST(FaultInjector, ScaleRandomLayerScalesExactlyOneLayer) {
  Deployment d = deploy_micro();
  const auto before = snapshot_weights(d.graph);
  Rng rng(78);
  FaultInjector(rng).scale_random_layer(d.graph, 2.0f);
  const auto after = snapshot_weights(d.graph);
  ASSERT_EQ(before.size(), after.size());

  std::size_t changed_layers = 0;
  for (std::size_t l = 0; l < before.size(); ++l) {
    bool same = true, scaled = true;
    for (std::int64_t i = 0; i < before[l].numel(); ++i) {
      const float b = before[l].at(static_cast<std::size_t>(i));
      const float a = after[l].at(static_cast<std::size_t>(i));
      if (a != b) same = false;
      if (a != 2.0f * b) scaled = false;
    }
    if (!same) {
      ++changed_layers;
      EXPECT_TRUE(scaled) << "layer " << l << " changed but not by the gain factor";
    }
  }
  EXPECT_EQ(changed_layers, 1u);
}

TEST(FaultInjector, DeterministicUnderFixedSeed) {
  Deployment a = deploy_micro();
  Deployment b = deploy_micro();
  Rng ra(99), rb(99);
  FaultInjector(ra).zero_random_channel(a.graph);
  FaultInjector(rb).zero_random_channel(b.graph);
  const auto wa = snapshot_weights(a.graph);
  const auto wb = snapshot_weights(b.graph);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t l = 0; l < wa.size(); ++l) {
    EXPECT_TRUE(std::equal(wa[l].data().begin(), wa[l].data().end(), wb[l].data().begin()));
  }
}

TEST(FaultInjector, RequiresParametricNodes) {
  Graph g("no-params");
  const NodeId in = g.add_input("x", Shape{1, 8});
  g.add(OpKind::kRelu, "relu", {in});
  Rng rng(5);
  FaultInjector injector(rng);
  EXPECT_THROW(injector.zero_random_channel(g), Error);
  EXPECT_THROW(injector.scale_random_layer(g, 2.0f), Error);
  EXPECT_THROW(injector.flip_weight_bits(g, 1), Error);
}

TEST(FaultInjector, ServiceFlagsEachFaultClass) {
  // The golden-model service must flag every injected fault class on at
  // least one probe input (period 1, tight tolerance).
  const auto detect = [](void (*inject)(Graph&, Rng&)) {
    Deployment d = deploy_micro();
    RobustnessService service(d.graph, {1, 1e-5});
    Rng rng(101);
    inject(d.graph, rng);
    Executor faulty(d.graph);
    std::size_t hits = 0;
    for (int i = 0; i < 24; ++i) {
      const Tensor in = sample_input(static_cast<std::uint64_t>(1000 + i));
      if (service.submit(in, faulty.run_single(in)) == CheckResult::kCheckedFaulty) ++hits;
    }
    return hits;
  };
  EXPECT_GT(detect([](Graph& g, Rng& r) { FaultInjector(r).zero_random_channel(g); }), 0u);
  EXPECT_GT(detect([](Graph& g, Rng& r) { FaultInjector(r).scale_random_layer(g, 1.5f); }), 0u);
  EXPECT_GT(detect([](Graph& g, Rng& r) { FaultInjector(r).flip_weight_bits(g, 16); }), 0u);
}

// ---------------------------------------------------------------------------
// Hybridization kernel
// ---------------------------------------------------------------------------

PayloadTask perception_task() {
  PayloadTask t;
  t.name = "perception";
  t.period_s = 0.1;
  t.deadline_s = 0.15;
  t.misses_to_degrade = 1;
  t.misses_to_stop = 3;
  return t;
}

TEST(Hybrid, StaysNormalWithTimelyHeartbeats) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  double now = 0;
  for (int i = 0; i < 50; ++i) {
    now += 0.1;
    kernel.heartbeat("perception", now);
    EXPECT_EQ(kernel.tick(now), SystemState::kNormal);
  }
  EXPECT_EQ(kernel.missed_deadlines("perception"), 0u);
}

TEST(Hybrid, DegradesOnMissedDeadline) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  bool degraded_cb = false;
  kernel.on_degraded([&] { degraded_cb = true; });
  kernel.heartbeat("perception", 0.1);
  EXPECT_EQ(kernel.tick(0.3), SystemState::kDegraded);  // >0.15 gap
  EXPECT_TRUE(degraded_cb);
}

TEST(Hybrid, SafeStopLatchesAfterRepeatedMisses) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  bool stopped = false;
  kernel.on_safe_stop([&] { stopped = true; });
  kernel.heartbeat("perception", 0.1);
  double now = 0.3;
  SystemState s = SystemState::kNormal;
  for (int i = 0; i < 5; ++i) {
    s = kernel.tick(now);
    now += 0.2;
  }
  EXPECT_EQ(s, SystemState::kSafeStop);
  EXPECT_TRUE(stopped);
  // latched: even a resumed heartbeat cannot clear SafeStop
  kernel.heartbeat("perception", now);
  kernel.try_recover(now);
  EXPECT_EQ(kernel.tick(now), SystemState::kSafeStop);
}

TEST(Hybrid, RecoversFromDegraded) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  kernel.heartbeat("perception", 0.1);
  EXPECT_EQ(kernel.tick(0.3), SystemState::kDegraded);
  // heartbeats resume within deadline
  kernel.heartbeat("perception", 0.35);
  kernel.heartbeat("perception", 0.45);
  kernel.try_recover(0.5);
  EXPECT_EQ(kernel.tick(0.5), SystemState::kNormal);
}

TEST(Hybrid, MultipleTasksWorstCaseGoverns) {
  SafetyKernel kernel;
  kernel.register_task(perception_task());
  PayloadTask planner = perception_task();
  planner.name = "planner";
  kernel.register_task(planner);
  double now = 0.1;
  kernel.heartbeat("perception", now);
  kernel.heartbeat("planner", now);
  // only the planner stalls
  for (int i = 0; i < 5; ++i) {
    now += 0.1;
    kernel.heartbeat("perception", now);
    kernel.tick(now);
  }
  EXPECT_GT(kernel.missed_deadlines("planner"), 0u);
  EXPECT_EQ(kernel.missed_deadlines("perception"), 0u);
  EXPECT_NE(kernel.state(), SystemState::kNormal);
}

TEST(Hybrid, ValidationErrors) {
  SafetyKernel kernel;
  PayloadTask bad = perception_task();
  bad.deadline_s = 0.01;  // < period
  EXPECT_THROW(kernel.register_task(bad), Error);
  kernel.register_task(perception_task());
  EXPECT_THROW(kernel.register_task(perception_task()), Error);
  EXPECT_THROW(kernel.heartbeat("ghost", 0.0), NotFound);
  EXPECT_THROW((void)kernel.missed_deadlines("ghost"), NotFound);
}

}  // namespace
}  // namespace vedliot::safety
