file(REMOVE_RECURSE
  "CMakeFiles/vedliot_runtime.dir/executor.cpp.o"
  "CMakeFiles/vedliot_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/vedliot_runtime.dir/memory_planner.cpp.o"
  "CMakeFiles/vedliot_runtime.dir/memory_planner.cpp.o.d"
  "CMakeFiles/vedliot_runtime.dir/qexecutor.cpp.o"
  "CMakeFiles/vedliot_runtime.dir/qexecutor.cpp.o.d"
  "libvedliot_runtime.a"
  "libvedliot_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
