#include "analysis/finding.hpp"

#include <algorithm>
#include <sstream>

#include "util/table.hpp"

namespace vedliot::analysis {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void Report::add(Severity severity, std::string check_id, const std::string& message) {
  Finding f;
  f.severity = severity;
  f.check_id = std::move(check_id);
  f.message = message;
  findings_.push_back(std::move(f));
}

void Report::add(Severity severity, std::string check_id, const Node& node,
                 const std::string& message) {
  Finding f;
  f.severity = severity;
  f.check_id = std::move(check_id);
  f.node = node.id;
  f.node_name = node.name;
  f.message = message;
  findings_.push_back(std::move(f));
}

void Report::add(Severity severity, std::string check_id, std::int32_t site,
                 std::string site_name, const std::string& message) {
  Finding f;
  f.severity = severity;
  f.check_id = std::move(check_id);
  f.node = site;
  f.node_name = std::move(site_name);
  f.message = message;
  findings_.push_back(std::move(f));
}

void Report::merge(Report other) {
  findings_.insert(findings_.end(), std::make_move_iterator(other.findings_.begin()),
                   std::make_move_iterator(other.findings_.end()));
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(std::count_if(
      findings_.begin(), findings_.end(), [s](const Finding& f) { return f.severity == s; }));
}

bool Report::has(std::string_view check_id) const {
  return std::any_of(findings_.begin(), findings_.end(),
                     [check_id](const Finding& f) { return f.check_id == check_id; });
}

std::vector<Finding> Report::by_check(std::string_view check_id) const {
  std::vector<Finding> out;
  for (const Finding& f : findings_) {
    if (f.check_id == check_id) out.push_back(f);
  }
  return out;
}

std::string Report::to_table() const {
  Table t({"severity", "check", "node", "message"});
  for (const Finding& f : findings_) {
    t.add_row({std::string(severity_name(f.severity)), f.check_id,
               f.node < 0 ? "<graph>" : f.node_name, f.message});
  }
  return t.to_string();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF] << "0123456789abcdef"[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string Report::to_json_lines() const {
  std::ostringstream os;
  for (const Finding& f : findings_) {
    os << "{\"severity\":\"" << severity_name(f.severity) << "\",\"check\":";
    json_escape(os, f.check_id);
    os << ",\"node\":";
    if (f.node < 0) {
      os << "null";
    } else {
      json_escape(os, f.node_name);
    }
    os << ",\"message\":";
    json_escape(os, f.message);
    os << "}\n";
  }
  return os.str();
}

std::string Report::summary() const {
  std::ostringstream os;
  os << errors() << (errors() == 1 ? " error, " : " errors, ") << warnings()
     << (warnings() == 1 ? " warning, " : " warnings, ") << count(Severity::kNote)
     << (count(Severity::kNote) == 1 ? " note" : " notes");
  return os.str();
}

}  // namespace vedliot::analysis
