#include "tensor/dtype.hpp"

#include "util/error.hpp"

namespace vedliot {

int dtype_bits(DType dt) {
  switch (dt) {
    case DType::kFP32: return 32;
    case DType::kFP16: return 16;
    case DType::kINT8: return 8;
    case DType::kINT4: return 4;
    case DType::kBinary: return 1;
  }
  throw InvalidArgument("unknown DType");
}

double dtype_bytes(DType dt) { return static_cast<double>(dtype_bits(dt)) / 8.0; }

std::string_view dtype_name(DType dt) {
  switch (dt) {
    case DType::kFP32: return "fp32";
    case DType::kFP16: return "fp16";
    case DType::kINT8: return "int8";
    case DType::kINT4: return "int4";
    case DType::kBinary: return "binary";
  }
  throw InvalidArgument("unknown DType");
}

DType parse_dtype(std::string_view name) {
  if (name == "fp32") return DType::kFP32;
  if (name == "fp16") return DType::kFP16;
  if (name == "int8") return DType::kINT8;
  if (name == "int4") return DType::kINT4;
  if (name == "binary") return DType::kBinary;
  throw InvalidArgument("unknown dtype name: " + std::string(name));
}

bool dtype_is_integer(DType dt) {
  return dt == DType::kINT8 || dt == DType::kINT4 || dt == DType::kBinary;
}

double dtype_speedup_vs_fp32(DType dt) {
  switch (dt) {
    case DType::kFP32: return 1.0;
    case DType::kFP16: return 2.0;
    case DType::kINT8: return 4.0;
    case DType::kINT4: return 8.0;
    case DType::kBinary: return 16.0;
  }
  throw InvalidArgument("unknown DType");
}

}  // namespace vedliot
