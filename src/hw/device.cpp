#include "hw/device.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vedliot::hw {

std::string_view device_class_name(DeviceClass c) {
  switch (c) {
    case DeviceClass::kCPU: return "CPU";
    case DeviceClass::kGPU: return "GPU";
    case DeviceClass::kEmbeddedGPU: return "eGPU";
    case DeviceClass::kFPGA: return "FPGA";
    case DeviceClass::kASIC: return "ASIC";
    case DeviceClass::kMCU: return "MCU";
  }
  throw InvalidArgument("unknown DeviceClass");
}

bool DeviceSpec::supports(DType dt) const {
  for (DType d : supported) {
    if (d == dt) return true;
  }
  return false;
}

double DeviceSpec::peak_gops_at(DType dt) const {
  if (!supports(dt)) {
    throw Unsupported(name + " does not support " + std::string(dtype_name(dt)));
  }
  return peak_gops * dtype_speedup_vs_fp32(dt) / dtype_speedup_vs_fp32(best_dtype);
}

double DeviceSpec::utilization(int batch) const {
  VEDLIOT_CHECK(batch >= 1, "batch must be >= 1");
  const double b = static_cast<double>(batch);
  return util_sat - (util_sat - util_b1) * std::exp(-(b - 1.0) / batch_half);
}

namespace {

DeviceSpec make(std::string name, DeviceClass cls, DType best, std::vector<DType> supported,
                double peak_gops, double bw, double onchip_mib, double tdp, double idle,
                double util_b1, double util_sat, double batch_half) {
  DeviceSpec d;
  d.name = std::move(name);
  d.cls = cls;
  d.best_dtype = best;
  d.supported = std::move(supported);
  d.peak_gops = peak_gops;
  d.mem_bandwidth_gbs = bw;
  d.onchip_mib = onchip_mib;
  d.tdp_w = tdp;
  d.idle_w = idle;
  d.util_b1 = util_b1;
  d.util_sat = util_sat;
  d.batch_half = batch_half;
  return d;
}

constexpr DType FP32 = DType::kFP32;
constexpr DType FP16 = DType::kFP16;
constexpr DType INT8 = DType::kINT8;
constexpr DType BIN = DType::kBinary;

std::vector<DeviceSpec> build_yolo_platforms() {
  // The 11 platforms of Fig. 4. Peaks are datasheet values at the dtype the
  // paper used per platform (INT8 where supported, else FP16/FP32).
  std::vector<DeviceSpec> v;
  // x86 CPUs (FP32, AVX2): flat utilization, batching barely helps.
  v.push_back(make("Epyc3451", DeviceClass::kCPU, FP32, {FP32, FP16, INT8},
                   550, 38, 16, 100, 32, 0.45, 0.55, 1.0));
  v.push_back(make("D1577", DeviceClass::kCPU, FP32, {FP32, FP16, INT8},
                   330, 30, 24, 45, 18, 0.45, 0.55, 1.0));
  // Desktop GPU (TU116: 5 TFLOPS fp32, dp4a int8 ~20 TOPS).
  v.push_back(make("GTX1660", DeviceClass::kGPU, INT8, {FP32, FP16, INT8},
                   20000, 192, 1.5, 120, 11, 0.10, 0.45, 3.0));
  // Embedded GPUs (Jetson family; INT8 via GPU+DLA).
  v.push_back(make("XavierAGX-MAXN", DeviceClass::kEmbeddedGPU, INT8, {FP32, FP16, INT8},
                   22000, 137, 4, 30, 9, 0.12, 0.40, 3.0));
  v.push_back(make("XavierAGX-30W", DeviceClass::kEmbeddedGPU, INT8, {FP32, FP16, INT8},
                   15000, 100, 4, 30, 8, 0.12, 0.40, 3.0));
  v.push_back(make("XavierNX", DeviceClass::kEmbeddedGPU, INT8, {FP32, FP16, INT8},
                   21000, 59, 2, 15, 5, 0.08, 0.30, 3.0));
  v.push_back(make("JetsonTX2", DeviceClass::kEmbeddedGPU, FP16, {FP32, FP16},
                   1330, 58, 2, 15, 5, 0.25, 0.45, 2.5));
  // FPGAs with DPU overlays (INT8, high sustained utilization, batch-flat).
  v.push_back(make("ZynqZU15", DeviceClass::kFPGA, INT8, {INT8, BIN},
                   3600, 19, 9, 22, 8, 0.55, 0.65, 1.0));
  v.push_back(make("ZynqZU3", DeviceClass::kFPGA, INT8, {INT8, BIN},
                   1150, 4.3, 4, 7, 2.5, 0.55, 0.65, 1.0));
  // VPU ASIC.
  v.push_back(make("MyriadX", DeviceClass::kASIC, INT8, {FP16, INT8},
                   1000, 6.4, 2.5, 2.5, 0.8, 0.45, 0.55, 1.5));
  // Extra low-power mode requested by the automotive use case.
  v.push_back(make("XavierAGX-10W", DeviceClass::kEmbeddedGPU, INT8, {FP32, FP16, INT8},
                   7500, 68, 4, 10, 4, 0.12, 0.40, 3.0));
  return v;
}

std::vector<DeviceSpec> build_survey() {
  // Fig. 3 landscape: vendor peaks, mW-class endpoint devices to 400 W cloud
  // accelerators. Peaks quoted at each device's marketing precision.
  std::vector<DeviceSpec> v = build_yolo_platforms();
  // Cloud / datacenter.
  v.push_back(make("A100", DeviceClass::kGPU, INT8, {FP32, FP16, INT8},
                   624000, 1555, 40, 400, 60, 0.15, 0.6, 4.0));
  v.push_back(make("V100", DeviceClass::kGPU, FP16, {FP32, FP16, INT8},
                   125000, 900, 34, 300, 50, 0.15, 0.6, 4.0));
  v.push_back(make("T4", DeviceClass::kGPU, INT8, {FP32, FP16, INT8},
                   130000, 320, 10, 70, 10, 0.12, 0.55, 4.0));
  v.push_back(make("Goya", DeviceClass::kASIC, INT8, {FP16, INT8},
                   100000, 40, 48, 200, 30, 0.3, 0.6, 2.0));
  // Edge ASICs.
  v.push_back(make("Hailo-8", DeviceClass::kASIC, INT8, {INT8},
                   26000, 8, 16, 2.5, 0.5, 0.4, 0.6, 1.5));
  v.push_back(make("EdgeTPU", DeviceClass::kASIC, INT8, {INT8},
                   4000, 4, 8, 2.0, 0.5, 0.4, 0.6, 1.5));
  v.push_back(make("MyriadX-2W", DeviceClass::kASIC, FP16, {FP16, INT8},
                   1000, 6.4, 2.5, 2.0, 0.6, 0.45, 0.55, 1.5));
  v.push_back(make("KendryteK210", DeviceClass::kASIC, INT8, {INT8},
                   460, 2, 6, 0.4, 0.1, 0.4, 0.5, 1.0));
  // MCU-class / TinyML (mW regime).
  v.push_back(make("Ethos-U55", DeviceClass::kMCU, INT8, {INT8},
                   512, 0.5, 0.5, 0.3, 0.05, 0.4, 0.5, 1.0));
  v.push_back(make("GAP8", DeviceClass::kMCU, INT8, {INT8},
                   22.6, 0.15, 0.5, 0.1, 0.02, 0.4, 0.5, 1.0));
  v.push_back(make("SyntiantNDP120", DeviceClass::kMCU, INT8, {INT8, BIN},
                   6.4, 0.01, 0.1, 0.02, 0.005, 0.4, 0.5, 1.0));
  v.push_back(make("CortexM7-DSP", DeviceClass::kMCU, INT8, {INT8},
                   1.6, 0.05, 0.3, 0.3, 0.1, 0.4, 0.5, 1.0));
  // FPGA overlays beyond the Zynq boards.
  v.push_back(make("AlveoU250-DPU", DeviceClass::kFPGA, INT8, {INT8, BIN},
                   33000, 77, 54, 110, 40, 0.5, 0.65, 1.2));
  v.push_back(make("FINN-BNN-ZU3", DeviceClass::kFPGA, BIN, {BIN},
                   10000, 4.3, 4, 6, 2.5, 0.5, 0.6, 1.0));
  // Modules carried by the uRECS baseboard (Sec. II-A).
  v.push_back(make("iMX8MPlus-NPU", DeviceClass::kASIC, INT8, {INT8},
                   2300, 12.8, 0.5, 5, 1.5, 0.35, 0.5, 1.5));
  v.push_back(make("KriaK26-DPU", DeviceClass::kFPGA, INT8, {INT8, BIN},
                   1400, 19.2, 4, 10, 3, 0.55, 0.65, 1.0));
  v.push_back(make("RPiCM4", DeviceClass::kCPU, FP32, {FP32},
                   32, 4, 1, 7, 2, 0.4, 0.5, 1.0));
  return v;
}

}  // namespace

const std::vector<DeviceSpec>& survey_catalog() {
  static const std::vector<DeviceSpec> catalog = build_survey();
  return catalog;
}

const std::vector<DeviceSpec>& yolo_eval_platforms() {
  static const std::vector<DeviceSpec> catalog = build_yolo_platforms();
  return catalog;
}

const DeviceSpec& find_device(const std::string& name) {
  for (const auto& d : survey_catalog()) {
    if (d.name == name) return d;
  }
  throw NotFound("unknown device: " + name);
}

}  // namespace vedliot::hw
