// Tests for the reference executor (real arithmetic) and the memory planner.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "runtime/executor.hpp"
#include "runtime/memory_planner.hpp"
#include "runtime/session.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

AttrMap conv_attrs(std::int64_t oc, std::int64_t k, std::int64_t s, std::int64_t p,
                   std::int64_t groups = 1, std::int64_t bias = 1) {
  AttrMap a;
  a.set_int("out_channels", oc);
  a.set_int("kernel", k);
  a.set_int("stride", s);
  a.set_int("pad", p);
  a.set_int("groups", groups);
  a.set_int("bias", bias);
  return a;
}

/// Single-input convenience over Executor::run for tests that poke the
/// engine directly (introspection, arena stats); application code goes
/// through runtime::Session.
Tensor exec_single(Executor& exec, const Graph& g, const Tensor& input) {
  auto outs = exec.run({{g.node(g.inputs().front()).name, input}});
  return std::move(outs.begin()->second);
}

/// Build a single-op graph, set explicit weights, execute one input.
Tensor run_single_op(OpKind kind, const Shape& in_shape, AttrMap attrs,
                     std::vector<Tensor> weights, const Tensor& input) {
  Graph g("t");
  const NodeId in = g.add_input("x", in_shape);
  const NodeId op = g.add(kind, "op", {in}, std::move(attrs));
  g.node(op).weights = std::move(weights);
  Executor exec(g);
  return exec_single(exec, g, input);
}

TEST(Executor, Conv2dIdentityKernel) {
  // 1x1 conv with identity weights must copy the input.
  Tensor w(Shape{2, 2, 1, 1}, {1, 0, 0, 1});
  Tensor input(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  AttrMap a = conv_attrs(2, 1, 1, 0, 1, 0);
  const Tensor out = run_single_op(OpKind::kConv2d, input.shape(), a, {w}, input);
  EXPECT_FLOAT_EQ(max_abs_diff(out, input), 0.0f);
}

TEST(Executor, Conv2dHandComputed) {
  // 3x3 all-ones kernel, single channel, padding 1: each output = sum of the
  // 3x3 neighbourhood.
  Tensor w(Shape{1, 1, 3, 3});
  w.fill(1.0f);
  Tensor input(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  AttrMap a = conv_attrs(1, 3, 1, 1, 1, 0);
  const Tensor out = run_single_op(OpKind::kConv2d, input.shape(), a, {w}, input);
  // center output: sum of all = 45; corner (0,0): 1+2+4+5 = 12
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 45.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 12.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 2, 2), 5.0f + 6.0f + 8.0f + 9.0f);
}

TEST(Executor, Conv2dBiasApplied) {
  Tensor w(Shape{1, 1, 1, 1}, {2.0f});
  Tensor b(Shape{1}, {10.0f});
  Tensor input(Shape{1, 1, 1, 1}, {3.0f});
  const Tensor out =
      run_single_op(OpKind::kConv2d, input.shape(), conv_attrs(1, 1, 1, 0), {w, b}, input);
  EXPECT_FLOAT_EQ(out.at(0), 16.0f);
}

TEST(Executor, Conv2dStrideSkips) {
  Tensor w(Shape{1, 1, 1, 1}, {1.0f});
  Tensor input(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) input.at(static_cast<std::size_t>(i)) = static_cast<float>(i);
  const Tensor out =
      run_single_op(OpKind::kConv2d, input.shape(), conv_attrs(1, 1, 2, 0, 1, 0), {w}, input);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 0), 8.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 10.0f);
}

TEST(Executor, DepthwiseConvIndependentChannels) {
  // groups == channels: each channel filtered independently.
  Tensor w(Shape{2, 1, 1, 1}, {2.0f, 3.0f});
  Tensor input(Shape{1, 2, 1, 1}, {10.0f, 10.0f});
  const Tensor out =
      run_single_op(OpKind::kConv2d, input.shape(), conv_attrs(2, 1, 1, 0, 2, 0), {w}, input);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 20.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 30.0f);
}

TEST(Executor, DenseMatVec) {
  Tensor w(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{2}, {0.5f, -0.5f});
  Tensor input(Shape{1, 3}, {1, 1, 1});
  AttrMap a;
  a.set_int("units", 2);
  a.set_int("bias", 1);
  const Tensor out = run_single_op(OpKind::kDense, input.shape(), a, {w, b}, input);
  EXPECT_FLOAT_EQ(out.at(0), 6.5f);
  EXPECT_FLOAT_EQ(out.at(1), 14.5f);
}

TEST(Executor, BatchNormFoldedFormula) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 1, 1, 2});
  AttrMap bn;
  bn.set_float("epsilon", 0.0);
  const NodeId b = g.add(OpKind::kBatchNorm, "bn", {in}, bn);
  g.node(b).weights = {Tensor(Shape{1}, {2.0f}),   // gamma
                       Tensor(Shape{1}, {1.0f}),   // beta
                       Tensor(Shape{1}, {3.0f}),   // mean
                       Tensor(Shape{1}, {4.0f})};  // var
  Executor exec(g);
  Tensor input(Shape{1, 1, 1, 2}, {3.0f, 5.0f});
  const Tensor out = exec_single(exec, g, input);
  // (x - 3)/2 * 2 + 1
  EXPECT_FLOAT_EQ(out.at(0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(1), 3.0f);
}

struct ActCase {
  OpKind kind;
  float in;
  float expected;
};

class ActivationSweep : public ::testing::TestWithParam<ActCase> {};

TEST_P(ActivationSweep, PointwiseValue) {
  const auto& p = GetParam();
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1});
  AttrMap attrs;
  if (p.kind == OpKind::kLeakyRelu) attrs.set_float("alpha", 0.1);
  g.add(p.kind, "act", {in}, attrs);
  Executor exec(g);
  const Tensor out = exec_single(exec, g, Tensor(Shape{1}, {p.in}));
  EXPECT_NEAR(out.at(0), p.expected, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Values, ActivationSweep,
    ::testing::Values(ActCase{OpKind::kRelu, -1.0f, 0.0f}, ActCase{OpKind::kRelu, 2.0f, 2.0f},
                      ActCase{OpKind::kRelu6, 8.0f, 6.0f}, ActCase{OpKind::kRelu6, -1.0f, 0.0f},
                      ActCase{OpKind::kLeakyRelu, -2.0f, -0.2f},
                      ActCase{OpKind::kLeakyRelu, 3.0f, 3.0f},
                      ActCase{OpKind::kSigmoid, 0.0f, 0.5f},
                      ActCase{OpKind::kHSigmoid, 0.0f, 0.5f},
                      ActCase{OpKind::kHSigmoid, 4.0f, 1.0f},
                      ActCase{OpKind::kHSwish, 3.0f, 3.0f},
                      ActCase{OpKind::kHSwish, -3.0f, 0.0f},
                      ActCase{OpKind::kTanh, 0.0f, 0.0f},
                      ActCase{OpKind::kMish, 0.0f, 0.0f}));

TEST(Executor, MishMatchesDefinition) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1});
  g.add(OpKind::kMish, "mish", {in});
  Executor exec(g);
  for (float x : {-2.0f, -0.5f, 0.7f, 2.5f}) {
    const Tensor out = exec_single(exec, g, Tensor(Shape{1}, {x}));
    const double expected = x * std::tanh(std::log1p(std::exp(static_cast<double>(x))));
    EXPECT_NEAR(out.at(0), expected, 1e-5) << x;
  }
}

TEST(Executor, AddAndMulBroadcast) {
  Graph g("t");
  const NodeId a = g.add_input("a", Shape{1, 2, 2, 2});
  const NodeId gap = g.add(OpKind::kGlobalAvgPool, "gap", {a});
  const NodeId m = g.add(OpKind::kMul, "mul", {a, gap});
  g.add(OpKind::kAdd, "add", {m, a});
  Executor exec(g);
  Tensor input(Shape{1, 2, 2, 2}, {1, 1, 1, 1, 2, 2, 2, 2});
  auto outs = exec.run({{"a", input}});
  const Tensor& out = outs.at("add");
  // channel 0 mean 1 -> mul gives 1, add gives 2; channel 1 mean 2 -> 4+2=6
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 6.0f);
}

TEST(Executor, MaxPoolAndAvgPool) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 1, 2, 2});
  AttrMap p;
  p.set_int("kernel", 2);
  p.set_int("stride", 2);
  p.set_int("pad", 0);
  g.add(OpKind::kMaxPool, "max", {in}, p);
  AttrMap p2;
  p2.set_int("kernel", 2);
  p2.set_int("stride", 2);
  p2.set_int("pad", 0);
  g.add(OpKind::kAvgPool, "avg", {in}, p2);
  Executor exec(g);
  Tensor input(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  auto outs = exec.run({{"x", input}});
  EXPECT_FLOAT_EQ(outs.at("max").at(0), 4.0f);
  EXPECT_FLOAT_EQ(outs.at("avg").at(0), 2.5f);
}

TEST(Executor, AvgPoolPaddingCountsValidOnly) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 1, 2, 2});
  AttrMap p;
  p.set_int("kernel", 3);
  p.set_int("stride", 1);
  p.set_int("pad", 1);
  g.add(OpKind::kAvgPool, "avg", {in}, p);
  Executor exec(g);
  Tensor input(Shape{1, 1, 2, 2}, {4, 4, 4, 4});
  const Tensor out = exec_single(exec, g, input);
  // all windows average only valid elements -> always 4
  for (float v : out.data()) EXPECT_FLOAT_EQ(v, 4.0f);
}

TEST(Executor, ConcatChannels) {
  Graph g("t");
  const NodeId a = g.add_input("a", Shape{1, 1, 1, 2});
  const NodeId b = g.add_input("b", Shape{1, 2, 1, 2});
  AttrMap attrs;
  attrs.set_int("axis", 1);
  g.add(OpKind::kConcat, "cat", {b, a}, attrs);
  Executor exec(g);
  Tensor ta(Shape{1, 1, 1, 2}, {7, 8});
  Tensor tb(Shape{1, 2, 1, 2}, {1, 2, 3, 4});
  auto outs = exec.run({{"a", ta}, {"b", tb}});
  const Tensor& out = outs.at("cat");
  EXPECT_EQ(out.shape().c(), 3);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 2, 0, 1), 8.0f);
}

TEST(Executor, UpsampleNearest) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 1, 1, 2});
  AttrMap u;
  u.set_int("scale", 2);
  g.add(OpKind::kUpsample, "up", {in}, u);
  Executor exec(g);
  const Tensor out = exec_single(exec, g, Tensor(Shape{1, 1, 1, 2}, {5, 9}));
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 4}));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 3), 9.0f);
}

TEST(Executor, SoftmaxNormalizesAndIsStable) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 3});
  g.add(OpKind::kSoftmax, "sm", {in});
  Executor exec(g);
  const Tensor out = exec_single(exec, g, Tensor(Shape{1, 3}, {1000.0f, 1001.0f, 1002.0f}));
  double sum = 0;
  for (float v : out.data()) {
    EXPECT_TRUE(std::isfinite(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(out.at(2), out.at(1));
}

TEST(Executor, MissingFeedThrows) {
  Graph g = zoo::motor_net();
  Rng rng(1);
  g.materialize_weights(rng);
  Executor exec(g);
  EXPECT_THROW((void)exec.run({}), ExecError);
}

TEST(Executor, WrongFeedShapeThrows) {
  Graph g = zoo::motor_net();
  Rng rng(1);
  g.materialize_weights(rng);
  Executor exec(g);
  EXPECT_THROW((void)exec.run({{"features", Tensor(Shape{1, 3})}}), ExecError);
}

TEST(Executor, UnmaterializedWeightsRejected) {
  Graph g = zoo::motor_net();
  EXPECT_THROW(Executor{g}, ExecError);
}

TEST(Executor, EndToEndMicroCnnDeterministic) {
  Graph g = zoo::micro_cnn("m", 1, 1, 16, 4);
  Rng rng(7);
  g.materialize_weights(rng);
  Executor exec(g);
  Rng data_rng(8);
  Tensor input(Shape{1, 1, 16, 16}, data_rng.normal_vector(256));
  const Tensor a = exec_single(exec, g, input);
  const Tensor b = exec_single(exec, g, input);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);
  double sum = 0;
  for (float v : a.data()) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-5);  // softmax output
}

TEST(Executor, ActivationIntrospection) {
  Graph g = zoo::micro_mlp("m", 1, 4, {8}, 2);
  Rng rng(9);
  g.materialize_weights(rng);
  Executor exec(g);
  exec_single(exec, g, Tensor(Shape{1, 4}, {1, 2, 3, 4}));
  EXPECT_NO_THROW((void)exec.activation("fc0"));
  EXPECT_THROW((void)exec.activation("bogus"), NotFound);
}

// ---------------------------------------------------------------------------
// Memory planner
// ---------------------------------------------------------------------------

class PlannerOnZoo : public ::testing::TestWithParam<const char*> {};

TEST_P(PlannerOnZoo, ValidAndSavesMemory) {
  const std::string which = GetParam();
  Graph g = which == "resnet50" ? zoo::resnet50()
            : which == "mnv3"   ? zoo::mobilenet_v3_large()
            : which == "yolov4" ? zoo::yolov4()
                                : zoo::micro_cnn("m", 1, 3, 32, 10);
  const MemoryPlan plan = plan_memory(g, DType::kFP32);
  EXPECT_TRUE(plan_is_valid(plan));
  EXPECT_GT(plan.reuse_factor(), 2.0) << which;  // reuse must pay off
  EXPECT_EQ(plan.buffers.size(), g.size());
}

INSTANTIATE_TEST_SUITE_P(Models, PlannerOnZoo,
                         ::testing::Values("resnet50", "mnv3", "yolov4", "micro"));

TEST(Planner, ArenaAtLeastLargestTensor) {
  Graph g = zoo::mobilenet_v3_large();
  const MemoryPlan plan = plan_memory(g, DType::kFP32);
  const auto cost = graph_cost(g);
  EXPECT_GE(plan.arena_bytes, cost.peak_single_elems * 4);
}

TEST(Planner, Int8ArenaRoughlyQuarterOfFp32) {
  Graph g = zoo::micro_cnn("m", 1, 3, 32, 10);
  const auto p32 = plan_memory(g, DType::kFP32);
  const auto p8 = plan_memory(g, DType::kINT8);
  EXPECT_LT(p8.arena_bytes, p32.arena_bytes / 2);
}

TEST(Planner, AlignmentRespected) {
  Graph g = zoo::micro_mlp("m", 1, 10, {32, 16}, 4);
  const MemoryPlan plan = plan_memory(g, DType::kFP32, 128);
  for (const auto& b : plan.buffers) {
    EXPECT_EQ(b.offset % 128, 0);
    EXPECT_EQ(b.size % 128, 0);
  }
}

TEST(Planner, ResidualLifetimesDontOverlapInArena) {
  // ResNet blocks keep the shortcut alive across the body: the planner must
  // not alias those buffers. plan_is_valid covers it, but check explicitly
  // on a graph with a long-lived tensor.
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 8, 8, 8});
  NodeId cur = in;
  for (int i = 0; i < 4; ++i) {
    std::string name = "r";
    name += std::to_string(i);
    cur = g.add(OpKind::kRelu, name, {cur});
  }
  g.add(OpKind::kAdd, "res", {cur, in});  // input alive until the end
  const MemoryPlan plan = plan_memory(g, DType::kFP32);
  EXPECT_TRUE(plan_is_valid(plan));
  // the input buffer must not be reused by any of the relu chain
  const auto& input_buf = plan.buffers.front();
  EXPECT_EQ(input_buf.node, in);
  EXPECT_EQ(input_buf.last_use, plan.buffers.back().first_use);
}

// ---------------------------------------------------------------------------
// Execution engine: parallel determinism, GEMM conv, activation arena
// ---------------------------------------------------------------------------

/// Bitwise tensor equality: parallel partitioning must not change a single
/// bit, so plain float == (which conflates -0.0 and 0.0) is not enough.
void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)));
}

Tensor run_with_options(const Graph& g, const Tensor& x, const runtime::RunOptions& opts) {
  auto session = runtime::make_session(g, opts);
  return session->run_single(x);
}

/// Resource knobs moved into RunOptions::exec (ExecConfig); these builders
/// keep the matrix of engine configurations below readable.
runtime::RunOptions with_threads(unsigned threads) {
  runtime::RunOptions o;
  o.exec.threads = threads;
  return o;
}

runtime::RunOptions with_gemm(bool use_gemm_conv) {
  runtime::RunOptions o;
  o.use_gemm_conv = use_gemm_conv;
  return o;
}

runtime::RunOptions with_arena(bool arena, unsigned threads = 1) {
  runtime::RunOptions o;
  o.arena = arena;
  o.exec.threads = threads;
  return o;
}

TEST(ExecutionEngine, ResNet50ParallelBitwiseIdenticalToSerial) {
  Graph g = zoo::resnet50(/*batch=*/1, /*classes=*/10, /*image=*/32);
  Rng rng(21);
  g.materialize_weights(rng);
  Rng data_rng(22);
  Tensor x(Shape{1, 3, 32, 32}, data_rng.normal_vector(3 * 32 * 32));

  const Tensor serial = run_with_options(g, x, with_threads(1));
  const Tensor t2 = run_with_options(g, x, with_threads(2));
  const Tensor t4 = run_with_options(g, x, with_threads(4));
  expect_bitwise_equal(serial, t2);
  expect_bitwise_equal(serial, t4);
}

TEST(ExecutionEngine, MobileNetV3ParallelBitwiseIdenticalToSerial) {
  Graph g = zoo::mobilenet_v3_large(/*batch=*/1, /*classes=*/10, /*image=*/32);
  Rng rng(23);
  g.materialize_weights(rng);
  Rng data_rng(24);
  Tensor x(Shape{1, 3, 32, 32}, data_rng.normal_vector(3 * 32 * 32));

  const Tensor serial = run_with_options(g, x, with_threads(1));
  const Tensor t4 = run_with_options(g, x, with_threads(4));
  expect_bitwise_equal(serial, t4);
}

TEST(ExecutionEngine, GemmConvMatchesDirectConv) {
  // GEMM accumulates in float along the same k-order the direct loop walks,
  // but the direct reference accumulates in double: close, not bitwise.
  Graph g = zoo::resnet50(1, 10, 32);
  Rng rng(25);
  g.materialize_weights(rng);
  Rng data_rng(26);
  Tensor x(Shape{1, 3, 32, 32}, data_rng.normal_vector(3 * 32 * 32));

  const Tensor gemm = run_with_options(g, x, with_gemm(true));
  const Tensor direct = run_with_options(g, x, with_gemm(false));
  EXPECT_LT(max_abs_diff(gemm, direct), 1e-3f);
}

TEST(ExecutionEngine, ArenaOutputBitwiseIdenticalToHeap) {
  // Residual graphs are the aliasing stress case: a skip tensor must not be
  // overwritten while the main branch still reads it.
  Graph g = zoo::resnet50(1, 10, 32);
  Rng rng(27);
  g.materialize_weights(rng);
  Rng data_rng(28);
  Tensor x(Shape{1, 3, 32, 32}, data_rng.normal_vector(3 * 32 * 32));

  const Tensor heap = run_with_options(g, x, with_arena(false));
  const Tensor arena = run_with_options(g, x, with_arena(true));
  expect_bitwise_equal(heap, arena);
  const Tensor arena_mt = run_with_options(g, x, with_arena(true, 4));
  expect_bitwise_equal(heap, arena_mt);
}

TEST(ExecutionEngine, ArenaHalvesResNet50ActivationFootprint) {
  Graph g = zoo::resnet50(1, 10, 64);
  Rng rng(29);
  g.materialize_weights(rng);
  Rng data_rng(30);
  Tensor x(Shape{1, 3, 64, 64}, data_rng.normal_vector(3 * 64 * 64));

  Executor exec(g);
  exec.set_keep_activations(false);
  exec.set_use_arena(true);
  (void)exec_single(exec, g, x);
  const Executor::ArenaStats& stats = exec.arena_stats();
  ASSERT_TRUE(stats.active);
  EXPECT_GT(stats.arena_bytes, 0);
  // Liveness packing must reclaim at least half of the naive sum of all
  // activation buffers on ResNet-50 (ISSUE acceptance: arena <= 50% naive).
  EXPECT_LE(stats.arena_bytes * 2, stats.naive_bytes);
}

TEST(ExecutionEngine, ArenaDisabledWhileKeepingActivations) {
  Graph g = zoo::micro_cnn("mc", 1, 3, 16, 5);
  Rng rng(31);
  g.materialize_weights(rng);
  Rng data_rng(32);
  Tensor x(Shape{1, 3, 16, 16}, data_rng.normal_vector(3 * 16 * 16));

  Executor exec(g);
  exec.set_keep_activations(true);  // calibration mode: stable owned tensors
  exec.set_use_arena(true);
  (void)exec_single(exec, g, x);
  EXPECT_FALSE(exec.arena_stats().active);
  EXPECT_NO_THROW((void)exec.activation(g.node(g.topo_order()[1]).name));
}

TEST(ExecutionEngine, SessionOutputOwnsItsMemory) {
  // Outputs are cloned out of the arena: they must stay valid after the
  // session (and its slab) is gone.
  Graph g = zoo::micro_cnn("own", 1, 3, 16, 4);
  Rng rng(33);
  g.materialize_weights(rng);
  Rng data_rng(34);
  Tensor x(Shape{1, 3, 16, 16}, data_rng.normal_vector(3 * 16 * 16));

  Tensor y;
  {
    auto session = runtime::make_session(g, with_threads(2));
    y = session->run_single(x);
  }
  EXPECT_FALSE(y.is_view());
  EXPECT_EQ(y.numel(), 4);
  float sum = 0;
  for (float v : y.data()) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);  // softmax head
}

TEST(ExecutionEngine, SetMaxBatchAdjustsAdmissionOnLiveSession) {
  // Brownout controllers shrink the admission cap on a live session and
  // restore it without rebuilding the executor.
  Graph g = zoo::micro_mlp("mb", 4, 8, {8}, 3);
  Rng rng(41);
  g.materialize_weights(rng);
  auto session = runtime::make_session(g);
  Rng data_rng(42);
  const Tensor x(Shape{4, 8}, data_rng.normal_vector(32));

  EXPECT_EQ(session->max_batch(), 0);  // unlimited by default
  EXPECT_NO_THROW((void)session->run_single(x));

  session->set_max_batch(2);
  EXPECT_EQ(session->max_batch(), 2);
  EXPECT_THROW((void)session->run_single(x), ExecError);

  session->set_max_batch(0);
  EXPECT_NO_THROW((void)session->run_single(x));
}

}  // namespace
}  // namespace vedliot
