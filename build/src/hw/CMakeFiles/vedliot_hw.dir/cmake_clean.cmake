file(REMOVE_RECURSE
  "CMakeFiles/vedliot_hw.dir/accel.cpp.o"
  "CMakeFiles/vedliot_hw.dir/accel.cpp.o.d"
  "CMakeFiles/vedliot_hw.dir/device.cpp.o"
  "CMakeFiles/vedliot_hw.dir/device.cpp.o.d"
  "CMakeFiles/vedliot_hw.dir/perf_model.cpp.o"
  "CMakeFiles/vedliot_hw.dir/perf_model.cpp.o.d"
  "libvedliot_hw.a"
  "libvedliot_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vedliot_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
