file(REMOVE_RECURSE
  "CMakeFiles/test_qruntime.dir/test_qruntime.cpp.o"
  "CMakeFiles/test_qruntime.dir/test_qruntime.cpp.o.d"
  "test_qruntime"
  "test_qruntime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qruntime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
