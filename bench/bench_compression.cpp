// T-COMP — model compression (Sec. III: "models have been compressed down
// to 49x of their original size, with negligible accuracy loss" [7]).
//
// Runs the deep-compression pipeline (prune -> k-means cluster -> Huffman)
// stage by stage on a LeNet-class MLP (the regime of the 49x claim) and a
// conv net, reporting per-stage and total ratios plus the output-error
// proxy for "negligible accuracy loss".

#include <iostream>

#include "bench_common.hpp"
#include "graph/zoo.hpp"
#include "opt/compress.hpp"
#include "opt/huffman.hpp"
#include "runtime/session.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace vedliot;

namespace {

struct Row {
  std::string model;
  double prune_ratio;
  double total_ratio;
  double output_rmse;
};

Row run_pipeline(Graph g, const Shape& input_shape) {
  Rng rng(2022);
  g.materialize_weights(rng);
  Graph original = g.clone();

  Rng data_rng(7);
  Tensor input(input_shape, data_rng.normal_vector(static_cast<std::size_t>(input_shape.numel())));
  const Tensor before = runtime::make_session(original, {})->run_single(input);

  const auto report = opt::deep_compress(g);
  const Tensor after = runtime::make_session(g, {})->run_single(input);

  Row row;
  row.model = g.name();
  row.prune_ratio = report.original_bits / report.after_prune_bits;
  row.total_ratio = report.ratio();
  row.output_rmse = rmse(before, after);
  return row;
}

}  // namespace

void print_artifact() {
  bench::banner("T-COMP", "deep-compression pipeline: prune -> cluster -> Huffman");

  Table t({"model", "prune-stage", "full pipeline", "output RMSE (softmax)"});
  for (auto& row : {run_pipeline(zoo::micro_mlp("lenet-300-100", 1, 784, {300, 100}, 10),
                                 Shape{1, 784}),
                    run_pipeline(zoo::micro_mlp("wide-mlp", 1, 1024, {512, 256}, 10),
                                 Shape{1, 1024}),
                    run_pipeline(zoo::micro_cnn("conv-net", 1, 1, 28, 10), Shape{1, 1, 28, 28})}) {
    t.add_row({row.model, fmt_ratio(row.prune_ratio), fmt_ratio(row.total_ratio),
               fmt_fixed(row.output_rmse, 4)});
  }
  t.print(std::cout);
  bench::note("paper claim shape: dense-dominated nets reach tens-of-x (Deep Compression's");
  bench::note("49x was LeNet/AlexNet-class); conv nets compress less; output error stays small.");

  // Per-layer detail for the headline model.
  Graph g = zoo::micro_mlp("lenet-300-100", 1, 784, {300, 100}, 10);
  Rng rng(2022);
  g.materialize_weights(rng);
  const auto report = opt::deep_compress(g);
  Table layers({"layer", "params", "nonzero", "index bits", "position bits", "ratio"});
  for (const auto& l : report.layers) {
    layers.add_row({l.layer, std::to_string(l.params), std::to_string(l.nonzeros),
                    fmt_eng(l.index_bits), fmt_eng(l.position_bits), fmt_ratio(l.ratio())});
  }
  std::printf("\nper-layer breakdown (lenet-300-100):\n");
  layers.print(std::cout);
}

static void BM_DeepCompressMlp(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = zoo::micro_mlp("m", 1, 784, {300, 100}, 10);
    Rng rng(1);
    g.materialize_weights(rng);
    state.ResumeTiming();
    auto report = opt::deep_compress(g);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DeepCompressMlp)->Unit(benchmark::kMillisecond);

static void BM_HuffmanEncode64k(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint32_t> symbols;
  std::map<std::uint32_t, std::uint64_t> freqs;
  for (int i = 0; i < 65536; ++i) {
    const auto s = static_cast<std::uint32_t>(rng.uniform_int(0, 255));
    symbols.push_back(s);
    ++freqs[s];
  }
  opt::HuffmanCoder coder(freqs);
  for (auto _ : state) {
    auto bytes = coder.encode(symbols);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_HuffmanEncode64k);

static void BM_KmeansCluster(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    Tensor w(Shape{64, 32, 3, 3}, rng.normal_vector(64 * 32 * 9));
    state.ResumeTiming();
    auto codebook = opt::cluster_weights(w, 8);
    benchmark::DoNotOptimize(codebook);
  }
}
BENCHMARK(BM_KmeansCluster)->Unit(benchmark::kMillisecond);

VEDLIOT_BENCH_MAIN()
