# Empty dependencies file for bench_smart_mirror.
# This may be replaced when dependencies are built.
