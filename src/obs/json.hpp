#pragma once
/// \file json.hpp
/// \brief Minimal JSON writer helpers + parser for the obs exporters.
///
/// The exporters emit Chrome trace_event JSON and JSON-lines records; the
/// parser exists so tests (and bench tooling) can round-trip what was
/// emitted without an external dependency. It supports the full JSON value
/// grammar but is tuned for small documents, not bulk ingestion.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace vedliot::obs {

/// Error thrown by json_parse on malformed input.
class JsonError : public Error {
 public:
  explicit JsonError(const std::string& message) : Error(message) {}
};

/// A parsed JSON value (tagged union over the JSON grammar).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; throws NotFound when absent or not an object.
  const JsonValue& at(std::string_view key) const;
  bool has(std::string_view key) const;

  /// Typed accessors; throw JsonError on kind mismatch.
  double as_number() const;
  const std::string& as_string() const;
};

/// Parse one JSON document (object, array, or scalar). Trailing
/// non-whitespace is an error.
JsonValue json_parse(std::string_view text);

/// Escape a string for embedding between double quotes in JSON output.
std::string json_escape(std::string_view s);

/// Format a double the way the exporters do: integral values without a
/// decimal point, otherwise shortest round-trip via %.17g trimmed.
std::string json_number(double v);

}  // namespace vedliot::obs
