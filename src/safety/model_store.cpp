#include "safety/model_store.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "runtime/session.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace vedliot::safety {

namespace {

/// Deterministic canary inputs for a single-input graph: the golden
/// stimulus both the publisher and the device derive from canary_seed.
std::vector<Tensor> canary_inputs_for(const Graph& g, std::uint64_t seed, std::size_t count) {
  const auto inputs = g.inputs();
  VEDLIOT_CHECK(inputs.size() == 1, "canary runs need a single-input graph");
  const Shape& shape = g.node(inputs.front()).out_shape;
  Rng rng(seed);
  std::vector<Tensor> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(shape, rng.normal_vector(static_cast<std::size_t>(shape.numel())));
  }
  return out;
}

std::vector<float> run_canary(const Graph& g, std::uint64_t seed, std::size_t count) {
  const auto session = runtime::make_session(g, {});
  std::vector<float> out;
  for (const Tensor& x : canary_inputs_for(g, seed, count)) {
    const Tensor y = session->run_single(x);
    out.insert(out.end(), y.data().begin(), y.data().end());
  }
  return out;
}

}  // namespace

std::string_view ota_outcome_name(OtaOutcome o) {
  switch (o) {
    case OtaOutcome::kCommitted: return "committed";
    case OtaOutcome::kRejected: return "rejected";
    case OtaOutcome::kRolledBack: return "rolled-back";
  }
  throw InvalidArgument("unknown ota outcome");
}

OtaPackage make_ota_package(const Graph& g, std::uint64_t canary_seed,
                            std::size_t canary_inputs) {
  VEDLIOT_CHECK(g.weights_materialized(), "an OTA package ships materialized weights");
  OtaPackage pkg;
  pkg.package = pack_model(g);
  pkg.canary_seed = canary_seed;
  pkg.canary_inputs = canary_inputs;
  pkg.canary_output = run_canary(g, canary_seed, canary_inputs);
  return pkg;
}

ModelStore::ModelStore() : ModelStore(Config{}) {}

ModelStore::ModelStore(Config config) : cfg_(config) {
  VEDLIOT_CHECK(cfg_.canary_tolerance > 0, "canary tolerance must be positive");
}

const ModelStore::Slot& ModelStore::slot(const std::string& name) const {
  const auto it = slots_.find(name);
  if (it == slots_.end()) throw NotFound("model store has no entry '" + name + "'");
  return it->second;
}

std::uint32_t ModelStore::install(const std::string& name, const Graph& g) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slots_.count(name)) throw InvalidArgument("model '" + name + "' already installed");
  VEDLIOT_CHECK(g.weights_materialized(), "the golden model needs materialized weights");
  Slot s;
  s.current.version = 1;
  s.current.package = pack_model(g);
  s.current.digests = digest_weights(g);
  slots_.emplace(name, std::move(s));
  return 1;
}

bool ModelStore::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.count(name) > 0;
}

const ModelStore::Version& ModelStore::current(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slot(name).current;
}

std::uint32_t ModelStore::version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slot(name).current.version;
}

bool ModelStore::can_rollback(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slot(name).previous.has_value();
}

Graph ModelStore::materialize(const std::string& name) const {
  // Snapshot the package bytes under the lock, unpack (digest checks, IR
  // verification, tensor materialization) outside it.
  std::vector<std::uint8_t> package;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    package = slot(name).current.package;
  }
  return unpack_model(package);
}

std::size_t ModelStore::repair(const std::string& name, Graph& live,
                               std::span<const WeightScrubber::Hit> hits) const {
  if (hits.empty()) return 0;
  const Graph golden = materialize(name);
  std::size_t repaired = 0;
  for (const WeightScrubber::Hit& h : hits) {
    const Node& gold = golden.node(h.node);
    VEDLIOT_CHECK(h.tensor < gold.weights.size(),
                  "repair hit names tensor " + std::to_string(h.tensor) +
                      " beyond golden node '" + gold.name + "'");
    Tensor& deployed = live.node(h.node).weights.at(h.tensor);
    const Tensor& truth = gold.weights[h.tensor];
    VEDLIOT_CHECK(deployed.shape() == truth.shape(),
                  "deployed tensor shape diverged from golden on node '" + gold.name + "'");
    std::copy(truth.data().begin(), truth.data().end(), deployed.data().begin());
    // Verify the rewrite actually took: storage that will not hold the
    // golden bits is a hard fault, not something to scrub around.
    VEDLIOT_CHECK(util::crc32(deployed.data()) == h.expected,
                  "repaired tensor still mismatches golden digest on node '" + gold.name + "'");
    ++repaired;
  }
  live.touch();
  return repaired;
}

std::size_t ModelStore::restore(const std::string& name, Graph& live) const {
  const Graph golden = materialize(name);
  std::size_t rewritten = 0;
  for (NodeId id : golden.topo_order()) {
    const Node& gold = golden.node(id);
    if (gold.weights.empty()) continue;
    Node& dep = live.node(id);
    VEDLIOT_CHECK(dep.weights.size() == gold.weights.size(),
                  "deployed weight count diverged from golden on node '" + gold.name + "'");
    for (std::size_t t = 0; t < gold.weights.size(); ++t) {
      VEDLIOT_CHECK(dep.weights[t].shape() == gold.weights[t].shape(),
                    "deployed tensor shape diverged from golden on node '" + gold.name + "'");
      std::copy(gold.weights[t].data().begin(), gold.weights[t].data().end(),
                dep.weights[t].data().begin());
      ++rewritten;
    }
    dep.weight_dtype = gold.weight_dtype;
  }
  live.touch();
  return rewritten;
}

ModelStore::OtaReport ModelStore::push(const std::string& name, const OtaPackage& update) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(name);
  if (it == slots_.end()) throw NotFound("model store has no entry '" + name + "'");
  Slot& s = it->second;

  OtaReport report;
  report.from_version = s.current.version;
  report.to_version = s.next_version;

  // Stage: digest table + IR verifier both run inside unpack_model; any
  // corruption in transit surfaces as a GraphError with the check id.
  Graph staged("staged");
  try {
    staged = unpack_model(update.package);
  } catch (const Error& e) {
    report.outcome = OtaOutcome::kRejected;
    report.to_version = report.from_version;  // nothing swapped
    report.detail = std::string("staging failed: ") + e.what();
    return report;
  }

  // Canary: re-run the publisher's golden inputs and demand the declared
  // outputs. A payload that passes its digests but computes differently
  // (stale declaration, wrong model, non-finite outputs) is rejected here.
  const std::vector<float> observed =
      run_canary(staged, update.canary_seed, update.canary_inputs);
  if (observed.size() != update.canary_output.size()) {
    report.outcome = OtaOutcome::kRejected;
    report.to_version = report.from_version;
    report.detail = "canary output count " + std::to_string(observed.size()) +
                    " != declared " + std::to_string(update.canary_output.size());
    return report;
  }
  double worst = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double diff = std::abs(static_cast<double>(observed[i]) - update.canary_output[i]);
    if (!std::isfinite(diff)) {
      worst = std::numeric_limits<double>::infinity();
      break;
    }
    worst = std::max(worst, diff);
  }
  if (!(worst <= cfg_.canary_tolerance)) {
    report.outcome = OtaOutcome::kRejected;
    report.to_version = report.from_version;
    report.detail = "canary divergence " + std::to_string(worst) + " exceeds tolerance " +
                    std::to_string(cfg_.canary_tolerance);
    return report;
  }

  // Atomic swap: previous retained for rollback.
  Version next;
  next.version = s.next_version++;
  next.package = update.package;
  next.digests = digest_weights(staged);
  s.previous = std::move(s.current);
  s.current = std::move(next);
  report.outcome = OtaOutcome::kCommitted;
  report.to_version = s.current.version;
  report.detail = "canary max divergence " + std::to_string(worst);
  return report;
}

ModelStore::OtaReport ModelStore::rollback(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(name);
  if (it == slots_.end()) throw NotFound("model store has no entry '" + name + "'");
  Slot& s = it->second;
  OtaReport report;
  report.from_version = s.current.version;
  if (!s.previous) {
    report.outcome = OtaOutcome::kRejected;
    report.to_version = s.current.version;
    report.detail = "no previous version retained";
    return report;
  }
  s.current = std::move(*s.previous);
  s.previous.reset();
  report.outcome = OtaOutcome::kRolledBack;
  report.to_version = s.current.version;
  report.detail = "restored version " + std::to_string(s.current.version);
  return report;
}

}  // namespace vedliot::safety
