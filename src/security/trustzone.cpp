#include "security/trustzone.hpp"

namespace vedliot::security {

Digest sign_boot_image(const Key& root, const std::string& name,
                       std::span<const std::uint8_t> image) {
  const Digest h = sha256(image);
  std::vector<std::uint8_t> payload(h.begin(), h.end());
  payload.insert(payload.end(), name.begin(), name.end());
  return hmac_sha256(root, payload);
}

TrustZoneSoC::TrustZoneSoC(Key root_of_trust, double smc_roundtrip_ns)
    : root_(root_of_trust), smc_ns_(smc_roundtrip_ns) {}

void TrustZoneSoC::secure_boot(const std::vector<BootImage>& chain) {
  if (chain.empty()) throw TrustZoneError("empty boot chain");
  Sha256 rolling;
  for (const auto& stage : chain) {
    const Digest expected = sign_boot_image(root_, stage.name, stage.image);
    if (!digest_equal(expected, stage.signed_hash)) {
      throw TrustZoneError("secure boot failed at stage '" + stage.name +
                           "': image signature mismatch");
    }
    const Digest h = sha256(stage.image);
    rolling.update(h);
  }
  boot_measurement_ = rolling.finish();
  booted_ = true;
}

void TrustZoneSoC::install_ta(const std::string& name, TrustedApp app) {
  if (!booted_) throw TrustZoneError("cannot install TA before secure boot");
  if (tas_.count(name)) throw TrustZoneError("TA already installed: " + name);
  tas_[name] = std::move(app);
}

std::int32_t TrustZoneSoC::smc(const std::string& ta, const std::vector<std::int32_t>& args) {
  if (!booted_) throw TrustZoneError("secure world not available (no secure boot)");
  auto it = tas_.find(ta);
  if (it == tas_.end()) throw TrustZoneError("no trusted application named " + ta);
  ++switches_;
  simulated_ns_ += smc_ns_;
  return it->second(args);
}

const Digest& TrustZoneSoC::boot_measurement() const {
  if (!booted_) throw TrustZoneError("no boot measurement before secure boot");
  return boot_measurement_;
}

}  // namespace vedliot::security
