#include "serve/soak.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>

#include "graph/zoo.hpp"
#include "obs/json.hpp"
#include "platform/baseboard.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {

namespace {

/// Independent deterministic streams: the load schedule must be identical
/// across fault rates (invariant 2 compares goodput over the same load),
/// so arrivals, the fault campaign and the simulator's transient draws
/// each get their own seed derivation.
constexpr std::uint64_t kLoadStream = 0xA11CEull;
constexpr std::uint64_t kFaultStream = 0xFA17ull;
constexpr std::uint64_t kSimStream = 0x51ull;

/// Order-sensitive digest of the event log: two runs agree on this iff
/// they agree on every event, without shipping megabytes of JSON.
std::string event_digest(const ServeReport& report) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const ServeEvent& e : report.events) {
    h = util::fnv1a64(format_serve_event(e), h);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

/// Invariant 1: a deadline miss is only legitimate when something actually
/// went wrong in the request's lifetime — a logged failure/retry on the
/// request itself, or a scheduled platform fault whose time lands in the
/// (slack-padded) admission..miss window. At fault rate zero, any miss is
/// a violation outright.
void check_deadline_invariant(const SoakConfig& cfg, const ServeReport& report,
                              const platform::FaultTimeline& timeline,
                              const std::string& identity,
                              std::vector<std::string>& violations) {
  constexpr double kSlack = 0.25;  // scheduled vs applied fault-time skew
  std::map<std::string, double> admitted_at;
  std::map<std::string, bool> troubled;
  for (const ServeEvent& e : report.events) {
    switch (e.kind) {
      case ServeEventKind::kAdmitted:
        admitted_at.emplace(e.subject, e.time_s);
        break;
      case ServeEventKind::kTransientFault:
      case ServeEventKind::kBackendFailure:
      case ServeEventKind::kRetry:
        troubled[e.subject] = true;
        break;
      case ServeEventKind::kDeadlineMiss: {
        if (cfg.fault_rate <= 0) {
          violations.push_back("deadline miss with zero fault rate: " + e.subject + " at " +
                               std::to_string(e.time_s) + "s [" + identity + "]");
          break;
        }
        if (troubled.count(e.subject)) break;
        const auto it = admitted_at.find(e.subject);
        const double lo = (it != admitted_at.end() ? it->second : 0.0) - kSlack;
        const double hi = e.time_s + kSlack;
        const bool fault_window = std::any_of(
            timeline.events().begin(), timeline.events().end(),
            [&](const platform::FaultEvent& f) { return f.time_s >= lo && f.time_s <= hi; });
        if (!fault_window) {
          violations.push_back("deadline miss outside any fault window: " + e.subject +
                               " at " + std::to_string(e.time_s) + "s [" + identity + "]");
        }
        break;
      }
      default:
        break;
    }
  }
}

/// Invariant 4: the tracer's "vedliot.serve" instants mirror the event log
/// 1:1 in order, and each per-kind counter equals its event count.
void check_observability_invariant(const ServeReport& report, const obs::Tracer& tracer,
                                   const obs::MetricsRegistry& metrics,
                                   const std::string& identity,
                                   std::vector<std::string>& violations) {
  std::vector<const obs::Span*> mirrored;
  for (const obs::Span& sp : tracer.spans()) {
    if (sp.category == "vedliot.serve") mirrored.push_back(&sp);
  }
  if (mirrored.size() != report.events.size()) {
    violations.push_back("tracer mirror count " + std::to_string(mirrored.size()) +
                         " != event count " + std::to_string(report.events.size()) + " [" +
                         identity + "]");
    return;
  }
  for (std::size_t i = 0; i < mirrored.size(); ++i) {
    const std::string expect(serve_event_name(report.events[i].kind));
    if (mirrored[i]->name != expect) {
      violations.push_back("tracer mirror out of order at event " + std::to_string(i) + ": " +
                           mirrored[i]->name + " != " + expect + " [" + identity + "]");
      return;
    }
  }

  std::map<std::string, std::uint64_t> counts;
  for (const ServeEvent& e : report.events) {
    ++counts["vedliot.serve." + std::string(serve_event_name(e.kind))];
  }
  for (const auto& [name, count] : counts) {
    if (!metrics.has_counter(name) || metrics.counters().at(name).value() != count) {
      violations.push_back("counter " + name + " != event count " + std::to_string(count) +
                           " [" + identity + "]");
    }
  }
  for (const auto& [name, counter] : metrics.counters()) {
    if (name.rfind("vedliot.serve.", 0) == 0 && !counts.count(name)) {
      violations.push_back("counter " + name + " has no matching events [" + identity + "]");
    }
  }
}

}  // namespace

std::string SoakResult::to_json() const {
  std::string out = "{\"record\":\"soak-serve\"";
  out += ",\"seed\":" + obs::json_number(static_cast<double>(config.seed));
  out += ",\"fault_rate\":" + obs::json_number(config.fault_rate);
  out += ",\"duration_s\":" + obs::json_number(config.duration_s);
  out += ",\"arrival_hz\":" + obs::json_number(config.arrival_hz);
  out += ",\"backends\":" + obs::json_number(static_cast<double>(config.n_backends));
  out += ",\"offered\":" + obs::json_number(static_cast<double>(report.offered));
  out += ",\"completed\":" + obs::json_number(static_cast<double>(report.completed));
  out += ",\"shed\":" + obs::json_number(static_cast<double>(report.shed));
  out += ",\"deadline_missed\":" + obs::json_number(static_cast<double>(report.deadline_missed));
  out += ",\"cancelled\":" + obs::json_number(static_cast<double>(report.cancelled));
  out += ",\"failed\":" + obs::json_number(static_cast<double>(report.failed));
  out += ",\"retries\":" + obs::json_number(static_cast<double>(report.retries));
  out += ",\"max_queue_depth\":" + obs::json_number(static_cast<double>(report.max_queue_depth));
  out +=
      ",\"max_brownout_level\":" + obs::json_number(static_cast<double>(report.max_brownout_level));
  out += ",\"goodput\":" + obs::json_number(report.goodput());
  out += ",\"events\":" + obs::json_number(static_cast<double>(report.events.size()));
  out += ",\"events_fnv1a\":\"" + event_digest(report) + "\"";
  out += ",\"sim\":\"" + obs::json_escape(sim_describe) + "\"";
  out += ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    out += obs::json_escape(violations[i]);
    out += "\"";
  }
  out += "]}";
  return out;
}

SoakResult run_soak(const SoakConfig& cfg) {
  VEDLIOT_CHECK(cfg.duration_s > 0, "soak duration must be positive");
  VEDLIOT_CHECK(cfg.fault_rate >= 0, "fault rate must be >= 0");
  VEDLIOT_CHECK(cfg.arrival_hz > 0, "arrival rate must be positive");
  VEDLIOT_CHECK(cfg.n_backends >= 1 && cfg.n_backends <= 4,
                "a RECS|Box soak uses 1..4 backend modules");
  VEDLIOT_CHECK(cfg.deadline_s > 0, "deadline must be positive");
  VEDLIOT_CHECK(cfg.queue_capacity >= 1, "queue capacity must be >= 1");

  // Platform: RECS|Box with alternating Xavier/Xeon-D modules on a star
  // fabric whose hub ("switch0") is the serving ingress.
  platform::Chassis chassis((platform::recs_box()));
  std::vector<std::string> slots;
  for (int i = 0; i < cfg.n_backends; ++i) {
    const std::string slot = "come" + std::to_string(i);
    chassis.install(slot, platform::find_module(i % 2 == 0 ? "COMe-XavierAGX" : "COMe-D1577"));
    slots.push_back(slot);
  }
  platform::Fabric fabric =
      platform::star_fabric({"come0", "come1", "come2", "come3"}, 10.0, {1.0, 10.0});

  platform::PlatformSimulator::Config sim_cfg;
  sim_cfg.seed = cfg.seed ^ kSimStream;
  sim_cfg.transient_transfer_prob = 0.5 * cfg.fault_rate;
  platform::PlatformSimulator sim(std::move(chassis), std::move(fabric), sim_cfg);

  Rng fault_rng(cfg.seed ^ kFaultStream);
  const auto n_faults =
      static_cast<std::size_t>(std::lround(cfg.fault_rate * 20.0 * cfg.duration_s));
  const platform::FaultTimeline timeline =
      platform::FaultTimeline::random_campaign(slots, n_faults, cfg.duration_s, fault_rng);
  sim.schedule(timeline);

  // Quality ladder: full-precision ResNet50, then int8, then int8 with a
  // shrunken admission batch, then a small fallback model.
  const Graph fp32 = zoo::resnet50(1, 100, 64);
  const Graph fallback = zoo::mobilenet_v3_large(1, 100, 64);
  ServerConfig server_cfg;
  server_cfg.backends = slots;
  server_cfg.variants = {ModelVariant{"resnet50-fp32", &fp32, DType::kFP32, false},
                         ModelVariant{"resnet50-int8", &fp32, DType::kINT8, false},
                         ModelVariant{"mobilenetv3-int8", &fallback, DType::kINT8, false}};
  server_cfg.ladder = {BrownoutStep{0, 4}, BrownoutStep{1, 4}, BrownoutStep{1, 2},
                       BrownoutStep{2, 1}};
  server_cfg.queue.capacity = cfg.queue_capacity;
  server_cfg.seed = cfg.seed;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  server_cfg.trace = &tracer;
  server_cfg.metrics = &metrics;

  Server server(sim, server_cfg);

  // Open-loop seeded load: exponential inter-arrivals, a small high
  // priority share, jittered deadlines, an occasional batch-2 request that
  // deep brownout rungs refuse.
  Rng load_rng(cfg.seed ^ kLoadStream);
  double t = 0;
  std::uint64_t i = 0;
  while (true) {
    t += -std::log(1.0 - load_rng.uniform()) / cfg.arrival_hz;
    if (t >= cfg.duration_s) break;
    Request r;
    r.client = "client" + std::to_string(i % 4);
    r.priority_class =
        load_rng.chance(0.15) ? PriorityClass::kInteractive : PriorityClass::kStandard;
    r.arrival_s = t;
    r.deadline_s = t + load_rng.jittered(cfg.deadline_s, 0.5);
    r.batch = load_rng.chance(0.2) ? 2 : 1;
    r.payload = i + 1;
    server.submit(r);
    ++i;
  }

  SoakResult result;
  result.config = cfg;
  result.report = server.run(cfg.duration_s);
  result.sim_describe = sim.describe();

  check_deadline_invariant(cfg, result.report, timeline, result.sim_describe,
                           result.violations);
  if (result.report.max_queue_depth > cfg.queue_capacity) {
    result.violations.push_back(
        "queue depth " + std::to_string(result.report.max_queue_depth) + " exceeded capacity " +
        std::to_string(cfg.queue_capacity) + " [" + result.sim_describe + "]");
  }
  check_observability_invariant(result.report, tracer, metrics, result.sim_describe,
                                result.violations);
  return result;
}

std::vector<std::string> check_goodput_monotone(const std::vector<SoakResult>& sweep) {
  std::vector<std::string> violations;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    VEDLIOT_CHECK(sweep[i].config.fault_rate >= sweep[i - 1].config.fault_rate,
                  "goodput sweep must be ordered by ascending fault rate");
    if (sweep[i].goodput() > sweep[i - 1].goodput() + 1e-9) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "goodput not monotone: %.4f at fault rate %.2f > %.4f at %.2f",
                    sweep[i].goodput(), sweep[i].config.fault_rate, sweep[i - 1].goodput(),
                    sweep[i - 1].config.fault_rate);
      violations.push_back(std::string(buf) + " [" + sweep[i].sim_describe + "]");
    }
  }
  return violations;
}

}  // namespace vedliot::serve
