#pragma once
/// \file executor.hpp
/// \brief Reference CPU executor: actually computes every op in the IR.
///
/// This is the runtime the Kenning-analogue deploys to when the target is
/// "host CPU": a straightforward, numerically faithful interpreter. It is
/// the ground truth the optimizer validates against (e.g. that BN folding
/// preserves outputs bit-for-bit up to float associativity).

#include <map>
#include <string>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace vedliot {

/// Exception for execution-time failures (missing weights, bad feeds).
class ExecError : public Error {
 public:
  explicit ExecError(const std::string& message) : Error(message) {}
};

class Executor {
 public:
  /// The graph must outlive the executor and have materialized weights for
  /// every parametric node.
  explicit Executor(const Graph& graph);

  /// Run the graph on the given feeds (one tensor per Input node, keyed by
  /// node name). Returns the outputs of all graph output nodes by name.
  ///
  /// \deprecated New call sites should go through runtime::Session
  /// (runtime/session.hpp), which adds tracing/metrics and run options.
  std::map<std::string, Tensor> run(const std::map<std::string, Tensor>& feeds);

  /// Convenience for single-input single-output graphs.
  /// \deprecated Prefer runtime::Session::run_single.
  Tensor run_single(const Tensor& input);

  /// Attach observability sinks (either may be null). When a tracer is set,
  /// run() emits one root span plus one child span per executed (non-input)
  /// node; when a registry is set, per-op-class latency histograms
  /// (`vedliot.runtime.op.<Op>`, microseconds) and run/node counters are
  /// recorded. The sinks must outlive the executor.
  void instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// When false, intermediate activations are released at the end of run()
  /// (activation() then throws NotFound). Default true.
  void set_keep_activations(bool keep) { keep_activations_ = keep; }

  /// After run(): number of nodes executed (profiling hook).
  std::size_t nodes_executed() const { return nodes_executed_; }

  /// Retrieve any intermediate activation from the last run() by node name
  /// (used for quantization calibration). Throws NotFound if absent.
  const Tensor& activation(const std::string& node_name) const;

  /// Per-op-kind wall-clock accounting, accumulated across runs when
  /// profiling is enabled (the Kenning "monitor inference time" hook).
  struct OpProfile {
    std::uint64_t invocations = 0;
    double total_seconds = 0;
  };
  void enable_profiling(bool on = true) { profiling_ = on; }
  const std::map<OpKind, OpProfile>& profile() const { return profile_; }
  void reset_profile() { profile_.clear(); }

  /// The heaviest op kinds by accumulated time, descending.
  std::vector<std::pair<OpKind, OpProfile>> hotspots(std::size_t top_n = 3) const;

 private:
  Tensor execute_node(const Node& n, const std::vector<const Tensor*>& ins) const;

  const Graph& graph_;
  std::map<NodeId, Tensor> values_;
  std::size_t nodes_executed_ = 0;
  bool profiling_ = false;
  std::map<OpKind, OpProfile> profile_;
  bool keep_activations_ = true;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace vedliot
