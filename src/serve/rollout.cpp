#include "serve/rollout.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/json.hpp"
#include "runtime/session.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace vedliot::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::string RolloutReport::to_json() const {
  std::string out = "{\"record\":\"rollout-report\"";
  out += ",\"devices_total\":" + obs::json_number(static_cast<double>(devices_total));
  out += ",\"devices_committed\":" + obs::json_number(static_cast<double>(devices_committed));
  out += ",\"devices_rejected\":" + obs::json_number(static_cast<double>(devices_rejected));
  out += ",\"devices_rolled_back\":" + obs::json_number(static_cast<double>(devices_rolled_back));
  out += ",\"devices_failed\":" + obs::json_number(static_cast<double>(devices_failed));
  out += ",\"waves_started\":" + obs::json_number(static_cast<double>(waves_started));
  out += ",\"waves_passed\":" + obs::json_number(static_cast<double>(waves_passed));
  out += ",\"halted\":";
  out += halted ? "true" : "false";
  out += ",\"converged\":";
  out += converged ? "true" : "false";
  out += ",\"converged_at_s\":" + obs::json_number(converged_at_s);
  out += ",\"chunks_sent\":" + obs::json_number(static_cast<double>(chunks_sent));
  out += ",\"chunks_accepted\":" + obs::json_number(static_cast<double>(chunks_accepted));
  out += ",\"chunk_retries\":" + obs::json_number(static_cast<double>(chunk_retries));
  out += ",\"duplicates\":" + obs::json_number(static_cast<double>(duplicates));
  out += ",\"reorders\":" + obs::json_number(static_cast<double>(reorders));
  out += ",\"resumes\":" + obs::json_number(static_cast<double>(resumes));
  out += ",\"bytes_sent\":" + obs::json_number(static_cast<double>(bytes_sent));
  out += ",\"rollbacks_paced\":" + obs::json_number(static_cast<double>(rollbacks_paced));
  out += ",\"skew_probes\":" + obs::json_number(static_cast<double>(skew_probes));
  out += ",\"skew_cache_hits\":" + obs::json_number(static_cast<double>(skew_cache_hits));
  out += ",\"skew_version_misses\":" + obs::json_number(static_cast<double>(skew_version_misses));
  out += ",\"skew_mismatches\":" + obs::json_number(static_cast<double>(skew_mismatches));
  out += ",\"torn_serves\":" + obs::json_number(static_cast<double>(torn_serves));
  out += ",\"devices\":[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const DeviceOutcome& d = outcomes[i];
    if (i) out += ",";
    out += "{\"slot\":\"" + obs::json_escape(d.slot) + "\"";
    out += ",\"version\":" + obs::json_number(static_cast<double>(d.version));
    out += ",\"serve_crc\":" + obs::json_number(static_cast<double>(d.serve_crc));
    out += ",\"committed\":";
    out += d.committed ? "true" : "false";
    out += ",\"rolled_back\":";
    out += d.rolled_back ? "true" : "false";
    out += ",\"transfer_failed\":";
    out += d.transfer_failed ? "true" : "false";
    out += ",\"resumes\":" + obs::json_number(static_cast<double>(d.resumes)) + "}";
  }
  out += "],\"progress\":[";
  for (std::size_t i = 0; i < progress.size(); ++i) {
    if (i) out += ",";
    out += "[";
    out += obs::json_number(progress[i].first);
    out += ",";
    out += obs::json_number(static_cast<double>(progress[i].second));
    out += "]";
  }
  out += "],\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ServeEvent& e = events[i];
    if (i) out += ",";
    out += "{\"time_s\":" + obs::json_number(e.time_s);
    out += ",\"kind\":\"" + obs::json_escape(serve_event_name(e.kind)) + "\"";
    out += ",\"subject\":\"" + obs::json_escape(e.subject) + "\"";
    out += ",\"detail\":\"" + obs::json_escape(e.detail) + "\"";
    out += ",\"value\":" + obs::json_number(e.value) + "}";
  }
  out += "]}";
  return out;
}

RolloutController::RolloutController(platform::PlatformSimulator& sim, RolloutConfig config)
    : sim_(sim), cfg_(std::move(config)), rng_(cfg_.seed), cache_(cfg_.cache_capacity) {
  VEDLIOT_CHECK(!cfg_.devices.empty(), "rollout needs at least one device");
  VEDLIOT_CHECK(cfg_.canary_devices >= 1 && cfg_.canary_devices <= cfg_.devices.size(),
                "canary wave must be within [1, device count]");
  VEDLIOT_CHECK(cfg_.wave_growth >= 1.0, "wave growth must be >= 1");
  VEDLIOT_CHECK(cfg_.failure_threshold >= 0.0 && cfg_.failure_threshold < 1.0,
                "failure threshold must be in [0, 1)");
  VEDLIOT_CHECK(cfg_.control_period_s > 0, "control period must be positive");
  VEDLIOT_CHECK(cfg_.rollback_rate_per_s > 0, "rollback rate must be positive");
  VEDLIOT_CHECK(cfg_.rollback_burst >= 1.0, "rollback burst must be >= 1");
  devices_.reserve(cfg_.devices.size());
  for (const std::string& slot : cfg_.devices) {
    VEDLIOT_CHECK(sim_.chassis().occupied(slot), "rollout device not installed: " + slot);
    Device d;
    d.slot = slot;
    d.store = std::make_unique<safety::ModelStore>();
    devices_.push_back(std::move(d));
  }
}

RolloutController::~RolloutController() = default;

std::uint32_t RolloutController::serve_crc_of(const Graph& g, std::uint64_t canary_seed) {
  const auto inputs = g.inputs();
  VEDLIOT_CHECK(inputs.size() == 1, "serve fingerprint needs a single-input graph");
  const Shape& shape = g.node(inputs.front()).out_shape;
  Rng rng(canary_seed);
  const Tensor x(shape, rng.normal_vector(static_cast<std::size_t>(shape.numel())));
  const auto session = runtime::make_session(g, {});
  const Tensor y = session->run_single(x);
  return util::crc32(std::span<const float>(y.data()));
}

void RolloutController::set_baseline(const Graph& v1) {
  VEDLIOT_CHECK(!baseline_set_, "baseline already installed");
  baseline_crc_ = serve_crc_of(v1, cfg_.canary_seed);
  for (Device& d : devices_) {
    d.store->install(cfg_.model_name, v1);
    d.serving_version = 1;
    d.serve_crc = baseline_crc_;
  }
  baseline_set_ = true;
}

void RolloutController::set_target(safety::OtaPackage update, std::uint32_t manifest_serve_crc) {
  VEDLIOT_CHECK(!target_set_, "target already set");
  target_ = std::move(update);
  manifest_crc_ = manifest_serve_crc;
  chunker_ = std::make_unique<safety::OtaChunker>(
      std::span<const std::uint8_t>(target_.package), cfg_.chunk_bytes);
  target_set_ = true;
}

void RolloutController::log(double t, ServeEventKind kind, const std::string& subject,
                            const std::string& detail, double value) {
  report_.events.push_back(ServeEvent{t, kind, subject, detail, value});
  if (cfg_.trace) {
    obs::Span& sp =
        cfg_.trace->instant(std::string(serve_event_name(kind)), "vedliot.serve");
    sp.attrs.emplace_back("subject", subject);
    if (!detail.empty()) sp.attrs.emplace_back("detail", detail);
    sp.num_attrs.emplace_back("time_s", t);
    sp.num_attrs.emplace_back("value", value);
  }
  if (cfg_.metrics) {
    cfg_.metrics->counter("vedliot.serve." + std::string(serve_event_name(kind))).inc();
  }
}

bool RolloutController::reachable(const Device& d) const {
  if (!sim_.alive(d.slot)) return false;
  try {
    sim_.fabric().route(cfg_.hub, d.slot);
    return true;
  } catch (const NotFound&) {
    return false;
  }
}

void RolloutController::start_wave(double t) {
  wave_begin_ = wave_end_;
  std::size_t size = cfg_.canary_devices;
  if (wave_index_ > 0) {
    const double scaled = static_cast<double>(last_wave_size_) * cfg_.wave_growth;
    size = static_cast<std::size_t>(std::ceil(scaled));
    if (size < 1) size = 1;
  }
  wave_end_ = std::min(devices_.size(), wave_begin_ + size);
  last_wave_size_ = wave_end_ - wave_begin_;
  wave_active_ = true;
  ++report_.waves_started;
  std::string detail = std::to_string(wave_end_ - wave_begin_);
  detail += " devices";
  log(t, ServeEventKind::kWaveStarted, "wave " + std::to_string(wave_index_), detail,
      static_cast<double>(wave_index_));
  for (std::size_t i = wave_begin_; i < wave_end_; ++i) start_transfer(t, devices_[i], i);
}

void RolloutController::start_transfer(double t, Device& d, std::size_t index) {
  d.receiver = std::make_unique<safety::OtaReceiver>(chunker_->total_bytes(),
                                                     chunker_->chunk_bytes(),
                                                     chunker_->package_crc());
  d.sender = std::make_unique<safety::OtaSender>(
      cfg_.sender, cfg_.seed ^ (0x07ACC5ull * (static_cast<std::uint64_t>(index) + 1)));
  d.phase = Phase::kTransferring;
  d.next_action_s = t;
  d.wave = wave_index_;
}

void RolloutController::step_transfer(double t, Device& d) {
  if (!sim_.alive(d.slot)) {
    d.phase = Phase::kPaused;
    d.next_action_s = kInf;
    return;
  }
  const auto seqs = d.sender->select(*d.receiver);
  if (seqs.empty()) {
    stage_and_push(t, d);
    return;
  }
  struct Delivery {
    std::uint32_t seq = 0;
    platform::PlatformSimulator::ChannelDraw draw;
  };
  std::vector<Delivery> window;
  window.reserve(seqs.size());
  for (const std::uint32_t seq : seqs) {
    try {
      window.push_back(Delivery{seq, sim_.draw_channel(cfg_.hub, d.slot)});
    } catch (const NotFound&) {
      // Partition discovered on the wire: park until a heal/restart wakes us.
      d.phase = Phase::kPaused;
      d.next_action_s = kInf;
      return;
    }
  }
  std::size_t reordered = 0;
  for (const Delivery& del : window) {
    if (del.draw.reordered) ++reordered;
  }
  if (reordered > 0 && window.size() > 1) {
    std::reverse(window.begin(), window.end());
    report_.reorders += reordered;
  }
  double when = t;
  for (const Delivery& del : window) {
    safety::OtaChunk chunk = chunker_->chunk(del.seq);
    when += sim_.fabric().transfer_time_s(cfg_.hub, d.slot,
                                          static_cast<double>(chunk.payload.size()));
    ++report_.chunks_sent;
    report_.bytes_sent += chunk.payload.size();
    if (!del.draw.intact) {
      // Damaged in flight: the receiver's CRC would refuse it; schedule the
      // retry after a jittered (floored) backoff.
      const double backoff = d.sender->on_result(del.seq, false);
      ++report_.chunk_retries;
      std::string detail = "chunk ";
      detail += std::to_string(del.seq);
      detail += " damaged in flight";
      log(when, ServeEventKind::kOtaChunkRetry, "device " + d.slot, detail, backoff);
      if (d.sender->exhausted()) {
        d.phase = Phase::kFailed;
        d.next_action_s = kInf;
        log(when, ServeEventKind::kFailed, "device " + d.slot, "transfer attempts exhausted");
        return;
      }
      d.next_action_s = when + backoff;
      return;
    }
    const auto accepted = d.receiver->accept(chunk);
    d.sender->on_result(del.seq, true);
    if (accepted == safety::OtaReceiver::Accept::kAccepted) {
      ++report_.chunks_accepted;
      log(when, ServeEventKind::kOtaChunk, "device " + d.slot, "",
          static_cast<double>(del.seq));
    } else if (accepted == safety::OtaReceiver::Accept::kDuplicate) {
      ++report_.duplicates;
    }
    if (del.draw.duplicated) {
      if (d.receiver->accept(chunk) == safety::OtaReceiver::Accept::kDuplicate) {
        ++report_.duplicates;
      }
    }
  }
  if (d.receiver->complete()) {
    stage_and_push(when, d);
  } else {
    d.next_action_s = when;
  }
}

std::uint32_t RolloutController::target_serve_crc(Device& d) {
  if (!target_actual_crc_) {
    // Every committed device swapped in bit-identical bytes (the receiver
    // pinned reassembly to the package CRC), so one fingerprint run serves
    // the whole fleet.
    const Graph g = d.store->materialize(cfg_.model_name);
    target_actual_crc_ = serve_crc_of(g, cfg_.canary_seed);
  }
  return *target_actual_crc_;
}

void RolloutController::stage_and_push(double t, Device& d) {
  std::string detail = std::to_string(d.receiver->chunk_count());
  detail += " chunks reassembled";
  log(t, ServeEventKind::kOtaStaged, "device " + d.slot, detail,
      static_cast<double>(d.receiver->received_chunks()));
  const std::vector<std::uint8_t>& bytes = d.receiver->assemble();
  safety::OtaPackage update;
  update.package = bytes;
  update.canary_seed = target_.canary_seed;
  update.canary_inputs = target_.canary_inputs;
  update.canary_output = target_.canary_output;
  const auto rep = d.store->push(cfg_.model_name, update);
  d.next_action_s = kInf;
  if (rep.outcome == safety::OtaOutcome::kCommitted) {
    d.phase = Phase::kCommitted;
    d.ever_committed = true;
    d.serving_version = rep.to_version;
    d.serve_crc = target_serve_crc(d);
    log(t, ServeEventKind::kOtaCommitted, "device " + d.slot, rep.detail,
        static_cast<double>(rep.to_version));
    sample_progress(t);
  } else {
    d.phase = Phase::kRejected;
    log(t, ServeEventKind::kOtaRejected, "device " + d.slot, rep.detail,
        static_cast<double>(rep.to_version));
  }
}

void RolloutController::wake_paused(double t) {
  for (Device& d : devices_) {
    if (d.phase != Phase::kPaused) continue;
    if (!reachable(d)) continue;
    d.phase = Phase::kTransferring;
    d.next_action_s = t;
    ++d.resumes;
    ++report_.resumes;
    std::string detail = "resuming from chunk ";
    detail += std::to_string(d.receiver->next_needed());
    log(t, ServeEventKind::kOtaResumed, "device " + d.slot, detail,
        static_cast<double>(d.receiver->next_needed()));
  }
}

void RolloutController::probe_devices(double t) {
  for (Device& d : devices_) {
    if (!sim_.alive(d.slot)) continue;
    ++report_.skew_probes;
    // A device must be able to vouch for its serving version: its serve CRC
    // has to be the fingerprint of a verified image (baseline or target).
    // Anything else means a torn / unverified install leaked into serving.
    const std::uint32_t expect = d.serving_version == 1
                                     ? baseline_crc_
                                     : (target_actual_crc_ ? *target_actual_crc_ : d.serve_crc);
    if (d.serve_crc != expect) ++report_.torn_serves;
    const std::string key = "canary-probe";
    const auto hit = cache_.get(key, d.serving_version);
    if (hit) {
      ++report_.skew_cache_hits;
      // Version-skew honesty: a hit may only come from a peer on the same
      // serving version, so its CRC must match this device's fingerprint.
      if (hit->output_crc32 != d.serve_crc) ++report_.skew_mismatches;
      continue;
    }
    Response r;
    r.request_id = 0;
    r.status = ResponseStatus::kOk;
    r.time_s = t;
    r.served_by = d.slot;
    r.output_crc32 = d.serve_crc;
    cache_.put(key, r, d.serving_version);
  }
}

bool RolloutController::wave_settled() const {
  for (std::size_t i = wave_begin_; i < wave_end_; ++i) {
    const Device& d = devices_[i];
    const bool terminal = d.phase == Phase::kCommitted || d.phase == Phase::kRejected ||
                          d.phase == Phase::kFailed;
    if (!terminal) return false;
    // Heartbeat gate: the wave only settles once every member answers.
    if (!sim_.alive(d.slot)) return false;
  }
  return true;
}

void RolloutController::gate_wave(double t) {
  const std::size_t size = wave_end_ - wave_begin_;
  std::size_t failures = 0;
  std::string why;
  for (std::size_t i = wave_begin_; i < wave_end_; ++i) {
    const Device& d = devices_[i];
    if (d.phase == Phase::kRejected || d.phase == Phase::kFailed) {
      ++failures;
      if (why.empty()) why = "device " + d.slot + " did not commit";
    } else if (d.phase == Phase::kCommitted && d.serve_crc != manifest_crc_) {
      ++failures;
      if (why.empty()) why = "device " + d.slot + " serve CRC diverges from manifest";
    }
  }
  const double fraction =
      size == 0 ? 0.0 : static_cast<double>(failures) / static_cast<double>(size);
  if (fraction > cfg_.failure_threshold) {
    begin_halt(t, fraction, why.empty() ? "health gate tripped" : why);
    return;
  }
  ++report_.waves_passed;
  std::string detail = std::to_string(failures);
  detail += "/";
  detail += std::to_string(size);
  detail += " failures";
  log(t, ServeEventKind::kWavePassed, "wave " + std::to_string(wave_index_), detail,
      static_cast<double>(wave_index_));
  wave_active_ = false;
  if (wave_end_ >= devices_.size()) {
    finish(t, devices_.empty() ? 0 : devices_.front().serving_version, "all waves passed");
    return;
  }
  ++wave_index_;
  start_wave(t);
}

void RolloutController::begin_halt(double t, double fraction, const std::string& why) {
  halting_ = true;
  wave_active_ = false;
  report_.halted = true;
  log(t, ServeEventKind::kRolloutHalted, "wave " + std::to_string(wave_index_), why, fraction);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].phase == Phase::kCommitted) rollback_queue_.push_back(i);
  }
  rollback_tokens_ = cfg_.rollback_burst;
  rollback_refill_t_ = t;
  pump_rollbacks(t);
}

void RolloutController::pump_rollbacks(double t) {
  rollback_tokens_ = std::min(
      cfg_.rollback_burst,
      rollback_tokens_ + cfg_.rollback_rate_per_s * std::max(0.0, t - rollback_refill_t_));
  rollback_refill_t_ = t;
  // The epsilon keeps the pump live when a refill lands at 1.0 - ulp: without
  // it the residual wait (1 - tokens) / rate underflows against t and the
  // wakeup stops advancing simulated time.
  while (!rollback_queue_.empty() && rollback_tokens_ >= 1.0 - 1e-9) {
    rollback_tokens_ = std::max(0.0, rollback_tokens_ - 1.0);
    const std::size_t idx = rollback_queue_.front();
    rollback_queue_.erase(rollback_queue_.begin());
    Device& d = devices_[idx];
    const auto rep = d.store->rollback(cfg_.model_name);
    VEDLIOT_CHECK(rep.outcome == safety::OtaOutcome::kRolledBack,
                  "committed device must be able to roll back");
    d.phase = Phase::kRolledBack;
    d.serving_version = rep.to_version;
    d.serve_crc = baseline_crc_;
    log(t, ServeEventKind::kOtaRolledBack, "device " + d.slot, rep.detail,
        static_cast<double>(rep.to_version));
    pacing_logged_ = false;
  }
  if (!rollback_queue_.empty()) {
    const double wait = (1.0 - rollback_tokens_) / cfg_.rollback_rate_per_s;
    rollback_ready_s_ = t + wait;
    if (!pacing_logged_) {
      ++report_.rollbacks_paced;
      log(t, ServeEventKind::kRollbackPaced,
          "device " + devices_[rollback_queue_.front()].slot, "token bucket empty", wait);
      pacing_logged_ = true;
    }
    return;
  }
  if (halting_ && !done_) finish(t, 1, "fleet rolled back to baseline");
}

void RolloutController::finish(double t, std::uint32_t final_version,
                               const std::string& detail) {
  done_ = true;
  report_.converged = true;
  report_.converged_at_s = t;
  log(t, ServeEventKind::kRolloutDone, "rollout", detail, static_cast<double>(final_version));
}

void RolloutController::sample_progress(double t) {
  std::size_t committed = 0;
  for (const Device& d : devices_) {
    if (d.phase == Phase::kCommitted) ++committed;
  }
  if (report_.progress.empty() || report_.progress.back().second != committed) {
    report_.progress.emplace_back(t, committed);
  }
}

void RolloutController::control_tick(double t) {
  probe_devices(t);
  if (halting_) {
    pump_rollbacks(t);
    return;
  }
  if (wave_active_ && wave_settled()) gate_wave(t);
}

RolloutReport RolloutController::run(double duration_s) {
  VEDLIOT_CHECK(!ran_, "RolloutController::run is one-shot");
  VEDLIOT_CHECK(baseline_set_, "set_baseline before run");
  VEDLIOT_CHECK(target_set_, "set_target before run");
  VEDLIOT_CHECK(duration_s > 0, "duration must be positive");
  ran_ = true;
  report_.devices_total = devices_.size();
  sample_progress(0);
  start_wave(0);
  next_control_s_ = cfg_.control_period_s;
  while (!done_) {
    double t = next_control_s_;
    if (const auto ft = sim_.next_fault_time()) t = std::min(t, *ft);
    for (const Device& d : devices_) {
      if (d.phase == Phase::kTransferring) t = std::min(t, d.next_action_s);
    }
    if (halting_ && !rollback_queue_.empty()) t = std::min(t, rollback_ready_s_);
    if (t > duration_s) break;
    const auto faults = sim_.advance_to(t);
    bool heal = false;
    for (const auto& f : faults) {
      switch (f.kind) {
        case platform::FaultKind::kModuleCrash:
          for (Device& d : devices_) {
            if (d.slot == f.slot && d.phase == Phase::kTransferring) {
              d.phase = Phase::kPaused;
              d.next_action_s = kInf;
            }
          }
          break;
        case platform::FaultKind::kModuleRestart:
        case platform::FaultKind::kLinkHeal:
        case platform::FaultKind::kLinkRestore:
          heal = true;
          break;
        default:
          break;
      }
    }
    if (heal) wake_paused(t);
    if (next_control_s_ <= t) {
      control_tick(t);
      next_control_s_ += cfg_.control_period_s;
    }
    if (done_) break;
    for (Device& d : devices_) {
      if (d.phase == Phase::kTransferring && d.next_action_s <= t) step_transfer(t, d);
    }
    if (halting_ && !rollback_queue_.empty() && rollback_ready_s_ <= t) pump_rollbacks(t);
  }
  report_.skew_version_misses = cache_.version_misses();
  for (const Device& d : devices_) {
    DeviceOutcome o;
    o.slot = d.slot;
    o.version = d.serving_version;
    o.serve_crc = d.serve_crc;
    o.committed = d.ever_committed;
    o.rolled_back = d.phase == Phase::kRolledBack;
    o.transfer_failed = d.phase == Phase::kFailed;
    o.resumes = d.resumes;
    report_.outcomes.push_back(o);
    switch (d.phase) {
      case Phase::kCommitted: ++report_.devices_committed; break;
      case Phase::kRejected: ++report_.devices_rejected; break;
      case Phase::kRolledBack: ++report_.devices_rolled_back; break;
      case Phase::kFailed: ++report_.devices_failed; break;
      case Phase::kIdle:
      case Phase::kTransferring:
      case Phase::kPaused:
        break;
    }
  }
  return report_;
}

}  // namespace vedliot::serve
