#pragma once
/// \file admission.hpp
/// \brief Verifier-backed module admission: the record a static bytecode
/// verification pass produces, bound to a module measurement, that the
/// enclave / attestation path checks before agreeing to run (or unseal
/// anything for) an untrusted tenant module.
///
/// The record itself is deliberately dumb — a digest plus proof flags — so
/// `vedliot_security` does not depend on `vedliot_analysis`: the verifier
/// (analysis/wasm_verifier.hpp) fills one in via `make_admission`, and the
/// enclave only has to compare the digest against its own MRENCLAVE-style
/// measurement and consult the flags. Forging a ticket for a different
/// module fails the digest comparison; re-using a genuine ticket after
/// patching the module changes the measurement and fails it too.

#include <cstdint>
#include <limits>

#include "security/attestation.hpp"
#include "security/crypto.hpp"

namespace vedliot::security {

/// What the static verifier proved about one module. Produced by
/// analysis::make_admission; consumed by Enclave and attest_and_admit.
struct ModuleAdmission {
  /// SHA-256 over WModule::serialize() — must equal the enclave measurement.
  Digest module_digest{};

  /// No error-severity wasm.* finding: well-formed bytecode with sound stack
  /// discipline. The baseline admission requirement.
  bool verified = false;

  /// Every reachable load/store proven in-bounds (no wasm.mem.unproven).
  bool memory_proven = false;

  /// No possible division trap left unproven (no wasm.div.* / wasm.rem.*).
  bool arithmetic_proven = false;

  /// Every function has a static worst-case fuel bound (no
  /// wasm.cost.unbounded); fuel_bound is meaningful only when set.
  bool cost_bounded = false;

  /// Worst-case instructions retired by any single exported-function invoke.
  std::uint64_t fuel_bound = 0;
};

/// Worst-case single-invoke service time implied by a static fuel bound at
/// the enclave's interpreter rate. Returns +infinity for a cost-unbounded
/// admission — the serve layer treats such tenants as infeasible at
/// admission unless they carry explicit runtime fuel metering headroom.
double tenant_cost_s(const ModuleAdmission& admission, double vm_ns_per_instr);

/// End-to-end remote gate: true only when the quote's MAC and nonce verify
/// AND the attested measurement equals the digest of a verifier-approved
/// admission. A genuine quote over an unverified module — or a verified
/// admission for a different module than the one attested — is refused.
bool attest_and_admit(const AttestationAuthority& authority, const Quote& quote,
                      std::uint64_t expected_nonce, const ModuleAdmission& admission);

}  // namespace vedliot::security
