
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/compress.cpp" "src/opt/CMakeFiles/vedliot_opt.dir/compress.cpp.o" "gcc" "src/opt/CMakeFiles/vedliot_opt.dir/compress.cpp.o.d"
  "/root/repo/src/opt/fusion.cpp" "src/opt/CMakeFiles/vedliot_opt.dir/fusion.cpp.o" "gcc" "src/opt/CMakeFiles/vedliot_opt.dir/fusion.cpp.o.d"
  "/root/repo/src/opt/huffman.cpp" "src/opt/CMakeFiles/vedliot_opt.dir/huffman.cpp.o" "gcc" "src/opt/CMakeFiles/vedliot_opt.dir/huffman.cpp.o.d"
  "/root/repo/src/opt/pass.cpp" "src/opt/CMakeFiles/vedliot_opt.dir/pass.cpp.o" "gcc" "src/opt/CMakeFiles/vedliot_opt.dir/pass.cpp.o.d"
  "/root/repo/src/opt/prune.cpp" "src/opt/CMakeFiles/vedliot_opt.dir/prune.cpp.o" "gcc" "src/opt/CMakeFiles/vedliot_opt.dir/prune.cpp.o.d"
  "/root/repo/src/opt/quantize.cpp" "src/opt/CMakeFiles/vedliot_opt.dir/quantize.cpp.o" "gcc" "src/opt/CMakeFiles/vedliot_opt.dir/quantize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/vedliot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/vedliot_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vedliot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/vedliot_security.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vedliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
