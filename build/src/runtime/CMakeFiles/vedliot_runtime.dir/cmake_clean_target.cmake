file(REMOVE_RECURSE
  "libvedliot_runtime.a"
)
