file(REMOVE_RECURSE
  "CMakeFiles/bench_pmp.dir/bench_pmp.cpp.o"
  "CMakeFiles/bench_pmp.dir/bench_pmp.cpp.o.d"
  "bench_pmp"
  "bench_pmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
