#include "sim/cfu.hpp"

#include <algorithm>

namespace vedliot::sim {

std::uint32_t MacCfu::execute(std::uint32_t funct3, std::uint32_t funct7, std::uint32_t rs1,
                              std::uint32_t rs2) {
  (void)funct7;
  switch (funct3) {
    case 0:
      acc_ += static_cast<std::int64_t>(static_cast<std::int32_t>(rs1)) *
              static_cast<std::int64_t>(static_cast<std::int32_t>(rs2));
      return static_cast<std::uint32_t>(acc_);
    case 1:
      acc_ = 0;
      return 0;
    case 2:
      return static_cast<std::uint32_t>(acc_);
    case 3: {
      const std::int64_t shifted = acc_ >> (rs1 & 31u);
      const std::int64_t clamped = std::clamp<std::int64_t>(shifted, 0, 127);  // ReLU + int8 clamp
      return static_cast<std::uint32_t>(clamped);
    }
    case 4: {
      std::int64_t dot = 0;
      for (int i = 0; i < 4; ++i) {
        const auto a = static_cast<std::int8_t>(rs1 >> (8 * i));
        const auto b = static_cast<std::int8_t>(rs2 >> (8 * i));
        dot += static_cast<std::int64_t>(a) * b;
      }
      acc_ += dot;
      return static_cast<std::uint32_t>(acc_);
    }
    default:
      return 0;
  }
}

}  // namespace vedliot::sim
