#!/usr/bin/env bash
# Tier-1 verification: full build + complete test suite from a clean tree,
# a short seeded chaos soak of the serving layer, then an
# AddressSanitizer+UBSan build of the resilience-critical tests
# (including the runtime tests, which exercise activation-arena aliasing),
# then a ThreadSanitizer build of the parallel execution-engine tests.
#
# Usage: scripts/tier1.sh [-jN]

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

echo "== tier-1: build (warnings-as-errors) + full ctest =="
cmake -B build -S . -DVEDLIOT_WERROR=ON > /dev/null
cmake --build build "${JOBS}" > /dev/null
ctest --test-dir build --output-on-failure "${JOBS}"

echo
echo "== tier-1: kernel suite with SIMD force-disabled (portable dispatch) =="
VEDLIOT_FORCE_PORTABLE=1 ctest --test-dir build --output-on-failure "${JOBS}" \
  -R 'test_microkernel|test_runtime|test_qruntime'

echo
echo "== tier-1: bench baseline carries the roofline fields =="
for field in achieved_gflops fraction_of_roofline hardware_concurrency; do
  grep -q "\"$field\"" BENCH_runtime.json || {
    echo "BENCH_runtime.json is missing \"$field\" (regenerate with scripts/bench_runtime.sh)" >&2
    exit 1
  }
done

echo
echo "== tier-1: static analysis (vedliot-lint) =="
build/src/apps/vedliot-lint --selftest
build/src/apps/vedliot-lint --zoo resnet50 --save build/resnet50.vmdl > /dev/null
build/src/apps/vedliot-lint --model build/resnet50.vmdl
scripts/lint.sh

echo
echo "== tier-1: wasm bytecode verifier (vedliot-lint --wasm) =="
build/src/apps/vedliot-lint --wasm --selftest
# The bundled example/bench modules: add is fully accepted; kv and spin are
# runnable (exit 0) but carry expected warnings (loops, unproven indexing).
build/src/apps/vedliot-lint --wasm --wmod add > /dev/null
build/src/apps/vedliot-lint --wasm --wmod kv > /dev/null
build/src/apps/vedliot-lint --wasm --wmod spin > /dev/null

echo
echo "== tier-1: serving-layer chaos soak (seeded, short) =="
build/bench/soak_serve --quick > /dev/null

echo
echo "== tier-1: fleet-scale serving soak (seeded, short) =="
build/bench/soak_fleet --quick > /dev/null

echo
echo "== tier-1: memory-fault integrity soak (seeded, short) =="
scripts/soak_integrity.sh --quick > /dev/null

echo
echo "== tier-1: fleet OTA rollout soak (seeded, short) =="
scripts/soak_ota.sh --quick > /dev/null
for field in '"converged":true' '"no_torn_install":true'; do
  grep -q "$field" BENCH_ota.json || {
    echo "BENCH_ota.json is missing $field (regenerate with scripts/soak_ota.sh)" >&2
    exit 1
  }
done

echo
echo "== tier-1: ASan+UBSan on the resilience/platform/observability/runtime/analysis/serve/safety tests =="
cmake -B build-asan -S . -DVEDLIOT_SANITIZE=ON > /dev/null
cmake --build build-asan "${JOBS}" --target test_resilience test_platform test_distributed test_util test_obs test_runtime test_qruntime test_microkernel test_analysis test_wasm_verifier test_serve test_fleet test_safety test_package test_rollout > /dev/null
ctest --test-dir build-asan --output-on-failure "${JOBS}" \
  -R 'test_resilience|test_platform|test_distributed|test_util|test_obs|test_runtime|test_qruntime|test_microkernel|test_analysis|test_wasm_verifier|test_serve|test_fleet|test_safety|test_package|test_rollout'

echo
echo "== tier-1: TSan on the parallel execution-engine + serve tests =="
cmake -B build-tsan -S . -DVEDLIOT_TSAN=ON > /dev/null
cmake --build build-tsan "${JOBS}" --target test_util test_runtime test_qruntime test_microkernel test_serve test_fleet > /dev/null
ctest --test-dir build-tsan --output-on-failure "${JOBS}" \
  -R 'test_util|test_runtime|test_qruntime|test_microkernel|test_serve|test_fleet'

echo
echo "tier-1 OK"
