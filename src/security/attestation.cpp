#include "security/attestation.hpp"

namespace vedliot::security {

std::vector<std::uint8_t> Quote::signed_payload() const {
  std::vector<std::uint8_t> p(device_id.begin(), device_id.end());
  p.push_back(0);  // separator so ids can't collide into measurements
  p.insert(p.end(), measurement.begin(), measurement.end());
  for (int i = 0; i < 8; ++i) p.push_back(static_cast<std::uint8_t>(nonce >> (8 * i)));
  p.insert(p.end(), prev.begin(), prev.end());
  return p;
}

Key AttestationAuthority::provision(const std::string& device_id) const {
  return derive_key(root_, "device:" + device_id);
}

bool AttestationAuthority::verify(const Quote& q, std::uint64_t expected_nonce) const {
  if (q.nonce != expected_nonce) return false;
  const Key dk = provision(q.device_id);
  const Digest expected = hmac_sha256(dk, q.signed_payload());
  return digest_equal(expected, q.mac);
}

bool AttestationAuthority::verify_chain(const std::vector<Quote>& chain,
                                        std::uint64_t expected_nonce) const {
  if (chain.empty()) return false;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Quote& q = chain[i];
    // Inner quotes are fresh per-hop; only the outermost carries the
    // verifier's nonce. Each MAC must hold regardless.
    const Key dk = provision(q.device_id);
    if (!digest_equal(hmac_sha256(dk, q.signed_payload()), q.mac)) return false;
    if (i > 0) {
      if (!digest_equal(q.prev, quote_hash(chain[i - 1]))) return false;
    }
  }
  return chain.back().nonce == expected_nonce;
}

Quote DeviceAgent::quote(const Digest& measurement, std::uint64_t nonce) const {
  Quote q;
  q.device_id = id_;
  q.measurement = measurement;
  q.nonce = nonce;
  q.mac = hmac_sha256(key_, q.signed_payload());
  return q;
}

Quote DeviceAgent::quote_over(const Quote& previous, const Digest& own_measurement,
                              std::uint64_t nonce) const {
  Quote q;
  q.device_id = id_;
  q.measurement = own_measurement;
  q.nonce = nonce;
  q.prev = quote_hash(previous);
  q.mac = hmac_sha256(key_, q.signed_payload());
  return q;
}

Digest quote_hash(const Quote& q) {
  auto payload = q.signed_payload();
  payload.insert(payload.end(), q.mac.begin(), q.mac.end());
  return sha256(payload);
}

}  // namespace vedliot::security
