#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace vedliot::detail {

void throw_check_failure(std::string_view expr, std::string_view file, int line,
                         const std::string& message) {
  std::ostringstream os;
  os << message << " [check `" << expr << "` failed at " << file << ":" << line << "]";
  throw Error(os.str());
}

void assert_failure(std::string_view expr, std::string_view file, int line) {
  std::fprintf(stderr, "VEDLIOT_ASSERT failed: %.*s at %.*s:%d\n", static_cast<int>(expr.size()),
               expr.data(), static_cast<int>(file.size()), file.data(), line);
  std::abort();
}

}  // namespace vedliot::detail
