#pragma once
/// \file device.hpp
/// \brief DL accelerator descriptors and the device catalogs behind
/// Fig. 3 (market survey) and Fig. 4 (YoloV4 evaluation platforms).
///
/// Peak numbers are vendor datasheet values (the paper states Fig. 3 uses
/// unnormalized vendor peaks across mixed precisions); the utilization and
/// power parameters are calibrated so the performance model reproduces the
/// relative shapes of Fig. 4.

#include <string>
#include <vector>

#include "tensor/dtype.hpp"

namespace vedliot::hw {

enum class DeviceClass {
  kCPU,
  kGPU,
  kEmbeddedGPU,
  kFPGA,
  kASIC,
  kMCU,
};

std::string_view device_class_name(DeviceClass c);

struct DeviceSpec {
  std::string name;
  DeviceClass cls = DeviceClass::kCPU;

  DType best_dtype = DType::kFP32;        ///< precision the peak is quoted at
  std::vector<DType> supported;           ///< precisions the device can run

  double peak_gops = 0;                   ///< vendor peak at best_dtype
  double mem_bandwidth_gbs = 0;           ///< DRAM bandwidth
  double onchip_mib = 0;                  ///< on-chip buffer (SRAM/cache)
  double tdp_w = 0;                       ///< board power at full load
  double idle_w = 0;

  // Utilization model: fraction of peak actually achieved on a real DL graph
  // rises from util_b1 at batch 1 towards util_sat with time-constant
  // batch_half (GPUs gain a lot from batching; CPUs/FPGAs are flat).
  double util_b1 = 0.3;
  double util_sat = 0.5;
  double batch_half = 2.0;

  bool supports(DType dt) const;

  /// Peak at an arbitrary supported precision: the quoted peak rescaled by
  /// the relative throughput of the precisions. Throws Unsupported.
  double peak_gops_at(DType dt) const;

  /// Fraction of peak achievable at the given batch size.
  double utilization(int batch) const;

  /// Vendor-peak energy efficiency in TOPS/W (the Fig. 3 metric).
  double peak_tops_per_watt() const { return peak_gops / 1000.0 / tdp_w; }
};

/// Fig. 3: the full surveyed accelerator landscape (embedded mW devices up
/// to 400 W cloud parts). ~25 devices.
const std::vector<DeviceSpec>& survey_catalog();

/// Fig. 4: the 11 evaluation platforms (Epyc3451, D1577, GTX1660, Xavier
/// AGX MAXN + 30W, Xavier NX, Jetson TX2, ZU15, ZU3, Myriad X ...).
const std::vector<DeviceSpec>& yolo_eval_platforms();

/// Look up any device from either catalog by name; throws NotFound.
const DeviceSpec& find_device(const std::string& name);

}  // namespace vedliot::hw
