#include "runtime/microkernel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "runtime/kernels.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define VEDLIOT_HAVE_X86 1
#define VEDLIOT_TARGET_AVX2 __attribute__((target("avx2,fma")))
#endif

#if defined(__ARM_NEON)
#include <arm_neon.h>
#define VEDLIOT_HAVE_NEON 1
#endif

namespace vedliot::runtime_kernels {

namespace {

// Tile shapes per level. f32 AVX2 is the classic 6x16: 12 ymm accumulators
// + 2 B vectors + 1 broadcast leave one register spare. int8 AVX2 is 4x16:
// 8 ymm int32 accumulators fed by madd_epi16 k-pairs. NEON f32 is 4x8 in
// q registers.
constexpr MicrokernelTile kAvx2F32{6, 16};
constexpr MicrokernelTile kAvx2S8{4, 16};
constexpr MicrokernelTile kNeonF32{4, 8};

/// Identical to the scalar reference requant (kernels.cpp): round to
/// nearest, saturate to int8 counting the clamps, then the fused-activation
/// window. Exact-int accumulators make this the whole numerical story.
inline std::int8_t requant_sat(double v, std::uint64_t& saturations) {
  const double r = std::nearbyint(v);
  if (r > 127.0) {
    ++saturations;
    return 127;
  }
  if (r < -128.0) {
    ++saturations;
    return -128;
  }
  return static_cast<std::int8_t>(r);
}

/// Store the valid region of one f32 accumulator tile, applying the fused
/// activation scalar-wise — shared across levels so SIMD and portable
/// epilogues are the same math on every lane.
template <std::int64_t MR, std::int64_t NR>
void store_tile_f32(const float* tile, float* c, std::int64_t ldc, bool col_major,
                    std::int64_t m0, std::int64_t j0, std::int64_t mv, std::int64_t jv,
                    OpKind act, double alpha) {
  for (std::int64_t r = 0; r < mv; ++r) {
    const float* row = tile + r * NR;
    for (std::int64_t j = 0; j < jv; ++j) {
      const float v = act == OpKind::kIdentity ? row[j] : apply_activation(row[j], act, alpha);
      if (col_major) {
        c[(j0 + j) * ldc + (m0 + r)] = v;
      } else {
        c[(m0 + r) * ldc + (j0 + j)] = v;
      }
    }
  }
}

template <std::int64_t MR, std::int64_t NR>
std::uint64_t store_tile_s8(const std::int32_t* tile, std::int8_t* c, std::int64_t ldc,
                            bool col_major, std::int64_t m0, std::int64_t j0, std::int64_t mv,
                            std::int64_t jv, const double* mult, std::int32_t q_lo,
                            std::int32_t q_hi) {
  std::uint64_t saturations = 0;
  for (std::int64_t r = 0; r < mv; ++r) {
    const std::int32_t* row = tile + r * NR;
    const double m_mult = mult[m0 + r];
    for (std::int64_t j = 0; j < jv; ++j) {
      std::int8_t q = requant_sat(static_cast<double>(row[j]) * m_mult, saturations);
      if (q < q_lo) q = static_cast<std::int8_t>(q_lo);
      if (q > q_hi) q = static_cast<std::int8_t>(q_hi);
      if (col_major) {
        c[(j0 + j) * ldc + (m0 + r)] = q;
      } else {
        c[(m0 + r) * ldc + (j0 + j)] = q;
      }
    }
  }
  return saturations;
}

#if defined(VEDLIOT_HAVE_X86)

VEDLIOT_TARGET_AVX2 void gemm_f32_avx2(const float* pa, const float* pb, float* c,
                                       std::int64_t m, std::int64_t n, std::int64_t k,
                                       std::int64_t ldc, bool col_major_store,
                                       std::int64_t panel_lo, std::int64_t panel_hi,
                                       const float* bias, OpKind act, double alpha) {
  constexpr std::int64_t MR = 6, NR = 16;
  const std::int64_t n_panels = panel_count(n, NR);
  for (std::int64_t p = panel_lo; p < panel_hi; ++p) {
    const std::int64_t m0 = p * MR;
    const std::int64_t mv = std::min<std::int64_t>(MR, m - m0);
    const float* pa_panel = pa + p * MR * k;
    for (std::int64_t q = 0; q < n_panels; ++q) {
      const std::int64_t j0 = q * NR;
      const std::int64_t jv = std::min<std::int64_t>(NR, n - j0);
      const float* pb_panel = pb + q * NR * k;

      // Accumulator tile starts at the bias (zero for padded rows), then
      // adds the K products in ascending k — the scalar reference order.
      __m256 acc[MR][2];
      for (std::int64_t r = 0; r < MR; ++r) {
        const float init = (bias != nullptr && r < mv) ? bias[m0 + r] : 0.0f;
        acc[r][0] = _mm256_set1_ps(init);
        acc[r][1] = _mm256_set1_ps(init);
      }
      for (std::int64_t kp = 0; kp < k; ++kp) {
        const __m256 b0 = _mm256_loadu_ps(pb_panel + kp * NR);
        const __m256 b1 = _mm256_loadu_ps(pb_panel + kp * NR + 8);
        const float* arow = pa_panel + kp * MR;
        for (std::int64_t r = 0; r < MR; ++r) {
          const __m256 av = _mm256_broadcast_ss(arow + r);
          acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
          acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
      }
      alignas(32) float tile[MR * NR];
      for (std::int64_t r = 0; r < MR; ++r) {
        _mm256_store_ps(tile + r * NR, acc[r][0]);
        _mm256_store_ps(tile + r * NR + 8, acc[r][1]);
      }
      store_tile_f32<MR, NR>(tile, c, ldc, col_major_store, m0, j0, mv, jv, act, alpha);
    }
  }
}

VEDLIOT_TARGET_AVX2 std::uint64_t gemm_s8_avx2(const std::int32_t* pa, const std::int8_t* pb,
                                               std::int8_t* c, std::int64_t m, std::int64_t n,
                                               std::int64_t k, std::int64_t ldc,
                                               bool col_major_store, std::int64_t panel_lo,
                                               std::int64_t panel_hi, const std::int32_t* bias,
                                               const double* mult, std::int32_t q_lo,
                                               std::int32_t q_hi) {
  constexpr std::int64_t MR = 4, NR = 16;
  const std::int64_t n_panels = panel_count(n, NR);
  const std::int64_t k_pairs = (k + 1) / 2;
  std::uint64_t saturations = 0;
  for (std::int64_t p = panel_lo; p < panel_hi; ++p) {
    const std::int64_t m0 = p * MR;
    const std::int64_t mv = std::min<std::int64_t>(MR, m - m0);
    const std::int32_t* pa_panel = pa + p * MR * k_pairs;
    for (std::int64_t q = 0; q < n_panels; ++q) {
      const std::int64_t j0 = q * NR;
      const std::int64_t jv = std::min<std::int64_t>(NR, n - j0);
      const std::int8_t* pb_panel = pb + q * NR * 2 * k_pairs;

      __m256i acc[MR][2];
      for (std::int64_t r = 0; r < MR; ++r) {
        const std::int32_t init = (bias != nullptr && r < mv) ? bias[m0 + r] : 0;
        acc[r][0] = _mm256_set1_epi32(init);
        acc[r][1] = _mm256_set1_epi32(init);
      }
      // madd_epi16 on sign-extended bytes: each int32 lane j gains
      // a[2kp] * b[2kp][j] + a[2kp+1] * b[2kp+1][j] — two exact k steps.
      for (std::int64_t kp = 0; kp < k_pairs; ++kp) {
        const __m256i braw =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb_panel + kp * 32));
        const __m256i blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(braw));
        const __m256i bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(braw, 1));
        const std::int32_t* arow = pa_panel + kp * MR;
        for (std::int64_t r = 0; r < MR; ++r) {
          const __m256i av = _mm256_set1_epi32(arow[r]);
          acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(av, blo));
          acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(av, bhi));
        }
      }
      alignas(32) std::int32_t tile[MR * NR];
      for (std::int64_t r = 0; r < MR; ++r) {
        _mm256_store_si256(reinterpret_cast<__m256i*>(tile + r * NR), acc[r][0]);
        _mm256_store_si256(reinterpret_cast<__m256i*>(tile + r * NR + 8), acc[r][1]);
      }
      saturations += store_tile_s8<MR, NR>(tile, c, ldc, col_major_store, m0, j0, mv, jv, mult,
                                           q_lo, q_hi);
    }
  }
  return saturations;
}

#endif  // VEDLIOT_HAVE_X86

#if defined(VEDLIOT_HAVE_NEON)

void gemm_f32_neon(const float* pa, const float* pb, float* c, std::int64_t m, std::int64_t n,
                   std::int64_t k, std::int64_t ldc, bool col_major_store,
                   std::int64_t panel_lo, std::int64_t panel_hi, const float* bias, OpKind act,
                   double alpha) {
  constexpr std::int64_t MR = 4, NR = 8;
  const std::int64_t n_panels = panel_count(n, NR);
  for (std::int64_t p = panel_lo; p < panel_hi; ++p) {
    const std::int64_t m0 = p * MR;
    const std::int64_t mv = std::min<std::int64_t>(MR, m - m0);
    const float* pa_panel = pa + p * MR * k;
    for (std::int64_t q = 0; q < n_panels; ++q) {
      const std::int64_t j0 = q * NR;
      const std::int64_t jv = std::min<std::int64_t>(NR, n - j0);
      const float* pb_panel = pb + q * NR * k;
      float32x4_t acc[MR][2];
      for (std::int64_t r = 0; r < MR; ++r) {
        const float init = (bias != nullptr && r < mv) ? bias[m0 + r] : 0.0f;
        acc[r][0] = vdupq_n_f32(init);
        acc[r][1] = vdupq_n_f32(init);
      }
      for (std::int64_t kp = 0; kp < k; ++kp) {
        const float32x4_t b0 = vld1q_f32(pb_panel + kp * NR);
        const float32x4_t b1 = vld1q_f32(pb_panel + kp * NR + 4);
        const float* arow = pa_panel + kp * MR;
        for (std::int64_t r = 0; r < MR; ++r) {
          const float32x4_t av = vdupq_n_f32(arow[r]);
          acc[r][0] = vfmaq_f32(acc[r][0], av, b0);
          acc[r][1] = vfmaq_f32(acc[r][1], av, b1);
        }
      }
      float tile[MR * NR];
      for (std::int64_t r = 0; r < MR; ++r) {
        vst1q_f32(tile + r * NR, acc[r][0]);
        vst1q_f32(tile + r * NR + 4, acc[r][1]);
      }
      store_tile_f32<MR, NR>(tile, c, ldc, col_major_store, m0, j0, mv, jv, act, alpha);
    }
  }
}

#endif  // VEDLIOT_HAVE_NEON

}  // namespace

std::size_t packed_a_f32_elems(std::int64_t m, std::int64_t k, const MicrokernelTile& t) {
  return static_cast<std::size_t>(panel_count(m, t.mr) * t.mr * k);
}

std::size_t packed_b_f32_elems(std::int64_t k, std::int64_t n, const MicrokernelTile& t) {
  return static_cast<std::size_t>(panel_count(n, t.nr) * t.nr * k);
}

std::size_t packed_a_s8_words(std::int64_t m, std::int64_t k, const MicrokernelTile& t) {
  return static_cast<std::size_t>(panel_count(m, t.mr) * t.mr * ((k + 1) / 2));
}

std::size_t packed_b_s8_bytes(std::int64_t k, std::int64_t n, const MicrokernelTile& t) {
  return static_cast<std::size_t>(panel_count(n, t.nr) * t.nr * 2 * ((k + 1) / 2));
}

void pack_a_f32(const float* a, std::int64_t m, std::int64_t k, const MicrokernelTile& t,
                float* packed) {
  const std::int64_t mr = t.mr;
  const std::int64_t m_panels = panel_count(m, mr);
  for (std::int64_t p = 0; p < m_panels; ++p) {
    float* dst = packed + p * mr * k;
    for (std::int64_t kp = 0; kp < k; ++kp) {
      for (std::int64_t r = 0; r < mr; ++r) {
        const std::int64_t row = p * mr + r;
        dst[kp * mr + r] = row < m ? a[row * k + kp] : 0.0f;
      }
    }
  }
}

void pack_b_f32(const float* b, std::int64_t k, std::int64_t n, const MicrokernelTile& t,
                std::int64_t panel_lo, std::int64_t panel_hi, float* packed) {
  const std::int64_t nr = t.nr;
  for (std::int64_t q = panel_lo; q < panel_hi; ++q) {
    float* dst = packed + q * nr * k;
    const std::int64_t j0 = q * nr;
    const std::int64_t jv = std::min<std::int64_t>(nr, n - j0);
    for (std::int64_t kp = 0; kp < k; ++kp) {
      const float* src = b + kp * n + j0;
      float* row = dst + kp * nr;
      std::memcpy(row, src, static_cast<std::size_t>(jv) * sizeof(float));
      for (std::int64_t j = jv; j < nr; ++j) row[j] = 0.0f;
    }
  }
}

void pack_a_s8(const std::int8_t* a, std::int64_t m, std::int64_t k, const MicrokernelTile& t,
               std::int32_t* packed) {
  const std::int64_t mr = t.mr;
  const std::int64_t m_panels = panel_count(m, mr);
  const std::int64_t k_pairs = (k + 1) / 2;
  for (std::int64_t p = 0; p < m_panels; ++p) {
    std::int32_t* dst = packed + p * mr * k_pairs;
    for (std::int64_t kp = 0; kp < k_pairs; ++kp) {
      for (std::int64_t r = 0; r < mr; ++r) {
        const std::int64_t row = p * mr + r;
        std::int16_t a0 = 0, a1 = 0;
        if (row < m) {
          a0 = a[row * k + 2 * kp];
          if (2 * kp + 1 < k) a1 = a[row * k + 2 * kp + 1];
        }
        const auto w = static_cast<std::uint32_t>(static_cast<std::uint16_t>(a0)) |
                       (static_cast<std::uint32_t>(static_cast<std::uint16_t>(a1)) << 16);
        dst[kp * mr + r] = static_cast<std::int32_t>(w);
      }
    }
  }
}

void pack_b_s8(const std::int8_t* b, std::int64_t k, std::int64_t n, const MicrokernelTile& t,
               std::int64_t panel_lo, std::int64_t panel_hi, std::int8_t* packed) {
  const std::int64_t nr = t.nr;
  const std::int64_t k_pairs = (k + 1) / 2;
  for (std::int64_t q = panel_lo; q < panel_hi; ++q) {
    std::int8_t* dst = packed + q * nr * 2 * k_pairs;
    const std::int64_t j0 = q * nr;
    const std::int64_t jv = std::min<std::int64_t>(nr, n - j0);
    for (std::int64_t kp = 0; kp < k_pairs; ++kp) {
      const std::int8_t* row0 = b + (2 * kp) * n + j0;
      const std::int8_t* row1 = 2 * kp + 1 < k ? b + (2 * kp + 1) * n + j0 : nullptr;
      std::int8_t* out = dst + kp * nr * 2;
      for (std::int64_t j = 0; j < nr; ++j) {
        out[2 * j] = j < jv ? row0[j] : std::int8_t{0};
        out[2 * j + 1] = (j < jv && row1 != nullptr) ? row1[j] : std::int8_t{0};
      }
    }
  }
}

const GemmMicrokernels* gemm_microkernels(util::SimdLevel resolved) {
#if defined(VEDLIOT_HAVE_X86)
  static const GemmMicrokernels avx2{util::SimdLevel::kAvx2, kAvx2F32, kAvx2S8, &gemm_f32_avx2,
                                     &gemm_s8_avx2};
  if (resolved == util::SimdLevel::kAvx2 && util::simd_supported(util::SimdLevel::kAvx2)) {
    return &avx2;
  }
#endif
#if defined(VEDLIOT_HAVE_NEON)
  static const GemmMicrokernels neon{util::SimdLevel::kNeon, kNeonF32, MicrokernelTile{},
                                     &gemm_f32_neon, nullptr};
  if (resolved == util::SimdLevel::kNeon) return &neon;
#endif
  (void)resolved;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Peak probes: time a register-resident multiply-add chain long enough to
// amortize the clock, and report the achieved rate as the compute roof.
// The probe uses the same instruction the microkernel's inner loop leans on
// (FMA / madd_epi16), so "fraction of roofline" compares like with like.

namespace {

#if defined(VEDLIOT_HAVE_X86)

VEDLIOT_TARGET_AVX2 double probe_f32_avx2(std::int64_t iters) {
  // 12 independent FMA chains — the same ILP shape as the 6x16 microkernel.
  __m256 acc[12];
  for (int i = 0; i < 12; ++i) acc[i] = _mm256_set1_ps(0.5f + 0.01f * static_cast<float>(i));
  const __m256 a = _mm256_set1_ps(0.999999f);
  const __m256 b = _mm256_set1_ps(1e-7f);
  for (std::int64_t it = 0; it < iters; ++it) {
    for (int i = 0; i < 12; ++i) acc[i] = _mm256_fmadd_ps(acc[i], a, b);
  }
  alignas(32) float sink[8];
  __m256 sum = acc[0];
  for (int i = 1; i < 12; ++i) sum = _mm256_add_ps(sum, acc[i]);
  _mm256_store_ps(sink, sum);
  return static_cast<double>(sink[0]);  // data dependence defeats DCE
}

VEDLIOT_TARGET_AVX2 double probe_s8_avx2(std::int64_t iters) {
  __m256i acc[8];
  for (int i = 0; i < 8; ++i) acc[i] = _mm256_set1_epi32(i);
  const __m256i a = _mm256_set1_epi16(3);
  const __m256i b = _mm256_set1_epi16(5);
  for (std::int64_t it = 0; it < iters; ++it) {
    for (int i = 0; i < 8; ++i) acc[i] = _mm256_add_epi32(acc[i], _mm256_madd_epi16(a, b));
  }
  alignas(32) std::int32_t sink[8];
  __m256i sum = acc[0];
  for (int i = 1; i < 8; ++i) sum = _mm256_add_epi32(sum, acc[i]);
  _mm256_store_si256(reinterpret_cast<__m256i*>(sink), sum);
  return static_cast<double>(sink[0]);
}

#endif  // VEDLIOT_HAVE_X86

double probe_f32_portable(std::int64_t iters) {
  // 32 independent chains: enough to cover FMA latency even after the
  // compiler auto-vectorizes the inner loop (which is honest — the portable
  // kernels get the same treatment), so this measures throughput, not the
  // latency of a single dependent chain.
  float acc[32];
  for (int i = 0; i < 32; ++i) acc[i] = 0.5f + 0.01f * static_cast<float>(i);
  for (std::int64_t it = 0; it < iters; ++it) {
    for (int i = 0; i < 32; ++i) acc[i] = acc[i] * 0.999999f + 1e-7f;
  }
  double sum = 0;
  for (int i = 0; i < 32; ++i) sum += static_cast<double>(acc[i]);
  return sum;
}

double probe_s8_portable(std::int64_t iters) {
  // Self-dependent multiply-add chains (unsigned so wraparound is defined);
  // a loop-invariant increment would be constant-folded away entirely.
  std::uint32_t acc[32];
  for (int i = 0; i < 32; ++i) acc[i] = static_cast<std::uint32_t>(i) + 1;
  for (std::int64_t it = 0; it < iters; ++it) {
    for (int i = 0; i < 32; ++i) acc[i] = acc[i] * 3u + 7u;
  }
  std::uint64_t sum = 0;
  for (int i = 0; i < 32; ++i) sum += acc[i];
  return static_cast<double>(sum);
}

/// Run \p fn with growing iteration counts until it spans \p min_seconds;
/// returns (iterations, elapsed seconds) of the final timed run.
template <typename Fn>
std::pair<std::int64_t, double> calibrate(Fn fn, double min_seconds, volatile double* sink) {
  std::int64_t iters = 1 << 16;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    *sink = fn(iters);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s >= min_seconds || iters > (std::int64_t{1} << 40)) return {iters, s};
    iters *= 2;
  }
}

}  // namespace

double peak_probe_f32(util::SimdLevel resolved, double min_seconds) {
  volatile double sink = 0;
#if defined(VEDLIOT_HAVE_X86)
  if (resolved == util::SimdLevel::kAvx2 && util::simd_supported(util::SimdLevel::kAvx2)) {
    const auto [iters, s] = calibrate(&probe_f32_avx2, min_seconds, &sink);
    // 12 chains x 8 lanes x 2 flops per FMA per iteration.
    return static_cast<double>(iters) * 12.0 * 8.0 * 2.0 / s / 1e9;
  }
#endif
  (void)resolved;
  // 32 chains x 2 flops per multiply-add per iteration.
  const auto [iters, s] = calibrate(&probe_f32_portable, min_seconds, &sink);
  return static_cast<double>(iters) * 32.0 * 2.0 / s / 1e9;
}

double peak_probe_s8(util::SimdLevel resolved, double min_seconds) {
  volatile double sink = 0;
#if defined(VEDLIOT_HAVE_X86)
  if (resolved == util::SimdLevel::kAvx2 && util::simd_supported(util::SimdLevel::kAvx2)) {
    const auto [iters, s] = calibrate(&probe_s8_avx2, min_seconds, &sink);
    // 8 chains x 16 MACs per madd+add x 2 ops per MAC.
    return static_cast<double>(iters) * 8.0 * 16.0 * 2.0 / s / 1e9;
  }
#endif
  (void)resolved;
  // 32 chains x 2 ops per multiply-add per iteration.
  const auto [iters, s] = calibrate(&probe_s8_portable, min_seconds, &sink);
  return static_cast<double>(iters) * 32.0 * 2.0 / s / 1e9;
}

}  // namespace vedliot::runtime_kernels
