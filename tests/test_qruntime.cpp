// Tests for the true-integer INT8 executor: agreement with the float
// reference (through the unified runtime::Session API), integer-domain
// invariants (through the executor directly, which exposes QTensor), and
// its preconditions.

#include <gtest/gtest.h>

#include <memory>

#include "graph/zoo.hpp"
#include "opt/fusion.hpp"
#include "opt/quantize.hpp"
#include "runtime/qexecutor.hpp"
#include "runtime/session.hpp"
#include "util/rng.hpp"

namespace vedliot {
namespace {

/// Build, materialize, fold BN, fuse activations and calibrate — the full
/// pre-deployment pipeline the integer executor expects.
Graph deploy_ready(Graph g, std::uint64_t seed, const Shape& input_shape,
                   std::size_t calib_samples = 8) {
  Rng rng(seed);
  g.materialize_weights(rng);
  opt::FuseBatchNormPass bn;
  bn.run(g);
  opt::FuseActivationPass act;
  act.run(g);
  std::vector<Tensor> samples;
  Rng data_rng(seed + 1);
  for (std::size_t i = 0; i < calib_samples; ++i) {
    samples.emplace_back(input_shape,
                         data_rng.normal_vector(static_cast<std::size_t>(input_shape.numel())));
  }
  opt::calibrate_activations(g, samples, Calibration::kMinMax);
  return g;
}

/// Thread-count knob now lives in RunOptions::exec (ExecConfig).
runtime::RunOptions qs_threads(unsigned threads) {
  runtime::RunOptions o;
  o.exec.threads = threads;
  return o;
}

TEST(QTensor, QuantizeDequantizeRoundTrip) {
  Tensor t(Shape{4}, {0.5f, -0.25f, 1.0f, 0.0f});
  const QTensor q = quantize_fixed(t, 0.01);
  EXPECT_EQ(q.data[0], 50);
  EXPECT_EQ(q.data[1], -25);
  EXPECT_EQ(q.data[3], 0);
  const Tensor back = q.dequantize();
  EXPECT_LT(max_abs_diff(t, back), 0.01f);
}

TEST(QTensor, QuantizeSaturates) {
  Tensor t(Shape{2}, {100.0f, -100.0f});
  const QTensor q = quantize_fixed(t, 0.1);
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[1], -128);
}

TEST(QuantizedExecutor, MatchesFloatOnMicroMlp) {
  const Shape in_shape{1, 16};
  Graph g = deploy_ready(zoo::micro_mlp("m", 1, 16, {24, 12}, 4), 11, in_shape, 32);
  auto fsession = runtime::make_session(g);
  auto qsession = runtime::make_quantized_session(g);
  EXPECT_EQ(fsession->backend(), "float-reference");
  EXPECT_EQ(qsession->backend(), "int8");

  Rng rng(99);
  int agree = 0;
  double worst = 0;
  for (int i = 0; i < 32; ++i) {
    Tensor x(in_shape, rng.normal_vector(16));
    const Tensor fy = fsession->run_single(x);
    const Tensor qy = qsession->run_single(x);
    worst = std::max(worst, static_cast<double>(max_abs_diff(fy, qy)));
    // argmax agreement
    std::size_t fa = 0, qa = 0;
    for (std::int64_t j = 1; j < fy.numel(); ++j) {
      if (fy.at(static_cast<std::size_t>(j)) > fy.at(fa)) fa = static_cast<std::size_t>(j);
      if (qy.at(static_cast<std::size_t>(j)) > qy.at(qa)) qa = static_cast<std::size_t>(j);
    }
    if (fa == qa) ++agree;
  }
  EXPECT_GE(agree, 29);      // >=90% top-1 agreement
  EXPECT_LT(worst, 0.30);    // softmax outputs reasonably close (PTQ saturation
                             // on samples outside the calibration range is expected)
}

TEST(QuantizedExecutor, MatchesFloatOnMicroCnn) {
  const Shape in_shape{1, 1, 16, 16};
  Graph g = deploy_ready(zoo::micro_cnn("m", 1, 1, 16, 4), 21, in_shape);
  auto fsession = runtime::make_session(g);
  auto qsession = runtime::make_quantized_session(g);

  Rng rng(7);
  int agree = 0;
  for (int i = 0; i < 16; ++i) {
    Tensor x(in_shape, rng.normal_vector(256));
    const Tensor fy = fsession->run_single(x);
    const Tensor qy = qsession->run_single(x);
    std::size_t fa = 0, qa = 0;
    for (std::int64_t j = 1; j < fy.numel(); ++j) {
      if (fy.at(static_cast<std::size_t>(j)) > fy.at(fa)) fa = static_cast<std::size_t>(j);
      if (qy.at(static_cast<std::size_t>(j)) > qy.at(qa)) qa = static_cast<std::size_t>(j);
    }
    if (fa == qa) ++agree;
  }
  EXPECT_GE(agree, 14);
}

TEST(QuantizedExecutor, OutputScaleIsCalibrated) {
  const Shape in_shape{1, 8};
  Graph g = deploy_ready(zoo::micro_mlp("m", 1, 8, {8}, 3), 31, in_shape);
  QuantizedExecutor qexec(g);
  Rng rng(5);
  const QTensor q = qexec.run_single(Tensor(in_shape, rng.normal_vector(8)));
  // softmax outputs in [0,1] -> scale must be <= ~1/127
  EXPECT_LE(q.scale, 1.0 / 127.0 + 1e-9);
  for (std::int8_t v : q.data) EXPECT_GE(v, 0);  // probabilities are non-negative
}

TEST(QuantizedExecutor, FusedReluClampsNegative) {
  // Single conv with fused relu: a strongly negative accumulation must
  // land exactly at q=0.
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 1, 1, 1});
  AttrMap a;
  a.set_int("out_channels", 1);
  a.set_int("kernel", 1);
  a.set_int("stride", 1);
  a.set_int("pad", 0);
  a.set_int("groups", 1);
  a.set_int("bias", 0);
  a.set_str("fused_act", "Relu");
  const NodeId c = g.add(OpKind::kConv2d, "conv", {in}, a);
  g.node(c).weights = {Tensor(Shape{1, 1, 1, 1}, {-1.0f})};
  g.node(in).attrs.set_float("act_scale", 0.01);
  g.node(c).attrs.set_float("act_scale", 0.01);

  QuantizedExecutor qexec(g);
  const QTensor q = qexec.run_single(Tensor(Shape{1, 1, 1, 1}, {1.0f}));
  EXPECT_EQ(q.data[0], 0);  // relu(-1.0) == 0 in the integer domain
}

TEST(QuantizedExecutor, UnfoldedBatchNormRejected) {
  Graph g = zoo::micro_cnn("m", 1, 1, 16, 4);  // contains BN
  Rng rng(1);
  g.materialize_weights(rng);
  EXPECT_THROW(QuantizedExecutor{g}, Unsupported);
}

TEST(QuantizedExecutor, MissingCalibrationRejected) {
  Graph g = zoo::micro_mlp("m", 1, 8, {8}, 3);  // no BN, but no act_scale either
  Rng rng(1);
  g.materialize_weights(rng);
  EXPECT_THROW(QuantizedExecutor{g}, Unsupported);
}

TEST(QuantizedExecutor, SaturationCounterTracksClipping) {
  // Force saturation: tiny output scale cannot represent the accumulation.
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 4});
  AttrMap a;
  a.set_int("units", 2);
  a.set_int("bias", 0);
  const NodeId fc = g.add(OpKind::kDense, "fc", {in}, a);
  g.node(fc).weights = {Tensor(Shape{2, 4}, {1, 1, 1, 1, 1, 1, 1, 1})};
  g.node(in).attrs.set_float("act_scale", 0.05);
  g.node(fc).attrs.set_float("act_scale", 1e-4);  // absurdly small
  QuantizedExecutor qexec(g);
  qexec.run_single(Tensor(Shape{1, 4}, {5, 5, 5, 5}));
  EXPECT_GT(qexec.saturations(), 0u);
}

TEST(QuantizedExecutor, DepthwiseConvSupported) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 2, 4, 4});
  AttrMap a;
  a.set_int("out_channels", 2);
  a.set_int("kernel", 3);
  a.set_int("stride", 1);
  a.set_int("pad", 1);
  a.set_int("groups", 2);
  a.set_int("bias", 1);
  const NodeId c = g.add(OpKind::kConv2d, "dw", {in}, a);
  Rng rng(3);
  g.materialize_weights(rng);
  std::vector<Tensor> samples;
  Rng data_rng(4);
  for (int i = 0; i < 4; ++i) samples.emplace_back(Shape{1, 2, 4, 4}, data_rng.normal_vector(32));
  opt::calibrate_activations(g, samples);

  auto fsession = runtime::make_session(g);
  auto qsession = runtime::make_quantized_session(g);
  Tensor x(Shape{1, 2, 4, 4}, data_rng.normal_vector(32));
  const Tensor fy = fsession->run_single(x);
  const Tensor qy = qsession->run_single(x);
  EXPECT_LT(rmse(fy, qy), 0.25);
  (void)c;
}

TEST(QuantizedExecutor, UnsupportedOpRejectedAtRun) {
  Graph g("t");
  const NodeId in = g.add_input("x", Shape{1, 2, 2, 2});
  g.add(OpKind::kMish, "mish", {in});
  Rng rng(1);
  g.materialize_weights(rng);
  std::vector<Tensor> samples{Tensor(Shape{1, 2, 2, 2}, rng.normal_vector(8))};
  opt::calibrate_activations(g, samples);
  QuantizedExecutor qexec(g);
  EXPECT_THROW((void)qexec.run_single(Tensor(Shape{1, 2, 2, 2}, rng.normal_vector(8))),
               Unsupported);
}

// ---------------------------------------------------------------------------
// Parallel execution: integer kernels must be exactly deterministic
// ---------------------------------------------------------------------------

TEST(QuantizedExecutor, ResNet50ParallelBitwiseIdenticalToSerial) {
  Graph g = deploy_ready(zoo::resnet50(1, 10, 32), 41, Shape{1, 3, 32, 32});
  Rng data_rng(42);
  Tensor x(Shape{1, 3, 32, 32}, data_rng.normal_vector(3 * 32 * 32));

  QuantizedExecutor serial(g);
  const QTensor qs = serial.run_single(x);

  QuantizedExecutor mt(g);
  mt.set_threads(4);
  const QTensor qm = mt.run_single(x);

  EXPECT_EQ(qs.data, qm.data);  // int8 payloads: bitwise
  EXPECT_DOUBLE_EQ(qs.scale, qm.scale);
  // The saturation diagnostic is a per-chunk sum, also thread-invariant.
  EXPECT_EQ(serial.saturations(), mt.saturations());
}

TEST(QuantizedExecutor, GemmConvBitwiseMatchesDirectConv) {
  // Unlike the float path, int8 GEMM accumulates in int32 along exactly the
  // (ic, kh, kw) order of the direct loop: integer addition is associative,
  // so the two paths must agree bit for bit.
  Graph g = deploy_ready(zoo::micro_cnn("q8", 1, 3, 16, 5), 43, Shape{1, 3, 16, 16});
  Rng data_rng(44);
  Tensor x(Shape{1, 3, 16, 16}, data_rng.normal_vector(3 * 16 * 16));

  QuantizedExecutor gemm(g);
  gemm.set_use_gemm_conv(true);
  QuantizedExecutor direct(g);
  direct.set_use_gemm_conv(false);

  const QTensor a = gemm.run_single(x);
  const QTensor b = direct.run_single(x);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(gemm.saturations(), direct.saturations());
}

TEST(QuantizedSession, ThreadsOptionPreservesOutputs) {
  Graph g = deploy_ready(zoo::micro_cnn("qs", 2, 3, 16, 4), 45, Shape{2, 3, 16, 16});
  Rng data_rng(46);
  Tensor x(Shape{2, 3, 16, 16}, data_rng.normal_vector(2 * 3 * 16 * 16));

  auto serial = runtime::make_quantized_session(g, qs_threads(1));
  auto mt = runtime::make_quantized_session(g, qs_threads(4));
  const Tensor ys = serial->run_single(x);
  const Tensor ym = mt->run_single(x);
  ASSERT_EQ(ys.shape(), ym.shape());
  for (std::int64_t i = 0; i < ys.numel(); ++i) {
    EXPECT_EQ(ys.at(static_cast<std::size_t>(i)), ym.at(static_cast<std::size_t>(i)));
  }
}

}  // namespace
}  // namespace vedliot
