# Empty dependencies file for paeb_automotive.
# This may be replaced when dependencies are built.
