#include "core/autotune.hpp"

#include <limits>

#include "graph/cost.hpp"
#include "hw/perf_model.hpp"
#include "opt/prune.hpp"
#include "opt/quantize.hpp"
#include "runtime/session.hpp"
#include "util/error.hpp"

namespace vedliot::core {

std::string TuneOption::name() const {
  std::string out(dtype_name(dtype));
  if (channel_prune > 0) {
    out += "+prune" + std::to_string(static_cast<int>(channel_prune * 100)) + "%";
  }
  return out;
}

TuneResult autotune(const Graph& model, const hw::DeviceSpec& device, const TuneBudget& budget,
                    std::span<const Tensor> probes) {
  VEDLIOT_CHECK(model.weights_materialized(), "autotune requires materialized weights");
  VEDLIOT_CHECK(!probes.empty(), "autotune requires probe inputs");

  // FP32 reference outputs.
  std::vector<Tensor> references;
  {
    Graph ref = model.clone();
    const auto session = runtime::make_session(ref, {});
    for (const Tensor& p : probes) references.push_back(session->run_single(p));
  }

  std::vector<TuneOption> options;
  for (DType dt : {DType::kFP32, DType::kFP16, DType::kINT8}) {
    if (!device.supports(dt)) continue;
    for (double prune : {0.0, 0.25, 0.5}) options.push_back({dt, prune});
  }
  VEDLIOT_CHECK(!options.empty(), device.name + " supports none of fp32/fp16/int8");

  TuneResult result;
  double best_energy = std::numeric_limits<double>::infinity();
  for (const TuneOption& option : options) {
    Graph candidate = model.clone();
    if (option.channel_prune > 0) {
      opt::ChannelPrunePass pass(option.channel_prune);
      pass.run(candidate);
    }
    if (option.dtype == DType::kINT8) {
      opt::QuantizeWeightsPass pass(DType::kINT8);
      pass.run(candidate);
    } else if (option.dtype == DType::kFP16) {
      opt::Fp16CastPass pass;
      pass.run(candidate);
    }

    TunePoint point;
    point.option = option;

    // Accuracy proxy: really execute the transformed model.
    const auto session = runtime::make_session(candidate, {});
    double rmse_sum = 0;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      rmse_sum += rmse(session->run_single(probes[i]), references[i]);
    }
    point.output_rmse = rmse_sum / static_cast<double>(probes.size());

    // Hardware metrics: structured pruning credits effective MACs, the
    // precision sets the compute roof and the traffic, both through the
    // device model.
    const double eff_ops = 2.0 * static_cast<double>(opt::effective_macs(candidate));
    const double keep = 1.0 - option.channel_prune;
    const double traffic = graph_traffic_bytes_with_locality(
                               candidate, option.dtype, option.dtype,
                               device.onchip_mib * 1024 * 1024) *
                           keep;
    const double wbytes = weight_bytes(candidate, option.dtype) * keep;
    const auto estimate =
        hw::estimate_workload(device, eff_ops, traffic, wbytes, 1, option.dtype);
    point.latency_s = estimate.latency_s;
    point.energy_per_inference_j = estimate.energy_per_inference_j;
    point.meets_latency = point.latency_s <= budget.latency_s;
    point.meets_quality = point.output_rmse <= budget.max_output_rmse;

    if (point.meets_latency && point.meets_quality &&
        point.energy_per_inference_j < best_energy) {
      best_energy = point.energy_per_inference_j;
      result.best = point;
      result.feasible = true;
    }
    result.points.push_back(point);
  }
  return result;
}

}  // namespace vedliot::core
