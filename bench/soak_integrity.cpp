// Memory-fault soak driver for the silent-data-corruption defense
// (serve/integrity_soak.hpp): sweep the seeded soak over SEU flip rates
// {0, low, high}, check the four integrity invariants (bounded detection,
// no unchecked delivery, bounded recovery, bad OTA never sticks) plus the
// observability mirror, and re-run the highest rate to prove bitwise
// determinism (identical to_json). Prints a human summary table on stderr
// and one JSON-lines record per rate on stdout (scripts/soak_integrity.sh
// redirects those into BENCH_integrity.json).
//
// Usage: soak_integrity [--seed N] [--duration S] [--arrival-hz H] [--quick]
// Exit status 1 when any invariant is violated or determinism breaks.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/integrity_soak.hpp"

namespace {

using vedliot::serve::IntegritySoakConfig;
using vedliot::serve::IntegritySoakResult;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--duration S] [--arrival-hz H] [--quick]\n", argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  IntegritySoakConfig base;
  base.seed = 0x5EEDu;
  base.duration_s = 2.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed") {
      base.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--duration") {
      base.duration_s = std::strtod(next(), nullptr);
    } else if (arg == "--arrival-hz") {
      base.arrival_hz = std::strtod(next(), nullptr);
    } else if (arg == "--quick") {
      base.duration_s = 1.0;
      base.arrival_hz = 200.0;
    } else {
      usage(argv[0]);
    }
  }

  const std::vector<double> rates = {0.0, 4.0, 12.0};
  std::vector<IntegritySoakResult> sweep;
  bool ok = true;

  std::fprintf(stderr, "integrity soak: seed=0x%llx duration=%.2fs arrival=%.0f Hz\n",
               static_cast<unsigned long long>(base.seed), base.duration_s, base.arrival_hz);
  std::fprintf(stderr, "%-8s %8s %9s %6s %6s %7s %7s %5s %9s %9s\n", "flips/s", "offered",
               "completed", "seu", "scrub", "reload", "ota-rb", "rej", "det-max", "bound");
  for (const double rate : rates) {
    IntegritySoakConfig cfg = base;
    cfg.flip_rate_hz = rate;
    IntegritySoakResult r = vedliot::serve::run_integrity_soak(cfg);
    std::fprintf(stderr, "%-8.1f %8zu %9zu %6zu %6zu %7zu %7zu %5zu %8.4fs %8.4fs\n", rate,
                 r.report.offered, r.report.completed, r.report.memory_faults,
                 r.report.scrub_hits, r.report.model_reloads, r.report.ota_rolled_back,
                 r.report.ota_rejected, r.max_detection_s, r.detection_bound_s);
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "  INVARIANT VIOLATION: %s\n", v.c_str());
      ok = false;
    }
    std::printf("%s\n", r.to_json().c_str());
    sweep.push_back(std::move(r));
  }

  // Determinism: the same seed must reproduce the most fault-heavy run bit
  // for bit — detection, repair and rollback are all replayable.
  IntegritySoakConfig again = base;
  again.flip_rate_hz = rates.back();
  const IntegritySoakResult rerun = vedliot::serve::run_integrity_soak(again);
  if (rerun.to_json() != sweep.back().to_json()) {
    std::fprintf(stderr, "  INVARIANT VIOLATION: re-run of seed 0x%llx diverged [%s]\n",
                 static_cast<unsigned long long>(base.seed), rerun.sim_describe.c_str());
    ok = false;
  }

  std::fprintf(stderr, ok ? "integrity soak OK: all invariants hold\n"
                          : "integrity soak FAILED\n");
  return ok ? 0 : 1;
}
