# CMake generated Testfile for 
# Source directory: /root/repo/src/kenning
# Build directory: /root/repo/build/src/kenning
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
