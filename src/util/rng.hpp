#pragma once
/// \file rng.hpp
/// \brief Deterministic random number generation.
///
/// All stochastic behaviour in the project (synthetic workloads, fault
/// injection, weight initialisation) flows through Rng so that every test,
/// example and benchmark is reproducible from a single seed.

#include <cstdint>
#include <random>
#include <vector>

namespace vedliot {

/// Seeded Mersenne-Twister wrapper with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDu) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal with given mean/stddev.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Largest exponent backoff_s feeds into 2^attempt. Attempt counters on
  /// long soaks are caller-controlled and can grow without bound; clamping
  /// here keeps the ceiling finite instead of overflowing to +inf.
  static constexpr int kMaxBackoffExponent = 63;

  /// Exponential backoff with full jitter (the classic retry policy):
  /// uniform in [floor, min(cap_s, base_s * 2^attempt)]. \p attempt counts
  /// from 0 for the first retry; it is clamped to
  /// [0, kMaxBackoffExponent] so arbitrarily large (or negative) attempt
  /// counts still produce a well-defined, capped wait.
  ///
  /// \p floor_s is the configurable minimum wait: pure full jitter can
  /// draw ~0 s, which collapses the backoff into a hot retry loop exactly
  /// when a congested link needs breathing room. The floor is clamped to
  /// the current ceiling, so a floor above the cap degenerates to a fixed
  /// cap-length wait rather than an inverted interval. The default (0)
  /// preserves the classic policy for callers that want it.
  double backoff_s(double base_s, double cap_s, int attempt, double floor_s = 0.0);

  /// \p value scaled by a uniform factor in [1 - frac, 1 + frac].
  double jittered(double value, double frac);

  /// Vector of n normal samples.
  std::vector<float> normal_vector(std::size_t n, double mean = 0.0, double stddev = 1.0);

  /// Vector of n uniform samples in [lo, hi).
  std::vector<float> uniform_vector(std::size_t n, double lo = 0.0, double hi = 1.0);

  /// Access the raw engine (for std::shuffle etc.).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vedliot
