// T-CODESIGN — ablation of the four accelerator classes (Sec. II-B):
// (1) off-the-shelf, (2) statically configured, (3) dynamically
// reconfigurable, (4) fully simultaneous co-design — including the paper's
// observation that "no single accelerator can provide a better match to
// different models", which motivates classes (3) and (4).

#include <iostream>

#include "bench_common.hpp"
#include "graph/cost.hpp"
#include "graph/zoo.hpp"
#include "hw/accel.hpp"
#include "util/table.hpp"

using namespace vedliot;
using namespace vedliot::hw;

void print_artifact() {
  bench::banner("T-CODESIGN", "four accelerator classes on two different models");

  Graph resnet = zoo::resnet50();
  Graph mnv3 = zoo::mobilenet_v3_large();

  OffTheShelfAccelerator off(find_device("ZynqZU15"));
  StaticConfigAccelerator stat_resnet(find_device("ZynqZU15"), "resnet50");
  ReconfigurableAccelerator reconfig(
      find_device("ZynqZU15"),
      {{"wide-conv", 1.0, 1.0, 12.0}, {"dw-friendly", 0.85, 0.7, 10.0}});

  Table t({"accelerator class", "resnet50 ms", "mnv3 ms", "resnet50 mJ", "mnv3 mJ"});
  auto row = [&](const std::string& name, const Accelerator& acc) {
    const auto er = acc.estimate_graph(resnet, DType::kINT8);
    const auto em = acc.estimate_graph(mnv3, DType::kINT8);
    t.add_row({name, fmt_fixed(er.latency_s * 1e3, 2), fmt_fixed(em.latency_s * 1e3, 2),
               fmt_fixed(er.energy_per_inference_j * 1e3, 1),
               fmt_fixed(em.energy_per_inference_j * 1e3, 1)});
  };
  row("(1) off-the-shelf DPU", off);
  row("(2) static, tuned for resnet50", stat_resnet);
  reconfig.reconfigure("wide-conv");
  row("(3) reconfigurable @wide-conv", reconfig);
  reconfig.reconfigure("dw-friendly");
  row("(3) reconfigurable @dw-friendly", reconfig);
  t.print(std::cout);
  bench::note("shape: the statically configured fabric wins on its target model and loses");
  bench::note("elsewhere — 'no single accelerator provides a better match to different models'.");

  // (4) full co-design: search the fabric for each model independently.
  std::printf("\n(4) simultaneous co-design search (2048-MAC fabric):\n\n");
  FabricBudget budget;
  budget.max_macs = 2048;
  Table cd({"model", "best PE array", "sram MiB", "PE utilization", "latency ms", "energy mJ"});
  for (auto* entry : {&resnet, &mnv3}) {
    const auto points = codesign_search(*entry, budget);
    const auto& best = points.front();  // sorted by energy
    cd.add_row({entry->name(),
                std::to_string(best.pe_rows) + "x" + std::to_string(best.pe_cols),
                fmt_fixed(best.sram_mib, 0), fmt_percent(best.mean_pe_utilization),
                fmt_fixed(best.latency_s * 1e3, 2), fmt_fixed(best.energy_j * 1e3, 1)});
  }
  cd.print(std::cout);
  bench::note("the searches pick different array geometries per model — the hardware");
  bench::note("follows the layer mix (dw-heavy nets prefer narrow input-channel tiling).");

  // Model feedback ablation: channel rounding on a misaligned model.
  Graph odd = zoo::micro_cnn("odd-width-17", 1, 3, 32, 10, 17);
  Graph rounded = apply_channel_rounding(odd, 16);
  std::printf("\nmodel feedback: tiling efficiency on a 16x16 array, odd-width net:\n");
  std::printf("  before rounding: %.1f%%   after rounding to multiples of 16: %.1f%%\n",
              100 * array_tiling_efficiency(odd, 16, 16),
              100 * array_tiling_efficiency(rounded, 16, 16));
  std::printf("  MACs grow %.2fx; the extra MACs are useful width, not idle PE slots\n",
              static_cast<double>(graph_cost(rounded).macs) /
                  static_cast<double>(graph_cost(odd).macs));
}

static void BM_CodesignSearch(benchmark::State& state) {
  Graph g = zoo::mobilenet_v3_large();
  FabricBudget budget;
  for (auto _ : state) {
    auto points = codesign_search(g, budget);
    benchmark::DoNotOptimize(points);
  }
}
BENCHMARK(BM_CodesignSearch)->Unit(benchmark::kMillisecond);

static void BM_TilingEfficiency(benchmark::State& state) {
  Graph g = zoo::yolov4();
  for (auto _ : state) {
    benchmark::DoNotOptimize(array_tiling_efficiency(g, 16, 16));
  }
}
BENCHMARK(BM_TilingEfficiency)->Unit(benchmark::kMicrosecond);

VEDLIOT_BENCH_MAIN()
