// Toolchain tour (Sec. III end to end): every stage of the optimizing
// toolchain on one small model, finishing with a sealed deployment bundle.
//
//   1. Build + "train" (materialize) a classifier.
//   2. Fold BatchNorm, fuse activations.
//   3. Prune (structured + unstructured) and measure the accuracy proxy.
//   4. Deep-compress for storage; report the ratio.
//   5. Calibrate activations, run the TRUE INTEGER int8 executor and
//      compare against the float reference.
//   6. Pack the model and seal it to a provisioned device key.
//
// Build & run:  ./build/examples/toolchain_tour

#include <cstdio>

#include "graph/cost.hpp"
#include "graph/package.hpp"
#include "graph/zoo.hpp"
#include "opt/compress.hpp"
#include "opt/fusion.hpp"
#include "opt/prune.hpp"
#include "opt/quantize.hpp"
#include "runtime/session.hpp"
#include "security/attestation.hpp"
#include "util/rng.hpp"

using namespace vedliot;

int main() {
  std::printf("VEDLIoT toolchain tour\n======================\n\n");

  // 1. Model.
  Graph model = zoo::micro_cnn("edge-classifier", 1, 1, 24, 6);
  Rng rng(2022);
  model.materialize_weights(rng);
  const auto cost0 = graph_cost(model);
  std::printf("1. model: %lld params, %.1f MMACs, %zu nodes\n",
              static_cast<long long>(cost0.params), static_cast<double>(cost0.macs) / 1e6,
              model.size());

  Rng data_rng(7);
  const Shape in_shape{1, 1, 24, 24};
  Tensor probe(in_shape, data_rng.normal_vector(static_cast<std::size_t>(in_shape.numel())));
  // The graph mutates between stages, so each measurement opens a fresh
  // session on its current state.
  const auto run_float = [](const Graph& g, const Tensor& x) {
    return runtime::make_session(g)->run_single(x);
  };
  const Tensor reference = run_float(model, probe);

  // 2. Fusion.
  opt::PassManager pm;
  pm.add(std::make_unique<opt::FuseBatchNormPass>());
  pm.add(std::make_unique<opt::FuseActivationPass>());
  for (const auto& r : pm.run(model)) std::printf("2. %s: %s\n", r.pass_name.c_str(), r.detail.c_str());
  std::printf("   nodes after fusion: %zu, output drift %.2e\n", model.size(),
              max_abs_diff(reference, run_float(model, probe)));

  // 3. Pruning.
  opt::MagnitudePrunePass prune(0.6);
  prune.run(model);
  std::printf("3. 60%% magnitude pruning -> sparsity %.1f%%, output drift %.3f\n",
              opt::graph_sparsity(model) * 100,
              max_abs_diff(reference, run_float(model, probe)));

  // 4. Storage compression (on a copy; deployment keeps dense weights).
  Graph storage = model.clone();
  const auto comp = opt::deep_compress(storage);
  std::printf("4. deep compression for storage: %.1fx (%.0f kb -> %.0f kb)\n", comp.ratio(),
              comp.original_bits / 8e3, comp.compressed_bits / 8e3);

  // 5. Integer deployment path.
  std::vector<Tensor> calib;
  for (int i = 0; i < 16; ++i) {
    calib.emplace_back(in_shape, data_rng.normal_vector(static_cast<std::size_t>(in_shape.numel())));
  }
  opt::calibrate_activations(model, calib, Calibration::kMinMax);
  auto qsession = runtime::make_quantized_session(model);
  const runtime::RunResult qr =
      qsession->run({{model.node(model.inputs().front()).name, probe}});
  std::printf("5. int8 integer executor: output drift vs float %.3f (saturations: %llu)\n",
              max_abs_diff(run_float(model, probe), qr.single()),
              static_cast<unsigned long long>(qr.saturations));

  // 6. Deployment bundle.
  security::Key root{};
  root[0] = 0x42;
  security::AttestationAuthority authority(root);
  const auto device_key = authority.provision("factory-gateway-1");
  const SealedModel bundle = seal_model(model, device_key, /*version=*/3);
  std::printf("6. sealed deployment bundle: %zu bytes, measurement %s...\n",
              bundle.ciphertext.size(),
              security::to_hex(std::span<const std::uint8_t>(bundle.model_measurement.data(), 8))
                  .c_str());

  // The target device unseals and serves identical results.
  Graph deployed = unseal_model(bundle, device_key);
  const float diff = max_abs_diff(run_float(model, probe), run_float(deployed, probe));
  std::printf("   device-side unseal: outputs identical to shipped model: %s\n",
              diff == 0.0f ? "yes" : "NO");
  return 0;
}
