#pragma once
/// \file autotune.hpp
/// \brief Hardware-aware model optimization search (Sec. III: "novel
/// methods for hardware-aware optimization are developed ... Utilizing the
/// knowledge of the target hardware leads to optimizations that translate
/// to improved execution metrics when deployed").
///
/// Explores (precision x structured-pruning) configurations for a specific
/// target device: latency/energy come from the device model (so a
/// transformation the hardware cannot exploit earns nothing), accuracy
/// impact is measured by really executing the transformed model against
/// the FP32 reference on probe inputs.

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "hw/device.hpp"

namespace vedliot::core {

struct TuneOption {
  DType dtype = DType::kFP32;
  double channel_prune = 0.0;  ///< structured pruning fraction

  std::string name() const;
};

struct TunePoint {
  TuneOption option;
  double latency_s = 0;
  double energy_per_inference_j = 0;
  double output_rmse = 0;      ///< vs the FP32 reference (softmax scale)
  bool meets_latency = false;
  bool meets_quality = false;
};

struct TuneResult {
  std::vector<TunePoint> points;  ///< every evaluated configuration
  TunePoint best;                 ///< min energy among feasible points
  bool feasible = false;
};

struct TuneBudget {
  double latency_s = 0.1;
  double max_output_rmse = 0.05;  ///< quality floor (softmax-output scale)
};

/// Evaluate the option grid (device-supported precisions x prune levels
/// {0, 0.25, 0.5}) for \p model on \p device. The model must be
/// weights-materialized; it is not modified (each option works on a clone).
/// \p probes are sample inputs for the accuracy proxy (>= 1 required).
TuneResult autotune(const Graph& model, const hw::DeviceSpec& device, const TuneBudget& budget,
                    std::span<const Tensor> probes);

}  // namespace vedliot::core
