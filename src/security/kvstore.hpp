#pragma once
/// \file kvstore.hpp
/// \brief Embedded key-value store workload for the Twine reproduction.
///
/// Ref [17] runs SQLite natively, inside a WASM runtime, and inside
/// WASM + SGX, and reports small overheads. We reproduce the *mechanics*
/// with an embedded KV store (open-addressing hash table): the identical
/// data structure implemented (a) in C++ and (b) in the sandbox bytecode
/// operating on linear memory, so the native / VM / VM+enclave ratios come
/// from real interpreted execution, not from assumed constants.

#include <cstdint>
#include <optional>

#include "security/wasm.hpp"

namespace vedliot::security {

/// Native reference: open-addressing (linear probing) u32 -> i32 table with
/// the same slot layout the bytecode uses (12 bytes: state, key, value).
class NativeKvStore {
 public:
  explicit NativeKvStore(std::uint32_t capacity);

  /// Insert or update; returns false when the table is full.
  bool put(std::uint32_t key, std::int32_t value);

  /// Lookup; nullopt when absent.
  std::optional<std::int32_t> get(std::uint32_t key) const;

  /// Full scan: sum of all stored values (the "aggregate query").
  std::int64_t sum() const;

  std::uint32_t size() const { return size_; }
  std::uint32_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::uint32_t state = 0;
    std::uint32_t key = 0;
    std::int32_t value = 0;
  };
  std::uint32_t capacity_;
  std::uint32_t size_ = 0;
  std::vector<Slot> slots_;
};

/// Build the bytecode module implementing the same table in linear memory.
/// Exports: kv_put(key, value) -> 1/0, kv_get(key) -> value or -1,
/// kv_sum() -> sum of values (i32 wrap-around semantics).
WModule build_kv_module(std::uint32_t capacity);

}  // namespace vedliot::security
