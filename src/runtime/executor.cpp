#include "runtime/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "runtime/instrument.hpp"

namespace vedliot {

namespace {

float apply_act(float x, OpKind kind, double alpha) {
  switch (kind) {
    case OpKind::kRelu: return x > 0.0f ? x : 0.0f;
    case OpKind::kRelu6: return std::clamp(x, 0.0f, 6.0f);
    case OpKind::kLeakyRelu: return x > 0.0f ? x : static_cast<float>(alpha) * x;
    case OpKind::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
    case OpKind::kHSigmoid: return std::clamp(x / 6.0f + 0.5f, 0.0f, 1.0f);
    case OpKind::kHSwish: return x * std::clamp(x / 6.0f + 0.5f, 0.0f, 1.0f);
    case OpKind::kTanh: return std::tanh(x);
    case OpKind::kMish: {
      const float sp = std::log1p(std::exp(x));  // softplus
      return x * std::tanh(sp);
    }
    default: return x;
  }
}

OpKind fused_act_kind(const Node& n) {
  const std::string name = n.attrs.get_str_or("fused_act", "");
  if (name.empty()) return OpKind::kIdentity;
  return parse_op(name);
}

Tensor conv2d(const Node& n, const Tensor& in, const Tensor& w, const Tensor* bias,
              const Shape& out_shape) {
  const auto stride = n.attrs.get_int_or("stride", 1);
  const auto pad = n.attrs.get_int_or("pad", 0);
  const auto groups = n.attrs.get_int_or("groups", 1);
  const auto k = n.attrs.get_int("kernel");

  Tensor out(out_shape);
  const auto N = out_shape.n(), OC = out_shape.c(), OH = out_shape.h(), OW = out_shape.w();
  const auto IC = in.shape().c(), IH = in.shape().h(), IW = in.shape().w();
  const auto icg = IC / groups;   // input channels per group
  const auto ocg = OC / groups;   // output channels per group

  for (std::int64_t b = 0; b < N; ++b) {
    for (std::int64_t oc = 0; oc < OC; ++oc) {
      const auto g = oc / ocg;
      for (std::int64_t oh = 0; oh < OH; ++oh) {
        for (std::int64_t ow = 0; ow < OW; ++ow) {
          double acc = bias ? bias->at(static_cast<std::size_t>(oc)) : 0.0;
          for (std::int64_t ic = 0; ic < icg; ++ic) {
            const auto in_c = g * icg + ic;
            for (std::int64_t kh = 0; kh < k; ++kh) {
              const auto ih = oh * stride - pad + kh;
              if (ih < 0 || ih >= IH) continue;
              for (std::int64_t kw = 0; kw < k; ++kw) {
                const auto iw = ow * stride - pad + kw;
                if (iw < 0 || iw >= IW) continue;
                acc += static_cast<double>(in.at4(b, in_c, ih, iw)) *
                       static_cast<double>(w.at4(oc, ic, kh, kw));
              }
            }
          }
          out.at4(b, oc, oh, ow) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor dense(const Tensor& in, const Tensor& w, const Tensor* bias, const Shape& out_shape) {
  Tensor out(out_shape);
  const auto N = in.shape().dim(0);
  const auto F = in.shape().dim(1);
  const auto U = out_shape.dim(1);
  for (std::int64_t b = 0; b < N; ++b) {
    for (std::int64_t u = 0; u < U; ++u) {
      double acc = bias ? bias->at(static_cast<std::size_t>(u)) : 0.0;
      for (std::int64_t f = 0; f < F; ++f) {
        acc += static_cast<double>(in.at(static_cast<std::size_t>(b * F + f))) *
               static_cast<double>(w.at(static_cast<std::size_t>(u * F + f)));
      }
      out.at(static_cast<std::size_t>(b * U + u)) = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor batchnorm(const Node& n, const Tensor& in) {
  if (n.weights.size() != 4) throw ExecError("BatchNorm " + n.name + " needs 4 weight tensors");
  const auto& gamma = n.weights[0];
  const auto& beta = n.weights[1];
  const auto& mean = n.weights[2];
  const auto& var = n.weights[3];
  const double eps = n.attrs.get_float_or("epsilon", 1e-5);

  Tensor out(in.shape());
  const auto& s = in.shape();
  const std::int64_t C = s.rank() == 4 ? s.c() : s.dim(1);
  const std::int64_t spatial = s.rank() == 4 ? s.h() * s.w() : 1;
  const std::int64_t N = s.dim(0);
  for (std::int64_t b = 0; b < N; ++b) {
    for (std::int64_t c = 0; c < C; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      const float scale = static_cast<float>(gamma.at(ci) / std::sqrt(var.at(ci) + eps));
      const float shift = static_cast<float>(beta.at(ci) - mean.at(ci) * scale);
      for (std::int64_t i = 0; i < spatial; ++i) {
        const auto idx = static_cast<std::size_t>((b * C + c) * spatial + i);
        out.at(idx) = in.at(idx) * scale + shift;
      }
    }
  }
  return out;
}

Tensor elementwise(const Node& n, const Tensor& a, const Tensor& b, const Shape& out_shape) {
  const bool mul = n.kind == OpKind::kMul;
  Tensor out(out_shape);
  if (a.shape() == b.shape()) {
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      out.at(idx) = mul ? a.at(idx) * b.at(idx) : a.at(idx) + b.at(idx);
    }
    return out;
  }
  // channelwise broadcast: one side is [N,C,1,1]
  const Tensor& big = a.numel() >= b.numel() ? a : b;
  const Tensor& vec = a.numel() >= b.numel() ? b : a;
  const auto& s = big.shape();
  for (std::int64_t bn = 0; bn < s.n(); ++bn) {
    for (std::int64_t c = 0; c < s.c(); ++c) {
      const float v = vec.at4(bn, c, 0, 0);
      for (std::int64_t h = 0; h < s.h(); ++h) {
        for (std::int64_t w = 0; w < s.w(); ++w) {
          const float x = big.at4(bn, c, h, w);
          out.at4(bn, c, h, w) = mul ? x * v : x + v;
        }
      }
    }
  }
  return out;
}

Tensor pool(const Node& n, const Tensor& in, const Shape& out_shape) {
  const bool is_max = n.kind == OpKind::kMaxPool;
  const auto k = n.attrs.get_int("kernel");
  const auto stride = n.attrs.get_int_or("stride", k);
  const auto pad = n.attrs.get_int_or("pad", 0);
  Tensor out(out_shape);
  const auto& s = in.shape();
  for (std::int64_t b = 0; b < out_shape.n(); ++b) {
    for (std::int64_t c = 0; c < out_shape.c(); ++c) {
      for (std::int64_t oh = 0; oh < out_shape.h(); ++oh) {
        for (std::int64_t ow = 0; ow < out_shape.w(); ++ow) {
          double acc = is_max ? -std::numeric_limits<double>::infinity() : 0.0;
          std::int64_t count = 0;
          for (std::int64_t kh = 0; kh < k; ++kh) {
            const auto ih = oh * stride - pad + kh;
            if (ih < 0 || ih >= s.h()) continue;
            for (std::int64_t kw = 0; kw < k; ++kw) {
              const auto iw = ow * stride - pad + kw;
              if (iw < 0 || iw >= s.w()) continue;
              const double v = in.at4(b, c, ih, iw);
              if (is_max) {
                acc = std::max(acc, v);
              } else {
                acc += v;
              }
              ++count;
            }
          }
          out.at4(b, c, oh, ow) =
              static_cast<float>(is_max ? acc : (count > 0 ? acc / static_cast<double>(count) : 0.0));
        }
      }
    }
  }
  return out;
}

Tensor softmax(const Tensor& in) {
  Tensor out(in.shape());
  const auto& s = in.shape();
  const std::int64_t N = s.dim(0);
  const std::int64_t F = in.numel() / N;
  for (std::int64_t b = 0; b < N; ++b) {
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t f = 0; f < F; ++f) mx = std::max(mx, in.at(static_cast<std::size_t>(b * F + f)));
    double sum = 0.0;
    for (std::int64_t f = 0; f < F; ++f) {
      const double e = std::exp(static_cast<double>(in.at(static_cast<std::size_t>(b * F + f)) - mx));
      out.at(static_cast<std::size_t>(b * F + f)) = static_cast<float>(e);
      sum += e;
    }
    for (std::int64_t f = 0; f < F; ++f) {
      auto& v = out.at(static_cast<std::size_t>(b * F + f));
      v = static_cast<float>(v / sum);
    }
  }
  return out;
}

}  // namespace

Executor::Executor(const Graph& graph) : graph_(graph) {
  if (!graph_.weights_materialized()) {
    throw ExecError("graph " + graph.name() + " has unmaterialized weights; call materialize_weights()");
  }
}

void Executor::instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

std::map<std::string, Tensor> Executor::run(const std::map<std::string, Tensor>& feeds) {
  values_.clear();
  nodes_executed_ = 0;

  obs::ScopedSpan run_span;
  if (tracer_ != nullptr) {
    run_span = tracer_->span("session.run", "vedliot.runtime");
    run_span.attr("graph", graph_.name());
    run_span.attr("backend", "float-reference");
  }

  for (NodeId id : graph_.topo_order()) {
    const Node& n = graph_.node(id);
    if (n.kind == OpKind::kInput) {
      auto it = feeds.find(n.name);
      if (it == feeds.end()) throw ExecError("missing feed for input '" + n.name + "'");
      if (it->second.shape() != n.out_shape) {
        throw ExecError("feed shape mismatch for '" + n.name + "': expected " +
                        n.out_shape.to_string() + " got " + it->second.shape().to_string());
      }
      values_[id] = it->second;
      continue;
    }
    std::vector<const Tensor*> ins;
    ins.reserve(n.inputs.size());
    for (NodeId in : n.inputs) ins.push_back(&values_.at(in));

    obs::ScopedSpan node_span;
    if (tracer_ != nullptr) {
      node_span = tracer_->span(n.name, std::string(op_name(n.kind)));
    }
    const bool timed = profiling_ || metrics_ != nullptr;
    if (timed) {
      const auto t0 = std::chrono::steady_clock::now();
      values_[id] = execute_node(n, ins);
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds = std::chrono::duration<double>(t1 - t0).count();
      if (profiling_) {
        auto& entry = profile_[n.kind];
        ++entry.invocations;
        entry.total_seconds += seconds;
      }
      if (metrics_ != nullptr) {
        runtime_detail::op_histogram(*metrics_, n.kind).add(seconds * 1e6);
      }
    } else {
      values_[id] = execute_node(n, ins);
    }
    if (tracer_ != nullptr) {
      node_span.attr("out_elems", static_cast<double>(n.out_shape.numel()));
      node_span.close();
    }
    ++nodes_executed_;
  }

  std::map<std::string, Tensor> outs;
  for (NodeId id : graph_.outputs()) outs[graph_.node(id).name] = values_.at(id);

  if (metrics_ != nullptr) {
    metrics_->counter(runtime_detail::kRunsCounter).inc();
    metrics_->counter(runtime_detail::kNodesCounter).inc(nodes_executed_);
  }
  if (tracer_ != nullptr) {
    run_span.attr("nodes_executed", static_cast<double>(nodes_executed_));
    run_span.close();
  }
  if (!keep_activations_) values_.clear();
  return outs;
}

Tensor Executor::run_single(const Tensor& input) {
  const auto ins = graph_.inputs();
  VEDLIOT_CHECK(ins.size() == 1, "run_single requires exactly one graph input");
  auto outs = run({{graph_.node(ins.front()).name, input}});
  VEDLIOT_CHECK(outs.size() == 1, "run_single requires exactly one graph output");
  return outs.begin()->second;
}

std::vector<std::pair<OpKind, Executor::OpProfile>> Executor::hotspots(std::size_t top_n) const {
  std::vector<std::pair<OpKind, OpProfile>> out(profile_.begin(), profile_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

const Tensor& Executor::activation(const std::string& node_name) const {
  for (const auto& [id, t] : values_) {
    if (graph_.node(id).name == node_name) return t;
  }
  throw NotFound("no recorded activation for node " + node_name);
}

Tensor Executor::execute_node(const Node& n, const std::vector<const Tensor*>& ins) const {
  Tensor out;
  switch (n.kind) {
    case OpKind::kConv2d: {
      if (n.weights.empty()) throw ExecError("Conv2d " + n.name + " has no weights");
      const Tensor* bias = n.weights.size() > 1 ? &n.weights[1] : nullptr;
      out = conv2d(n, *ins.at(0), n.weights[0], bias, n.out_shape);
      break;
    }
    case OpKind::kDense: {
      if (n.weights.empty()) throw ExecError("Dense " + n.name + " has no weights");
      const Tensor* bias = n.weights.size() > 1 ? &n.weights[1] : nullptr;
      out = dense(*ins.at(0), n.weights[0], bias, n.out_shape);
      break;
    }
    case OpKind::kBatchNorm:
      out = batchnorm(n, *ins.at(0));
      break;
    case OpKind::kRelu:
    case OpKind::kRelu6:
    case OpKind::kLeakyRelu:
    case OpKind::kSigmoid:
    case OpKind::kHSigmoid:
    case OpKind::kHSwish:
    case OpKind::kMish:
    case OpKind::kTanh: {
      out = *ins.at(0);
      const double alpha = n.attrs.get_float_or("alpha", 0.01);
      for (float& v : out.data()) v = apply_act(v, n.kind, alpha);
      break;
    }
    case OpKind::kAdd:
    case OpKind::kMul:
      out = elementwise(n, *ins.at(0), *ins.at(1), n.out_shape);
      break;
    case OpKind::kConcat: {
      // axis-1 (channel) concatenation for rank-4, axis-1 for rank-2.
      out = Tensor(n.out_shape);
      const auto& os = n.out_shape;
      if (os.rank() == 4) {
        std::int64_t c_off = 0;
        for (const Tensor* t : ins) {
          const auto& s = t->shape();
          for (std::int64_t b = 0; b < s.n(); ++b)
            for (std::int64_t c = 0; c < s.c(); ++c)
              for (std::int64_t h = 0; h < s.h(); ++h)
                for (std::int64_t w = 0; w < s.w(); ++w)
                  out.at4(b, c_off + c, h, w) = t->at4(b, c, h, w);
          c_off += s.c();
        }
      } else {
        std::int64_t f_off = 0;
        const auto F = os.dim(1);
        for (const Tensor* t : ins) {
          const auto& s = t->shape();
          for (std::int64_t b = 0; b < s.dim(0); ++b)
            for (std::int64_t f = 0; f < s.dim(1); ++f)
              out.at(static_cast<std::size_t>(b * F + f_off + f)) =
                  t->at(static_cast<std::size_t>(b * s.dim(1) + f));
          f_off += s.dim(1);
        }
      }
      break;
    }
    case OpKind::kMaxPool:
    case OpKind::kAvgPool:
      out = pool(n, *ins.at(0), n.out_shape);
      break;
    case OpKind::kGlobalAvgPool: {
      out = Tensor(n.out_shape);
      const auto& s = ins.at(0)->shape();
      const double denom = static_cast<double>(s.h() * s.w());
      for (std::int64_t b = 0; b < s.n(); ++b) {
        for (std::int64_t c = 0; c < s.c(); ++c) {
          double acc = 0.0;
          for (std::int64_t h = 0; h < s.h(); ++h)
            for (std::int64_t w = 0; w < s.w(); ++w) acc += ins.at(0)->at4(b, c, h, w);
          out.at4(b, c, 0, 0) = static_cast<float>(acc / denom);
        }
      }
      break;
    }
    case OpKind::kUpsample: {
      out = Tensor(n.out_shape);
      const auto scale = n.attrs.get_int("scale");
      const auto& os = n.out_shape;
      for (std::int64_t b = 0; b < os.n(); ++b)
        for (std::int64_t c = 0; c < os.c(); ++c)
          for (std::int64_t h = 0; h < os.h(); ++h)
            for (std::int64_t w = 0; w < os.w(); ++w)
              out.at4(b, c, h, w) = ins.at(0)->at4(b, c, h / scale, w / scale);
      break;
    }
    case OpKind::kFlatten:
      out = Tensor(n.out_shape, std::vector<float>(ins.at(0)->data().begin(), ins.at(0)->data().end()));
      break;
    case OpKind::kSoftmax:
      out = softmax(*ins.at(0));
      break;
    case OpKind::kIdentity:
      out = *ins.at(0);
      break;
    case OpKind::kInput:
      throw ExecError("Input node reached execute_node");
  }

  // Fused activation (set by the fusion pass on conv/dense nodes).
  if (n.kind == OpKind::kConv2d || n.kind == OpKind::kDense) {
    const OpKind fa = fused_act_kind(n);
    if (fa != OpKind::kIdentity) {
      const double alpha = n.attrs.get_float_or("fused_alpha", 0.01);
      for (float& v : out.data()) v = apply_act(v, fa, alpha);
    }
  }
  return out;
}

}  // namespace vedliot
