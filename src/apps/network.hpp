#pragma once
/// \file network.hpp
/// \brief Mobile network model for the automotive offload use case
/// (Sec. V-A): bandwidth/latency vary with conditions; the offload manager
/// must "quickly monitor available mobile networks, their speed and
/// latency" — so the model exposes both the true state and a sampled,
/// slightly stale estimate like a real probe would see.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace vedliot::apps {

/// One instantaneous link condition.
struct LinkState {
  double bandwidth_mbps = 10.0;  ///< uplink
  double rtt_ms = 50.0;
  double loss = 0.0;             ///< packet loss probability
};

/// Named coverage scenarios.
enum class Coverage { kGood5G, kUrban4G, kSuburban4G, kRural3G, kDeadZone };

std::string_view coverage_name(Coverage c);
LinkState nominal_state(Coverage c);

/// Markov-modulated link: wanders around the nominal state, occasionally
/// dropping a tier (handover/shadowing events).
class MobileNetwork {
 public:
  MobileNetwork(Coverage coverage, std::uint64_t seed);

  /// Advance time by dt and return the true state.
  const LinkState& step(double dt_s);

  const LinkState& state() const { return state_; }
  Coverage coverage() const { return coverage_; }

  /// What a monitoring probe measures: the state convolved with measurement
  /// noise (the decision logic never sees ground truth).
  LinkState probe();

  /// Expected time to push `payload_bytes` up and get `response_bytes`
  /// back, including retransmissions at the current loss rate.
  double transfer_time_s(double payload_bytes, double response_bytes) const;

 private:
  Coverage coverage_;
  LinkState state_;
  Rng rng_;
};

}  // namespace vedliot::apps
