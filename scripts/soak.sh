#!/usr/bin/env bash
# Long serving-layer chaos soak: the full-duration seeded sweep over fault
# rates {0, 0.05, 0.2}, with the JSON-lines records captured into
# BENCH_serve.json (one "soak-serve" object per rate; the human summary
# table stays on stderr). Exit status is soak_serve's: non-zero when any
# serving invariant is violated or bitwise determinism breaks.
#
# Usage: scripts/soak.sh [--seed N] [--duration S] [--arrival-hz H]
#   (defaults: seed 0x5EED, duration 2.0 s, arrival 7000 Hz)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_serve.json"

cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)" --target soak_serve > /dev/null

build/bench/soak_serve "$@" > "${OUT}"
echo "soak records written to ${OUT}" >&2
