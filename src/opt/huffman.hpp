#pragma once
/// \file huffman.hpp
/// \brief Canonical Huffman coding over small symbol alphabets.
///
/// Final stage of the deep-compression pipeline [Han et al., cited as [7] in
/// the paper]: cluster indices and sparse run lengths are highly skewed, so
/// entropy coding recovers another 20-40% of storage.

#include <cstdint>
#include <map>
#include <vector>

namespace vedliot::opt {

/// Bit-packed output stream.
class BitWriter {
 public:
  void put(std::uint32_t bits, int count);
  std::size_t bit_count() const { return bits_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}
  /// Read one bit; throws Error past the end.
  int get();
  std::size_t position() const { return pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

/// Huffman code table: symbol -> (code bits, code length).
struct HuffmanCode {
  std::uint32_t bits = 0;
  int length = 0;
};

class HuffmanCoder {
 public:
  /// Build from symbol frequencies (absent symbols are unrepresentable).
  explicit HuffmanCoder(const std::map<std::uint32_t, std::uint64_t>& freqs);

  /// Encode a symbol sequence; throws NotFound on unknown symbols.
  std::vector<std::uint8_t> encode(const std::vector<std::uint32_t>& symbols,
                                   std::size_t* bit_count = nullptr) const;

  /// Decode exactly n symbols.
  std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& bytes, std::size_t n) const;

  /// Total encoded size in bits for the given symbol histogram.
  std::uint64_t encoded_bits(const std::map<std::uint32_t, std::uint64_t>& freqs) const;

  const std::map<std::uint32_t, HuffmanCode>& table() const { return codes_; }

 private:
  struct TreeNode {
    std::int32_t left = -1, right = -1;
    std::uint32_t symbol = 0;
    bool leaf = false;
  };
  std::map<std::uint32_t, HuffmanCode> codes_;
  std::vector<TreeNode> tree_;
  std::int32_t root_ = -1;
};

}  // namespace vedliot::opt
