#include "runtime/qexecutor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "runtime/executor.hpp"
#include "runtime/instrument.hpp"
#include "util/error.hpp"

namespace vedliot {

namespace {

std::int8_t saturate_i8(double v, std::uint64_t& saturations) {
  const double r = std::nearbyint(v);
  if (r > 127.0) {
    ++saturations;
    return 127;
  }
  if (r < -128.0) {
    ++saturations;
    return -128;
  }
  return static_cast<std::int8_t>(r);
}

double act_scale_of(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  if (!n.attrs.has("act_scale")) {
    throw Unsupported("node " + n.name +
                      " has no act_scale — run opt::calibrate_activations first");
  }
  const double s = n.attrs.get_float("act_scale");
  return s > 0 ? s : 1e-9;
}

}  // namespace

Tensor QTensor::dequantize() const {
  Tensor t(shape);
  auto out = t.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = static_cast<float>(static_cast<double>(data[i]) * scale);
  }
  return t;
}

QTensor quantize_fixed(const Tensor& t, double scale) {
  QTensor q;
  q.shape = t.shape();
  q.scale = scale;
  q.data.resize(static_cast<std::size_t>(t.numel()));
  std::uint64_t dummy = 0;
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    q.data[i] = saturate_i8(static_cast<double>(t.data()[i]) / scale, dummy);
  }
  return q;
}

QuantizedExecutor::QuantizedExecutor(const Graph& graph) : graph_(graph) {
  VEDLIOT_CHECK(graph_.weights_materialized(),
                "QuantizedExecutor requires materialized weights");
  for (NodeId id : graph_.topo_order()) {
    const Node& n = graph_.node(id);
    if (n.kind == OpKind::kBatchNorm) {
      throw Unsupported("fold BatchNorm (opt::FuseBatchNormPass) before integer execution");
    }
    out_scale_[id] = act_scale_of(graph_, id);

    if ((n.kind != OpKind::kConv2d && n.kind != OpKind::kDense) || n.weights.empty()) continue;

    const double in_scale = out_scale_.at(n.inputs.at(0));
    const Tensor& w = n.weights[0];
    const auto oc = w.shape().dim(0);
    const auto per = static_cast<std::size_t>(w.numel() / oc);

    PreparedLayer layer;
    layer.weights.resize(static_cast<std::size_t>(w.numel()));
    layer.weight_scales.resize(static_cast<std::size_t>(oc));
    layer.bias.assign(static_cast<std::size_t>(oc), 0);

    for (std::int64_t c = 0; c < oc; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      auto chan = w.data().subspan(ci * per, per);
      double amax = 0;
      for (float v : chan) amax = std::max(amax, std::abs(static_cast<double>(v)));
      const double ws = amax > 0 ? amax / 127.0 : 1.0;
      layer.weight_scales[ci] = ws;
      std::uint64_t dummy = 0;
      for (std::size_t i = 0; i < per; ++i) {
        layer.weights[ci * per + i] = saturate_i8(chan[i] / ws, dummy);
      }
      if (n.weights.size() > 1) {
        layer.bias[ci] = static_cast<std::int32_t>(
            std::nearbyint(static_cast<double>(n.weights[1].at(ci)) / (in_scale * ws)));
      }
    }
    prepared_[id] = std::move(layer);
  }
}

std::int8_t QuantizedExecutor::requant(double acc_scaled) {
  return saturate_i8(acc_scaled, saturations_);
}

void QuantizedExecutor::instrument(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

QTensor QuantizedExecutor::run_single(const Tensor& input) {
  const auto ins = graph_.inputs();
  VEDLIOT_CHECK(ins.size() == 1, "run_single requires exactly one graph input");
  const auto outs = graph_.outputs();
  VEDLIOT_CHECK(outs.size() == 1, "run_single requires exactly one graph output");
  nodes_executed_ = 0;

  obs::ScopedSpan run_span;
  if (tracer_ != nullptr) {
    run_span = tracer_->span("session.run", "vedliot.runtime");
    run_span.attr("graph", graph_.name());
    run_span.attr("backend", "int8");
  }

  std::map<NodeId, QTensor> values;
  for (NodeId id : graph_.topo_order()) {
    const Node& n = graph_.node(id);
    if (n.kind == OpKind::kInput) {
      VEDLIOT_CHECK(input.shape() == n.out_shape, "input shape mismatch");
      values[id] = quantize_fixed(input, out_scale_.at(id));
      continue;
    }
    std::vector<const QTensor*> node_ins;
    for (NodeId in : n.inputs) node_ins.push_back(&values.at(in));

    obs::ScopedSpan node_span;
    if (tracer_ != nullptr) {
      node_span = tracer_->span(n.name, std::string(op_name(n.kind)));
    }
    if (metrics_ != nullptr) {
      const auto t0 = std::chrono::steady_clock::now();
      values[id] = execute_node(n, node_ins);
      const auto t1 = std::chrono::steady_clock::now();
      runtime_detail::op_histogram(*metrics_, n.kind)
          .add(std::chrono::duration<double>(t1 - t0).count() * 1e6);
    } else {
      values[id] = execute_node(n, node_ins);
    }
    if (tracer_ != nullptr) {
      node_span.attr("out_elems", static_cast<double>(n.out_shape.numel()));
      node_span.close();
    }
    ++nodes_executed_;
  }

  if (metrics_ != nullptr) {
    metrics_->counter(runtime_detail::kRunsCounter).inc();
    metrics_->counter(runtime_detail::kNodesCounter).inc(nodes_executed_);
    metrics_->gauge(runtime_detail::kSaturationsGauge)
        .set(static_cast<double>(saturations_));
  }
  if (tracer_ != nullptr) {
    run_span.attr("nodes_executed", static_cast<double>(nodes_executed_));
    run_span.close();
  }
  return values.at(outs.front());
}

Tensor QuantizedExecutor::run_single_dequant(const Tensor& input) {
  return run_single(input).dequantize();
}

QTensor QuantizedExecutor::execute_node(const Node& n, const std::vector<const QTensor*>& ins) {
  const double so = out_scale_.at(n.id);
  QTensor out;
  out.shape = n.out_shape;
  out.scale = so;
  out.data.resize(static_cast<std::size_t>(n.out_shape.numel()));

  // Fused activation bounds in the *output* integer domain. Symmetric
  // quantization keeps zero at q=0, so ReLU is max(q, 0).
  const std::string fused = n.attrs.get_str_or("fused_act", "");
  std::int32_t q_lo = -128, q_hi = 127;
  if (fused == "Relu" || n.kind == OpKind::kRelu) q_lo = 0;
  if (fused == "Relu6" || n.kind == OpKind::kRelu6) {
    q_lo = 0;
    q_hi = std::min<std::int32_t>(127, static_cast<std::int32_t>(std::nearbyint(6.0 / so)));
  }
  if (!fused.empty() && fused != "Relu" && fused != "Relu6") {
    throw Unsupported("integer executor supports fused Relu/Relu6 only, got " + fused);
  }
  auto clamp_out = [&](double scaled) {
    std::int8_t q = requant(scaled);
    if (q < q_lo) q = static_cast<std::int8_t>(q_lo);
    if (q > q_hi) q = static_cast<std::int8_t>(q_hi);
    return q;
  };

  switch (n.kind) {
    case OpKind::kConv2d: {
      const QTensor& x = *ins.at(0);
      const PreparedLayer& layer = prepared_.at(n.id);
      const auto stride = n.attrs.get_int_or("stride", 1);
      const auto pad = n.attrs.get_int_or("pad", 0);
      const auto groups = n.attrs.get_int_or("groups", 1);
      const auto k = n.attrs.get_int("kernel");
      const Shape& in_shape = graph_.node(n.inputs[0]).out_shape;
      const auto IC = in_shape.c(), IH = in_shape.h(), IW = in_shape.w();
      const auto OC = n.out_shape.c(), OH = n.out_shape.h(), OW = n.out_shape.w();
      const auto N = n.out_shape.n();
      const auto icg = IC / groups;
      const auto ocg = OC / groups;
      const std::size_t per = static_cast<std::size_t>(icg * k * k);
      const double si = x.scale;

      for (std::int64_t b = 0; b < N; ++b) {
        for (std::int64_t oc = 0; oc < OC; ++oc) {
          const auto g = oc / ocg;
          const double mult = si * layer.weight_scales[static_cast<std::size_t>(oc)] / so;
          const std::int8_t* wrow = layer.weights.data() + static_cast<std::size_t>(oc) * per;
          for (std::int64_t oh = 0; oh < OH; ++oh) {
            for (std::int64_t ow = 0; ow < OW; ++ow) {
              std::int32_t acc = layer.bias[static_cast<std::size_t>(oc)];
              for (std::int64_t ic = 0; ic < icg; ++ic) {
                const auto in_c = g * icg + ic;
                for (std::int64_t kh = 0; kh < k; ++kh) {
                  const auto ih = oh * stride - pad + kh;
                  if (ih < 0 || ih >= IH) continue;
                  for (std::int64_t kw = 0; kw < k; ++kw) {
                    const auto iw = ow * stride - pad + kw;
                    if (iw < 0 || iw >= IW) continue;
                    const auto xi = static_cast<std::size_t>(((b * IC + in_c) * IH + ih) * IW + iw);
                    const auto wi = static_cast<std::size_t>((ic * k + kh) * k + kw);
                    acc += static_cast<std::int32_t>(x.data[xi]) *
                           static_cast<std::int32_t>(wrow[wi]);
                  }
                }
              }
              const auto oi = static_cast<std::size_t>(((b * OC + oc) * OH + oh) * OW + ow);
              out.data[oi] = clamp_out(static_cast<double>(acc) * mult);
            }
          }
        }
      }
      break;
    }

    case OpKind::kDense: {
      const QTensor& x = *ins.at(0);
      const PreparedLayer& layer = prepared_.at(n.id);
      const Shape& in_shape = graph_.node(n.inputs[0]).out_shape;
      const auto N = in_shape.dim(0), F = in_shape.dim(1);
      const auto U = n.out_shape.dim(1);
      const double si = x.scale;
      for (std::int64_t b = 0; b < N; ++b) {
        for (std::int64_t u = 0; u < U; ++u) {
          std::int32_t acc = layer.bias[static_cast<std::size_t>(u)];
          const std::int8_t* wrow = layer.weights.data() + static_cast<std::size_t>(u * F);
          for (std::int64_t f = 0; f < F; ++f) {
            acc += static_cast<std::int32_t>(x.data[static_cast<std::size_t>(b * F + f)]) *
                   static_cast<std::int32_t>(wrow[f]);
          }
          const double mult = si * layer.weight_scales[static_cast<std::size_t>(u)] / so;
          out.data[static_cast<std::size_t>(b * U + u)] = clamp_out(static_cast<double>(acc) * mult);
        }
      }
      break;
    }

    case OpKind::kRelu:
    case OpKind::kRelu6:
    case OpKind::kIdentity: {
      const QTensor& x = *ins.at(0);
      const double rescale = x.scale / so;
      for (std::size_t i = 0; i < out.data.size(); ++i) {
        out.data[i] = clamp_out(static_cast<double>(x.data[i]) * rescale);
      }
      break;
    }

    case OpKind::kMaxPool: {
      const QTensor& x = *ins.at(0);
      const auto k = n.attrs.get_int("kernel");
      const auto stride = n.attrs.get_int_or("stride", k);
      const auto pad = n.attrs.get_int_or("pad", 0);
      const Shape& s = graph_.node(n.inputs[0]).out_shape;
      const double rescale = x.scale / so;
      for (std::int64_t b = 0; b < n.out_shape.n(); ++b)
        for (std::int64_t c = 0; c < n.out_shape.c(); ++c)
          for (std::int64_t oh = 0; oh < n.out_shape.h(); ++oh)
            for (std::int64_t ow = 0; ow < n.out_shape.w(); ++ow) {
              std::int32_t best = std::numeric_limits<std::int32_t>::min();
              for (std::int64_t kh = 0; kh < k; ++kh) {
                const auto ih = oh * stride - pad + kh;
                if (ih < 0 || ih >= s.h()) continue;
                for (std::int64_t kw = 0; kw < k; ++kw) {
                  const auto iw = ow * stride - pad + kw;
                  if (iw < 0 || iw >= s.w()) continue;
                  const auto xi = static_cast<std::size_t>(((b * s.c() + c) * s.h() + ih) * s.w() + iw);
                  best = std::max(best, static_cast<std::int32_t>(x.data[xi]));
                }
              }
              const auto oi = static_cast<std::size_t>(
                  ((b * n.out_shape.c() + c) * n.out_shape.h() + oh) * n.out_shape.w() + ow);
              out.data[oi] = clamp_out(static_cast<double>(best) * rescale);
            }
      break;
    }

    case OpKind::kAvgPool:
    case OpKind::kGlobalAvgPool: {
      const QTensor& x = *ins.at(0);
      const Shape& s = graph_.node(n.inputs[0]).out_shape;
      const bool global = n.kind == OpKind::kGlobalAvgPool;
      const auto k = global ? std::max(s.h(), s.w()) : n.attrs.get_int("kernel");
      const auto stride = global ? 1 : n.attrs.get_int_or("stride", k);
      const auto pad = global ? 0 : n.attrs.get_int_or("pad", 0);
      const double rescale = x.scale / so;
      for (std::int64_t b = 0; b < n.out_shape.n(); ++b)
        for (std::int64_t c = 0; c < n.out_shape.c(); ++c)
          for (std::int64_t oh = 0; oh < n.out_shape.h(); ++oh)
            for (std::int64_t ow = 0; ow < n.out_shape.w(); ++ow) {
              std::int64_t acc = 0;
              std::int64_t count = 0;
              for (std::int64_t kh = 0; kh < (global ? s.h() : k); ++kh) {
                const auto ih = oh * stride - pad + kh;
                if (ih < 0 || ih >= s.h()) continue;
                for (std::int64_t kw = 0; kw < (global ? s.w() : k); ++kw) {
                  const auto iw = ow * stride - pad + kw;
                  if (iw < 0 || iw >= s.w()) continue;
                  const auto xi = static_cast<std::size_t>(((b * s.c() + c) * s.h() + ih) * s.w() + iw);
                  acc += x.data[xi];
                  ++count;
                }
              }
              const double mean = count > 0 ? static_cast<double>(acc) / static_cast<double>(count) : 0.0;
              const auto oi = static_cast<std::size_t>(
                  ((b * n.out_shape.c() + c) * n.out_shape.h() + oh) * n.out_shape.w() + ow);
              out.data[oi] = clamp_out(mean * rescale);
            }
      break;
    }

    case OpKind::kFlatten: {
      const QTensor& x = *ins.at(0);
      const double rescale = x.scale / so;
      for (std::size_t i = 0; i < out.data.size(); ++i) {
        out.data[i] = clamp_out(static_cast<double>(x.data[i]) * rescale);
      }
      break;
    }

    case OpKind::kAdd: {
      const QTensor& a = *ins.at(0);
      const QTensor& b = *ins.at(1);
      VEDLIOT_CHECK(a.shape == b.shape, "integer Add supports equal shapes only");
      for (std::size_t i = 0; i < out.data.size(); ++i) {
        const double v = static_cast<double>(a.data[i]) * a.scale +
                         static_cast<double>(b.data[i]) * b.scale;
        out.data[i] = clamp_out(v / so);
      }
      break;
    }

    case OpKind::kConcat: {
      std::size_t off = 0;
      // channel-major layouts append contiguously only for axis 0 of the
      // flattened [N=1,...] case; restrict to batch 1 (deployment case).
      VEDLIOT_CHECK(n.out_shape.dim(0) == 1, "integer Concat supports batch 1");
      for (const QTensor* x : ins) {
        const double rescale = x->scale / so;
        for (std::size_t i = 0; i < x->data.size(); ++i) {
          out.data[off + i] = clamp_out(static_cast<double>(x->data[i]) * rescale);
        }
        off += x->data.size();
      }
      break;
    }

    case OpKind::kSoftmax: {
      // Dequantize, float softmax, requantize: how int8 runtimes typically
      // treat the final softmax (TFLite uses a LUT; float is the reference).
      const Tensor f = ins.at(0)->dequantize();
      Tensor sm(f.shape());
      const auto N = f.shape().dim(0);
      const auto F = f.numel() / N;
      for (std::int64_t b = 0; b < N; ++b) {
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t i = 0; i < F; ++i) mx = std::max(mx, f.at(static_cast<std::size_t>(b * F + i)));
        double sum = 0;
        for (std::int64_t i = 0; i < F; ++i) {
          const double e = std::exp(static_cast<double>(f.at(static_cast<std::size_t>(b * F + i)) - mx));
          sm.at(static_cast<std::size_t>(b * F + i)) = static_cast<float>(e);
          sum += e;
        }
        for (std::int64_t i = 0; i < F; ++i) {
          auto& v = sm.at(static_cast<std::size_t>(b * F + i));
          v = static_cast<float>(v / sum);
        }
      }
      for (std::size_t i = 0; i < out.data.size(); ++i) {
        out.data[i] = clamp_out(static_cast<double>(sm.at(i)) / so);
      }
      break;
    }

    default:
      throw Unsupported("integer executor does not support op " + std::string(op_name(n.kind)));
  }
  return out;
}

}  // namespace vedliot
