#include "util/rng.hpp"

namespace vedliot {

std::vector<float> Rng::normal_vector(std::size_t n, double mean, double stddev) {
  std::vector<float> out(n);
  std::normal_distribution<double> dist(mean, stddev);
  for (auto& v : out) v = static_cast<float>(dist(engine_));
  return out;
}

std::vector<float> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<float> out(n);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (auto& v : out) v = static_cast<float>(dist(engine_));
  return out;
}

}  // namespace vedliot
