
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/arc.cpp" "src/apps/CMakeFiles/vedliot_apps.dir/arc.cpp.o" "gcc" "src/apps/CMakeFiles/vedliot_apps.dir/arc.cpp.o.d"
  "/root/repo/src/apps/detection.cpp" "src/apps/CMakeFiles/vedliot_apps.dir/detection.cpp.o" "gcc" "src/apps/CMakeFiles/vedliot_apps.dir/detection.cpp.o.d"
  "/root/repo/src/apps/mirror.cpp" "src/apps/CMakeFiles/vedliot_apps.dir/mirror.cpp.o" "gcc" "src/apps/CMakeFiles/vedliot_apps.dir/mirror.cpp.o.d"
  "/root/repo/src/apps/motor.cpp" "src/apps/CMakeFiles/vedliot_apps.dir/motor.cpp.o" "gcc" "src/apps/CMakeFiles/vedliot_apps.dir/motor.cpp.o.d"
  "/root/repo/src/apps/network.cpp" "src/apps/CMakeFiles/vedliot_apps.dir/network.cpp.o" "gcc" "src/apps/CMakeFiles/vedliot_apps.dir/network.cpp.o.d"
  "/root/repo/src/apps/paeb.cpp" "src/apps/CMakeFiles/vedliot_apps.dir/paeb.cpp.o" "gcc" "src/apps/CMakeFiles/vedliot_apps.dir/paeb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/vedliot_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vedliot_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vedliot_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/kenning/CMakeFiles/vedliot_kenning.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vedliot_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/vedliot_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vedliot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/vedliot_security.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vedliot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
