// Tests for the fleet OTA rollout stack: the chunked resumable transport
// (safety/ota_transport.hpp), the staged-canary RolloutController
// (serve/rollout.hpp) driving a simulated device swarm through lossy-fabric
// faults, and the deterministic rollout soak (serve/ota_soak.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/baseboard.hpp"
#include "platform/faults.hpp"
#include "platform/microserver.hpp"
#include "safety/model_store.hpp"
#include "safety/ota_transport.hpp"
#include "serve/ota_soak.hpp"
#include "serve/rollout.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {
namespace {

using safety::OtaChunk;
using safety::OtaChunker;
using safety::OtaReceiver;
using safety::OtaSender;

std::vector<std::uint8_t> test_package(std::size_t n, std::uint8_t salt = 7) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>((i * 31 + salt) & 0xFF);
  }
  return p;
}

// ---------------------------------------------------------------------------
// OtaChunker
// ---------------------------------------------------------------------------

TEST(OtaChunker, SplitsWithShortTail) {
  const auto pkg = test_package(1000);
  OtaChunker c(pkg, 256);
  EXPECT_EQ(c.chunk_count(), 4u);  // 256 * 3 + 232
  EXPECT_EQ(c.total_bytes(), 1000u);
  EXPECT_EQ(c.chunk(0).payload.size(), 256u);
  EXPECT_EQ(c.chunk(3).payload.size(), 232u);
  EXPECT_EQ(c.chunk(3).offset, 768u);
  // every chunk's CRC matches its payload
  for (std::uint32_t s = 0; s < c.chunk_count(); ++s) {
    const OtaChunk ch = c.chunk(s);
    EXPECT_EQ(ch.crc, util::crc32(std::span<const std::uint8_t>(ch.payload)));
  }
  EXPECT_THROW((void)c.chunk(4), Error);
}

TEST(OtaChunker, RejectsDegenerateInputs) {
  const auto pkg = test_package(100);
  EXPECT_THROW(OtaChunker(pkg, 16), Error);  // chunk_bytes < 64
  EXPECT_THROW(OtaChunker(std::span<const std::uint8_t>{}, 256), Error);
}

// ---------------------------------------------------------------------------
// OtaReceiver: dup / reorder / corrupt / bogus / resume
// ---------------------------------------------------------------------------

TEST(OtaReceiver, ReassemblesOutOfOrderAndDedupesExactly) {
  const auto pkg = test_package(1000);
  OtaChunker c(pkg, 256);
  OtaReceiver r(c.total_bytes(), c.chunk_bytes(), c.package_crc());

  // deliver in reverse order, each chunk twice
  for (std::uint32_t s = c.chunk_count(); s-- > 0;) {
    EXPECT_EQ(r.accept(c.chunk(s)), OtaReceiver::Accept::kAccepted);
    EXPECT_EQ(r.accept(c.chunk(s)), OtaReceiver::Accept::kDuplicate);
  }
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(r.assemble(), pkg);
}

TEST(OtaReceiver, RefusesCorruptAndBogusChunksWithoutStateDamage) {
  const auto pkg = test_package(1000);
  OtaChunker c(pkg, 256);
  OtaReceiver r(c.total_bytes(), c.chunk_bytes(), c.package_crc());

  OtaChunk damaged = c.chunk(1);
  damaged.payload[10] ^= 0x40;  // CRC now stale
  EXPECT_EQ(r.accept(damaged), OtaReceiver::Accept::kCorrupt);
  EXPECT_FALSE(r.has(1));

  OtaChunk bogus = c.chunk(2);
  bogus.offset += 1;  // inconsistent with seq * chunk_bytes
  EXPECT_EQ(r.accept(bogus), OtaReceiver::Accept::kBogus);
  OtaChunk out_of_range = c.chunk(0);
  out_of_range.seq = 99;
  out_of_range.offset = 99ull * 256;
  EXPECT_EQ(r.accept(out_of_range), OtaReceiver::Accept::kBogus);

  EXPECT_EQ(r.received_chunks(), 0u);
  for (std::uint32_t s = 0; s < c.chunk_count(); ++s) r.accept(c.chunk(s));
  EXPECT_EQ(r.assemble(), pkg);
}

TEST(OtaReceiver, AssembleRefusesTornImage) {
  const auto pkg = test_package(1000);
  OtaChunker c(pkg, 256);
  OtaReceiver r(c.total_bytes(), c.chunk_bytes(), c.package_crc());
  r.accept(c.chunk(0));
  r.accept(c.chunk(2));
  EXPECT_FALSE(r.complete());
  EXPECT_THROW((void)r.assemble(), Error);  // a torn image is unrepresentable
  EXPECT_EQ(r.next_needed(), 1u);
}

TEST(OtaReceiver, JournalSurvivesInterruptionAndResumesFromLastGoodChunk) {
  const auto pkg = test_package(4096);
  OtaChunker c(pkg, 512);
  OtaReceiver r(c.total_bytes(), c.chunk_bytes(), c.package_crc());

  // first attempt lands chunks 0..2, then the device "crashes" (the
  // receiver object IS the journal: nothing else persists)
  for (std::uint32_t s = 0; s < 3; ++s) r.accept(c.chunk(s));
  EXPECT_EQ(r.next_needed(), 3u);

  // after restart the sender asks the journal where to resume; only the
  // remaining chunks move
  std::size_t resent = 0;
  while (!r.complete()) {
    r.accept(c.chunk(r.next_needed()));
    ++resent;
  }
  EXPECT_EQ(resent, c.chunk_count() - 3);
  EXPECT_EQ(r.assemble(), pkg);
}

TEST(OtaReceiver, PinsWholePackageCrcFromAnnouncement) {
  const auto pkg = test_package(1000);
  OtaChunker c(pkg, 256);
  // announcement carries the wrong whole-package CRC: every chunk lands
  // fine but assembly must refuse the mismatched image
  OtaReceiver r(c.total_bytes(), c.chunk_bytes(), c.package_crc() ^ 1);
  for (std::uint32_t s = 0; s < c.chunk_count(); ++s) r.accept(c.chunk(s));
  ASSERT_TRUE(r.complete());
  EXPECT_THROW((void)r.assemble(), Error);
}

// ---------------------------------------------------------------------------
// OtaSender: windowing, retries, exhaustion, backoff bounds
// ---------------------------------------------------------------------------

TEST(OtaSender, SelectsWindowOfLowestMissingChunks) {
  const auto pkg = test_package(2048);
  OtaChunker c(pkg, 256);
  OtaReceiver r(c.total_bytes(), c.chunk_bytes(), c.package_crc());
  OtaSender::Config sc;
  sc.window = 3;
  OtaSender s(sc, 42);

  EXPECT_EQ(s.select(r), (std::vector<std::uint32_t>{0, 1, 2}));
  r.accept(c.chunk(0));
  r.accept(c.chunk(2));
  EXPECT_EQ(s.select(r), (std::vector<std::uint32_t>{1, 3, 4}));
  for (std::uint32_t q = 0; q < c.chunk_count(); ++q) r.accept(c.chunk(q));
  EXPECT_TRUE(s.select(r).empty());
}

TEST(OtaSender, BackoffStaysWithinFloorAndCap) {
  OtaSender::Config sc;
  sc.backoff_base_s = 1e-3;
  sc.backoff_cap_s = 8e-3;
  sc.backoff_floor_s = 0.25e-3;
  OtaSender s(sc, 7);
  for (int i = 0; i < 50; ++i) {
    const double w = s.on_result(0, false);
    EXPECT_GE(w, sc.backoff_floor_s);  // jitter floor: no hot retry loop
    EXPECT_LE(w, sc.backoff_cap_s);
  }
  EXPECT_DOUBLE_EQ(s.on_result(0, true), 0.0);
}

TEST(OtaSender, ExhaustsAfterAttemptCap) {
  OtaSender::Config sc;
  sc.max_chunk_attempts = 3;
  OtaSender s(sc, 7);
  EXPECT_FALSE(s.exhausted());
  (void)s.on_result(5, false);
  (void)s.on_result(5, false);
  EXPECT_FALSE(s.exhausted());
  (void)s.on_result(5, false);
  EXPECT_TRUE(s.exhausted());
  EXPECT_EQ(s.retries(), 3u);
}

// ---------------------------------------------------------------------------
// RolloutController end-to-end over a simulated swarm
// ---------------------------------------------------------------------------

struct SwarmRig {
  std::vector<std::string> slots;
  platform::Chassis chassis;
  platform::Fabric fabric;
};

SwarmRig swarm(int n) {
  platform::BaseboardSpec spec;
  spec.name = "test-swarm";
  std::vector<std::string> slots;
  for (int i = 0; i < n; ++i) {
    const std::string slot = "dev" + std::to_string(i);
    spec.slots.push_back(platform::SlotSpec{slot, {platform::FormFactor::kSMARC}, 8.0});
    slots.push_back(slot);
  }
  spec.total_power_budget_w = 8.0 * n;
  spec.ethernet_gbps = {1.0};
  platform::Chassis chassis(spec);
  for (const std::string& slot : slots) {
    chassis.install(slot, platform::find_module("SMARC-iMX8MPlus"));
  }
  return SwarmRig{slots, std::move(chassis), platform::star_fabric(slots, 1.0, {1.0})};
}

struct Versions {
  Graph v1;
  Graph v2;
};

Versions versions(std::uint64_t seed = 0x30DE1) {
  Graph v1 = zoo::micro_cnn("ota", 1, 3, 8, 8, 8);
  Rng rng(seed);
  v1.materialize_weights(rng);
  Graph v2 = v1.clone();
  for (NodeId id : v2.topo_order()) {
    Node& node = v2.node(id);
    if (!node.weights.empty()) {
      for (float& w : node.weights.at(0).data()) w *= 1.02f;
      break;
    }
  }
  v2.touch();
  return Versions{std::move(v1), std::move(v2)};
}

RolloutConfig rollout_config(const SwarmRig& rig) {
  RolloutConfig rc;
  rc.devices = rig.slots;
  rc.model_name = "ota";
  rc.canary_devices = 1;
  rc.chunk_bytes = 1024;
  rc.control_period_s = 1e-3;
  return rc;
}

TEST(RolloutController, CleanFabricCommitsWholeFleetInWaves) {
  SwarmRig rig = swarm(7);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Versions v = versions();
  const std::uint32_t manifest = RolloutController::serve_crc_of(v.v2, 0xCAA1B);

  RolloutController ctl(sim, rollout_config(rig));
  ctl.set_baseline(v.v1);
  ctl.set_target(safety::make_ota_package(v.v2, 0xCAA1B, 2), manifest);
  const RolloutReport r = ctl.run(2.0);

  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.devices_committed, 7u);
  EXPECT_EQ(r.devices_rolled_back, 0u);
  // canary 1, then 2, then 4 (capped by fleet size)
  EXPECT_EQ(r.waves_started, 3u);
  EXPECT_EQ(r.waves_passed, 3u);
  EXPECT_EQ(r.chunk_retries, 0u);
  for (const DeviceOutcome& d : r.outcomes) {
    EXPECT_EQ(d.version, 2u);
    EXPECT_EQ(d.serve_crc, manifest);
  }
  // monotone progress curve
  for (std::size_t i = 1; i < r.progress.size(); ++i) {
    EXPECT_GE(r.progress[i].second, r.progress[i - 1].second);
  }
}

TEST(RolloutController, BadPackageHaltsAtCanaryAndRollsBackPaced) {
  SwarmRig rig = swarm(6);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Versions v = versions();
  // ship v1-with-different-weights against v2's manifest: internally
  // consistent (ModelStore commits it) but serving the wrong fingerprint
  Graph bad = v.v1.clone();
  for (NodeId id : bad.topo_order()) {
    Node& node = bad.node(id);
    if (!node.weights.empty()) {
      for (float& w : node.weights.at(0).data()) w *= 0.9f;
      break;
    }
  }
  bad.touch();

  RolloutConfig rc = rollout_config(rig);
  rc.canary_devices = 3;  // enough commits to overflow the rollback burst
  rc.rollback_rate_per_s = 100.0;
  rc.rollback_burst = 1.0;
  RolloutController ctl(sim, rc);
  ctl.set_baseline(v.v1);
  ctl.set_target(safety::make_ota_package(bad, 0xCAA1B, 2),
                 RolloutController::serve_crc_of(v.v2, 0xCAA1B));
  const RolloutReport r = ctl.run(2.0);

  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.waves_passed, 0u);  // the canary gate caught it
  EXPECT_EQ(r.devices_committed, 0u);
  EXPECT_EQ(r.devices_rolled_back, 3u);
  EXPECT_GT(r.rollbacks_paced, 0u);  // the bucket forced waits
  const std::uint32_t baseline = RolloutController::serve_crc_of(v.v1, 0xCAA1B);
  for (const DeviceOutcome& d : r.outcomes) {
    EXPECT_EQ(d.version, 1u);
    EXPECT_EQ(d.serve_crc, baseline);
  }
  // rollback events respect the token bucket within every window
  std::vector<double> rb_times;
  for (const ServeEvent& e : r.events) {
    if (e.kind == ServeEventKind::kOtaRolledBack) rb_times.push_back(e.time_s);
  }
  ASSERT_EQ(rb_times.size(), 3u);
  for (std::size_t i = 0; i < rb_times.size(); ++i) {
    for (std::size_t j = i; j < rb_times.size(); ++j) {
      const double span = rb_times[j] - rb_times[i];
      EXPECT_LE(static_cast<double>(j - i + 1),
                rc.rollback_burst + rc.rollback_rate_per_s * span + 1e-6);
    }
  }
}

TEST(RolloutController, TransferResumesAfterCrashRestart) {
  SwarmRig rig = swarm(2);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Versions v = versions();

  // crash the canary mid-transfer; restart well before the run budget.
  // chunk service time at 1 Gbps is ~10 us, so 20 us is inside the stream.
  platform::FaultEvent crash;
  crash.time_s = 20e-6;
  crash.kind = platform::FaultKind::kModuleCrash;
  crash.slot = "dev0";
  sim.schedule(crash);
  platform::FaultEvent restart = crash;
  restart.time_s = 5e-3;
  restart.kind = platform::FaultKind::kModuleRestart;
  sim.schedule(restart);

  RolloutConfig rc = rollout_config(rig);
  rc.chunk_bytes = 256;  // many chunks: the crash lands inside the stream
  RolloutController ctl(sim, rc);
  ctl.set_baseline(v.v1);
  const std::uint32_t manifest = RolloutController::serve_crc_of(v.v2, 0xCAA1B);
  ctl.set_target(safety::make_ota_package(v.v2, 0xCAA1B, 2), manifest);
  const RolloutReport r = ctl.run(2.0);

  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.devices_committed, 2u);
  EXPECT_GE(r.resumes, 1u);
  EXPECT_GE(r.outcomes[0].resumes, 1u);
  // the resume continued from the journal instead of restarting: strictly
  // fewer distinct chunks than a full second transfer would deliver
  std::size_t resumed_events = 0;
  for (const ServeEvent& e : r.events) {
    if (e.kind == ServeEventKind::kOtaResumed) ++resumed_events;
  }
  EXPECT_GE(resumed_events, 1u);
}

TEST(RolloutController, PartitionPausesAndHealResumes) {
  SwarmRig rig = swarm(2);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Versions v = versions();

  platform::FaultEvent cut;
  cut.time_s = 20e-6;
  cut.kind = platform::FaultKind::kLinkPartition;
  cut.slot = "dev0";
  sim.schedule(cut);
  platform::FaultEvent heal = cut;
  heal.time_s = 5e-3;
  heal.kind = platform::FaultKind::kLinkHeal;
  sim.schedule(heal);

  RolloutConfig rc = rollout_config(rig);
  rc.chunk_bytes = 256;
  RolloutController ctl(sim, rc);
  ctl.set_baseline(v.v1);
  ctl.set_target(safety::make_ota_package(v.v2, 0xCAA1B, 2),
                 RolloutController::serve_crc_of(v.v2, 0xCAA1B));
  const RolloutReport r = ctl.run(2.0);

  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.devices_committed, 2u);
  EXPECT_GE(r.resumes, 1u);
}

TEST(RolloutController, ExhaustedSenderFailsDeviceNotFleet) {
  SwarmRig rig = swarm(3);
  platform::PlatformSimulator::Config pc;
  pc.transient_transfer_prob = 0.75;  // heavy damage
  pc.seed = 9;
  platform::PlatformSimulator sim(rig.chassis, rig.fabric, pc);
  Versions v = versions();

  RolloutConfig rc = rollout_config(rig);
  rc.sender.max_chunk_attempts = 2;  // give up almost immediately
  RolloutController ctl(sim, rc);
  ctl.set_baseline(v.v1);
  ctl.set_target(safety::make_ota_package(v.v2, 0xCAA1B, 2),
                 RolloutController::serve_crc_of(v.v2, 0xCAA1B));
  const RolloutReport r = ctl.run(2.0);

  // the canary's exhausted transfer trips its wave gate (fraction 1.0):
  // the rollout halts instead of pushing a package it cannot deliver, and
  // a failed transfer never touches any device's store
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.halted);
  EXPECT_GT(r.devices_failed, 0u);
  EXPECT_EQ(r.waves_passed, 0u);
  const std::uint32_t baseline = RolloutController::serve_crc_of(v.v1, 0xCAA1B);
  for (const DeviceOutcome& d : r.outcomes) {
    EXPECT_EQ(d.version, 1u);
    EXPECT_EQ(d.serve_crc, baseline);
    if (d.transfer_failed) {
      EXPECT_FALSE(d.rolled_back);  // nothing was installed to roll back
    }
  }
}

TEST(RolloutController, IsOneShotAndValidatesSetup) {
  SwarmRig rig = swarm(2);
  platform::PlatformSimulator sim(rig.chassis, rig.fabric);
  Versions v = versions();
  RolloutController ctl(sim, rollout_config(rig));
  EXPECT_THROW((void)ctl.run(1.0), Error);  // no baseline/target yet
  ctl.set_baseline(v.v1);
  EXPECT_THROW((void)ctl.run(1.0), Error);  // still no target
  ctl.set_target(safety::make_ota_package(v.v2, 0xCAA1B, 2),
                 RolloutController::serve_crc_of(v.v2, 0xCAA1B));
  (void)ctl.run(1.0);
  EXPECT_THROW((void)ctl.run(1.0), Error);  // one-shot
}

// ---------------------------------------------------------------------------
// Soak harness: invariants + bitwise determinism
// ---------------------------------------------------------------------------

OtaSoakConfig quick_soak(double fault_rate, bool bad = false) {
  OtaSoakConfig cfg;
  cfg.n_devices = 5;
  cfg.duration_s = 2.0;
  cfg.fault_rate = fault_rate;
  cfg.bad_package = bad;
  return cfg;
}

TEST(OtaSoak, CleanAndLossySweepsHoldAllInvariants) {
  for (const double rate : {0.0, 0.2}) {
    const OtaSoakResult r = run_ota_soak(quick_soak(rate));
    EXPECT_TRUE(r.ok()) << "rate " << rate << ": " << (r.violations.empty() ? "" : r.violations[0]);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.no_torn_install);
  }
}

TEST(OtaSoak, BadPackageHaltsRollsBackAndStillHoldsInvariants) {
  // 8 devices -> a 4-wide canary wave: more rollbacks than the bucket's
  // burst of 2, so the drain is actually paced and the span is positive
  OtaSoakConfig cfg = quick_soak(0.05, true);
  cfg.n_devices = 8;
  const OtaSoakResult r = run_ota_soak(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_TRUE(r.report.halted);
  EXPECT_EQ(r.report.waves_passed, 0u);
  EXPECT_EQ(r.report.devices_committed, 0u);
  EXPECT_EQ(r.report.devices_rolled_back, 4u);
  EXPECT_GT(r.report.rollbacks_paced, 0u);
  EXPECT_GT(r.rollback_span_s, 0.0);  // the drain was actually paced
}

TEST(OtaSoak, SameSeedIsBitwiseDeterministic) {
  const OtaSoakResult a = run_ota_soak(quick_soak(0.2));
  const OtaSoakResult b = run_ota_soak(quick_soak(0.2));
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(OtaSoak, JsonRecordCarriesTheGateFields) {
  const std::string j = run_ota_soak(quick_soak(0.0)).to_json();
  EXPECT_NE(j.find("\"record\":\"soak-ota\""), std::string::npos);
  EXPECT_NE(j.find("\"converged\":true"), std::string::npos);
  EXPECT_NE(j.find("\"no_torn_install\":true"), std::string::npos);
  EXPECT_NE(j.find("\"events_fnv1a\""), std::string::npos);
}

}  // namespace
}  // namespace vedliot::serve
