#pragma once
/// \file cpu.hpp
/// \brief RV32IM functional interpreter with M/U privilege modes, PMP
/// enforcement and a CFU port (the simulated VexRiscv-class core).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "security/pmp.hpp"
#include "sim/bus.hpp"
#include "sim/cfu.hpp"

namespace vedliot::sim {

enum class HaltReason {
  kRunning,
  kEcall,            ///< environment call from M-mode (program exit)
  kEbreak,
  kMaxInstructions,
  kUnhandledTrap,    ///< trap with no handler installed (mtvec == 0)
};

/// Trap causes (mcause values, RISC-V encoding).
constexpr std::uint32_t kCauseInstrAccessFault = 1;
constexpr std::uint32_t kCauseIllegalInstr = 2;
constexpr std::uint32_t kCauseLoadAccessFault = 5;
constexpr std::uint32_t kCauseStoreAccessFault = 7;
constexpr std::uint32_t kCauseEcallU = 8;
constexpr std::uint32_t kCauseMachineTimerIrq = 0x80000007u;  // interrupt bit | 7

class Cpu {
 public:
  explicit Cpu(Bus& bus);

  /// Attach a CFU served by the custom-0 opcode (0x0B).
  void attach_cfu(std::shared_ptr<Cfu> cfu) { cfu_ = std::move(cfu); }

  /// Attach a PMP unit checked on every fetch/load/store.
  void attach_pmp(security::PmpUnit* pmp) { pmp_ = pmp; }

  /// Attach a machine-timer interrupt source (polled before each step).
  /// The interrupt is taken when the source is pending, mstatus.MIE is set
  /// and mie.MTIE is set.
  void attach_timer_irq(std::function<bool()> pending) { timer_irq_ = std::move(pending); }

  void set_pc(std::uint32_t pc) { pc_ = pc; }
  std::uint32_t pc() const { return pc_; }

  std::uint32_t reg(std::size_t i) const;
  void set_reg(std::size_t i, std::uint32_t v);

  security::Privilege privilege() const { return priv_; }

  /// CSR access (subset: mstatus, mtvec, mepc, mcause, mcycle, minstret).
  std::uint32_t csr(std::uint32_t addr) const;
  void set_csr(std::uint32_t addr, std::uint32_t v);

  /// Execute until halt or the instruction budget runs out.
  HaltReason run(std::uint64_t max_instructions);

  /// Single step; returns kRunning unless the core halted.
  HaltReason step();

  std::uint64_t instructions_retired() const { return instret_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t trap_count() const { return traps_; }

  /// Publish the retirement/cycle/trap counters as gauges named
  /// `<prefix>.{instret,cycles,traps}` (the perf-counter surface a board
  /// agent would scrape).
  void publish_metrics(obs::MetricsRegistry& registry,
                       const std::string& prefix = "vedliot.sim.cpu") const {
    registry.gauge(prefix + ".instret").set(static_cast<double>(instret_));
    registry.gauge(prefix + ".cycles").set(static_cast<double>(cycles_));
    registry.gauge(prefix + ".traps").set(static_cast<double>(traps_));
  }

  /// Renode-style introspection hook, called before each instruction with
  /// (pc, raw instruction).
  void set_trace(std::function<void(std::uint32_t, std::uint32_t)> hook) {
    trace_ = std::move(hook);
  }

 private:
  bool pmp_ok(std::uint32_t addr, security::Access access) const;
  /// Raise a trap; returns true if a handler took it, false to halt.
  bool trap(std::uint32_t cause);

  Bus& bus_;
  std::shared_ptr<Cfu> cfu_;
  security::PmpUnit* pmp_ = nullptr;

  std::array<std::uint32_t, 32> regs_{};
  std::uint32_t pc_ = 0;
  security::Privilege priv_ = security::Privilege::kMachine;

  std::uint32_t mstatus_ = 0;
  std::uint32_t mtvec_ = 0;
  std::uint32_t mepc_ = 0;
  std::uint32_t mcause_ = 0;
  std::uint32_t mie_ = 0;
  std::function<bool()> timer_irq_;

  std::uint64_t instret_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t traps_ = 0;
  std::function<void(std::uint32_t, std::uint32_t)> trace_;
};

}  // namespace vedliot::sim
