# Empty compiler generated dependencies file for vedliot_util.
# This may be replaced when dependencies are built.
