#pragma once
/// \file error.hpp
/// \brief Error handling primitives used across all VEDLIoT libraries.
///
/// The project follows the C++ Core Guidelines error model: exceptions for
/// runtime errors that callers may want to handle, assertions (via
/// VEDLIOT_ASSERT) for programming-logic invariants that indicate a bug.

#include <stdexcept>
#include <string>
#include <string_view>

namespace vedliot {

/// Base exception for every error thrown by VEDLIoT libraries.
///
/// Carries a human-readable message; modules derive more specific types
/// (e.g. GraphError, SimError) so callers can discriminate when needed.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Invalid argument passed to a public API function.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& message) : Error(message) {}
};

/// A lookup (by name, id, index) failed.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& message) : Error(message) {}
};

/// An operation is not supported by the chosen target/configuration.
class Unsupported : public Error {
 public:
  explicit Unsupported(const std::string& message) : Error(message) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(std::string_view expr, std::string_view file, int line,
                                      const std::string& message);
[[noreturn]] void assert_failure(std::string_view expr, std::string_view file, int line);
}  // namespace detail

}  // namespace vedliot

/// Runtime check that throws vedliot::Error on failure. Use for conditions
/// that depend on external input (files, models, configs).
#define VEDLIOT_CHECK(cond, message)                                                  \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      ::vedliot::detail::throw_check_failure(#cond, __FILE__, __LINE__, (message));   \
    }                                                                                 \
  } while (false)

/// Invariant assertion: aborts (via std::terminate through an uncaught
/// logic_error) on failure. Use for internal bugs, never for input checks.
#define VEDLIOT_ASSERT(cond)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::vedliot::detail::assert_failure(#cond, __FILE__, __LINE__);      \
    }                                                                    \
  } while (false)
