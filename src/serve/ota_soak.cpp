#include "serve/ota_soak.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "graph/zoo.hpp"
#include "obs/json.hpp"
#include "platform/baseboard.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace vedliot::serve {

namespace {

/// Independent deterministic streams (the discipline every soak in this
/// repo keeps): the fault campaign, the model weights and the simulator's
/// transient draws must not perturb each other across fault rates.
constexpr std::uint64_t kFaultStream = 0xFA17ull;
constexpr std::uint64_t kModelStream = 0x30DE1ull;
constexpr std::uint64_t kSimStream = 0x51ull;
constexpr std::uint64_t kCanarySeed = 0xCAA1Bull;

std::string event_digest(const std::vector<ServeEvent>& events) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const ServeEvent& e : events) {
    h = util::fnv1a64(format_serve_event(e), h);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

/// The chaos-soak observability contract, re-asserted over rollout events:
/// 1:1 ordered tracer mirror plus exact per-kind counters.
void check_observability_invariant(const std::vector<ServeEvent>& events,
                                   const obs::Tracer& tracer,
                                   const obs::MetricsRegistry& metrics,
                                   const std::string& identity,
                                   std::vector<std::string>& violations) {
  std::vector<const obs::Span*> mirrored;
  for (const obs::Span& sp : tracer.spans()) {
    if (sp.category == "vedliot.serve") mirrored.push_back(&sp);
  }
  if (mirrored.size() != events.size()) {
    violations.push_back("tracer mirror count " + std::to_string(mirrored.size()) +
                         " != event count " + std::to_string(events.size()) + " [" +
                         identity + "]");
    return;
  }
  for (std::size_t i = 0; i < mirrored.size(); ++i) {
    const std::string expect(serve_event_name(events[i].kind));
    if (mirrored[i]->name != expect) {
      violations.push_back("tracer mirror out of order at event " + std::to_string(i) + ": " +
                           mirrored[i]->name + " != " + expect + " [" + identity + "]");
      return;
    }
  }
  std::map<std::string, std::uint64_t> counts;
  for (const ServeEvent& e : events) {
    ++counts["vedliot.serve." + std::string(serve_event_name(e.kind))];
  }
  for (const auto& [name, count] : counts) {
    if (!metrics.has_counter(name) || metrics.counters().at(name).value() != count) {
      violations.push_back("counter " + name + " != event count " + std::to_string(count) +
                           " [" + identity + "]");
    }
  }
}

/// Invariant 2 (event side): full distinct-chunk coverage before staging,
/// staging before commit — the event record must prove no torn install.
void check_no_torn_install(const std::vector<ServeEvent>& events, std::size_t chunk_count,
                           const std::string& identity,
                           std::vector<std::string>& violations) {
  std::map<std::string, std::set<std::uint32_t>> seen;
  std::map<std::string, bool> staged_complete;
  for (const ServeEvent& e : events) {
    switch (e.kind) {
      case ServeEventKind::kOtaChunk:
        seen[e.subject].insert(static_cast<std::uint32_t>(e.value));
        break;
      case ServeEventKind::kOtaStaged: {
        const bool full = seen[e.subject].size() == chunk_count;
        staged_complete[e.subject] = full;
        if (!full) {
          violations.push_back(e.subject + " staged with " +
                               std::to_string(seen[e.subject].size()) + "/" +
                               std::to_string(chunk_count) + " distinct chunks [" + identity +
                               "]");
        }
        break;
      }
      case ServeEventKind::kOtaCommitted: {
        const auto it = staged_complete.find(e.subject);
        if (it == staged_complete.end() || !it->second) {
          violations.push_back(e.subject + " committed without a fully-covered stage [" +
                               identity + "]");
        }
        break;
      }
      default:
        break;
    }
  }
}

Node& first_parametric(Graph& g) {
  for (NodeId id : g.topo_order()) {
    if (!g.node(id).weights.empty()) return g.node(id);
  }
  throw InvalidArgument("soak model has no parametric node");
}

}  // namespace

std::string OtaSoakResult::to_json() const {
  std::string out = "{\"record\":\"soak-ota\"";
  out += ",\"seed\":" + obs::json_number(static_cast<double>(config.seed));
  out += ",\"fault_rate\":" + obs::json_number(config.fault_rate);
  out += ",\"duration_s\":" + obs::json_number(config.duration_s);
  out += ",\"devices\":" + obs::json_number(static_cast<double>(config.n_devices));
  out += ",\"chunk_bytes\":" + obs::json_number(static_cast<double>(config.chunk_bytes));
  out += ",\"bad_package\":";
  out += config.bad_package ? "true" : "false";
  out += ",\"converged\":";
  out += converged ? "true" : "false";
  out += ",\"no_torn_install\":";
  out += no_torn_install ? "true" : "false";
  out += ",\"halted\":";
  out += report.halted ? "true" : "false";
  out += ",\"converged_at_s\":" + obs::json_number(report.converged_at_s);
  out += ",\"devices_committed\":" +
         obs::json_number(static_cast<double>(report.devices_committed));
  out += ",\"devices_rejected\":" +
         obs::json_number(static_cast<double>(report.devices_rejected));
  out += ",\"devices_rolled_back\":" +
         obs::json_number(static_cast<double>(report.devices_rolled_back));
  out += ",\"devices_failed\":" + obs::json_number(static_cast<double>(report.devices_failed));
  out += ",\"waves_started\":" + obs::json_number(static_cast<double>(report.waves_started));
  out += ",\"waves_passed\":" + obs::json_number(static_cast<double>(report.waves_passed));
  out += ",\"chunks_sent\":" + obs::json_number(static_cast<double>(report.chunks_sent));
  out += ",\"chunks_accepted\":" +
         obs::json_number(static_cast<double>(report.chunks_accepted));
  out += ",\"chunk_retries\":" + obs::json_number(static_cast<double>(report.chunk_retries));
  out += ",\"duplicates\":" + obs::json_number(static_cast<double>(report.duplicates));
  out += ",\"reorders\":" + obs::json_number(static_cast<double>(report.reorders));
  out += ",\"resumes\":" + obs::json_number(static_cast<double>(report.resumes));
  out += ",\"bytes_sent\":" + obs::json_number(static_cast<double>(report.bytes_sent));
  out += ",\"rollbacks_paced\":" +
         obs::json_number(static_cast<double>(report.rollbacks_paced));
  out += ",\"rollback_span_s\":" + obs::json_number(rollback_span_s);
  out += ",\"skew_probes\":" + obs::json_number(static_cast<double>(report.skew_probes));
  out += ",\"skew_cache_hits\":" +
         obs::json_number(static_cast<double>(report.skew_cache_hits));
  out += ",\"skew_version_misses\":" +
         obs::json_number(static_cast<double>(report.skew_version_misses));
  out += ",\"skew_mismatches\":" +
         obs::json_number(static_cast<double>(report.skew_mismatches));
  out += ",\"torn_serves\":" + obs::json_number(static_cast<double>(report.torn_serves));
  out += ",\"events\":" + obs::json_number(static_cast<double>(report.events.size()));
  out += ",\"events_fnv1a\":\"" + event_digest(report.events) + "\"";
  out += ",\"sim\":\"" + obs::json_escape(sim_describe) + "\"";
  out += ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    out += obs::json_escape(violations[i]);
    out += "\"";
  }
  out += "]}";
  return out;
}

OtaSoakResult run_ota_soak(const OtaSoakConfig& cfg) {
  VEDLIOT_CHECK(cfg.duration_s > 0, "soak duration must be positive");
  VEDLIOT_CHECK(cfg.fault_rate >= 0 && cfg.fault_rate < 1, "fault rate must be in [0, 1)");
  VEDLIOT_CHECK(cfg.n_devices >= 2 && cfg.n_devices <= 64,
                "an OTA swarm soak uses 2..64 devices");
  VEDLIOT_CHECK(cfg.campaign_s > 0, "campaign window must be positive");

  // Device swarm: one SMARC far-edge module per slot, star fabric to the
  // OTA distribution hub ("switch0").
  platform::BaseboardSpec spec;
  spec.name = "ota-swarm";
  std::vector<std::string> slots;
  for (int i = 0; i < cfg.n_devices; ++i) {
    const std::string slot = "dev" + std::to_string(i);
    spec.slots.push_back(platform::SlotSpec{slot, {platform::FormFactor::kSMARC}, 8.0});
    slots.push_back(slot);
  }
  spec.total_power_budget_w = 8.0 * cfg.n_devices;
  spec.ethernet_gbps = {1.0};
  platform::Chassis chassis(spec);
  for (const std::string& slot : slots) {
    chassis.install(slot, platform::find_module("SMARC-iMX8MPlus"));
  }
  platform::Fabric fabric = platform::star_fabric(slots, 1.0, {1.0});

  platform::PlatformSimulator::Config sim_cfg;
  sim_cfg.transient_transfer_prob = cfg.fault_rate;
  sim_cfg.seed = cfg.seed ^ kSimStream;
  platform::PlatformSimulator sim(std::move(chassis), std::move(fabric), sim_cfg);

  // Lossy campaign: partitions, crashes, packet duplication/reordering,
  // scaled by the fault rate; every injection heals within the window.
  if (cfg.fault_rate > 0) {
    Rng campaign_rng(cfg.seed ^ kFaultStream);
    const auto n_faults = static_cast<std::size_t>(std::lround(cfg.fault_rate * 120.0));
    const double intensity = std::min(0.9, cfg.fault_rate * 3.0);
    sim.schedule(platform::FaultTimeline::lossy_fabric_campaign(
        slots, n_faults, cfg.campaign_s, intensity, campaign_rng));
    // Ambient lossiness: beyond the episodic campaign hazards, a lossy
    // fabric duplicates and reorders a fraction of *all* traffic. Arm a
    // baseline hazard on every hub link for the whole run so the dup /
    // reorder tolerance paths are exercised at scale, not by coincidence
    // of a campaign window landing on an actively-transferring device.
    const double ambient = std::min(0.45, cfg.fault_rate);
    for (const std::string& slot : slots) {
      platform::FaultEvent dup;
      dup.time_s = 0.0;
      dup.kind = platform::FaultKind::kPacketDup;
      dup.magnitude = ambient;
      dup.a = "switch0";
      dup.b = slot;
      platform::FaultEvent reorder = dup;
      reorder.kind = platform::FaultKind::kPacketReorder;
      sim.schedule(dup);
      sim.schedule(reorder);
    }
  }

  // Versions: v1 baseline, v2 the intended release. The bad-package
  // scenario ships a payload that is internally consistent (its declared
  // canary outputs match its own behavior, so ModelStore::push commits)
  // but whose serve fingerprint diverges from the release manifest —
  // exactly the failure the canary wave's health gate exists to catch.
  Graph v1 = zoo::micro_cnn("ota", 1, 3, 8, 8, 8);
  Rng weight_rng(cfg.seed ^ kModelStream);
  v1.materialize_weights(weight_rng);
  Graph v2 = v1.clone();
  for (float& w : first_parametric(v2).weights.at(0).data()) w *= 1.02f;
  v2.touch();
  const std::uint32_t manifest_crc = RolloutController::serve_crc_of(v2, kCanarySeed);

  Graph bad = v1.clone();
  for (float& w : first_parametric(bad).weights.at(0).data()) w *= 0.95f;
  bad.touch();
  const Graph& target = cfg.bad_package ? bad : v2;

  RolloutConfig rc;
  rc.devices = slots;
  rc.hub = "switch0";
  rc.model_name = "ota";
  // The bad-package run commits a wide canary wave on purpose: the halt
  // then has to drain more rollbacks than the token-bucket burst, which is
  // what makes the pacing-budget and bounded-traffic checks meaningful.
  rc.canary_devices =
      cfg.bad_package ? std::max<std::size_t>(2, static_cast<std::size_t>(cfg.n_devices) / 2)
                      : 2;
  rc.wave_growth = 2.0;
  rc.failure_threshold = 0.25;
  rc.control_period_s = 5e-3;
  rc.rollback_rate_per_s = 100.0;
  rc.rollback_burst = 2.0;
  rc.chunk_bytes = cfg.chunk_bytes;
  rc.canary_seed = kCanarySeed;
  rc.seed = cfg.seed;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  rc.trace = &tracer;
  rc.metrics = &metrics;

  RolloutController controller(sim, rc);
  controller.set_baseline(v1);
  controller.set_target(safety::make_ota_package(target, kCanarySeed, 2), manifest_crc);
  const std::uint32_t baseline_crc = RolloutController::serve_crc_of(v1, kCanarySeed);
  const std::uint32_t target_crc = RolloutController::serve_crc_of(target, kCanarySeed);

  OtaSoakResult result;
  result.config = cfg;
  result.report = controller.run(cfg.duration_s);
  result.sim_describe = sim.describe();
  const std::string& identity = result.sim_describe;
  const RolloutReport& report = result.report;

  // Invariant 1: convergence onto verified versions.
  if (!report.converged) {
    result.violations.push_back("rollout did not reach a terminal state within " +
                                std::to_string(cfg.duration_s) + "s [" + identity + "]");
  }
  for (const DeviceOutcome& d : report.outcomes) {
    const std::uint32_t expect = d.version == 1 ? baseline_crc : target_crc;
    if (d.serve_crc != expect) {
      result.violations.push_back(d.slot + " ends with serve crc " +
                                  std::to_string(d.serve_crc) + " != verified version " +
                                  std::to_string(d.version) + " fingerprint [" + identity +
                                  "]");
    }
  }
  if (cfg.bad_package) {
    for (const DeviceOutcome& d : report.outcomes) {
      if (d.version != 1) {
        result.violations.push_back(d.slot + " left on version " + std::to_string(d.version) +
                                    " after a halted rollout [" + identity + "]");
      }
      if (d.committed && !d.rolled_back) {
        result.violations.push_back(d.slot + " committed the bad package but was never "
                                    "rolled back [" + identity + "]");
      }
    }
  } else {
    if (report.devices_committed != static_cast<std::size_t>(cfg.n_devices)) {
      result.violations.push_back(
          "good rollout committed " + std::to_string(report.devices_committed) + "/" +
          std::to_string(cfg.n_devices) + " devices [" + identity + "]");
    }
    if (report.halted || report.devices_rolled_back != 0) {
      result.violations.push_back("good rollout halted or rolled back [" + identity + "]");
    }
    if (report.skew_version_misses == 0) {
      result.violations.push_back(
          "version-skew path never exercised: no version misses [" + identity + "]");
    }
  }

  // Invariant 1 verdict: terminal state + every device on a verified version.
  result.converged = report.converged && result.violations.empty();

  // Invariant 2: no torn install (event record + probe evidence).
  const std::size_t before_torn = result.violations.size();
  const std::size_t chunk_count =
      (safety::make_ota_package(target, kCanarySeed, 2).package.size() + cfg.chunk_bytes - 1) /
      cfg.chunk_bytes;
  check_no_torn_install(report.events, chunk_count, identity, result.violations);
  if (report.torn_serves != 0) {
    result.violations.push_back(std::to_string(report.torn_serves) +
                                " probe(s) caught an unverifiable serving image [" + identity +
                                "]");
  }
  if (report.skew_mismatches != 0) {
    result.violations.push_back(std::to_string(report.skew_mismatches) +
                                " version-skew cache CRC mismatch(es) [" + identity + "]");
  }
  result.no_torn_install = result.violations.size() == before_torn;

  // Invariant 3: bounded rollback traffic.
  std::vector<double> rollback_times;
  double halt_time = -1;
  for (const ServeEvent& e : report.events) {
    if (e.kind == ServeEventKind::kOtaRolledBack) rollback_times.push_back(e.time_s);
    if (e.kind == ServeEventKind::kRolloutHalted) halt_time = e.time_s;
  }
  for (std::size_t j = 0; j < rollback_times.size(); ++j) {
    for (std::size_t k = j + 1; k < rollback_times.size(); ++k) {
      const double span = rollback_times[k] - rollback_times[j];
      const double allowed = rc.rollback_burst + rc.rollback_rate_per_s * span + 1e-6;
      if (static_cast<double>(k - j + 1) > allowed) {
        result.violations.push_back(
            "rollback storm: " + std::to_string(k - j + 1) + " rollbacks within " +
            std::to_string(span) + "s exceed the token bucket [" + identity + "]");
        j = rollback_times.size();  // one report is enough
        break;
      }
    }
  }
  if (cfg.bad_package) {
    if (halt_time < 0) {
      result.violations.push_back("bad package never halted the rollout [" + identity + "]");
    } else {
      bool at_canary = false;
      for (const ServeEvent& e : report.events) {
        if (e.kind == ServeEventKind::kRolloutHalted && e.subject == "wave 0") at_canary = true;
      }
      if (!at_canary) {
        result.violations.push_back("bad package halted past the canary wave [" + identity +
                                    "]");
      }
      if (report.waves_passed != 0) {
        result.violations.push_back("bad package passed " +
                                    std::to_string(report.waves_passed) + " wave gate(s) [" +
                                    identity + "]");
      }
      if (!rollback_times.empty()) {
        result.rollback_span_s = rollback_times.back() - halt_time;
        const double budget =
            std::max(0.0, static_cast<double>(rollback_times.size()) - rc.rollback_burst) /
                rc.rollback_rate_per_s +
            2.0 * rc.control_period_s + 1e-6;
        if (result.rollback_span_s > budget) {
          result.violations.push_back(
              "rollback drain took " + std::to_string(result.rollback_span_s) +
              "s, pacing budget is " + std::to_string(budget) + "s [" + identity + "]");
        }
      }
    }
  }

  // Invariant 4: monotone rollout progress.
  for (std::size_t i = 1; i < report.progress.size(); ++i) {
    if (report.progress[i].second < report.progress[i - 1].second) {
      result.violations.push_back("committed-device curve decreased at " +
                                  std::to_string(report.progress[i].first) + "s [" + identity +
                                  "]");
      break;
    }
  }

  // Invariant 5: observability mirror.
  check_observability_invariant(report.events, tracer, metrics, identity, result.violations);
  return result;
}

}  // namespace vedliot::serve
