#!/usr/bin/env bash
# Source-level lint: clang-tidy over the analysis subsystem (or a caller-given
# path list) using the compile database exported by CMake.
#
# Usage: scripts/lint.sh [path-prefix ...]     (default: src/analysis)
#
# Exits 0 with a notice when clang-tidy is not installed, so CI images
# without LLVM tooling degrade gracefully instead of failing the pipeline.

set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint: clang-tidy not found on PATH; skipping source-level lint" >&2
  exit 0
fi

# compile_commands.json is exported unconditionally (CMAKE_EXPORT_COMPILE_COMMANDS
# in the top-level CMakeLists); (re)configure if the database is missing.
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . > /dev/null
fi

prefixes=("${@:-src/analysis}")

files=()
for prefix in "${prefixes[@]}"; do
  while IFS= read -r f; do
    files+=("$f")
  done < <(find "$prefix" -name '*.cpp' | sort)
done

if [[ ${#files[@]} -eq 0 ]]; then
  echo "lint: no .cpp files under: ${prefixes[*]}" >&2
  exit 2
fi

echo "lint: clang-tidy over ${#files[@]} file(s): ${prefixes[*]}"
clang-tidy -p build --quiet "${files[@]}"
echo "lint OK"
