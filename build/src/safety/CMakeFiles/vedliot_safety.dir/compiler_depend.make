# Empty compiler generated dependencies file for vedliot_safety.
# This may be replaced when dependencies are built.
