#include "opt/pass.hpp"

#include <map>

namespace vedliot::opt {

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

namespace {

/// Live-node snapshot (id -> input list) for the structural diff.
std::map<NodeId, std::vector<NodeId>> snapshot(const Graph& g) {
  std::map<NodeId, std::vector<NodeId>> s;
  for (NodeId id : g.topo_order()) s.emplace(id, g.node(id).inputs);
  return s;
}

void fill_diff(PassResult& r, const std::map<NodeId, std::vector<NodeId>>& before,
               const std::map<NodeId, std::vector<NodeId>>& after) {
  for (const auto& [id, inputs] : after) {
    auto it = before.find(id);
    if (it == before.end()) {
      ++r.nodes_added;
    } else if (it->second != inputs) {
      ++r.nodes_rewired;
    }
  }
  for (const auto& [id, inputs] : before) {
    if (!after.count(id)) ++r.nodes_killed;
  }
}

}  // namespace

std::vector<PassResult> PassManager::run(Graph& g, const PassOptions& opts) {
  std::vector<PassResult> results;
  results.reserve(passes_.size());
  for (auto& pass : passes_) {
    const auto before = snapshot(g);
    PassResult r = pass->run(g);
    fill_diff(r, before, snapshot(g));

    if (opts.verify) {
      r.findings = analysis::verify_graph(g, opts.checks);
      if (opts.strict && !r.findings.ok()) {
        const std::string message = "pass '" + r.pass_name + "' left graph '" + g.name() +
                                    "' invalid (" + r.findings.summary() + "):\n" +
                                    r.findings.to_table();
        analysis::Report findings = std::move(r.findings);
        throw PassError(r.pass_name, std::move(findings), message);
      }
    }
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace vedliot::opt
