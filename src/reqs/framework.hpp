#pragma once
/// \file framework.hpp
/// \brief The VEDLIoT architectural framework for AIoT (Sec. IV-A):
/// a 2-D grid of architectural views — clusters of concerns x levels of
/// abstraction — with the paper's central structural rule: dependencies may
/// exist only *vertically* (same cluster, adjacent concerns through levels)
/// or *horizontally* (same level across clusters). Enforcing the rule keeps
/// the design traceable; the framework also supports middle-out engineering
/// (start from a mid-level view and derive what's missing above/below).

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace vedliot::reqs {

/// The typical clusters of concern for a DL-bearing system (Sec. IV-A).
enum class Concern {
  kLogicalBehavior,
  kProcessBehavior,
  kContextConstraints,
  kLearningSetting,
  kDeepLearningModel,
  kHardware,
  kInformation,
  kCommunication,
  kEthics,
  kSafety,
  kSecurity,
  kPrivacy,
  kEnergy,
};
constexpr std::size_t kConcernCount = 13;

enum class Level {
  kKnowledge,
  kConceptual,
  kDesign,
  kRuntime,
};
constexpr std::size_t kLevelCount = 4;

std::string_view concern_name(Concern c);
std::string_view level_name(Level l);

using ViewId = std::int32_t;

struct View {
  ViewId id = -1;
  std::string name;
  Concern concern = Concern::kLogicalBehavior;
  Level level = Level::kKnowledge;
  std::vector<std::string> artifacts;  ///< documents/models/code realizing it
};

class FrameworkError : public Error {
 public:
  explicit FrameworkError(const std::string& message) : Error(message) {}
};

class ArchitecturalFramework {
 public:
  ViewId add_view(std::string name, Concern concern, Level level);

  const View& view(ViewId id) const;
  View& view(ViewId id);
  std::size_t view_count() const { return views_.size(); }

  /// Dependency `from` -> `to`. Throws FrameworkError unless vertical
  /// (same concern) or horizontal (same level) — the paper's rule.
  void add_dependency(ViewId from, ViewId to);

  bool depends(ViewId from, ViewId to) const;
  std::vector<ViewId> dependencies_of(ViewId from) const;

  /// Transitive closure query: can `from` be traced to `to` through
  /// rule-conforming dependencies?
  bool traceable(ViewId from, ViewId to) const;

  /// Which (concern, level) grid cells have at least one view.
  bool cell_covered(Concern c, Level l) const;
  std::size_t covered_cells() const;

  /// Middle-out support: for a view, the neighbouring grid cells (same
  /// concern one level up/down, same level other concerns) that have no
  /// views yet — the candidates the team should elaborate next.
  std::vector<std::pair<Concern, Level>> missing_neighbors(ViewId id) const;

  /// Render the concern x level grid as a Markdown table (the architecture
  /// documentation artifact teams review), one cell per (concern, level)
  /// listing its view count.
  std::string to_markdown() const;

 private:
  std::vector<View> views_;
  std::set<std::pair<ViewId, ViewId>> deps_;
};

/// A stakeholder requirement attached to a view.
struct Requirement {
  std::string id;        ///< e.g. "REQ-SAF-004"
  std::string text;
  ViewId view = -1;
};

/// Requirements ledger with verification of downward traceability:
/// every requirement's view must trace to at least one Design- or
/// Runtime-level view (i.e. someone implements it).
class RequirementsLedger {
 public:
  explicit RequirementsLedger(const ArchitecturalFramework& fw) : fw_(fw) {}

  void add(Requirement r);
  const std::vector<Requirement>& all() const { return reqs_; }

  /// Requirements whose views do not reach any design/runtime view.
  std::vector<std::string> unrealized() const;

 private:
  const ArchitecturalFramework& fw_;
  std::vector<Requirement> reqs_;
};

}  // namespace vedliot::reqs
