#pragma once
/// \file prune.hpp
/// \brief Pruning passes (Sec. III: "connection-wise or neuron-wise pruning").

#include "opt/pass.hpp"

namespace vedliot::opt {

/// Connection-wise (unstructured) magnitude pruning: zero the smallest
/// |w| fraction of each parametric node's weight tensor. Requires
/// materialized weights.
class MagnitudePrunePass : public Pass {
 public:
  /// \param sparsity fraction of weights to zero, in [0, 1).
  explicit MagnitudePrunePass(double sparsity);
  std::string name() const override { return "prune-magnitude"; }
  PassResult run(Graph& g) override;

 private:
  double sparsity_;
};

/// Neuron-wise (structured) pruning: zero entire output channels/units with
/// the smallest L1 norm and record `pruned_out_channels` on the node so the
/// cost model can credit the structured savings (a real compiler would slice
/// the tensors; zeroing keeps shapes stable while preserving the semantics).
class ChannelPrunePass : public Pass {
 public:
  /// \param fraction fraction of output channels to remove per layer, [0, 1).
  explicit ChannelPrunePass(double fraction);
  std::string name() const override { return "prune-channel"; }
  PassResult run(Graph& g) override;

 private:
  double fraction_;
};

/// Effective MAC count crediting structured channel pruning: each conv/dense
/// contributes macs * (1 - pruned_out_fraction) * (1 - producer_pruned_fraction).
std::int64_t effective_macs(const Graph& g);

/// Overall weight sparsity of the graph (fraction of zero weights among all
/// parametric tensors); 0 when no weights are materialized.
double graph_sparsity(const Graph& g);

}  // namespace vedliot::opt
