#include "safety/robustness.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace vedliot::safety {

RobustnessService::RobustnessService(const Graph& golden_model, Config config)
    : golden_(golden_model.clone()), cfg_(config) {
  VEDLIOT_CHECK(cfg_.check_period >= 1, "check period must be >= 1");
  exec_ = std::make_unique<Executor>(golden_);
}

std::string_view check_result_name(CheckResult r) {
  switch (r) {
    case CheckResult::kNotChecked: return "not-checked";
    case CheckResult::kCheckedOk: return "checked-ok";
    case CheckResult::kCheckedFaulty: return "checked-faulty";
  }
  throw InvalidArgument("unknown check result");
}

CheckResult RobustnessService::submit(const Tensor& input, const Tensor& output) {
  ++submissions_;
  if (submissions_ % cfg_.check_period != 0) return CheckResult::kNotChecked;
  ++checks_;
  const Tensor golden = exec_->run_single(input);
  VEDLIOT_CHECK(golden.shape() == output.shape(),
                "robustness service: output shape mismatch");
  const float diff = max_abs_diff(golden, output);
  last_divergence_ = diff;
  if (diff > cfg_.tolerance) {
    ++faults_;
    return CheckResult::kCheckedFaulty;
  }
  return CheckResult::kCheckedOk;
}

std::vector<NodeId> FaultInjector::parametric_nodes(const Graph& g) const {
  std::vector<NodeId> out;
  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if ((n.kind == OpKind::kConv2d || n.kind == OpKind::kDense) && !n.weights.empty()) {
      out.push_back(id);
    }
  }
  return out;
}

void FaultInjector::flip_weight_bits(Graph& g, std::size_t n_bits) {
  const auto nodes = parametric_nodes(g);
  VEDLIOT_CHECK(!nodes.empty(), "graph has no parametric nodes to fault");
  for (std::size_t i = 0; i < n_bits; ++i) {
    const auto nid = nodes[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    Tensor& w = g.node(nid).weights[0];
    const auto idx = static_cast<std::size_t>(rng_.uniform_int(0, w.numel() - 1));
    // Flip within bits 20..29 (high mantissa / low exponent): visible but
    // rarely produces inf/nan, like real SEUs in practice.
    const int bit = static_cast<int>(rng_.uniform_int(20, 29));
    auto u = std::bit_cast<std::uint32_t>(w.at(idx));
    u ^= (1u << bit);
    w.at(idx) = std::bit_cast<float>(u);
  }
}

void FaultInjector::zero_random_channel(Graph& g) {
  const auto nodes = parametric_nodes(g);
  VEDLIOT_CHECK(!nodes.empty(), "graph has no parametric nodes to fault");
  const auto nid = nodes[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
  Tensor& w = g.node(nid).weights[0];
  const auto oc = w.shape().dim(0);
  const auto per = static_cast<std::size_t>(w.numel() / oc);
  const auto c = static_cast<std::size_t>(rng_.uniform_int(0, oc - 1));
  auto chan = w.data().subspan(c * per, per);
  std::fill(chan.begin(), chan.end(), 0.0f);
}

void FaultInjector::scale_random_layer(Graph& g, float factor) {
  const auto nodes = parametric_nodes(g);
  VEDLIOT_CHECK(!nodes.empty(), "graph has no parametric nodes to fault");
  const auto nid = nodes[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
  for (float& v : g.node(nid).weights[0].data()) v *= factor;
}

}  // namespace vedliot::safety
