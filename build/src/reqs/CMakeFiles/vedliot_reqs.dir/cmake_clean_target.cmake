file(REMOVE_RECURSE
  "libvedliot_reqs.a"
)
