#pragma once
/// \file enclave.hpp
/// \brief SGX-style trusted execution environment model (Sec. IV-C).
///
/// Reproduces the mechanics that determine Twine's measured overheads [17]:
/// expensive ECALL/OCALL world transitions, interpreter execution of the
/// sandboxed module, EPC paging penalties when the working set exceeds the
/// protected memory, measurement-based sealing and a cost ledger so
/// benchmarks can report native vs VM vs VM+enclave ratios.

#include <cstdint>
#include <string>
#include <vector>

#include "security/admission.hpp"
#include "security/crypto.hpp"
#include "security/wasm.hpp"

namespace vedliot::security {

struct EnclaveConfig {
  double ecall_ns = 8000;          ///< world entry (measured ~8 us on SGX1)
  double ocall_ns = 8500;          ///< world exit + return
  double epc_kib = 93 * 1024;      ///< usable EPC before paging
  double paging_ns_per_kib = 3500; ///< EPC eviction cost
  double vm_ns_per_instr = 2.0;    ///< interpreter cost inside the enclave

  /// Refuse to load a module without a verifier admission whose digest
  /// matches the measurement (default-on gate; benches that deliberately
  /// run unverified modules opt out explicitly).
  bool require_verified = true;
  /// Additionally refuse modules without a static worst-case fuel bound.
  bool require_cost_bound = false;
};

struct CostLedger {
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  std::uint64_t vm_instructions = 0;
  double simulated_ns = 0;
};

struct SealedBlob {
  std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> ciphertext;
  Digest mac{};
};

class EnclaveError : public Error {
 public:
  explicit EnclaveError(const std::string& message) : Error(message) {}
};

/// A loaded enclave hosting one WASM-like module.
class Enclave {
 public:
  /// \param platform_root the device's hardware root key (fused).
  /// \param admission the static verifier's ticket for this exact module
  ///        (analysis::make_admission). With config.require_verified the
  ///        constructor throws EnclaveError unless the ticket is verified
  ///        and its digest equals the enclave measurement; with
  ///        config.require_cost_bound it additionally demands a static fuel
  ///        bound, which every ecall then enforces as a per-invoke fuel cap.
  Enclave(EnclaveConfig config, WModule module, Key platform_root,
          ModuleAdmission admission = {});

  /// MRENCLAVE: SHA-256 over the module image.
  const Digest& measurement() const { return measurement_; }

  /// Register a host import. Calls made by the module to host imports are
  /// OCALLs and accrue transition cost.
  void add_host(HostImport import);

  /// Enter the enclave and run a module function (an ECALL).
  std::int32_t ecall(const std::string& fn, const std::vector<std::int32_t>& args);

  /// Seal data to this enclave identity (MRENCLAVE policy): only an enclave
  /// with the same measurement on the same platform can unseal.
  SealedBlob seal(std::span<const std::uint8_t> data);

  /// Unseal; throws EnclaveError on MAC mismatch (wrong enclave/platform or
  /// tampered blob).
  std::vector<std::uint8_t> unseal(const SealedBlob& blob);

  const CostLedger& ledger() const { return ledger_; }
  const ModuleAdmission& admission() const { return admission_; }
  WasmVm& vm() { return vm_; }

 private:
  Key sealing_key() const;

  EnclaveConfig config_;
  Digest measurement_;
  ModuleAdmission admission_;
  Key platform_root_;
  WasmVm vm_;
  CostLedger ledger_;
  std::uint32_t seal_counter_ = 0;
};

}  // namespace vedliot::security
