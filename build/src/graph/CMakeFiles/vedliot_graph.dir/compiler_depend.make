# Empty compiler generated dependencies file for vedliot_graph.
# This may be replaced when dependencies are built.
