#include "platform/baseboard.hpp"

#include <algorithm>

namespace vedliot::platform {

bool SlotSpec::accepts_form(FormFactor f) const {
  return std::find(accepts.begin(), accepts.end(), f) != accepts.end();
}

BaseboardSpec recs_box() {
  BaseboardSpec b;
  b.name = "RECS|Box";
  for (int i = 0; i < 4; ++i) {
    b.slots.push_back({"come" + std::to_string(i), {FormFactor::kCOMExpress}, 130});
  }
  b.total_power_budget_w = 500;
  b.ethernet_gbps = {1, 10};
  b.has_low_latency_links = true;
  return b;
}

BaseboardSpec t_recs() {
  BaseboardSpec b;
  b.name = "t.RECS";
  for (int i = 0; i < 3; ++i) {
    b.slots.push_back(
        {"comhpc" + std::to_string(i), {FormFactor::kCOMHPCServer, FormFactor::kCOMHPCClient}, 200});
  }
  b.slots.push_back({"pcie0", {FormFactor::kPCIe}, 150});
  b.total_power_budget_w = 700;
  b.ethernet_gbps = {1, 10};
  b.has_low_latency_links = true;
  return b;
}

BaseboardSpec u_recs() {
  BaseboardSpec b;
  b.name = "uRECS";
  // One main site accepting SMARC natively, Jetson NX natively, and Kria /
  // RPi CM via adaptor PCBs (Sec. II-A).
  b.slots.push_back({"main",
                     {FormFactor::kSMARC, FormFactor::kJetsonNX, FormFactor::kKriaSOM,
                      FormFactor::kRPiCM},
                     15});
  b.slots.push_back({"m2", {FormFactor::kM2}, 4});
  b.slots.push_back({"usb", {FormFactor::kUSB}, 4});
  b.total_power_budget_w = 15;
  b.ethernet_gbps = {1};
  b.has_low_latency_links = false;
  return b;
}

Chassis::Chassis(BaseboardSpec spec) : spec_(std::move(spec)) {}

const SlotSpec& Chassis::slot_spec(const std::string& slot) const {
  for (const auto& s : spec_.slots) {
    if (s.name == slot) return s;
  }
  throw NotFound("baseboard " + spec_.name + " has no slot " + slot);
}

void Chassis::install(const std::string& slot, const MicroserverModule& module) {
  const SlotSpec& s = slot_spec(slot);
  if (slots_.count(slot)) throw PlatformError("slot " + slot + " already occupied");
  if (!s.accepts_form(module.form)) {
    throw PlatformError("slot " + slot + " does not accept form factor " +
                        std::string(form_factor_name(module.form)));
  }
  if (module.max_power_w > s.power_budget_w) {
    throw PlatformError("module " + module.name + " exceeds slot power budget of " + slot);
  }
  if (provisioned_power_w() + module.max_power_w > spec_.total_power_budget_w) {
    throw PlatformError("installing " + module.name + " exceeds the " + spec_.name +
                        " board power budget");
  }
  slots_[slot] = module;
}

MicroserverModule Chassis::remove(const std::string& slot) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) throw PlatformError("slot " + slot + " is empty");
  MicroserverModule m = it->second;
  slots_.erase(it);
  return m;
}

bool Chassis::occupied(const std::string& slot) const { return slots_.count(slot) > 0; }

const MicroserverModule& Chassis::module_at(const std::string& slot) const {
  auto it = slots_.find(slot);
  if (it == slots_.end()) throw PlatformError("slot " + slot + " is empty");
  return it->second;
}

std::vector<std::pair<std::string, MicroserverModule>> Chassis::installed() const {
  return {slots_.begin(), slots_.end()};
}

double Chassis::provisioned_power_w() const {
  double total = 0;
  for (const auto& [slot, m] : slots_) total += m.max_power_w;
  return total;
}

double Chassis::power_headroom_w() const {
  return spec_.total_power_budget_w - provisioned_power_w();
}

}  // namespace vedliot::platform
