#include "platform/fabric.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace vedliot::platform {

Fabric::Fabric(std::vector<double> allowed_ethernet_gbps)
    : allowed_eth_(std::move(allowed_ethernet_gbps)) {
  VEDLIOT_CHECK(!allowed_eth_.empty(), "fabric needs at least one allowed Ethernet speed");
}

void Fabric::add_endpoint(const std::string& name) {
  if (has_endpoint(name)) throw InvalidArgument("duplicate endpoint: " + name);
  endpoints_.push_back(name);
}

bool Fabric::has_endpoint(const std::string& name) const {
  return std::find(endpoints_.begin(), endpoints_.end(), name) != endpoints_.end();
}

const Link* Fabric::find_link(const std::string& a, const std::string& b) const {
  for (const auto& l : links_) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return &l;
  }
  return nullptr;
}

Link* Fabric::find_link(const std::string& a, const std::string& b) {
  return const_cast<Link*>(static_cast<const Fabric*>(this)->find_link(a, b));
}

void Fabric::add_link(Link link) {
  VEDLIOT_CHECK(has_endpoint(link.a) && has_endpoint(link.b), "link endpoints must exist");
  VEDLIOT_CHECK(link.a != link.b, "self-links are not allowed");
  if (find_link(link.a, link.b)) throw InvalidArgument("link already exists");
  if (link.kind == LinkKind::kEthernet &&
      std::find(allowed_eth_.begin(), allowed_eth_.end(), link.bandwidth_gbps) ==
          allowed_eth_.end()) {
    throw InvalidArgument("Ethernet speed not supported by this baseboard");
  }
  links_.push_back(std::move(link));
  ++reconfigs_;
}

void Fabric::remove_link(const std::string& a, const std::string& b) {
  const auto before = links_.size();
  links_.erase(std::remove_if(links_.begin(), links_.end(),
                              [&](const Link& l) {
                                return (l.a == a && l.b == b) || (l.a == b && l.b == a);
                              }),
               links_.end());
  if (links_.size() == before) throw NotFound("no link between " + a + " and " + b);
  ++reconfigs_;
}

void Fabric::set_link_speed(const std::string& a, const std::string& b, double gbps) {
  Link* l = find_link(a, b);
  if (!l) throw NotFound("no link between " + a + " and " + b);
  if (l->kind == LinkKind::kEthernet &&
      std::find(allowed_eth_.begin(), allowed_eth_.end(), gbps) == allowed_eth_.end()) {
    throw InvalidArgument("Ethernet speed not supported by this baseboard");
  }
  l->bandwidth_gbps = gbps;
  ++reconfigs_;
}

void Fabric::set_link_degradation(const std::string& a, const std::string& b, double factor) {
  VEDLIOT_CHECK(factor > 0.0 && factor <= 1.0, "link degradation factor must be in (0, 1]");
  Link* l = find_link(a, b);
  if (!l) throw NotFound("no link between " + a + " and " + b);
  l->degradation = factor;
}

std::optional<Link> Fabric::link_between(const std::string& a, const std::string& b) const {
  const Link* l = find_link(a, b);
  if (!l) return std::nullopt;
  return *l;
}

std::vector<std::string> Fabric::route(const std::string& from, const std::string& to) const {
  VEDLIOT_CHECK(has_endpoint(from) && has_endpoint(to), "route endpoints must exist");
  if (from == to) return {from};
  // BFS by hops; among equal-hop parents prefer lower cumulative latency.
  std::map<std::string, std::string> parent;
  std::map<std::string, double> latency{{from, 0.0}};
  std::map<std::string, int> hops{{from, 0}};
  std::deque<std::string> queue{from};
  while (!queue.empty()) {
    const std::string cur = queue.front();
    queue.pop_front();
    for (const auto& l : links_) {
      std::string next;
      if (l.a == cur) next = l.b;
      else if (l.b == cur) next = l.a;
      else continue;
      const int nh = hops[cur] + 1;
      const double nl = latency[cur] + l.latency_us;
      if (!hops.count(next) || nh < hops[next] || (nh == hops[next] && nl < latency[next])) {
        hops[next] = nh;
        latency[next] = nl;
        parent[next] = cur;
        queue.push_back(next);
      }
    }
  }
  if (!parent.count(to)) throw NotFound("no route from " + from + " to " + to);
  std::vector<std::string> path{to};
  while (path.back() != from) path.push_back(parent[path.back()]);
  std::reverse(path.begin(), path.end());
  return path;
}

double Fabric::path_bandwidth_bytes_s(const std::string& from, const std::string& to) const {
  const auto path = route(from, to);
  double min_gbps = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Link* l = find_link(path[i], path[i + 1]);
    VEDLIOT_ASSERT(l != nullptr);
    min_gbps = std::min(min_gbps, l->effective_gbps());
  }
  if (path.size() < 2) return std::numeric_limits<double>::infinity();
  return min_gbps * 1e9 / 8.0;
}

double Fabric::transfer_time_s(const std::string& from, const std::string& to,
                               double payload_bytes) const {
  const auto path = route(from, to);
  double lat_us = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Link* l = find_link(path[i], path[i + 1]);
    VEDLIOT_ASSERT(l != nullptr);
    lat_us += l->latency_us;
  }
  const double bw = path_bandwidth_bytes_s(from, to);
  const double serialize = path.size() < 2 ? 0.0 : payload_bytes / bw;
  return lat_us * 1e-6 + serialize;
}

Fabric star_fabric(const std::vector<std::string>& slots, double gbps,
                   std::vector<double> allowed_speeds) {
  Fabric f(std::move(allowed_speeds));
  f.add_endpoint("switch0");
  for (const auto& s : slots) {
    f.add_endpoint(s);
    Link l;
    l.a = "switch0";
    l.b = s;
    l.bandwidth_gbps = gbps;
    f.add_link(std::move(l));
  }
  return f;
}

}  // namespace vedliot::platform
