#pragma once
/// \file units.hpp
/// \brief Unit conventions and conversion helpers.
///
/// Conventions used across the project:
///  - operations are counted as individual MACs*2 (one multiply + one add),
///    matching how vendors quote "OPS" in Fig. 3 of the paper;
///  - time in seconds, power in watts, energy in joules, memory in bytes;
///  - rates in ops/second (so 1 GOPS == 1e9).

#include <cstdint>

namespace vedliot::units {

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;

/// ops/s -> GOPS
constexpr double to_gops(double ops_per_second) { return ops_per_second / kGiga; }
/// GOPS -> ops/s
constexpr double from_gops(double gops) { return gops * kGiga; }

/// ops/s per watt -> TOPS/W
constexpr double to_tops_per_watt(double ops_per_second, double watts) {
  return ops_per_second / kTera / watts;
}

/// bytes -> MiB
constexpr double to_mib(double bytes) { return bytes / (1024.0 * 1024.0); }

/// seconds -> milliseconds
constexpr double to_ms(double seconds) { return seconds * 1e3; }
/// seconds -> microseconds
constexpr double to_us(double seconds) { return seconds * 1e6; }

/// Bits per second for a link speed given in Mbit/s.
constexpr double mbit_per_s(double mbit) { return mbit * 1e6; }

}  // namespace vedliot::units
