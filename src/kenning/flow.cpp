#include "kenning/flow.hpp"

#include <algorithm>
#include <sstream>

#include "graph/cost.hpp"
#include "runtime/memory_planner.hpp"
#include "runtime/session.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace vedliot::kenning {

ModelWrapper::ModelWrapper(std::string name, Graph graph)
    : name_(std::move(name)), graph_(std::move(graph)) {}

std::size_t ModelWrapper::postprocess(const Tensor& out) const {
  if (post_) return post_(out);
  // Default: argmax over the flattened output.
  std::size_t best = 0;
  float best_v = out.numel() > 0 ? out.at(0) : 0.0f;
  for (std::int64_t i = 1; i < out.numel(); ++i) {
    if (out.at(static_cast<std::size_t>(i)) > best_v) {
      best_v = out.at(static_cast<std::size_t>(i));
      best = static_cast<std::size_t>(i);
    }
  }
  return best;
}

std::string MeasurementReport::to_markdown() const {
  std::ostringstream os;
  os << "## Deployment report: " << model << " on " << target << "\n\n";
  os << "| metric | value |\n|---|---|\n";
  os << "| samples | " << samples << " |\n";
  os << "| mean latency | " << fmt_fixed(mean_latency_ms, 3) << " ms |\n";
  os << "| p90 latency | " << fmt_fixed(p90_latency_ms, 3) << " ms |\n";
  os << "| activation arena | " << fmt_fixed(arena_mib, 2) << " MiB |\n";
  os << "| weights | " << fmt_fixed(weight_mib, 2) << " MiB |\n";
  if (estimated_power_w > 0) {
    os << "| est. power | " << fmt_fixed(estimated_power_w, 2) << " W |\n";
    os << "| est. energy / inference | " << fmt_fixed(estimated_energy_mj, 3) << " mJ |\n";
  }
  if (!hotspots_ms.empty()) {
    os << "| hottest ops | ";
    for (std::size_t i = 0; i < hotspots_ms.size(); ++i) {
      if (i) os << ", ";
      os << hotspots_ms[i].first << " (" << fmt_fixed(hotspots_ms[i].second, 1) << " ms)";
    }
    os << " |\n";
  }
  if (quality) {
    os << "| accuracy | " << fmt_percent(quality->accuracy()) << " |\n";
    os << "| macro F1 | " << fmt_fixed(quality->macro_f1(), 3) << " |\n";
    os << "\n### Confusion matrix\n\n```\n" << quality->to_string() << "```\n";
  }
  return os.str();
}

namespace {

std::size_t num_classes_of(const Graph& g) {
  const auto outs = g.outputs();
  const Shape& s = g.node(outs.front()).out_shape;
  return static_cast<std::size_t>(s.dim(s.rank() - 1));
}

void fill_quality(MeasurementReport& report, ModelWrapper& model,
                  const std::vector<Sample>& dataset, const std::vector<std::size_t>& preds) {
  const std::size_t classes = std::max<std::size_t>(num_classes_of(model.graph()), 2);
  ConfusionMatrix cm(classes);
  for (std::size_t i = 0; i < dataset.size(); ++i) cm.add(dataset[i].label, preds[i]);
  report.quality = cm;
}

}  // namespace

MeasurementReport HostRuntime::benchmark(ModelWrapper& model, const std::vector<Sample>& dataset) {
  MeasurementReport report;
  report.model = model.name();
  report.target = name();
  report.samples = dataset.size();

  // Direct Executor use: this target reports per-op hotspots, which only the
  // engine's profiling hook exposes (the session API deliberately does not).
  const Graph& g = model.graph();
  const std::string& in_name = g.node(g.inputs().front()).name;
  Executor exec(g);
  exec.enable_profiling();
  std::vector<double> latencies;
  std::vector<std::size_t> preds;
  latencies.reserve(dataset.size());
  for (const auto& sample : dataset) {
    const Tensor input = model.preprocess(sample.input);
    const auto t0 = std::chrono::steady_clock::now();
    const Tensor out = exec.run({{in_name, input}}).begin()->second;
    const auto t1 = std::chrono::steady_clock::now();
    latencies.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    preds.push_back(model.postprocess(out));
  }
  if (!latencies.empty()) {
    report.mean_latency_ms = stats::mean(latencies);
    report.p90_latency_ms = stats::percentile(latencies, 90.0);
  }
  const MemoryPlan plan = plan_memory(model.graph(), DType::kFP32);
  report.arena_mib = static_cast<double>(plan.arena_bytes) / (1024.0 * 1024.0);
  report.weight_mib = weight_bytes(model.graph(), DType::kFP32) / (1024.0 * 1024.0);
  for (const auto& [kind, prof] : exec.hotspots(3)) {
    report.hotspots_ms.emplace_back(std::string(op_name(kind)), prof.total_seconds * 1e3);
  }
  if (!dataset.empty()) fill_quality(report, model, dataset, preds);
  return report;
}

SimulatedTarget::SimulatedTarget(hw::DeviceSpec device, DType dtype)
    : device_(std::move(device)), dtype_(dtype) {}

MeasurementReport SimulatedTarget::benchmark(ModelWrapper& model,
                                             const std::vector<Sample>& dataset) {
  MeasurementReport report;
  report.model = model.name();
  report.target = name();
  report.samples = dataset.size();

  const hw::PerfEstimate e = hw::estimate(device_, model.graph(), dtype_);
  report.mean_latency_ms = e.latency_s * 1e3;
  report.p90_latency_ms = e.latency_s * 1e3;
  report.arena_mib = e.arena_mib;
  report.weight_mib = e.weight_mib;
  report.estimated_power_w = e.power_w;
  report.estimated_energy_mj = e.energy_per_inference_j * 1e3;

  // Quality: real execution if weights are available; the simulated device
  // does not change the numerics (dtype effects are applied by passes).
  if (!dataset.empty() && model.graph().weights_materialized()) {
    const auto session = runtime::make_session(model.graph(), {});
    std::vector<std::size_t> preds;
    preds.reserve(dataset.size());
    for (const auto& sample : dataset) {
      preds.push_back(model.postprocess(session->run_single(model.preprocess(sample.input))));
    }
    fill_quality(report, model, dataset, preds);
  }
  return report;
}

Flow& Flow::optimize(std::unique_ptr<opt::Pass> pass) {
  passes_.add(std::move(pass));
  return *this;
}

Flow& Flow::deploy_to(std::unique_ptr<RuntimeTarget> target) {
  targets_.push_back(std::move(target));
  return *this;
}

std::vector<MeasurementReport> Flow::run(const std::vector<Sample>& dataset) {
  pass_log_ = passes_.run(model_.graph());
  std::vector<MeasurementReport> reports;
  reports.reserve(targets_.size());
  for (auto& t : targets_) reports.push_back(t->benchmark(model_, dataset));
  return reports;
}

}  // namespace vedliot::kenning
