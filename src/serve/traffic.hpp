#pragma once
/// \file traffic.hpp
/// \brief Seeded traffic generator for fleet soaks: million-user client
/// populations with heavy-tail activity, diurnal curves, flash crowds and
/// adversarial retry storms.
///
/// Real IoT serving load is not Poisson-with-four-clients: a small set of
/// hot clients dominates (Zipf activity), the aggregate rate follows a
/// diurnal curve, product launches produce flash crowds, and misbehaving
/// client firmware retries in synchronized storms that re-submit identical
/// work. The generator synthesizes those shapes deterministically from one
/// seed, in either loop mode:
///
///  * open loop — arrivals follow the rate curve regardless of completions
///    (the standard way to measure an overloaded server honestly);
///  * closed loop — a bounded population of in-flight clients, each
///    submitting its next request a think-time after its previous one
///    would have completed under the target rate (approximated without
///    feedback to keep generation independent of serving — the fleet run
///    stays a pure function of the seed).
///
/// Output is a time-sorted vector of v2 Requests ready for Fleet::submit.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace vedliot::serve {

/// Aggregate-rate shape over the run.
enum class TrafficPattern {
  kSteady,      ///< constant rate
  kDiurnal,     ///< one sinusoidal day compressed into the run
  kFlashCrowd,  ///< steady base with a burst window at several x the rate
  kRetryStorm,  ///< steady base plus synchronized idempotent re-submissions
};

std::string_view traffic_pattern_name(TrafficPattern p);

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::kSteady;
  double duration_s = 2.0;
  double base_hz = 400.0;        ///< mean aggregate arrival rate

  /// Client population. Clients are "user<i>"; per-request client picks
  /// follow a Zipf(s) law over the population, so a million-user population
  /// still concentrates most traffic on a few hot clients (what makes
  /// consistent-hash routing and per-client retry budgets interesting).
  std::uint64_t population = 1'000'000;
  double zipf_s = 1.1;           ///< tail exponent (> 1 = heavy head)

  double interactive_share = 0.15;  ///< P(priority = interactive)
  double batch_share = 0.10;        ///< P(priority = batch)
  double deadline_s = 0.08;         ///< relative deadline, jittered +-50%
  double multi_lane_share = 0.2;    ///< P(batch = 2) per request

  // kDiurnal: rate swings between (1 - diurnal_depth) and (1 + diurnal_depth)
  // of base_hz over one compressed day.
  double diurnal_depth = 0.8;

  // kFlashCrowd: burst of flash_factor * base_hz in the middle
  // flash_width fraction of the run.
  double flash_factor = 5.0;
  double flash_width = 0.2;

  // kRetryStorm: storm_count waves; each wave re-submits storm_burst
  // requests sharing one idempotency key and payload (the adversarial
  // client herd re-sending identical work).
  std::size_t storm_count = 4;
  std::size_t storm_burst = 32;

  /// Closed loop: cap concurrent outstanding requests at `population_cap`
  /// per client by spacing a client's next arrival at least think_time_s
  /// after its previous one. 0 = open loop.
  double think_time_s = 0;

  /// Fraction of non-storm requests that carry an idempotency key derived
  /// from their payload (cacheable repeats in organic traffic).
  double idempotent_share = 0.1;

  std::uint64_t seed = 0x7AFFu;
};

/// Generate the offered load: time-sorted, ids left 0 (assigned at
/// submit), deterministic for a given config.
std::vector<Request> generate_traffic(const TrafficConfig& cfg);

/// Zipf rank sampler over [0, n): rank 0 is the hottest. Uses the standard
/// inverse-CDF approximation over a harmonic partial sum, O(1) per draw
/// after O(log n) setup, deterministic per Rng stream. Exposed for tests.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);
  std::uint64_t sample(double u01) const;  ///< u01 in [0, 1)

 private:
  std::uint64_t n_;
  double s_;
  double harmonic_;  ///< generalized harmonic number H_{n,s} (approximated)
};

}  // namespace vedliot::serve
