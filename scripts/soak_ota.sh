#!/usr/bin/env bash
# Fleet-rollout soak of the OTA transport + staged-canary controller: the
# seeded sweep over fabric fault rates {0, 0.05, 0.2} (transient chunk
# damage, ambient packet duplication/reordering, episodic partitions and
# crashes) plus the bad-package halt-and-rollback scenario, with the
# JSON-lines records captured into BENCH_ota.json (one "soak-ota" object
# per scenario; the human summary table stays on stderr). Exit status is
# soak_ota's: non-zero when any of the five rollout invariants is violated
# or bitwise determinism breaks.
#
# Usage: scripts/soak_ota.sh [--quick] [--seed N] [--duration S]
#                            [--devices N]
#   (defaults: seed 0x5EED, duration 4.0 s, 12 devices;
#    --quick: duration 2.0 s, 6 devices)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_ota.json"

cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)" --target soak_ota > /dev/null

build/bench/soak_ota "$@" > "${OUT}"
echo "ota rollout soak records written to ${OUT}" >&2
